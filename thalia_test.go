package thalia

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPublicSurface(t *testing.T) {
	if n := len(Sources()); n < 25 {
		t.Errorf("Sources() = %d, want 25+", n)
	}
	if n := len(Queries()); n != 12 {
		t.Errorf("Queries() = %d, want 12", n)
	}
	if n := len(Heterogeneities()); n != 12 {
		t.Errorf("Heterogeneities() = %d, want 12", n)
	}
	src, err := LookupSource("brown")
	if err != nil || src.University != "Brown University" {
		t.Errorf("LookupSource: %v, %v", src, err)
	}
	if _, err := LookupSource("ghost"); err == nil {
		t.Error("expected lookup error")
	}
	q, err := QueryByID(6)
	if err != nil || !strings.Contains(q.Name, "textbook") {
		t.Errorf("QueryByID(6): %v %v", q, err)
	}
	info, err := DescribeHeterogeneity(Heterogeneities()[4])
	if err != nil || info.Name != "Language Expression" {
		t.Errorf("DescribeHeterogeneity: %+v %v", info, err)
	}
}

func TestEvaluateThroughFacade(t *testing.T) {
	cards, err := EvaluateAll(NewCohera(), NewIWIZ(), NewReferenceMediator())
	if err != nil {
		t.Fatal(err)
	}
	if len(cards) != 3 || cards[0].CorrectCount() != 12 {
		t.Fatalf("ranking wrong: %v", cards)
	}
	out := Comparison(cards)
	if !strings.Contains(out, "Cohera") || !strings.Contains(out, "IWIZ") {
		t.Errorf("comparison: %s", out)
	}
	if s := Summary(cards[1]); !strings.Contains(s, "9/12") {
		t.Errorf("summary: %s", s)
	}
}

func TestEvalXQueryFacade(t *testing.T) {
	seq, err := EvalXQuery(`FOR $b in doc("umass.xml")/umass/Course
		WHERE $b/Number = "CS430" RETURN $b/Time`)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 || ItemString(seq[0]) != "16:00-17:15" {
		t.Errorf("facade query: %v", seq)
	}
}

// A custom system written against the public API: answers only query 1.
type onlyQ1 struct{}

func (onlyQ1) Name() string        { return "OnlyQ1" }
func (onlyQ1) Description() string { return "answers only the synonym query" }
func (onlyQ1) Answer(req Request) (*Answer, error) {
	if req.QueryID != 1 {
		return nil, ErrUnsupported
	}
	seq, err := EvalXQuery(`FOR $b in doc("gatech.xml")/gatech/Course
		WHERE $b/Instructor = "Mark" RETURN $b/CourseNum`)
	if err != nil {
		return nil, err
	}
	rows := []Row{}
	for _, item := range seq {
		rows = append(rows, Row{"source": "gatech", "course": ItemString(item), "instructor": "Mark"})
	}
	// It forgets the challenge source, so it scores 0 on correctness.
	return &Answer{Rows: rows, Effort: EffortNone}, nil
}

func TestCustomSystem(t *testing.T) {
	card, err := Evaluate(onlyQ1{})
	if err != nil {
		t.Fatal(err)
	}
	if card.SupportedCount() != 1 {
		t.Errorf("supported = %d", card.SupportedCount())
	}
	r := card.Result(1)
	if r.Correct {
		t.Error("half answer (reference side only) must not score the point")
	}
	if len(r.Missing) == 0 {
		t.Error("missing rows should be diagnosed")
	}
	if !errors.Is(ErrUnsupported, ErrUnsupported) {
		t.Error("sentinel identity")
	}
}

func TestSiteHandlerFacade(t *testing.T) {
	h := NewSiteHandler()
	req := httptest.NewRequest("GET", "/", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "THALIA") {
		t.Errorf("site: %d", rec.Code)
	}
}

func TestResultXML(t *testing.T) {
	doc := ResultXML(3, []Row{{"source": "umd", "course": "CMSC420", "title": "Data Structures"}})
	out := doc.Encode()
	if !strings.Contains(out, `source="umd"`) || !strings.Contains(out, "<title>Data Structures</title>") {
		t.Errorf("ResultXML: %s", out)
	}
}

func TestSchemaMatchFacade(t *testing.T) {
	m := NewSchemaMatcher()
	if c := m.MatchName("Lecturer"); string(c.Concept) != "instructor" {
		t.Errorf("MatchName = %v", c)
	}
	report, err := RunSchemaMatchExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if report.Accuracy() < 0.85 {
		t.Errorf("accuracy %.2f", report.Accuracy())
	}
}

func TestDetectFacade(t *testing.T) {
	dets, err := DetectHeterogeneities("gatech", "cmu")
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Error("no detections for gatech vs cmu")
	}
	if _, err := DetectHeterogeneities("ghost", "cmu"); err == nil {
		t.Error("unknown ref should error")
	}
	if _, err := DetectHeterogeneities("cmu", "ghost"); err == nil {
		t.Error("unknown challenge should error")
	}
}
