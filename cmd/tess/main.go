// Command tess runs the TESS-style screen-scraping wrapper standalone: it
// reads an HTML page and an XML wrapper configuration and prints the
// extracted XML document. With -config-for it prints a built-in testbed
// source's wrapper configuration instead, as a starting point.
//
// Usage:
//
//	tess -config wrapper.xml page.html
//	tess -config-for umd
package main

import (
	"flag"
	"fmt"
	"os"

	"thalia"
	"thalia/internal/tess"
)

func main() {
	configPath := flag.String("config", "", "wrapper configuration file (XML)")
	configFor := flag.String("config-for", "", "print the built-in wrapper configuration for a testbed source")
	flag.Parse()

	if err := run(*configPath, *configFor, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "tess:", err)
		os.Exit(1)
	}
}

func run(configPath, configFor string, args []string) error {
	if configFor != "" {
		src, err := thalia.LookupSource(configFor)
		if err != nil {
			return err
		}
		fmt.Print(tess.MarshalConfig(src.Wrapper()))
		return nil
	}
	if configPath == "" || len(args) != 1 {
		return fmt.Errorf("usage: tess -config wrapper.xml page.html (or tess -config-for <source>)")
	}
	cfgText, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	cfg, err := tess.ParseConfig(string(cfgText))
	if err != nil {
		return err
	}
	page, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	out, err := tess.ExtractString(cfg, string(page))
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
