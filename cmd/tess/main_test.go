package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestConfigFor(t *testing.T) {
	if err := run("", "umd", nil); err != nil {
		t.Errorf("config-for umd: %v", err)
	}
	if err := run("", "ghost", nil); err == nil {
		t.Error("config-for ghost should error")
	}
}

func TestExtractFiles(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "wrapper.xml")
	pagePath := filepath.Join(dir, "page.html")
	if err := os.WriteFile(cfgPath, []byte(`<tess source="s">
  <rule name="Item" begin="\[" end="\]" repeat="true"/>
</tess>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pagePath, []byte(`[one] [two]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cfgPath, "", []string{pagePath}); err != nil {
		t.Errorf("extract: %v", err)
	}
}

func TestUsageAndErrors(t *testing.T) {
	if err := run("", "", nil); err == nil {
		t.Error("no args should error")
	}
	if err := run("/nonexistent.xml", "", []string{"also-nonexistent.html"}); err == nil {
		t.Error("missing config should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.xml")
	if err := os.WriteFile(bad, []byte(`not xml`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "", []string{bad}); err == nil {
		t.Error("bad config should error")
	}
	good := filepath.Join(dir, "good.xml")
	if err := os.WriteFile(good, []byte(`<tess source="s"><rule name="A" begin="x" end="y"/></tess>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(good, "", []string{filepath.Join(dir, "missing.html")}); err == nil {
		t.Error("missing page should error")
	}
}
