package main

import (
	"path/filepath"
	"testing"

	"thalia/internal/journal"
)

// bench --journal-dir flight-records the evaluation; the journal replays
// to a verified projection with the CLI's configuration in run_start.
func TestBenchJournalDir(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"bench", "--system", "cohera", "--parallel", "2", "--journal-dir", dir}); err != nil {
		t.Fatalf("bench --journal-dir: %v", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "run-*.jsonl"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("journal files = %v (err %v), want exactly one", paths, err)
	}
	events, err := journal.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	p := journal.Replay(events)
	if err := p.Verify(); err != nil {
		t.Fatalf("CLI journal does not verify: %v", err)
	}
	if p.Start.Harness != "thalia bench" || p.Start.Concurrency != 2 || len(p.Start.Systems) != 1 {
		t.Errorf("run_start misses CLI config: %+v", p.Start)
	}
	if p.CellsDone != 12 {
		t.Errorf("cells = %d, want 12", p.CellsDone)
	}
	if p.TelemetrySamples == 0 {
		t.Error("journaled CLI run carried no telemetry snapshots")
	}
}

// A chaos run journals its fault-plan provenance.
func TestBenchJournalDirChaos(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"bench", "--system", "iwiz", "--faults", "standard", "--seed", "5",
		"--journal-dir", dir}); err != nil {
		t.Fatalf("bench chaos --journal-dir: %v", err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "run-*.jsonl"))
	if len(paths) != 1 {
		t.Fatalf("journal files = %v, want one", paths)
	}
	events, err := journal.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	p := journal.Replay(events)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if p.Start.Seed != 5 || p.Start.FaultPlanDigest == "" || !p.Start.Resilience {
		t.Errorf("chaos provenance missing from run_start: %+v", p.Start)
	}
}

func TestVersionCommand(t *testing.T) {
	if err := run([]string{"version"}); err != nil {
		t.Fatalf("version: %v", err)
	}
}
