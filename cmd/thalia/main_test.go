package main

import (
	"os"
	"path/filepath"
	"testing"

	"thalia/internal/tess"
)

func TestRunCommands(t *testing.T) {
	// Happy paths: each command must succeed end to end.
	ok := [][]string{
		{"sources"},
		{"show", "brown"},
		{"show", "brown", "--html"},
		{"schema", "eth"},
		{"queries"},
		{"solution", "8"},
		{"xq", `FOR $b in doc("umass.xml")/umass/Course WHERE $b/Number = "CS430" RETURN $b/Time`},
		{"hetero"},
		{"help"},
		{"bench", "--system", "iwiz"},
		{"explain", "3", "cohera"},
		{"explain", "q8", "iwiz"},
		{"explain", "1", "declarative", "--json"},
	}
	for _, args := range ok {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	bad := [][]string{
		{"frobnicate"},
		{"show"},
		{"show", "ghost"},
		{"schema"},
		{"schema", "ghost"},
		{"solution"},
		{"solution", "x"},
		{"solution", "13"},
		{"xq"},
		{"xq", "FOR $b in"},
		{"bench", "--oops"},
		{"bench", "--system"},
		{"bench", "--system", "ghost"},
		{"bench", "--profile"},
		{"bench", "--explain-dir"},
		{"bench", "--faults"},
		{"bench", "--faults", "no-such-plan.json"},
		{"bench", "--seed"},
		{"bench", "--seed", "pi"},
		{"bench", "--retries"},
		{"bench", "--retries", "0"},
		{"explain"},
		{"explain", "3"},
		{"explain", "13", "cohera"},
		{"explain", "3", "ghost"},
		{"explain", "3", "cohera", "--oops"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

func TestRunNoArgsShowsUsage(t *testing.T) {
	if err := run(nil); err != nil {
		t.Errorf("usage: %v", err)
	}
	if err := run([]string{"--help"}); err != nil {
		t.Errorf("--help: %v", err)
	}
}

func TestExportAndValidate(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"export", dir}); err != nil {
		t.Fatalf("export: %v", err)
	}
	for _, rel := range []string{
		"sources/brown/original.html",
		"sources/brown/brown.xml",
		"sources/brown/brown.xsd",
		"sources/brown/wrapper.xml",
		"sources/eth/eth.xml",
		"queries/query01.xq",
		"queries/query12.xq",
		"solutions/query08.xml",
	} {
		if _, err := os.Stat(filepath.Join(dir, rel)); err != nil {
			t.Errorf("missing %s: %v", rel, err)
		}
	}
	// An exported wrapper config must reparse and re-extract the exported
	// original page.
	cfgText, err := os.ReadFile(filepath.Join(dir, "sources/umd/wrapper.xml"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := tess.ParseConfig(string(cfgText))
	if err != nil {
		t.Fatalf("exported config unparseable: %v", err)
	}
	page, err := os.ReadFile(filepath.Join(dir, "sources/umd/original.html"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tess.Extract(cfg, string(page)); err != nil {
		t.Errorf("exported config fails on exported page: %v", err)
	}

	if err := run([]string{"validate"}); err != nil {
		t.Errorf("validate: %v", err)
	}
	if err := run([]string{"export"}); err == nil {
		t.Error("export without directory should error")
	}
}

func TestBenchProfileAndExplainDir(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "prof")
	traces := filepath.Join(dir, "traces")
	if err := run([]string{"bench", "--system", "cohera", "--profile", prof, "--explain-dir", traces}); err != nil {
		t.Fatalf("bench: %v", err)
	}
	for _, rel := range []string{"cpu.pprof", "heap.pprof"} {
		if fi, err := os.Stat(filepath.Join(prof, rel)); err != nil || fi.Size() == 0 {
			t.Errorf("missing or empty profile %s: %v", rel, err)
		}
	}
	// Cohera declines queries 4, 5 and 8: exactly those cells fail and get
	// trace files.
	names, err := filepath.Glob(filepath.Join(traces, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Errorf("explain-dir holds %d traces (%v), want 3", len(names), names)
	}
}

// bench --faults evaluates under an injected fault plan: the standard mix
// by name, or a JSON plan file; --retries alone enables the resilience
// policy without faults.
func TestBenchChaosFlags(t *testing.T) {
	if err := run([]string{"bench", "--system", "iwiz", "--faults", "standard", "--seed", "7"}); err != nil {
		t.Fatalf("bench --faults standard: %v", err)
	}

	plan := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(plan, []byte(
		`{"seed":3,"rules":[{"system":"IWIZ","attempt":1,"kind":"transient","probability":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bench", "--system", "iwiz", "--faults", plan, "--retries", "2"}); err != nil {
		t.Fatalf("bench --faults %s: %v", plan, err)
	}

	if err := run([]string{"bench", "--system", "iwiz", "--retries", "2"}); err != nil {
		t.Fatalf("bench --retries without faults: %v", err)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"seed":1,"rules":[{"kind":"gremlins"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bench", "--system", "iwiz", "--faults", bad}); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}

func TestDetectCommand(t *testing.T) {
	if err := run([]string{"detect", "cmu", "eth"}); err != nil {
		t.Errorf("detect: %v", err)
	}
	if err := run([]string{"detect", "cmu"}); err == nil {
		t.Error("detect with one arg should error")
	}
	if err := run([]string{"detect", "cmu", "ghost"}); err == nil {
		t.Error("detect unknown source should error")
	}
}
