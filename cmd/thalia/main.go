// Command thalia is the THALIA workbench CLI: it lists the testbed's
// course-catalog sources, shows their original HTML snapshots, extracted
// XML and inferred schemas, prints the twelve benchmark queries and their
// sample solutions, runs ad-hoc XQuery against the testbed, and evaluates
// the built-in integration systems on the benchmark.
//
// Usage:
//
//	thalia sources                     list the testbed sources
//	thalia show <source> [--html]      extracted XML (or original HTML)
//	thalia schema <source>             inferred XML Schema
//	thalia queries                     the twelve benchmark queries
//	thalia solution <n>                sample solution for query n
//	thalia xq '<query>'                run an XQuery against the testbed
//	thalia bench [--system name]... [--parallel N] [--timeout D] [--telemetry]
//	                                   evaluate systems (default: all)
//	thalia hetero                      the heterogeneity classification
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"thalia"
	"thalia/internal/benchmark"
	"thalia/internal/telemetry"
	"thalia/internal/tess"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "thalia:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "sources":
		return sources()
	case "show":
		return show(args[1:])
	case "schema":
		return schema(args[1:])
	case "queries":
		return queries()
	case "solution":
		return solution(args[1:])
	case "xq":
		return xq(args[1:])
	case "bench":
		return bench(args[1:])
	case "export":
		return export(args[1:])
	case "validate":
		return validate()
	case "detect":
		return detect(args[1:])
	case "hetero":
		return heteroCmd()
	case "help", "-h", "--help":
		return usage()
	default:
		return fmt.Errorf("unknown command %q (try 'thalia help')", args[0])
	}
}

func usage() error {
	fmt.Println(`THALIA — Test Harness for the Assessment of Legacy information Integration Approaches

Commands:
  sources                   list the testbed's course-catalog sources
  show <source> [--html]    print a source's extracted XML (or original HTML)
  schema <source>           print a source's inferred XML Schema
  queries                   print the twelve benchmark queries
  solution <n>              print the sample solution for query n
  xq '<query>'              run an XQuery (subset) against the testbed
  bench [--system name]...  evaluate integration systems
        [--parallel N]      (cohera|iwiz|mediator|declarative);
        [--timeout D]       N workers (default: one per CPU), per-query
        [--telemetry]       timeout D (e.g. 30s; default: none); --telemetry
                            prints an engine metrics snapshot (per-query
                            p50/p95/p99 latency, queue wait, errors)
  export <dir>              write the whole testbed to disk (HTML, XML,
                            XSD, wrapper configs, queries, solutions)
  validate                  re-extract and validate every source
  detect <ref> <challenge>  detect which heterogeneities a source pair
                            exhibits (the Section 3 classification, automated)
  hetero                    print the heterogeneity classification`)
	return nil
}

func sources() error {
	fmt.Printf("%-11s %-48s %-12s %s\n", "NAME", "UNIVERSITY", "COUNTRY", "COURSES")
	for _, s := range thalia.Sources() {
		fmt.Printf("%-11s %-48s %-12s %d\n", s.Name, s.University, s.Country, len(s.Courses))
	}
	return nil
}

func show(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("show: need a source name")
	}
	src, err := thalia.LookupSource(args[0])
	if err != nil {
		return err
	}
	if len(args) > 1 && args[1] == "--html" {
		fmt.Print(src.Page())
		return nil
	}
	xml, err := src.XML()
	if err != nil {
		return err
	}
	fmt.Print(xml)
	return nil
}

func schema(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("schema: need a source name")
	}
	src, err := thalia.LookupSource(args[0])
	if err != nil {
		return err
	}
	sch, err := src.Schema()
	if err != nil {
		return err
	}
	fmt.Print(sch.Encode())
	return nil
}

func queries() error {
	for _, q := range thalia.Queries() {
		fmt.Printf("Query %d — %s [%v]\n", q.ID, q.Name, q.Case)
		fmt.Printf("  reference: %s   challenge: %s\n", q.Reference, q.ChallengeSource)
		for _, line := range strings.Split(q.XQuery, "\n") {
			fmt.Printf("  | %s\n", line)
		}
		fmt.Printf("  challenge: %s\n\n", q.Challenge)
	}
	return nil
}

func solution(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("solution: need a query number 1-12")
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("solution: bad query number %q", args[0])
	}
	q, err := thalia.QueryByID(id)
	if err != nil {
		return err
	}
	rows, err := q.Expected()
	if err != nil {
		return err
	}
	fmt.Print(thalia.ResultXML(q.ID, rows).Encode())
	return nil
}

func xq(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("xq: need a query string")
	}
	seq, err := thalia.EvalXQuery(strings.Join(args, " "))
	if err != nil {
		return err
	}
	for _, item := range seq {
		fmt.Println(thalia.ItemString(item))
	}
	return nil
}

func bench(args []string) error {
	known := map[string]func() thalia.System{
		"cohera":      thalia.NewCohera,
		"iwiz":        thalia.NewIWIZ,
		"mediator":    thalia.NewReferenceMediator,
		"declarative": thalia.NewDeclarativeMediator,
	}
	runner := thalia.NewRunner()
	var systems []thalia.System
	var reg *telemetry.Registry
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "--telemetry":
			reg = telemetry.NewRegistry()
			runner.Telemetry = reg
		case "--system":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --system needs a value")
			}
			mk, ok := known[args[i]]
			if !ok {
				return fmt.Errorf("bench: unknown system %q (cohera|iwiz|mediator|declarative)", args[i])
			}
			systems = append(systems, mk())
		case "--parallel":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --parallel needs a worker count")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				return fmt.Errorf("bench: bad --parallel value %q (want a positive integer)", args[i])
			}
			runner.Concurrency = n
		case "--timeout":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --timeout needs a duration")
			}
			d, err := time.ParseDuration(args[i])
			if err != nil || d <= 0 {
				return fmt.Errorf("bench: bad --timeout value %q (want e.g. 30s)", args[i])
			}
			runner.QueryTimeout = d
		default:
			return fmt.Errorf("bench: unknown flag %q", args[i])
		}
	}
	if len(systems) == 0 {
		systems = []thalia.System{
			thalia.NewCohera(), thalia.NewIWIZ(),
			thalia.NewReferenceMediator(), thalia.NewDeclarativeMediator(),
		}
	}
	cards, err := runner.EvaluateAllContext(context.Background(), systems...)
	if err != nil {
		return err
	}
	fmt.Println(thalia.Comparison(cards))
	for _, card := range cards {
		fmt.Println(card.Format())
	}
	if reg != nil {
		fmt.Println(benchmark.FormatEngineMetrics(reg.Snapshot()))
	}
	return nil
}

// export materializes the downloadable testbed: per-source original HTML,
// extracted XML, inferred schema and wrapper configuration, plus the twelve
// query files and sample solutions — the contents of the web site's "Run
// Benchmark" bundles, laid out on disk.
func export(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("export: need a target directory")
	}
	dir := args[0]
	write := func(rel, content string) error {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		return os.WriteFile(path, []byte(content), 0o644)
	}
	for _, s := range thalia.Sources() {
		xml, err := s.XML()
		if err != nil {
			return err
		}
		sch, err := s.Schema()
		if err != nil {
			return err
		}
		for rel, content := range map[string]string{
			"sources/" + s.Name + "/original.html":      s.Page(),
			"sources/" + s.Name + "/" + s.Name + ".xml": xml,
			"sources/" + s.Name + "/" + s.Name + ".xsd": sch.Encode(),
			"sources/" + s.Name + "/wrapper.xml":        tess.MarshalConfig(s.Wrapper()),
		} {
			if err := write(rel, content); err != nil {
				return err
			}
		}
	}
	for _, q := range thalia.Queries() {
		body := fmt.Sprintf("(: Query %d — %s :)\n\n%s\n", q.ID, q.Name, q.XQuery)
		if err := write(fmt.Sprintf("queries/query%02d.xq", q.ID), body); err != nil {
			return err
		}
		rows, err := q.Expected()
		if err != nil {
			return err
		}
		if err := write(fmt.Sprintf("solutions/query%02d.xml", q.ID),
			thalia.ResultXML(q.ID, rows).Encode()); err != nil {
			return err
		}
	}
	fmt.Printf("exported %d sources, 12 queries and 12 solutions to %s\n", len(thalia.Sources()), dir)
	return nil
}

// validate re-runs the full pipeline for every source and checks the
// extraction against its inferred schema.
func validate() error {
	failed := 0
	for _, s := range thalia.Sources() {
		doc, err := s.Document()
		if err != nil {
			fmt.Printf("%-11s EXTRACT FAILED: %v\n", s.Name, err)
			failed++
			continue
		}
		sch, err := s.Schema()
		if err != nil {
			fmt.Printf("%-11s SCHEMA FAILED: %v\n", s.Name, err)
			failed++
			continue
		}
		if errs := sch.Validate(doc); len(errs) != 0 {
			fmt.Printf("%-11s INVALID: %v\n", s.Name, errs[0])
			failed++
			continue
		}
		fmt.Printf("%-11s ok (%d courses)\n", s.Name, len(doc.Root.ChildElements()))
	}
	if failed > 0 {
		return fmt.Errorf("%d source(s) failed validation", failed)
	}
	return nil
}

// detect runs the heterogeneity detector over a source pair.
func detect(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("detect: need two source names")
	}
	dets, err := thalia.DetectHeterogeneities(args[0], args[1])
	if err != nil {
		return err
	}
	if len(dets) == 0 {
		fmt.Println("no heterogeneities detected")
		return nil
	}
	for _, d := range dets {
		fmt.Printf("%-45v %s\n", d.Case, d.Evidence)
	}
	return nil
}

func heteroCmd() error {
	for _, c := range thalia.Heterogeneities() {
		info, err := thalia.DescribeHeterogeneity(c)
		if err != nil {
			return err
		}
		fmt.Printf("%2d. %-42s [%s]\n    %s\n    e.g. %s\n",
			int(info.Case), info.Name, info.Group, info.Description, info.Example)
	}
	return nil
}
