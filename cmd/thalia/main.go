// Command thalia is the THALIA workbench CLI: it lists the testbed's
// course-catalog sources, shows their original HTML snapshots, extracted
// XML and inferred schemas, prints the twelve benchmark queries and their
// sample solutions, runs ad-hoc XQuery against the testbed, and evaluates
// the built-in integration systems on the benchmark.
//
// Usage:
//
//	thalia sources                     list the testbed sources
//	thalia show <source> [--html]      extracted XML (or original HTML)
//	thalia schema <source>             inferred XML Schema
//	thalia queries                     the twelve benchmark queries
//	thalia solution <n>                sample solution for query n
//	thalia xq '<query>'                run an XQuery against the testbed
//	thalia bench [--system name]... [--parallel N] [--timeout D] [--telemetry]
//	             [--profile dir] [--explain-dir dir] [--journal-dir dir]
//	             [--faults plan.json|standard] [--seed N] [--retries N]
//	             [--scenario N] [--mix spec] [--scenario-size K]
//	                                   evaluate systems (default: all),
//	                                   optionally under injected faults with
//	                                   retries, backoff and a circuit breaker;
//	                                   --journal-dir flight-records the run
//	                                   as a JSONL journal; --scenario swaps
//	                                   the canonical testbed for a seeded
//	                                   generated workload of N sources
//	thalia explain <n> <system>        trace one query's evaluation
//	thalia hetero                      the heterogeneity classification
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"thalia"
	"thalia/internal/benchmark"
	"thalia/internal/buildinfo"
	"thalia/internal/hetero"
	"thalia/internal/journal"
	"thalia/internal/scenario"
	"thalia/internal/telemetry"
	"thalia/internal/tess"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "thalia:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "sources":
		return sources()
	case "show":
		return show(args[1:])
	case "schema":
		return schema(args[1:])
	case "queries":
		return queries()
	case "solution":
		return solution(args[1:])
	case "xq":
		return xq(args[1:])
	case "bench":
		return bench(args[1:])
	case "explain":
		return explainCmd(args[1:])
	case "export":
		return export(args[1:])
	case "validate":
		return validate()
	case "detect":
		return detect(args[1:])
	case "hetero":
		return heteroCmd()
	case "version", "-version", "--version":
		fmt.Println(buildinfo.String("thalia"))
		return nil
	case "help", "-h", "--help":
		return usage()
	default:
		return fmt.Errorf("unknown command %q (try 'thalia help')", args[0])
	}
}

func usage() error {
	fmt.Println(`THALIA — Test Harness for the Assessment of Legacy information Integration Approaches

Commands:
  sources                   list the testbed's course-catalog sources
  show <source> [--html]    print a source's extracted XML (or original HTML)
  schema <source>           print a source's inferred XML Schema
  queries                   print the twelve benchmark queries
  solution <n>              print the sample solution for query n
  xq '<query>'              run an XQuery (subset) against the testbed
  bench [--system name]...  evaluate integration systems
        [--parallel N]      (cohera|iwiz|mediator|declarative);
        [--timeout D]       N workers (default: one per CPU), per-query
        [--telemetry]       timeout D (e.g. 30s; default: none); --telemetry
        [--profile DIR]     prints an engine metrics snapshot (per-query
        [--explain-dir DIR] p50/p95/p99 latency, queue wait, errors);
        [--faults P]        --profile writes cpu.pprof and heap.pprof to DIR;
        [--seed N]          --explain-dir writes explain traces of failed
        [--retries N]       cells to DIR as JSON; --faults injects a JSON
        [--journal-dir DIR] fault plan (or the "standard" chaos mix) and
        [--scenario N]      evaluates under the seeded resilience policy —
        [--mix SPEC]        bounded retries with jittered backoff and a
        [--scenario-size K] per-system circuit breaker — printing per-cell
                            attempt histories; --retries overrides the
                            attempt budget; --journal-dir flight-records
                            the run to DIR/<run-id>.jsonl (replay with
                            thalia-bench report); --scenario evaluates a
                            seeded generated workload of N synthetic
                            sources instead of the canonical testbed
                            (streaming, bounded memory), --mix sets the
                            heterogeneity mix (uniform, or e.g.
                            synonyms:2,nulls,7:3), --scenario-size scales
                            courses per catalog (default 12)
  explain <n> <system>      trace one query's evaluation through a system:
        [--json]            operator spans, row counts, provenance events
  export <dir>              write the whole testbed to disk (HTML, XML,
                            XSD, wrapper configs, queries, solutions)
  validate                  re-extract and validate every source
  detect <ref> <challenge>  detect which heterogeneities a source pair
                            exhibits (the Section 3 classification, automated)
  hetero                    print the heterogeneity classification`)
	return nil
}

func sources() error {
	fmt.Printf("%-11s %-48s %-12s %s\n", "NAME", "UNIVERSITY", "COUNTRY", "COURSES")
	for _, s := range thalia.Sources() {
		fmt.Printf("%-11s %-48s %-12s %d\n", s.Name, s.University, s.Country, len(s.Courses))
	}
	return nil
}

func show(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("show: need a source name")
	}
	src, err := thalia.LookupSource(args[0])
	if err != nil {
		return err
	}
	if len(args) > 1 && args[1] == "--html" {
		fmt.Print(src.Page())
		return nil
	}
	xml, err := src.XML()
	if err != nil {
		return err
	}
	fmt.Print(xml)
	return nil
}

func schema(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("schema: need a source name")
	}
	src, err := thalia.LookupSource(args[0])
	if err != nil {
		return err
	}
	sch, err := src.Schema()
	if err != nil {
		return err
	}
	fmt.Print(sch.Encode())
	return nil
}

func queries() error {
	for _, q := range thalia.Queries() {
		fmt.Printf("Query %d — %s [%v]\n", q.ID, q.Name, q.Case)
		fmt.Printf("  reference: %s   challenge: %s\n", q.Reference, q.ChallengeSource)
		for _, line := range strings.Split(q.XQuery, "\n") {
			fmt.Printf("  | %s\n", line)
		}
		fmt.Printf("  challenge: %s\n\n", q.Challenge)
	}
	return nil
}

func solution(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("solution: need a query number 1-12")
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("solution: bad query number %q", args[0])
	}
	q, err := thalia.QueryByID(id)
	if err != nil {
		return err
	}
	rows, err := q.Expected()
	if err != nil {
		return err
	}
	fmt.Print(thalia.ResultXML(q.ID, rows).Encode())
	return nil
}

func xq(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("xq: need a query string")
	}
	seq, err := thalia.EvalXQuery(strings.Join(args, " "))
	if err != nil {
		return err
	}
	for _, item := range seq {
		fmt.Println(thalia.ItemString(item))
	}
	return nil
}

// knownSystems maps CLI system names to their constructors.
func knownSystems() map[string]func() thalia.System {
	return map[string]func() thalia.System{
		"cohera":      thalia.NewCohera,
		"iwiz":        thalia.NewIWIZ,
		"mediator":    thalia.NewReferenceMediator,
		"declarative": thalia.NewDeclarativeMediator,
	}
}

func bench(args []string) error {
	known := knownSystems()
	runner := thalia.NewRunner()
	var systems []thalia.System
	var reg *telemetry.Registry
	var profileDir, explainDir, faultsArg, journalDir string
	var seed int64 = 1
	retries := 0
	scenarioSources, scenarioSize := 0, 0
	mixArg := ""
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "--telemetry":
			reg = telemetry.NewRegistry()
			runner.Telemetry = reg
		case "--system":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --system needs a value")
			}
			mk, ok := known[args[i]]
			if !ok {
				return fmt.Errorf("bench: unknown system %q (cohera|iwiz|mediator|declarative)", args[i])
			}
			systems = append(systems, mk())
		case "--parallel":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --parallel needs a worker count")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				return fmt.Errorf("bench: bad --parallel value %q (want a positive integer)", args[i])
			}
			runner.Concurrency = n
		case "--timeout":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --timeout needs a duration")
			}
			d, err := time.ParseDuration(args[i])
			if err != nil || d <= 0 {
				return fmt.Errorf("bench: bad --timeout value %q (want e.g. 30s)", args[i])
			}
			runner.QueryTimeout = d
		case "--profile":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --profile needs a directory")
			}
			profileDir = args[i]
		case "--explain-dir":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --explain-dir needs a directory")
			}
			explainDir = args[i]
			runner.ExplainFailures = true
		case "--faults":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --faults needs a plan file or \"standard\"")
			}
			faultsArg = args[i]
		case "--journal-dir":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --journal-dir needs a directory")
			}
			journalDir = args[i]
		case "--seed":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --seed needs a value")
			}
			n, err := strconv.ParseInt(args[i], 10, 64)
			if err != nil {
				return fmt.Errorf("bench: bad --seed value %q (want an integer)", args[i])
			}
			seed = n
		case "--retries":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --retries needs a value")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				return fmt.Errorf("bench: bad --retries value %q (want a positive integer)", args[i])
			}
			retries = n
		case "--scenario":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --scenario needs a source count")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				return fmt.Errorf("bench: bad --scenario value %q (want a positive source count)", args[i])
			}
			scenarioSources = n
		case "--mix":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --mix needs a heterogeneity mix (e.g. uniform or synonyms:2,nulls)")
			}
			mixArg = args[i]
		case "--scenario-size":
			i++
			if i >= len(args) {
				return fmt.Errorf("bench: --scenario-size needs a per-catalog course scale")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 2 {
				return fmt.Errorf("bench: bad --scenario-size value %q (want an integer >= 2)", args[i])
			}
			scenarioSize = n
		default:
			return fmt.Errorf("bench: unknown flag %q", args[i])
		}
	}
	var sc *scenario.Scenario
	if scenarioSources > 0 {
		if len(systems) > 0 {
			return fmt.Errorf("bench: --scenario evaluates the scenario mediator; drop --system")
		}
		mix, err := scenario.ParseMix(mixArg)
		if err != nil {
			return fmt.Errorf("bench: --mix: %w", err)
		}
		sc, err = scenario.New(scenario.Params{Sources: scenarioSources, Seed: seed, Mix: mix, Size: scenarioSize})
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		// Streaming contract: generated workloads run without the shared
		// prep cache so expected answers and documents are per-cell
		// garbage, keeping live memory O(workers) instead of O(sources).
		runner.Queries = sc.Queries()
		runner.Prep = nil
		systems = []thalia.System{sc.NewMediator()}
	} else if mixArg != "" || scenarioSize != 0 {
		return fmt.Errorf("bench: --mix and --scenario-size require --scenario")
	}
	if len(systems) == 0 {
		systems = []thalia.System{
			thalia.NewCohera(), thalia.NewIWIZ(),
			thalia.NewReferenceMediator(), thalia.NewDeclarativeMediator(),
		}
	}
	chaos := faultsArg != ""
	var plan *thalia.FaultPlan
	if chaos {
		if faultsArg == "standard" {
			plan = thalia.StandardFaultMix(seed)
		} else {
			data, err := os.ReadFile(faultsArg)
			if err != nil {
				return fmt.Errorf("bench: %w", err)
			}
			plan, err = thalia.ParseFaultPlan(data)
			if err != nil {
				return fmt.Errorf("bench: %s: %w", faultsArg, err)
			}
			if plan.Seed == 0 {
				plan.Seed = seed
			}
		}
		for i, sys := range systems {
			systems[i] = thalia.WithFaults(sys, plan)
		}
	}
	if chaos || retries > 0 {
		runner.Resilience = thalia.DefaultResilience(seed)
		if retries > 0 {
			runner.Resilience.MaxAttempts = retries
		}
	}
	var journalFile string
	if journalDir != "" {
		if err := os.MkdirAll(journalDir, 0o755); err != nil {
			return fmt.Errorf("bench: --journal-dir: %w", err)
		}
		id := "run-" + strings.ReplaceAll(time.Now().UTC().Format("20060102-150405.000"), ".", "")
		journalFile = filepath.Join(journalDir, id+".jsonl")
		w, err := journal.Create(journalFile)
		if err != nil {
			return fmt.Errorf("bench: --journal-dir: %w", err)
		}
		defer w.Close()
		rec := &journal.Recorder{W: w, RunID: id, Harness: "thalia bench"}
		if runner.Resilience != nil {
			rec.Seed = seed
		}
		if plan != nil {
			rec.FaultPlanDigest = plan.Digest()
		}
		runner.Journal = rec
		if runner.Telemetry == nil {
			// Journals sample telemetry snapshots; attach a registry even
			// without --telemetry (it cannot change the scorecards).
			runner.Telemetry = telemetry.NewRegistry()
		}
	}
	stopProfiles := func() error { return nil }
	if profileDir != "" {
		stop, err := startProfiles(profileDir)
		if err != nil {
			return err
		}
		stopProfiles = stop
	}
	cards, err := runner.EvaluateAllContext(context.Background(), systems...)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	if sc != nil {
		// The canonical side-by-side table assumes the twelve fixed
		// queries; a scenario run gets the per-class matrix instead.
		fmt.Println(scenarioMatrix(sc, cards[0]))
		if sc.Sources() <= 50 {
			fmt.Println(cards[0].Format())
		}
		fmt.Println(benchmark.Summary(cards[0]))
	} else {
		fmt.Println(thalia.Comparison(cards))
		for _, card := range cards {
			fmt.Println(card.Format())
		}
	}
	if chaos || retries > 0 {
		fmt.Println(thalia.FormatChaos(cards))
	}
	if reg != nil {
		fmt.Println(benchmark.FormatEngineMetrics(reg.Snapshot()))
	}
	if explainDir != "" {
		n, err := writeExplainTraces(explainDir, cards)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d explain trace(s) to %s\n", n, explainDir)
	}
	if journalFile != "" {
		fmt.Printf("run journal written to %s (replay with: thalia-bench report %s)\n", journalFile, journalFile)
	}
	return nil
}

// scenarioMatrix renders a generated workload's outcome as a per-class
// matrix: how many sources drew each heterogeneity class and how the
// mediator fared on them.
func scenarioMatrix(sc *scenario.Scenario, card *benchmark.Scorecard) string {
	type agg struct{ total, correct, supported int }
	byCase := map[hetero.Case]*agg{}
	for i, r := range card.Results {
		c := sc.Case(i)
		a := byCase[c]
		if a == nil {
			a = &agg{}
			byCase[c] = a
		}
		a.total++
		if r.Supported {
			a.supported++
		}
		if r.Correct {
			a.correct++
		}
	}
	p := sc.Params()
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario workload — %d sources, seed %d, mix %s, size %d\n\n",
		p.Sources, p.Seed, p.Mix, p.Size)
	fmt.Fprintf(&b, "%-4s %-42s %8s %8s %9s\n", "Case", "Heterogeneity", "sources", "correct", "supported")
	for _, c := range hetero.AllCases() {
		a := byCase[c]
		if a == nil {
			continue
		}
		fmt.Fprintf(&b, "%-4d %-42s %8d %8d %9d\n", int(c), c.Name(), a.total, a.correct, a.supported)
	}
	return b.String()
}

// startProfiles begins a CPU profile in dir and returns a stop function that
// finishes it and writes a heap profile alongside (cpu.pprof, heap.pprof).
func startProfiles(dir string) (func() error, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return err
		}
		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			return err
		}
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.WriteHeapProfile(heap); err != nil {
			heap.Close()
			return err
		}
		// Close explicitly: this is where buffered profile writes surface
		// their errors, and a deferred Close would swallow them.
		return heap.Close()
	}, nil
}

// writeExplainTraces dumps the explain trace of every failed cell to
// dir/qNN-<system>.json and returns how many were written.
func writeExplainTraces(dir string, cards []*benchmark.Scorecard) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	for _, card := range cards {
		slug := strings.ToLower(strings.ReplaceAll(card.System, " ", "-"))
		for _, res := range card.Results {
			if res.Explain == nil || res.Explain.Empty() {
				continue
			}
			raw, err := res.Explain.JSON()
			if err != nil {
				return n, err
			}
			name := fmt.Sprintf("q%02d-%s.json", res.QueryID, slug)
			if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// explainCmd traces one query's evaluation through one system and prints the
// trace: indented text plan by default, JSON with --json.
func explainCmd(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("explain: usage: thalia explain <query 1-12> <system> [--json]")
	}
	id, err := strconv.Atoi(strings.TrimPrefix(args[0], "q"))
	if err != nil || id < 1 || id > 12 {
		return fmt.Errorf("explain: bad query %q (want 1-12)", args[0])
	}
	mk, ok := knownSystems()[args[1]]
	if !ok {
		return fmt.Errorf("explain: unknown system %q (cohera|iwiz|mediator|declarative)", args[1])
	}
	asJSON := false
	for _, a := range args[2:] {
		if a != "--json" {
			return fmt.Errorf("explain: unknown flag %q", a)
		}
		asJSON = true
	}
	runner := thalia.NewRunner()
	res, tr, err := runner.Explain(context.Background(), mk(), id)
	if err != nil {
		return err
	}
	if asJSON {
		raw, err := tr.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
		return nil
	}
	fmt.Print(tr.Text())
	status := "declined"
	switch {
	case res.Correct:
		status = "correct"
	case res.Err != "":
		status = "error: " + res.Err
	case res.Supported:
		status = "INCORRECT"
	}
	fmt.Printf("%s\nresult: %s\n", tr.Digest(), status)
	return nil
}

// export materializes the downloadable testbed: per-source original HTML,
// extracted XML, inferred schema and wrapper configuration, plus the twelve
// query files and sample solutions — the contents of the web site's "Run
// Benchmark" bundles, laid out on disk.
func export(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("export: need a target directory")
	}
	dir := args[0]
	write := func(rel, content string) error {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		return os.WriteFile(path, []byte(content), 0o644)
	}
	for _, s := range thalia.Sources() {
		xml, err := s.XML()
		if err != nil {
			return err
		}
		sch, err := s.Schema()
		if err != nil {
			return err
		}
		for rel, content := range map[string]string{
			"sources/" + s.Name + "/original.html":      s.Page(),
			"sources/" + s.Name + "/" + s.Name + ".xml": xml,
			"sources/" + s.Name + "/" + s.Name + ".xsd": sch.Encode(),
			"sources/" + s.Name + "/wrapper.xml":        tess.MarshalConfig(s.Wrapper()),
		} {
			if err := write(rel, content); err != nil {
				return err
			}
		}
	}
	for _, q := range thalia.Queries() {
		body := fmt.Sprintf("(: Query %d — %s :)\n\n%s\n", q.ID, q.Name, q.XQuery)
		if err := write(fmt.Sprintf("queries/query%02d.xq", q.ID), body); err != nil {
			return err
		}
		rows, err := q.Expected()
		if err != nil {
			return err
		}
		if err := write(fmt.Sprintf("solutions/query%02d.xml", q.ID),
			thalia.ResultXML(q.ID, rows).Encode()); err != nil {
			return err
		}
	}
	fmt.Printf("exported %d sources, 12 queries and 12 solutions to %s\n", len(thalia.Sources()), dir)
	return nil
}

// validate re-runs the full pipeline for every source and checks the
// extraction against its inferred schema.
func validate() error {
	failed := 0
	for _, s := range thalia.Sources() {
		doc, err := s.Document()
		if err != nil {
			fmt.Printf("%-11s EXTRACT FAILED: %v\n", s.Name, err)
			failed++
			continue
		}
		sch, err := s.Schema()
		if err != nil {
			fmt.Printf("%-11s SCHEMA FAILED: %v\n", s.Name, err)
			failed++
			continue
		}
		if errs := sch.Validate(doc); len(errs) != 0 {
			fmt.Printf("%-11s INVALID: %v\n", s.Name, errs[0])
			failed++
			continue
		}
		fmt.Printf("%-11s ok (%d courses)\n", s.Name, len(doc.Root.ChildElements()))
	}
	if failed > 0 {
		return fmt.Errorf("%d source(s) failed validation", failed)
	}
	return nil
}

// detect runs the heterogeneity detector over a source pair.
func detect(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("detect: need two source names")
	}
	dets, err := thalia.DetectHeterogeneities(args[0], args[1])
	if err != nil {
		return err
	}
	if len(dets) == 0 {
		fmt.Println("no heterogeneities detected")
		return nil
	}
	for _, d := range dets {
		fmt.Printf("%-45v %s\n", d.Case, d.Evidence)
	}
	return nil
}

func heteroCmd() error {
	for _, c := range thalia.Heterogeneities() {
		info, err := thalia.DescribeHeterogeneity(c)
		if err != nil {
			return err
		}
		fmt.Printf("%2d. %-42s [%s]\n    %s\n    e.g. %s\n",
			int(info.Case), info.Name, info.Group, info.Description, info.Example)
	}
	return nil
}
