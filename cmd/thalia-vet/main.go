// Command thalia-vet is the repository's static-analysis gate. It runs two
// heads and exits non-zero if either reports a finding:
//
// The query/schema head checks the benchmark's ground truth: every query
// parses, every path step resolves against the schemas the catalogs
// publish, variables are bound, functions exist, comparison operands unify
// under the schema, the declarative mediation tables point at real schema
// locations, the testbed sources materialize and validate, and the
// hand-assigned complexity levels agree with the automatic estimate (or
// carry a documented waiver).
//
// The Go head type-checks the module with go/types and runs repo-specific
// analyzers. The classic set — determinism, panicpath, errcheck,
// explainkinds, faultkinds — is joined by five dataflow analyzers over a
// shared fact base: ctxflow (context plumbing), lockdiscipline (mutex
// copies and calls under lock), goleak (goroutine termination), mapflow
// (map iteration order reaching serialized output), and telemetrycontract
// (metric label cardinality).
//
// Findings carry stable content-addressed IDs (see internal/analysis) and
// are reconciled against the committed baseline, vet.baseline.json at the
// module root. The baseline is a ratchet: findings not in it fail the run,
// and baseline entries that no longer fire are stale and fail the run too.
//
// Usage:
//
//	thalia-vet [flags] [packages]
//
//	-json             emit findings as JSON instead of text
//	-sarif FILE       also write a SARIF 2.1.0 log to FILE ("-" for stdout)
//	-baseline FILE    baseline file (default vet.baseline.json at module root)
//	-update-baseline  rewrite the baseline to accept the current findings
//	-strict           fail on warnings too, not just errors
//	-list             list the available checks and exit
//	-queries          run only the query/schema head
//	-go               run only the Go head
//
// The packages arguments are go list patterns for the Go head (default
// ./...). Exit status: 0 clean against the baseline, 1 fresh findings or
// stale baseline entries (warnings fail only under -strict), 2 the
// analysis itself failed.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"thalia/internal/analysis"
	"thalia/internal/benchmark"
	"thalia/internal/rewrite"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "baseline file (default vet.baseline.json at the module root)")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the baseline to accept the current findings")
	strict := flag.Bool("strict", false, "fail on warnings too, not just errors")
	list := flag.Bool("list", false, "list the available checks and exit")
	queriesOnly := flag.Bool("queries", false, "run only the query/schema head")
	goOnly := flag.Bool("go", false, "run only the Go analyzers")
	flag.Parse()

	if *list {
		listChecks()
		return
	}
	os.Exit(vet(*jsonOut, *sarifOut, *baselinePath, *updateBaseline, *strict, *queriesOnly, *goOnly, flag.Args()))
}

// vet runs the analysis and reconciles it against the baseline, returning
// the process exit code. Split from main so the deferred-free control flow
// stays testable and obvious.
func vet(jsonOut bool, sarifOut, baselinePath string, updateBaseline, strict, queriesOnly, goOnly bool, patterns []string) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "thalia-vet:", err)
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		return fail(err)
	}
	if baselinePath == "" {
		baselinePath = filepath.Join(root, "vet.baseline.json")
	}

	rep, err := run(root, queriesOnly, goOnly, patterns)
	if err != nil {
		return fail(err)
	}
	rep.Finalize()

	if updateBaseline {
		if err := analysis.WriteBaseline(baselinePath, analysis.NewBaseline(rep.Findings)); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "thalia-vet: baseline %s updated with %d finding(s)\n", baselinePath, len(rep.Findings))
		return 0
	}

	base, err := analysis.LoadBaseline(baselinePath)
	if err != nil {
		return fail(err)
	}
	fresh, suppressed, stale := base.Apply(rep.Findings)

	if sarifOut != "" {
		sarif, err := rep.SARIF(analysis.AllCheckDocs(analysis.DefaultGoAnalyzers()), base.BaselinedIDs())
		if err != nil {
			return fail(err)
		}
		if sarifOut == "-" {
			os.Stdout.Write(sarif)
		} else if err := os.WriteFile(sarifOut, sarif, 0o644); err != nil {
			return fail(err)
		}
	}

	// Reported output covers fresh findings only; baselined ones are
	// accepted debt and show up solely in the SARIF suppressions.
	freshRep := &analysis.Report{Findings: fresh}
	if jsonOut {
		b, err := freshRep.JSON()
		if err != nil {
			return fail(err)
		}
		fmt.Println(string(b))
	} else {
		fmt.Print(freshRep.Text())
		for _, e := range stale {
			fmt.Printf("%s: [%s] baseline entry %s is stale: the finding no longer fires (%s) — remove it from the baseline\n",
				e.File, e.Check, e.ID, e.Message)
		}
		if len(fresh) > 0 || len(stale) > 0 {
			fmt.Fprintf(os.Stderr, "thalia-vet: %d fresh finding(s), %d suppressed by baseline, %d stale baseline entr(ies)\n",
				len(fresh), len(suppressed), len(stale))
		}
	}
	return analysis.ExitCode(fresh, stale, strict)
}

func run(root string, queriesOnly, goOnly bool, patterns []string) (*analysis.Report, error) {
	rep := &analysis.Report{}
	if !goOnly {
		queryHead(rep, root)
	}
	if !queriesOnly {
		if err := goHead(rep, root, patterns); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// queryHead runs the benchmark/schema checks. Locators are best-effort:
// without one the findings lose file positions, not substance.
func queryHead(rep *analysis.Report, root string) {
	qloc, err := analysis.LoadLocator(
		filepath.Join(root, "internal/benchmark/queries.go"), "internal/benchmark/queries.go")
	if err != nil {
		qloc = nil
	}
	queries := benchmark.Queries()
	rep.Add(analysis.CheckQueries(queries, analysis.QueryCheckConfig{Locator: qloc})...)
	rep.Add(analysis.CheckComplexity(queries, nil, nil)...)
	mloc, err := analysis.LoadLocator(
		filepath.Join(root, "internal/rewrite/mappings.go"), "internal/rewrite/mappings.go")
	if err != nil {
		mloc = nil
	}
	rep.Add(analysis.CheckMappings(rewrite.NewMediator(), nil, mloc)...)
	rep.Add(analysis.CheckCatalogs()...)
}

func goHead(rep *analysis.Report, root string, patterns []string) error {
	pkgs, err := analysis.LoadGoPackages(root, patterns...)
	if err != nil {
		return err
	}
	rep.Add(analysis.RunGoAnalyzers(pkgs, analysis.DefaultGoAnalyzers())...)
	return nil
}

// moduleRoot locates the enclosing module's root directory via the go
// command, so thalia-vet works from any subdirectory of the repo.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

func listChecks() {
	var b bytes.Buffer
	b.WriteString("query/schema head:\n")
	for _, c := range analysis.QueryCheckDocs() {
		fmt.Fprintf(&b, "  %-16s %s\n", c.Name, c.Doc)
	}
	b.WriteString("go head:\n")
	for _, a := range analysis.DefaultGoAnalyzers() {
		fmt.Fprintf(&b, "  %-16s %s\n", a.Name, a.Doc)
	}
	fmt.Print(b.String())
}
