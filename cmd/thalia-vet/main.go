// Command thalia-vet is the repository's static-analysis gate. It runs two
// heads and exits non-zero if either reports a finding:
//
// The query/schema head checks the benchmark's ground truth: every query
// parses, every path step resolves against the schemas the catalogs
// publish, variables are bound, functions exist, comparison operands unify
// under the schema, the declarative mediation tables point at real schema
// locations, the testbed sources materialize and validate, and the
// hand-assigned complexity levels agree with the automatic estimate (or
// carry a documented waiver).
//
// The Go head type-checks the module with go/types and runs repo-specific
// analyzers: determinism (no time.Now, math/rand, or order-leaking map
// iteration in generator code), panicpath (no panic reachable from the
// exported API), errcheck (no silently discarded errors in benchmark and
// integration code), explainkinds (every explain.Kind constant is emitted
// somewhere), and faultkinds (every faultline.Kind has an injection
// dispatch site and a test exercising it).
//
// Usage:
//
//	thalia-vet [flags] [packages]
//
//	-json      emit findings as JSON instead of text
//	-list      list the available checks and exit
//	-queries   run only the query/schema head
//	-go        run only the Go head
//
// The packages arguments are go list patterns for the Go head (default
// ./...). Exit status: 0 no findings, 1 findings, 2 the analysis itself
// failed.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"thalia/internal/analysis"
	"thalia/internal/benchmark"
	"thalia/internal/rewrite"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list the available checks and exit")
	queriesOnly := flag.Bool("queries", false, "run only the query/schema head")
	goOnly := flag.Bool("go", false, "run only the Go analyzers")
	flag.Parse()

	if *list {
		listChecks()
		return
	}
	rep, err := run(*queriesOnly, *goOnly, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "thalia-vet:", err)
		os.Exit(2)
	}
	rep.Sort()
	if *jsonOut {
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "thalia-vet:", err)
			os.Exit(2)
		}
		fmt.Println(string(b))
	} else {
		fmt.Print(rep.Text())
	}
	if len(rep.Findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "thalia-vet: %d finding(s)\n", len(rep.Findings))
		}
		os.Exit(1)
	}
}

func run(queriesOnly, goOnly bool, patterns []string) (*analysis.Report, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	rep := &analysis.Report{}
	if !goOnly {
		queryHead(rep, root)
	}
	if !queriesOnly {
		if err := goHead(rep, root, patterns); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// queryHead runs the benchmark/schema checks. Locators are best-effort:
// without one the findings lose file positions, not substance.
func queryHead(rep *analysis.Report, root string) {
	qloc, err := analysis.LoadLocator(
		filepath.Join(root, "internal/benchmark/queries.go"), "internal/benchmark/queries.go")
	if err != nil {
		qloc = nil
	}
	queries := benchmark.Queries()
	rep.Add(analysis.CheckQueries(queries, analysis.QueryCheckConfig{Locator: qloc})...)
	rep.Add(analysis.CheckComplexity(queries, nil, nil)...)
	mloc, err := analysis.LoadLocator(
		filepath.Join(root, "internal/rewrite/mappings.go"), "internal/rewrite/mappings.go")
	if err != nil {
		mloc = nil
	}
	rep.Add(analysis.CheckMappings(rewrite.NewMediator(), nil, mloc)...)
	rep.Add(analysis.CheckCatalogs()...)
}

func goHead(rep *analysis.Report, root string, patterns []string) error {
	pkgs, err := analysis.LoadGoPackages(root, patterns...)
	if err != nil {
		return err
	}
	rep.Add(analysis.RunGoAnalyzers(pkgs, analysis.DefaultGoAnalyzers())...)
	return nil
}

// moduleRoot locates the enclosing module's root directory via the go
// command, so thalia-vet works from any subdirectory of the repo.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

func listChecks() {
	var b bytes.Buffer
	b.WriteString("query/schema head:\n")
	for _, c := range [][2]string{
		{"parse", "every benchmark query text parses"},
		{"dead-path", "every path step resolves against the catalog schemas"},
		{"unbound-var", "every $variable is bound by an enclosing for/let"},
		{"unknown-func", "every called function is a builtin or declared external"},
		{"type-unify", "comparison operands unify under the schema's types"},
		{"complexity", "hand-assigned complexities match the automatic estimate (or are waived)"},
		{"mapping", "mediation tables resolve against source schemas; global queries are fully mapped"},
		{"catalog", "every source materializes, validates, and round-trips its schema"},
	} {
		fmt.Fprintf(&b, "  %-12s %s\n", c[0], c[1])
	}
	b.WriteString("go head:\n")
	for _, a := range analysis.DefaultGoAnalyzers() {
		fmt.Fprintf(&b, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Print(b.String())
}
