// Command xq runs the XQuery-subset processor standalone. Queries may
// reference XML files on disk through doc("path.xml"); with -testbed,
// doc() URIs resolve against the built-in THALIA testbed instead
// (doc("cmu.xml") is CMU's extracted catalog).
//
// Queries run on the compiled-plan engine by default; -engine=interp
// selects the reference tree-walking interpreter (the differential escape
// hatch — both engines produce identical results and errors).
//
// Usage:
//
//	xq 'FOR $b in doc("data.xml")/root/item RETURN $b'
//	xq -testbed 'FOR $b in doc("cmu.xml")/cmu/Course RETURN $b/Lecturer'
//	xq -engine=interp -f query.xq
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"thalia"
	"thalia/internal/explain"
	"thalia/internal/xmldom"
	"thalia/internal/xquery"
	"thalia/internal/xquery/plan"
)

func main() {
	file := flag.String("f", "", "read the query from a file")
	testbed := flag.Bool("testbed", false, "resolve doc() URIs against the built-in testbed")
	xmlOut := flag.Bool("xml", false, "print element results as XML instead of text values")
	explainTrace := flag.Bool("explain", false, "print an operator trace of the evaluation to stderr")
	engine := flag.String("engine", plan.EnginePlan, "execution engine: plan (compiled, default) or interp (reference interpreter)")
	flag.Parse()

	if err := run(*file, *testbed, *xmlOut, *explainTrace, *engine, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "xq:", err)
		os.Exit(1)
	}
}

func run(file string, testbed, xmlOut, explainTrace bool, engine string, args []string) error {
	var query string
	switch {
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		query = string(data)
	case len(args) > 0:
		query = strings.Join(args, " ")
	default:
		return fmt.Errorf("usage: xq [-testbed] [-xml] [-explain] '<query>' (or -f query.xq)")
	}

	var ctx *xquery.Context
	if testbed {
		ctx = thalia.QueryContext()
	} else {
		ctx = xquery.NewContext(func(uri string) (*xmldom.Document, error) {
			f, err := os.Open(uri)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return xmldom.Parse(f)
		})
	}
	eval, err := plan.EngineByName(engine)
	if err != nil {
		return err
	}
	var rec *explain.Recorder
	if explainTrace {
		rec = explain.NewRecorder()
		ctx.Explain = rec
	}
	seq, err := eval(query, ctx)
	if rec != nil {
		fmt.Fprint(os.Stderr, rec.Trace().Text())
	}
	if err != nil {
		var pe *xquery.ParseError
		if errors.As(err, &pe) && file != "" {
			return fmt.Errorf("%s:%d:%d: %s", file, pe.Line, pe.Column, pe.Msg)
		}
		return err
	}
	for _, item := range seq {
		if el, ok := item.(*xmldom.Element); ok && xmlOut {
			fmt.Println(el.String())
			continue
		}
		fmt.Println(xquery.ItemString(item))
	}
	return nil
}
