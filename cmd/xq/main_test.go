package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTestbedQuery(t *testing.T) {
	q := `FOR $b in doc("gatech.xml")/gatech/Course WHERE $b/Instructor = "Mark" RETURN $b/Title`
	if err := run("", true, false, false, "plan", []string{q}); err != nil {
		t.Errorf("testbed query: %v", err)
	}
	if err := run("", true, true, false, "plan", []string{`doc("cmu.xml")/cmu/Course[1]`}); err != nil {
		t.Errorf("xml output: %v", err)
	}
}

// The -explain flag reuses the evaluator's explain recorder: the query must
// still succeed with the trace enabled, and the trace goes to stderr so
// stdout results are unchanged.
func TestExplainFlag(t *testing.T) {
	q := `FOR $b in doc("gatech.xml")/gatech/Course WHERE $b/Instructor = "Mark" RETURN $b/Title`
	if err := run("", true, false, true, "plan", []string{q}); err != nil {
		t.Errorf("explain query: %v", err)
	}
	// A failing query still prints its partial trace before the error.
	if err := run("", true, false, true, "plan", []string{`doc("ghost.xml")/r`}); err == nil {
		t.Error("missing testbed document should error with -explain too")
	}
}

func TestFileQuery(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.xml")
	if err := os.WriteFile(dataPath, []byte(`<r><v>1</v><v>2</v></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	// doc() resolves against the filesystem without -testbed.
	q := `FOR $x in doc("` + dataPath + `")/r/v RETURN $x`
	if err := run("", false, false, false, "plan", []string{q}); err != nil {
		t.Errorf("file query: %v", err)
	}
	// Query from a file via -f.
	qPath := filepath.Join(dir, "query.xq")
	if err := os.WriteFile(qPath, []byte(q), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(qPath, false, false, false, "plan", nil); err != nil {
		t.Errorf("-f query: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run("", false, false, false, "plan", nil); err == nil {
		t.Error("no query should error")
	}
	if err := run("/nonexistent.xq", false, false, false, "plan", nil); err == nil {
		t.Error("missing query file should error")
	}
	if err := run("", true, false, false, "plan", []string{"FOR $b in"}); err == nil {
		t.Error("syntax error should surface")
	}
	if err := run("", false, false, false, "plan", []string{`doc("missing.xml")/r`}); err == nil {
		t.Error("missing document should error")
	}
}

// The -engine flag selects the execution path: plan (the compiled default)
// and interp (the reference interpreter) both answer the same query, and an
// unknown engine name fails with a usage error.
func TestEngineFlag(t *testing.T) {
	q := `FOR $b in doc("gatech.xml")/gatech/Course WHERE $b/Instructor = "Mark" RETURN $b/Title`
	for _, engine := range []string{"plan", "interp"} {
		if err := run("", true, false, false, engine, []string{q}); err != nil {
			t.Errorf("-engine=%s: %v", engine, err)
		}
	}
	if err := run("", true, false, false, "turbo", []string{q}); err == nil {
		t.Error("unknown engine name should error")
	}
}
