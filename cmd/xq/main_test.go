package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTestbedQuery(t *testing.T) {
	q := `FOR $b in doc("gatech.xml")/gatech/Course WHERE $b/Instructor = "Mark" RETURN $b/Title`
	if err := run("", true, false, false, []string{q}); err != nil {
		t.Errorf("testbed query: %v", err)
	}
	if err := run("", true, true, false, []string{`doc("cmu.xml")/cmu/Course[1]`}); err != nil {
		t.Errorf("xml output: %v", err)
	}
}

// The -explain flag reuses the evaluator's explain recorder: the query must
// still succeed with the trace enabled, and the trace goes to stderr so
// stdout results are unchanged.
func TestExplainFlag(t *testing.T) {
	q := `FOR $b in doc("gatech.xml")/gatech/Course WHERE $b/Instructor = "Mark" RETURN $b/Title`
	if err := run("", true, false, true, []string{q}); err != nil {
		t.Errorf("explain query: %v", err)
	}
	// A failing query still prints its partial trace before the error.
	if err := run("", true, false, true, []string{`doc("ghost.xml")/r`}); err == nil {
		t.Error("missing testbed document should error with -explain too")
	}
}

func TestFileQuery(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.xml")
	if err := os.WriteFile(dataPath, []byte(`<r><v>1</v><v>2</v></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	// doc() resolves against the filesystem without -testbed.
	q := `FOR $x in doc("` + dataPath + `")/r/v RETURN $x`
	if err := run("", false, false, false, []string{q}); err != nil {
		t.Errorf("file query: %v", err)
	}
	// Query from a file via -f.
	qPath := filepath.Join(dir, "query.xq")
	if err := os.WriteFile(qPath, []byte(q), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(qPath, false, false, false, nil); err != nil {
		t.Errorf("-f query: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run("", false, false, false, nil); err == nil {
		t.Error("no query should error")
	}
	if err := run("/nonexistent.xq", false, false, false, nil); err == nil {
		t.Error("missing query file should error")
	}
	if err := run("", true, false, false, []string{"FOR $b in"}); err == nil {
		t.Error("syntax error should surface")
	}
	if err := run("", false, false, false, []string{`doc("missing.xml")/r`}); err == nil {
		t.Error("missing document should error")
	}
}
