// Command thalia-server serves the THALIA web site (Figure 4 of the
// paper): browse the University course catalogs in their original
// representation, view the extracted XML documents and corresponding
// schemas, download the benchmark bundles, upload scores, and view the
// Honor Roll — plus the observability surface: /metrics (JSON and
// Prometheus text), /healthz, /debug/traces, and net/http/pprof under
// /debug/pprof/.
//
// With -journal-dir, benchmark runs started at POST /runs are
// flight-recorded to disk and reloaded on restart, so /runs history
// survives the process; /runs/{id}/events streams any run's journal live
// over SSE.
//
// The server drains gracefully: SIGINT/SIGTERM stops accepting new
// connections and waits up to -drain for in-flight requests.
//
// Usage:
//
//	thalia-server [-addr :8080] [-drain 10s] [-quiet] [-journal-dir DIR]
//	thalia-server -version
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thalia/internal/buildinfo"
	"thalia/internal/website"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "thalia-server:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until ctx is cancelled (a signal in
// production, the test in the smoke test), then drains. It is the whole
// server minus process concerns, so tests can drive it end to end.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("thalia-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	quiet := fs.Bool("quiet", false, "suppress the access log")
	journalDir := fs.String("journal-dir", "", "persist benchmark-run journals to this directory (and reload them on start)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("thalia-server"))
		return nil
	}

	site := website.New()
	if !*quiet {
		site.SetSlogger(slog.New(slog.NewTextHandler(stderr, nil)))
	}
	if *journalDir != "" {
		if err := site.SetJournalDir(*journalDir); err != nil {
			return err
		}
	}
	srv := &http.Server{
		Handler:           withPprof(site.Handler()),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Listen before reporting ready so -addr :0 callers can read the
	// actual port from stdout.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "THALIA web site listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // listener died on its own
	case <-ctx.Done():
	}
	fmt.Fprintf(stdout, "shutting down (drain %v)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// withPprof mounts the net/http/pprof handlers under /debug/pprof/ in
// front of the site handler. pprof's default registrations go to
// http.DefaultServeMux; routing explicitly here keeps the server
// self-contained (and keeps DefaultServeMux out of production).
func withPprof(site http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", site)
	return mux
}
