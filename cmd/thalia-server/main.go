// Command thalia-server serves the THALIA web site (Figure 4 of the
// paper): browse the University course catalogs in their original
// representation, view the extracted XML documents and corresponding
// schemas, download the benchmark bundles, upload scores, and view the
// Honor Roll.
//
// Usage:
//
//	thalia-server [-addr :8080]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"thalia"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           thalia.NewSiteHandler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("THALIA web site listening on %s\n", *addr)
	log.Fatal(srv.ListenAndServe())
}
