package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestServerVersionFlag(t *testing.T) {
	var stdout syncBuffer
	if err := run(context.Background(), []string{"-version"}, &stdout, io.Discard); err != nil {
		t.Fatalf("-version: %v", err)
	}
	if !strings.Contains(stdout.String(), "thalia-server") {
		t.Errorf("version output = %q", stdout.String())
	}
}

// Boot with -journal-dir, start a run over HTTP, and require the journal
// on disk once the run reports complete.
func TestServerJournalDir(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet", "-drain", "5s",
			"-journal-dir", dir}, &stdout, io.Discard)
	}()
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before listening: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if addr == "" {
		t.Fatalf("server never reported its address; stdout: %q", stdout.String())
	}
	base := "http://" + addr

	resp, err := http.PostForm(base+"/runs", url.Values{"system": {"cohera"}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs: %d %s", resp.StatusCode, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil || created.ID == "" {
		t.Fatalf("POST /runs body = %q (err %v)", body, err)
	}

	var complete bool
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/runs/" + created.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var sum struct {
			Complete bool `json:"complete"`
		}
		if err := json.Unmarshal(b, &sum); err != nil {
			t.Fatalf("run summary = %q (err %v)", b, err)
		}
		if sum.Complete {
			complete = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !complete {
		t.Fatal("run never completed")
	}

	if _, err := os.Stat(filepath.Join(dir, created.ID+".jsonl")); err != nil {
		t.Errorf("journal file missing: %v", err)
	}

	// The listing includes the run.
	resp, err = http.Get(base + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), created.ID) {
		t.Errorf("GET /runs missing %s:\n%s", created.ID, b)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
