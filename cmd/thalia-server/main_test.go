package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe Writer the server's stdout goes to.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+:\d+)`)

// TestServerSmoke boots the real server on :0, hits the health and
// observability endpoints over real HTTP, then cancels the run context and
// requires a clean drain — the signal-driven shutdown path minus the
// signal.
func TestServerSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet", "-drain", "5s"}, &stdout, io.Discard)
	}()

	// Wait for the listener to report its address.
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before listening: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if addr == "" {
		t.Fatalf("server never reported its address; stdout: %q", stdout.String())
	}
	base := "http://" + addr

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil || health.Status != "ok" {
		t.Errorf("healthz body = %q (err %v)", body, err)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("healthz response missing X-Request-ID (middleware not mounted)")
	}

	// A page request, then its footprint in /metrics.
	if resp, _ := get("/catalogs"); resp.StatusCode != http.StatusOK {
		t.Errorf("catalogs: %d", resp.StatusCode)
	}
	if _, body := get("/metrics?format=prometheus"); !strings.Contains(body, `http_requests_total{code="200",route="/catalogs"} 1`) {
		t.Errorf("metrics missing catalogs counter:\n%.600s", body)
	}

	// pprof is mounted.
	if resp, _ := get("/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: %d", resp.StatusCode)
	}

	// Cancel = SIGINT: the server must drain and return nil promptly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within 10s")
	}
	if !strings.Contains(stdout.String(), "shutting down") {
		t.Errorf("stdout missing shutdown notice: %q", stdout.String())
	}
}

// A second server on the same port must fail fast with the listen error,
// not hang — the run function surfaces startup errors.
func TestServerListenError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet"}, &stdout, io.Discard)
	}()
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("first server never came up")
	}
	err := run(context.Background(), []string{"-addr", addr, "-quiet"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("second listener on the same port succeeded, want error")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first server shutdown: %v", err)
	}
}
