// Command thalia-bench runs the repo's performance harnesses and gates CI
// on their results.
//
//	thalia-bench engine  [-out BENCH_engine.json] [-runs 3] [-pool N]
//	                     [-profile DIR] [-journal run.jsonl]
//	thalia-bench chaos   [-out BENCH_chaos.json] [-runs 3] [-pool N] [-seed 1]
//	                     [-journal run.jsonl]
//	thalia-bench scale   [-out BENCH_scale.json] [-sources 35,500,5000]
//	                     [-mix uniform] [-seed 42] [-pool N] [-journal run.jsonl]
//	thalia-bench server  [-out BENCH_server.json] [-clients 8] [-requests 50]
//	thalia-bench plan    [-runs 200]
//	thalia-bench report  [-json] [-require-complete] <journal.jsonl>
//	thalia-bench compare -baseline BENCH_engine.json -fresh fresh.json
//	                     [-tolerance 0.30] [-slowdown 1.0]
//
// engine and chaos optionally flight-record one extra evaluation with
// -journal: an append-only JSONL run journal (internal/journal) that report
// replays into the run summary — CI uploads it and asserts the replay
// reproduces the digest recorded in the journal's run-end event.
//
// engine times benchmark.MeasureEngine (the uncached sequential seed path
// vs the shared-prep-cached sequential and pooled configurations, over the
// four built-in systems, plus the xquery_eval interpreter-vs-plan engine
// rows); -profile writes cpu.pprof and heap.pprof for the measurement to
// DIR, so a red gate in CI is diagnosable from the uploaded artifact. chaos
// times benchmark.MeasureChaos (the same evaluation under a seeded
// standard-mix fault plan with the default resilience policy — the cost of
// retries, backoff, and breaker accounting); server drives
// website.MeasureServer (N concurrent clients replaying the
// catalog/schema/query routes); plan reports per-query ns/op for the
// compiled-plan engine — the default execution path — against the
// reference interpreter (the -engine=interp escape hatch), checking result
// equality as it goes. compare reads two artifacts of the same suite and
// fails (exit 1) if the fresh run regressed beyond the tolerance:
// engine/chaos ns/op per configuration (including the plan_cache and
// xquery_eval rows), the seq→cached speedup ratio and the interp→plan
// xquery_speedup ratio, server p95 per route. -slowdown multiplies the
// fresh numbers first — an injected regression that proves the gate
// actually trips.
//
// scale times scenario.MeasureScale: generated workloads of -sources
// catalogs (comma-separated curve points) with the -mix heterogeneity mix,
// evaluated by the scenario mediator on a streaming runner — documents
// materialize per cell and are released, so memory stays O(pool) while the
// curve's cells/sec rows pin throughput at each size in BENCH_scale.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"thalia/internal/benchmark"
	"thalia/internal/buildinfo"
	"thalia/internal/catalog"
	"thalia/internal/cohera"
	"thalia/internal/faultline"
	"thalia/internal/integration"
	"thalia/internal/iwiz"
	"thalia/internal/journal"
	"thalia/internal/rewrite"
	"thalia/internal/scenario"
	"thalia/internal/telemetry"
	"thalia/internal/ufmw"
	"thalia/internal/website"
	"thalia/internal/xquery"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "thalia-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("need a subcommand: engine | chaos | scale | server | plan | report | compare")
	}
	switch args[0] {
	case "engine":
		return engineCmd(args[1:], out)
	case "chaos":
		return chaosCmd(args[1:], out)
	case "scale":
		return scaleCmd(args[1:], out)
	case "server":
		return serverCmd(args[1:], out)
	case "plan":
		return planCmd(args[1:], out)
	case "report":
		return reportCmd(args[1:], out)
	case "compare":
		return compareCmd(args[1:], out)
	case "-version", "--version":
		fmt.Fprintln(out, buildinfo.String("thalia-bench"))
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (engine | chaos | scale | server | plan | report | compare)", args[0])
	}
}

func systems() []integration.System {
	return []integration.System{cohera.New(), iwiz.New(), ufmw.New(), rewrite.NewSystem()}
}

func engineCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("engine", flag.ContinueOnError)
	path := fs.String("out", "BENCH_engine.json", "artifact path")
	runs := fs.Int("runs", 3, "EvaluateAll executions per configuration")
	pool := fs.Int("pool", runtime.GOMAXPROCS(0), "parallel pool size to measure")
	profileDir := fs.String("profile", "", "write cpu.pprof and heap.pprof for the measurement to this directory")
	journalPath := fs.String("journal", "", "also flight-record one evaluation to this JSONL journal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pool < 2 {
		*pool = 2
	}
	if *profileDir != "" {
		stop, err := startProfiles(*profileDir)
		if err != nil {
			return err
		}
		defer stop()
	}
	rep, err := benchmark.MeasureEngine(*runs, []int{*pool}, systems()...)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(*path); err != nil {
		return err
	}
	fmt.Fprintf(out, "engine: %d configs, speedup %.2fx, xquery speedup %.2fx, wrote %s\n",
		len(rep.Timings), rep.Speedup, rep.XQuerySpeedup, *path)
	if *journalPath != "" {
		if err := journaledRun(*journalPath, "thalia-bench engine", *pool, 0, false); err != nil {
			return err
		}
		fmt.Fprintf(out, "engine: journaled run written to %s\n", *journalPath)
	}
	return nil
}

// journaledRun executes one flight-recorded evaluation of the built-in
// systems — with the standard chaos mix and resilience policy when chaos is
// set — and writes its journal to path. The journal is the run's durable
// artifact: `thalia-bench report` replays it, and CI asserts the replayed
// digest matches the run-end record.
func journaledRun(path, harness string, pool int, seed int64, chaos bool) error {
	w, err := journal.Create(path)
	if err != nil {
		return err
	}
	rec := &journal.Recorder{W: w, RunID: runIDFromPath(path), Harness: harness}
	runner := benchmark.NewRunner()
	runner.Concurrency = pool
	runner.Telemetry = telemetry.NewRegistry()
	runner.Journal = rec
	sys := systems()
	if chaos {
		plan := faultline.StandardMix(seed)
		rec.Seed = seed
		rec.FaultPlanDigest = plan.Digest()
		runner.Resilience = benchmark.DefaultResilience(seed)
		for i, s := range sys {
			sys[i] = faultline.Wrap(s, plan, nil)
		}
	}
	if _, err := runner.EvaluateAll(sys...); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// runIDFromPath derives a run ID from the journal filename.
func runIDFromPath(path string) string {
	base := filepath.Base(path)
	if ext := filepath.Ext(base); ext != "" {
		base = base[:len(base)-len(ext)]
	}
	return base
}

// startProfiles begins a CPU profile in dir and returns a stop function
// that finishes it and writes a heap profile alongside (cpu.pprof,
// heap.pprof) — the artifacts CI uploads so a red benchmark gate is
// diagnosable from the run page without a local repro.
func startProfiles(dir string) (func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "thalia-bench: close cpu profile:", err)
		}
		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "thalia-bench: heap profile:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(heap); err != nil {
			fmt.Fprintln(os.Stderr, "thalia-bench: heap profile:", err)
		}
		// Close explicitly: buffered profile writes surface their errors here.
		if err := heap.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "thalia-bench: close heap profile:", err)
		}
	}, nil
}

func chaosCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	path := fs.String("out", "BENCH_chaos.json", "artifact path")
	runs := fs.Int("runs", 3, "EvaluateAll executions per configuration")
	pool := fs.Int("pool", runtime.GOMAXPROCS(0), "parallel pool size to measure")
	seed := fs.Int64("seed", 1, "fault plan and jitter seed")
	journalPath := fs.String("journal", "", "also flight-record one evaluation to this JSONL journal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pool < 2 {
		*pool = 2
	}
	rep, err := benchmark.MeasureChaos(*runs, []int{*pool}, *seed, systems()...)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(*path); err != nil {
		return err
	}
	fmt.Fprintf(out, "chaos: %d configs, speedup %.2fx, wrote %s\n", len(rep.Timings), rep.Speedup, *path)
	if *journalPath != "" {
		if err := journaledRun(*journalPath, "thalia-bench chaos", *pool, *seed, true); err != nil {
			return err
		}
		fmt.Fprintf(out, "chaos: journaled run written to %s\n", *journalPath)
	}
	return nil
}

// scaleCmd measures the scenario scaling curve and writes the
// "benchmark_scale" artifact; -journal additionally flight-records one
// streaming evaluation of the second curve point (500 sources by default)
// for replay verification.
func scaleCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scale", flag.ContinueOnError)
	path := fs.String("out", "BENCH_scale.json", "artifact path")
	sourcesFlag := fs.String("sources", "", "comma-separated curve points (default 35,500,5000)")
	mixFlag := fs.String("mix", "uniform", "heterogeneity mix (e.g. uniform or synonyms:2,nulls)")
	seed := fs.Int64("seed", 42, "workload generation seed")
	pool := fs.Int("pool", runtime.GOMAXPROCS(0), "worker pool size")
	journalPath := fs.String("journal", "", "also flight-record one evaluation to this JSONL journal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := scenario.ParseMix(*mixFlag)
	if err != nil {
		return err
	}
	points, err := parsePoints(*sourcesFlag)
	if err != nil {
		return err
	}
	rep, err := scenario.MeasureScale(points, mix, *seed, *pool)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(*path); err != nil {
		return err
	}
	for _, tm := range rep.Timings {
		fmt.Fprintf(out, "scale: %-14s %10.0f cells/sec (%d run(s), %.1f ms/op)\n",
			tm.Name, tm.CellsPerSec, tm.Runs, float64(tm.NsPerOp)/1e6)
	}
	fmt.Fprintf(out, "scale: wrote %s\n", *path)
	if *journalPath != "" {
		n := 500
		if len(points) > 0 {
			n = points[0]
			if len(points) > 1 {
				n = points[1]
			}
		}
		if err := journaledScaleRun(*journalPath, n, mix, *seed, *pool); err != nil {
			return err
		}
		fmt.Fprintf(out, "scale: journaled %d-source run written to %s\n", n, *journalPath)
	}
	return nil
}

// parsePoints parses the -sources list; empty means the default curve.
func parsePoints(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var points []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("scale: bad -sources point %q", part)
		}
		points = append(points, n)
	}
	return points, nil
}

// journaledScaleRun flight-records one streaming scenario evaluation, the
// scale counterpart of journaledRun: same recorder, scenario mediator and
// streaming runner instead of the canonical systems.
func journaledScaleRun(path string, sources int, mix scenario.Mix, seed int64, pool int) error {
	sc, err := scenario.New(scenario.Params{Sources: sources, Seed: seed, Mix: mix})
	if err != nil {
		return err
	}
	w, err := journal.Create(path)
	if err != nil {
		return err
	}
	rec := &journal.Recorder{W: w, RunID: runIDFromPath(path), Harness: "thalia-bench scale", Seed: seed}
	runner := benchmark.NewStreamingRunner(sc.Queries())
	runner.Concurrency = pool
	runner.Telemetry = telemetry.NewRegistry()
	runner.Journal = rec
	if _, err := runner.EvaluateAll(sc.NewMediator()); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// reportCmd replays a run journal into its projection and renders the run
// report — human text by default, machine JSON with -json. Replay always
// verifies structural integrity (parseable events, monotonic sequence); a
// complete journal must additionally replay to the exact ranked-scorecard
// digest its run-end event recorded, and -require-complete turns a missing
// run_end (crashed or still-running journal) into a failure too.
func reportCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "render the machine-readable report")
	requireComplete := fs.Bool("require-complete", false, "fail unless the journal has a verified run_end")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("report: usage: thalia-bench report [-json] [-require-complete] <journal.jsonl>")
	}
	events, err := journal.ReadFile(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("report: %s: empty journal", fs.Arg(0))
	}
	p := journal.Replay(events)
	if p.Complete() {
		if err := p.Verify(); err != nil {
			return fmt.Errorf("report: %s: %w", fs.Arg(0), err)
		}
	} else if *requireComplete {
		return fmt.Errorf("report: %s: journal incomplete: no run_end event", fs.Arg(0))
	}
	if *asJSON {
		raw, err := p.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(raw))
		return nil
	}
	fmt.Fprint(out, p.Report())
	return nil
}

func serverCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("server", flag.ContinueOnError)
	path := fs.String("out", "BENCH_server.json", "artifact path")
	clients := fs.Int("clients", 8, "concurrent clients")
	requests := fs.Int("requests", 50, "requests per client")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := website.MeasureServer(*clients, *requests)
	if err != nil {
		return err
	}
	if rep.Non200 > 0 {
		return fmt.Errorf("load harness saw %d non-200 responses", rep.Non200)
	}
	if err := rep.WriteJSON(*path); err != nil {
		return err
	}
	fmt.Fprintf(out, "server: %d requests at %.0f req/s over %d routes, wrote %s\n",
		rep.TotalRequests, rep.ThroughputRPS, len(rep.Routes), *path)
	return nil
}

// planCmd reports per-query compiled-plan vs reference-interpreter timings
// over the benchmark queries, evaluated against the extracted catalogs. The
// compiled plan is the default execution path, so its result is the ground
// truth here too: each query is compiled through a runner-style PrepCache
// plan cache and re-evaluated -runs times — the reuse pattern a real run
// gives — and the interpreter (the -engine=interp escape hatch) is checked
// against the plan's answer before timing, so the report cannot quietly
// compare different answers.
func planCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	runs := fs.Int("runs", 200, "evaluations per engine per query")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 {
		*runs = 1
	}
	resolve := catalog.Resolver()
	prep := benchmark.NewPrepCache()
	fmt.Fprintf(out, "%-5s %14s %14s %8s\n", "query", "interp ns/op", "plan ns/op", "ratio")
	var totalI, totalP int64
	for _, q := range benchmark.Queries() {
		expr, err := xquery.Parse(q.XQuery)
		if err != nil {
			return fmt.Errorf("q%02d: parse: %w", q.ID, err)
		}
		p, err := prep.Plans.Get(q.XQuery)
		if err != nil {
			return fmt.Errorf("q%02d: compile: %w", q.ID, err)
		}
		ctx := xquery.NewContext(resolve)
		got, gerr := p.Eval(ctx)
		want, werr := xquery.Eval(expr, ctx)
		if (werr == nil) != (gerr == nil) || (werr != nil && werr.Error() != gerr.Error()) {
			return fmt.Errorf("q%02d: engines disagree: plan %v vs interpreter %v", q.ID, gerr, werr)
		}
		if gerr == nil && xquery.SequenceString(got) != xquery.SequenceString(want) {
			return fmt.Errorf("q%02d: interpreter disagrees with the plan result", q.ID)
		}
		start := time.Now()
		for i := 0; i < *runs; i++ {
			_, _ = xquery.Eval(expr, ctx)
		}
		interp := time.Since(start).Nanoseconds() / int64(*runs)
		start = time.Now()
		for i := 0; i < *runs; i++ {
			_, _ = p.Eval(ctx)
		}
		planNs := time.Since(start).Nanoseconds() / int64(*runs)
		totalI += interp
		totalP += planNs
		ratio := 0.0
		if planNs > 0 {
			ratio = float64(interp) / float64(planNs)
		}
		fmt.Fprintf(out, "q%02d   %14d %14d %7.2fx\n", q.ID, interp, planNs, ratio)
	}
	ratio := 0.0
	if totalP > 0 {
		ratio = float64(totalI) / float64(totalP)
	}
	fmt.Fprintf(out, "total %14d %14d %7.2fx\n", totalI, totalP, ratio)
	return nil
}

// suiteProbe reads just the suite discriminator of a BENCH_*.json file.
type suiteProbe struct {
	Suite string `json:"suite"`
}

func compareCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	basePath := fs.String("baseline", "", "committed BENCH_*.json")
	freshPath := fs.String("fresh", "", "freshly measured BENCH_*.json")
	tolerance := fs.Float64("tolerance", 0.30, "allowed relative slowdown (0.30 = +30%)")
	slowdown := fs.Float64("slowdown", 1.0, "multiply fresh numbers (gate self-test)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *freshPath == "" {
		return fmt.Errorf("compare: need -baseline and -fresh")
	}
	baseRaw, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	freshRaw, err := os.ReadFile(*freshPath)
	if err != nil {
		return err
	}
	var baseProbe, freshProbe suiteProbe
	if err := json.Unmarshal(baseRaw, &baseProbe); err != nil {
		return fmt.Errorf("%s: %w", *basePath, err)
	}
	if err := json.Unmarshal(freshRaw, &freshProbe); err != nil {
		return fmt.Errorf("%s: %w", *freshPath, err)
	}
	if baseProbe.Suite != freshProbe.Suite {
		return fmt.Errorf("suite mismatch: baseline %q vs fresh %q", baseProbe.Suite, freshProbe.Suite)
	}

	var regressions []string
	switch baseProbe.Suite {
	case "benchmark_engine", "benchmark_chaos", "benchmark_scale":
		regressions, err = compareEngine(baseRaw, freshRaw, *tolerance, *slowdown, out)
	case "website_server":
		regressions, err = compareServer(baseRaw, freshRaw, *tolerance, *slowdown, out)
	default:
		return fmt.Errorf("unknown suite %q", baseProbe.Suite)
	}
	if err != nil {
		return err
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(out, "REGRESSION: %s\n", r)
		}
		return fmt.Errorf("%d metric(s) regressed beyond +%.0f%%", len(regressions), *tolerance*100)
	}
	fmt.Fprintf(out, "compare: %s within +%.0f%% of baseline\n", baseProbe.Suite, *tolerance*100)
	return nil
}

// check appends a regression line if fresh exceeds base by more than tol,
// and always prints the comparison row.
func check(out io.Writer, regressions []string, name string, base, fresh, tol float64, unit string) []string {
	limit := base * (1 + tol)
	status := "ok"
	if fresh > limit {
		status = "REGRESSED"
		regressions = append(regressions,
			fmt.Sprintf("%s: %.3f%s vs baseline %.3f%s (limit %.3f%s)", name, fresh, unit, base, unit, limit, unit))
	}
	delta := 0.0
	if base > 0 {
		delta = (fresh - base) / base * 100
	}
	fmt.Fprintf(out, "  %-34s %12.3f%s %12.3f%s %+7.1f%% %s\n", name, base, unit, fresh, unit, delta, status)
	return regressions
}

func compareEngine(baseRaw, freshRaw []byte, tol, slowdown float64, out io.Writer) ([]string, error) {
	var base, fresh benchmark.Report
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(freshRaw, &fresh); err != nil {
		return nil, err
	}
	freshBy := map[string]benchmark.Timing{}
	for _, tm := range fresh.Timings {
		freshBy[tm.Name] = tm
	}
	fmt.Fprintf(out, "engine compare (%-s): baseline vs fresh ns/op\n", base.Suite)
	var regressions []string
	for _, tm := range base.Timings {
		ft, ok := freshBy[tm.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from fresh run", tm.Name))
			continue
		}
		regressions = check(out, regressions, tm.Name,
			float64(tm.NsPerOp)/1e6, float64(ft.NsPerOp)/1e6*slowdown, tol, "ms")
	}
	// Speedup is a ratio where higher is better: losing more than the
	// tolerance's share of the baseline speedup is a regression even if no
	// single row tripped its own limit.
	if base.Speedup > 0 {
		floor := base.Speedup * (1 - tol)
		status := "ok"
		if fresh.Speedup < floor {
			status = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("speedup: %.2fx vs baseline %.2fx (floor %.2fx)", fresh.Speedup, base.Speedup, floor))
		}
		fmt.Fprintf(out, "  %-34s %13.2fx %13.2fx         %s\n", "speedup", base.Speedup, fresh.Speedup, status)
	}
	// XQuerySpeedup gates the engine flip the same way: the compiled-plan
	// engine must stay ahead of the reference interpreter by at least the
	// tolerance's share of the committed ratio.
	if base.XQuerySpeedup > 0 {
		floor := base.XQuerySpeedup * (1 - tol)
		status := "ok"
		if fresh.XQuerySpeedup < floor {
			status = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("xquery_speedup: %.2fx vs baseline %.2fx (floor %.2fx)",
					fresh.XQuerySpeedup, base.XQuerySpeedup, floor))
		}
		fmt.Fprintf(out, "  %-34s %13.2fx %13.2fx         %s\n",
			"xquery_speedup", base.XQuerySpeedup, fresh.XQuerySpeedup, status)
	}
	return regressions, nil
}

func compareServer(baseRaw, freshRaw []byte, tol, slowdown float64, out io.Writer) ([]string, error) {
	var base, fresh website.ServerReport
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(freshRaw, &fresh); err != nil {
		return nil, err
	}
	freshBy := map[string]website.RouteTiming{}
	for _, rt := range fresh.Routes {
		freshBy[rt.Route] = rt
	}
	fmt.Fprintf(out, "server compare: baseline vs fresh p95 per route\n")
	var regressions []string
	for _, rt := range base.Routes {
		ft, ok := freshBy[rt.Route]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from fresh run", rt.Route))
			continue
		}
		regressions = check(out, regressions, rt.Route, rt.P95MS, ft.P95MS*slowdown, tol, "ms")
	}
	if fresh.Non200 > base.Non200 {
		regressions = append(regressions,
			fmt.Sprintf("non-200 responses: %d vs baseline %d", fresh.Non200, base.Non200))
	}
	return regressions, nil
}
