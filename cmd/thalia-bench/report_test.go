package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thalia/internal/journal"
)

// engine -journal flight-records a run whose report replays to the exact
// digest the run-end event stamped — the acceptance loop CI runs.
func TestEngineJournalAndReport(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "engine.json")
	jpath := filepath.Join(dir, "engine-run.jsonl")
	var out strings.Builder
	if err := run([]string{"engine", "-out", artifact, "-runs", "1", "-pool", "2", "-journal", jpath}, &out); err != nil {
		t.Fatalf("engine: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "journaled run written to "+jpath) {
		t.Errorf("missing journal notice:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"report", "-require-complete", jpath}, &out); err != nil {
		t.Fatalf("report: %v\n%s", err, out.String())
	}
	for _, want := range []string{"engine-run", "thalia-bench engine", "Ranking", "recorded digest: sha256:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"report", "-json", jpath}, &out); err != nil {
		t.Fatalf("report -json: %v", err)
	}
	var sum journal.ReportSummary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("report -json output invalid: %v", err)
	}
	if !sum.Complete || sum.CellsDone != 48 {
		t.Errorf("summary = complete %v, %d cells; want complete, 48", sum.Complete, sum.CellsDone)
	}
	if sum.RecordedDigest == "" || sum.RecordedDigest != sum.ReplayedDigest {
		t.Errorf("replay does not reproduce the recorded digest: %q vs %q", sum.RecordedDigest, sum.ReplayedDigest)
	}
}

// chaos -journal records seed, fault-plan digest and attempt histories.
func TestChaosJournal(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "chaos-run.jsonl")
	var out strings.Builder
	if err := run([]string{"chaos", "-out", filepath.Join(dir, "chaos.json"),
		"-runs", "1", "-pool", "2", "-seed", "7", "-journal", jpath}, &out); err != nil {
		t.Fatalf("chaos: %v\n%s", err, out.String())
	}
	events, err := journal.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	p := journal.Replay(events)
	if err := p.Verify(); err != nil {
		t.Fatalf("chaos journal does not verify: %v", err)
	}
	if p.Start.Seed != 7 || p.Start.FaultPlanDigest == "" || !p.Start.Resilience {
		t.Errorf("chaos provenance missing: %+v", p.Start)
	}
}

func TestReportRejectsBadJournals(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"report", filepath.Join(dir, "missing.jsonl")}, &out); err == nil {
		t.Error("report on a missing file must fail")
	}

	// An incomplete journal passes by default but fails -require-complete.
	partial := filepath.Join(dir, "partial.jsonl")
	w, err := journal.Create(partial)
	if err != nil {
		t.Fatal(err)
	}
	rec := &journal.Recorder{W: w, RunID: "partial", Harness: "test"}
	rec.RunStart([]string{"x"}, 12, 1, false)
	rec.CellStart("x", 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"report", partial}, &out); err != nil {
		t.Fatalf("report on incomplete journal: %v", err)
	}
	if !strings.Contains(out.String(), "INCOMPLETE") {
		t.Errorf("incomplete journal's report must say so:\n%s", out.String())
	}
	if err := run([]string{"report", "-require-complete", partial}, &out); err == nil {
		t.Error("-require-complete must fail on a journal without run_end")
	}

	// A tampered journal (cell event removed) must fail digest verification.
	if err := run([]string{"engine", "-out", filepath.Join(dir, "e.json"), "-runs", "1", "-pool", "2",
		"-journal", filepath.Join(dir, "tamper.jsonl")}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "tamper.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Drop one cell_done line; reindex seqs so only the digest can object.
	tampered := make([]string, 0, len(lines))
	dropped := false
	for _, line := range lines {
		if !dropped && strings.Contains(line, `"type":"cell_done"`) {
			dropped = true
			continue
		}
		tampered = append(tampered, line)
	}
	seq := 0
	for i, line := range tampered {
		if strings.TrimSpace(line) == "" {
			continue
		}
		seq++
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatal(err)
		}
		e["seq"] = seq
		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		tampered[i] = string(raw) + "\n"
	}
	tpath := filepath.Join(dir, "tampered.jsonl")
	if err := os.WriteFile(tpath, []byte(strings.Join(tampered, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"report", tpath}, &out); err == nil {
		t.Error("report must reject a journal whose replay misses the recorded digest")
	}
}

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "thalia-bench") {
		t.Errorf("version output = %q", out.String())
	}
}
