package main

import (
	"path/filepath"
	"strings"
	"testing"

	"thalia/internal/benchmark"
	"thalia/internal/website"
)

// writeReports produces a small real engine artifact and a fresh copy —
// identical runs, so compare must pass at any sane tolerance.
func writeEngineReport(t *testing.T, path string) {
	t.Helper()
	rep, err := benchmark.MeasureEngine(1, []int{2}, systems()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}

func TestCompareEnginePassAndInjectedSlowdownFails(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeEngineReport(t, base)

	// Same artifact on both sides: zero delta, must pass.
	var out strings.Builder
	if err := run([]string{"compare", "-baseline", base, "-fresh", base}, &out); err != nil {
		t.Fatalf("identical compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "within +30%") {
		t.Errorf("missing pass notice:\n%s", out.String())
	}

	// The CI gate's reason to exist: a 2× slowdown must fail.
	out.Reset()
	err := run([]string{"compare", "-baseline", base, "-fresh", base, "-slowdown", "2.0"}, &out)
	if err == nil {
		t.Fatalf("2x slowdown passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing regression lines:\n%s", out.String())
	}
}

// chaos writes a benchmark_chaos artifact that the engine comparer can
// gate, and trips on an injected slowdown like the engine suite.
func TestChaosCmdAndCompare(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "chaos.json")
	var out strings.Builder
	if err := run([]string{"chaos", "-out", base, "-runs", "1", "-pool", "2", "-seed", "1"}, &out); err != nil {
		t.Fatalf("chaos: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "wrote "+base) {
		t.Errorf("missing artifact notice:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"compare", "-baseline", base, "-fresh", base}, &out); err != nil {
		t.Fatalf("identical chaos compare failed: %v\n%s", err, out.String())
	}
	if err := run([]string{"compare", "-baseline", base, "-fresh", base, "-slowdown", "2.0"}, &out); err == nil {
		t.Fatal("2x chaos slowdown passed the gate")
	}
}

// plan prints one interpreter-vs-plan row per benchmark query plus a total,
// and errors out (rather than reporting) if the engines ever disagree.
func TestPlanCmdReportsAllQueries(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"plan", "-runs", "2"}, &out); err != nil {
		t.Fatalf("plan: %v\n%s", err, out.String())
	}
	for _, want := range []string{"q01", "q12", "total", "plan ns/op"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("plan report missing %q:\n%s", want, out.String())
		}
	}
}

func TestCompareServerSuite(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	rep, err := website.MeasureServer(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(base); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"compare", "-baseline", base, "-fresh", base}, &out); err != nil {
		t.Fatalf("identical server compare failed: %v\n%s", err, out.String())
	}
	if err := run([]string{"compare", "-baseline", base, "-fresh", base, "-slowdown", "3"}, &out); err == nil {
		t.Fatal("3x server slowdown passed the gate")
	}
}

func TestCompareSuiteMismatch(t *testing.T) {
	dir := t.TempDir()
	engine := filepath.Join(dir, "engine.json")
	server := filepath.Join(dir, "server.json")
	writeEngineReport(t, engine)
	rep, err := website.MeasureServer(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(server); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"compare", "-baseline", engine, "-fresh", server}, &out); err == nil ||
		!strings.Contains(err.Error(), "suite mismatch") {
		t.Fatalf("err = %v, want suite mismatch", err)
	}
}
