// Schemamatch runs the automatic schema-matching extension over the THALIA
// testbed: it matches each paper-named source's element vocabulary against
// the global concepts and reports which heterogeneities automatic matching
// resolves (synonyms, German terms, even name-free term columns via
// instance evidence) — and, by its residual, which still demand the
// programmatic integration work the benchmark scores.
package main

import (
	"fmt"
	"log"

	"thalia"
)

func main() {
	report, err := thalia.RunSchemaMatchExperiment()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Format())

	// Individual matches, to see the evidence at work.
	m := thalia.NewSchemaMatcher()
	fmt.Println("Selected correspondences:")
	for _, probe := range []struct {
		name   string
		values []string
	}{
		{"Lecturer", nil}, // case 1: dictionary
		{"Dozent", nil},   // case 5: lexicon
		{"Fall2003", []string{"Yannis", "Deutsch"}},         // case 11: instance
		{"Umfang", []string{"2V1U", "3V1U"}},                // name maps, values do not
		{"SectionTitle", []string{"0101(13795) Singh, H."}}, // composite, name only
	} {
		c := m.Match(probe.name, probe.values)
		fmt.Printf("  %-13s → %-11s (score %.2f, evidence: %s)\n",
			probe.name, c.Concept, c.Score, c.Evidence)
	}

	fmt.Println(`
What this demonstrates: name/dictionary/lexicon/instance matching aligns
*attribute names* across the testbed with high accuracy — but alignment is
only the first step. The value transformations (12h/24h clocks, Umfang vs
units), dual NULL semantics, and structural regroupings that queries 2, 4,
6-10 and 12 require remain programmatic work, which is exactly what the
THALIA scoring function measures.`)
}
