// Customsystem shows how to evaluate your own integration system on the
// THALIA benchmark: implement thalia.System, answer the queries you can,
// decline the rest with thalia.ErrUnsupported, and let the harness score
// you. The toy system here resolves only the synonym heterogeneity
// (query 1) by hard-wiring the Instructor/Lecturer correspondence — and
// the scorecard shows exactly what that buys.
package main

import (
	"fmt"
	"log"
	"strings"

	"thalia"
)

// synonymOnly is a minimal integration system: it knows one rename mapping
// (gatech's Instructor ≡ cmu's Lecturer) and nothing else.
type synonymOnly struct{}

func (synonymOnly) Name() string { return "SynonymsOnly" }

func (synonymOnly) Description() string {
	return "toy system resolving only the Instructor/Lecturer synonym"
}

func (synonymOnly) Answer(req thalia.Request) (*thalia.Answer, error) {
	if req.QueryID != 1 {
		return nil, thalia.ErrUnsupported
	}
	rows := []thalia.Row{}

	// Reference side: the query runs as written.
	seq, err := thalia.EvalXQuery(`FOR $b in doc("gatech.xml")/gatech/Course
		WHERE $b/Instructor = "Mark"
		RETURN $b/CourseNum`)
	if err != nil {
		return nil, err
	}
	for _, item := range seq {
		rows = append(rows, thalia.Row{
			"source": "gatech", "course": thalia.ItemString(item), "instructor": "Mark",
		})
	}

	// Challenge side: rewrite Instructor → Lecturer. CMU's Lecturer is
	// set-valued ("Song/Wing"), so match per component.
	seq, err = thalia.EvalXQuery(`FOR $b in doc("cmu.xml")/cmu/Course
		RETURN $b/CourseNumber $b/Lecturer`)
	if err != nil {
		return nil, err
	}
	for i := 0; i+1 < len(seq); i += 2 {
		num := thalia.ItemString(seq[i])
		for _, name := range strings.Split(thalia.ItemString(seq[i+1]), "/") {
			if strings.TrimSpace(name) == "Mark" {
				rows = append(rows, thalia.Row{
					"source": "cmu", "course": num, "instructor": "Mark",
				})
			}
		}
	}
	return &thalia.Answer{Rows: rows, Effort: thalia.EffortNone}, nil
}

func main() {
	card, err := thalia.Evaluate(synonymOnly{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(card.Format())

	// Compare against the built-in systems on the Honor Roll.
	others, err := thalia.EvaluateAll(thalia.NewCohera(), thalia.NewIWIZ())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("How it stacks up:")
	for _, c := range append(others, card) {
		fmt.Printf("  %-14s %2d/12 correct, complexity %d\n",
			c.System, c.CorrectCount(), c.ComplexityScore())
	}
}
