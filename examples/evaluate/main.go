// Evaluate reproduces Section 4.2 of the paper: it runs the full THALIA
// benchmark against the two integration systems the paper analyzes —
// Cohera (federated DBMS) and IWIZ (warehouse + mediator) — plus the
// reproduction's reference mediator, prints the per-query support table,
// the scoring-function outcome, and the resulting Honor Roll ranking.
package main

import (
	"fmt"
	"log"

	"thalia"
)

func main() {
	cards, err := thalia.EvaluateAll(
		thalia.NewCohera(),
		thalia.NewIWIZ(),
		thalia.NewReferenceMediator(),
		thalia.NewDeclarativeMediator(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The per-query table (who supports what, at which effort).
	fmt.Println(thalia.Comparison(cards))

	// Full scorecards with the scoring function of Section 3.2.
	for _, card := range cards {
		fmt.Println(card.Format())
	}

	// The ranking: correctness first, then the complexity tie-break —
	// "the higher the complexity score, the lower the level of
	// sophistication of the integration system."
	fmt.Println("Ranking (by correct answers, then lower complexity):")
	for i, card := range cards {
		fmt.Printf("  %d. %-18s %2d/12 correct, complexity %d\n",
			i+1, card.System, card.CorrectCount(), card.ComplexityScore())
	}

	fmt.Println("\nPaper's Section 4.2 claims, reproduced:")
	fmt.Println("  - Cohera: 4 queries with no code, 5 with user-defined code, 3 very difficult ✓")
	fmt.Println("  - IWIZ:   9 queries with small-to-moderate code, 3 unanswerable ✓")
	fmt.Println("  - Both legacy systems decline exactly queries 4, 5 and 8 ✓")
	fmt.Println("  - No existing system scores well; a full mediator can, at high complexity ✓")
}
