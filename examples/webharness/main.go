// Webharness drives the THALIA web site programmatically: it starts the
// site on a local listener, browses a catalog, downloads the benchmark
// bundle (checking its contents), uploads a benchmark score, and reads the
// Honor Roll back — the full "Run Benchmark" workflow of Figure 4.
package main

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"

	"thalia"
)

func main() {
	srv := httptest.NewServer(thalia.NewSiteHandler())
	defer srv.Close()
	fmt.Println("THALIA site running at", srv.URL)

	// Browse one original catalog snapshot.
	page := mustGet(srv.URL + "/catalogs/umd")
	fmt.Printf("\n/catalogs/umd → %d bytes of cached HTML (nested sections: %v)\n",
		len(page), strings.Contains(page, `class="sections"`))

	// View extracted XML and schema.
	xml := mustGet(srv.URL + "/browse/eth")
	fmt.Printf("/browse/eth   → German schema preserved: %v\n", strings.Contains(xml, "<Titel>"))
	xsd := mustGet(srv.URL + "/schema/eth")
	fmt.Printf("/schema/eth   → schema inferred: %v\n", strings.Contains(xsd, "xs:schema"))

	// Download the benchmark bundle (option 2 of "Run Benchmark").
	data := mustGet(srv.URL + "/download/benchmark.zip")
	zr, err := zip.NewReader(bytes.NewReader([]byte(data)), int64(len(data)))
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, f := range zr.File {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	fmt.Printf("\n/download/benchmark.zip → %d files:\n", len(names))
	for _, n := range names {
		fmt.Println("  ", n)
	}

	// Run the benchmark locally and upload the score.
	card, err := thalia.Evaluate(thalia.NewIWIZ())
	if err != nil {
		log.Fatal(err)
	}
	form := url.Values{
		"system":     {card.System},
		"group":      {"Reproduction Lab"},
		"correct":    {fmt.Sprint(card.CorrectCount())},
		"complexity": {fmt.Sprint(card.ComplexityScore())},
	}
	resp, err := http.PostForm(srv.URL+"/scores", form)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nuploaded score: %s %d/12 (complexity %d)\n",
		card.System, card.CorrectCount(), card.ComplexityScore())

	// Read the Honor Roll back.
	roll := mustGet(srv.URL + "/honor-roll")
	fmt.Printf("/honor-roll shows IWIZ: %v\n", strings.Contains(roll, "IWIZ"))
}

func mustGet(u string) string {
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", u, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(body)
}
