// Quickstart: load the THALIA testbed, look at one source's three
// artifacts (original HTML, extracted XML, inferred schema), run a
// benchmark-style XQuery against it, and print one benchmark query's
// sample solution.
package main

import (
	"fmt"
	"log"
	"strings"

	"thalia"
)

func main() {
	// The testbed: 25 university course catalogs, generated and extracted
	// deterministically — no network, no external data.
	sources := thalia.Sources()
	fmt.Printf("THALIA testbed: %d sources\n\n", len(sources))

	// Every source carries the three artifacts the THALIA web site serves.
	brown, err := thalia.LookupSource("brown")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== brown: original catalog page (first lines) ==")
	printHead(brown.Page(), 6)

	xml, err := brown.XML()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== brown: extracted XML (first lines) ==")
	printHead(xml, 12)

	sch, err := brown.Schema()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== brown: inferred XML Schema (first lines) ==")
	printHead(sch.Encode(), 10)

	// Query the testbed with the paper's own query shape.
	fmt.Println("\n== XQuery: courses taught by Mark (query 1's reference side) ==")
	seq, err := thalia.EvalXQuery(`FOR $b in doc("gatech.xml")/gatech/Course
		WHERE $b/Instructor = "Mark"
		RETURN $b/Title`)
	if err != nil {
		log.Fatal(err)
	}
	for _, item := range seq {
		fmt.Println("  ", thalia.ItemString(item))
	}

	// Each benchmark query ships with its expected integrated answer.
	q, err := thalia.QueryByID(1)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := q.Expected()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== Query 1 (%s): sample solution ==\n", q.Name)
	fmt.Println(thalia.ResultXML(q.ID, rows).Encode())
}

func printHead(s string, n int) {
	for i, line := range strings.Split(s, "\n") {
		if i >= n {
			fmt.Println("  …")
			return
		}
		fmt.Println("  " + line)
	}
}
