package thalia

// Cross-module integration tests: invariants that span the whole pipeline
// (render → wrap → extract → infer → query → integrate → score), plus
// failure injection on corrupted snapshots.

import (
	"strings"
	"testing"

	"thalia/internal/benchmark"
	"thalia/internal/catalog"
	"thalia/internal/integration"
	"thalia/internal/scenario"
	"thalia/internal/tess"
	"thalia/internal/xmldom"
	"thalia/internal/xsd"
)

// Every source's wrapper configuration survives its own file format: the
// marshaled-and-reparsed config extracts an identical document.
func TestPipelineConfigRoundTripAllSources(t *testing.T) {
	for _, src := range Sources() {
		src := src
		t.Run(src.Name, func(t *testing.T) {
			page := src.Page()
			cfg := src.Wrapper()
			reparsed, err := tess.ParseConfig(tess.MarshalConfig(cfg))
			if err != nil {
				t.Fatalf("config round trip: %v", err)
			}
			d1, err := tess.Extract(cfg, page)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := tess.Extract(reparsed, page)
			if err != nil {
				t.Fatal(err)
			}
			if !xmldom.Equal(d1.Root, d2.Root) {
				t.Error("round-tripped config extracts a different document")
			}
		})
	}
}

// Every source's extracted XML survives serialization: parse(encode(doc))
// equals doc, and the inferred schema accepts the reparsed document too.
func TestPipelineSerializationStableAllSources(t *testing.T) {
	for _, src := range Sources() {
		src := src
		t.Run(src.Name, func(t *testing.T) {
			doc, err := src.Document()
			if err != nil {
				t.Fatal(err)
			}
			reparsed, err := xmldom.ParseString(doc.Encode())
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			if !xmldom.Equal(doc.Root, reparsed.Root) {
				t.Error("serialization changed the document")
			}
			sch, err := src.Schema()
			if err != nil {
				t.Fatal(err)
			}
			if errs := sch.Validate(reparsed); len(errs) != 0 {
				t.Errorf("reparsed document does not validate: %v", errs[0])
			}
		})
	}
}

// The schema published for each source also round-trips through its own
// xs: syntax and still validates the source.
func TestPipelineSchemaRoundTripAllSources(t *testing.T) {
	for _, src := range Sources() {
		sch, err := src.Schema()
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := xmldom.ParseString(sch.Encode())
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		sch2, err := xsd.FromXML(parsed)
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		doc, err := src.Document()
		if err != nil {
			t.Fatal(err)
		}
		if errs := sch2.Validate(doc); len(errs) != 0 {
			t.Errorf("%s: reparsed schema rejects source: %v", src.Name, errs[0])
		}
	}
}

// Every sample solution published by the site parses back into exactly the
// expected rows (the RowsToXML/RowsFromXML wire format is faithful).
func TestSampleSolutionsRoundTrip(t *testing.T) {
	for _, q := range Queries() {
		want, err := q.Expected()
		if err != nil {
			t.Fatal(err)
		}
		doc := ResultXML(q.ID, want)
		reparsed, err := xmldom.ParseString(doc.Encode())
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		got, err := integration.RowsFromXML(reparsed)
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		missing, extra := integration.MatchRows(want, got)
		if len(missing) != 0 || len(extra) != 0 {
			t.Errorf("query %d: solution round trip lost rows: missing=%v extra=%v",
				q.ID, missing, extra)
		}
	}
}

// Failure injection: corrupting a cached snapshot must produce a
// diagnosable wrapper error, not silent bad data.
func TestFailureInjectionCorruptedSnapshot(t *testing.T) {
	src, err := catalog.Get("gatech")
	if err != nil {
		t.Fatal(err)
	}
	page := src.Page()
	cfg := src.Wrapper()

	// Truncate mid-row: the row's remaining fields cannot be located.
	idx := strings.Index(page, `<tr class="course">`)
	truncated := page[:idx+40]
	if _, err := tess.Extract(cfg, truncated); err == nil {
		t.Error("truncated page should fail extraction")
	} else if _, ok := err.(*tess.FieldError); !ok {
		t.Errorf("error type %T, want *tess.FieldError", err)
	}

	// Delete every row: the required Course rule finds nothing.
	gutted := strings.ReplaceAll(page, `<tr class="course">`, `<tr class="x">`)
	if _, err := tess.Extract(cfg, gutted); err == nil {
		t.Error("gutted page should fail extraction")
	}

	// A stale wrapper against a source whose markup drifted (the paper's
	// "syntactic changes to the underlying source must be reflected in the
	// configuration file"): renaming the cell tags breaks the config.
	drifted := strings.ReplaceAll(page, "<td>", "<cell>")
	drifted = strings.ReplaceAll(drifted, "</td>", "</cell>")
	if _, err := tess.Extract(cfg, drifted); err == nil {
		t.Error("drifted markup should fail extraction")
	}
}

// Failure injection: a system that errors mid-benchmark is recorded as
// incorrect for that query but does not abort the evaluation.
type flakySystem struct{}

func (flakySystem) Name() string        { return "Flaky" }
func (flakySystem) Description() string { return "errors on query 2" }
func (flakySystem) Answer(req Request) (*Answer, error) {
	if req.QueryID == 2 {
		return nil, strings.NewReader("").UnreadRune() // an arbitrary non-ErrUnsupported error
	}
	return nil, ErrUnsupported
}

func TestFailureInjectionFlakySystem(t *testing.T) {
	card, err := Evaluate(flakySystem{})
	if err != nil {
		t.Fatal(err)
	}
	r := card.Result(2)
	if !r.Supported || r.Correct || r.Err == "" {
		t.Errorf("flaky query not diagnosed: %+v", r)
	}
	if card.CorrectCount() != 0 {
		t.Errorf("correct = %d", card.CorrectCount())
	}
}

// A generated scenario flows through the same public pipeline as the
// canonical testbed: the scenario mediator scores fully correct over its
// seeded workload, and the faultline-wrapped variant under the resilience
// policy degrades per cell but never aborts the evaluation.
func TestGeneratedScenarioEndToEnd(t *testing.T) {
	sc, err := scenario.New(scenario.Params{Sources: 30, Seed: 21, Size: 4})
	if err != nil {
		t.Fatal(err)
	}

	clean := benchmark.NewStreamingRunner(sc.Queries())
	clean.Concurrency = 4
	cards, err := clean.EvaluateAll(sc.NewMediator())
	if err != nil {
		t.Fatal(err)
	}
	if c := cards[0].CorrectCount(); c != 30 {
		t.Fatalf("clean scenario run: %d/30 correct:\n%s", c, cards[0].Format())
	}

	chaos := benchmark.NewStreamingRunner(sc.Queries())
	chaos.Concurrency = 4
	chaos.Resilience = DefaultResilience(99)
	cards, err = chaos.EvaluateAll(WithFaults(sc.NewMediator(), StandardFaultMix(99)))
	if err != nil {
		t.Fatalf("chaos scenario run aborted: %v", err)
	}
	for _, r := range cards[0].Results {
		if !r.Supported && r.Err == "" {
			t.Errorf("query %d: degraded cell without a diagnosis", r.QueryID)
		}
	}
}

// The three perfect-score mediators must produce mutually consistent rows
// for every query (hand-coded ufmw vs table-driven rewrite).
func TestMediatorsAgree(t *testing.T) {
	a := NewReferenceMediator()
	b := NewDeclarativeMediator()
	for id := 1; id <= 12; id++ {
		req := Request{QueryID: id}
		ra, err := a.Answer(req)
		if err != nil {
			t.Fatalf("ufmw q%d: %v", id, err)
		}
		rb, err := b.Answer(req)
		if err != nil {
			t.Fatalf("rewrite q%d: %v", id, err)
		}
		missing, extra := integration.MatchRows(ra.Rows, rb.Rows)
		if len(missing) != 0 || len(extra) != 0 {
			t.Errorf("query %d: mediators disagree: missing=%v extra=%v", id, missing, extra)
		}
	}
}
