package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Writer appends events to a JSONL journal: one compact JSON object per
// line, sequence numbers assigned monotonically under the writer's lock so
// concurrent pool workers serialize deterministically (each event's seq
// matches its position in the file).
//
// Writes are buffered per event — the marshal and the trailing newline land
// in one flush — and flushed to the underlying writer before Append
// returns, so a crash loses at most the event being written; the reader
// side (ReadAll) treats a truncated final line as a clean end of stream.
type Writer struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	file *os.File // non-nil only for Create-owned files; closed by Close
	seq  uint64
	err  error
	tap  func(Event)
}

// NewWriter returns a journal writer over w. The caller owns w; Close
// flushes but does not close it.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Create creates (truncating) the journal file at path and returns a writer
// that owns it.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := NewWriter(f)
	w.file = f
	return w, nil
}

// Tap registers fn to observe every appended event, called synchronously
// under the writer's lock after the event is written — the hook the web
// site's SSE broker fans live events out from. Must be set before the
// first Append.
func (w *Writer) Tap(fn func(Event)) { w.tap = fn }

// Append assigns the next sequence number to the event, writes it as one
// JSONL line, and flushes. The first write error sticks: every later
// Append returns it without writing.
func (w *Writer) Append(e Event) (Event, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return Event{}, w.err
	}
	e.Seq = w.seq + 1
	data, err := json.Marshal(e)
	if err != nil {
		// Marshal errors don't latch: the writer itself is still healthy
		// and the event was never written, so its seq is not consumed.
		return Event{}, fmt.Errorf("journal: marshal %s event: %w", e.Type, err)
	}
	w.seq = e.Seq
	if _, err = w.bw.Write(data); err == nil {
		if err = w.bw.WriteByte('\n'); err == nil {
			err = w.bw.Flush()
		}
	}
	if err != nil {
		w.err = err
		return Event{}, fmt.Errorf("journal: append: %w", err)
	}
	if w.tap != nil {
		w.tap(e)
	}
	return e, nil
}

// Seq returns the sequence number of the last appended event.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Close flushes the buffer and, for Create-owned files, syncs and closes
// the file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.bw.Flush()
	if w.err == nil {
		w.err = err
	}
	if w.file != nil {
		if serr := w.file.Sync(); err == nil {
			err = serr
		}
		if cerr := w.file.Close(); err == nil {
			err = cerr
		}
		w.file = nil
	}
	return err
}
