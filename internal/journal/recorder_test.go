package journal

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"thalia/internal/telemetry"
)

// The Recorder's typed appends replay to a verified projection carrying
// the recorder's run metadata and the build that produced it.
func TestRecorderEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := &Recorder{W: w, RunID: "rec-1", Harness: "unit", Seed: 9, FaultPlanDigest: "sha256:ab"}

	rec.RunStart([]string{"alpha"}, 2, 1, true)
	cards := []*Card{{System: "alpha", Cells: []Cell{
		{System: "alpha", Query: 1, Supported: true, Correct: true},
		{System: "alpha", Query: 2, Supported: true, Correct: true},
	}}}
	for _, c := range cards[0].Cells {
		rec.CellStart(c.System, c.Query)
		rec.CellDone(c)
	}
	rec.Telemetry(telemetry.NewRegistry().Snapshot())
	rec.RunEnd(cards, 5*time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p := Replay(events)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	s := p.Start
	if s.RunID != "rec-1" || s.Harness != "unit" || s.Seed != 9 ||
		s.FaultPlanDigest != "sha256:ab" || !s.Resilience || s.GoMaxProcs < 1 {
		t.Errorf("run_start = %+v", s)
	}
	if s.Version == "" || !strings.HasPrefix(s.GoVersion, "go") {
		t.Errorf("run_start missing build info: %+v", s)
	}
	if p.TelemetrySamples != 1 || p.End.ElapsedNS != (5*time.Millisecond).Nanoseconds() {
		t.Errorf("projection = %+v", p)
	}
}

func TestRecorderInterval(t *testing.T) {
	r := &Recorder{}
	if r.Interval() != DefaultTelemetryInterval {
		t.Errorf("zero interval = %v", r.Interval())
	}
	r.TelemetryInterval = time.Second
	if r.Interval() != time.Second {
		t.Errorf("explicit interval = %v", r.Interval())
	}
}

func TestMarshalLineIsOneLine(t *testing.T) {
	e := Event{Seq: 3, Type: TypeCellStart, Cell: &Cell{System: "alpha", Query: 1}}
	line, err := e.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(line, '\n') {
		t.Errorf("MarshalLine emitted a newline: %q", line)
	}
	var back Event
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seq != 3 || back.Cell.System != "alpha" {
		t.Errorf("round trip = %+v", back)
	}
}
