package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// maxLine bounds one journal line (a telemetry snapshot of a large registry
// is the biggest event by far; 16 MiB is orders of magnitude above it).
const maxLine = 16 << 20

// ReadAll decodes a JSONL journal stream. It is crash-tolerant at the tail:
// a final line that is truncated (no trailing newline and unparseable, or
// cut mid-write) is treated as a clean end of stream — the writer flushes
// per event, so only the event in flight at a crash can be damaged. A
// corrupt line in the middle of the stream is real damage and returns an
// error, as does a sequence-number regression.
func ReadAll(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	var events []Event
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if pendingErr != nil {
			// The bad line had a successor, so it was not a truncated tail.
			return nil, pendingErr
		}
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			// Defer judgment: if this turns out to be the final line it is
			// a crash-truncated tail and the journal ends cleanly here.
			pendingErr = fmt.Errorf("journal: line %d: %w", line, err)
			continue
		}
		if n := len(events); n > 0 && e.Seq <= events[n-1].Seq {
			return nil, fmt.Errorf("journal: line %d: sequence %d not after %d", line, e.Seq, events[n-1].Seq)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// ReadFile reads a journal file with ReadAll's crash tolerance.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}
