package journal

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Report renders the projection as the human-readable run report behind
// `thalia-bench report`: run header, rank table, per-system/per-query
// latency table, the retry/fault timeline, and degraded-cell postmortems
// with their explain digests.
func (p *Projection) Report() string {
	var b strings.Builder
	b.WriteString("THALIA run report\n")
	if s := p.Start; s != nil {
		fmt.Fprintf(&b, "run:      %s (schema v%d)\n", s.RunID, s.Schema)
		if s.Harness != "" {
			fmt.Fprintf(&b, "harness:  %s\n", s.Harness)
		}
		fmt.Fprintf(&b, "started:  %s\n", s.StartedAt.Format(time.RFC3339))
		build := s.Version
		if s.Revision != "" {
			build += " (" + s.Revision + ")"
		}
		if s.GoVersion != "" {
			build += " " + s.GoVersion
		}
		if strings.TrimSpace(build) != "" {
			fmt.Fprintf(&b, "build:    %s\n", strings.TrimSpace(build))
		}
		fmt.Fprintf(&b, "config:   %d system(s) × %d queries, pool %d",
			len(s.Systems), s.Queries, s.Concurrency)
		if s.Resilience {
			fmt.Fprintf(&b, ", resilience on (seed %d)", s.Seed)
		}
		if s.FaultPlanDigest != "" {
			fmt.Fprintf(&b, ", faults %s", s.FaultPlanDigest)
		}
		b.WriteString("\n")
	}
	switch {
	case p.Complete():
		fmt.Fprintf(&b, "status:   complete — %d cells", p.End.Cells)
		if p.End.Degraded > 0 {
			fmt.Fprintf(&b, ", %d degraded", p.End.Degraded)
		}
		if p.End.ElapsedNS > 0 {
			fmt.Fprintf(&b, ", %s", time.Duration(p.End.ElapsedNS).Round(time.Millisecond))
		}
		b.WriteString("\n")
	default:
		fmt.Fprintf(&b, "status:   INCOMPLETE — %d/%d cells done, no run_end event\n",
			p.CellsDone, p.CellsStarted)
	}

	cards := p.Cards()
	if len(cards) > 0 {
		b.WriteString("\nRanking\n")
		for i, c := range cards {
			fmt.Fprintf(&b, "  %d. %-26s %2d/%d correct  complexity %d\n",
				i+1, c.System, c.Correct(), len(c.Cells), c.Complexity())
		}

		b.WriteString("\nPer-cell outcome and latency\n")
		fmt.Fprintf(&b, "  %-26s %-5s %-11s %-9s %10s\n", "SYSTEM", "QUERY", "OUTCOME", "ATTEMPTS", "LATENCY")
		for _, c := range cards {
			for _, cell := range c.Cells {
				fmt.Fprintf(&b, "  %-26s q%02d   %-11s %-9s %10s\n",
					c.System, cell.Query, cellOutcome(cell), attemptsLabel(cell),
					time.Duration(cell.LatencyNS).Round(time.Microsecond))
			}
		}
	}

	if timeline := p.retryTimeline(); len(timeline) > 0 {
		b.WriteString("\nRetry and fault timeline\n")
		for _, line := range timeline {
			b.WriteString("  " + line + "\n")
		}
	}

	if degraded := p.Degraded(); len(degraded) > 0 {
		b.WriteString("\nDegraded-cell postmortems\n")
		for _, cell := range degraded {
			fmt.Fprintf(&b, "  %s q%02d: %s\n", cell.System, cell.Query, cell.Err)
			for _, a := range cell.Attempts {
				fmt.Fprintf(&b, "    attempt %d: %s\n", a.N, attemptOutcome(a))
			}
			if cell.ExplainDigest != "" {
				fmt.Fprintf(&b, "    %s\n", cell.ExplainDigest)
			}
		}
	}

	if p.Complete() {
		fmt.Fprintf(&b, "\nrecorded digest: %s\n", p.End.Digest)
		fmt.Fprintf(&b, "replayed digest: %s\n", p.Digest())
	}
	return b.String()
}

// cellOutcome names a cell's result the way the chaos report does.
func cellOutcome(c Cell) string {
	switch {
	case c.Degraded:
		return "DEGRADED"
	case !c.Supported && c.Err == "":
		return "declined"
	case c.Err != "":
		return "error"
	case c.Correct:
		return "correct"
	default:
		return "INCORRECT"
	}
}

func attemptsLabel(c Cell) string {
	if len(c.Attempts) == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", len(c.Attempts))
}

func attemptOutcome(a Attempt) string {
	var s string
	switch {
	case a.Shed:
		s = "shed (breaker open)"
	case a.Err == "":
		s = "ok"
	case a.Transient:
		s = "transient error: " + a.Err
	default:
		s = "permanent error: " + a.Err
	}
	if a.BackoffNS > 0 {
		s += fmt.Sprintf("  (retry in %s)", time.Duration(a.BackoffNS))
	}
	return s
}

// retryTimeline lists every cell that needed more than a single clean
// attempt, in rank then query order.
func (p *Projection) retryTimeline() []string {
	var out []string
	for _, card := range p.Cards() {
		for _, cell := range card.Cells {
			if len(cell.Attempts) <= 1 && (len(cell.Attempts) == 0 || cell.Attempts[0].Err == "") {
				continue
			}
			parts := make([]string, len(cell.Attempts))
			for i, a := range cell.Attempts {
				switch {
				case a.Shed:
					parts[i] = "shed"
				case a.Err == "":
					parts[i] = "ok"
				case a.Transient:
					parts[i] = "transient"
				default:
					parts[i] = "permanent"
				}
			}
			out = append(out, fmt.Sprintf("%s q%02d: %s", card.System, cell.Query, strings.Join(parts, " → ")))
		}
	}
	return out
}

// ReportSummary is the machine-readable form of the report (-json).
type ReportSummary struct {
	RunID            string      `json:"run_id"`
	Start            *RunStart   `json:"start,omitempty"`
	Complete         bool        `json:"complete"`
	CellsDone        int         `json:"cells_done"`
	TelemetrySamples int         `json:"telemetry_samples"`
	LastSeq          uint64      `json:"last_seq"`
	Rank             []RankEntry `json:"rank"`
	RecordedDigest   string      `json:"recorded_digest,omitempty"`
	ReplayedDigest   string      `json:"replayed_digest"`
	Degraded         []Cell      `json:"degraded,omitempty"`
}

// Summary assembles the machine-readable report.
func (p *Projection) Summary() ReportSummary {
	s := ReportSummary{
		RunID:            p.RunID,
		Start:            p.Start,
		Complete:         p.Complete(),
		CellsDone:        p.CellsDone,
		TelemetrySamples: p.TelemetrySamples,
		LastSeq:          p.LastSeq,
		Rank:             RankTable(p.Cards()),
		ReplayedDigest:   p.Digest(),
		Degraded:         p.Degraded(),
	}
	if p.End != nil {
		s.RecordedDigest = p.End.Digest
	}
	return s
}

// JSON renders the machine-readable report as indented JSON.
func (p *Projection) JSON() ([]byte, error) {
	return json.MarshalIndent(p.Summary(), "", "  ")
}
