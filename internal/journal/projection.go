package journal

import (
	"fmt"
	"sort"

	"thalia/internal/telemetry"
)

// Projection is the materialized view of a journal: the run summary the web
// site serves at /runs/{id} and `thalia-bench report` renders. It is built
// incrementally — Apply one event at a time as they stream in, or Replay a
// whole log — and the result is identical either way, which is the
// projection pattern's whole point: the journal is the source of truth, the
// projection is always reconstructible from it.
type Projection struct {
	RunID string
	Start *RunStart
	End   *RunEnd
	// LastSeq is the highest sequence number applied — the ETag the read
	// path revalidates against, and the Last-Event-ID resume point.
	LastSeq uint64
	// CellsStarted and CellsDone count lifecycle events.
	CellsStarted int
	CellsDone    int
	// Telemetry is the most recent telemetry snapshot (nil if none).
	Telemetry *telemetry.Snapshot
	// TelemetrySamples counts how many snapshots the journal carried.
	TelemetrySamples int

	// cells accumulates cell_done payloads per system.
	cells map[string][]Cell
}

// NewProjection returns an empty projection ready for Apply.
func NewProjection() *Projection {
	return &Projection{cells: map[string][]Cell{}}
}

// Replay folds a full event stream into a projection.
func Replay(events []Event) *Projection {
	p := NewProjection()
	for _, e := range events {
		p.Apply(e)
	}
	return p
}

// Apply folds one event into the projection. Unknown event types are
// skipped (forward compatibility: newer writers may add types).
func (p *Projection) Apply(e Event) {
	if e.Seq > p.LastSeq {
		p.LastSeq = e.Seq
	}
	switch e.Type {
	case TypeRunStart:
		if e.RunStart != nil {
			p.Start = e.RunStart
			p.RunID = e.RunStart.RunID
		}
	case TypeCellStart:
		p.CellsStarted++
	case TypeCellDone:
		if e.Cell != nil {
			p.CellsDone++
			p.cells[e.Cell.System] = append(p.cells[e.Cell.System], *e.Cell)
		}
	case TypeTelemetry:
		if e.Telemetry != nil {
			p.Telemetry = e.Telemetry
			p.TelemetrySamples++
		}
	case TypeRunEnd:
		p.End = e.RunEnd
	}
}

// Complete reports whether the journal carried its run-end event — false
// for a crashed or still-running journal.
func (p *Projection) Complete() bool { return p.End != nil }

// Cards rebuilds the run's scorecards from the accumulated cell events:
// one card per system, cells in query order, ranked by the benchmark
// scheme. The result only depends on the cell_done events, never on the
// run-end payload — that independence is what makes the digest check a
// real completeness proof.
func (p *Projection) Cards() []*Card {
	systems := make([]string, 0, len(p.cells))
	for sys := range p.cells {
		systems = append(systems, sys)
	}
	sort.Strings(systems)
	cards := make([]*Card, 0, len(systems))
	for _, sys := range systems {
		cells := append([]Cell(nil), p.cells[sys]...)
		sort.SliceStable(cells, func(i, j int) bool { return cells[i].Query < cells[j].Query })
		cards = append(cards, &Card{System: sys, Cells: cells})
	}
	return Rank(cards)
}

// Digest recomputes the ranked-scorecard digest from the replayed cells.
func (p *Projection) Digest() string { return DigestCards(p.Cards()) }

// Verify checks the projection against the run-end event: the digest
// recomputed from the replayed cell events must equal the digest the live
// run recorded, and the cell count must match. A nil error on a complete
// journal means the log is projection-complete: nothing the scorecard
// depends on was lost or altered between writing and replay.
func (p *Projection) Verify() error {
	if p.End == nil {
		return fmt.Errorf("journal: run incomplete: no run_end event (crashed or still running)")
	}
	if p.CellsDone != p.End.Cells {
		return fmt.Errorf("journal: projection has %d cell results, run_end recorded %d", p.CellsDone, p.End.Cells)
	}
	if got := p.Digest(); got != p.End.Digest {
		return fmt.Errorf("journal: replayed digest %s != recorded %s", got, p.End.Digest)
	}
	return nil
}

// Degraded returns the degraded cells across all systems, in rank then
// query order — the postmortem list the report renders.
func (p *Projection) Degraded() []Cell {
	var out []Cell
	for _, card := range p.Cards() {
		for _, cell := range card.Cells {
			if cell.Degraded {
				out = append(out, cell)
			}
		}
	}
	return out
}
