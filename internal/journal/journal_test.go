package journal

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thalia/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// fixedEvents is a small deterministic run: fixed timestamps, two systems,
// two queries, one retry, one degradation. It backs the golden-file and
// projection tests.
func fixedEvents() []Event {
	started := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cells := []Cell{
		{System: "alpha", Query: 1, Supported: true, Correct: true, Effort: "no code", LatencyNS: 1000,
			Attempts: []Attempt{{N: 1}}},
		{System: "beta", Query: 1, Supported: true, Correct: true, Effort: "small function", Complexity: 1, LatencyNS: 2000,
			Attempts: []Attempt{{N: 1, Err: "transient blip", Transient: true, BackoffNS: 500}, {N: 2}}},
		{System: "alpha", Query: 2, Supported: true, Correct: true, Effort: "no code", LatencyNS: 1500,
			Attempts: []Attempt{{N: 1}}},
		{System: "beta", Query: 2, Degraded: true, Err: "permanent fault", LatencyNS: 900,
			Attempts:      []Attempt{{N: 1, Err: "permanent fault"}},
			ExplainDigest: "explain: q02 beta [eval] spans=3 events=1 dur=1ms"},
	}
	events := []Event{{Type: TypeRunStart, RunStart: &RunStart{
		RunID: "run-test", Schema: SchemaVersion, StartedAt: started,
		Harness: "journal-test", Systems: []string{"alpha", "beta"},
		Queries: 2, Concurrency: 2, Seed: 7, Resilience: true,
		Version: "v0.0.0-test", Revision: "abc123", GoVersion: "go1.0", GoMaxProcs: 8,
	}}}
	for _, c := range cells {
		events = append(events, Event{Type: TypeCellStart, Cell: &Cell{System: c.System, Query: c.Query}})
		cc := c
		events = append(events, Event{Type: TypeCellDone, Cell: &cc})
	}
	ranked := Rank([]*Card{
		{System: "alpha", Cells: []Cell{cells[0], cells[2]}},
		{System: "beta", Cells: []Cell{cells[1], cells[3]}},
	})
	events = append(events, Event{Type: TypeRunEnd, RunEnd: &RunEnd{
		Digest: DigestCards(ranked), Rank: RankTable(ranked),
		Cells: 4, Degraded: 1, ElapsedNS: 5400,
	}})
	return events
}

func writeEvents(t *testing.T, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if _, err := w.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestWriterReaderRoundTrip(t *testing.T) {
	events := fixedEvents()
	data := writeEvents(t, events)
	got, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, wrote %d", len(got), len(events))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.Type != events[i].Type {
			t.Errorf("event %d: type = %s, want %s", i, e.Type, events[i].Type)
		}
	}
	if got[0].RunStart == nil || got[0].RunStart.RunID != "run-test" {
		t.Errorf("run_start payload lost: %+v", got[0])
	}
	last := got[len(got)-1]
	if last.RunEnd == nil || !strings.HasPrefix(last.RunEnd.Digest, "sha256:") {
		t.Errorf("run_end payload lost: %+v", last)
	}
}

// The golden file pins the wire format: any change to the event schema
// shows up as a diff here, forcing a conscious SchemaVersion decision.
func TestGoldenJournal(t *testing.T) {
	data := writeEvents(t, fixedEvents())
	golden := filepath.Join("testdata", "golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("journal encoding drifted from golden file.\ngot:\n%s\nwant:\n%s", data, want)
	}
}

func TestReadAllToleratesTruncatedTail(t *testing.T) {
	data := writeEvents(t, fixedEvents())
	full, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-final-line, as a crash during the last append
	// would: every earlier event must still read cleanly.
	cut := bytes.LastIndexByte(bytes.TrimRight(data, "\n"), '\n')
	truncated := data[:cut+1+10] // 10 bytes into the final line
	got, err := ReadAll(bytes.NewReader(truncated))
	if err != nil {
		t.Fatalf("truncated tail must read cleanly, got %v", err)
	}
	if len(got) != len(full)-1 {
		t.Errorf("read %d events from truncated journal, want %d", len(got), len(full)-1)
	}
}

func TestReadAllRejectsCorruptMiddle(t *testing.T) {
	data := writeEvents(t, fixedEvents())
	lines := bytes.SplitAfter(data, []byte("\n"))
	lines[2] = []byte("{corrupt}\n")
	if _, err := ReadAll(bytes.NewReader(bytes.Join(lines, nil))); err == nil {
		t.Fatal("corrupt mid-journal line must be an error, not silently skipped")
	}
}

func TestReadAllRejectsSeqRegression(t *testing.T) {
	data := []byte(`{"seq":1,"type":"cell_start","cell":{"system":"a","query":1}}
{"seq":1,"type":"cell_start","cell":{"system":"a","query":2}}
`)
	if _, err := ReadAll(bytes.NewReader(data)); err == nil {
		t.Fatal("sequence regression must be an error")
	}
}

func TestProjectionReplayVerifies(t *testing.T) {
	events := fixedEvents()
	p := Replay(events)
	if !p.Complete() {
		t.Fatal("projection of a full journal must be complete")
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if p.RunID != "run-test" || p.CellsDone != 4 || p.CellsStarted != 4 {
		t.Errorf("projection = %q cells %d/%d, want run-test 4/4", p.RunID, p.CellsDone, p.CellsStarted)
	}
	cards := p.Cards()
	if len(cards) != 2 || cards[0].System != "alpha" || cards[1].System != "beta" {
		t.Fatalf("ranked cards wrong: %+v", cards)
	}
	if cards[0].Correct() != 2 || cards[1].Correct() != 1 {
		t.Errorf("correct counts = %d, %d; want 2, 1", cards[0].Correct(), cards[1].Correct())
	}
	// Incremental Apply must equal whole-log Replay.
	inc := NewProjection()
	for _, e := range events {
		inc.Apply(e)
	}
	if inc.Digest() != p.Digest() || inc.LastSeq != p.LastSeq {
		t.Error("incremental Apply diverged from Replay")
	}
}

func TestProjectionDetectsMissingCell(t *testing.T) {
	events := fixedEvents()
	// Drop one cell_done: the digest and cell count must both catch it.
	var pruned []Event
	dropped := false
	for _, e := range events {
		if !dropped && e.Type == TypeCellDone {
			dropped = true
			continue
		}
		pruned = append(pruned, e)
	}
	if err := Replay(pruned).Verify(); err == nil {
		t.Fatal("projection with a lost cell must fail verification")
	}
}

func TestProjectionIncompleteWithoutRunEnd(t *testing.T) {
	events := fixedEvents()
	p := Replay(events[:len(events)-1])
	if p.Complete() {
		t.Fatal("journal without run_end must be incomplete")
	}
	if err := p.Verify(); err == nil {
		t.Fatal("Verify must fail on an incomplete journal")
	}
}

func TestDigestIgnoresLatencyButNotOutcome(t *testing.T) {
	cards := func(latency int64, correct bool) []*Card {
		return []*Card{{System: "s", Cells: []Cell{{
			System: "s", Query: 1, Supported: true, Correct: correct, LatencyNS: latency,
		}}}}
	}
	if DigestCards(cards(1, true)) != DigestCards(cards(999, true)) {
		t.Error("digest must not depend on measured latency")
	}
	if DigestCards(cards(1, true)) == DigestCards(cards(1, false)) {
		t.Error("digest must depend on the outcome")
	}
}

func TestRankOrdersLikeThePaper(t *testing.T) {
	a := &Card{System: "a", Cells: []Cell{{Correct: true, Complexity: 5}}}
	b := &Card{System: "b", Cells: []Cell{{Correct: true, Complexity: 2}}}
	c := &Card{System: "c", Cells: []Cell{{Correct: false}}}
	ranked := Rank([]*Card{c, a, b})
	if ranked[0] != b || ranked[1] != a || ranked[2] != c {
		t.Errorf("rank order = %s, %s, %s; want b, a, c",
			ranked[0].System, ranked[1].System, ranked[2].System)
	}
}

func TestReportRendersRunFacts(t *testing.T) {
	p := Replay(fixedEvents())
	rep := p.Report()
	for _, want := range []string{
		"run-test", "journal-test", "complete — 4 cells", "1 degraded",
		"1. alpha", "2. beta", "DEGRADED", "permanent fault",
		"Retry and fault timeline", "transient → ok",
		"Degraded-cell postmortems", "explain: q02 beta",
		"recorded digest: sha256:", "replayed digest: sha256:",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	raw, err := p.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !strings.Contains(string(raw), `"recorded_digest"`) {
		t.Errorf("JSON report missing digest: %s", raw)
	}
}

func TestReportMarksIncompleteRun(t *testing.T) {
	events := fixedEvents()
	rep := Replay(events[:len(events)-2]).Report()
	if !strings.Contains(rep, "INCOMPLETE") {
		t.Errorf("truncated run's report must say INCOMPLETE:\n%s", rep)
	}
}

func TestCreateAndReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range fixedEvents() {
		if _, err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Replay(events).Verify(); err != nil {
		t.Fatalf("file round trip: %v", err)
	}
}

func TestTelemetryEventCarriesSnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("x_total").Inc()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := &Recorder{W: w, RunID: "r", Harness: "t"}
	rec.Telemetry(reg.Snapshot())
	events, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(events) != 1 {
		t.Fatalf("events = %v, err = %v", events, err)
	}
	if events[0].Telemetry == nil || len(events[0].Telemetry.Counters) != 1 {
		t.Fatalf("telemetry snapshot lost: %+v", events[0])
	}
	p := Replay(events)
	if p.TelemetrySamples != 1 || p.Telemetry == nil {
		t.Errorf("projection lost telemetry: samples=%d", p.TelemetrySamples)
	}
}

func TestWriterTapSeesEveryEvent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var tapped []uint64
	w.Tap(func(e Event) { tapped = append(tapped, e.Seq) })
	for _, e := range fixedEvents() {
		if _, err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if len(tapped) != len(fixedEvents()) {
		t.Fatalf("tap saw %d events, want %d", len(tapped), len(fixedEvents()))
	}
	for i, seq := range tapped {
		if seq != uint64(i+1) {
			t.Errorf("tap order broken at %d: seq %d", i, seq)
		}
	}
}
