// Package journal is the flight recorder of a benchmark run: an
// append-only JSONL log of typed, schema-versioned events that captures how
// a result was produced — run configuration and build info, every cell's
// lifecycle (queued → attempts → result, with retry/breaker/degradation
// detail), periodic telemetry snapshots, and the final ranked outcome.
//
// A journal makes a run a durable artifact instead of stdout scroll: it can
// be replayed into a Projection (the materialized run summary the web
// site's /runs routes serve), streamed live over SSE, and rendered into a
// human report by `thalia-bench report`. The determinism contract mirrors
// the rest of the harness: journaling only observes — scorecards are
// byte-identical with a journal attached or not — and the deterministic
// subset of the recorded facts (everything except wall-clock timestamps and
// latencies) replays to the exact ranked-scorecard digest stamped into the
// run-end event.
package journal

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"thalia/internal/telemetry"
)

// SchemaVersion is the journal event-schema version, stamped into every
// run-start event. Versioning rule: additive fields (new optional payload
// members, new event types) do not bump the version — readers ignore what
// they don't know; any change that alters the meaning or encoding of an
// existing field does.
const SchemaVersion = 1

// EventType discriminates journal events.
type EventType string

const (
	// TypeRunStart opens a journal: run identity, configuration, seed,
	// fault-plan digest and build info.
	TypeRunStart EventType = "run_start"
	// TypeCellStart marks a query×system cell leaving the queue for a
	// worker.
	TypeCellStart EventType = "cell_start"
	// TypeCellDone carries a cell's full result: outcome, effort,
	// attempt history, latency, and the explain digest of a failed cell.
	TypeCellDone EventType = "cell_done"
	// TypeTelemetry is a periodic snapshot of the run's metrics registry
	// (including the runtime vitals of telemetry.CaptureRuntime).
	TypeTelemetry EventType = "telemetry"
	// TypeRunEnd closes a journal: ranked outcome and scorecard digest.
	TypeRunEnd EventType = "run_end"
	// TypeGap is never written to a journal. It is synthesized for a slow
	// SSE consumer whose bounded buffer overflowed: the events in
	// [Gap.From, Gap.To] were dropped from the live stream (the journal
	// still has them; reconnect with Last-Event-ID to recover).
	TypeGap EventType = "gap"
)

// Event is one journal record: the envelope (monotonic sequence number and
// type) plus exactly one payload matching the type.
type Event struct {
	Seq  uint64    `json:"seq"`
	Type EventType `json:"type"`

	RunStart  *RunStart           `json:"run_start,omitempty"`
	Cell      *Cell               `json:"cell,omitempty"`
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	RunEnd    *RunEnd             `json:"run_end,omitempty"`
	Gap       *Gap                `json:"gap,omitempty"`
}

// MarshalLine renders the event as its canonical single-line JSON — the
// exact bytes the writer appends to a journal and the SSE stream sends as
// an event's data field.
func (e Event) MarshalLine() ([]byte, error) { return json.Marshal(e) }

// RunStart is the opening event's payload.
type RunStart struct {
	// RunID names the run; journal files are conventionally <RunID>.jsonl.
	RunID string `json:"run_id"`
	// Schema is the event-schema version the rest of the journal uses.
	Schema int `json:"schema"`
	// StartedAt is the wall-clock start (informational; excluded from the
	// digest contract like every timestamp).
	StartedAt time.Time `json:"started_at"`
	// Harness names the entry point that produced the run, e.g.
	// "thalia bench" or "thalia-server".
	Harness string `json:"harness,omitempty"`
	// Systems are the systems under evaluation, in input order.
	Systems []string `json:"systems"`
	// Queries is the number of benchmark queries per system.
	Queries int `json:"queries"`
	// Concurrency is the resolved worker-pool size.
	Concurrency int `json:"concurrency"`
	// Seed is the fault/jitter seed of a chaos run (0 when none).
	Seed int64 `json:"seed,omitempty"`
	// FaultPlanDigest fingerprints the injected fault plan, "" when the
	// run is fault-free.
	FaultPlanDigest string `json:"fault_plan_digest,omitempty"`
	// Resilience reports whether the retry/breaker policy was active.
	Resilience bool `json:"resilience,omitempty"`
	// Build info: module version, VCS revision, go version, GOMAXPROCS.
	Version    string `json:"version,omitempty"`
	Revision   string `json:"revision,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
}

// Attempt mirrors one entry of a cell's resilience attempt history. Only
// deterministic facts are recorded (outcome, classification, scheduled
// backoff), never measured durations — same-seed runs journal byte-equal
// attempt histories.
type Attempt struct {
	N         int    `json:"n"`
	Err       string `json:"err,omitempty"`
	Transient bool   `json:"transient,omitempty"`
	BackoffNS int64  `json:"backoff_ns,omitempty"`
	Shed      bool   `json:"shed,omitempty"`
}

// Cell is the payload of cell_start and cell_done events. cell_start fills
// only System and Query; cell_done carries the full outcome.
type Cell struct {
	System string `json:"system"`
	Query  int    `json:"query"`

	Supported bool `json:"supported,omitempty"`
	Correct   bool `json:"correct,omitempty"`
	// Effort is the string form of the system's self-reported effort.
	Effort string `json:"effort,omitempty"`
	// Complexity is the cell's contribution to the complexity score.
	Complexity int    `json:"complexity,omitempty"`
	Err        string `json:"err,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	// Missing and Extra count the rows diagnosing an incorrect answer.
	Missing int `json:"missing,omitempty"`
	Extra   int `json:"extra,omitempty"`
	// Attempts is the resilience attempt history (nil without a policy).
	Attempts []Attempt `json:"attempts,omitempty"`
	// LatencyNS is the measured cell latency — informational, excluded
	// from the digest like every measured duration.
	LatencyNS int64 `json:"latency_ns,omitempty"`
	// ExplainDigest is the one-line explain digest of a failed cell's
	// trace ("" for passing cells or runs without explain recording).
	ExplainDigest string `json:"explain_digest,omitempty"`
}

// RankEntry is one row of the run-end rank table.
type RankEntry struct {
	Rank       int    `json:"rank"`
	System     string `json:"system"`
	Correct    int    `json:"correct"`
	Complexity int    `json:"complexity"`
}

// RunEnd is the closing event's payload.
type RunEnd struct {
	// Digest is the ranked-scorecard digest: DigestCards over the run's
	// ranked cards. Replaying the journal's cell events must reproduce it
	// exactly — the projection-completeness check `thalia-bench report`
	// enforces.
	Digest string `json:"digest"`
	// Rank is the final ranking, best first.
	Rank []RankEntry `json:"rank"`
	// Cells and Degraded count evaluated and degraded cells.
	Cells    int `json:"cells"`
	Degraded int `json:"degraded,omitempty"`
	// ElapsedNS is the run's wall-clock duration (informational).
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
}

// Gap is the payload of the synthesized slow-consumer event: the journal
// sequence numbers [From, To] were dropped from this subscriber's live
// stream.
type Gap struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// Card is a system's journaled scorecard: its cell_done payloads in query
// order. Cards are what the digest and the rank table are computed over —
// both live (the engine converts its scorecards) and on replay (the
// projection rebuilds them from cell events), so the two sides agree
// structurally by construction.
type Card struct {
	System string `json:"system"`
	Cells  []Cell `json:"cells"`
}

// Correct counts the card's correct cells.
func (c *Card) Correct() int {
	n := 0
	for _, cell := range c.Cells {
		if cell.Correct {
			n++
		}
	}
	return n
}

// Complexity sums the card's complexity contributions.
func (c *Card) Complexity() int {
	n := 0
	for _, cell := range c.Cells {
		n += cell.Complexity
	}
	return n
}

// Rank orders cards by the paper's scheme — more correct answers first,
// lower complexity among equals, system name as the final tiebreak — the
// same ordering benchmark.Rank applies to live scorecards (cross-checked by
// the benchmark package's journal tests).
func Rank(cards []*Card) []*Card {
	out := append([]*Card(nil), cards...)
	sort.SliceStable(out, func(i, j int) bool {
		if a, b := out[i].Correct(), out[j].Correct(); a != b {
			return a > b
		}
		if a, b := out[i].Complexity(), out[j].Complexity(); a != b {
			return a < b
		}
		return out[i].System < out[j].System
	})
	return out
}

// RankTable renders ranked cards as run-end rank entries.
func RankTable(ranked []*Card) []RankEntry {
	out := make([]RankEntry, len(ranked))
	for i, c := range ranked {
		out[i] = RankEntry{Rank: i + 1, System: c.System, Correct: c.Correct(), Complexity: c.Complexity()}
	}
	return out
}

// digestCell is a Cell reduced to its deterministic fields: measured
// latency and wall-clock facts are excluded, so the digest of a replayed
// journal equals the digest of the live run that wrote it.
type digestCell struct {
	System     string    `json:"system"`
	Query      int       `json:"query"`
	Supported  bool      `json:"supported"`
	Correct    bool      `json:"correct"`
	Effort     string    `json:"effort"`
	Complexity int       `json:"complexity"`
	Err        string    `json:"err"`
	Degraded   bool      `json:"degraded"`
	Missing    int       `json:"missing"`
	Extra      int       `json:"extra"`
	Attempts   []Attempt `json:"attempts"`
}

// DigestCards fingerprints ranked cards: sha256 over the canonical JSON of
// every cell's deterministic fields, in rank then query order. This is the
// value stamped into run-end events and recomputed by projections.
func DigestCards(ranked []*Card) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, card := range ranked {
		for _, cell := range card.Cells {
			// Encode errors are impossible for this fixed shape.
			_ = enc.Encode(digestCell{
				System: card.System, Query: cell.Query,
				Supported: cell.Supported, Correct: cell.Correct,
				Effort: cell.Effort, Complexity: cell.Complexity,
				Err: cell.Err, Degraded: cell.Degraded,
				Missing: cell.Missing, Extra: cell.Extra,
				Attempts: cell.Attempts,
			})
		}
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil))
}
