package journal

import (
	"runtime"
	"time"

	"thalia/internal/buildinfo"
	"thalia/internal/telemetry"
)

// Recorder binds a Writer to the run-level metadata the engine itself
// cannot know — the harness name, the chaos seed, the fault-plan digest —
// and offers typed append methods for each event. The benchmark runner
// holds a *Recorder as its opt-in journal sink: a nil Recorder means no
// journaling at all (the engine takes its original zero-overhead path).
type Recorder struct {
	W *Writer
	// RunID names the run in the run-start event.
	RunID string
	// Harness names the producing entry point ("thalia bench", ...).
	Harness string
	// Seed is the chaos/jitter seed to record (0 for none).
	Seed int64
	// FaultPlanDigest fingerprints the injected fault plan, if any.
	FaultPlanDigest string
	// TelemetryInterval is how often the engine samples the metrics
	// registry into telemetry events while a run is in flight; zero means
	// DefaultTelemetryInterval.
	TelemetryInterval time.Duration
}

// DefaultTelemetryInterval is the telemetry sampling cadence when the
// recorder does not choose one.
const DefaultTelemetryInterval = 250 * time.Millisecond

// Interval resolves the effective telemetry sampling interval.
func (r *Recorder) Interval() time.Duration {
	if r.TelemetryInterval > 0 {
		return r.TelemetryInterval
	}
	return DefaultTelemetryInterval
}

// RunStart appends the opening event, stamping schema version, wall-clock
// start, build info, and the recorder's run metadata.
func (r *Recorder) RunStart(systems []string, queries, concurrency int, resilience bool) {
	info := buildinfo.Read()
	_, _ = r.W.Append(Event{Type: TypeRunStart, RunStart: &RunStart{
		RunID:           r.RunID,
		Schema:          SchemaVersion,
		StartedAt:       time.Now().UTC(),
		Harness:         r.Harness,
		Systems:         systems,
		Queries:         queries,
		Concurrency:     concurrency,
		Seed:            r.Seed,
		FaultPlanDigest: r.FaultPlanDigest,
		Resilience:      resilience,
		Version:         info.Version,
		Revision:        info.Revision,
		GoVersion:       info.GoVersion,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
	}})
}

// CellStart appends a cell's dequeue event.
func (r *Recorder) CellStart(system string, query int) {
	_, _ = r.W.Append(Event{Type: TypeCellStart, Cell: &Cell{System: system, Query: query}})
}

// CellDone appends a cell's result event.
func (r *Recorder) CellDone(c Cell) {
	_, _ = r.W.Append(Event{Type: TypeCellDone, Cell: &c})
}

// Telemetry appends a metrics snapshot event.
func (r *Recorder) Telemetry(snap *telemetry.Snapshot) {
	_, _ = r.W.Append(Event{Type: TypeTelemetry, Telemetry: snap})
}

// RunEnd appends the closing event: the ranked cards' digest and rank
// table plus run totals.
func (r *Recorder) RunEnd(ranked []*Card, elapsed time.Duration) {
	cells, degraded := 0, 0
	for _, c := range ranked {
		cells += len(c.Cells)
		for _, cell := range c.Cells {
			if cell.Degraded {
				degraded++
			}
		}
	}
	_, _ = r.W.Append(Event{Type: TypeRunEnd, RunEnd: &RunEnd{
		Digest:    DigestCards(ranked),
		Rank:      RankTable(ranked),
		Cells:     cells,
		Degraded:  degraded,
		ElapsedNS: elapsed.Nanoseconds(),
	}})
}
