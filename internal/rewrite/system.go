package rewrite

import (
	"fmt"
	"sort"

	"thalia/internal/explain"
	"thalia/internal/integration"
)

// System adapts the declarative mediator to the benchmark's System
// interface: every benchmark query is expressed as a GlobalQuery over the
// global schema — no per-query code at all — and the effort accounting
// comes from the mediator's transform ledger. Answer is safe for
// concurrent use: each call carries its own usage ledger (AnswerUsage), so
// parallel benchmark cells never interleave effort accounting.
type System struct {
	med *Mediator
	// cache memoizes successful answers by request identity; recorded
	// (explain) calls and errors bypass it.
	cache integration.AnswerCache
}

// NewSystem returns the declarative-mediation system.
func NewSystem() *System { return &System{med: NewMediator()} }

// Name implements integration.System.
func (s *System) Name() string { return "Declarative Mediator" }

// Description implements integration.System.
func (s *System) Description() string {
	return "generic rewrite mediator: benchmark queries expressed as global conjunctive queries over per-source mapping tables"
}

// GlobalQueries returns the global form of every benchmark query, keyed by
// query ID — the "challenge variant" of each query, stated over the global
// schema instead of a reference source. Exported so static analysis can
// verify every referenced field is mapped (or declared inapplicable) for
// every source the query touches.
func GlobalQueries() map[int]GlobalQuery { return benchmarkQueries() }

// benchmarkQueries maps each benchmark query id to its global form.
func benchmarkQueries() map[int]GlobalQuery {
	return map[int]GlobalQuery{
		1: {
			Sources: []string{"gatech", "cmu"},
			Select:  []string{"course", "instructor"},
			Where:   []Predicate{{Field: "instructor", Op: OpEq, Value: "Mark"}},
		},
		2: {
			Sources: []string{"cmu", "umass"},
			Select:  []string{"course", "title", "time"},
			Where: []Predicate{
				{Field: "time", Op: OpStartsWith, Value: "13:30"},
				{Field: "title", Op: OpContainsFold, Value: "database"},
			},
		},
		3: {
			Sources: []string{"umd", "brown"},
			Select:  []string{"course", "title"},
			Where:   []Predicate{{Field: "title", Op: OpContains, Value: "Data Structures"}},
		},
		4: {
			Sources: []string{"cmu", "eth"},
			Select:  []string{"course", "title", "units"},
			Where: []Predicate{
				{Field: "units", Op: OpGt, Value: "10"},
				{Field: "title", Op: OpContainsTranslated, Value: "database"},
			},
		},
		5: {
			Sources: []string{"umd", "eth"},
			Select:  []string{"course", "title"},
			Where:   []Predicate{{Field: "title", Op: OpContainsTranslated, Value: "database"}},
		},
		6: {
			Sources: []string{"toronto", "cmu"},
			Select:  []string{"course", "textbook"},
			Where:   []Predicate{{Field: "title", Op: OpContains, Value: "Verification"}},
		},
		7: {
			Sources: []string{"umich", "cmu"},
			Select:  []string{"course", "title"},
			Where: []Predicate{
				{Field: "prerequisite", Op: OpEq, Value: "None"},
				{Field: "title", Op: OpContains, Value: "Database"},
			},
		},
		8: {
			Sources: []string{"gatech", "eth"},
			Select:  []string{"course", "title", "restriction"},
			Where: []Predicate{
				{Field: "title", Op: OpContainsTranslated, Value: "database"},
				{Field: "restriction", Op: OpOpenTo, Value: "JR"},
			},
		},
		9: {
			Sources: []string{"brown", "umd"},
			Select:  []string{"course", "room"},
			Where:   []Predicate{{Field: "title", Op: OpContains, Value: "Software Engineering"}},
		},
		10: {
			Sources: []string{"cmu", "umd"},
			Select:  []string{"course", "instructor"},
			Where:   []Predicate{{Field: "title", Op: OpContains, Value: "Software"}},
		},
		11: {
			Sources: []string{"cmu", "ucsd"},
			Select:  []string{"course", "instructor"},
			Where:   []Predicate{{Field: "title", Op: OpContains, Value: "Database"}},
		},
		12: {
			Sources: []string{"cmu", "brown"},
			Select:  []string{"course", "title", "day", "time"},
			Where:   []Predicate{{Field: "title", Op: OpContains, Value: "Computer Networks"}},
		},
	}
}

// Answer implements integration.System. Repeat un-recorded requests are
// served from the system's answer cache; see integration.AnswerCache for the
// invariants (errors and recorded traces always re-evaluate).
func (s *System) Answer(req integration.Request) (*integration.Answer, error) {
	return s.cache.Do(req, s.answer)
}

// answer rewrites the benchmark query to its global form and mediates it.
func (s *System) answer(req integration.Request) (*integration.Answer, error) {
	gq, ok := benchmarkQueries()[req.QueryID]
	if !ok {
		return nil, fmt.Errorf("rewrite: unknown benchmark query %d", req.QueryID)
	}
	rec := explain.FromContext(req.Context())
	var sp *explain.Span
	if rec != nil {
		sp = rec.Begin(explain.KindAnswer, "DeclarativeMediator.Answer")
		defer sp.End()
	}
	rows, used, err := s.med.AnswerUsageRecorded(gq, rec)
	if err != nil {
		return nil, err
	}
	sp.SetRows(-1, len(rows))
	out := make([]integration.Row, len(rows))
	for i, r := range rows {
		out[i] = integration.Row(r)
	}
	names := make([]string, 0, len(used))
	for n := range used {
		names = append(names, n)
	}
	sort.Strings(names)
	ans := &integration.Answer{Rows: out}
	maxCx := 0
	for _, n := range names {
		ans.Functions = append(ans.Functions, integration.FunctionUse{Name: n, Complexity: used[n]})
		if used[n] > maxCx {
			maxCx = used[n]
		}
	}
	switch maxCx {
	case 0:
		ans.Effort = integration.EffortNone
	case 1:
		ans.Effort = integration.EffortSmall
	case 2:
		ans.Effort = integration.EffortModerate
	default:
		ans.Effort = integration.EffortLarge
	}
	return ans, nil
}
