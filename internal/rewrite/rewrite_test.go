package rewrite

import (
	"testing"

	"thalia/internal/integration"
)

func TestMediatorBasicQuery(t *testing.T) {
	m := NewMediator()
	rows, err := m.Answer(GlobalQuery{
		Sources: []string{"gatech"},
		Select:  []string{"course", "instructor"},
		Where:   []Predicate{{Field: "instructor", Op: OpEq, Value: "Mark"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["course"] != "CS4251" || rows[0]["instructor"] != "Mark" {
		t.Errorf("rows = %v", rows)
	}
}

func TestMultiValuedExpansion(t *testing.T) {
	m := NewMediator()
	rows, err := m.Answer(GlobalQuery{
		Sources: []string{"cmu"},
		Select:  []string{"course", "instructor"},
		Where:   []Predicate{{Field: "course", Op: OpEq, Value: "15-712"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Song/Wing expands to two rows.
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	got := map[string]bool{}
	for _, r := range rows {
		got[r["instructor"]] = true
	}
	if !got["Song"] || !got["Wing"] {
		t.Errorf("instructors: %v", got)
	}
}

func TestSelectedFieldFilteredByOwnPredicate(t *testing.T) {
	m := NewMediator()
	// Only the matching value of a multi-valued selected field is emitted.
	rows, err := m.Answer(GlobalQuery{
		Sources: []string{"cmu"},
		Select:  []string{"course", "instructor"},
		Where:   []Predicate{{Field: "instructor", Op: OpEq, Value: "Wing"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["instructor"] != "Wing" {
		t.Errorf("rows = %v", rows)
	}
}

func TestInapplicableFieldSemantics(t *testing.T) {
	m := NewMediator()
	rows, err := m.Answer(GlobalQuery{
		Sources: []string{"eth"},
		Select:  []string{"course", "restriction"},
		Where: []Predicate{
			{Field: "title", Op: OpContainsTranslated, Value: "database"},
			{Field: "restriction", Op: OpOpenTo, Value: "JR"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("inapplicable predicate should be vacuous, not filtering")
	}
	for _, r := range rows {
		if r["restriction"] != "(not applicable)" {
			t.Errorf("restriction = %q", r["restriction"])
		}
	}
	if used := m.UsedTransforms(); used["dual-null"] != 3 {
		t.Errorf("dual-null not charged: %v", used)
	}
}

func TestMissingAsEmpty(t *testing.T) {
	m := NewMediator()
	rows, err := m.Answer(GlobalQuery{
		Sources: []string{"toronto"},
		Select:  []string{"course", "textbook"},
		Where:   []Predicate{{Field: "title", Op: OpContains, Value: "Formal Methods"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["textbook"] != "" {
		t.Errorf("rows = %v", rows)
	}
}

func TestLedgerOnlyChargesNeededFields(t *testing.T) {
	m := NewMediator()
	// A query not touching eth units must not run the Umfang transform.
	if _, err := m.Answer(GlobalQuery{
		Sources: []string{"eth"},
		Select:  []string{"course"},
		Where:   []Predicate{{Field: "instructor", Op: OpEq, Value: "Gross"}},
	}); err != nil {
		t.Fatal(err)
	}
	if used := m.UsedTransforms(); len(used) != 0 {
		t.Errorf("unneeded transforms charged: %v", used)
	}
}

func TestErrors(t *testing.T) {
	m := NewMediator()
	if _, err := m.Answer(GlobalQuery{Sources: []string{"ghost"}}); err == nil {
		t.Error("unknown source should error")
	}
	if _, err := m.Answer(GlobalQuery{
		Sources: []string{"cmu"},
		Where:   []Predicate{{Field: "title", Op: "bogus", Value: "x"}},
	}); err == nil {
		t.Error("unknown operator should error")
	}
}

func TestSystemAnswersAllQueriesViaTables(t *testing.T) {
	sys := NewSystem()
	for id := 1; id <= 12; id++ {
		ans, err := sys.Answer(integration.Request{QueryID: id})
		if err != nil {
			t.Errorf("query %d: %v", id, err)
			continue
		}
		if len(ans.Rows) == 0 {
			t.Errorf("query %d: no rows", id)
		}
	}
	if _, err := sys.Answer(integration.Request{QueryID: 0}); err == nil {
		t.Error("unknown query should error")
	}
}

func TestSystemEffortLevels(t *testing.T) {
	sys := NewSystem()
	// Query 1 uses only split-slash → small; query 4 needs the lexicon and
	// Umfang semantics → large.
	a1, err := sys.Answer(integration.Request{QueryID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Effort != integration.EffortSmall {
		t.Errorf("q1 effort = %v", a1.Effort)
	}
	a4, err := sys.Answer(integration.Request{QueryID: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a4.Effort != integration.EffortLarge {
		t.Errorf("q4 effort = %v", a4.Effort)
	}
}
