// Package rewrite implements a declarative mediation layer over the THALIA
// testbed: a global course schema, per-source mapping tables (path +
// transform per global field), and a query engine that answers conjunctive
// global queries by decomposing them into per-source evaluations and
// merging the results — the processing model the paper tacitly assumes of
// an integration system ("breaking it into subqueries, which can be
// answered separately using the extracted XML data from the underlying
// sources, and merging the results into an integrated whole").
//
// Unlike internal/ufmw, which hand-codes each benchmark query, this
// mediator is configured entirely by data: the same engine answers all
// twelve queries from twelve GlobalQuery values plus the per-source
// mapping tables in mappings.go.
package rewrite

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"thalia/internal/catalog"
	"thalia/internal/explain"
	"thalia/internal/mapping"
	"thalia/internal/xmldom"
)

// Transform converts a source element holding one mapped field into zero or
// more global string values. Element-level (rather than string-level)
// transforms let mappings see structure: anchors inside Brown's titles,
// comments nested in CMU's titles, Maryland's section rows.
type Transform struct {
	Name string
	// Complexity is the THALIA scoring weight (0 for plain copies).
	Complexity int
	Fn         func(el *xmldom.Element) ([]string, error)
}

// FieldMapping computes one global field from a source course element.
type FieldMapping struct {
	// Field is the global field name ("instructor", "time", ...).
	Field string
	// Path is a slash path of child element names relative to the course
	// element; every matching element contributes values. Empty means the
	// course element itself.
	Path string
	// Transform names a registered transform; empty means "text copy".
	Transform string
	// MissingAsEmpty maps an absent path to one empty value instead of no
	// value — the "data missing but could be present" NULL (case 6).
	MissingAsEmpty bool
}

// SourceMapping is the mediation table for one source.
type SourceMapping struct {
	Source string
	// Record is the course element name under the source root.
	Record string
	Fields []FieldMapping
	// Inapplicable lists global fields whose concept does not exist in
	// this source's world (case 8): queries over them succeed vacuously
	// and results carry the explicit inapplicable marker.
	Inapplicable []string
}

func (sm *SourceMapping) isInapplicable(field string) bool {
	for _, f := range sm.Inapplicable {
		if f == field {
			return true
		}
	}
	return false
}

// Op is a predicate operator for global queries.
type Op string

// Supported predicate operators.
const (
	// OpEq is exact string equality.
	OpEq Op = "eq"
	// OpContains is case-sensitive substring containment (the benchmark's
	// '%…%' semantics).
	OpContains Op = "contains"
	// OpContainsFold is case-insensitive containment.
	OpContainsFold Op = "contains-fold"
	// OpContainsTranslated matches an English term against values in any
	// language via the German lexicon (case 5).
	OpContainsTranslated Op = "contains-translated"
	// OpStartsWith is prefix match.
	OpStartsWith Op = "starts-with"
	// OpGt is numeric greater-than.
	OpGt Op = "gt"
	// OpOpenTo tests US student-classification restrictions (case 8):
	// a course with no classification codes admits everyone.
	OpOpenTo Op = "open-to"
)

// Predicate is one conjunct of a global query.
type Predicate struct {
	Field string
	Op    Op
	Value string
}

// GlobalQuery is a conjunctive query over the global schema.
type GlobalQuery struct {
	// Select lists the global fields to return (besides source and course).
	Select []string
	// Where conjuncts must all hold.
	Where []Predicate
	// Sources restricts evaluation to the named sources.
	Sources []string
}

// Mediator answers global queries over mapped sources. A Mediator is safe
// for concurrent use: each evaluation tallies transform usage in a ledger
// local to the call (AnswerUsage returns it), and the accumulated shared
// ledger behind UsedTransforms is mutex-protected.
type Mediator struct {
	transforms map[string]*Transform
	mappings   map[string]*SourceMapping
	lex        *mapping.Lexicon
	// mu guards used, the ledger accumulated across Answer calls.
	mu   sync.Mutex
	used map[string]int
}

// ledger tallies the transforms one evaluation invoked. Each Answer call
// gets its own, so concurrent evaluations never share mutable state.
type ledger map[string]int

// NewMediator returns a mediator with the standard transform catalog and
// the built-in testbed mapping tables.
func NewMediator() *Mediator {
	m := &Mediator{
		transforms: map[string]*Transform{},
		mappings:   map[string]*SourceMapping{},
		lex:        mapping.NewGermanLexicon(),
		used:       map[string]int{},
	}
	for _, t := range standardTransforms() {
		m.transforms[t.Name] = t
	}
	for _, sm := range testbedMappings() {
		m.mappings[sm.Source] = sm
	}
	return m
}

// Mapping returns the mediation table for a source, if any.
func (m *Mediator) Mapping(source string) (*SourceMapping, bool) {
	sm, ok := m.mappings[source]
	return sm, ok
}

// Mappings returns every source mapping table, sorted by source name.
// Static analysis uses it to cross-check each table's record and field
// paths against the source's published schema.
func (m *Mediator) Mappings() []*SourceMapping {
	names := make([]string, 0, len(m.mappings))
	for name := range m.mappings {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*SourceMapping, len(names))
	for i, name := range names {
		out[i] = m.mappings[name]
	}
	return out
}

// HasTransform reports whether a transform with the given name is
// registered in the mediator's catalog.
func (m *Mediator) HasTransform(name string) bool {
	_, ok := m.transforms[name]
	return ok
}

// Row is one merged global result row.
type Row map[string]string

// charged filters a ledger down to the registered transforms with non-zero
// complexity — the entries THALIA's scoring function charges for.
func (m *Mediator) charged(used ledger) map[string]int {
	out := map[string]int{}
	for name := range used {
		if t, ok := m.transforms[name]; ok && t.Complexity > 0 {
			out[t.Name] = t.Complexity
		}
	}
	return out
}

// UsedTransforms returns the non-trivial transforms invoked since the last
// reset, with their complexities — the mediator's integration-effort
// ledger, accumulated across Answer calls.
func (m *Mediator) UsedTransforms() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.charged(m.used)
}

// ResetLedger clears the accumulated transform-usage ledger.
func (m *Mediator) ResetLedger() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.used = map[string]int{}
}

// Answer evaluates a global query: it decomposes the query into one
// evaluation per mapped source, applies each source's mapping table, and
// merges the per-source rows. The transforms invoked are folded into the
// shared ledger (UsedTransforms); concurrent callers that need per-call
// effort accounting should use AnswerUsage instead.
func (m *Mediator) Answer(q GlobalQuery) ([]Row, error) {
	rows, used, err := m.answerLedger(q, nil)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	for name, n := range used {
		m.used[name] += n
	}
	m.mu.Unlock()
	return rows, nil
}

// AnswerUsage evaluates a global query and returns, alongside the rows, the
// charged transforms this call alone invoked (name → complexity). It does
// not touch the shared ledger, so concurrent evaluations are fully
// independent.
func (m *Mediator) AnswerUsage(q GlobalQuery) ([]Row, map[string]int, error) {
	return m.AnswerUsageRecorded(q, nil)
}

// AnswerUsageRecorded is AnswerUsage with explain instrumentation: per-source
// mapping spans, a merge event, and one transform event per charged
// transform are recorded into rec. A nil rec records nothing and takes the
// same path as AnswerUsage.
func (m *Mediator) AnswerUsageRecorded(q GlobalQuery, rec *explain.Recorder) ([]Row, map[string]int, error) {
	rows, used, err := m.answerLedger(q, rec)
	if err != nil {
		return nil, nil, err
	}
	charged := m.charged(used)
	if rec != nil {
		names := make([]string, 0, len(charged))
		for n := range charged {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rec.Event(explain.KindTransform, n,
				explain.A("complexity", strconv.Itoa(charged[n])))
		}
	}
	return rows, charged, nil
}

// answerLedger runs the evaluation with a fresh call-local ledger.
func (m *Mediator) answerLedger(q GlobalQuery, rec *explain.Recorder) ([]Row, ledger, error) {
	used := ledger{}
	sources := q.Sources
	if len(sources) == 0 {
		for name := range m.mappings {
			sources = append(sources, name)
		}
		sort.Strings(sources)
	}
	var out []Row
	for _, name := range sources {
		sm, ok := m.mappings[name]
		if !ok {
			return nil, nil, fmt.Errorf("rewrite: no mapping for source %q", name)
		}
		var ssp *explain.Span
		if rec != nil {
			ssp = rec.Begin(explain.KindMapping, "mapping "+name)
			rec.Event(explain.KindDoc, name+".xml")
		}
		rows, err := m.answerSource(sm, q, used)
		if err != nil {
			return nil, nil, fmt.Errorf("rewrite: source %s: %w", name, err)
		}
		if ssp != nil {
			ssp.SetRows(-1, len(rows))
			ssp.End()
		}
		out = append(out, rows...)
	}
	if rec != nil {
		rec.Event(explain.KindMerge,
			fmt.Sprintf("%d sources -> %d rows", len(sources), len(out)))
	}
	return out, used, nil
}

// answerSource evaluates the query against one source.
func (m *Mediator) answerSource(sm *SourceMapping, q GlobalQuery, used ledger) ([]Row, error) {
	src, err := catalog.Get(sm.Source)
	if err != nil {
		return nil, err
	}
	doc, err := src.Document()
	if err != nil {
		return nil, err
	}
	// Only the fields the query touches are computed: transforms for
	// unrelated fields are neither run nor charged.
	needed := map[string]bool{"course": true}
	for _, f := range q.Select {
		needed[f] = true
	}
	for _, p := range q.Where {
		needed[p.Field] = true
	}
	var out []Row
	for _, course := range doc.Root.ChildrenNamed(sm.Record) {
		vals, err := m.fieldValues(sm, course, needed, used)
		if err != nil {
			return nil, err
		}
		keep, err := m.courseSatisfies(sm, vals, q.Where, used)
		if err != nil {
			return nil, err
		}
		if !keep {
			continue
		}
		out = append(out, m.expand(sm, vals, q, used)...)
	}
	return out, nil
}

// fieldValues computes the needed global fields of one course.
func (m *Mediator) fieldValues(sm *SourceMapping, course *xmldom.Element, needed map[string]bool, used ledger) (map[string][]string, error) {
	vals := map[string][]string{}
	for _, fm := range sm.Fields {
		if !needed[fm.Field] {
			continue
		}
		els := resolvePath(course, fm.Path)
		if len(els) == 0 {
			if fm.MissingAsEmpty {
				vals[fm.Field] = append(vals[fm.Field], "")
			}
			continue
		}
		for _, el := range els {
			vs, err := m.apply(fm, el, used)
			if err != nil {
				return nil, err
			}
			vals[fm.Field] = append(vals[fm.Field], vs...)
		}
	}
	return vals, nil
}

func (m *Mediator) apply(fm FieldMapping, el *xmldom.Element, used ledger) ([]string, error) {
	if fm.Transform == "" {
		return []string{el.Text()}, nil
	}
	t, ok := m.transforms[fm.Transform]
	if !ok {
		return nil, fmt.Errorf("unknown transform %q", fm.Transform)
	}
	used[t.Name]++
	return t.Fn(el)
}

// courseSatisfies applies the conjunction with existential semantics over
// multi-valued fields. A predicate over a field the source declares
// inapplicable holds vacuously; the field renders as the inapplicable
// marker (the dual-NULL treatment of case 8).
func (m *Mediator) courseSatisfies(sm *SourceMapping, vals map[string][]string, where []Predicate, used ledger) (bool, error) {
	for _, p := range where {
		if sm.isInapplicable(p.Field) {
			// Vacuously satisfied: the concept cannot be present (case 8).
			used["dual-null"]++
			continue
		}
		ok := false
		for _, v := range vals[p.Field] {
			match, err := m.eval(p, v, used)
			if err != nil {
				return false, err
			}
			if match {
				ok = true
				break
			}
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func (m *Mediator) eval(p Predicate, v string, used ledger) (bool, error) {
	switch p.Op {
	case OpEq:
		return v == p.Value, nil
	case OpContains:
		return strings.Contains(v, p.Value), nil
	case OpContainsFold:
		return strings.Contains(strings.ToLower(v), strings.ToLower(p.Value)), nil
	case OpContainsTranslated:
		used["lexicon-translate"]++
		return m.lex.ValueContains(v, p.Value), nil
	case OpStartsWith:
		return strings.HasPrefix(v, p.Value), nil
	case OpGt:
		n, err1 := strconv.ParseFloat(strings.TrimSpace(v), 64)
		bound, err2 := strconv.ParseFloat(p.Value, 64)
		if err1 != nil || err2 != nil {
			return false, nil
		}
		return n > bound, nil
	case OpOpenTo:
		return mapping.OpenTo(v, p.Value), nil
	default:
		return false, fmt.Errorf("unknown predicate operator %q", p.Op)
	}
}

// expand emits result rows for one matching course: single-valued fields
// fill in place; each selected multi-valued field expands to one row per
// value, with predicates on that same field re-applied to the expanded
// value.
func (m *Mediator) expand(sm *SourceMapping, vals map[string][]string, q GlobalQuery, used ledger) []Row {
	base := Row{"source": sm.Source}
	if cn := vals["course"]; len(cn) > 0 {
		base["course"] = cn[0]
	}
	rows := []Row{base}
	for _, field := range q.Select {
		if field == "course" {
			continue
		}
		if sm.isInapplicable(field) {
			used["dual-null"]++
			for _, r := range rows {
				r[field] = mapping.Inapplicable().Marker()
			}
			continue
		}
		fvals := vals[field]
		// Keep only values satisfying this field's own predicates, so a
		// selected multi-valued field (e.g. instructor = "Mark") expands
		// to matching values only.
		var kept []string
		for _, v := range fvals {
			ok := true
			for _, p := range q.Where {
				if p.Field != field {
					continue
				}
				match, err := m.eval(p, v, used)
				if err != nil || !match {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, v)
			}
		}
		switch len(kept) {
		case 0:
			for _, r := range rows {
				r[field] = ""
			}
		case 1:
			for _, r := range rows {
				r[field] = kept[0]
			}
		default:
			var next []Row
			for _, r := range rows {
				for _, v := range kept {
					nr := Row{}
					for k, val := range r {
						nr[k] = val
					}
					nr[field] = v
					next = append(next, nr)
				}
			}
			rows = next
		}
	}
	return rows
}

// resolvePath returns the elements at a slash path below el; empty path
// resolves to el itself.
func resolvePath(el *xmldom.Element, path string) []*xmldom.Element {
	if path == "" {
		return []*xmldom.Element{el}
	}
	// Nearly every mapping path is a single step; skip the Split and the
	// intermediate slices for those.
	if !strings.Contains(path, "/") {
		return el.ChildrenNamed(path)
	}
	cur := []*xmldom.Element{el}
	for _, step := range strings.Split(path, "/") {
		var next []*xmldom.Element
		for _, e := range cur {
			next = append(next, e.ChildrenNamed(step)...)
		}
		cur = next
	}
	return cur
}
