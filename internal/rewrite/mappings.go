package rewrite

import (
	"fmt"
	"strings"

	"thalia/internal/mapping"
	"thalia/internal/xmldom"
)

// standardTransforms is the element-level transform catalog the built-in
// mapping tables use. Complexities follow the THALIA scoring convention
// (0 plain copy, 1 low, 2 medium, 3 high).
func standardTransforms() []*Transform {
	one := func(v string) []string { return []string{v} }
	return []*Transform{
		{
			Name: "title-text", Complexity: 0,
			// Direct text only: excludes a comment nested in the title.
			Fn: func(el *xmldom.Element) ([]string, error) { return one(el.Text()), nil },
		},
		{
			Name: "range24", Complexity: 1,
			Fn: func(el *xmldom.Element) ([]string, error) {
				v, err := mapping.RangeTo24(el.Text())
				if err != nil {
					return nil, err
				}
				return one(v), nil
			},
		},
		{
			Name: "split-slash", Complexity: 1,
			Fn: func(el *xmldom.Element) ([]string, error) {
				var out []string
				for _, p := range strings.Split(el.Text(), "/") {
					if p = strings.TrimSpace(p); p != "" {
						out = append(out, p)
					}
				}
				return out, nil
			},
		},
		{
			Name: "brown-title", Complexity: 2,
			Fn: func(el *xmldom.Element) ([]string, error) {
				if a := el.Child("a"); a != nil {
					return one(a.Text()), nil
				}
				return one(mapping.DecomposeBrownTitle(el.DeepText()).Title), nil
			},
		},
		{
			Name: "brown-day", Complexity: 2,
			Fn: func(el *xmldom.Element) ([]string, error) {
				bt := mapping.DecomposeBrownTitle(el.DeepText())
				if bt.Days == "" {
					return nil, nil
				}
				return one(mapping.CanonicalDays(bt.Days)), nil
			},
		},
		{
			Name: "brown-time", Complexity: 2,
			Fn: func(el *xmldom.Element) ([]string, error) {
				bt := mapping.DecomposeBrownTitle(el.DeepText())
				if bt.Time == "" {
					return nil, nil
				}
				v, err := mapping.RangeTo24(bt.Time)
				if err != nil {
					return nil, err
				}
				return one(v), nil
			},
		},
		{
			Name: "umd-section-teacher", Complexity: 2,
			Fn: func(el *xmldom.Element) ([]string, error) {
				sec, err := mapping.ParseUMDSection(el.Text())
				if err != nil {
					return nil, err
				}
				return one(sec.Teacher), nil
			},
		},
		{
			Name: "umd-time-room", Complexity: 1,
			Fn: func(el *xmldom.Element) ([]string, error) {
				tm, err := mapping.ParseUMDTime(el.Text())
				if err != nil {
					return nil, err
				}
				return one(tm.Room), nil
			},
		},
		{
			Name: "comment-prereq", Complexity: 2,
			Fn: func(el *xmldom.Element) ([]string, error) {
				if mapping.InferEntryLevel("", el.Text()) {
					return one("None"), nil
				}
				return nil, nil
			},
		},
		{
			Name: "umfang-units", Complexity: 3,
			Fn: func(el *xmldom.Element) ([]string, error) {
				u, err := mapping.ParseUmfang(el.Text())
				if err != nil {
					return nil, err
				}
				return one(fmt.Sprintf("%d", u.Units())), nil
			},
		},
		{
			Name: "term-instructor", Complexity: 2,
			Fn: func(el *xmldom.Element) ([]string, error) {
				v := strings.TrimSpace(el.Text())
				if v == "" || v == "(not offered)" {
					return nil, nil
				}
				return one(v), nil
			},
		},
		// Pseudo-transforms representing predicate-level machinery, so the
		// effort ledger can charge for them.
		{Name: "lexicon-translate", Complexity: 3, Fn: func(el *xmldom.Element) ([]string, error) { return nil, nil }},
		{Name: "dual-null", Complexity: 3, Fn: func(el *xmldom.Element) ([]string, error) { return nil, nil }},
	}
}

// testbedMappings is the mediation table for the benchmark's source pairs.
func testbedMappings() []*SourceMapping {
	return []*SourceMapping{
		{
			Source: "gatech", Record: "Course",
			Fields: []FieldMapping{
				{Field: "course", Path: "CourseNum"},
				{Field: "title", Path: "Title"},
				{Field: "instructor", Path: "Instructor"},
				{Field: "time", Path: "Time"},
				{Field: "room", Path: "Room"},
				{Field: "restriction", Path: "Restrictions"},
			},
		},
		{
			Source: "cmu", Record: "Course",
			Fields: []FieldMapping{
				{Field: "course", Path: "CourseNumber"},
				{Field: "title", Path: "CourseTitle", Transform: "title-text"},
				{Field: "instructor", Path: "Lecturer", Transform: "split-slash"},
				{Field: "units", Path: "Units"},
				{Field: "day", Path: "Day"},
				{Field: "time", Path: "Time", Transform: "range24"},
				{Field: "room", Path: "Room"},
				{Field: "textbook", Path: "Textbook", MissingAsEmpty: true},
				{Field: "prerequisite", Path: "CourseTitle/Comment", Transform: "comment-prereq"},
			},
		},
		{
			Source: "umd", Record: "Course",
			Fields: []FieldMapping{
				{Field: "course", Path: "CourseNum"},
				{Field: "title", Path: "CourseName"},
				{Field: "instructor", Path: "Section/SectionTitle", Transform: "umd-section-teacher"},
				{Field: "room", Path: "Section/Time", Transform: "umd-time-room"},
			},
		},
		{
			Source: "brown", Record: "Course",
			Fields: []FieldMapping{
				{Field: "course", Path: "CrsNum"},
				{Field: "title", Path: "Title", Transform: "brown-title"},
				{Field: "day", Path: "Title", Transform: "brown-day"},
				{Field: "time", Path: "Title", Transform: "brown-time"},
				{Field: "room", Path: "Room"},
			},
		},
		{
			Source: "toronto", Record: "course",
			Fields: []FieldMapping{
				{Field: "course", Path: "code"},
				{Field: "title", Path: "title"},
				{Field: "instructor", Path: "instructor"},
				{Field: "textbook", Path: "text", MissingAsEmpty: true},
			},
		},
		{
			Source: "umich", Record: "Course",
			Fields: []FieldMapping{
				{Field: "course", Path: "number"},
				{Field: "title", Path: "title"},
				{Field: "instructor", Path: "instructor"},
				{Field: "prerequisite", Path: "prerequisite"},
			},
		},
		{
			Source: "ucsd", Record: "Course",
			Fields: []FieldMapping{
				{Field: "course", Path: "Number"},
				{Field: "title", Path: "Title"},
				// Both term columns feed the instructor field (case 11).
				{Field: "instructor", Path: "Fall2003", Transform: "term-instructor"},
				{Field: "instructor", Path: "Winter2004", Transform: "term-instructor"},
			},
		},
		{
			Source: "umass", Record: "Course",
			Fields: []FieldMapping{
				{Field: "course", Path: "Number"},
				{Field: "title", Path: "Name"},
				{Field: "instructor", Path: "Instructor"},
				{Field: "day", Path: "Days"},
				{Field: "time", Path: "Time", Transform: "range24"},
				{Field: "room", Path: "Room"},
			},
		},
		{
			Source: "eth", Record: "Vorlesung",
			Fields: []FieldMapping{
				{Field: "course", Path: "Nummer"},
				{Field: "title", Path: "Titel"},
				{Field: "instructor", Path: "Dozent"},
				{Field: "units", Path: "Umfang", Transform: "umfang-units"},
				{Field: "room", Path: "Ort"},
			},
			// US student classification does not exist at ETH (case 8).
			Inapplicable: []string{"restriction"},
		},
	}
}
