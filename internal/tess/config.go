// Package tess implements the screen-scraping wrapper THALIA uses to turn
// cached HTML course catalogs into well-formed XML. It follows the design of
// the Telegraph Screen Scraper (TESS) as the paper describes it: for each
// source, a configuration file specifies the fields to extract, with the
// beginning and ending point of each field identified by regular
// expressions. The package also implements the paper's two extensions:
//
//   - nested structures (required for the University of Maryland catalog,
//     whose sections are rows of a nested table), expressed as rules within
//     rules; and
//   - link handling: TESS performs no deep extraction, so a hyperlinked
//     field either keeps its markup (mode "markup"), is flattened to text
//     (mode "text"), or yields the URL of the link itself (mode "link").
//
// Extraction deliberately preserves structural and semantic heterogeneity:
// emitted element names come from the configuration, which in the testbed
// takes them from the source's own column titles.
package tess

import (
	"fmt"
	"regexp"
	"strconv"

	"thalia/internal/xmldom"
)

// Mode selects how a leaf rule converts the matched region into a value.
type Mode int

// Extraction modes for leaf rules.
const (
	// ModeText strips markup, decodes entities, and collapses whitespace.
	ModeText Mode = iota
	// ModeMarkup preserves inline markup (anchors) as child elements; this
	// is how Brown's hyperlinked Title/Time column is represented.
	ModeMarkup
	// ModeLink yields the URL of the first hyperlink in the region — the
	// paper's stand-in for unimplemented deep extraction.
	ModeLink
	// ModeRaw keeps the region verbatim (no tag stripping); used when the
	// region is already plain text.
	ModeRaw
	// ModeDeep follows the region's hyperlink and extracts from the linked
	// page using the rule's nested Rules — the deep extraction the paper
	// lists as unimplemented future work ("we return the URL of the link
	// instead"). Without a page fetcher (ExtractPages' fetch argument),
	// ModeDeep degrades to exactly the paper's behaviour: the URL itself
	// becomes the extracted value.
	ModeDeep
)

// String returns the configuration-file spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeText:
		return "text"
	case ModeMarkup:
		return "markup"
	case ModeLink:
		return "link"
	case ModeRaw:
		return "raw"
	case ModeDeep:
		return "deep"
	default:
		return "text"
	}
}

// parseMode is the inverse of Mode.String.
func parseMode(s string) (Mode, error) {
	switch s {
	case "", "text":
		return ModeText, nil
	case "markup":
		return ModeMarkup, nil
	case "link":
		return ModeLink, nil
	case "raw":
		return ModeRaw, nil
	case "deep":
		return ModeDeep, nil
	default:
		return ModeText, fmt.Errorf("tess: unknown mode %q", s)
	}
}

// AttrRule extracts an attribute for the enclosing rule's element from the
// same region, delimited by Begin/End regular expressions.
type AttrRule struct {
	Name  string
	Begin string
	End   string

	begin, end *regexp.Regexp
}

// Rule describes one field to extract. The field's region starts after the
// first match of Begin and ends before the following match of End. A rule
// with nested Rules emits an element whose children come from applying the
// nested rules to the region (the paper's nested-structure extension);
// otherwise it emits an element whose content is the region converted
// according to Mode.
type Rule struct {
	// Name is the emitted XML element name. In the testbed this is the
	// source's own column title, preserving naming heterogeneities.
	Name string
	// Begin and End are regular expressions delimiting the region.
	Begin string
	End   string
	// Repeat extracts every occurrence in the enclosing region rather than
	// only the first.
	Repeat bool
	// Optional suppresses the "field not found" error when Begin does not
	// match; the element is simply omitted (case 6, Nulls).
	Optional bool
	// Mode controls leaf conversion; ignored when Rules is non-empty.
	Mode Mode
	// Rules are nested extraction rules (the UMD extension).
	Rules []*Rule
	// Mixed, for a rule with nested Rules, also keeps the region's text
	// outside the nested matches (tag-stripped) as leading character data.
	// This models columns like CMU's title, where a free-text comment is
	// attached to the course title (cases 3 and 7).
	Mixed bool
	// Attrs extract attributes of the emitted element from the region.
	Attrs []*AttrRule

	begin, end *regexp.Regexp
}

// Config is a complete wrapper configuration for one source.
type Config struct {
	// Source is the root element name of the emitted document (e.g. "brown").
	Source string
	// Rules are applied to the whole page.
	Rules []*Rule
}

// compile prepares all regular expressions, returning the first error.
func (c *Config) compile() error {
	if c.Source == "" {
		return fmt.Errorf("tess: config has no source name")
	}
	if len(c.Rules) == 0 {
		return fmt.Errorf("tess: config %q has no rules", c.Source)
	}
	for _, r := range c.Rules {
		if err := r.compile(); err != nil {
			return err
		}
	}
	return nil
}

func (r *Rule) compile() error {
	if r.Name == "" {
		return fmt.Errorf("tess: rule missing name")
	}
	var err error
	if r.begin, err = regexp.Compile(r.Begin); err != nil {
		return fmt.Errorf("tess: rule %s: begin: %w", r.Name, err)
	}
	if r.end, err = regexp.Compile(r.End); err != nil {
		return fmt.Errorf("tess: rule %s: end: %w", r.Name, err)
	}
	for _, a := range r.Attrs {
		if a.begin, err = regexp.Compile(a.Begin); err != nil {
			return fmt.Errorf("tess: rule %s: attr %s begin: %w", r.Name, a.Name, err)
		}
		if a.end, err = regexp.Compile(a.End); err != nil {
			return fmt.Errorf("tess: rule %s: attr %s end: %w", r.Name, a.Name, err)
		}
	}
	for _, child := range r.Rules {
		if err := child.compile(); err != nil {
			return err
		}
	}
	return nil
}

// MarshalConfig renders the configuration in its XML file format.
func MarshalConfig(c *Config) string {
	root := xmldom.NewElement("tess").SetAttr("source", c.Source)
	for _, r := range c.Rules {
		root.Append(ruleToXML(r))
	}
	return xmldom.NewDocument(root).Encode()
}

func ruleToXML(r *Rule) *xmldom.Element {
	el := xmldom.NewElement("rule").
		SetAttr("name", r.Name).
		SetAttr("begin", r.Begin).
		SetAttr("end", r.End)
	if r.Repeat {
		el.SetAttr("repeat", "true")
	}
	if r.Optional {
		el.SetAttr("optional", "true")
	}
	if r.Mixed {
		el.SetAttr("mixed", "true")
	}
	if r.Mode != ModeText {
		el.SetAttr("mode", r.Mode.String())
	}
	for _, a := range r.Attrs {
		el.Append(xmldom.NewElement("attr").
			SetAttr("name", a.Name).
			SetAttr("begin", a.Begin).
			SetAttr("end", a.End))
	}
	for _, child := range r.Rules {
		el.Append(ruleToXML(child))
	}
	return el
}

// ParseConfig reads a configuration from its XML file format.
func ParseConfig(src string) (*Config, error) {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return nil, fmt.Errorf("tess: config: %w", err)
	}
	if doc.Root.Name != "tess" {
		return nil, fmt.Errorf("tess: config root is %q, want tess", doc.Root.Name)
	}
	c := &Config{Source: doc.Root.AttrValue("source")}
	for _, rel := range doc.Root.ChildrenNamed("rule") {
		r, err := ruleFromXML(rel)
		if err != nil {
			return nil, err
		}
		c.Rules = append(c.Rules, r)
	}
	if err := c.compile(); err != nil {
		return nil, err
	}
	return c, nil
}

func ruleFromXML(el *xmldom.Element) (*Rule, error) {
	r := &Rule{
		Name:  el.AttrValue("name"),
		Begin: el.AttrValue("begin"),
		End:   el.AttrValue("end"),
	}
	var err error
	if v := el.AttrValue("repeat"); v != "" {
		if r.Repeat, err = strconv.ParseBool(v); err != nil {
			return nil, fmt.Errorf("tess: rule %s: repeat: %w", r.Name, err)
		}
	}
	if v := el.AttrValue("optional"); v != "" {
		if r.Optional, err = strconv.ParseBool(v); err != nil {
			return nil, fmt.Errorf("tess: rule %s: optional: %w", r.Name, err)
		}
	}
	if v := el.AttrValue("mixed"); v != "" {
		if r.Mixed, err = strconv.ParseBool(v); err != nil {
			return nil, fmt.Errorf("tess: rule %s: mixed: %w", r.Name, err)
		}
	}
	if r.Mode, err = parseMode(el.AttrValue("mode")); err != nil {
		return nil, err
	}
	for _, a := range el.ChildrenNamed("attr") {
		r.Attrs = append(r.Attrs, &AttrRule{
			Name:  a.AttrValue("name"),
			Begin: a.AttrValue("begin"),
			End:   a.AttrValue("end"),
		})
	}
	for _, c := range el.ChildrenNamed("rule") {
		child, err := ruleFromXML(c)
		if err != nil {
			return nil, err
		}
		r.Rules = append(r.Rules, child)
	}
	return r, nil
}
