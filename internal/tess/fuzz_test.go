package tess

import "testing"

// FuzzParseConfig drives the wrapper-config reader with arbitrary input.
// The contract under test: ParseConfig never panics — malformed configs
// error out — and any accepted config survives MarshalConfig → ParseConfig
// with the same rendered form (the XML rendering is canonical).
func FuzzParseConfig(f *testing.F) {
	seeds := []string{
		`<tess source="cmu"><rule name="Course" begin="&lt;tr&gt;" end="&lt;/tr&gt;" repeat="true"><rule name="Title" begin="&lt;td&gt;" end="&lt;/td&gt;"/></rule></tess>`,
		`<tess source="brown"><rule name="Course" begin="B" end="E" repeat="true" optional="true" mixed="true" mode="html"><attr name="href" begin="href=&quot;" end="&quot;"/></rule></tess>`,
		`<tess source="x"/>`,
		`<tess><rule name="r" begin="a" end="b" mode="bogus"/></tess>`,
		`<tess><rule name="r" begin="a" end="b" repeat="maybe"/></tess>`,
		`<nottess/>`,
		`not xml at all`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseConfig(src)
		if err != nil {
			return // malformed configs must error, not panic
		}
		if c == nil {
			t.Fatalf("ParseConfig(%q) returned nil config and nil error", src)
		}
		out := MarshalConfig(c)
		c2, err := ParseConfig(out)
		if err != nil {
			t.Fatalf("re-parse of marshaled config failed: %v\ninput:    %q\nmarshaled: %q", err, src, out)
		}
		if out2 := MarshalConfig(c2); out2 != out {
			t.Fatalf("marshal is not canonical\nfirst:  %q\nsecond: %q", out, out2)
		}
	})
}
