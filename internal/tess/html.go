package tess

import (
	"regexp"
	"strings"

	"thalia/internal/xmldom"
)

// tagRE matches a single HTML tag (open, close, or self-closing).
var tagRE = regexp.MustCompile(`(?s)<[^>]*>`)

// anchorRE matches a complete anchor element, capturing href and body.
var anchorRE = regexp.MustCompile(`(?is)<a\s[^>]*href\s*=\s*["']?([^"'>\s]+)["']?[^>]*>(.*?)</a>`)

// hrefRE matches just the href attribute of the first anchor tag.
var hrefRE = regexp.MustCompile(`(?is)<a\s[^>]*href\s*=\s*["']?([^"'>\s]+)["']?`)

var entityReplacer = strings.NewReplacer(
	"&nbsp;", " ",
	"&ndash;", "\u2013",
	"&mdash;", "\u2014",
	"&amp;", "&",
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&#39;", "'",
	"&apos;", "'",
	"&uuml;", "ü",
	"&ouml;", "ö",
	"&auml;", "ä",
	"&Uuml;", "Ü",
	"&Ouml;", "Ö",
	"&Auml;", "Ä",
	"&szlig;", "ß",
)

// decodeEntities resolves the HTML entities that occur in the testbed's
// cached catalog pages (including the German umlauts in ETH's catalog).
func decodeEntities(s string) string { return entityReplacer.Replace(s) }

var spaceRE = regexp.MustCompile(`\s+`)

// StripTags removes all markup from an HTML region, decodes entities, and
// collapses runs of whitespace — the ModeText conversion.
func StripTags(s string) string {
	// <br> acts as a separator, not mere markup.
	s = regexp.MustCompile(`(?i)<br\s*/?>`).ReplaceAllString(s, " ")
	s = tagRE.ReplaceAllString(s, "")
	s = decodeEntities(s)
	return strings.TrimSpace(spaceRE.ReplaceAllString(s, " "))
}

// FirstLink returns the URL of the first hyperlink in the region, or "" if
// there is none — the ModeLink conversion (TESS's stand-in for deep
// extraction, per the paper).
func FirstLink(s string) string {
	m := hrefRE.FindStringSubmatch(s)
	if m == nil {
		return ""
	}
	return m[1]
}

// MarkupNodes converts an HTML region into xmldom nodes, preserving anchors
// as <a href="..."> elements with their (tag-stripped) text content, and
// everything else as text — the ModeMarkup conversion. This reproduces how
// the testbed represents Brown's Title/Time column, where the course title
// is a hyperlink concatenated with free-text time information.
func MarkupNodes(s string) []xmldom.Node {
	var nodes []xmldom.Node
	appendText := func(t string) {
		t = StripTags(t)
		if t == "" {
			return
		}
		nodes = append(nodes, xmldom.NewText(t))
	}
	for {
		loc := anchorRE.FindStringSubmatchIndex(s)
		if loc == nil {
			appendText(s)
			return nodes
		}
		appendText(s[:loc[0]])
		href := s[loc[2]:loc[3]]
		body := StripTags(s[loc[4]:loc[5]])
		a := xmldom.NewElement("a").SetAttr("href", href)
		if body != "" {
			a.AppendText(body)
		}
		nodes = append(nodes, a)
		s = s[loc[1]:]
	}
}
