package tess

import (
	"strings"
	"testing"
	"testing/quick"

	"thalia/internal/xmldom"
)

// A miniature Brown-style catalog: a simple table, one row per course, with
// a hyperlinked instructor and a Title/Time concatenation (Figure 1).
const brownPage = `<html><body><h1>Brown CS Courses</h1>
<table>
<tr class="hdr"><th>CrsNum</th><th>Instructor</th><th>Title/Time</th><th>Room</th></tr>
<tr class="course"><td>CS016</td><td><a href="http://cs.brown.edu/~twd">Doeppner</a></td><td><a href="http://www.cs.brown.edu/courses/cs016/">Intro to Algorithms &amp; Data Structures</a>D hr. MWF 11-12</td><td>CIT 165, Labs in Sunlab</td></tr>
<tr class="course"><td>CS127</td><td><a href="http://cs.brown.edu/~ugur">Cetintemel</a></td><td><a href="http://www.cs.brown.edu/courses/cs127/">Databases</a>K hr. T,Th 2:30-4</td><td>CIT 368</td></tr>
</table></body></html>`

func brownConfig() *Config {
	return &Config{
		Source: "brown",
		Rules: []*Rule{{
			Name:   "Course",
			Begin:  `<tr class="course">`,
			End:    `</tr>`,
			Repeat: true,
			Rules: []*Rule{
				{Name: "CrsNum", Begin: `<td>`, End: `</td>`},
				{Name: "Instructor", Begin: `<td>`, End: `</td>`, Mode: ModeLink},
				{Name: "Title", Begin: `<td>`, End: `</td>`, Mode: ModeMarkup},
				{Name: "Room", Begin: `<td>`, End: `</td>`},
			},
		}},
	}
}

func TestExtractBrownStyle(t *testing.T) {
	doc, err := Extract(brownConfig(), brownPage)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	courses := doc.Root.ChildrenNamed("Course")
	if len(courses) != 2 {
		t.Fatalf("courses = %d, want 2\n%s", len(courses), doc.Encode())
	}
	c := courses[0]
	if got := c.ChildText("CrsNum"); got != "CS016" {
		t.Errorf("CrsNum = %q", got)
	}
	// ModeLink: instructor value is the URL of the link (no deep extraction).
	if got := c.ChildText("Instructor"); got != "http://cs.brown.edu/~twd" {
		t.Errorf("Instructor = %q", got)
	}
	// ModeMarkup: the title keeps the anchor plus the trailing time text.
	title := c.Child("Title")
	if title == nil {
		t.Fatal("no Title")
	}
	a := title.Child("a")
	if a == nil || a.Text() != "Intro to Algorithms & Data Structures" {
		t.Fatalf("Title anchor wrong: %v", title)
	}
	if got := title.DeepText(); !strings.Contains(got, "D hr. MWF 11-12") {
		t.Errorf("Title tail = %q", got)
	}
	if got := c.ChildText("Room"); got != "CIT 165, Labs in Sunlab" {
		t.Errorf("Room = %q", got)
	}
}

// A miniature Maryland-style catalog: courses with a *nested* sections
// table (Figure 2), requiring the nested-rule extension.
const umdPage = `<html><body>
<div class="course"><b>CMSC412</b> Operating Systems; <i>(3 credits)</i>
<table class="sections">
<tr class="sec"><td>0101(13795)</td><td>Hollingsworth, J.</td><td>MWF 10:00am KEY0106</td></tr>
<tr class="sec"><td>0201(13796)</td><td>Keleher, P. (Seats=40, Open=2, Waitlist=0)</td><td>TTh 2:00pm EGR2154</td></tr>
</table>
</div>
<div class="course"><b>CMSC420</b> Data Structures; <i>(3 credits)</i>
<table class="sections">
<tr class="sec"><td>0101(13801)</td><td>Mount, D.</td><td>MWF 11:00am CSI2117</td></tr>
</table>
</div>
</body></html>`

func umdConfig() *Config {
	return &Config{
		Source: "umd",
		Rules: []*Rule{{
			Name:   "Course",
			Begin:  `<div class="course">`,
			End:    `</div>`,
			Repeat: true,
			Rules: []*Rule{
				{Name: "CourseNum", Begin: `<b>`, End: `</b>`},
				// An empty begin expression means "continue from here": the
				// course name starts right after the previous field's end.
				{Name: "CourseName", Begin: ``, End: `;`},
				{Name: "Credits", Begin: `<i>\(`, End: `\)</i>`},
				{
					Name:   "Section",
					Begin:  `<tr class="sec">`,
					End:    `</tr>`,
					Repeat: true,
					Rules: []*Rule{
						{Name: "SectionNum", Begin: `<td>`, End: `</td>`},
						{Name: "Teacher", Begin: `<td>`, End: `</td>`},
						{Name: "Time", Begin: `<td>`, End: `</td>`},
					},
				},
			},
		}},
	}
}

func TestExtractNestedSections(t *testing.T) {
	doc, err := Extract(umdConfig(), umdPage)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	courses := doc.Root.ChildrenNamed("Course")
	if len(courses) != 2 {
		t.Fatalf("courses = %d, want 2\n%s", len(courses), doc.Encode())
	}
	os := courses[0]
	if got := os.ChildText("CourseName"); got != "Operating Systems" {
		t.Errorf("CourseName = %q", got)
	}
	secs := os.ChildrenNamed("Section")
	if len(secs) != 2 {
		t.Fatalf("sections = %d, want 2", len(secs))
	}
	if got := secs[1].ChildText("Teacher"); got != "Keleher, P. (Seats=40, Open=2, Waitlist=0)" {
		t.Errorf("Teacher = %q", got)
	}
	if got := secs[0].ChildText("Time"); got != "MWF 10:00am KEY0106" {
		t.Errorf("Time = %q", got)
	}
	if got := courses[1].ChildrenNamed("Section"); len(got) != 1 {
		t.Errorf("second course sections = %d, want 1", len(got))
	}
}

// Ablation check from DESIGN.md: without the nested-structure extension a
// flat rule cannot reproduce the per-course section grouping — all sections
// collapse into one undifferentiated list.
func TestAblationFlatRulesLoseNesting(t *testing.T) {
	flat := &Config{
		Source: "umd",
		Rules: []*Rule{
			{Name: "Section", Begin: `<tr class="sec">`, End: `</tr>`, Repeat: true, Mode: ModeText},
		},
	}
	doc, err := Extract(flat, umdPage)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	// Flat extraction yields 3 sections directly under the root — the
	// association between course and sections is lost.
	if got := len(doc.Root.ChildrenNamed("Section")); got != 3 {
		t.Fatalf("flat sections = %d, want 3", got)
	}
	if got := len(doc.Root.ChildrenNamed("Course")); got != 0 {
		t.Errorf("flat extraction should not produce Course elements")
	}
}

func TestRequiredFieldMissing(t *testing.T) {
	cfg := &Config{
		Source: "x",
		Rules:  []*Rule{{Name: "F", Begin: `BEGIN`, End: `END`}},
	}
	_, err := Extract(cfg, "no markers here")
	if err == nil {
		t.Fatal("expected error")
	}
	fe, ok := err.(*FieldError)
	if !ok {
		t.Fatalf("error type %T, want *FieldError", err)
	}
	if fe.Rule != "F" || fe.Which != "begin" {
		t.Errorf("FieldError = %+v", fe)
	}

	_, err = Extract(cfg, "BEGIN but never ends")
	fe, ok = err.(*FieldError)
	if !ok || fe.Which != "end" {
		t.Errorf("want end-marker error, got %v", err)
	}
}

func TestOptionalFieldOmitted(t *testing.T) {
	cfg := &Config{
		Source: "x",
		Rules: []*Rule{
			{Name: "A", Begin: `\[`, End: `\]`},
			{Name: "Textbook", Begin: `<book>`, End: `</book>`, Optional: true},
		},
	}
	doc, err := Extract(cfg, "[hello]")
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if doc.Root.HasChild("Textbook") {
		t.Error("optional missing field should be omitted")
	}
	if got := doc.Root.ChildText("A"); got != "hello" {
		t.Errorf("A = %q", got)
	}
}

func TestAttrRules(t *testing.T) {
	cfg := &Config{
		Source: "x",
		Rules: []*Rule{{
			Name: "Time", Begin: `<time[^>]*>`, End: `</time>`,
			Attrs: []*AttrRule{{Name: "room", Begin: `room="`, End: `"`}},
			Rules: []*Rule{{Name: "Value", Begin: `>`, End: `<`}},
		}},
	}
	doc, err := Extract(cfg, `<time room="KEY0106"><v>10am</v></time>`)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	tm := doc.Root.Child("Time")
	if tm.AttrValue("room") != "KEY0106" {
		t.Errorf("room attr = %q", tm.AttrValue("room"))
	}
	if got := tm.ChildText("Value"); got != "10am" {
		t.Errorf("Value = %q", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []*Config{
		{Source: "", Rules: []*Rule{{Name: "a", Begin: "x", End: "y"}}},
		{Source: "s"},
		{Source: "s", Rules: []*Rule{{Name: "", Begin: "x", End: "y"}}},
		{Source: "s", Rules: []*Rule{{Name: "a", Begin: "(", End: "y"}}},
		{Source: "s", Rules: []*Rule{{Name: "a", Begin: "x", End: "("}}},
		{Source: "s", Rules: []*Rule{{Name: "a", Begin: "x", End: "y", Rules: []*Rule{{Name: "b", Begin: "(", End: ""}}}}},
	}
	for i, c := range bad {
		if _, err := Extract(c, "anything"); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg := umdConfig()
	cfg.Rules[0].Rules = append(cfg.Rules[0].Rules, &Rule{
		Name: "Home", Begin: "<a>", End: "</a>", Mode: ModeLink, Optional: true,
		Attrs: []*AttrRule{{Name: "k", Begin: "q", End: "r"}},
	})
	text := MarshalConfig(cfg)
	parsed, err := ParseConfig(text)
	if err != nil {
		t.Fatalf("ParseConfig: %v\n%s", err, text)
	}
	// Extraction with the round-tripped config must produce the same output.
	d1, err := Extract(cfg, umdPage)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Extract(parsed, umdPage)
	if err != nil {
		t.Fatal(err)
	}
	if !xmldom.Equal(d1.Root, d2.Root) {
		t.Errorf("round-tripped config extracts differently:\n%s\nvs\n%s", d1.Encode(), d2.Encode())
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		`not xml`,
		`<wrong/>`,
		`<tess source="s"><rule name="a" begin="x" end="y" repeat="maybe"/></tess>`,
		`<tess source="s"><rule name="a" begin="x" end="y" mode="bogus"/></tess>`,
		`<tess source="s"><rule name="a" begin="(" end="y"/></tess>`,
	}
	for _, src := range cases {
		if _, err := ParseConfig(src); err == nil {
			t.Errorf("ParseConfig(%q): expected error", src)
		}
	}
}

func TestStripTags(t *testing.T) {
	cases := map[string]string{
		`<b>Operating</b> Systems`: "Operating Systems",
		`a&amp;b &lt;c&gt;`:        "a&b <c>",
		`line1<br>line2<br/>line3`: "line1 line2 line3",
		`  lots   of
		 space `: "lots of space",
		`XML und Datenbanken &uuml;ber alles`: "XML und Datenbanken über alles",
		``:                                    "",
	}
	for in, want := range cases {
		if got := StripTags(in); got != want {
			t.Errorf("StripTags(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFirstLink(t *testing.T) {
	if got := FirstLink(`<a href="http://x/y">t</a> <a href="http://z">u</a>`); got != "http://x/y" {
		t.Errorf("FirstLink = %q", got)
	}
	if got := FirstLink(`<a href='http://q'>t</a>`); got != "http://q" {
		t.Errorf("FirstLink single-quote = %q", got)
	}
	if got := FirstLink(`no links`); got != "" {
		t.Errorf("FirstLink = %q, want empty", got)
	}
}

func TestMarkupNodes(t *testing.T) {
	nodes := MarkupNodes(`pre <a href="http://x">mid</a> post`)
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(nodes))
	}
	a, ok := nodes[1].(*xmldom.Element)
	if !ok || a.AttrValue("href") != "http://x" || a.Text() != "mid" {
		t.Errorf("anchor node wrong: %v", nodes[1])
	}
}

// Property: extraction is deterministic — running the same config twice on
// the same page yields identical documents.
func TestQuickExtractDeterministic(t *testing.T) {
	cfg := umdConfig()
	f := func(seed int64) bool {
		d1, err1 := Extract(cfg, umdPage)
		d2, err2 := Extract(cfg, umdPage)
		if err1 != nil || err2 != nil {
			return false
		}
		return xmldom.Equal(d1.Root, d2.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: StripTags output never contains markup characters from tags.
func TestQuickStripTagsNoTags(t *testing.T) {
	f := func(s string) bool {
		out := StripTags("<b>" + s + "</b>")
		return !strings.Contains(out, "<b>") && !strings.Contains(out, "</b>")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestModeDeepExtraction(t *testing.T) {
	pages := map[string]string{
		"http://x/home": `<html><body><h1>Jane Doe</h1><em class="area">Databases</em></body></html>`,
	}
	fetch := func(url string) (string, error) {
		p, ok := pages[url]
		if !ok {
			return "", &FieldError{Rule: "fetch", Which: "begin", Around: url}
		}
		return p, nil
	}
	cfg := &Config{
		Source: "s",
		Rules: []*Rule{{
			Name: "Instructor", Begin: `<td>`, End: `</td>`, Mode: ModeDeep,
			Rules: []*Rule{
				{Name: "Name", Begin: `<h1>`, End: `</h1>`},
				{Name: "Area", Begin: `<em class="area">`, End: `</em>`},
			},
		}},
	}
	page := `<td><a href="http://x/home">Doe</a></td>`

	doc, err := ExtractPages(cfg, page, fetch)
	if err != nil {
		t.Fatal(err)
	}
	in := doc.Root.Child("Instructor")
	if in.AttrValue("href") != "http://x/home" {
		t.Errorf("href = %q", in.AttrValue("href"))
	}
	if in.ChildText("Name") != "Jane Doe" || in.ChildText("Area") != "Databases" {
		t.Errorf("deep fields: %s", in)
	}

	// Nil fetcher: the paper's fallback — the URL is the value.
	doc, err = Extract(cfg, page)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.ChildText("Instructor"); got != "http://x/home" {
		t.Errorf("fallback = %q", got)
	}

	// No link in the region: visible text is the value.
	doc, err = ExtractPages(cfg, `<td>Plain Name</td>`, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.ChildText("Instructor"); got != "Plain Name" {
		t.Errorf("no-link value = %q", got)
	}

	// Fetch failure surfaces as an error.
	if _, err := ExtractPages(cfg, `<td><a href="http://x/missing">q</a></td>`, fetch); err == nil {
		t.Error("expected fetch error")
	}
}

func TestModeDeepConfigRoundTrip(t *testing.T) {
	cfg := &Config{
		Source: "s",
		Rules: []*Rule{{
			Name: "I", Begin: `a`, End: `b`, Mode: ModeDeep,
			Rules: []*Rule{{Name: "N", Begin: `c`, End: `d`}},
		}},
	}
	parsed, err := ParseConfig(MarshalConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Rules[0].Mode != ModeDeep || len(parsed.Rules[0].Rules) != 1 {
		t.Errorf("round trip lost deep mode: %+v", parsed.Rules[0])
	}
}

func TestEmptyMarkersDoNotLoopForever(t *testing.T) {
	cfg := &Config{
		Source: "s",
		Rules:  []*Rule{{Name: "X", Begin: ``, End: ``, Repeat: true}},
	}
	doc, err := Extract(cfg, "anything at all")
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	// One (empty) match is emitted; the scan then stops instead of looping.
	if got := len(doc.Root.ChildrenNamed("X")); got != 1 {
		t.Errorf("X count = %d, want 1", got)
	}
}
