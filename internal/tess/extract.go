package tess

import (
	"fmt"
	"strings"

	"thalia/internal/xmldom"
)

// FieldError reports a required field whose Begin or End regular expression
// did not match; it carries enough context to fix the configuration.
type FieldError struct {
	Rule   string // rule name
	Which  string // "begin" or "end"
	Around string // a snippet of the region being scanned
}

// Error implements error.
func (e *FieldError) Error() string {
	return fmt.Sprintf("tess: field %q: %s marker not found near %q", e.Rule, e.Which, e.Around)
}

// Fetcher resolves a hyperlink to the linked page's HTML, enabling deep
// extraction (ModeDeep). The testbed serves cached snapshots, so fetchers
// there read from the source's linked-page store rather than the network.
type Fetcher func(url string) (string, error)

// Extract runs the configuration against an HTML page and returns the
// extracted XML document, whose root element is named after the source.
//
// Rules at the same level are applied sequentially: each rule starts
// scanning where the previous rule's match ended, the way TESS walks the
// columns of a table row in order. Required fields that cannot be located
// yield a *FieldError. Deep-extraction rules degrade to the paper's
// URL-returning behaviour because no fetcher is available; use
// ExtractPages to enable them.
func Extract(cfg *Config, page string) (*xmldom.Document, error) {
	return ExtractPages(cfg, page, nil)
}

// ExtractPages is Extract with a page fetcher for ModeDeep rules: the rule
// follows the region's first hyperlink and applies its nested rules to the
// fetched page — the deep extraction the paper left as future work.
func ExtractPages(cfg *Config, page string, fetch Fetcher) (*xmldom.Document, error) {
	if err := cfg.compile(); err != nil {
		return nil, err
	}
	ex := &extractor{fetch: fetch}
	root := xmldom.NewElement(cfg.Source)
	if _, err := ex.applyRules(cfg.Rules, page, root, nil); err != nil {
		return nil, err
	}
	return xmldom.NewDocument(root), nil
}

// extractor carries per-run state (the page fetcher) through rule
// application.
type extractor struct {
	fetch Fetcher
}

// ExtractString is Extract followed by indented serialization; it is what
// cmd/tess prints.
func ExtractString(cfg *Config, page string) (string, error) {
	doc, err := Extract(cfg, page)
	if err != nil {
		return "", err
	}
	return doc.Encode(), nil
}

// span marks the region (begin marker through end-marker start) one rule
// match covered; Mixed extraction uses spans to find the leftover text.
type span struct{ start, end int }

// applyRules applies each rule to region in order, threading the scan
// position, and appends emitted elements to parent. It returns the final
// scan position. When spans is non-nil, each match's covered span is
// recorded.
func (ex *extractor) applyRules(rules []*Rule, region string, parent *xmldom.Element, spans *[]span) (int, error) {
	pos := 0
	for _, r := range rules {
		next, err := ex.applyRule(r, region, pos, parent, spans)
		if err != nil {
			return pos, err
		}
		if next > pos {
			pos = next
		}
	}
	return pos, nil
}

// applyRule scans region starting at pos for matches of r, appending emitted
// elements to parent. It returns the position just past the last match, or
// pos unchanged if an optional rule found nothing.
func (ex *extractor) applyRule(r *Rule, region string, pos int, parent *xmldom.Element, spans *[]span) (int, error) {
	found := false
	for {
		loc := r.begin.FindStringIndex(region[pos:])
		if loc == nil {
			break
		}
		beginStart, beginEnd := pos+loc[0], pos+loc[1]
		endLoc := r.end.FindStringIndex(region[beginEnd:])
		if endLoc == nil {
			if found || r.Optional {
				break
			}
			return pos, &FieldError{Rule: r.Name, Which: "end", Around: snippet(region[beginEnd:])}
		}
		body := region[beginEnd : beginEnd+endLoc[0]]
		// The full region (including the begin marker) is what attribute
		// rules scan: attributes often live inside the opening tag that
		// the begin expression matched.
		full := region[beginStart : beginEnd+endLoc[0]]
		el, err := ex.emit(r, body, full)
		if err != nil {
			return pos, err
		}
		if el != nil {
			parent.Append(el)
		}
		if spans != nil {
			*spans = append(*spans, span{start: beginStart, end: beginEnd + endLoc[1]})
		}
		found = true
		next := beginEnd + endLoc[1]
		if next <= pos {
			// Both markers matched empty strings: the scan is not
			// advancing, so a repeating rule would loop forever.
			pos = next
			break
		}
		pos = next
		if !r.Repeat {
			break
		}
	}
	if !found && !r.Optional {
		return pos, &FieldError{Rule: r.Name, Which: "begin", Around: snippet(region[pos:])}
	}
	return pos, nil
}

// emit converts one matched region into an element (or nil to omit it).
func (ex *extractor) emit(r *Rule, body, full string) (*xmldom.Element, error) {
	el := xmldom.NewElement(r.Name)
	for _, a := range r.Attrs {
		loc := a.begin.FindStringIndex(full)
		if loc == nil {
			continue
		}
		after := full[loc[1]:]
		endLoc := a.end.FindStringIndex(after)
		if endLoc == nil {
			continue
		}
		el.SetAttr(a.Name, StripTags(after[:endLoc[0]]))
	}
	if r.Mode == ModeDeep {
		return ex.emitDeep(r, el, body)
	}
	if len(r.Rules) > 0 {
		var spans []span
		if _, err := ex.applyRules(r.Rules, body, el, &spans); err != nil {
			return nil, err
		}
		if r.Mixed {
			// Keep the text outside the nested matches as leading character
			// data (CMU's title column: free text plus an attached comment).
			var leftover strings.Builder
			prev := 0
			for _, sp := range spans {
				if sp.start > prev {
					leftover.WriteString(body[prev:sp.start])
					leftover.WriteByte(' ')
				}
				if sp.end > prev {
					prev = sp.end
				}
			}
			if prev < len(body) {
				leftover.WriteString(body[prev:])
			}
			if text := StripTags(leftover.String()); text != "" {
				el.Prepend(xmldom.NewText(text))
			}
		}
		return el, nil
	}
	switch r.Mode {
	case ModeText:
		el.AppendText(StripTags(body))
	case ModeRaw:
		el.AppendText(strings.TrimSpace(decodeEntities(body)))
	case ModeLink:
		if url := FirstLink(body); url != "" {
			el.AppendText(url)
		} else {
			// No link present: fall back to the visible text, as TESS does
			// for sources where only some values are hyperlinked.
			el.AppendText(StripTags(body))
		}
	case ModeMarkup:
		el.Append(MarkupNodes(body)...)
	}
	return el, nil
}

// emitDeep implements ModeDeep: follow the region's first hyperlink and
// extract from the linked page with the rule's nested rules. Without a
// fetcher (or without a link) it reproduces the paper's fallback: the URL
// (or the visible text) becomes the value.
func (ex *extractor) emitDeep(r *Rule, el *xmldom.Element, body string) (*xmldom.Element, error) {
	url := FirstLink(body)
	if url == "" {
		el.AppendText(StripTags(body))
		return el, nil
	}
	if ex.fetch == nil || len(r.Rules) == 0 {
		el.AppendText(url)
		return el, nil
	}
	linked, err := ex.fetch(url)
	if err != nil {
		return nil, fmt.Errorf("tess: deep extraction of %q: %w", url, err)
	}
	el.SetAttr("href", url)
	if _, err := ex.applyRules(r.Rules, linked, el, nil); err != nil {
		return nil, err
	}
	return el, nil
}

// snippet trims a region to a short prefix for error messages.
func snippet(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 60 {
		s = s[:60] + "…"
	}
	return s
}
