// Package explain records a hierarchical, low-overhead trace of a single
// benchmark query evaluation: operator-level spans from the XQuery
// evaluator (FLWOR clauses, path steps, function calls, constructors) and
// provenance events from the integration systems (which mapping fired,
// which warehouse or SQL view answered, which transform was charged). The
// assembled Trace renders as an indented text plan, JSON, and a one-line
// digest — the diagnostic companion to the scorecard's pass/fail verdict.
//
// Instrumentation is injected through a context-carried *Recorder. The
// zero-recorder path is the contract that keeps the benchmark honest: every
// Recorder and Span method is safe on a nil receiver and returns
// immediately, and instrumentation sites guard their span-name construction
// behind a nil check, so with no recorder attached the evaluation makes no
// extra allocations and scorecards stay byte-identical (both are
// test-enforced in internal/benchmark).
//
// A Recorder is owned by the goroutine evaluating the query, but the
// benchmark engine may abandon a timed-out evaluation and read the trace
// while the system's goroutine is still running; every mutation therefore
// takes the recorder's mutex, and Trace seals the recorder so late writes
// from an abandoned goroutine are dropped instead of racing.
package explain

import (
	"context"
	"sync"
	"time"
)

// Kind classifies a span or event. The thalia-vet explain-kinds check
// enforces that every kind declared here is emitted by at least one
// instrumentation site outside this package — no dead vocabulary.
type Kind string

// The span/event vocabulary. Spans have duration (operators, system calls);
// events are instantaneous provenance marks attached to the open span.
const (
	// KindEval is the root span: one query evaluated against one system.
	KindEval Kind = "eval"
	// KindAnswer is a system's Answer call for one request.
	KindAnswer Kind = "answer"
	// KindFLWOR is one FLWOR expression in the XQuery evaluator.
	KindFLWOR Kind = "flwor"
	// KindClause is one for/let/where/order-by/return clause of a FLWOR.
	KindClause Kind = "clause"
	// KindPath is one path expression; KindStep is one of its steps.
	KindPath Kind = "path"
	KindStep Kind = "step"
	// KindCall is a function call (builtin or external).
	KindCall Kind = "call"
	// KindConstruct is a direct element constructor.
	KindConstruct Kind = "construct"
	// KindDoc marks a source document resolved by doc() or a mediator.
	KindDoc Kind = "doc"
	// KindMapping marks a schema mapping (view, wrapper spec, mapping
	// table) applied to a source.
	KindMapping Kind = "mapping"
	// KindTransform marks a charged value transform / external function.
	KindTransform Kind = "transform"
	// KindSQL is a federated SQL statement run by the Cohera model.
	KindSQL Kind = "sql"
	// KindWarehouse marks a materialized-warehouse read by the IWIZ model.
	KindWarehouse Kind = "warehouse"
	// KindDecline marks a system declining the query (ErrUnsupported).
	KindDecline Kind = "decline"
	// KindMerge marks per-source result sets merged into the final answer.
	KindMerge Kind = "merge"
	// KindAttempt is one resilience-policy attempt of a benchmark cell:
	// the retry loop opens one attempt span per Answer call.
	KindAttempt Kind = "attempt"
	// KindFault marks a deterministic fault injected by a faultline plan
	// (added latency, transient/permanent error, truncation, slow drip).
	KindFault Kind = "fault"
	// KindPlan is one compiled-plan evaluation; its attrs report how many
	// times the plan has been reused, making cache behavior visible.
	KindPlan Kind = "plan"
	// KindIndex marks a document name-index consulted by compiled path-step
	// execution instead of a full tree walk.
	KindIndex Kind = "index"
)

// Attr is one key=value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Recorder accumulates the spans and events of one query evaluation. The
// zero value is not useful; construct with NewRecorder. A nil *Recorder is
// the disabled state: every method no-ops without allocating.
type Recorder struct {
	mu      sync.Mutex
	root    *Span
	cur     *Span
	sealed  bool
	traceID string
	spans   int
	events  int
}

// NewRecorder returns an empty recorder ready to record one evaluation.
func NewRecorder() *Recorder { return &Recorder{} }

// Span is one timed node of the trace. Spans form a stack: Begin opens a
// child of the currently open span, End closes it. A nil *Span (from a nil
// or sealed recorder) ignores every method.
type Span struct {
	rec      *Recorder
	kind     Kind
	name     string
	start    time.Time
	end      time.Time
	ended    bool
	event    bool
	attrs    []Attr
	rowsIn   int
	rowsOut  int
	hasRows  bool
	parent   *Span
	children []*Span
}

// Begin opens a new span as a child of the currently open span (or as the
// root). Safe on a nil receiver (returns nil) and after sealing.
func (r *Recorder) Begin(kind Kind, name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sealed {
		return nil
	}
	s := &Span{rec: r, kind: kind, name: name, start: time.Now(), attrs: attrs, parent: r.cur}
	if r.cur != nil {
		r.cur.children = append(r.cur.children, s)
	} else if r.root == nil {
		r.root = s
	} else {
		// A second top-level span: attach it under the root so the trace
		// stays a single tree.
		s.parent = r.root
		r.root.children = append(r.root.children, s)
	}
	r.cur = s
	r.spans++
	return s
}

// Event records an instantaneous provenance mark under the open span. Safe
// on a nil receiver and after sealing.
func (r *Recorder) Event(kind Kind, name string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sealed {
		return
	}
	now := time.Now()
	s := &Span{rec: r, kind: kind, name: name, start: now, end: now, ended: true, event: true, attrs: attrs, parent: r.cur}
	if r.cur != nil {
		r.cur.children = append(r.cur.children, s)
	} else if r.root == nil {
		r.root = s
	} else {
		s.parent = r.root
		r.root.children = append(r.root.children, s)
	}
	r.events++
}

// SetTraceID links the trace to an external identifier — the website stamps
// the telemetry tracer's ID here so /debug/explain traces can be correlated
// with /debug/traces. Safe on a nil receiver.
func (r *Recorder) SetTraceID(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.traceID = id
	r.mu.Unlock()
}

// Seal stops the recorder: subsequent Begin/Event/End calls are dropped.
// The benchmark engine seals before reading a trace whose evaluation
// goroutine may have been abandoned on timeout. Safe on a nil receiver.
func (r *Recorder) Seal() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sealNowLocked(time.Now())
	r.mu.Unlock()
}

// sealNowLocked marks the recorder sealed and closes any still-open spans
// at the seal time, so an abandoned evaluation yields a finite trace.
func (r *Recorder) sealNowLocked(now time.Time) {
	if r.sealed {
		return
	}
	r.sealed = true
	for s := r.cur; s != nil; s = s.parent {
		if !s.ended {
			s.end = now
			s.ended = true
		}
	}
	r.cur = nil
}

// End closes the span. Safe on a nil receiver; ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	if s.rec.sealed || s.ended {
		return
	}
	now := time.Now()
	s.end = now
	s.ended = true
	// If s is on the open stack, pop back to its parent, closing any
	// descendants an error path left open.
	onStack := false
	for cur := s.rec.cur; cur != nil; cur = cur.parent {
		if cur == s {
			onStack = true
			break
		}
	}
	if onStack {
		for cur := s.rec.cur; cur != s; cur = cur.parent {
			if !cur.ended {
				cur.end = now
				cur.ended = true
			}
		}
		s.rec.cur = s.parent
	}
}

// SetRows annotates the span with its row cardinality: in is the number of
// items/tuples entering the operator, out the number leaving. Negative
// values mean "unknown" and are omitted from renderings. Safe on nil.
func (s *Span) SetRows(in, out int) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	s.rowsIn, s.rowsOut, s.hasRows = in, out, true
	s.rec.mu.Unlock()
}

// With appends a key=value attribute and returns the span for chaining.
// Safe on a nil receiver.
func (s *Span) With(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.rec.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.rec.mu.Unlock()
	return s
}

// Trace is the assembled, immutable form of a recording.
type Trace struct {
	// TraceID is the linked telemetry trace ID, when set.
	TraceID string `json:"trace_id,omitempty"`
	// Spans and Events count the recorded nodes of each flavor.
	Spans  int   `json:"spans"`
	Events int   `json:"events"`
	Root   *Node `json:"root,omitempty"`
}

// Node is one span or event of an assembled trace.
type Node struct {
	Kind Kind   `json:"kind"`
	Name string `json:"name"`
	// DurationNS is the span's wall-clock duration; 0 for events.
	DurationNS int64 `json:"duration_ns"`
	// Event marks an instantaneous provenance node.
	Event bool `json:"event,omitempty"`
	// RowsIn/RowsOut carry the operator cardinality when HasRows is set;
	// negative values mean that side was not measured.
	RowsIn   int     `json:"rows_in,omitempty"`
	RowsOut  int     `json:"rows_out,omitempty"`
	HasRows  bool    `json:"has_rows,omitempty"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Node `json:"children,omitempty"`
}

// Trace seals the recorder and assembles the recorded tree. Safe on a nil
// receiver (returns nil). The returned trace is a deep copy: it stays valid
// and race-free even if an abandoned goroutine still holds span pointers.
func (r *Recorder) Trace() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealNowLocked(time.Now())
	t := &Trace{TraceID: r.traceID, Spans: r.spans, Events: r.events}
	if r.root != nil {
		t.Root = snapshot(r.root)
	}
	return t
}

// snapshot deep-copies a span subtree into exported nodes. Caller holds the
// recorder's mutex.
func snapshot(s *Span) *Node {
	n := &Node{
		Kind:    s.kind,
		Name:    s.name,
		Event:   s.event,
		RowsIn:  s.rowsIn,
		RowsOut: s.rowsOut,
		HasRows: s.hasRows,
	}
	if s.ended && !s.event {
		n.DurationNS = s.end.Sub(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		n.Attrs = append([]Attr(nil), s.attrs...)
	}
	for _, c := range s.children {
		n.Children = append(n.Children, snapshot(c))
	}
	return n
}

// Empty reports whether the trace recorded nothing.
func (t *Trace) Empty() bool { return t == nil || t.Root == nil }

// LeafNanos sums the durations of the trace's leaf spans — the operators
// that did the actual work. A span whose children are all events counts as
// a leaf (a declined query's answer span carries only a decline event but
// represents the whole call); events themselves contribute nothing. The
// benchmark's acceptance test checks this sum against the cell's measured
// evaluation latency.
func (t *Trace) LeafNanos() int64 {
	if t == nil || t.Root == nil {
		return 0
	}
	return leafNanos(t.Root)
}

func leafNanos(n *Node) int64 {
	if n.Event {
		return 0
	}
	childSpans := false
	total := int64(0)
	for _, c := range n.Children {
		if !c.Event {
			childSpans = true
		}
		total += leafNanos(c)
	}
	if !childSpans {
		return n.DurationNS
	}
	return total
}

// ctxKey is the private context key carrying a *Recorder.
type ctxKey struct{}

// NewContext returns ctx carrying rec. A nil rec returns ctx unchanged.
func NewContext(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, rec)
}

// FromContext extracts the recorder carried by ctx, or nil. A nil return is
// directly usable: every Recorder method no-ops on nil.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(ctxKey{}).(*Recorder)
	return rec
}
