package explain

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	rec := NewRecorder()
	root := rec.Begin(KindEval, "q01 Test", A("query", "q01"))
	ans := rec.Begin(KindAnswer, "Test.Answer")
	rec.Event(KindDoc, "gatech.xml")
	step := rec.Begin(KindStep, "/Course")
	step.SetRows(10, 3)
	step.End()
	ans.End()
	root.End()

	tr := rec.Trace()
	if tr.Empty() {
		t.Fatal("trace should not be empty")
	}
	if tr.Spans != 3 || tr.Events != 1 {
		t.Errorf("spans=%d events=%d, want 3/1", tr.Spans, tr.Events)
	}
	if tr.Root.Kind != KindEval || len(tr.Root.Children) != 1 {
		t.Fatalf("root %+v: want eval with one child", tr.Root)
	}
	a := tr.Root.Children[0]
	if a.Kind != KindAnswer || len(a.Children) != 2 {
		t.Fatalf("answer node %+v: want doc event + step child", a)
	}
	if !a.Children[0].Event || a.Children[0].Kind != KindDoc {
		t.Errorf("first child should be the doc event, got %+v", a.Children[0])
	}
	st := a.Children[1]
	if !st.HasRows || st.RowsIn != 10 || st.RowsOut != 3 {
		t.Errorf("step rows = %+v, want in=10 out=3", st)
	}
	if len(tr.Root.Attrs) != 1 || tr.Root.Attrs[0].Key != "query" {
		t.Errorf("root attrs = %+v", tr.Root.Attrs)
	}
}

func TestEndOutOfOrderPopsStack(t *testing.T) {
	rec := NewRecorder()
	root := rec.Begin(KindEval, "root")
	rec.Begin(KindPath, "inner") // never ended: an error path bailed out
	root.End()
	tr := rec.Trace()
	if len(tr.Root.Children) != 1 {
		t.Fatalf("want inner child recorded, got %+v", tr.Root)
	}
	if tr.Root.Children[0].DurationNS < 0 {
		t.Errorf("inner span should have been closed at root End")
	}
	// After popping to the root's parent, a new span is re-rooted safely.
	if s := rec.Begin(KindPath, "late"); s != nil {
		t.Errorf("sealed recorder should refuse new spans")
	}
}

func TestSecondTopLevelSpanAttachesUnderRoot(t *testing.T) {
	rec := NewRecorder()
	first := rec.Begin(KindAnswer, "first")
	first.End()
	second := rec.Begin(KindAnswer, "second")
	second.End()
	tr := rec.Trace()
	if tr.Root.Name != "first" || len(tr.Root.Children) != 1 || tr.Root.Children[0].Name != "second" {
		t.Errorf("second top-level span should nest under the first: %+v", tr.Root)
	}
}

func TestSealDropsLateWrites(t *testing.T) {
	rec := NewRecorder()
	root := rec.Begin(KindEval, "root")
	rec.Seal()
	rec.Event(KindDoc, "late.xml")
	if s := rec.Begin(KindSQL, "late"); s != nil {
		t.Error("Begin after Seal should return nil")
	}
	root.End() // dropped, root was closed at seal time
	tr := rec.Trace()
	if tr.Events != 0 || tr.Spans != 1 {
		t.Errorf("late writes leaked into the trace: %+v", tr)
	}
}

// A timed-out evaluation is abandoned: its goroutine keeps writing while
// the engine seals and reads the trace. The recorder must tolerate that
// under the race detector.
func TestConcurrentSealAndWrite(t *testing.T) {
	rec := NewRecorder()
	rec.Begin(KindEval, "root")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			s := rec.Begin(KindStep, "step")
			s.SetRows(1, 1)
			rec.Event(KindDoc, "d.xml")
			s.End()
		}
	}()
	time.Sleep(time.Millisecond)
	tr := rec.Trace()
	wg.Wait()
	if tr.Empty() {
		t.Fatal("trace lost its root")
	}
}

func TestLeafNanos(t *testing.T) {
	rec := NewRecorder()
	root := rec.Begin(KindEval, "root")
	a := rec.Begin(KindPath, "a")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := rec.Begin(KindAnswer, "b") // only an event below: counts as a leaf
	rec.Event(KindDecline, "unsupported")
	time.Sleep(2 * time.Millisecond)
	b.End()
	root.End()
	tr := rec.Trace()
	sum := tr.LeafNanos()
	if sum <= 0 {
		t.Fatal("leaf sum should be positive")
	}
	if root := tr.Root.DurationNS; sum > root {
		t.Errorf("leaf sum %d exceeds root duration %d", sum, root)
	}
	// Both leaves slept ~2ms each; the sum must reflect both.
	if sum < (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("leaf sum %d too small: event-only span b was not counted as a leaf", sum)
	}
}

func TestRenderings(t *testing.T) {
	rec := NewRecorder()
	rec.SetTraceID("0000002a")
	root := rec.Begin(KindEval, "q03 Cohera", A("hetero", "Union Data Types"))
	sql := rec.Begin(KindSQL, "SELECT num FROM umd")
	sql.SetRows(-1, 4)
	sql.End()
	rec.Event(KindMapping, "view g_umd_sections")
	root.End()
	tr := rec.Trace()

	text := tr.Text()
	for _, want := range []string{"trace 0000002a", "eval: q03 Cohera", "hetero=Union Data Types", "[out=4]", "* mapping: view g_umd_sections"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	outline := tr.Outline()
	if strings.Contains(outline, "(0s)") || strings.Contains(outline, "µs)") || strings.Contains(outline, "ms)") {
		t.Errorf("Outline() must not contain durations:\n%s", outline)
	}
	dig := tr.Digest()
	if !strings.Contains(dig, "q03 Cohera") || !strings.Contains(dig, "spans=2") || !strings.Contains(dig, "events=1") {
		t.Errorf("Digest() = %q", dig)
	}
	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.TraceID != "0000002a" || back.Root.Kind != KindEval {
		t.Errorf("JSON round-trip lost data: %+v", back)
	}
}

func TestEmptyTraceRenderings(t *testing.T) {
	tr := NewRecorder().Trace()
	if !tr.Empty() {
		t.Fatal("fresh recorder should produce an empty trace")
	}
	if tr.LeafNanos() != 0 {
		t.Error("empty trace LeafNanos should be 0")
	}
	if got := tr.Text(); got != "(empty trace)\n" {
		t.Errorf("Text() = %q", got)
	}
	var nilTrace *Trace
	if !nilTrace.Empty() || nilTrace.LeafNanos() != 0 || nilTrace.Digest() == "" {
		t.Error("nil trace methods must be safe")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("background context should carry no recorder")
	}
	if FromContext(nil) != nil {
		t.Error("nil context should carry no recorder")
	}
	rec := NewRecorder()
	ctx := NewContext(context.Background(), rec)
	if FromContext(ctx) != rec {
		t.Error("recorder lost in context round-trip")
	}
	if got := NewContext(context.Background(), nil); FromContext(got) != nil {
		t.Error("NewContext(nil) must not store a recorder")
	}
}

// The zero-overhead contract: with no recorder attached, every explain
// primitive is a nil-receiver no-op that performs zero allocations. This is
// what lets the evaluator and all four systems leave their instrumentation
// permanently enabled.
func TestNilRecorderZeroAllocations(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		s := rec.Begin(KindEval, "root")
		s.SetRows(1, 1)
		s.With("k", "v")
		rec.Event(KindDoc, "d.xml")
		rec.SetTraceID("x")
		s.End()
		rec.Seal()
		_ = rec.Trace()
		_ = FromContext(context.Background())
	})
	if allocs != 0 {
		t.Errorf("nil recorder path allocated %.1f times per run, want 0", allocs)
	}
}

// Benchmark-asserted form of the same contract, for `go test -bench`.
func BenchmarkNilRecorderNoOp(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := rec.Begin(KindStep, "/Course")
		s.SetRows(1, 1)
		s.End()
	}
}
