package explain

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Text renders the trace as an indented query plan with durations, row
// counts and attributes — the human-facing `thalia explain` output.
func (t *Trace) Text() string {
	if t.Empty() {
		return "(empty trace)\n"
	}
	var b strings.Builder
	if t.TraceID != "" {
		fmt.Fprintf(&b, "trace %s\n", t.TraceID)
	}
	writeNode(&b, t.Root, 0, true)
	return b.String()
}

// Outline renders the trace's structure only: kinds, names, row counts and
// attributes, but no durations. Two evaluations of the same query produce
// the same outline, which is what the golden explain-trace tests assert.
func (t *Trace) Outline() string {
	if t.Empty() {
		return "(empty trace)\n"
	}
	var b strings.Builder
	writeNode(&b, t.Root, 0, false)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, depth int, durations bool) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if n.Event {
		fmt.Fprintf(b, "* %s: %s", n.Kind, n.Name)
	} else {
		fmt.Fprintf(b, "%s: %s", n.Kind, n.Name)
	}
	if n.HasRows {
		if n.RowsIn >= 0 {
			fmt.Fprintf(b, "  [in=%d out=%d]", n.RowsIn, n.RowsOut)
		} else {
			fmt.Fprintf(b, "  [out=%d]", n.RowsOut)
		}
	}
	for _, a := range n.Attrs {
		fmt.Fprintf(b, "  %s=%s", a.Key, a.Value)
	}
	if durations && !n.Event {
		fmt.Fprintf(b, "  (%s)", time.Duration(n.DurationNS).Round(time.Microsecond))
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		writeNode(b, c, depth+1, durations)
	}
}

// JSON renders the trace as indented JSON.
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Digest renders a compact one-line summary: root name, node counts, and
// total duration — scannable in logs and CI output.
func (t *Trace) Digest() string {
	if t.Empty() {
		return "explain: (empty trace)"
	}
	d := time.Duration(t.Root.DurationNS).Round(time.Microsecond)
	return fmt.Sprintf("explain: %s [%s] spans=%d events=%d dur=%s",
		t.Root.Name, t.Root.Kind, t.Spans, t.Events, d)
}
