package benchmark

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"thalia/internal/integration"
	"thalia/internal/telemetry"
)

// transientErr is a source-declared retryable failure.
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Transient() bool { return true }

// TestBackoffScheduleDeterministic pins the backoff/jitter schedule for a
// fixed seed: exponential doubling from BaseBackoff capped at MaxBackoff,
// each delay jittered into [50%, 100%) of nominal, and the exact sequence
// reproducible byte for byte (values pinned from the splitmix-style hash).
func TestBackoffScheduleDeterministic(t *testing.T) {
	p := DefaultResilience(1)
	want := []time.Duration{827197, 1709009, 2211084, 4416793, 6811909}
	nominal := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond, // capped at MaxBackoff
	}
	for i, w := range want {
		n := i + 1
		got := p.Backoff("Cohera", 3, n)
		if got != w {
			t.Errorf("Backoff(Cohera, q3, attempt %d) = %v, want %v", n, got, w)
		}
		if got < nominal[i]/2 || got >= nominal[i] {
			t.Errorf("attempt %d: %v outside jitter window [%v, %v)", n, got, nominal[i]/2, nominal[i])
		}
		if again := p.Backoff("Cohera", 3, n); again != got {
			t.Errorf("attempt %d: backoff changed across calls", n)
		}
	}
	// Different coordinates and different seeds give different jitter.
	if got := p.Backoff("IWIZ", 3, 1); got != 675581 {
		t.Errorf("Backoff(IWIZ, q3, 1) = %v, want 675.581µs", got)
	}
	if got := p.Backoff("Cohera", 7, 1); got != 744199 {
		t.Errorf("Backoff(Cohera, q7, 1) = %v, want 744.199µs", got)
	}
	if got := DefaultResilience(2).Backoff("Cohera", 3, 1); got != 641621 {
		t.Errorf("seed 2 Backoff(Cohera, q3, 1) = %v, want 641.621µs", got)
	}
	// No base backoff → no delay.
	if got := (&Resilience{MaxAttempts: 3}).Backoff("Cohera", 1, 1); got != 0 {
		t.Errorf("zero-base backoff = %v, want 0", got)
	}
}

// resilientRunner builds a single-query runner with a fast test policy.
func resilientRunner(p *Resilience) *Runner {
	return &Runner{Queries: Queries()[:1], Concurrency: 1, Resilience: p}
}

// answerQ1 returns query 1's expected rows as a correct answer.
func answerQ1() (*integration.Answer, error) {
	q, err := QueryByID(1)
	if err != nil {
		return nil, err
	}
	rows, err := q.Expected()
	if err != nil {
		return nil, err
	}
	return &integration.Answer{Rows: rows}, nil
}

func TestRetryTransientThenSucceed(t *testing.T) {
	reg := telemetry.NewRegistry()
	sys := &fakeSystem{name: "flaky", fn: func(req integration.Request) (*integration.Answer, error) {
		if integration.AttemptFromContext(req.Context()) == 1 {
			return nil, &transientErr{"source hiccup"}
		}
		return answerQ1()
	}}
	r := resilientRunner(&Resilience{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond})
	r.Telemetry = reg
	card, err := r.Evaluate(sys)
	if err != nil {
		t.Fatal(err)
	}
	res := card.Results[0]
	if !res.Correct || res.Degraded {
		t.Fatalf("flaky cell = correct %v degraded %v, want recovered", res.Correct, res.Degraded)
	}
	if len(res.Attempts) != 2 {
		t.Fatalf("attempt history %v, want fail-then-ok", res.Attempts)
	}
	a1, a2 := res.Attempts[0], res.Attempts[1]
	if a1.Err == "" || !a1.Transient || a1.Backoff <= 0 {
		t.Errorf("attempt 1 = %+v, want transient failure with scheduled backoff", a1)
	}
	if a2.Err != "" || a2.N != 2 {
		t.Errorf("attempt 2 = %+v, want success", a2)
	}
	retries := int64(0)
	for _, c := range reg.Snapshot().Counters {
		if c.Name == MetricRetries {
			retries += c.Value
		}
	}
	if retries != 1 {
		t.Errorf("engine_retries_total = %d, want 1", retries)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	calls := 0
	sys := &fakeSystem{name: "dead", fn: func(req integration.Request) (*integration.Answer, error) {
		calls++
		return nil, errors.New("disk on fire")
	}}
	r := resilientRunner(&Resilience{MaxAttempts: 3})
	card, err := r.Evaluate(sys)
	if err != nil {
		t.Fatal(err)
	}
	res := card.Results[0]
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !res.Degraded || len(res.Attempts) != 1 || res.Attempts[0].Transient {
		t.Fatalf("res = %+v, want one non-transient degraded attempt", res)
	}
	if res.Err == "" {
		t.Fatal("degraded cell lost its error")
	}
}

func TestDeclineNotRetriedNotDegraded(t *testing.T) {
	calls := 0
	sys := &fakeSystem{name: "narrow", fn: func(req integration.Request) (*integration.Answer, error) {
		calls++
		return nil, integration.ErrUnsupported
	}}
	r := resilientRunner(DefaultResilience(1))
	card, err := r.Evaluate(sys)
	if err != nil {
		t.Fatal(err)
	}
	res := card.Results[0]
	if calls != 1 {
		t.Fatalf("decline retried: %d calls", calls)
	}
	if res.Degraded || res.Supported {
		t.Fatalf("res = %+v, want a plain decline", res)
	}
	if len(res.Attempts) != 1 {
		t.Fatalf("attempts = %v, want exactly one", res.Attempts)
	}
}

// Exhausting retries degrades the cell but never aborts the run: the other
// cells still score.
func TestExhaustedRetriesDegradeCellOnly(t *testing.T) {
	sys := &fakeSystem{name: "mixed", fn: func(req integration.Request) (*integration.Answer, error) {
		if req.QueryID == 1 {
			return nil, &transientErr{"always down"}
		}
		q, err := QueryByID(req.QueryID)
		if err != nil {
			return nil, err
		}
		rows, err := q.Expected()
		if err != nil {
			return nil, err
		}
		return &integration.Answer{Rows: rows}, nil
	}}
	reg := telemetry.NewRegistry()
	r := &Runner{Queries: Queries(), Concurrency: 2, Telemetry: reg,
		Resilience: &Resilience{MaxAttempts: 3, BaseBackoff: 50 * time.Microsecond}}
	card, err := r.Evaluate(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(card.Results) != 12 {
		t.Fatalf("run lost cells: %d results", len(card.Results))
	}
	res := card.Results[0]
	if !res.Degraded || len(res.Attempts) != 3 {
		t.Fatalf("q1 = degraded %v attempts %d, want degraded after 3", res.Degraded, len(res.Attempts))
	}
	for _, other := range card.Results[1:] {
		if other.Degraded || !other.Correct {
			t.Fatalf("q%d perturbed by q1's degradation: %+v", other.QueryID, other)
		}
		if len(other.Attempts) != 1 {
			t.Fatalf("q%d attempts = %v, want one clean attempt", other.QueryID, other.Attempts)
		}
	}
	degraded := int64(0)
	for _, c := range reg.Snapshot().Counters {
		if c.Name == MetricDegraded {
			degraded += c.Value
		}
	}
	if degraded != 1 {
		t.Errorf("engine_degraded_total = %d, want 1", degraded)
	}
}

// Per-attempt deadlines bound each try under QueryTimeout and classify the
// expiry as retryable.
func TestAttemptTimeout(t *testing.T) {
	sys := &fakeSystem{name: "slow", fn: func(req integration.Request) (*integration.Answer, error) {
		time.Sleep(200 * time.Millisecond)
		return answerQ1()
	}}
	r := resilientRunner(&Resilience{MaxAttempts: 2, AttemptTimeout: 10 * time.Millisecond})
	r.QueryTimeout = time.Minute // the attempt deadline must tighten this
	start := time.Now()
	card, err := r.Evaluate(sys)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("attempt timeout did not bound the evaluation")
	}
	res := card.Results[0]
	if !res.Degraded || len(res.Attempts) != 2 {
		t.Fatalf("res = %+v, want 2 timed-out attempts then degradation", res)
	}
	for _, a := range res.Attempts {
		if !strings.Contains(a.Err, ErrQueryTimeout.Error()) || !a.Transient {
			t.Fatalf("attempt %+v, want retryable timeout", a)
		}
	}
}

// The per-system breaker opens after the threshold of consecutive failures
// and sheds later attempts; shed attempts are recorded and counted.
func TestBreakerShedsAfterConsecutiveFailures(t *testing.T) {
	calls := 0
	sys := &fakeSystem{name: "downhard", fn: func(req integration.Request) (*integration.Answer, error) {
		calls++
		return nil, &transientErr{"down hard"}
	}}
	reg := telemetry.NewRegistry()
	r := &Runner{Queries: Queries(), Concurrency: 4, Telemetry: reg,
		Resilience: &Resilience{MaxAttempts: 2, BreakerThreshold: 3, BreakerCooldown: 50}}
	card, err := r.Evaluate(sys)
	if err != nil {
		t.Fatal(err)
	}
	// Attempts: q1 fail, fail (streak 2); q2 fail (streak 3 → open). Every
	// later attempt is shed while the 50-call cooldown lasts.
	if calls != 3 {
		t.Fatalf("system called %d times, want 3 before the breaker opened", calls)
	}
	shedCells := 0
	for _, res := range card.Results {
		if !res.Degraded {
			t.Fatalf("q%d not degraded under a hard-down system", res.QueryID)
		}
		for _, a := range res.Attempts {
			if a.Shed {
				shedCells++
				if !strings.Contains(a.Err, ErrBreakerOpen.Error()) {
					t.Fatalf("shed attempt error = %q", a.Err)
				}
			}
		}
	}
	if shedCells == 0 {
		t.Fatal("no shed attempts recorded")
	}
	snap := reg.Snapshot()
	shed := int64(0)
	var stateSeen, opensSeen bool
	for _, c := range snap.Counters {
		if c.Name == MetricShed {
			shed += c.Value
		}
	}
	for _, g := range snap.Gauges {
		switch g.Name {
		case MetricBreakerState:
			stateSeen = true
		case MetricBreakerOpens:
			opensSeen = true
			if g.Value < 1 {
				t.Errorf("engine_breaker_opens = %d, want ≥ 1", g.Value)
			}
		}
	}
	if shed == 0 || !stateSeen || !opensSeen {
		t.Fatalf("breaker telemetry missing: shed %d, state gauge %v, opens gauge %v", shed, stateSeen, opensSeen)
	}
}

// After the cooldown, the half-open probe reaches the system again and a
// success closes the breaker for the remaining cells.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	calls := 0
	sys := &fakeSystem{name: "recovering", fn: func(req integration.Request) (*integration.Answer, error) {
		calls++
		if calls <= 2 {
			return nil, &transientErr{"cold start"}
		}
		q, err := QueryByID(req.QueryID)
		if err != nil {
			return nil, err
		}
		rows, err := q.Expected()
		if err != nil {
			return nil, err
		}
		return &integration.Answer{Rows: rows}, nil
	}}
	r := &Runner{Queries: Queries(), Concurrency: 1,
		Resilience: &Resilience{MaxAttempts: 2, BreakerThreshold: 2, BreakerCooldown: 1}}
	card, err := r.Evaluate(sys)
	if err != nil {
		t.Fatal(err)
	}
	// q1: two failures open the breaker; its cell degrades. q2: first
	// attempt shed (cooldown 1), second attempt is the probe — the system
	// has recovered, the probe closes the breaker, q2 scores. All later
	// queries run clean.
	if card.Results[0].Degraded != true {
		t.Fatal("q1 should have degraded while the system was down")
	}
	correct := card.CorrectCount()
	if correct < 10 {
		t.Fatalf("only %d queries correct after recovery, breaker never closed", correct)
	}
	for _, res := range card.Results[2:] {
		if res.Degraded {
			t.Fatalf("q%d degraded after the breaker closed", res.QueryID)
		}
	}
}

// FormatChaos renders only deterministic fields and flags degraded cells.
func TestFormatChaos(t *testing.T) {
	cards := []*Scorecard{{
		System: "Fake",
		Results: []QueryResult{
			{QueryID: 1, Supported: true, Correct: true,
				Attempts: []Attempt{{N: 1, Err: "hiccup", Transient: true, Backoff: 1500 * time.Microsecond}, {N: 2}}},
			{QueryID: 2, Degraded: true, Supported: true, Err: "gone",
				Attempts: []Attempt{{N: 1, Err: "gone"}}},
			{QueryID: 3,
				Attempts: []Attempt{{N: 1, Err: ErrBreakerOpen.Error(), Transient: true, Shed: true}}},
		},
	}}
	got := FormatChaos(cards)
	for _, want := range []string{
		"Fake (1 degraded)",
		"q01: ok        2 attempt(s)",
		"attempt 1: transient error: hiccup  (retry in 1.5ms)",
		"attempt 2: ok",
		"q02: DEGRADED  1 attempt(s)",
		"attempt 1: permanent error: gone",
		"attempt 1: shed (breaker open)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("FormatChaos missing %q in:\n%s", want, got)
		}
	}
	if FormatChaos(cards) != got {
		t.Error("FormatChaos not deterministic")
	}
}

// Runner.Explain works under a resilience policy too: the trace carries
// attempt spans.
func TestExplainWithResilience(t *testing.T) {
	sys := &fakeSystem{name: "flaky", fn: func(req integration.Request) (*integration.Answer, error) {
		if integration.AttemptFromContext(req.Context()) == 1 {
			return nil, &transientErr{"hiccup"}
		}
		return answerQ1()
	}}
	r := &Runner{Queries: Queries(), Resilience: &Resilience{MaxAttempts: 2, BaseBackoff: 10 * time.Microsecond}}
	res, tr, err := r.Explain(context.Background(), sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct || len(res.Attempts) != 2 {
		t.Fatalf("res = %+v, want recovery on attempt 2", res)
	}
	if tr.Empty() {
		t.Fatal("no trace recorded")
	}
	outline := tr.Outline()
	if !strings.Contains(outline, "attempt 1") || !strings.Contains(outline, "attempt 2") {
		t.Fatalf("trace missing attempt spans:\n%s", outline)
	}
}
