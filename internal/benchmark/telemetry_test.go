package benchmark

import (
	"errors"
	"strings"
	"testing"
	"time"

	"thalia/internal/integration"
	"thalia/internal/telemetry"
)

// An instrumented run must populate per-system/per-query latency series,
// count every cell, and leave the busy-workers gauge at zero — and the
// ranked scorecards must stay byte-identical to the uninstrumented
// sequential path (PR 2's guarantee survives telemetry).
func TestRunnerTelemetry(t *testing.T) {
	seq, err := NewSequentialRunner().EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	want := renderCards(seq)

	reg := telemetry.NewRegistry()
	r := &Runner{Queries: Queries(), Concurrency: 4, Telemetry: reg}
	cards, err := r.EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderCards(cards); got != want {
		t.Error("telemetry changed the ranked scorecard bytes")
	}

	snap := reg.Snapshot()
	cells := int64(0)
	for _, c := range snap.Counters {
		if c.Name == MetricCells {
			cells += c.Value
		}
	}
	if want := int64(4 * len(Queries())); cells != want {
		t.Errorf("cells counted = %d, want %d", cells, want)
	}
	evalSeries := 0
	for _, h := range snap.Histograms {
		switch h.Name {
		case MetricEvalLatency:
			evalSeries++
			if h.Labels["system"] == "" || !strings.HasPrefix(h.Labels["query"], "q") {
				t.Errorf("eval series missing labels: %+v", h.Labels)
			}
			if h.Count == 0 {
				t.Errorf("eval series %v has no observations", h.Labels)
			}
		case MetricQueueWait:
			if h.Count != cells {
				t.Errorf("queue-wait count = %d, want %d", h.Count, cells)
			}
		}
	}
	if want := 4 * len(Queries()); evalSeries != want {
		t.Errorf("eval latency series = %d, want %d (one per system×query)", evalSeries, want)
	}
	for _, g := range snap.Gauges {
		if g.Name == MetricBusyWorkers && g.Value != 0 {
			t.Errorf("busy workers = %d after the run, want 0", g.Value)
		}
		if g.Name == MetricWorkers && g.Value != 4 {
			t.Errorf("worker pool gauge = %d, want 4", g.Value)
		}
	}

	out := FormatEngineMetrics(snap)
	for _, wantStr := range []string{"Per-query evaluation latency", "q01", "Queue wait", "Cells evaluated: 48"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("FormatEngineMetrics missing %q:\n%s", wantStr, out)
		}
	}
}

// Timeouts and plain errors land in separate counters.
func TestTelemetryTimeoutAndErrorCounters(t *testing.T) {
	moody := &fakeSystem{name: "moody", fn: func(req integration.Request) (*integration.Answer, error) {
		switch req.QueryID {
		case 1:
			time.Sleep(2 * time.Second) // hits the timeout
			return &integration.Answer{}, nil
		case 2:
			return nil, integration.ErrUnsupported // declined: not an error
		default:
			return nil, errors.New("wrapper exploded")
		}
	}}
	reg := telemetry.NewRegistry()
	r := &Runner{Queries: Queries()[:3], Concurrency: 3, QueryTimeout: 50 * time.Millisecond, Telemetry: reg}
	if _, err := r.Evaluate(moody); err != nil {
		t.Fatal(err)
	}
	var timeouts, errs int64
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case MetricTimeouts:
			timeouts += c.Value
		case MetricErrors:
			errs += c.Value
		}
	}
	if timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", timeouts)
	}
	if errs != 1 {
		t.Errorf("errors = %d, want 1 (ErrUnsupported must not count)", errs)
	}
}
