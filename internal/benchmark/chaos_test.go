package benchmark

import (
	"context"
	"sync"
	"testing"

	"thalia/internal/faultline"
	"thalia/internal/integration"
)

// chaosSystems wraps the four real systems in a fresh standard-mix fault
// plan for the given seed.
func chaosSystems(seed int64) []integration.System {
	plan := faultline.StandardMix(seed)
	systems := allSystems()
	wrapped := make([]integration.System, len(systems))
	for i, sys := range systems {
		wrapped[i] = faultline.Wrap(sys, plan, nil)
	}
	return wrapped
}

// renderChaos is the full chaos scorecard surface: the ranked comparison,
// each card, and the per-cell attempt histories.
func renderChaos(cards []*Scorecard) string {
	return renderCards(cards) + FormatChaos(cards)
}

// TestChaosSameSeedByteIdentical is the chaos conformance contract: two runs
// with the same seed — same fault plan, same jittered backoff, same breaker
// policy — produce byte-identical ranked scorecards and attempt histories.
func TestChaosSameSeedByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		var renders []string
		for run := 0; run < 2; run++ {
			r := &Runner{Queries: Queries(), Concurrency: 4, Resilience: DefaultResilience(seed)}
			cards, err := r.EvaluateAll(chaosSystems(seed)...)
			if err != nil {
				t.Fatalf("seed %d run %d: %v", seed, run, err)
			}
			renders = append(renders, renderChaos(cards))
		}
		if renders[0] != renders[1] {
			t.Errorf("seed %d: two chaos runs diverged\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				seed, renders[0], renders[1])
		}
	}
}

// A zero-fault plan plus an active resilience policy must be invisible: the
// ranked scorecards are byte-identical to a bare sequential run.
func TestChaosZeroFaultByteIdentical(t *testing.T) {
	baseline := NewSequentialRunner()
	base, err := baseline.EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}

	plan := &faultline.Plan{Seed: 7} // no rules: injects nothing
	wrapped := make([]integration.System, 0, 4)
	for _, sys := range allSystems() {
		wrapped = append(wrapped, faultline.Wrap(sys, plan, nil))
	}
	r := &Runner{Queries: Queries(), Concurrency: 4, Resilience: DefaultResilience(7)}
	cards, err := r.EvaluateAll(wrapped...)
	if err != nil {
		t.Fatal(err)
	}

	if renderCards(base) != renderCards(cards) {
		t.Errorf("zero-fault chaos run diverged from bare run\n--- bare ---\n%s\n--- zero-fault ---\n%s",
			renderCards(base), renderCards(cards))
	}
	for _, card := range cards {
		for _, res := range card.Results {
			if res.Degraded {
				t.Errorf("%s q%d degraded under a zero-fault plan", card.System, res.QueryID)
			}
		}
	}
}

// A permanent fault that survives every retry degrades its cell — and only
// its cell. The run still completes with a full ranked scorecard and attempt
// histories everywhere.
func TestChaosDegradedNeverAborts(t *testing.T) {
	plan := &faultline.Plan{Seed: 3, Rules: []faultline.Rule{
		{System: "Cohera", Query: 5, Kind: faultline.KindPermanent, Probability: 1},
	}}
	wrapped := make([]integration.System, 0, 4)
	for _, sys := range allSystems() {
		wrapped = append(wrapped, faultline.Wrap(sys, plan, nil))
	}
	r := &Runner{Queries: Queries(), Concurrency: 4, Resilience: DefaultResilience(3)}
	cards, err := r.EvaluateAll(wrapped...)
	if err != nil {
		t.Fatalf("degraded cell aborted the run: %v", err)
	}
	if len(cards) != 4 {
		t.Fatalf("got %d cards, want 4", len(cards))
	}
	sawDegraded := false
	for _, card := range cards {
		if len(card.Results) != len(Queries()) {
			t.Fatalf("%s: %d results, want %d", card.System, len(card.Results), len(Queries()))
		}
		for _, res := range card.Results {
			if len(res.Attempts) == 0 {
				t.Errorf("%s q%d has no attempt history", card.System, res.QueryID)
			}
			if card.System == "Cohera" && res.QueryID == 5 {
				sawDegraded = res.Degraded
				if len(res.Attempts) != 1 {
					t.Errorf("permanent fault retried: %d attempts", len(res.Attempts))
				}
			} else if res.Degraded {
				t.Errorf("%s q%d degraded without an injected fault", card.System, res.QueryID)
			}
		}
	}
	if !sawDegraded {
		t.Error("targeted cell was not marked degraded")
	}
}

// TestRealSystemsHealAfterInjectedFault pins the all-or-nothing build
// contract at the benchmark level for all four systems: a transient fault on
// every cell's first attempt must leave the retried run byte-identical to a
// fault-free baseline — no partially-built warehouse, database, or catalog
// artifact may leak into the retry.
func TestRealSystemsHealAfterInjectedFault(t *testing.T) {
	baseline := NewSequentialRunner()
	base, err := baseline.EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}

	plan := &faultline.Plan{Seed: 9, Rules: []faultline.Rule{
		{Attempt: 1, Kind: faultline.KindTransient, Probability: 1},
	}}
	wrapped := make([]integration.System, 0, 4)
	for _, sys := range allSystems() {
		wrapped = append(wrapped, faultline.Wrap(sys, plan, nil))
	}
	r := &Runner{Queries: Queries(), Concurrency: 4, Resilience: DefaultResilience(9)}
	cards, err := r.EvaluateAll(wrapped...)
	if err != nil {
		t.Fatal(err)
	}
	if renderCards(base) != renderCards(cards) {
		t.Errorf("systems did not heal cleanly after a first-attempt fault\n--- baseline ---\n%s\n--- healed ---\n%s",
			renderCards(base), renderCards(cards))
	}
	for _, card := range cards {
		for _, res := range card.Results {
			if res.Degraded {
				t.Errorf("%s q%d degraded, want recovery on attempt 2", card.System, res.QueryID)
			}
			if len(res.Attempts) != 2 {
				t.Errorf("%s q%d: %d attempts, want fail-then-ok", card.System, res.QueryID, len(res.Attempts))
			}
		}
	}
}

// TestChaosStressRace hammers one shared set of fault-wrapped systems with
// concurrent chaos evaluations. Run under -race. Every run must come back
// complete — 4 cards × 12 ordered cells, no lost or duplicated results — and
// render identically to the others (same seed, same plan).
func TestChaosStressRace(t *testing.T) {
	const callers = 8
	const seed = 42
	systems := chaosSystems(seed)

	renders := make([]string, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &Runner{Queries: Queries(), Concurrency: 4, Resilience: DefaultResilience(seed)}
			cards, err := r.EvaluateAllContext(context.Background(), systems...)
			if err != nil {
				errs[i] = err
				return
			}
			if len(cards) != 4 {
				t.Errorf("caller %d: %d cards, want 4", i, len(cards))
				return
			}
			for _, card := range cards {
				if len(card.Results) != len(Queries()) {
					t.Errorf("caller %d: %s has %d results, want %d",
						i, card.System, len(card.Results), len(Queries()))
					return
				}
				for qi, res := range card.Results {
					if res.QueryID != Queries()[qi].ID {
						t.Errorf("caller %d: %s result %d is q%d, want q%d",
							i, card.System, qi, res.QueryID, Queries()[qi].ID)
						return
					}
				}
			}
			renders[i] = renderChaos(cards)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < callers; i++ {
		if renders[i] != renders[0] {
			t.Errorf("caller %d diverged from caller 0 under the same seed", i)
		}
	}
}
