package benchmark

import (
	"errors"
	"fmt"
	"strings"

	"thalia/internal/integration"
)

// Runner evaluates integration systems on the benchmark.
type Runner struct {
	Queries []*Query
}

// NewRunner returns a runner over all twelve queries.
func NewRunner() *Runner { return &Runner{Queries: Queries()} }

// Evaluate runs every benchmark query through the system and scores the
// outcome against the expected integrated answers.
func (r *Runner) Evaluate(sys integration.System) (*Scorecard, error) {
	card := &Scorecard{System: sys.Name(), Description: sys.Description()}
	for _, q := range r.Queries {
		res := QueryResult{QueryID: q.ID}
		want, err := q.Expected()
		if err != nil {
			return nil, fmt.Errorf("benchmark: query %d: expected answer: %w", q.ID, err)
		}
		ans, err := sys.Answer(q.Request())
		switch {
		case errors.Is(err, integration.ErrUnsupported):
			// Declined: no point, no complexity charge.
		case err != nil:
			res.Supported = true
			res.Err = err.Error()
		default:
			res.Supported = true
			res.Effort = ans.Effort
			res.Functions = ans.Functions
			res.Missing, res.Extra = integration.MatchRows(want, ans.Rows)
			res.Correct = len(res.Missing) == 0 && len(res.Extra) == 0
		}
		card.Results = append(card.Results, res)
	}
	return card, nil
}

// EvaluateAll scores several systems and returns their cards ranked.
func (r *Runner) EvaluateAll(systems ...integration.System) ([]*Scorecard, error) {
	var cards []*Scorecard
	for _, sys := range systems {
		card, err := r.Evaluate(sys)
		if err != nil {
			return nil, err
		}
		cards = append(cards, card)
	}
	return Rank(cards), nil
}

// Summary renders the Section 4.2 narrative line for a scorecard, e.g.
// "Cohera could do 4 queries with no code, and another 5 with varying
// amounts of user-defined code. The other 3 queries look very difficult."
func Summary(s *Scorecard) string {
	noCode := s.NoCodeCount()
	withCode := s.SupportedCount() - noCode
	declined := len(s.Results) - s.SupportedCount()
	return fmt.Sprintf("%s: %d queries with no code, %d with custom integration code, %d unsupported; %d/12 correct, complexity score %d.",
		s.System, noCode, withCode, declined, s.CorrectCount(), s.ComplexityScore())
}

// Comparison renders the side-by-side per-query table for several systems —
// the reproduction of Section 4.2's evaluation.
func Comparison(cards []*Scorecard) string {
	var b strings.Builder
	b.WriteString("Section 4.2 — per-query support by system\n\n")
	fmt.Fprintf(&b, "%-7s %-42s", "Query", "Heterogeneity")
	for _, c := range cards {
		fmt.Fprintf(&b, " %-22s", c.System)
	}
	b.WriteString("\n")
	qs := Queries()
	for i, q := range qs {
		fmt.Fprintf(&b, "%-7d %-42s", q.ID, q.Case.Name())
		for _, c := range cards {
			r := c.Results[i]
			cell := "unsupported"
			if r.Supported {
				cell = r.Effort.String()
				if !r.Correct {
					cell += " (WRONG)"
				}
			}
			fmt.Fprintf(&b, " %-22s", cell)
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")
	for _, c := range cards {
		b.WriteString(Summary(c))
		b.WriteString("\n")
	}
	return b.String()
}
