package benchmark

import (
	"context"
	"fmt"
	"strings"
	"time"

	"thalia/internal/integration"
	"thalia/internal/journal"
	"thalia/internal/telemetry"
)

// Runner evaluates integration systems on the benchmark. The zero value is
// not useful; construct with NewRunner (all twelve queries, one worker per
// CPU) and adjust the knobs as needed.
type Runner struct {
	Queries []*Query
	// Concurrency is the size of the worker pool query×system cells are
	// fanned out over. Zero or negative means one worker per logical CPU;
	// 1 reproduces the strictly sequential evaluation order.
	Concurrency int
	// QueryTimeout bounds one system's Answer call for one query. A cell
	// that overruns is recorded as a per-query error (ErrQueryTimeout)
	// rather than hanging the evaluation. Zero means no timeout.
	QueryTimeout time.Duration
	// Telemetry, when non-nil, receives engine metrics: per-cell queue
	// wait and evaluation latency (engine_queue_wait_seconds,
	// engine_eval_seconds{system,query}), timeout/error counts and
	// worker-pool utilization. Metrics observe the evaluation from the
	// outside; scorecards are byte-identical with or without it.
	Telemetry *telemetry.Registry
	// ExplainFailures, when set, attaches an explain.Recorder to every cell
	// and keeps the trace (QueryResult.Explain) for cells that fail —
	// declined, errored or incorrect. Like Telemetry, it observes without
	// perturbing: rendered scorecards are byte-identical either way.
	ExplainFailures bool
	// Prep, when non-nil, is the per-run shared-preparation cache: expected
	// answers are computed once per query instead of once per cell, and
	// compiled query plans are shared through Prep.Plans. NewRunner and
	// NewSequentialRunner attach one; a nil Prep reproduces the original
	// recompute-per-cell path. Like Telemetry, it cannot change results:
	// scorecards are byte-identical with or without it.
	Prep *PrepCache
	// Resilience, when non-nil, runs every cell through the retry /
	// circuit-breaker / graceful-degradation policy and attaches attempt
	// histories (QueryResult.Attempts). With a breaker enabled, each
	// system's cells evaluate in query order (systems still run in
	// parallel) so breaker trajectories — and therefore scorecards — are
	// deterministic. A cell that exhausts its retries is marked Degraded;
	// it never aborts the run.
	Resilience *Resilience
	// Journal, when non-nil, is the run's flight recorder: the evaluation
	// appends a run-start event, per-cell lifecycle events (with attempt
	// histories, latency, and explain digests for failed cells), periodic
	// telemetry snapshots (when Telemetry is also set), and a run-end
	// event carrying the ranked-scorecard digest. Like Telemetry and
	// ExplainFailures it observes from the outside: scorecards are
	// byte-identical with journaling on or off, and a nil Journal costs
	// nothing.
	Journal *journal.Recorder
}

// NewRunner returns a runner over all twelve queries with a fresh
// shared-prep cache attached.
func NewRunner() *Runner { return &Runner{Queries: Queries(), Prep: NewPrepCache()} }

// NewSequentialRunner returns a runner that evaluates cells strictly one at
// a time, in query order — the reference path the concurrent engine is
// differentially tested against.
func NewSequentialRunner() *Runner {
	return &Runner{Queries: Queries(), Concurrency: 1, Prep: NewPrepCache()}
}

// NewStreamingRunner returns a runner over a generated query set with NO
// shared-prep cache attached: expected answers and compiled plans are
// computed per cell and become garbage as soon as the cell is scored,
// instead of accumulating for the lifetime of the run. This is the
// bounded-memory contract scenario-scale evaluations rely on — a
// 10k-source workload holds O(pool) cells of state, not O(sources) — at
// the cost of recomputing preparation work that a PrepCache would share.
// Scorecards are byte-identical to a prep-cached run of the same queries.
func NewStreamingRunner(queries []*Query) *Runner {
	return &Runner{Queries: queries}
}

// Evaluate runs every benchmark query through the system and scores the
// outcome against the expected integrated answers. A query whose expected
// answer cannot be computed degrades to a per-query error result; it does
// not abort the evaluation.
func (r *Runner) Evaluate(sys integration.System) (*Scorecard, error) {
	return r.EvaluateContext(context.Background(), sys)
}

// EvaluateAll scores several systems and returns their cards ranked. Cells
// are evaluated on the runner's worker pool (see EvaluateAllContext for the
// concurrency contract); the ranked result is byte-identical to the
// sequential (Concurrency=1) path.
func (r *Runner) EvaluateAll(systems ...integration.System) ([]*Scorecard, error) {
	return r.EvaluateAllContext(context.Background(), systems...)
}

// Summary renders the Section 4.2 narrative line for a scorecard, e.g.
// "Cohera could do 4 queries with no code, and another 5 with varying
// amounts of user-defined code. The other 3 queries look very difficult."
func Summary(s *Scorecard) string {
	noCode := s.NoCodeCount()
	withCode := s.SupportedCount() - noCode
	declined := len(s.Results) - s.SupportedCount()
	return fmt.Sprintf("%s: %d queries with no code, %d with custom integration code, %d unsupported; %d/%d correct, complexity score %d.",
		s.System, noCode, withCode, declined, s.CorrectCount(), len(s.Results), s.ComplexityScore())
}

// Comparison renders the side-by-side per-query table for several systems —
// the reproduction of Section 4.2's evaluation.
func Comparison(cards []*Scorecard) string {
	var b strings.Builder
	b.WriteString("Section 4.2 — per-query support by system\n\n")
	fmt.Fprintf(&b, "%-7s %-42s", "Query", "Heterogeneity")
	for _, c := range cards {
		fmt.Fprintf(&b, " %-22s", c.System)
	}
	b.WriteString("\n")
	qs := Queries()
	for i, q := range qs {
		fmt.Fprintf(&b, "%-7d %-42s", q.ID, q.Case.Name())
		for _, c := range cards {
			r := c.Results[i]
			cell := "unsupported"
			if r.Supported {
				cell = r.Effort.String()
				if !r.Correct {
					cell += " (WRONG)"
				}
			}
			fmt.Fprintf(&b, " %-22s", cell)
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")
	for _, c := range cards {
		b.WriteString(Summary(c))
		b.WriteString("\n")
	}
	return b.String()
}
