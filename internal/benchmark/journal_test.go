package benchmark

import (
	"bytes"
	"testing"
	"time"

	"thalia/internal/faultline"
	"thalia/internal/integration"
	"thalia/internal/journal"
	"thalia/internal/telemetry"
)

// journaledRunner builds a runner with a flight recorder writing into buf.
func journaledRunner(buf *bytes.Buffer, workers int, res *Resilience) *Runner {
	return &Runner{
		Queries: Queries(), Concurrency: workers, Prep: NewPrepCache(),
		Resilience: res,
		Journal: &journal.Recorder{
			W: journal.NewWriter(buf), RunID: "test-run", Harness: "benchmark-test",
		},
	}
}

// The flight recorder must be invisible in the output: scorecards are
// byte-identical with journaling on or off, at every pool size.
func TestJournalDoesNotPerturbScorecards(t *testing.T) {
	plain, err := NewSequentialRunner().EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	want := renderCards(plain)
	for _, workers := range []int{1, 2, 8} {
		var buf bytes.Buffer
		cards, err := journaledRunner(&buf, workers, nil).EvaluateAll(allSystems()...)
		if err != nil {
			t.Fatalf("concurrency %d: %v", workers, err)
		}
		if got := renderCards(cards); got != want {
			t.Errorf("concurrency %d: journaled scorecards differ from plain run", workers)
		}
	}
}

// Replaying the journal's cell events must rebuild the exact ranked cards
// the run-end event recorded — the digest ties live run to replay.
func TestJournalReplayReproducesRunDigest(t *testing.T) {
	var buf bytes.Buffer
	cards, err := journaledRunner(&buf, 4, nil).EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	events, err := journal.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	p := journal.Replay(events)
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	live := ScorecardDigest(cards)
	if p.End.Digest != live {
		t.Errorf("run-end digest %s != live scorecard digest %s", p.End.Digest, live)
	}
	if got := p.Digest(); got != live {
		t.Errorf("replayed digest %s != live scorecard digest %s", got, live)
	}
}

// A chaos run under faults and resilience must journal attempt histories
// and degraded cells, and still replay to the recorded digest.
func TestJournalCapturesChaosRun(t *testing.T) {
	plan := &faultline.Plan{Seed: 3, Rules: []faultline.Rule{
		{Attempt: 1, Kind: faultline.KindTransient, Probability: 1},
		{System: "Cohera", Query: 5, Kind: faultline.KindPermanent, Probability: 1},
	}}
	var wrapped []integration.System
	for _, sys := range allSystems() {
		wrapped = append(wrapped, faultline.Wrap(sys, plan, nil))
	}
	var buf bytes.Buffer
	r := journaledRunner(&buf, 4, DefaultResilience(3))
	r.Journal.Seed = 3
	r.Journal.FaultPlanDigest = plan.Digest()
	if _, err := r.EvaluateAll(wrapped...); err != nil {
		t.Fatal(err)
	}
	events, err := journal.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p := journal.Replay(events)
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if p.Start.Seed != 3 || p.Start.FaultPlanDigest != plan.Digest() {
		t.Errorf("run_start lost chaos provenance: seed=%d plan=%q", p.Start.Seed, p.Start.FaultPlanDigest)
	}
	if !p.Start.Resilience {
		t.Error("run_start must record that resilience was on")
	}
	retried, degraded := 0, 0
	for _, card := range p.Cards() {
		for _, cell := range card.Cells {
			if len(cell.Attempts) > 1 {
				retried++
			}
			if cell.Degraded {
				degraded++
			}
		}
	}
	if retried == 0 {
		t.Error("universal attempt-1 transient fault must journal retried cells")
	}
	if degraded == 0 {
		t.Error("permanent fault on Cohera q5 must journal a degraded cell")
	}
	if len(p.Degraded()) != degraded {
		t.Errorf("Degraded() = %d cells, cards say %d", len(p.Degraded()), degraded)
	}
}

// Every cell must appear exactly once as cell_start and once as cell_done,
// with latency measured.
func TestJournalCellLifecycleComplete(t *testing.T) {
	var buf bytes.Buffer
	if _, err := journaledRunner(&buf, 2, nil).EvaluateAll(allSystems()...); err != nil {
		t.Fatal(err)
	}
	events, err := journal.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		sys string
		q   int
	}
	started, done := map[key]int{}, map[key]int{}
	for _, e := range events {
		switch e.Type {
		case journal.TypeCellStart:
			started[key{e.Cell.System, e.Cell.Query}]++
		case journal.TypeCellDone:
			done[key{e.Cell.System, e.Cell.Query}]++
			if e.Cell.LatencyNS <= 0 {
				t.Errorf("cell %s q%d: no latency recorded", e.Cell.System, e.Cell.Query)
			}
		}
	}
	wantCells := len(allSystems()) * len(Queries())
	if len(started) != wantCells || len(done) != wantCells {
		t.Fatalf("saw %d starts / %d dones, want %d distinct cells", len(started), len(done), wantCells)
	}
	for k, n := range started {
		if n != 1 || done[k] != 1 {
			t.Errorf("cell %v: %d starts, %d dones; want exactly one of each", k, n, done[k])
		}
	}
}

// journal.Rank mirrors benchmark.Rank's ordering; the cross-check keeps the
// two from drifting apart.
func TestJournalRankMatchesBenchmarkRank(t *testing.T) {
	cards, err := NewRunner().EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	jranked := journal.Rank(JournalCards(cards))
	for i, card := range cards {
		if jranked[i].System != card.System {
			t.Fatalf("rank %d: journal says %s, benchmark says %s", i+1, jranked[i].System, card.System)
		}
		if jranked[i].Correct() != card.CorrectCount() || jranked[i].Complexity() != card.ComplexityScore() {
			t.Errorf("%s: journal %d/%d vs benchmark %d/%d (correct/complexity)",
				card.System, jranked[i].Correct(), jranked[i].Complexity(),
				card.CorrectCount(), card.ComplexityScore())
		}
	}
}

// With telemetry attached, journaled runs sample snapshots that include the
// runtime vitals, and the final snapshot lands before run_end.
func TestJournalSamplesTelemetry(t *testing.T) {
	var buf bytes.Buffer
	r := journaledRunner(&buf, 2, nil)
	r.Telemetry = telemetry.NewRegistry()
	r.Journal.TelemetryInterval = time.Millisecond
	if _, err := r.EvaluateAll(allSystems()...); err != nil {
		t.Fatal(err)
	}
	events, err := journal.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	samples, lastTelemetry, runEnd := 0, 0, 0
	for i, e := range events {
		switch e.Type {
		case journal.TypeTelemetry:
			samples++
			lastTelemetry = i
			vitals := false
			for _, g := range e.Telemetry.Gauges {
				if g.Name == telemetry.MetricGoroutines {
					vitals = true
				}
			}
			if !vitals {
				t.Error("telemetry snapshot missing runtime vitals")
			}
		case journal.TypeRunEnd:
			runEnd = i
		}
	}
	if samples == 0 {
		t.Fatal("no telemetry events journaled")
	}
	if lastTelemetry > runEnd {
		t.Errorf("telemetry event at %d after run_end at %d", lastTelemetry, runEnd)
	}
}

// A journal write error must never fail the run: scorecards still come back.
func TestJournalWriteErrorDoesNotFailRun(t *testing.T) {
	w := journal.NewWriter(failWriter{})
	r := &Runner{
		Queries: Queries(), Concurrency: 2, Prep: NewPrepCache(),
		Journal: &journal.Recorder{W: w, RunID: "doomed", Harness: "test"},
	}
	cards, err := r.EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatalf("run must survive a broken journal sink: %v", err)
	}
	if len(cards) != len(allSystems()) {
		t.Fatalf("got %d cards, want %d", len(cards), len(allSystems()))
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errShortPipe
}

var errShortPipe = &journalSinkError{}

type journalSinkError struct{}

func (*journalSinkError) Error() string { return "journal sink closed" }
