package benchmark

import (
	"strings"
	"testing"

	"thalia/internal/cohera"
	"thalia/internal/integration"
	"thalia/internal/iwiz"
	"thalia/internal/rewrite"
	"thalia/internal/ufmw"
)

// TestSection42Cohera reproduces the paper's Section 4.2 projection for the
// Cohera federated DBMS: 4 queries with no code (1, 6, 9, 10), 5 with
// user-defined code (2, 3, 7, 11, 12), and 3 declined (4, 5, 8) — and in
// our runnable reproduction the 9 supported queries are answered correctly.
func TestSection42Cohera(t *testing.T) {
	card, err := NewRunner().Evaluate(cohera.New())
	if err != nil {
		t.Fatal(err)
	}
	wantEffort := map[int]integration.Effort{
		1: integration.EffortNone, 6: integration.EffortNone,
		9: integration.EffortNone, 10: integration.EffortNone,
		2: integration.EffortSmall,
		3: integration.EffortModerate, 7: integration.EffortModerate,
		11: integration.EffortModerate, 12: integration.EffortModerate,
	}
	declined := map[int]bool{4: true, 5: true, 8: true}
	for _, r := range card.Results {
		if declined[r.QueryID] {
			if r.Supported {
				t.Errorf("query %d: Cohera should decline", r.QueryID)
			}
			continue
		}
		if !r.Supported {
			t.Errorf("query %d: Cohera should support", r.QueryID)
			continue
		}
		if !r.Correct {
			t.Errorf("query %d: incorrect: err=%q missing=%v extra=%v", r.QueryID, r.Err, r.Missing, r.Extra)
		}
		if r.Effort != wantEffort[r.QueryID] {
			t.Errorf("query %d: effort %v, paper says %v", r.QueryID, r.Effort, wantEffort[r.QueryID])
		}
	}
	if got := card.CorrectCount(); got != 9 {
		t.Errorf("Cohera correct = %d, want 9", got)
	}
	if got := card.NoCodeCount(); got != 4 {
		t.Errorf("Cohera no-code = %d, want 4 (paper: \"could do 4 queries with no code\")", got)
	}
	if got := card.SupportedCount() - card.NoCodeCount(); got != 5 {
		t.Errorf("Cohera with-code = %d, want 5", got)
	}
	// Complexity: Q2 low(1) + Q3/Q7/Q11/Q12 moderate(2 each) = 9.
	if got := card.ComplexityScore(); got != 9 {
		t.Errorf("Cohera complexity = %d, want 9", got)
	}
}

// TestSection42IWIZ reproduces the paper's projection for IWIZ: 9 queries
// with small-to-moderate custom code, 3 unanswerable.
func TestSection42IWIZ(t *testing.T) {
	card, err := NewRunner().Evaluate(iwiz.New())
	if err != nil {
		t.Fatal(err)
	}
	wantEffort := map[int]integration.Effort{
		1: integration.EffortSmall, 2: integration.EffortSmall,
		9: integration.EffortSmall, 10: integration.EffortSmall,
		3: integration.EffortModerate, 6: integration.EffortModerate,
		7: integration.EffortModerate, 11: integration.EffortModerate,
		12: integration.EffortModerate,
	}
	declined := map[int]bool{4: true, 5: true, 8: true}
	for _, r := range card.Results {
		if declined[r.QueryID] {
			if r.Supported {
				t.Errorf("query %d: IWIZ should decline", r.QueryID)
			}
			continue
		}
		if !r.Supported {
			t.Errorf("query %d: IWIZ should support", r.QueryID)
			continue
		}
		if !r.Correct {
			t.Errorf("query %d: incorrect: err=%q missing=%v extra=%v", r.QueryID, r.Err, r.Missing, r.Extra)
		}
		if r.Effort != wantEffort[r.QueryID] {
			t.Errorf("query %d: effort %v, paper says %v", r.QueryID, r.Effort, wantEffort[r.QueryID])
		}
	}
	if got := card.CorrectCount(); got != 9 {
		t.Errorf("IWIZ correct = %d, want 9", got)
	}
	// IWIZ answers nothing without at least small code (no UDF-free path).
	if got := card.NoCodeCount(); got != 0 {
		t.Errorf("IWIZ no-code = %d, want 0", got)
	}
	// Complexity: 4 small (1) + 5 moderate (2) = 14.
	if got := card.ComplexityScore(); got != 14 {
		t.Errorf("IWIZ complexity = %d, want 14", got)
	}
}

// TestSection42Shape checks the paper's comparative claims: both existing
// systems fail the same three queries, tie on correctness, and the
// complexity tie-break ranks Cohera (4 no-code queries) above IWIZ; the
// full mediator demonstrates that a system *can* score 12/12, at the
// highest complexity — "we know of no system that can score well" is about
// existing systems, and the benchmark can tell these three apart.
func TestSection42Shape(t *testing.T) {
	runner := NewRunner()
	cards, err := runner.EvaluateAll(cohera.New(), iwiz.New(), ufmw.New())
	if err != nil {
		t.Fatal(err)
	}
	if cards[0].System != "UF Full Mediator" {
		t.Errorf("rank 1 = %s, want the full mediator", cards[0].System)
	}
	if cards[1].System != "Cohera" || cards[2].System != "IWIZ" {
		t.Errorf("tie-break order: %s then %s; want Cohera above IWIZ (lower complexity)",
			cards[1].System, cards[2].System)
	}
	if cards[1].CorrectCount() != cards[2].CorrectCount() {
		t.Error("Cohera and IWIZ should tie on correctness")
	}
	if !(cards[1].ComplexityScore() < cards[2].ComplexityScore()) {
		t.Error("Cohera should have the lower complexity score")
	}
	if !(cards[0].ComplexityScore() > cards[2].ComplexityScore()) {
		t.Error("the full mediator pays the highest complexity")
	}
	// Both legacy systems fail exactly {4, 5, 8}.
	for _, card := range cards[1:] {
		for _, id := range []int{4, 5, 8} {
			if card.Result(id).Supported {
				t.Errorf("%s should decline query %d", card.System, id)
			}
		}
	}

	out := Comparison(cards)
	for _, want := range []string{
		"Cohera", "IWIZ", "UF Full Mediator",
		"Cohera: 4 queries with no code, 5 with custom integration code, 3 unsupported",
		"IWIZ: 0 queries with no code, 9 with custom integration code, 3 unsupported",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Comparison missing %q:\n%s", want, out)
		}
	}
}

// TestDeclarativeMediatorScoresPerfect: the generic rewrite mediator —
// configured purely by mapping tables, with zero per-query code — also
// reaches 12/12, demonstrating that the benchmark's twelve cases are
// resolvable by one declarative engine plus a transformation catalog.
func TestDeclarativeMediatorScoresPerfect(t *testing.T) {
	card, err := NewRunner().Evaluate(rewrite.NewSystem())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range card.Results {
		if !r.Correct {
			t.Errorf("query %d incorrect: err=%q missing=%v extra=%v",
				r.QueryID, r.Err, r.Missing, r.Extra)
		}
	}
	if card.CorrectCount() != 12 {
		t.Errorf("declarative mediator scored %d/12", card.CorrectCount())
	}
	// It is charged for the hard machinery: lexicon and dual NULLs.
	for _, id := range []int{4, 5, 8} {
		if c := card.Result(id).Complexity(); c < 3 {
			t.Errorf("query %d complexity = %d, want >= 3", id, c)
		}
	}
}
