package benchmark

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"thalia/internal/catalog"
	"thalia/internal/integration"
	"thalia/internal/xquery"
	"thalia/internal/xquery/plan"
)

// Timing is one measured configuration of the evaluation engine, in the
// machine-readable shape the repo's BENCH_*.json artifacts use.
type Timing struct {
	// Name identifies the configuration, e.g. "evaluate_all/seq" or
	// "evaluate_all/par8".
	Name string `json:"name"`
	// Runs is the number of full EvaluateAll executions measured.
	Runs int `json:"runs"`
	// NsPerOp is the mean wall-clock nanoseconds per EvaluateAll.
	NsPerOp int64 `json:"ns_per_op"`
	// CellsPerSec is the evaluation throughput in query×system cells per
	// second, for suites (like benchmark_scale) whose configurations differ
	// in workload size rather than engine configuration — the scaling-curve
	// number. Zero (omitted) in suites that do not measure it.
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
}

// Report is a benchmark-regression artifact: the sequential and parallel
// timings of the same workload, so the sequential→parallel speedup is
// pinned in version control rather than asserted in prose.
type Report struct {
	// Suite names the workload, e.g. "benchmark_engine".
	Suite string `json:"suite"`
	// GoMaxProcs records the parallelism available when measuring.
	GoMaxProcs int `json:"gomaxprocs"`
	// Systems lists the systems under evaluation, in input order.
	Systems []string `json:"systems"`
	// Timings holds one entry per measured configuration.
	Timings []Timing `json:"timings"`
	// Speedup is the uncached sequential ns/op divided by the best cached
	// configuration's ns/op — the combined gain from shared preparation and
	// the worker pool over the seed path.
	Speedup float64 `json:"speedup"`
	// XQuerySpeedup is the interpreter's ns/op divided by the compiled-plan
	// engine's for one pass of the twelve benchmark queries — the gate that
	// keeps the default execution path provably faster than the reference
	// interpreter. Zero (omitted) in suites that do not measure it.
	XQuerySpeedup float64 `json:"xquery_speedup,omitempty"`
}

// MeasureEngine times EvaluateAll over the given systems in three
// configurations, running each `runs` times, and returns the regression
// report:
//
//   - "evaluate_all/seq": Concurrency 1 with no prep cache — the original
//     recompute-per-cell seed path, kept as the comparison floor.
//   - "evaluate_all/plan_cache": Concurrency 1 with the shared-prep cache
//     attached, isolating what per-run preparation sharing alone buys.
//   - "evaluate_all/parN": a pool of N workers with the prep cache, one row
//     per requested pool size.
//
// Systems are warmed with one throwaway evaluation first so one-time
// materialization (warehouse builds, relation shredding) doesn't distort
// the comparison.
func MeasureEngine(runs int, poolSizes []int, systems ...integration.System) (*Report, error) {
	if runs <= 0 {
		runs = 1
	}
	rep := &Report{Suite: "benchmark_engine", GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, sys := range systems {
		rep.Systems = append(rep.Systems, sys.Name())
	}
	warm := NewSequentialRunner()
	if _, err := warm.EvaluateAll(systems...); err != nil {
		return nil, fmt.Errorf("benchmark: warm-up: %w", err)
	}
	measure := func(name string, workers int, prep bool) (Timing, error) {
		r := &Runner{Queries: Queries(), Concurrency: workers}
		if prep {
			r.Prep = NewPrepCache()
		}
		start := time.Now()
		for i := 0; i < runs; i++ {
			if _, err := r.EvaluateAll(systems...); err != nil {
				return Timing{}, fmt.Errorf("benchmark: %s: %w", name, err)
			}
		}
		return Timing{Name: name, Runs: runs, NsPerOp: time.Since(start).Nanoseconds() / int64(runs)}, nil
	}
	seq, err := measure("evaluate_all/seq", 1, false)
	if err != nil {
		return nil, err
	}
	rep.Timings = append(rep.Timings, seq)
	best := int64(0)
	cached, err := measure("evaluate_all/plan_cache", 1, true)
	if err != nil {
		return nil, err
	}
	rep.Timings = append(rep.Timings, cached)
	best = cached.NsPerOp
	for _, workers := range poolSizes {
		if workers <= 1 {
			continue
		}
		par, err := measure(fmt.Sprintf("evaluate_all/par%d", workers), workers, true)
		if err != nil {
			return nil, err
		}
		rep.Timings = append(rep.Timings, par)
		if best == 0 || par.NsPerOp < best {
			best = par.NsPerOp
		}
	}
	if best > 0 {
		rep.Speedup = float64(seq.NsPerOp) / float64(best)
	}
	xq, err := measureXQueryEngines(runs)
	if err != nil {
		return nil, err
	}
	rep.Timings = append(rep.Timings, xq...)
	if len(xq) == 2 && xq[1].NsPerOp > 0 {
		rep.XQuerySpeedup = float64(xq[0].NsPerOp) / float64(xq[1].NsPerOp)
	}
	return rep, nil
}

// xqueryPassesPerRun scales the XQuery engine rows: one evaluation pass of
// the twelve queries is microseconds, so each configured run measures this
// many passes to keep the row's ns/op stable on noisy runners.
const xqueryPassesPerRun = 40

// measureXQueryEngines times one pass of the twelve benchmark queries'
// XQuery text through each engine against the extracted testbed:
//
//   - "xquery_eval/interp": the reference interpreter, re-parsing per
//     evaluation — the pre-flip seed path.
//   - "xquery_eval/plan": the compiled-plan engine behind a plan.Cache —
//     the default execution path a real run exercises through the
//     runner's PrepCache.
//
// Their ratio is the Report's XQuerySpeedup, the engine-flip gate.
func measureXQueryEngines(runs int) ([]Timing, error) {
	queries := Queries()
	resolve := catalog.Resolver()
	warm := xquery.NewContext(resolve)
	for _, q := range queries {
		if _, err := xquery.EvalQuery(q.XQuery, warm); err != nil {
			return nil, fmt.Errorf("benchmark: xquery warm-up q%d: %w", q.ID, err)
		}
	}
	passes := runs * xqueryPassesPerRun
	start := time.Now()
	for i := 0; i < passes; i++ {
		ctx := xquery.NewContext(resolve)
		for _, q := range queries {
			if _, err := xquery.EvalQuery(q.XQuery, ctx); err != nil {
				return nil, fmt.Errorf("benchmark: xquery_eval/interp q%d: %w", q.ID, err)
			}
		}
	}
	interp := Timing{Name: "xquery_eval/interp", Runs: passes,
		NsPerOp: time.Since(start).Nanoseconds() / int64(passes)}
	cache := plan.NewCache()
	start = time.Now()
	for i := 0; i < passes; i++ {
		ctx := xquery.NewContext(resolve)
		for _, q := range queries {
			p, err := cache.Get(q.XQuery)
			if err != nil {
				return nil, fmt.Errorf("benchmark: xquery_eval/plan q%d: %w", q.ID, err)
			}
			if _, err := p.Eval(ctx); err != nil {
				return nil, fmt.Errorf("benchmark: xquery_eval/plan q%d: %w", q.ID, err)
			}
		}
	}
	planRow := Timing{Name: "xquery_eval/plan", Runs: passes,
		NsPerOp: time.Since(start).Nanoseconds() / int64(passes)}
	return []Timing{interp, planRow}, nil
}

// WriteJSON writes the report to path as indented JSON, the BENCH_*.json
// artifact format.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
