package benchmark

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"thalia/internal/integration"
)

// Timing is one measured configuration of the evaluation engine, in the
// machine-readable shape the repo's BENCH_*.json artifacts use.
type Timing struct {
	// Name identifies the configuration, e.g. "evaluate_all/seq" or
	// "evaluate_all/par8".
	Name string `json:"name"`
	// Runs is the number of full EvaluateAll executions measured.
	Runs int `json:"runs"`
	// NsPerOp is the mean wall-clock nanoseconds per EvaluateAll.
	NsPerOp int64 `json:"ns_per_op"`
}

// Report is a benchmark-regression artifact: the sequential and parallel
// timings of the same workload, so the sequential→parallel speedup is
// pinned in version control rather than asserted in prose.
type Report struct {
	// Suite names the workload, e.g. "benchmark_engine".
	Suite string `json:"suite"`
	// GoMaxProcs records the parallelism available when measuring.
	GoMaxProcs int `json:"gomaxprocs"`
	// Systems lists the systems under evaluation, in input order.
	Systems []string `json:"systems"`
	// Timings holds one entry per measured configuration.
	Timings []Timing `json:"timings"`
	// Speedup is the uncached sequential ns/op divided by the best cached
	// configuration's ns/op — the combined gain from shared preparation and
	// the worker pool over the seed path.
	Speedup float64 `json:"speedup"`
}

// MeasureEngine times EvaluateAll over the given systems in three
// configurations, running each `runs` times, and returns the regression
// report:
//
//   - "evaluate_all/seq": Concurrency 1 with no prep cache — the original
//     recompute-per-cell seed path, kept as the comparison floor.
//   - "evaluate_all/plan_cache": Concurrency 1 with the shared-prep cache
//     attached, isolating what per-run preparation sharing alone buys.
//   - "evaluate_all/parN": a pool of N workers with the prep cache, one row
//     per requested pool size.
//
// Systems are warmed with one throwaway evaluation first so one-time
// materialization (warehouse builds, relation shredding) doesn't distort
// the comparison.
func MeasureEngine(runs int, poolSizes []int, systems ...integration.System) (*Report, error) {
	if runs <= 0 {
		runs = 1
	}
	rep := &Report{Suite: "benchmark_engine", GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, sys := range systems {
		rep.Systems = append(rep.Systems, sys.Name())
	}
	warm := NewSequentialRunner()
	if _, err := warm.EvaluateAll(systems...); err != nil {
		return nil, fmt.Errorf("benchmark: warm-up: %w", err)
	}
	measure := func(name string, workers int, prep bool) (Timing, error) {
		r := &Runner{Queries: Queries(), Concurrency: workers}
		if prep {
			r.Prep = NewPrepCache()
		}
		start := time.Now()
		for i := 0; i < runs; i++ {
			if _, err := r.EvaluateAll(systems...); err != nil {
				return Timing{}, fmt.Errorf("benchmark: %s: %w", name, err)
			}
		}
		return Timing{Name: name, Runs: runs, NsPerOp: time.Since(start).Nanoseconds() / int64(runs)}, nil
	}
	seq, err := measure("evaluate_all/seq", 1, false)
	if err != nil {
		return nil, err
	}
	rep.Timings = append(rep.Timings, seq)
	best := int64(0)
	cached, err := measure("evaluate_all/plan_cache", 1, true)
	if err != nil {
		return nil, err
	}
	rep.Timings = append(rep.Timings, cached)
	best = cached.NsPerOp
	for _, workers := range poolSizes {
		if workers <= 1 {
			continue
		}
		par, err := measure(fmt.Sprintf("evaluate_all/par%d", workers), workers, true)
		if err != nil {
			return nil, err
		}
		rep.Timings = append(rep.Timings, par)
		if best == 0 || par.NsPerOp < best {
			best = par.NsPerOp
		}
	}
	if best > 0 {
		rep.Speedup = float64(seq.NsPerOp) / float64(best)
	}
	return rep, nil
}

// WriteJSON writes the report to path as indented JSON, the BENCH_*.json
// artifact format.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
