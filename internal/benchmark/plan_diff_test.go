package benchmark

import (
	"fmt"
	"strings"
	"testing"

	"thalia/internal/catalog"
	"thalia/internal/integration"
	"thalia/internal/xmldom"
	"thalia/internal/xquery"
	"thalia/internal/xquery/plan"
)

// planSeq renders an XQuery result sequence with explicit item types, one
// line per item, so interpreter and plan results can be compared (and
// diffed) byte for byte.
func planSeq(s xquery.Sequence) []string {
	lines := make([]string, len(s))
	for i, item := range s {
		switch v := item.(type) {
		case *xmldom.Document:
			lines[i] = "document " + v.Root.String()
		case *xmldom.Element:
			lines[i] = "element " + v.String()
		case xquery.AttrRef:
			lines[i] = fmt.Sprintf("attribute %s=%q", v.Name, v.Value)
		case string:
			lines[i] = fmt.Sprintf("string %q", v)
		case float64:
			lines[i] = fmt.Sprintf("number %v", v)
		case bool:
			lines[i] = fmt.Sprintf("boolean %v", v)
		default:
			lines[i] = fmt.Sprintf("%T %v", v, v)
		}
	}
	return lines
}

// seqDiff reports the line-level difference between two rendered sequences
// through the same rowDiff helper the cross-system suite uses.
func seqDiff(want, got []string) string {
	toRows := func(lines []string) []integration.Row {
		rows := make([]integration.Row, len(lines))
		for i, l := range lines {
			rows[i] = integration.Row{"pos": fmt.Sprint(i), "item": l}
		}
		return rows
	}
	missing, extra := integration.MatchRows(toRows(want), toRows(got))
	return rowDiff(missing, extra)
}

// retarget rewrites a benchmark query to run against another catalog:
// doc("<ref>.xml")/<ref>/… becomes doc("<cat>.xml")/<cat>/….
func retarget(q *Query, cat string) string {
	src := strings.ReplaceAll(q.XQuery, `doc("`+q.Reference+`.xml")`, `doc("`+cat+`.xml")`)
	return strings.ReplaceAll(src, "/"+q.Reference+"/", "/"+cat+"/")
}

// TestPlanInterpreterEquivalenceAcrossCatalogs is the tentpole's
// differential conformance suite: all twelve benchmark queries, retargeted
// at every extracted catalog, must produce identical outcomes from the
// reference interpreter and the compiled plan — same error or byte-identical
// rendered sequence. Most retargeted cells return empty sequences (the
// catalogs are heterogeneous by design); the test asserts enough non-empty
// cells that the equivalence claim is not vacuous.
func TestPlanInterpreterEquivalenceAcrossCatalogs(t *testing.T) {
	names := catalog.Names()
	if len(names) < 25 {
		t.Fatalf("only %d catalogs registered; the suite expects the full testbed", len(names))
	}
	queries := Queries()
	nonEmpty := 0
	for _, q := range queries {
		for _, cat := range names {
			src := retarget(q, cat)
			label := fmt.Sprintf("q%02d/%s", q.ID, cat)
			expr, err := xquery.Parse(src)
			if err != nil {
				t.Fatalf("%s: parse: %v", label, err)
			}
			p, err := plan.Compile(expr)
			if err != nil {
				t.Fatalf("%s: compile: %v", label, err)
			}
			ictx := xquery.NewContext(catalog.Resolver())
			pctx := xquery.NewContext(catalog.Resolver())
			want, werr := xquery.Eval(expr, ictx)
			got, gerr := p.Eval(pctx)
			if (werr == nil) != (gerr == nil) {
				t.Errorf("%s: error divergence:\ninterpreter: %v\nplan:        %v", label, werr, gerr)
				continue
			}
			if werr != nil {
				if werr.Error() != gerr.Error() {
					t.Errorf("%s: error message divergence:\ninterpreter: %v\nplan:        %v", label, werr, gerr)
				}
				continue
			}
			w, g := planSeq(want), planSeq(got)
			if strings.Join(w, "\n") != strings.Join(g, "\n") {
				t.Errorf("%s: result divergence:\n%s", label, seqDiff(w, g))
			}
			if len(want) > 0 {
				nonEmpty++
			}
		}
	}
	if nonEmpty < len(queries) {
		t.Errorf("only %d of %d cells returned rows — the differential suite is near-vacuous",
			nonEmpty, len(queries)*len(names))
	}
}

// TestScorecardsByteIdenticalWithPrepCache pins the shared-prep cache's
// invisibility: whatever the pool size, and whether or not a PrepCache is
// attached, ranked scorecards are byte-identical to the uncached sequential
// reference. Runs under -race in CI, so cache sharing across the pool is
// also exercised for data races.
func TestScorecardsByteIdenticalWithPrepCache(t *testing.T) {
	ref, err := (&Runner{Queries: Queries(), Concurrency: 1}).EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	want := renderCards(ref)
	for _, workers := range []int{1, 2, 8} {
		for _, prep := range []bool{false, true} {
			r := &Runner{Queries: Queries(), Concurrency: workers}
			if prep {
				r.Prep = NewPrepCache()
			}
			cards, err := r.EvaluateAll(allSystems()...)
			if err != nil {
				t.Fatalf("pool %d prep=%v: %v", workers, prep, err)
			}
			if got := renderCards(cards); got != want {
				t.Errorf("pool %d prep=%v: ranked scorecards differ from uncached sequential reference", workers, prep)
			}
		}
	}
}

// TestPrepCacheComputesExpectedOncePerQuery proves the sharing the cache
// exists for: across a 4-system run, each query's ground truth is computed
// exactly once (12 misses) and served from cache for every other cell
// (36 hits).
func TestPrepCacheComputesExpectedOncePerQuery(t *testing.T) {
	r := NewSequentialRunner()
	if _, err := r.EvaluateAll(allSystems()...); err != nil {
		t.Fatal(err)
	}
	hits, misses := r.Prep.Stats()
	if misses != int64(len(r.Queries)) {
		t.Errorf("expected-answer misses = %d, want %d (once per query)", misses, len(r.Queries))
	}
	if want := int64(3 * len(r.Queries)); hits != want {
		t.Errorf("expected-answer hits = %d, want %d (remaining cells served from cache)", hits, want)
	}
}
