package benchmark

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"thalia/internal/xquery/plan"
)

// TestPlanGoldenDumps pins the compiled plan of each benchmark query as a
// textual tree under testdata/plan/. A diff here means the compiler emits a
// different program for a benchmark query — slot assignment, step order,
// builtin resolution — which should be a deliberate act (rerun with
// -update; the flag is shared with the explain golden suite).
func TestPlanGoldenDumps(t *testing.T) {
	for _, q := range Queries() {
		q := q
		t.Run(fmt.Sprintf("q%02d", q.ID), func(t *testing.T) {
			p, err := plan.CompileQuery(q.XQuery)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			got := p.Dump()
			path := filepath.Join("testdata", "plan", fmt.Sprintf("q%02d.golden", q.ID))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/benchmark -run PlanGolden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("compiled plan drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
