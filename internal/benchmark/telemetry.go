package benchmark

import (
	"fmt"
	"strings"
	"time"

	"thalia/internal/telemetry"
)

// Engine metric names, as they appear in snapshots and /metrics.
const (
	// MetricQueueWait is the histogram of per-cell queue wait: the time
	// between a query×system cell being offered to the pool and a worker
	// picking it up. No labels — it measures the pool, not the workload.
	MetricQueueWait = "engine_queue_wait_seconds"
	// MetricEvalLatency is the histogram of per-cell evaluation latency,
	// labeled by system and query (q01..q12).
	MetricEvalLatency = "engine_eval_seconds"
	// MetricCells counts evaluated cells per system.
	MetricCells = "engine_cells_total"
	// MetricErrors counts cells that degraded to a per-query error
	// (excluding timeouts), per system.
	MetricErrors = "engine_errors_total"
	// MetricTimeouts counts cells that hit the per-query timeout, per
	// system.
	MetricTimeouts = "engine_timeouts_total"
	// MetricBusyWorkers gauges how many pool workers are evaluating a
	// cell right now; MetricWorkers gauges the pool size.
	MetricBusyWorkers = "engine_busy_workers"
	MetricWorkers     = "engine_workers"
)

// QueryLabel renders a query ID the way engine metrics label it: q01..q12.
func QueryLabel(id int) string { return fmt.Sprintf("q%02d", id) }

// recordCell records one finished cell's telemetry. Called by the worker
// loop only when r.Telemetry is non-nil.
func (r *Runner) recordCell(system string, queryID int, res QueryResult, d time.Duration) {
	tel := r.Telemetry
	sys := telemetry.L("system", system)
	tel.Counter(MetricCells, sys).Inc()
	tel.Histogram(MetricEvalLatency, sys, telemetry.L("query", QueryLabel(queryID))).ObserveDuration(d)
	switch {
	case res.Err == "":
	case strings.Contains(res.Err, ErrQueryTimeout.Error()):
		tel.Counter(MetricTimeouts, sys).Inc()
	default:
		tel.Counter(MetricErrors, sys).Inc()
	}
}

// FormatEngineMetrics renders an engine metrics snapshot as the text block
// `thalia bench --telemetry` prints: per-query p95 evaluation latency by
// system, queue-wait quantiles, and error/timeout totals.
func FormatEngineMetrics(snap *telemetry.Snapshot) string {
	var b strings.Builder
	b.WriteString("Engine telemetry\n\n")
	b.WriteString("Per-query evaluation latency (p50 / p95 / p99, ms):\n")
	fmt.Fprintf(&b, "  %-22s %-5s %10s %10s %10s %8s\n", "SYSTEM", "QUERY", "P50", "P95", "P99", "COUNT")
	for _, h := range snap.Histograms {
		if h.Name != MetricEvalLatency {
			continue
		}
		fmt.Fprintf(&b, "  %-22s %-5s %10.3f %10.3f %10.3f %8d\n",
			h.Labels["system"], h.Labels["query"],
			h.P50*1000, h.P95*1000, h.P99*1000, h.Count)
	}
	for _, h := range snap.Histograms {
		if h.Name == MetricQueueWait {
			fmt.Fprintf(&b, "\nQueue wait: p50 %.3fms  p95 %.3fms  p99 %.3fms over %d cells\n",
				h.P50*1000, h.P95*1000, h.P99*1000, h.Count)
		}
	}
	cells, errs, timeouts := int64(0), int64(0), int64(0)
	for _, c := range snap.Counters {
		switch c.Name {
		case MetricCells:
			cells += c.Value
		case MetricErrors:
			errs += c.Value
		case MetricTimeouts:
			timeouts += c.Value
		}
	}
	fmt.Fprintf(&b, "Cells evaluated: %d  errors: %d  timeouts: %d\n", cells, errs, timeouts)
	for _, g := range snap.Gauges {
		if g.Name == MetricWorkers {
			fmt.Fprintf(&b, "Worker pool size: %d\n", g.Value)
		}
	}
	return b.String()
}
