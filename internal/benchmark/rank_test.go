package benchmark

import (
	"testing"

	"thalia/internal/integration"
)

// card builds a scorecard with n correct queries, each charged the given
// per-query complexity via an itemized external function.
func card(name string, correct, perQueryComplexity int) *Scorecard {
	s := &Scorecard{System: name}
	for i := 0; i < correct; i++ {
		s.Results = append(s.Results, QueryResult{
			QueryID: i + 1, Supported: true, Correct: true,
			Functions: []integration.FunctionUse{{Name: "f", Complexity: perQueryComplexity}},
		})
	}
	return s
}

// Equal correctness must fall back to the complexity tie-break: the lower
// complexity score (the more sophisticated system, per the paper) wins.
func TestRankTieBreakByComplexity(t *testing.T) {
	heavy := card("heavy", 9, 3) // 9 correct, complexity 27
	light := card("light", 9, 1) // 9 correct, complexity 9
	top := card("top", 12, 2)    // more correct beats any complexity
	for _, order := range [][]*Scorecard{
		{heavy, light, top},
		{top, light, heavy},
		{light, heavy, top},
	} {
		ranked := Rank(order)
		got := []string{ranked[0].System, ranked[1].System, ranked[2].System}
		if got[0] != "top" || got[1] != "light" || got[2] != "heavy" {
			t.Errorf("Rank(%v...) = %v, want [top light heavy]", order[0].System, got)
		}
	}
}

// A full tie on both correctness and complexity falls back to the system
// name, so ranking is deterministic for any input order.
func TestRankFullTieUsesName(t *testing.T) {
	b := card("beta", 6, 2)
	a := card("alpha", 6, 2)
	ranked := Rank([]*Scorecard{b, a})
	if ranked[0].System != "alpha" || ranked[1].System != "beta" {
		t.Errorf("full tie ranked %s before %s, want name order", ranked[0].System, ranked[1].System)
	}
}

// Rank must not reorder the caller's slice — it returns a fresh ranking.
func TestRankLeavesInputIntact(t *testing.T) {
	in := []*Scorecard{card("z", 1, 1), card("a", 12, 0)}
	_ = Rank(in)
	if in[0].System != "z" || in[1].System != "a" {
		t.Errorf("input slice reordered: %s, %s", in[0].System, in[1].System)
	}
}

// Declined queries contribute no complexity, so a system that declines a
// query does not get penalized on the tie-break for functions it reported.
func TestRankIgnoresDeclinedComplexity(t *testing.T) {
	declined := card("declined", 6, 1)
	declined.Results = append(declined.Results, QueryResult{
		QueryID: 7, Supported: false,
		Functions: []integration.FunctionUse{{Name: "ghost", Complexity: 99}},
	})
	rival := card("rival", 6, 2)
	ranked := Rank([]*Scorecard{rival, declined})
	if ranked[0].System != "declined" {
		t.Errorf("ranked %s first; declined-query complexity should not count", ranked[0].System)
	}
}
