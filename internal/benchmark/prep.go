package benchmark

import (
	"sync"
	"sync/atomic"

	"thalia/internal/integration"
	"thalia/internal/xquery/plan"
)

// PrepCache is the per-run shared-preparation cache: artifacts every cell of
// an evaluation needs but that are identical across cells are built exactly
// once and shared.
//
// Two artifact classes are cached:
//
//   - Expected answers. The ground-truth rows for a query are the same for
//     every system, but the sequential seed path recomputed them per cell —
//     12 queries × 4 systems = 48 generator walks per run. The cache
//     computes each query's rows once; sharing is safe because
//     integration.MatchRows reads its inputs without mutating them.
//   - Compiled query plans. Plans holds a plan.Cache keyed by XQuery source
//     text, so plan-based evaluation (the differential suite, the bench
//     CLI's plan report) compiles each query once per run.
//
// Failed preparations are never cached (the errors-never-cached convention):
// a transient failure is recomputed, not pinned.
//
// A PrepCache is safe for concurrent use by the runner's worker pool. It
// only memoizes; scorecards are byte-identical with and without one.
type PrepCache struct {
	mu    sync.RWMutex
	want  map[int][]integration.Row
	Plans *plan.Cache

	hits   atomic.Int64
	misses atomic.Int64
}

// NewPrepCache returns an empty shared-prep cache.
func NewPrepCache() *PrepCache {
	return &PrepCache{
		want:  make(map[int][]integration.Row),
		Plans: plan.NewCache(),
	}
}

// Expected returns the query's expected integrated rows, computing them on
// first use. Callers must treat the returned rows as read-only — they are
// shared across every cell of the run.
func (p *PrepCache) Expected(q *Query) ([]integration.Row, error) {
	p.mu.RLock()
	rows, ok := p.want[q.ID]
	p.mu.RUnlock()
	if ok {
		p.hits.Add(1)
		return rows, nil
	}
	rows, err := q.Expected()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if prev, ok := p.want[q.ID]; ok {
		rows = prev
	} else {
		p.want[q.ID] = rows
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return rows, nil
}

// Stats reports how many Expected calls hit and missed the cache.
func (p *PrepCache) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// expected resolves a query's ground truth through the runner's prep cache
// when one is attached, or directly on the seed path.
func (r *Runner) expected(q *Query) ([]integration.Row, error) {
	if r.Prep == nil {
		return q.Expected()
	}
	return r.Prep.Expected(q)
}
