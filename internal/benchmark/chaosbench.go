package benchmark

import (
	"fmt"
	"runtime"
	"time"

	"thalia/internal/faultline"
	"thalia/internal/integration"
)

// MeasureChaos times EvaluateAll under the standard fault mix with the
// default resilience policy — the throughput-under-chaos regression
// artifact (BENCH_chaos.json). Beyond timing, every run is validated for
// the graceful-degradation contract: all queries produce a result and
// every cell carries a non-empty attempt history; a violation fails the
// measurement rather than producing a silently wrong baseline.
func MeasureChaos(runs int, poolSizes []int, seed int64, systems ...integration.System) (*Report, error) {
	if runs <= 0 {
		runs = 1
	}
	plan := faultline.StandardMix(seed)
	wrapped := make([]integration.System, len(systems))
	for i, sys := range systems {
		wrapped[i] = faultline.Wrap(sys, plan, nil)
	}
	rep := &Report{Suite: "benchmark_chaos", GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, sys := range systems {
		rep.Systems = append(rep.Systems, sys.Name())
	}
	warm := NewSequentialRunner()
	if _, err := warm.EvaluateAll(systems...); err != nil {
		return nil, fmt.Errorf("benchmark: chaos warm-up: %w", err)
	}
	measure := func(name string, workers int) (Timing, error) {
		r := &Runner{Queries: Queries(), Concurrency: workers, Resilience: DefaultResilience(seed)}
		start := time.Now()
		for i := 0; i < runs; i++ {
			cards, err := r.EvaluateAll(wrapped...)
			if err != nil {
				return Timing{}, fmt.Errorf("benchmark: %s: %w", name, err)
			}
			if err := validateChaosRun(cards, len(r.Queries)); err != nil {
				return Timing{}, fmt.Errorf("benchmark: %s: %w", name, err)
			}
		}
		return Timing{Name: name, Runs: runs, NsPerOp: time.Since(start).Nanoseconds() / int64(runs)}, nil
	}
	seq, err := measure("chaos_evaluate_all/seq", 1)
	if err != nil {
		return nil, err
	}
	rep.Timings = append(rep.Timings, seq)
	best := int64(0)
	for _, workers := range poolSizes {
		if workers <= 1 {
			continue
		}
		par, err := measure(fmt.Sprintf("chaos_evaluate_all/par%d", workers), workers)
		if err != nil {
			return nil, err
		}
		rep.Timings = append(rep.Timings, par)
		if best == 0 || par.NsPerOp < best {
			best = par.NsPerOp
		}
	}
	if best > 0 {
		rep.Speedup = float64(seq.NsPerOp) / float64(best)
	}
	return rep, nil
}

// validateChaosRun enforces graceful degradation on a chaos run: every
// system's card covers every query and every cell has at least one
// recorded attempt. Faults may degrade cells; they must never lose them.
func validateChaosRun(cards []*Scorecard, queries int) error {
	for _, c := range cards {
		if len(c.Results) != queries {
			return fmt.Errorf("chaos run lost cells: %s has %d results, want %d", c.System, len(c.Results), queries)
		}
		for _, r := range c.Results {
			if len(r.Attempts) == 0 {
				return fmt.Errorf("chaos run: %s q%02d has no attempt history", c.System, r.QueryID)
			}
		}
	}
	return nil
}
