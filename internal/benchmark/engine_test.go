package benchmark

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"thalia/internal/cohera"
	"thalia/internal/integration"
	"thalia/internal/iwiz"
	"thalia/internal/minidb"
	"thalia/internal/rewrite"
	"thalia/internal/ufmw"
)

// fakeSystem answers every query via fn; used to exercise engine plumbing
// (timeouts, cancellation, ordering) without the real testbed.
type fakeSystem struct {
	name string
	fn   func(req integration.Request) (*integration.Answer, error)
}

func (f *fakeSystem) Name() string        { return f.name }
func (f *fakeSystem) Description() string { return "fake system for engine tests" }
func (f *fakeSystem) Answer(req integration.Request) (*integration.Answer, error) {
	return f.fn(req)
}

// allSystems returns fresh instances of the four built-in systems.
func allSystems() []integration.System {
	return []integration.System{cohera.New(), iwiz.New(), ufmw.New(), rewrite.NewSystem()}
}

// renderCards renders ranked scorecards to the exact bytes a user sees.
func renderCards(cards []*Scorecard) string {
	var b strings.Builder
	b.WriteString(Comparison(cards))
	for _, c := range cards {
		b.WriteString(c.Format())
	}
	return b.String()
}

// The concurrent engine must be invisible in the output: whatever the pool
// size, the ranked scorecards are byte-identical to the sequential path.
func TestParallelMatchesSequentialByteIdentical(t *testing.T) {
	seq, err := NewSequentialRunner().EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	want := renderCards(seq)
	for _, workers := range []int{0, 2, 3, 7, 16} {
		r := &Runner{Queries: Queries(), Concurrency: workers}
		cards, err := r.EvaluateAll(allSystems()...)
		if err != nil {
			t.Fatalf("concurrency %d: %v", workers, err)
		}
		if got := renderCards(cards); got != want {
			t.Errorf("concurrency %d: ranked scorecards differ from sequential path\nsequential:\n%s\nparallel:\n%s", workers, want, got)
		}
	}
}

// The minidb value index must be invisible end to end: ranked scorecards
// over the full testbed are byte-identical whether cohera's relational
// scans go through the equality index (the default) or the full nested
// loop, at every pool size. This is the across-all-catalogs companion to
// minidb's per-query identity tests.
func TestScorecardsIdenticalWithIndexDisabled(t *testing.T) {
	indexed, err := NewSequentialRunner().EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	want := renderCards(indexed)
	prev := minidb.SetEqIndexDisabled(true)
	defer minidb.SetEqIndexDisabled(prev)
	for _, workers := range []int{1, 2, 8} {
		r := &Runner{Queries: Queries(), Concurrency: workers}
		cards, err := r.EvaluateAll(allSystems()...)
		if err != nil {
			t.Fatalf("concurrency %d: %v", workers, err)
		}
		if got := renderCards(cards); got != want {
			t.Errorf("concurrency %d: scorecards with the index disabled differ from the indexed path\nindexed:\n%s\nfull scan:\n%s", workers, want, got)
		}
	}
}

// Shared System values must survive many concurrent Evaluate calls — the
// concurrency contract of integration.System, enforced under -race.
func TestConcurrentEvaluateStress(t *testing.T) {
	systems := allSystems()
	// Expected correct counts per system name, from Section 4.2.
	wantCorrect := map[string]int{
		"Cohera": 9, "IWIZ": 9, "UF Full Mediator": 12, "Declarative Mediator": 12,
	}
	const callers = 8
	runner := NewRunner()
	var wg sync.WaitGroup
	errs := make(chan error, callers*len(systems))
	for i := 0; i < callers; i++ {
		for _, sys := range systems {
			wg.Add(1)
			go func(sys integration.System) {
				defer wg.Done()
				card, err := runner.Evaluate(sys)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", sys.Name(), err)
					return
				}
				if got := card.CorrectCount(); got != wantCorrect[card.System] {
					errs <- fmt.Errorf("%s scored %d/12, want %d", card.System, got, wantCorrect[card.System])
				}
			}(sys)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Per-query results land in query order no matter which cell finishes
// first, and repeated concurrent runs render identically.
func TestDeterministicOrdering(t *testing.T) {
	jitter := &fakeSystem{name: "jitter", fn: func(req integration.Request) (*integration.Answer, error) {
		// Later queries finish first: completion order is the reverse of
		// submission order, so any ordering-by-completion bug shows up.
		time.Sleep(time.Duration(13-req.QueryID) * time.Millisecond)
		if req.QueryID%3 == 0 {
			return nil, integration.ErrUnsupported
		}
		q, err := QueryByID(req.QueryID)
		if err != nil {
			return nil, err
		}
		rows, err := q.Expected()
		if err != nil {
			return nil, err
		}
		return &integration.Answer{Rows: rows}, nil
	}}
	r := &Runner{Queries: Queries(), Concurrency: 12}
	var first string
	for run := 0; run < 3; run++ {
		card, err := r.Evaluate(jitter)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range card.Results {
			if res.QueryID != i+1 {
				t.Fatalf("run %d: result %d holds query %d", run, i, res.QueryID)
			}
		}
		out := card.Format()
		if first == "" {
			first = out
		} else if out != first {
			t.Errorf("run %d rendered differently:\n%s\nvs\n%s", run, out, first)
		}
	}
}

// A stuck system degrades to a per-query timeout error; the run completes.
func TestQueryTimeout(t *testing.T) {
	slow := &fakeSystem{name: "slow", fn: func(req integration.Request) (*integration.Answer, error) {
		if req.QueryID == 2 {
			time.Sleep(2 * time.Second)
		}
		return &integration.Answer{}, nil
	}}
	r := &Runner{Queries: Queries()[:3], Concurrency: 3, QueryTimeout: 50 * time.Millisecond}
	start := time.Now()
	card, err := r.Evaluate(slow)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout did not bound the run: took %v", elapsed)
	}
	res := card.Result(2)
	if res == nil || !strings.Contains(res.Err, ErrQueryTimeout.Error()) {
		t.Errorf("query 2 result = %+v, want timeout error", res)
	}
	for _, id := range []int{1, 3} {
		if r := card.Result(id); r.Err != "" {
			t.Errorf("query %d should be unaffected, got err %q", id, r.Err)
		}
	}
}

// Cancelling the context abandons the evaluation with ctx.Err().
func TestCancellation(t *testing.T) {
	block := make(chan struct{})
	stuck := &fakeSystem{name: "stuck", fn: func(req integration.Request) (*integration.Answer, error) {
		<-block
		return &integration.Answer{}, nil
	}}
	defer close(block)
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{Queries: Queries(), Concurrency: 2}
	done := make(chan error, 1)
	go func() {
		_, err := r.EvaluateAllContext(ctx, stuck)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the evaluation")
	}
}

// A query whose expected answer cannot be computed degrades to a per-query
// error result instead of sinking the whole evaluation.
func TestBrokenExpectedAnswerDegrades(t *testing.T) {
	good, err := QueryByID(1)
	if err != nil {
		t.Fatal(err)
	}
	broken := &Query{
		ID:    99,
		Name:  "broken",
		truth: func() ([]integration.Row, error) { return nil, errors.New("ground truth unavailable") },
	}
	echo := &fakeSystem{name: "echo", fn: func(req integration.Request) (*integration.Answer, error) {
		rows, err := good.Expected()
		if err != nil {
			return nil, err
		}
		return &integration.Answer{Rows: rows}, nil
	}}
	r := &Runner{Queries: []*Query{good, broken}, Concurrency: 1}
	card, err := r.Evaluate(echo)
	if err != nil {
		t.Fatalf("evaluation aborted: %v", err)
	}
	if res := card.Result(1); !res.Correct {
		t.Errorf("healthy query should still score: %+v", res)
	}
	res := card.Result(99)
	if res == nil || !strings.Contains(res.Err, "expected answer") || res.Correct || res.Supported {
		t.Errorf("broken query result = %+v, want per-query expected-answer error", res)
	}
}
