package benchmark

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"thalia/internal/explain"
	"thalia/internal/faultline"
	"thalia/internal/integration"
	"thalia/internal/telemetry"
)

// ErrQueryTimeout is recorded in a QueryResult when a system's Answer did
// not return within the runner's per-query timeout. The cell scores zero;
// the evaluation of the remaining cells continues.
var ErrQueryTimeout = errors.New("benchmark: query evaluation timed out")

// cell is one query×system evaluation unit of work.
type cell struct {
	sys      int       // index into the systems slice
	query    int       // index into r.Queries
	enqueued time.Time // when the feeder offered the cell (telemetry only)
}

// concurrency resolves the runner's worker-pool size: an explicit positive
// Concurrency wins; otherwise one worker per logical CPU.
func (r *Runner) concurrency() int {
	if r.Concurrency > 0 {
		return r.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// EvaluateContext runs every benchmark query through the system under ctx
// and scores the outcome against the expected integrated answers. Queries
// are fanned out across the runner's worker pool; see EvaluateAllContext
// for the concurrency contract. Result order is always query order,
// regardless of completion order.
func (r *Runner) EvaluateContext(ctx context.Context, sys integration.System) (*Scorecard, error) {
	cards, err := r.EvaluateAllContext(ctx, sys)
	if err != nil {
		return nil, err
	}
	return cards[0], nil
}

// EvaluateAllContext scores several systems concurrently and returns their
// cards ranked. All query×system cells are spread over a pool of
// r.Concurrency workers (default: one per logical CPU), so the systems'
// Answer methods — and the catalog materialization they share — must be
// safe for concurrent use; every built-in system is (see
// integration.System). Cancelling ctx abandons the evaluation and returns
// ctx.Err(). A per-cell timeout (r.QueryTimeout) degrades a stuck query to
// a per-query error instead of hanging the run. The ranked cards and the
// per-query results within them are deterministic: identical to the
// sequential path byte for byte.
func (r *Runner) EvaluateAllContext(ctx context.Context, systems ...integration.System) ([]*Scorecard, error) {
	cards := make([]*Scorecard, len(systems))
	for i, sys := range systems {
		cards[i] = &Scorecard{
			System:      sys.Name(),
			Description: sys.Description(),
			Results:     make([]QueryResult, len(r.Queries)),
		}
	}

	// With a circuit breaker in play, each system's cells must observe the
	// breaker in query order — consecutive-failure counting is
	// order-sensitive, and same-seed runs must see the same breaker
	// trajectory regardless of worker scheduling. gates is a per-system
	// ladder: gates[si][qi] opens once cell (si, qi-1) has completed, so a
	// system's cells run sequentially while systems still run in parallel.
	// This cannot deadlock: the feeder emits cells query-major on an
	// unbuffered channel, so whenever a worker holds cell (si, qi) its
	// predecessor (si, qi-1) is already held (or finished) by another
	// worker, and the earliest incomplete cell per system is never blocked.
	var breakers []*faultline.Breaker
	var gates [][]chan struct{}
	if r.Resilience != nil && r.Resilience.BreakerThreshold > 0 {
		breakers = make([]*faultline.Breaker, len(systems))
		gates = make([][]chan struct{}, len(systems))
		for i := range systems {
			breakers[i] = faultline.NewBreaker(r.Resilience.BreakerThreshold, r.Resilience.BreakerCooldown)
			gates[i] = make([]chan struct{}, len(r.Queries)+1)
			for j := range gates[i] {
				gates[i][j] = make(chan struct{})
			}
			close(gates[i][0])
		}
	} else if r.Resilience != nil {
		// No breaker: cells still retry, against a nil (always-closed)
		// breaker, with no ordering constraint.
		breakers = make([]*faultline.Breaker, len(systems))
	}

	cells := make(chan cell)
	workers := r.concurrency()
	if n := len(systems) * len(r.Queries); workers > n {
		workers = n
	}
	tel := r.Telemetry
	if tel != nil {
		tel.Gauge(MetricWorkers).Set(int64(workers))
	}
	// The flight recorder opens before any worker can emit a cell event,
	// so run_start is always the journal's first record. The telemetry
	// sampler needs a registry to snapshot; without one it stays off.
	jr := r.Journal
	var runStarted time.Time
	stopSampler := func() {}
	if jr != nil {
		names := make([]string, len(systems))
		for i, sys := range systems {
			names[i] = sys.Name()
		}
		jr.RunStart(names, len(r.Queries), workers, r.Resilience != nil)
		runStarted = time.Now()
		if tel != nil {
			var once sync.Once
			stop := startTelemetrySampler(jr, tel)
			stopSampler = func() { once.Do(stop) }
			// A cancelled run still stops the sampler (run_end is the
			// explicit stop on the happy path, so the final snapshot
			// precedes it in the journal).
			defer stopSampler()
		}
	}
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for c := range cells {
				if gates != nil {
					select {
					case <-gates[c.sys][c.query]:
					case <-ctx.Done():
						// The cell still runs (evalCell degrades it to a
						// ctx-error result) and the successor gate still
						// opens, so no sibling worker is left waiting.
					}
				}
				var br *faultline.Breaker
				if breakers != nil {
					br = breakers[c.sys]
				}
				if tel == nil && jr == nil {
					cards[c.sys].Results[c.query] = r.evalCell(ctx, systems[c.sys], r.Queries[c.query], br)
				} else {
					sysName := systems[c.sys].Name()
					queryID := r.Queries[c.query].ID
					var busy *telemetry.Gauge
					if tel != nil {
						tel.Histogram(MetricQueueWait).ObserveDuration(time.Since(c.enqueued))
						busy = tel.Gauge(MetricBusyWorkers)
						busy.Inc()
					}
					if jr != nil {
						jr.CellStart(sysName, queryID)
					}
					start := time.Now()
					res := r.evalCell(ctx, systems[c.sys], r.Queries[c.query], br)
					elapsed := time.Since(start)
					if busy != nil {
						busy.Dec()
					}
					cards[c.sys].Results[c.query] = res
					if tel != nil {
						r.recordCell(sysName, queryID, res, elapsed)
					}
					if jr != nil {
						jr.CellDone(cellEvent(sysName, res, elapsed))
					}
				}
				if gates != nil {
					close(gates[c.sys][c.query+1])
				}
			}
		}()
	}

feed:
	for qi := range r.Queries {
		for si := range systems {
			c := cell{sys: si, query: qi}
			if tel != nil {
				c.enqueued = time.Now()
			}
			select {
			case cells <- c:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(cells)
	for w := 0; w < workers; w++ {
		<-done
	}
	if tel != nil && breakers != nil {
		for i, br := range breakers {
			if br == nil {
				continue
			}
			sys := telemetry.L("system", systems[i].Name())
			tel.Gauge(MetricBreakerState, sys).Set(int64(br.State()))
			tel.Gauge(MetricBreakerOpens, sys).Set(br.Opens())
		}
	}
	if err := ctx.Err(); err != nil {
		// A cancelled run's journal ends without run_end — exactly how a
		// crash looks to the reader, and how the projection reports it.
		return nil, err
	}
	ranked := Rank(cards)
	if jr != nil {
		stopSampler() // final telemetry snapshot lands before run_end
		jr.RunEnd(JournalCards(ranked), time.Since(runStarted))
	}
	return ranked, nil
}

// evalCell evaluates one query against one system and scores it. Every
// failure mode — a broken expected answer, a system error, a timeout —
// degrades to a per-query error result, so one bad cell cannot sink a
// multi-system run. With ExplainFailures on, failed cells (declined,
// errored or incorrect) keep their explain trace.
func (r *Runner) evalCell(ctx context.Context, sys integration.System, q *Query, br *faultline.Breaker) QueryResult {
	if !r.ExplainFailures {
		return r.evalCellRec(ctx, sys, q, nil, br)
	}
	rec := explain.NewRecorder()
	res := r.evalCellRec(ctx, sys, q, rec, br)
	if res.Err != "" || !res.Correct {
		res.Explain = rec.Trace()
	} else {
		// Seal a passing cell's recorder so a timeout-abandoned goroutine
		// stops accumulating spans nobody will read.
		rec.Seal()
	}
	return res
}

// evalCellRec is evalCell's core. A non-nil rec wraps the evaluation in a
// root eval span, threads the recorder to the system through the request
// context, and measures the Answer latency into EvalNanos; a nil rec takes
// the original zero-overhead path.
func (r *Runner) evalCellRec(ctx context.Context, sys integration.System, q *Query, rec *explain.Recorder, br *faultline.Breaker) QueryResult {
	res := QueryResult{QueryID: q.ID}
	if err := ctx.Err(); err != nil {
		res.Err = err.Error()
		return res
	}
	want, err := r.expected(q)
	if err != nil {
		res.Err = fmt.Sprintf("expected answer: %v", err)
		return res
	}
	req := q.Request()
	var root *explain.Span
	var start time.Time
	if rec != nil {
		root = rec.Begin(explain.KindEval,
			fmt.Sprintf("q%02d %s", q.ID, sys.Name()),
			explain.A("hetero", q.Case.Name()))
		req = req.WithContext(explain.NewContext(ctx, rec))
		start = time.Now()
	}
	var ans *integration.Answer
	if r.Resilience != nil {
		var attempts []Attempt
		ans, attempts, err = r.answerResilient(ctx, sys, req, rec, br)
		res.Attempts = attempts
		if err != nil && !errors.Is(err, integration.ErrUnsupported) && ctx.Err() == nil {
			// Exhausted retries (or a permanent fault): the cell degrades
			// to an error result instead of sinking the run.
			res.Degraded = true
			if r.Telemetry != nil {
				r.Telemetry.Counter(MetricDegraded, telemetry.L("system", sys.Name())).Inc()
			}
		}
	} else {
		ans, err = r.answer(ctx, sys, req)
	}
	if rec != nil {
		res.EvalNanos = time.Since(start).Nanoseconds()
		root.End()
	}
	switch {
	case errors.Is(err, integration.ErrUnsupported):
		// Declined: no point, no complexity charge.
	case err != nil:
		res.Supported = true
		res.Err = err.Error()
	default:
		res.Supported = true
		res.Effort = ans.Effort
		res.Functions = ans.Functions
		res.Missing, res.Extra = integration.MatchRows(want, ans.Rows)
		res.Correct = len(res.Missing) == 0 && len(res.Extra) == 0
	}
	return res
}

// Explain evaluates a single query against a single system with an explain
// recorder attached and returns the scored result together with its trace,
// regardless of outcome — the engine behind `thalia explain` and the
// website's /debug/explain endpoint.
func (r *Runner) Explain(ctx context.Context, sys integration.System, queryID int) (QueryResult, *explain.Trace, error) {
	for _, q := range r.Queries {
		if q.ID == queryID {
			rec := explain.NewRecorder()
			var br *faultline.Breaker
			if r.Resilience != nil && r.Resilience.BreakerThreshold > 0 {
				br = faultline.NewBreaker(r.Resilience.BreakerThreshold, r.Resilience.BreakerCooldown)
			}
			res := r.evalCellRec(ctx, sys, q, rec, br)
			tr := rec.Trace()
			res.Explain = tr
			return res, tr, nil
		}
	}
	return QueryResult{}, nil, fmt.Errorf("benchmark: no query %d in this runner", queryID)
}

// answer invokes sys.Answer, bounding it by the runner's per-query timeout
// and the context. Answer does not take a context (systems model legacy
// engines), so a cell that overruns is abandoned: its goroutine finishes in
// the background and its late result is dropped.
func (r *Runner) answer(ctx context.Context, sys integration.System, req integration.Request) (*integration.Answer, error) {
	return r.answerWithin(ctx, sys, req, r.QueryTimeout)
}

// answerWithin is answer's core with an explicit deadline: the resilience
// loop passes its per-attempt timeout (never larger than QueryTimeout),
// the plain path passes QueryTimeout itself.
func (r *Runner) answerWithin(ctx context.Context, sys integration.System, req integration.Request, d time.Duration) (*integration.Answer, error) {
	if d <= 0 && ctx.Done() == nil {
		return sys.Answer(req)
	}
	type outcome struct {
		ans *integration.Answer
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		ans, err := sys.Answer(req)
		ch <- outcome{ans, err}
	}()
	var timeout <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case out := <-ch:
		return out.ans, out.err
	case <-timeout:
		return nil, fmt.Errorf("%w after %v (query %d)", ErrQueryTimeout, d, req.QueryID)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
