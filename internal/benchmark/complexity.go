package benchmark

// This file exports the benchmark's hand-assigned per-query complexity
// levels so that tools (thalia-vet's complexity cross-check in
// internal/analysis) can diff them against automatically derived estimates.
// The levels reproduce Section 3's external-function complexity convention
// (low 1, medium 2, high 3) as applied by the paper's Section 4.2
// evaluation: a query's level is the complexity of the hardest external
// function the reference mediator (internal/ufmw, which scores 12/12)
// needs to resolve the query's heterogeneity. They must stay consistent
// with the transform complexities declared in internal/mapping's registry
// and internal/rewrite's transform catalog — that consistency is exactly
// what the cross-check enforces.

// ComplexityLevel grades the integration effort a benchmark query demands.
type ComplexityLevel int

// Levels, in increasing order of required custom code.
const (
	// ComplexityNone: resolvable by declarative renaming alone.
	ComplexityNone ComplexityLevel = iota
	// ComplexityLow: a simple value conversion (paper weight 1).
	ComplexityLow
	// ComplexityMedium: structural decomposition or inference (weight 2).
	ComplexityMedium
	// ComplexityHigh: semantic translation or dual-NULL reasoning (weight 3).
	ComplexityHigh
)

// String names the level the way the paper's prose does.
func (l ComplexityLevel) String() string {
	switch l {
	case ComplexityNone:
		return "none"
	case ComplexityLow:
		return "low"
	case ComplexityMedium:
		return "medium"
	case ComplexityHigh:
		return "high"
	default:
		return "unknown"
	}
}

// HandAssignedComplexity returns the hand-assigned complexity level of each
// benchmark query, keyed by query ID. The map is rebuilt on every call so
// callers may not mutate shared state.
//
// Rationale per query (heterogeneity → hardest external function in the
// reference mediator):
//
//	 1 synonyms                → rename only (no function)           none
//	 2 simple mapping          → range_to_24h (1)                    low
//	 3 union types             → flatten_union (2)                   medium
//	 4 complex mappings        → umfang_to_units + translate (3)     high
//	 5 language expression     → translate_de_en (3)                 high
//	 6 nulls                   → null_marker (2)                     medium
//	 7 virtual columns         → infer_prereq (2)                    medium
//	 8 semantic incompat.      → dual_null + translate (3)           high
//	 9 same attr, diff struct  → decompose_brown_title (2)           medium
//	10 handling sets           → umd_section_teacher (2)             medium
//	11 attr name ≠ semantics   → term_columns_to_instructor (2)      medium
//	12 attribute composition   → decompose_brown_title (2)           medium
func HandAssignedComplexity() map[int]ComplexityLevel {
	return map[int]ComplexityLevel{
		1:  ComplexityNone,
		2:  ComplexityLow,
		3:  ComplexityMedium,
		4:  ComplexityHigh,
		5:  ComplexityHigh,
		6:  ComplexityMedium,
		7:  ComplexityMedium,
		8:  ComplexityHigh,
		9:  ComplexityMedium,
		10: ComplexityMedium,
		11: ComplexityMedium,
		12: ComplexityMedium,
	}
}
