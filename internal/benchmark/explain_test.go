package benchmark

import (
	"context"
	"testing"
	"time"
)

// The explain machinery must observe without perturbing: turning
// ExplainFailures on may not change a single byte of the ranked scorecards.
// This is the same contract the Telemetry field carries — traces live in
// fields Format never prints.
func TestExplainFailuresByteIdenticalScorecards(t *testing.T) {
	plain, err := NewSequentialRunner().EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	recording := &Runner{Queries: Queries(), Concurrency: 1, ExplainFailures: true}
	traced, err := recording.EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderCards(traced), renderCards(plain); got != want {
		t.Errorf("ExplainFailures changed the rendered scorecards:\n--- with ---\n%s\n--- without ---\n%s", got, want)
	}
}

// With ExplainFailures on, every failed conformance cell must carry a
// non-empty trace that accounts for the cell's latency: the leaf spans sum
// to within 10% of the measured eval time (plus a small absolute epsilon
// for scheduler jitter on sub-millisecond cells). Passing cells must stay
// trace-free — the mode is failure forensics, not a firehose.
func TestExplainFailuresAttachesAccountedTraces(t *testing.T) {
	r := &Runner{Queries: Queries(), Concurrency: 1, ExplainFailures: true}
	cards, err := r.EvaluateAll(allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, card := range cards {
		for _, res := range card.Results {
			failed += checkCellTrace(t, card.System, res)
		}
	}
	// Cohera and IWIZ each decline queries 4, 5 and 8.
	if failed != 6 {
		t.Errorf("saw %d failed cells, want 6", failed)
	}
}

// checkCellTrace validates one cell's trace attachment and returns 1 if
// the cell counts as failed.
func checkCellTrace(t *testing.T, system string, res QueryResult) int {
	t.Helper()
	ok := res.Err == "" && res.Correct
	if ok {
		if res.Explain != nil {
			t.Errorf("%s q%d passed but carries a trace", system, res.QueryID)
		}
		return 0
	}
	if res.Explain == nil || res.Explain.Empty() {
		t.Errorf("%s q%d failed without a trace", system, res.QueryID)
		return 1
	}
	leaf := res.Explain.LeafNanos()
	// 10% relative tolerance, 2ms absolute floor: declined cells answer in
	// microseconds, where a single descheduling between the span's clock
	// reads and the engine's dwarfs the relative bound.
	tol := res.EvalNanos / 10
	if floor := int64(2 * time.Millisecond); tol < floor {
		tol = floor
	}
	if diff := leaf - res.EvalNanos; diff < -tol || diff > tol {
		t.Errorf("%s q%d: leaf spans sum to %v, eval took %v (tolerance %v)",
			system, res.QueryID, time.Duration(leaf), time.Duration(res.EvalNanos), time.Duration(tol))
	}
	return 1
}

// BenchmarkEvalCellExplainOff pins the scoreboard hot loop with recording
// disabled — the path the zero-allocation contract protects. Compare with
// BenchmarkEvalCellExplainOn to see the cost recording adds.
func BenchmarkEvalCellExplainOff(b *testing.B) { benchmarkEvalCell(b, false) }

// BenchmarkEvalCellExplainOn measures the same cell with ExplainFailures
// recording (query 4 on Cohera: a declined, therefore traced, cell).
func BenchmarkEvalCellExplainOn(b *testing.B) { benchmarkEvalCell(b, true) }

func benchmarkEvalCell(b *testing.B, explainFailures bool) {
	r := &Runner{Queries: Queries(), ExplainFailures: explainFailures}
	sys := allSystems()[0]
	q := r.Queries[3] // q4: declined by Cohera, exercises the failure path
	ctx := context.Background()
	r.evalCell(ctx, sys, q, nil) // warm the system's one-time build
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.evalCell(ctx, sys, q, nil)
	}
}
