package benchmark

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestBenchReportJSON runs the regression harness end-to-end and checks the
// emitted BENCH_*.json artifact round-trips with sane contents. Timings are
// recorded, not asserted — CI machines are too noisy to pin a speedup.
// Set THALIA_BENCH_DIR to keep the artifact (e.g. for CI upload).
func TestBenchReportJSON(t *testing.T) {
	dir := os.Getenv("THALIA_BENCH_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	pool := runtime.GOMAXPROCS(0)
	if pool < 2 {
		pool = 2
	}
	rep, err := MeasureEngine(1, []int{pool}, allSystems()...)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_engine.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if got.Suite != "benchmark_engine" {
		t.Errorf("suite = %q, want benchmark_engine", got.Suite)
	}
	if len(got.Systems) != 4 {
		t.Errorf("systems = %v, want the four testbed systems", got.Systems)
	}
	if len(got.Timings) < 2 {
		t.Fatalf("timings = %v, want sequential plus at least one pool size", got.Timings)
	}
	if got.Timings[0].Name != "evaluate_all/seq" {
		t.Errorf("first timing = %q, want evaluate_all/seq", got.Timings[0].Name)
	}
	for _, tm := range got.Timings {
		if tm.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op = %d, want > 0", tm.Name, tm.NsPerOp)
		}
	}
	if got.Speedup <= 0 {
		t.Errorf("speedup = %v, want > 0", got.Speedup)
	}
	t.Logf("speedup %.2fx at gomaxprocs=%d", got.Speedup, got.GoMaxProcs)
}

func BenchmarkEvaluateAllSequential(b *testing.B) {
	systems := allSystems()
	r := NewSequentialRunner()
	if _, err := r.EvaluateAll(systems...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.EvaluateAll(systems...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateAllParallel(b *testing.B) {
	systems := allSystems()
	r := NewRunner()
	if _, err := r.EvaluateAll(systems...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.EvaluateAll(systems...); err != nil {
			b.Fatal(err)
		}
	}
}
