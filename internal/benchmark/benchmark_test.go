package benchmark

import (
	"strings"
	"testing"

	"thalia/internal/cohera"
	"thalia/internal/hetero"
	"thalia/internal/integration"
	"thalia/internal/ufmw"
)

func TestTwelveQueries(t *testing.T) {
	qs := Queries()
	if len(qs) != 12 {
		t.Fatalf("got %d queries, want 12", len(qs))
	}
	for i, q := range qs {
		if q.ID != i+1 {
			t.Errorf("query %d has ID %d", i, q.ID)
		}
		if int(q.Case) != q.ID {
			t.Errorf("query %d exercises %v", q.ID, q.Case)
		}
		if q.XQuery == "" || q.PaperXQuery == "" || q.Reference == "" || q.ChallengeSource == "" {
			t.Errorf("query %d underspecified", q.ID)
		}
		if len(q.Fields) < 2 || q.Fields[0] != "source" {
			t.Errorf("query %d fields %v", q.ID, q.Fields)
		}
	}
	if _, err := QueryByID(13); err == nil {
		t.Error("expected error for query 13")
	}
	q5, err := QueryByID(5)
	if err != nil || q5.Case != hetero.LanguageExpression {
		t.Errorf("QueryByID(5) = %v, %v", q5, err)
	}
}

func TestExpectedAnswersNonEmpty(t *testing.T) {
	for _, q := range Queries() {
		rows, err := q.Expected()
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		if len(rows) == 0 {
			t.Errorf("query %d has an empty expected answer — the benchmark would be vacuous", q.ID)
		}
		// Every expected row speaks the query's field vocabulary.
		allowed := map[string]bool{}
		for _, f := range q.Fields {
			allowed[f] = true
		}
		for _, r := range rows {
			if r["source"] != q.Reference && r["source"] != q.ChallengeSource {
				t.Errorf("query %d: row from unexpected source %q", q.ID, r["source"])
			}
			for f := range r {
				if !allowed[f] {
					t.Errorf("query %d: row field %q not in vocabulary %v", q.ID, f, q.Fields)
				}
			}
		}
	}
}

// Both sides of every query must contribute to the expected answer —
// otherwise the challenge schema would not actually be tested.
func TestExpectedAnswersCoverBothSources(t *testing.T) {
	for _, q := range Queries() {
		rows, err := q.Expected()
		if err != nil {
			t.Fatal(err)
		}
		bySource := map[string]int{}
		for _, r := range rows {
			bySource[r["source"]]++
		}
		if bySource[q.Reference] == 0 {
			t.Errorf("query %d: no expected rows from reference %s", q.ID, q.Reference)
		}
		if bySource[q.ChallengeSource] == 0 {
			t.Errorf("query %d: no expected rows from challenge %s", q.ID, q.ChallengeSource)
		}
	}
}

// The paper's key sample answers must be present in the expected rows.
func TestExpectedAnswerSpotChecks(t *testing.T) {
	find := func(id int, match integration.Row) bool {
		q, err := QueryByID(id)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := q.Expected()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			ok := true
			for k, v := range match {
				if r[k] != v {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		t.Logf("query %d rows: %v", id, rows)
		return false
	}
	checks := []struct {
		id    int
		match integration.Row
	}{
		{1, integration.Row{"source": "gatech", "instructor": "Mark"}},
		{1, integration.Row{"source": "cmu", "course": "15-567"}},
		{2, integration.Row{"source": "cmu", "course": "15-415", "time": "13:30-14:50"}},
		{3, integration.Row{"source": "umd", "course": "CMSC420"}},
		{3, integration.Row{"source": "brown", "course": "CS016"}},
		{4, integration.Row{"source": "cmu", "course": "15-415", "units": "12"}},
		{4, integration.Row{"source": "eth", "course": "251-0317", "units": "12"}},
		{5, integration.Row{"source": "eth", "title": "XML und Datenbanken"}},
		{6, integration.Row{"source": "toronto", "textbook": "'Model Checking', by Clarke, Grumberg, Peled, 1999, MIT Press."}},
		{6, integration.Row{"source": "cmu", "course": "15-817", "textbook": ""}},
		{7, integration.Row{"source": "umich", "course": "EECS484"}},
		{7, integration.Row{"source": "cmu", "course": "15-415"}},
		{8, integration.Row{"source": "gatech", "course": "CS4400", "restriction": "JR or SR"}},
		{8, integration.Row{"source": "eth", "restriction": "(not applicable)"}},
		{9, integration.Row{"source": "brown", "room": "CIT 165, Labs in Sunlab"}},
		{9, integration.Row{"source": "umd", "course": "CMSC435", "room": "KEY0106"}},
		{10, integration.Row{"source": "cmu", "course": "15-712", "instructor": "Song"}},
		{10, integration.Row{"source": "cmu", "course": "15-712", "instructor": "Wing"}},
		{10, integration.Row{"source": "umd", "instructor": "Memon, A."}},
		{11, integration.Row{"source": "cmu", "instructor": "Ailamaki"}},
		{11, integration.Row{"source": "ucsd", "course": "CSE232", "instructor": "Yannis"}},
		{11, integration.Row{"source": "ucsd", "course": "CSE232", "instructor": "Deutsch"}},
		{12, integration.Row{"source": "cmu", "course": "15-744", "day": "F"}},
		{12, integration.Row{"source": "brown", "course": "CS168", "day": "M", "time": "15:00-17:30"}},
	}
	for _, c := range checks {
		if !find(c.id, c.match) {
			t.Errorf("query %d: expected answer missing row matching %v", c.id, c.match)
		}
	}
}

// The full mediator is the existence proof that every expected answer is
// reachable from the extracted XML: it must score 12/12.
func TestFullMediatorScoresPerfect(t *testing.T) {
	card, err := NewRunner().Evaluate(ufmw.New())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range card.Results {
		if !r.Correct {
			t.Errorf("query %d incorrect: err=%q missing=%v extra=%v",
				r.QueryID, r.Err, r.Missing, r.Extra)
		}
	}
	if card.CorrectCount() != 12 {
		t.Errorf("full mediator scored %d/12", card.CorrectCount())
	}
	if card.ComplexityScore() == 0 {
		t.Error("full mediator should be charged for its external functions")
	}
}

func TestScoringFunction(t *testing.T) {
	r := QueryResult{Supported: true, Functions: []integration.FunctionUse{
		{Name: "a", Complexity: 1}, {Name: "b", Complexity: 3},
	}}
	if r.Complexity() != 4 {
		t.Errorf("complexity = %d", r.Complexity())
	}
	r2 := QueryResult{Supported: true, Effort: integration.EffortModerate}
	if r2.Complexity() != 2 {
		t.Errorf("effort fallback = %d", r2.Complexity())
	}
	r3 := QueryResult{Supported: false, Functions: r.Functions}
	if r3.Complexity() != 0 {
		t.Error("declined queries carry no complexity")
	}
}

func TestRanking(t *testing.T) {
	a := &Scorecard{System: "A", Results: []QueryResult{
		{QueryID: 1, Supported: true, Correct: true, Effort: integration.EffortModerate},
		{QueryID: 2, Supported: true, Correct: true, Effort: integration.EffortModerate},
	}}
	b := &Scorecard{System: "B", Results: []QueryResult{
		{QueryID: 1, Supported: true, Correct: true, Effort: integration.EffortNone},
		{QueryID: 2, Supported: true, Correct: true, Effort: integration.EffortSmall},
	}}
	c := &Scorecard{System: "C", Results: []QueryResult{
		{QueryID: 1, Supported: true, Correct: true, Effort: integration.EffortLarge},
	}}
	ranked := Rank([]*Scorecard{a, b, c})
	// B and A tie on correctness (2); B has lower complexity → more
	// sophisticated → ranks first. C has fewer correct → last.
	if ranked[0].System != "B" || ranked[1].System != "A" || ranked[2].System != "C" {
		t.Errorf("ranking: %s, %s, %s", ranked[0].System, ranked[1].System, ranked[2].System)
	}
}

func TestHonorRoll(t *testing.T) {
	h := &HonorRoll{}
	h.AddEntry(HonorRollEntry{System: "X", Group: "g1", Correct: 9, Complexity: 14})
	h.AddEntry(HonorRollEntry{System: "Y", Group: "g2", Correct: 9, Complexity: 9})
	h.AddEntry(HonorRollEntry{System: "Z", Group: "g3", Correct: 12, Complexity: 25})
	if h.Entries[0].System != "Z" || h.Entries[1].System != "Y" || h.Entries[2].System != "X" {
		t.Errorf("honor roll order: %+v", h.Entries)
	}
	out := h.Format()
	if !strings.Contains(out, "Honor Roll") || !strings.Contains(out, "Z") {
		t.Errorf("format: %s", out)
	}
}

func TestScorecardFormat(t *testing.T) {
	card, err := NewRunner().Evaluate(ufmw.New())
	if err != nil {
		t.Fatal(err)
	}
	out := card.Format()
	for _, want := range []string{"UF Full Mediator", "Query  1", "Score: 12/12"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	if sum := Summary(card); !strings.Contains(sum, "12/12 correct") {
		t.Errorf("Summary: %s", sum)
	}
}

// The group breakdown localizes where systems fall down: both legacy
// systems lose exactly two attribute-group queries (4, 5) and one
// missing-data query (8), and sweep the structural group.
func TestGroupBreakdown(t *testing.T) {
	card, err := NewRunner().Evaluate(ufmw.New())
	if err != nil {
		t.Fatal(err)
	}
	groups := card.GroupBreakdown()
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	wantTotals := []int{5, 3, 4} // the paper's 5 attribute + 3 missing + 4 structural
	for i, g := range groups {
		if g.Total != wantTotals[i] {
			t.Errorf("group %v total = %d, want %d", g.Group, g.Total, wantTotals[i])
		}
		if g.Correct != g.Total {
			t.Errorf("full mediator should sweep group %v: %d/%d", g.Group, g.Correct, g.Total)
		}
	}
}

func TestGroupBreakdownLegacySystems(t *testing.T) {
	card, err := NewRunner().Evaluate(cohera.New())
	if err != nil {
		t.Fatal(err)
	}
	groups := card.GroupBreakdown()
	// Cohera: attribute group loses 4 and 5 → 3/5; missing data loses 8 →
	// 2/3; structural is swept → 4/4.
	if groups[0].Correct != 3 || groups[1].Correct != 2 || groups[2].Correct != 4 {
		t.Errorf("cohera breakdown: %+v", groups)
	}
}
