package benchmark

import (
	"time"

	"thalia/internal/journal"
	"thalia/internal/telemetry"
)

// cellEvent converts one finished cell into its journal payload. Only the
// deterministic outcome facts plus the measured latency and (for failed
// cells that carry a trace) the explain digest are recorded — full explain
// traces and row-level diffs stay out of the journal to keep events
// compact; `thalia bench --explain-dir` still captures full traces.
func cellEvent(system string, res QueryResult, latency time.Duration) journal.Cell {
	c := journal.Cell{
		System:     system,
		Query:      res.QueryID,
		Supported:  res.Supported,
		Correct:    res.Correct,
		Effort:     res.Effort.String(),
		Complexity: res.Complexity(),
		Err:        res.Err,
		Degraded:   res.Degraded,
		Missing:    len(res.Missing),
		Extra:      len(res.Extra),
		LatencyNS:  latency.Nanoseconds(),
	}
	if len(res.Attempts) > 0 {
		c.Attempts = make([]journal.Attempt, len(res.Attempts))
		for i, a := range res.Attempts {
			c.Attempts[i] = journal.Attempt{
				N: a.N, Err: a.Err, Transient: a.Transient,
				BackoffNS: a.Backoff.Nanoseconds(), Shed: a.Shed,
			}
		}
	}
	if res.Explain != nil && !res.Explain.Empty() {
		c.ExplainDigest = res.Explain.Digest()
	}
	return c
}

// JournalCards converts ranked scorecards into their journal form — the
// cards the run-end digest is computed over. The conversion is cellEvent
// itself, so a projection that rebuilds cards from the emitted cell events
// reproduces these structurally, latency aside (which the digest excludes).
func JournalCards(ranked []*Scorecard) []*journal.Card {
	out := make([]*journal.Card, len(ranked))
	for i, card := range ranked {
		jc := &journal.Card{System: card.System, Cells: make([]journal.Cell, len(card.Results))}
		for j, res := range card.Results {
			jc.Cells[j] = cellEvent(card.System, res, 0)
		}
		out[i] = jc
	}
	return out
}

// ScorecardDigest fingerprints ranked scorecards the way run-end events
// record them: the journal digest of their converted cards.
func ScorecardDigest(ranked []*Scorecard) string {
	return journal.DigestCards(JournalCards(ranked))
}

// startTelemetrySampler launches the journal's periodic telemetry sampling:
// every Recorder interval the runtime vitals are captured into the run's
// registry and a full snapshot is appended as a telemetry event. The
// returned stop function halts the sampler and waits for it to exit, then
// appends one final snapshot so even runs shorter than the interval journal
// their metrics.
func startTelemetrySampler(jr *journal.Recorder, tel *telemetry.Registry) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(jr.Interval())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				telemetry.CaptureRuntime(tel)
				jr.Telemetry(tel.Snapshot())
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		telemetry.CaptureRuntime(tel)
		jr.Telemetry(tel.Snapshot())
	}
}
