package benchmark

import (
	"fmt"
	"sort"
	"strings"

	"thalia/internal/explain"
	"thalia/internal/hetero"
	"thalia/internal/integration"
)

// QueryResult is the outcome of one benchmark query for one system.
type QueryResult struct {
	QueryID int
	// Supported is false when the system declined the query
	// (integration.ErrUnsupported) — it scores no point.
	Supported bool
	// Correct means the integrated rows matched the expected answer exactly
	// (as a multiset).
	Correct bool
	// Effort is the system's self-reported programmatic effort.
	Effort integration.Effort
	// Functions are the external functions the system invoked.
	Functions []integration.FunctionUse
	// Missing and Extra diagnose an incorrect answer.
	Missing []integration.Row
	Extra   []integration.Row
	// Err records an evaluation failure other than ErrUnsupported.
	Err string
	// Explain is the cell's explain trace, populated only when the runner's
	// ExplainFailures mode is on and the cell failed (or by Runner.Explain).
	// EvalNanos is the measured Answer latency for the same recording; both
	// stay out of Format so scorecards are unchanged by recording.
	Explain   *explain.Trace
	EvalNanos int64
	// Degraded marks a cell that exhausted its resilience-policy retries
	// (or hit a permanent fault); Attempts is its attempt history. Both
	// are populated only when the runner has a Resilience policy, and both
	// stay out of Format — FormatChaos renders them — so plain scorecards
	// are unchanged by the policy.
	Degraded bool
	Attempts []Attempt
}

// Complexity is the query's contribution to the complexity score: the sum
// of the complexities of the external functions invoked, or (when a system
// reports effort without itemized functions) the effort's complexity.
func (r *QueryResult) Complexity() int {
	if !r.Supported {
		return 0
	}
	if len(r.Functions) == 0 {
		return r.Effort.Complexity()
	}
	total := 0
	for _, f := range r.Functions {
		total += f.Complexity
	}
	return total
}

// Scorecard is a system's full benchmark outcome.
type Scorecard struct {
	System      string
	Description string
	Results     []QueryResult
}

// CorrectCount is the paper's primary score: one point per correctly
// answered query, out of 12.
func (s *Scorecard) CorrectCount() int {
	n := 0
	for _, r := range s.Results {
		if r.Correct {
			n++
		}
	}
	return n
}

// SupportedCount counts the queries the system attempted.
func (s *Scorecard) SupportedCount() int {
	n := 0
	for _, r := range s.Results {
		if r.Supported {
			n++
		}
	}
	return n
}

// NoCodeCount counts supported queries answered with no custom code.
func (s *Scorecard) NoCodeCount() int {
	n := 0
	for _, r := range s.Results {
		if r.Supported && r.Effort == integration.EffortNone {
			n++
		}
	}
	return n
}

// ComplexityScore is the tie-breaking score: the total complexity of all
// external functions invoked. Per the paper, the higher the complexity
// score, the lower the level of sophistication of the integration system.
func (s *Scorecard) ComplexityScore() int {
	total := 0
	for _, r := range s.Results {
		total += r.Complexity()
	}
	return total
}

// Result returns the outcome for a query id, or nil.
func (s *Scorecard) Result(queryID int) *QueryResult {
	for i := range s.Results {
		if s.Results[i].QueryID == queryID {
			return &s.Results[i]
		}
	}
	return nil
}

// Rank orders scorecards by the paper's scheme: more correct answers first;
// among equals, the lower complexity score (more sophistication) wins; name
// breaks any remaining tie deterministically.
func Rank(cards []*Scorecard) []*Scorecard {
	out := append([]*Scorecard(nil), cards...)
	sort.SliceStable(out, func(i, j int) bool {
		if a, b := out[i].CorrectCount(), out[j].CorrectCount(); a != b {
			return a > b
		}
		if a, b := out[i].ComplexityScore(), out[j].ComplexityScore(); a != b {
			return a < b
		}
		return out[i].System < out[j].System
	})
	return out
}

// Format renders a scorecard as the per-query table of Section 4.2.
func (s *Scorecard) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "System: %s\n", s.System)
	if s.Description != "" {
		fmt.Fprintf(&b, "  %s\n", s.Description)
	}
	for _, r := range s.Results {
		status := "unsupported"
		if r.Supported {
			if r.Correct {
				status = "correct"
			} else {
				status = "INCORRECT"
			}
		}
		fmt.Fprintf(&b, "  Query %2d: %-11s  effort: %-25s complexity: %d",
			r.QueryID, status, r.Effort, r.Complexity())
		if len(r.Functions) > 0 {
			names := make([]string, len(r.Functions))
			for i, f := range r.Functions {
				names[i] = f.Name
			}
			fmt.Fprintf(&b, "  functions: %s", strings.Join(names, ", "))
		}
		if r.Err != "" {
			fmt.Fprintf(&b, "  error: %s", r.Err)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  Score: %d/%d correct, complexity score %d (%d queries with no code)\n",
		s.CorrectCount(), len(s.Results), s.ComplexityScore(), s.NoCodeCount())
	return b.String()
}

// HonorRollEntry is one uploaded benchmark score.
type HonorRollEntry struct {
	System     string
	Group      string // the research group or vendor that uploaded the score
	Correct    int
	Complexity int
}

// HonorRoll is the public ranking the THALIA web site maintains.
type HonorRoll struct {
	Entries []HonorRollEntry
}

// Add inserts an entry from a scorecard.
func (h *HonorRoll) Add(group string, s *Scorecard) {
	h.Entries = append(h.Entries, HonorRollEntry{
		System:     s.System,
		Group:      group,
		Correct:    s.CorrectCount(),
		Complexity: s.ComplexityScore(),
	})
	h.sort()
}

// AddEntry inserts a pre-computed entry (scores uploaded by third parties).
func (h *HonorRoll) AddEntry(e HonorRollEntry) {
	h.Entries = append(h.Entries, e)
	h.sort()
}

func (h *HonorRoll) sort() {
	sort.SliceStable(h.Entries, func(i, j int) bool {
		if h.Entries[i].Correct != h.Entries[j].Correct {
			return h.Entries[i].Correct > h.Entries[j].Correct
		}
		if h.Entries[i].Complexity != h.Entries[j].Complexity {
			return h.Entries[i].Complexity < h.Entries[j].Complexity
		}
		return h.Entries[i].System < h.Entries[j].System
	})
}

// Format renders the honor roll as a text table.
func (h *HonorRoll) Format() string {
	var b strings.Builder
	b.WriteString("THALIA Honor Roll\n")
	b.WriteString("rank  system                      group                 correct  complexity\n")
	for i, e := range h.Entries {
		fmt.Fprintf(&b, "%4d  %-26s  %-20s  %5d/12  %10d\n", i+1, e.System, e.Group, e.Correct, e.Complexity)
	}
	return b.String()
}

// GroupScore is the per-group breakdown of a scorecard, following the
// paper's three heterogeneity groups.
type GroupScore struct {
	Group     hetero.Group
	Correct   int
	Supported int
	Total     int
}

// GroupBreakdown reports correctness per heterogeneity group — useful for
// seeing *where* a system falls down (the paper's hard core is the tail of
// the attribute group and the missing-data group).
func (s *Scorecard) GroupBreakdown() []GroupScore {
	byGroup := map[hetero.Group]*GroupScore{}
	order := []hetero.Group{hetero.GroupAttribute, hetero.GroupMissingData, hetero.GroupStructural}
	for _, g := range order {
		byGroup[g] = &GroupScore{Group: g}
	}
	for _, r := range s.Results {
		g := hetero.Case(r.QueryID).Group()
		gs := byGroup[g]
		gs.Total++
		if r.Supported {
			gs.Supported++
		}
		if r.Correct {
			gs.Correct++
		}
	}
	out := make([]GroupScore, len(order))
	for i, g := range order {
		out[i] = *byGroup[g]
	}
	return out
}
