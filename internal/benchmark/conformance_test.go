package benchmark

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"thalia/internal/integration"
)

// rowDiff renders a minimal, deterministic diff between two row sets: the
// rows only the left side has ("-") and the rows only the right side has
// ("+"), sorted canonically, truncated past a handful of lines.
func rowDiff(onlyLeft, onlyRight []integration.Row) string {
	var lines []string
	for _, r := range onlyLeft {
		lines = append(lines, "- "+r.Key())
	}
	for _, r := range onlyRight {
		lines = append(lines, "+ "+r.Key())
	}
	sort.Strings(lines)
	const keep = 8
	if len(lines) > keep {
		lines = append(lines[:keep], fmt.Sprintf("… %d more differing rows", len(lines)-keep))
	}
	return strings.Join(lines, "\n")
}

// TestDifferentialConformance is the cross-system differential suite: for
// each of the twelve queries, every system that claims the query must
// produce a row set equal to the expected answer AND to every other
// claiming system. Failures print a minimal row diff.
func TestDifferentialConformance(t *testing.T) {
	systems := allSystems()
	for _, q := range Queries() {
		q := q
		t.Run(fmt.Sprintf("Q%02d", q.ID), func(t *testing.T) {
			want, err := q.Expected()
			if err != nil {
				t.Fatalf("expected answer: %v", err)
			}
			req := q.Request()
			type claim struct {
				name string
				rows []integration.Row
			}
			var claims []claim
			for _, sys := range systems {
				ans, err := sys.Answer(req)
				if errors.Is(err, integration.ErrUnsupported) {
					continue
				}
				if err != nil {
					t.Errorf("%s: answer failed: %v", sys.Name(), err)
					continue
				}
				claims = append(claims, claim{sys.Name(), ans.Rows})
			}
			if len(claims) == 0 {
				t.Fatalf("no system claims query %d — the benchmark cell is untested", q.ID)
			}
			// Every claiming system must match the ground truth…
			for _, c := range claims {
				missing, extra := integration.MatchRows(want, c.rows)
				if len(missing) > 0 || len(extra) > 0 {
					t.Errorf("%s disagrees with the expected answer:\n%s",
						c.name, rowDiff(missing, extra))
				}
			}
			// …and, independently, every pair of claiming systems must agree
			// row-for-row (catches the case where the ground truth itself is
			// wrong but two systems drift apart in the same direction).
			for i := 0; i < len(claims); i++ {
				for j := i + 1; j < len(claims); j++ {
					missing, extra := integration.MatchRows(claims[i].rows, claims[j].rows)
					if len(missing) > 0 || len(extra) > 0 {
						t.Errorf("%s and %s disagree on query %d:\n%s",
							claims[i].name, claims[j].name, q.ID,
							rowDiff(missing, extra))
					}
				}
			}
		})
	}
}

// The two perfect-scoring mediators must claim every query; the two legacy
// systems must decline exactly 4, 5 and 8 — so the differential suite
// always has at least two independent implementations per cell.
func TestConformanceCoverage(t *testing.T) {
	declined := map[string][]int{}
	for _, sys := range allSystems() {
		for _, q := range Queries() {
			_, err := sys.Answer(q.Request())
			if errors.Is(err, integration.ErrUnsupported) {
				declined[sys.Name()] = append(declined[sys.Name()], q.ID)
			}
		}
	}
	for _, mediator := range []string{"UF Full Mediator", "Declarative Mediator"} {
		if ids := declined[mediator]; len(ids) != 0 {
			t.Errorf("%s declined %v, want none", mediator, ids)
		}
	}
	for _, legacy := range []string{"Cohera", "IWIZ"} {
		if ids := declined[legacy]; fmt.Sprint(ids) != "[4 5 8]" {
			t.Errorf("%s declined %v, want [4 5 8]", legacy, ids)
		}
	}
}
