package benchmark

import (
	"testing"

	"thalia/internal/ufmw"
	"thalia/internal/xquery"
)

func TestHandAssignedComplexityCoversAllQueries(t *testing.T) {
	table := HandAssignedComplexity()
	for _, q := range Queries() {
		if _, ok := table[q.ID]; !ok {
			t.Errorf("query %d has no hand-assigned complexity", q.ID)
		}
	}
	if len(table) != len(Queries()) {
		t.Errorf("table has %d entries, want %d", len(table), len(Queries()))
	}
}

// TestHandAssignedMatchesReferenceMediator pins the hand-assigned levels to
// the reference mediator's actual external-function usage: a query's level
// must equal the complexity of the hardest function ufmw invokes for it.
func TestHandAssignedMatchesReferenceMediator(t *testing.T) {
	table := HandAssignedComplexity()
	med := ufmw.New()
	for _, q := range Queries() {
		ans, err := med.Answer(q.Request())
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		max := 0
		for _, f := range ans.Functions {
			if f.Complexity > max {
				max = f.Complexity
			}
		}
		if got, want := int(table[q.ID]), max; got != want {
			t.Errorf("query %d: hand-assigned %v (%d), reference mediator max function complexity %d",
				q.ID, table[q.ID], got, want)
		}
	}
}

// TestQueriesParse guards the benchmark's ground truth: every runnable
// query text must parse, and a deliberately broken query must come back as
// a *ParseError with a real line/column position — not a panic.
func TestQueriesParse(t *testing.T) {
	for _, q := range Queries() {
		if _, err := xquery.Parse(q.XQuery); err != nil {
			t.Errorf("query %d does not parse: %v", q.ID, err)
		}
	}
	_, err := xquery.Parse("FOR $b in doc(\"x\")/r/c\nWHERE $b/T = !! RETURN $b")
	pe, ok := err.(*xquery.ParseError)
	if !ok {
		t.Fatalf("bad query error = %T (%v), want *xquery.ParseError", err, err)
	}
	if pe.Line != 2 || pe.Column == 0 {
		t.Errorf("ParseError position = %d:%d, want line 2", pe.Line, pe.Column)
	}
}

func TestComplexityLevelString(t *testing.T) {
	for level, want := range map[ComplexityLevel]string{
		ComplexityNone: "none", ComplexityLow: "low",
		ComplexityMedium: "medium", ComplexityHigh: "high",
		ComplexityLevel(9): "unknown",
	} {
		if got := level.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(level), got, want)
		}
	}
}
