// Package benchmark implements THALIA's benchmark proper: the twelve
// queries of Section 3.1 (one per heterogeneity case), their expected
// integrated answers over the testbed, the scoring function of Section 3.2
// (one point per correct answer, external-function complexity as a
// tie-breaker), a runner that evaluates any integration.System, and the
// Honor Roll report the web site publishes.
package benchmark

import (
	"fmt"
	"strings"

	"thalia/internal/catalog"
	"thalia/internal/hetero"
	"thalia/internal/integration"
	"thalia/internal/mapping"
)

// Query is one benchmark query: a heterogeneity case, a reference schema
// the query is written against, and a challenge schema exhibiting the
// heterogeneity the integration system must resolve.
type Query struct {
	// ID is the benchmark query number, 1-12.
	ID int
	// Case is the heterogeneity this query exercises.
	Case hetero.Case
	// Name is the paper's short description of the task.
	Name string
	// Challenge is the paper's statement of what must be resolved.
	Challenge string
	// PaperXQuery is the query text as printed in the paper.
	PaperXQuery string
	// XQuery is the runnable normalization of PaperXQuery against the
	// testbed's extracted reference schema (the paper's queries are
	// illustrative; e.g. its equality-with-%-pattern is spelled as the
	// LIKE-style match the text implies).
	XQuery string
	// Reference and Challenge sources.
	Reference       string
	ChallengeSource string
	// Fields is the canonical result-row vocabulary for this query.
	Fields []string
	// truth computes the expected integrated rows from the testbed's
	// generator-side ground truth (independent of the XML pipeline).
	truth func() ([]integration.Row, error)
}

// Expected returns the expected integrated answer rows.
func (q *Query) Expected() ([]integration.Row, error) { return q.truth() }

// NewQuery constructs a benchmark query from generated parts. Scenario
// workloads (internal/scenario) use this to build query families whose
// expected answers are computed, not hand-written: truth must return the
// integrated rows the answer is scored against, and must be safe to call
// from any goroutine (the engine may invoke it once per cell when no
// shared-prep cache is attached).
func NewQuery(id int, c hetero.Case, name, xquery, reference, challenge string, fields []string, truth func() ([]integration.Row, error)) *Query {
	return &Query{
		ID: id, Case: c, Name: name,
		PaperXQuery: xquery, XQuery: xquery,
		Reference: reference, ChallengeSource: challenge,
		Fields: fields, truth: truth,
	}
}

// Request converts the query into the request handed to a system.
func (q *Query) Request() integration.Request {
	return integration.Request{
		QueryID:   q.ID,
		XQuery:    q.XQuery,
		Reference: q.Reference,
		Challenge: q.ChallengeSource,
	}
}

// sourceCourses returns the generator-side course data for a source.
func sourceCourses(name string) ([]catalog.Course, error) {
	s, err := catalog.Get(name)
	if err != nil {
		return nil, err
	}
	return s.Courses, nil
}

// hasFold reports case-insensitive containment.
func hasFold(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), strings.ToLower(sub))
}

// Queries returns the twelve benchmark queries in order.
func Queries() []*Query {
	lex := mapping.NewGermanLexicon()
	return []*Query{
		{
			ID: 1, Case: hetero.Synonyms,
			Name:      `List courses taught by instructor "Mark"`,
			Challenge: `Determine that in CMU's course catalog the instructor information can be found in a field called "Lecturer".`,
			PaperXQuery: `FOR $b in doc("gatech.xml")/gatech/Course
WHERE $b/Instructor = "Mark"
RETURN $b`,
			XQuery: `FOR $b in doc("gatech.xml")/gatech/Course
WHERE $b/Instructor = "Mark"
RETURN $b`,
			Reference: "gatech", ChallengeSource: "cmu",
			Fields: []string{"source", "course", "instructor"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				for _, src := range []string{"gatech", "cmu"} {
					cs, err := sourceCourses(src)
					if err != nil {
						return nil, err
					}
					for _, c := range cs {
						for _, in := range c.Instructors {
							if in.Name == "Mark" {
								rows = append(rows, integration.Row{
									"source": src, "course": c.Number, "instructor": "Mark",
								})
							}
						}
					}
				}
				return rows, nil
			},
		},
		{
			ID: 2, Case: hetero.SimpleMapping,
			Name:      "Find all database courses that meet at 1:30pm on any given day",
			Challenge: "Conversion of time represented in 12 hour-clock to 24 hour-clock.",
			PaperXQuery: `FOR $b in doc("cmu.xml")/cmu/Course
WHERE $b/Course/Time='1:30 - 2:50'
RETURN $b`,
			XQuery: `FOR $b in doc("cmu.xml")/cmu/Course
WHERE starts-with($b/Time, '1:30') and $b/CourseTitle = '%Database%'
RETURN $b`,
			Reference: "cmu", ChallengeSource: "umass",
			Fields: []string{"source", "course", "title", "time"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				for _, src := range []string{"cmu", "umass"} {
					cs, err := sourceCourses(src)
					if err != nil {
						return nil, err
					}
					for _, c := range cs {
						if c.Start == 13*60+30 && hasFold(c.Title, "database") {
							rows = append(rows, integration.Row{
								"source": src, "course": c.Number, "title": c.Title,
								"time": mapping.Minutes(c.Start).String() + "-" + mapping.Minutes(c.End).String(),
							})
						}
					}
				}
				return rows, nil
			},
		},
		{
			ID: 3, Case: hetero.UnionTypes,
			Name:      "Find all courses with the string 'Data Structures' in the title",
			Challenge: "Map a single string to a combination external link (URL) and string to find a matching value. In addition, this query exhibits a synonym heterogeneity (CourseName vs. Title).",
			PaperXQuery: `FOR $b in doc("umd.xml")/umd/Course
WHERE $b/CourseName='%Data Structures%'
RETURN $b`,
			XQuery: `FOR $b in doc("umd.xml")/umd/Course
WHERE $b/CourseName = '%Data Structures%'
RETURN $b`,
			Reference: "umd", ChallengeSource: "brown",
			Fields: []string{"source", "course", "title"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				for _, src := range []string{"umd", "brown"} {
					cs, err := sourceCourses(src)
					if err != nil {
						return nil, err
					}
					for _, c := range cs {
						if strings.Contains(c.Title, "Data Structures") {
							rows = append(rows, integration.Row{
								"source": src, "course": c.Number, "title": c.Title,
							})
						}
					}
				}
				return rows, nil
			},
		},
		{
			ID: 4, Case: hetero.ComplexMappings,
			Name:      "List all database courses that carry more than 10 credit hours",
			Challenge: `Apart from the language conversion issues, the challenge is to develop a mapping that converts the numeric value for credit hours into a string that describes the expected scope ("Umfang") of the course.`,
			PaperXQuery: `FOR $b in doc("cmu.xml")/cmu/Course
WHERE $b/Units >10 AND $b/CourseName='%Database%'
RETURN $b`,
			XQuery: `FOR $b in doc("cmu.xml")/cmu/Course
WHERE $b/Units > 10 and $b/CourseTitle = '%Database%'
RETURN $b`,
			Reference: "cmu", ChallengeSource: "eth",
			Fields: []string{"source", "course", "title", "units"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				cs, err := sourceCourses("cmu")
				if err != nil {
					return nil, err
				}
				for _, c := range cs {
					if c.Credits > 10 && strings.Contains(c.Title, "Database") {
						rows = append(rows, integration.Row{
							"source": "cmu", "course": c.Number, "title": c.Title,
							"units": fmt.Sprintf("%d", c.Credits),
						})
					}
				}
				es, err := sourceCourses("eth")
				if err != nil {
					return nil, err
				}
				for _, c := range es {
					u, err := mapping.ParseUmfang(c.UnitsNote)
					if err != nil {
						continue
					}
					if u.Units() > 10 && lex.ValueContains(c.GermanTitle, "database") {
						rows = append(rows, integration.Row{
							"source": "eth", "course": c.Number, "title": c.GermanTitle,
							"units": fmt.Sprintf("%d", u.Units()),
						})
					}
				}
				return rows, nil
			},
		},
		{
			ID: 5, Case: hetero.LanguageExpression,
			Name:      "Find all courses with the string 'database' in the course title",
			Challenge: `Convert the German tags into their English counterparts; convert the English course title 'Database' into its German counterpart 'Datenbank' or 'Datenbanksystem' and retrieve matching ETH courses.`,
			PaperXQuery: `FOR $b in doc("umd.xml")/umd/Course
WHERE $b/CourseName='%Database%'
RETURN $b`,
			XQuery: `FOR $b in doc("umd.xml")/umd/Course
WHERE $b/CourseName = '%Database%'
RETURN $b`,
			Reference: "umd", ChallengeSource: "eth",
			Fields: []string{"source", "course", "title"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				cs, err := sourceCourses("umd")
				if err != nil {
					return nil, err
				}
				for _, c := range cs {
					if strings.Contains(c.Title, "Database") {
						rows = append(rows, integration.Row{
							"source": "umd", "course": c.Number, "title": c.Title,
						})
					}
				}
				es, err := sourceCourses("eth")
				if err != nil {
					return nil, err
				}
				for _, c := range es {
					if lex.ValueContains(c.GermanTitle, "database") {
						rows = append(rows, integration.Row{
							"source": "eth", "course": c.Number, "title": c.GermanTitle,
						})
					}
				}
				return rows, nil
			},
		},
		{
			ID: 6, Case: hetero.Nulls,
			Name:      "List all textbooks for courses about verification theory",
			Challenge: "Proper treatment of NULL values: the integrated result must include the fact that no textbook information was available for CMU's course.",
			PaperXQuery: `FOR $b in doc("toronto.xml")/toronto/course
WHERE $b/title='%Verification%'
RETURN $b/text`,
			XQuery: `FOR $b in doc("toronto.xml")/toronto/course
WHERE $b/title = '%Verification%'
RETURN $b/text`,
			Reference: "toronto", ChallengeSource: "cmu",
			Fields: []string{"source", "course", "textbook"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				for _, src := range []string{"toronto", "cmu"} {
					cs, err := sourceCourses(src)
					if err != nil {
						return nil, err
					}
					for _, c := range cs {
						if !strings.Contains(c.Title, "Verification") {
							continue
						}
						book := mapping.Present(c.Textbook)
						if strings.TrimSpace(c.Textbook) == "" {
							book = mapping.Missing()
						}
						rows = append(rows, integration.Row{
							"source": src, "course": c.Number, "textbook": book.Marker(),
						})
					}
				}
				return rows, nil
			},
		},
		{
			ID: 7, Case: hetero.VirtualColumns,
			Name:      "Find all entry-level database courses",
			Challenge: "Infer the fact that the course is an entry-level course from the comment field that is attached to the title.",
			PaperXQuery: `FOR $b in doc("umich.xml")/umich/Course
WHERE $b/prerequisite='None'
RETURN $b`,
			XQuery: `FOR $b in doc("umich.xml")/umich/Course
WHERE $b/prerequisite = 'None' and $b/title = '%Database%'
RETURN $b`,
			Reference: "umich", ChallengeSource: "cmu",
			Fields: []string{"source", "course", "title"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				cs, err := sourceCourses("umich")
				if err != nil {
					return nil, err
				}
				for _, c := range cs {
					if strings.Contains(c.Title, "Database") && mapping.InferEntryLevel(c.Prereq, "") {
						rows = append(rows, integration.Row{
							"source": "umich", "course": c.Number, "title": c.Title,
						})
					}
				}
				ms, err := sourceCourses("cmu")
				if err != nil {
					return nil, err
				}
				for _, c := range ms {
					if strings.Contains(c.Title, "Database") && mapping.InferEntryLevel("", c.Comment) {
						rows = append(rows, integration.Row{
							"source": "cmu", "course": c.Number, "title": c.Title,
						})
					}
				}
				return rows, nil
			},
		},
		{
			ID: 8, Case: hetero.SemanticIncompatibility,
			Name:      "List all database courses open to juniors",
			Challenge: `Distinguish "data missing but could be present" from "data missing and cannot be present": ETH has no concept of student classification, so a plain NULL would be misleading.`,
			PaperXQuery: `FOR $b in doc("gatech.xml")/gatech/Course
WHERE $b/Course restricted='%JR%'
RETURN $b`,
			XQuery: `FOR $b in doc("gatech.xml")/gatech/Course
WHERE $b/Title = '%Database%' and $b/Restrictions = '%JR%'
RETURN $b`,
			Reference: "gatech", ChallengeSource: "eth",
			Fields: []string{"source", "course", "title", "restriction"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				cs, err := sourceCourses("gatech")
				if err != nil {
					return nil, err
				}
				for _, c := range cs {
					if strings.Contains(c.Title, "Database") && mapping.OpenTo(c.Restrict, "JR") {
						rows = append(rows, integration.Row{
							"source": "gatech", "course": c.Number, "title": c.Title,
							"restriction": c.Restrict,
						})
					}
				}
				es, err := sourceCourses("eth")
				if err != nil {
					return nil, err
				}
				for _, c := range es {
					if lex.ValueContains(c.GermanTitle, "database") {
						rows = append(rows, integration.Row{
							"source": "eth", "course": c.Number, "title": c.GermanTitle,
							"restriction": mapping.Inapplicable().Marker(),
						})
					}
				}
				return rows, nil
			},
		},
		{
			ID: 9, Case: hetero.SameAttributeDifferentStructure,
			Name:      "Find the room in which the software engineering course is held",
			Challenge: "Determine that room information in the University of Maryland's course catalog is available as part of the time element located under the Section element.",
			PaperXQuery: `FOR $b in doc("brown.xml")/brown/Course
WHERE $b/Title ='Software Engineering'
RETURN $b/Room`,
			XQuery: `FOR $b in doc("brown.xml")/brown/Course
WHERE $b/Title = '%Software Engineering%'
RETURN $b/Room`,
			Reference: "brown", ChallengeSource: "umd",
			Fields: []string{"source", "course", "room"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				bs, err := sourceCourses("brown")
				if err != nil {
					return nil, err
				}
				for _, c := range bs {
					if strings.Contains(c.Title, "Software Engineering") {
						room := c.Room
						if c.LabRoom != "" {
							room += ", " + c.LabRoom
						}
						rows = append(rows, integration.Row{
							"source": "brown", "course": c.Number, "room": room,
						})
					}
				}
				us, err := sourceCourses("umd")
				if err != nil {
					return nil, err
				}
				for _, c := range us {
					if !strings.Contains(c.Title, "Software Engineering") {
						continue
					}
					for _, sec := range c.Sections {
						rows = append(rows, integration.Row{
							"source": "umd", "course": c.Number, "room": sec.Room,
						})
					}
				}
				return rows, nil
			},
		},
		{
			ID: 10, Case: hetero.HandlingSets,
			Name:      "List all instructors for courses on software systems",
			Challenge: "Gather the instructor information by extracting the name part from all of the section titles rather than from a single field called Lecturer.",
			PaperXQuery: `FOR $b in doc("cmu.xml")/cmu/Course
WHERE $b/CourseTitle ='%Software%'
RETURN $b/Lecturer`,
			XQuery: `FOR $b in doc("cmu.xml")/cmu/Course
WHERE $b/CourseTitle = '%Software%'
RETURN $b/Lecturer`,
			Reference: "cmu", ChallengeSource: "umd",
			Fields: []string{"source", "course", "instructor"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				cs, err := sourceCourses("cmu")
				if err != nil {
					return nil, err
				}
				for _, c := range cs {
					if !strings.Contains(c.Title, "Software") {
						continue
					}
					for _, in := range c.Instructors {
						rows = append(rows, integration.Row{
							"source": "cmu", "course": c.Number, "instructor": in.Name,
						})
					}
				}
				us, err := sourceCourses("umd")
				if err != nil {
					return nil, err
				}
				for _, c := range us {
					if !strings.Contains(c.Title, "Software") {
						continue
					}
					for _, sec := range c.Sections {
						rows = append(rows, integration.Row{
							"source": "umd", "course": c.Number, "instructor": sec.Teacher,
						})
					}
				}
				return rows, nil
			},
		},
		{
			ID: 11, Case: hetero.AttributeNameDoesNotDefineSemantics,
			Name:      "List instructors for the database course",
			Challenge: `Associate the columns labeled "Fall 2003", "Winter 2004" etc. with instructor information.`,
			PaperXQuery: `FOR $b in doc("cmu.xml")/cmu/Course
WHERE $b/Course Title ='%Database'
RETURN $b/Lecturer`,
			XQuery: `FOR $b in doc("cmu.xml")/cmu/Course
WHERE $b/CourseTitle = '%Database%'
RETURN $b/Lecturer`,
			Reference: "cmu", ChallengeSource: "ucsd",
			Fields: []string{"source", "course", "instructor"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				cs, err := sourceCourses("cmu")
				if err != nil {
					return nil, err
				}
				for _, c := range cs {
					if !strings.Contains(c.Title, "Database") {
						continue
					}
					for _, in := range c.Instructors {
						rows = append(rows, integration.Row{
							"source": "cmu", "course": c.Number, "instructor": in.Name,
						})
					}
				}
				us, err := sourceCourses("ucsd")
				if err != nil {
					return nil, err
				}
				for _, c := range us {
					if !strings.Contains(c.Title, "Database") {
						continue
					}
					for _, in := range c.Instructors {
						if in.Name == "(not offered)" {
							continue
						}
						rows = append(rows, integration.Row{
							"source": "ucsd", "course": c.Number, "instructor": in.Name,
						})
					}
				}
				return rows, nil
			},
		},
		{
			ID: 12, Case: hetero.AttributeComposition,
			Name:      "List the title and time for computer networks courses",
			Challenge: "Extract the correct title, day and time values from the composite title column in the catalog of Brown University.",
			PaperXQuery: `FOR $b in doc("cmu.xml")/cmu/Course
WHERE $b/CourseTitle ='%Computer Networks%'
RETURN $b/Title $b/Day`,
			XQuery: `FOR $b in doc("cmu.xml")/cmu/Course
WHERE $b/CourseTitle = '%Computer Networks%'
RETURN $b/CourseTitle $b/Day $b/Time`,
			Reference: "cmu", ChallengeSource: "brown",
			Fields: []string{"source", "course", "title", "day", "time"},
			truth: func() ([]integration.Row, error) {
				var rows []integration.Row
				for _, src := range []string{"cmu", "brown"} {
					cs, err := sourceCourses(src)
					if err != nil {
						return nil, err
					}
					for _, c := range cs {
						if !strings.Contains(c.Title, "Computer Networks") {
							continue
						}
						rows = append(rows, integration.Row{
							"source": src, "course": c.Number, "title": c.Title,
							"day":  c.Days,
							"time": mapping.Minutes(c.Start).String() + "-" + mapping.Minutes(c.End).String(),
						})
					}
				}
				return rows, nil
			},
		},
	}
}

// QueryByID returns the benchmark query with the given number.
func QueryByID(id int) (*Query, error) {
	for _, q := range Queries() {
		if q.ID == id {
			return q, nil
		}
	}
	return nil, fmt.Errorf("benchmark: no query %d", id)
}
