package benchmark

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"thalia/internal/explain"
	"thalia/internal/faultline"
	"thalia/internal/integration"
	"thalia/internal/telemetry"
)

// ErrBreakerOpen is recorded for an attempt the per-system circuit breaker
// shed without calling the system.
var ErrBreakerOpen = errors.New("benchmark: circuit breaker open; attempt shed")

// Resilience metric names.
const (
	// MetricRetries counts retry attempts (attempt 2 and up), per system.
	MetricRetries = "engine_retries_total"
	// MetricDegraded counts cells that exhausted their retries, per system.
	MetricDegraded = "engine_degraded_total"
	// MetricShed counts attempts shed by an open breaker, per system.
	MetricShed = "engine_shed_total"
	// MetricBreakerState gauges each system's breaker position after its
	// latest cell (0 closed, 1 open, 2 half-open); MetricBreakerOpens
	// gauges how many times the breaker tripped during the run.
	MetricBreakerState = "engine_breaker_state"
	MetricBreakerOpens = "engine_breaker_opens"
)

// Resilience is the runner's retry/degradation policy: bounded retries
// with exponential backoff and deterministic jitter, per-attempt deadlines
// under the existing QueryTimeout, and a per-system circuit breaker. A
// cell that exhausts its attempts is marked degraded with its attempt
// history attached — it never aborts the run.
type Resilience struct {
	// MaxAttempts bounds the tries per cell; values below 1 mean 1.
	MaxAttempts int
	// BaseBackoff is the delay before attempt 2; each later retry doubles
	// it, capped at MaxBackoff. Jitter scales every delay into
	// [50%, 100%) of its nominal value, deterministically per
	// (system, query, attempt) from JitterSeed.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	JitterSeed  int64
	// AttemptTimeout bounds a single attempt; it only tightens the
	// runner's QueryTimeout, never extends it. Zero means attempts are
	// bounded by QueryTimeout alone.
	AttemptTimeout time.Duration
	// BreakerThreshold opens a system's circuit breaker after that many
	// consecutive failures; 0 disables the breaker. BreakerCooldown is
	// how many calls an open breaker sheds before half-opening a probe —
	// counted in calls, not seconds, so breaker trajectories are
	// deterministic (see faultline.Breaker).
	BreakerThreshold int
	BreakerCooldown  int
}

// DefaultResilience is the benchmark's standard policy: three attempts,
// millisecond-scale backoff, and a breaker that opens after five
// consecutive failures and probes after shedding three calls.
func DefaultResilience(seed int64) *Resilience {
	return &Resilience{
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
		JitterSeed:       seed,
		BreakerThreshold: 5,
		BreakerCooldown:  3,
	}
}

// attempts returns the effective attempt bound.
func (p *Resilience) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the delay scheduled after a failed attempt n (1-based):
// BaseBackoff doubled per retry already taken, capped at MaxBackoff, then
// jittered into [50%, 100%) of nominal. Same coordinates, same seed, same
// delay — the chaos conformance suite depends on it.
func (p *Resilience) Backoff(system string, query, attempt int) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	frac := 0.5 + 0.5*faultline.Jitter(p.JitterSeed, system, query, attempt)
	return time.Duration(float64(d) * frac)
}

// Attempt is one entry of a cell's attempt history. It records only
// deterministic facts — the outcome, its retryability classification, and
// the scheduled backoff — never wall-clock durations, so same-seed chaos
// runs render byte-identical histories.
type Attempt struct {
	// N is the 1-based attempt number.
	N int
	// Err is the attempt's failure, "" on success.
	Err string
	// Transient marks the failure retryable (the attempt was not final
	// because of it).
	Transient bool
	// Backoff is the delay scheduled after this failed attempt; 0 when no
	// retry followed.
	Backoff time.Duration
	// Shed marks an attempt the open circuit breaker refused without
	// calling the system.
	Shed bool
}

// retryable classifies an attempt failure: retry only what the source
// marks transient, plus the engine's own deadline expiries.
func retryable(err error) bool {
	return integration.Transient(err) ||
		errors.Is(err, ErrQueryTimeout) ||
		errors.Is(err, context.DeadlineExceeded)
}

// answerResilient runs the runner's retry loop around one cell: breaker
// check, attempt-stamped Answer call under the per-attempt deadline,
// classification, deterministic backoff. It returns the final answer or
// error plus the full attempt history. The caller decides degradation.
func (r *Runner) answerResilient(ctx context.Context, sys integration.System, req integration.Request, rec *explain.Recorder, br *faultline.Breaker) (*integration.Answer, []Attempt, error) {
	p := r.Resilience
	system := sys.Name()
	timeout := r.QueryTimeout
	if p.AttemptTimeout > 0 && (timeout <= 0 || p.AttemptTimeout < timeout) {
		timeout = p.AttemptTimeout
	}
	max := p.attempts()
	attempts := make([]Attempt, 0, max)
	var lastErr error
	for n := 1; n <= max; n++ {
		if n > 1 && r.Telemetry != nil {
			r.Telemetry.Counter(MetricRetries, telemetry.L("system", system)).Inc()
		}
		if !br.Allow() {
			if r.Telemetry != nil {
				r.Telemetry.Counter(MetricShed, telemetry.L("system", system)).Inc()
			}
			a := Attempt{N: n, Err: ErrBreakerOpen.Error(), Transient: true, Shed: true}
			if n < max {
				a.Backoff = p.Backoff(system, req.QueryID, n)
			}
			if rec != nil {
				rec.Event(explain.KindAttempt, fmt.Sprintf("attempt %d", n),
					explain.A("outcome", "shed"), explain.A("breaker", br.State().String()))
			}
			attempts = append(attempts, a)
			lastErr = ErrBreakerOpen
			if n < max && !sleep(ctx, a.Backoff) {
				return nil, attempts, ctx.Err()
			}
			continue
		}
		attemptReq := req.WithContext(integration.WithAttempt(req.Context(), n))
		var span *explain.Span
		if rec != nil {
			span = rec.Begin(explain.KindAttempt, fmt.Sprintf("attempt %d", n))
		}
		ans, err := r.answerWithin(ctx, sys, attemptReq, timeout)
		if err == nil {
			span.With("outcome", "ok")
			span.End()
			br.Record(true)
			attempts = append(attempts, Attempt{N: n})
			return ans, attempts, nil
		}
		if errors.Is(err, integration.ErrUnsupported) {
			// A decline is a working system saying no: breaker success,
			// never retried.
			span.With("outcome", "declined")
			span.End()
			br.Record(true)
			attempts = append(attempts, Attempt{N: n, Err: err.Error()})
			return nil, attempts, err
		}
		if ctx.Err() != nil {
			span.With("outcome", "canceled")
			span.End()
			attempts = append(attempts, Attempt{N: n, Err: ctx.Err().Error()})
			return nil, attempts, ctx.Err()
		}
		br.Record(false)
		retry := retryable(err) && n < max
		a := Attempt{N: n, Err: err.Error(), Transient: retryable(err)}
		if retry {
			a.Backoff = p.Backoff(system, req.QueryID, n)
		}
		span.With("outcome", "error").With("error", err.Error())
		span.End()
		attempts = append(attempts, a)
		lastErr = err
		if !retry {
			break
		}
		if !sleep(ctx, a.Backoff) {
			return nil, attempts, ctx.Err()
		}
	}
	return nil, attempts, lastErr
}

// sleep pauses for d unless ctx is cancelled first; it reports whether the
// full pause elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// FormatChaos renders the per-cell attempt histories of a ranked run — the
// chaos companion to Comparison/Format. It prints only deterministic
// fields, so same-seed runs render byte-identical reports.
func FormatChaos(cards []*Scorecard) string {
	var b strings.Builder
	b.WriteString("Chaos resilience — per-cell attempt histories\n")
	for _, c := range cards {
		degraded := 0
		for _, r := range c.Results {
			if r.Degraded {
				degraded++
			}
		}
		fmt.Fprintf(&b, "\n%s (%d degraded)\n", c.System, degraded)
		for _, r := range c.Results {
			status := "ok"
			switch {
			case r.Degraded:
				status = "DEGRADED"
			case !r.Supported && r.Err == "":
				status = "declined"
			case !r.Correct && r.Supported:
				status = "incorrect"
			}
			fmt.Fprintf(&b, "  q%02d: %-9s %d attempt(s)\n", r.QueryID, status, len(r.Attempts))
			for _, a := range r.Attempts {
				switch {
				case a.Shed:
					fmt.Fprintf(&b, "    attempt %d: shed (breaker open)", a.N)
				case a.Err == "":
					fmt.Fprintf(&b, "    attempt %d: ok", a.N)
				case a.Transient:
					fmt.Fprintf(&b, "    attempt %d: transient error: %s", a.N, a.Err)
				default:
					fmt.Fprintf(&b, "    attempt %d: permanent error: %s", a.N, a.Err)
				}
				if a.Backoff > 0 {
					fmt.Fprintf(&b, "  (retry in %s)", a.Backoff)
				}
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}
