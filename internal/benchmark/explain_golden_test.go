package benchmark

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"thalia/internal/catalog"
	"thalia/internal/explain"
	"thalia/internal/xquery"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden explain outlines")

// TestExplainGoldenOutlines pins the operator tree the evaluator reports
// for each heterogeneity query against the reference schema. The golden
// files hold Outline() renderings — structure and row counts, no
// durations — so the trees are stable across machines; a change here means
// the evaluator's plan for a benchmark query changed, which should be a
// deliberate act (rerun with -update).
func TestExplainGoldenOutlines(t *testing.T) {
	resolve := catalog.Resolver()
	for _, q := range Queries() {
		q := q
		t.Run(fmt.Sprintf("q%02d", q.ID), func(t *testing.T) {
			rec := explain.NewRecorder()
			ctx := xquery.NewContext(resolve)
			ctx.Explain = rec
			root := rec.Begin(explain.KindEval, fmt.Sprintf("q%02d %s", q.ID, q.Case.Name()))
			_, err := xquery.EvalQuery(q.XQuery, ctx)
			root.End()
			if err != nil {
				t.Fatalf("evaluate: %v", err)
			}
			got := rec.Trace().Outline()
			path := filepath.Join("testdata", "explain", fmt.Sprintf("q%02d.golden", q.ID))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/benchmark -run ExplainGolden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("operator tree drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
