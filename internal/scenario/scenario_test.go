package scenario

import (
	"fmt"
	"strings"
	"testing"

	"thalia/internal/benchmark"
	"thalia/internal/hetero"
	"thalia/internal/integration"
	"thalia/internal/xmldom"
)

func TestParseMix(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "", want: "uniform"},
		{in: "uniform", want: "uniform"},
		{in: "synonyms", want: "synonyms:1"},
		{in: "synonyms:2,nulls,7:3", want: "synonyms:2,nulls:1,virtual-columns:3"},
		{in: "1,2,3,4,5,6,7,8,9,10,11,12", want: "uniform"},
		{in: "bogus", wantErr: true},
		{in: "synonyms:x", wantErr: true},
		{in: "synonyms:-1", wantErr: true},
		{in: "13", wantErr: true},
	}
	for _, tc := range cases {
		m, err := ParseMix(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseMix(%q): want error, got %v", tc.in, m)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseMix(%q): %v", tc.in, err)
		}
		if got := m.String(); got != tc.want {
			t.Errorf("ParseMix(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		// The grammar round-trips: parsing the rendering gives the same mix.
		again, err := ParseMix(m.String())
		if err != nil {
			t.Fatalf("ParseMix(%q) round-trip: %v", m.String(), err)
		}
		if again.String() != m.String() {
			t.Errorf("mix round-trip: %q != %q", again.String(), m.String())
		}
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Sources: 0},
		{Sources: MaxSources + 1},
		{Sources: 5, Size: 1},
		{Sources: 5, Size: MaxSize + 1},
		{Sources: 5, Mix: Mix{}},
		{Sources: 5, Mix: Mix{hetero.Case(99): 1}},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("New(%+v): want error", p)
		}
	}
	sc, err := New(Params{Sources: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := sc.Params().Size; got != DefaultSize {
		t.Errorf("default size = %d, want %d", got, DefaultSize)
	}
}

func TestNameIndexRoundTrip(t *testing.T) {
	sc, err := New(Params{Sources: 42, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 7, 41} {
		name := sc.Name(i)
		for _, form := range []string{name, name + ".xml"} {
			got, err := sc.Index(form)
			if err != nil || got != i {
				t.Errorf("Index(%q) = %d, %v; want %d", form, got, err, i)
			}
		}
	}
	for _, bad := range []string{"", "x00001", "s00000", "s00043", "cmu"} {
		if _, err := sc.Index(bad); err == nil {
			t.Errorf("Index(%q): want error", bad)
		}
	}
}

func rowsMatch(t *testing.T, label string, want, got []integration.Row) {
	t.Helper()
	missing, extra := integration.MatchRows(want, got)
	if len(missing) > 0 || len(extra) > 0 {
		t.Errorf("%s: rows differ\n  missing: %v\n  extra: %v", label, missing, extra)
	}
}

// TestClassConformance is the per-class property suite: for every
// heterogeneity class, a single-class scenario must (a) assign the class,
// (b) render a document pair that internal/hetero diagnoses as exactly that
// class, (c) plant at least one answer row, (d) agree with the plan engine
// over the reference document where that is expressible, and (e) be
// answered correctly by the mediator over the challenge document.
func TestClassConformance(t *testing.T) {
	for _, cse := range hetero.AllCases() {
		cse := cse
		t.Run(fmt.Sprintf("case%d", int(cse)), func(t *testing.T) {
			sc, err := New(Params{Sources: 3, Seed: 7, Mix: Mix{cse: 1}, Size: 6})
			if err != nil {
				t.Fatal(err)
			}
			med := sc.NewMediator()
			for i := 0; i < sc.Sources(); i++ {
				if got := sc.Case(i); got != cse {
					t.Fatalf("source %d: case %v, want %v", i, got, cse)
				}
				ref, chal := sc.ReferenceDocument(i), sc.ChallengeDocument(i)
				detected := hetero.DetectDocs(ref, chal)
				if len(detected) != 1 || detected[0] != cse {
					t.Errorf("source %d: DetectDocs = %v, want exactly [%v]", i, detected, cse)
				}
				truth := sc.Truth(i)
				if len(truth) == 0 {
					t.Fatalf("source %d: empty expected answer (no planted row)", i)
				}
				refRows, checkable, err := sc.RefRows(i)
				if err != nil {
					t.Fatalf("source %d: RefRows: %v", i, err)
				}
				if checkable {
					rowsMatch(t, fmt.Sprintf("source %d: plan engine vs truth", i), truth, refRows)
				} else if cse != hetero.LanguageExpression && cse != hetero.SemanticIncompatibility {
					t.Errorf("source %d: case %v should be ref-checkable", i, cse)
				}
				ans, err := med.Answer(integration.Request{QueryID: i + 1, Challenge: sc.Name(i)})
				if err != nil {
					t.Fatalf("source %d: mediator: %v", i, err)
				}
				rowsMatch(t, fmt.Sprintf("source %d: mediator vs truth", i), truth, ans.Rows)
				wantEffort, wantFns := effortFor(cse)
				if ans.Effort != wantEffort || len(ans.Functions) != len(wantFns) {
					t.Errorf("source %d: effort %v/%d functions, want %v/%d",
						i, ans.Effort, len(ans.Functions), wantEffort, len(wantFns))
				}
			}
		})
	}
}

// TestGeneratedDocumentsParse proves rendered challenge XML is well-formed
// by round-tripping it through the parser.
func TestGeneratedDocumentsParse(t *testing.T) {
	sc, err := New(Params{Sources: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sc.Sources(); i++ {
		doc, err := xmldom.ParseString(sc.ChallengeXML(i))
		if err != nil {
			t.Errorf("source %d: %v", i, err)
			continue
		}
		if doc.Root.Name != "catalog" {
			t.Errorf("source %d: root %q", i, doc.Root.Name)
		}
	}
}

// TestScorecardsByteIdenticalAcrossPools is the determinism gate: for a
// fixed seed, the rendered ranked scorecard must be byte-identical at any
// worker-pool size. Run under -race in CI, this also stresses the
// mediator's concurrency contract.
func TestScorecardsByteIdenticalAcrossPools(t *testing.T) {
	for _, seed := range []int64{1, 5, 9} {
		var want string
		for _, pool := range []int{1, 2, 8} {
			sc, err := New(Params{Sources: 24, Seed: seed, Size: 4})
			if err != nil {
				t.Fatal(err)
			}
			r := benchmark.NewStreamingRunner(sc.Queries())
			r.Concurrency = pool
			cards, err := r.EvaluateAll(sc.NewMediator())
			if err != nil {
				t.Fatal(err)
			}
			got := cards[0].Format() + benchmark.Summary(cards[0])
			if pool == 1 {
				want = got
				if c := cards[0].CorrectCount(); c != 24 {
					t.Fatalf("seed %d: %d/24 correct:\n%s", seed, c, got)
				}
				continue
			}
			if got != want {
				t.Errorf("seed %d: scorecard at pool %d differs from pool 1:\n%s\n--- want ---\n%s",
					seed, pool, got, want)
			}
		}
	}
}

// TestMixSkew checks that a skewed mix is honored: a weight-only-synonyms
// mix assigns every source case 1, and a heavy skew dominates the totals.
func TestMixSkew(t *testing.T) {
	sc, err := New(Params{Sources: 40, Seed: 11, Mix: Mix{hetero.Synonyms: 1}})
	if err != nil {
		t.Fatal(err)
	}
	totals := sc.ClassTotals()
	if totals[hetero.Synonyms] != 40 {
		t.Errorf("single-class mix: totals = %v", totals)
	}
	sc, err = New(Params{Sources: 200, Seed: 11, Mix: Mix{hetero.Synonyms: 9, hetero.Nulls: 1}})
	if err != nil {
		t.Fatal(err)
	}
	totals = sc.ClassTotals()
	if totals[hetero.Synonyms] <= totals[hetero.Nulls] {
		t.Errorf("9:1 skew not honored: %v", totals)
	}
	if totals[hetero.Synonyms]+totals[hetero.Nulls] != 200 {
		t.Errorf("cases outside the mix assigned: %v", totals)
	}
}

// TestTaxonomyCovered pins the generator's vocabulary to the full THALIA
// taxonomy by name, in order. A class added to internal/hetero without
// generator support fails here (and trips the scenariocoverage analyzer);
// one removed fails the length check.
func TestTaxonomyCovered(t *testing.T) {
	want := []hetero.Case{
		hetero.Synonyms,
		hetero.SimpleMapping,
		hetero.UnionTypes,
		hetero.ComplexMappings,
		hetero.LanguageExpression,
		hetero.Nulls,
		hetero.VirtualColumns,
		hetero.SemanticIncompatibility,
		hetero.SameAttributeDifferentStructure,
		hetero.HandlingSets,
		hetero.AttributeNameDoesNotDefineSemantics,
		hetero.AttributeComposition,
	}
	got := hetero.AllCases()
	if len(got) != len(want) {
		t.Fatalf("taxonomy has %d classes, generator covers %d", len(got), len(want))
	}
	for i, c := range want {
		if got[i] != c {
			t.Errorf("class %d: %v, want %v", i, got[i], c)
		}
	}
	// Every class is generable: the uniform mix names them all.
	uniform, err := ParseMix("uniform")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range want {
		if uniform[c] != 1 {
			t.Errorf("uniform mix omits %v", c)
		}
	}
}

func TestDetectDocsNilSafe(t *testing.T) {
	if got := hetero.DetectDocs(nil, nil); got != nil {
		t.Errorf("DetectDocs(nil, nil) = %v", got)
	}
}

// TestStreamingRunnerMatchesPrepCached pins the contract NewStreamingRunner
// documents: no prep cache changes memory behavior, never scores.
func TestStreamingRunnerMatchesPrepCached(t *testing.T) {
	sc, err := New(Params{Sources: 10, Seed: 2, Size: 3})
	if err != nil {
		t.Fatal(err)
	}
	stream := benchmark.NewStreamingRunner(sc.Queries())
	stream.Concurrency = 4
	cached := &benchmark.Runner{Queries: sc.Queries(), Concurrency: 4, Prep: benchmark.NewPrepCache()}
	a, err := stream.EvaluateAll(sc.NewMediator())
	if err != nil {
		t.Fatal(err)
	}
	b, err := cached.EvaluateAll(sc.NewMediator())
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Format() != b[0].Format() {
		t.Errorf("streaming and prep-cached scorecards differ:\n%s\n---\n%s", a[0].Format(), b[0].Format())
	}
}

func TestQuerySpecStable(t *testing.T) {
	sc, err := New(Params{Sources: 6, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sc.Sources(); i++ {
		a, b := sc.Spec(i), sc.Spec(i)
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("source %d: Spec not stable", i)
		}
		if !strings.Contains(a.XQuery, sc.Name(i)+".xml") {
			t.Errorf("source %d: query does not reference its own document: %s", i, a.XQuery)
		}
	}
}
