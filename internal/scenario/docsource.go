package scenario

import (
	"sync"

	"thalia/internal/xmldom"
)

// DocSource materializes challenge documents on demand and releases them —
// the streaming evaluation's memory bound. A document lives exactly as
// long as some cell holds a reference to it, so a run over any number of
// sources keeps O(worker pool) documents live, never O(sources).
//
// Regeneration is free of coordination hazards because documents are pure
// functions of (seed, index): concurrent acquirers of the same source can
// each build the document and any copy is interchangeable.
type DocSource struct {
	sc *Scenario

	mu        sync.Mutex
	live      map[int]*docEntry
	builds    int
	highWater int
}

type docEntry struct {
	doc  *xmldom.Document
	refs int
}

// NewDocSource returns an empty source over the scenario.
func NewDocSource(sc *Scenario) *DocSource {
	return &DocSource{sc: sc, live: map[int]*docEntry{}}
}

// Acquire returns source i's challenge document, building it if no holder
// exists, and takes a reference. Every Acquire must be paired with a
// Release or the memory bound degrades to O(sources).
func (ds *DocSource) Acquire(i int) *xmldom.Document {
	ds.mu.Lock()
	if e, ok := ds.live[i]; ok {
		e.refs++
		ds.mu.Unlock()
		return e.doc
	}
	ds.mu.Unlock()
	doc := ds.sc.ChallengeDocument(i) // built outside the lock; builds may race
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if e, ok := ds.live[i]; ok { // another acquirer won; share its copy
		e.refs++
		return e.doc
	}
	ds.builds++
	ds.live[i] = &docEntry{doc: doc, refs: 1}
	if len(ds.live) > ds.highWater {
		ds.highWater = len(ds.live)
	}
	return doc
}

// Release drops one reference to source i; the last release frees the
// document.
func (ds *DocSource) Release(i int) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if e, ok := ds.live[i]; ok {
		if e.refs--; e.refs <= 0 {
			delete(ds.live, i)
		}
	}
}

// Stats reports how many documents were ever built, how many are live now,
// and the peak simultaneous count — the number the streaming regression
// test asserts stays bounded by the worker pool.
func (ds *DocSource) Stats() (builds, live, highWater int) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.builds, len(ds.live), ds.highWater
}
