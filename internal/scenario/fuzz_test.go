package scenario

import (
	"testing"

	"thalia/internal/integration"
	"thalia/internal/xmldom"
)

// FuzzScenarioGen is the generator's differential fuzzer: for arbitrary
// (seed, sources, mix grammar, size) inputs, parameter validation must
// decide cleanly (error or scenario, never a panic), and for every valid
// scenario a sampled source must render parseable XML, evaluate its
// reference query to exactly the computed truth where checkable, and be
// answered with exactly the computed truth by the mediator. Generation is
// pure, so any corpus entry that ever fails reproduces forever.
func FuzzScenarioGen(f *testing.F) {
	f.Add(int64(1), uint16(35), "uniform", uint16(4))
	f.Add(int64(42), uint16(3), "synonyms:2,nulls,7:3", uint16(2))
	f.Add(int64(-9), uint16(500), "language", uint16(3))
	f.Add(int64(0), uint16(1), "composition:1000000", uint16(500))
	f.Add(int64(7), uint16(12), "1,2,3,4,5,6,7,8,9,10,11,12", uint16(0))
	f.Add(int64(99), uint16(8), "semantic,structure,sets", uint16(9))
	f.Fuzz(func(t *testing.T, seed int64, sources uint16, mixStr string, size uint16) {
		mix, err := ParseMix(mixStr)
		if err != nil {
			return // invalid grammar is a clean rejection, not a bug
		}
		sc, err := New(Params{Sources: int(sources), Seed: seed, Mix: mix, Size: int(size)})
		if err != nil {
			return
		}
		// Sample one source pseudo-derived from the inputs; purity means
		// one source checks as much as all of them over enough executions.
		i := int((uint64(seed) + uint64(size)) % uint64(sc.Sources()))

		doc, err := xmldom.ParseString(sc.ChallengeXML(i))
		if err != nil {
			t.Fatalf("source %d: challenge XML does not parse: %v", i, err)
		}
		if doc.Root == nil || doc.Root.Name != "catalog" {
			t.Fatalf("source %d: bad root", i)
		}

		truth := sc.Truth(i)
		if len(truth) == 0 {
			t.Fatalf("source %d (case %v): no planted answer row", i, sc.Case(i))
		}
		refRows, checkable, err := sc.RefRows(i)
		if err != nil {
			t.Fatalf("source %d: RefRows: %v", i, err)
		}
		if checkable {
			if missing, extra := integration.MatchRows(truth, refRows); len(missing) > 0 || len(extra) > 0 {
				t.Fatalf("source %d: plan engine disagrees with truth\nmissing %v\nextra %v", i, missing, extra)
			}
		}
		ans, err := sc.NewMediator().Answer(integration.Request{QueryID: i + 1, Challenge: sc.Name(i)})
		if err != nil {
			t.Fatalf("source %d: mediator: %v", i, err)
		}
		if missing, extra := integration.MatchRows(truth, ans.Rows); len(missing) > 0 || len(extra) > 0 {
			t.Fatalf("source %d: mediator disagrees with truth\nmissing %v\nextra %v", i, missing, extra)
		}
	})
}
