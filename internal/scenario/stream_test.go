package scenario

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"thalia/internal/benchmark"
	"thalia/internal/faultline"
)

// streamHeapCeiling is the live-heap growth budget for the 5000-source
// run. The workload necessarily holds O(sources) query metadata and
// scorecard rows (a few MB); if released challenge documents accumulated
// instead of dying — O(sources) documents at ~50KB each is ~250MB — the
// run blows through this ceiling many times over.
const streamHeapCeiling = 128 << 20

// TestStreamingMemoryBounded is the bounded-memory regression gate: a
// 5000-source evaluation must keep peak live heap O(pool), not O(sources),
// and the DocSource high-water mark must never exceed the worker pool.
func TestStreamingMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("5000-source evaluation; skipped with -short")
	}
	const sources, pool = 5000, 8
	sc, err := New(Params{Sources: sources, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	med := sc.NewMediator()
	r := benchmark.NewStreamingRunner(sc.Queries())
	r.Concurrency = pool

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak.Load() {
					peak.Store(m.HeapAlloc)
				}
			}
		}
	}()

	cards, err := r.EvaluateAll(med)
	close(done)
	if err != nil {
		t.Fatal(err)
	}
	if c := cards[0].CorrectCount(); c != sources {
		t.Fatalf("%d/%d correct", c, sources)
	}

	builds, live, highWater := med.Docs().Stats()
	if builds != sources {
		t.Errorf("builds = %d, want %d (one per source)", builds, sources)
	}
	if live != 0 {
		t.Errorf("%d documents still live after the run", live)
	}
	if highWater > pool {
		t.Errorf("DocSource high water %d exceeds pool %d: streaming bound broken", highWater, pool)
	}
	if grew := int64(peak.Load()) - int64(before.HeapAlloc); grew > streamHeapCeiling {
		t.Errorf("peak live heap grew %d MB, budget %d MB: documents are accumulating",
			grew>>20, int64(streamHeapCeiling)>>20)
	}
}

// TestScenarioChaosDegradesNeverAborts extends the chaos conformance
// contract to generated scenarios: a fault-wrapped mediator under the
// resilience policy must finish the run (degraded cells, never an abort)
// and two same-seed runs must render byte-identical chaos scorecards.
func TestScenarioChaosDegradesNeverAborts(t *testing.T) {
	plan := &faultline.Plan{Seed: 1337, Rules: []faultline.Rule{
		{Kind: faultline.KindTransient, Probability: 0.30},
		{Kind: faultline.KindPermanent, Probability: 0.05},
	}}
	var renders []string
	for run := 0; run < 2; run++ {
		sc, err := New(Params{Sources: 20, Seed: 13, Size: 3})
		if err != nil {
			t.Fatal(err)
		}
		r := benchmark.NewStreamingRunner(sc.Queries())
		r.Concurrency = 4
		r.Resilience = benchmark.DefaultResilience(1337)
		cards, err := r.EvaluateAll(faultline.Wrap(sc.NewMediator(), plan, nil))
		if err != nil {
			t.Fatalf("run %d: chaos run aborted: %v", run, err)
		}
		renders = append(renders, cards[0].Format()+benchmark.FormatChaos(cards))
	}
	if renders[0] != renders[1] {
		t.Errorf("same-seed chaos runs diverged\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			renders[0], renders[1])
	}
}
