package scenario

import (
	"fmt"
	"regexp"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/integration"
	"thalia/internal/mapping"
	"thalia/internal/xmldom"
)

// Mediator answers generated queries against the challenge dialects: a
// schema-mapping mediator in the THALIA sense, with the per-class external
// functions (clock conversion, Umfang arithmetic, lexicon lookup, ...)
// charged to the effort model the same way the canonical systems charge
// theirs.
//
// Concurrency contract: Answer is safe for concurrent use; per-call state
// lives in the call, and the shared DocSource is internally locked.
type Mediator struct {
	sc   *Scenario
	docs *DocSource
}

// NewMediator returns the scenario's mediator with a fresh DocSource.
func (sc *Scenario) NewMediator() *Mediator {
	return &Mediator{sc: sc, docs: NewDocSource(sc)}
}

// Name implements integration.System.
func (m *Mediator) Name() string { return "scenario-mediator" }

// Description implements integration.System.
func (m *Mediator) Description() string {
	return "Generated-scenario mediator: streams challenge documents through a refcounted DocSource and resolves each heterogeneity class with the benchmark's mapping functions."
}

// Docs exposes the mediator's document source for memory accounting.
func (m *Mediator) Docs() *DocSource { return m.docs }

// Answer implements integration.System: materialize the challenge
// document, run the challenge-dialect query through the compiled-plan
// engine, shape rows with the class's mapping functions, release the
// document.
func (m *Mediator) Answer(req integration.Request) (*integration.Answer, error) {
	i, err := m.sc.Index(req.Challenge)
	if err != nil {
		return nil, err
	}
	spec := m.sc.Spec(i)
	doc := m.docs.Acquire(i)
	defer m.docs.Release(i)
	els, err := evalToElements(spec.ChallengeXQuery, spec.Source, doc)
	if err != nil {
		return nil, err
	}
	var rows []integration.Row
	for _, el := range els {
		rs, err := chalExtract(spec, el)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	eff, fns := effortFor(spec.Case)
	return &integration.Answer{Rows: rows, Effort: eff, Functions: fns}, nil
}

// termRE decomposes a semester-as-column-name element ("Fall2003").
var termRE = regexp.MustCompile(`^(Fall|Winter|Spring|Summer)(\d{4})$`)

// chalExtract shapes one challenge-dialect course element into canonical
// rows, applying the Go-side mapping work the dialect demands.
func chalExtract(spec QuerySpec, el *xmldom.Element) ([]integration.Row, error) {
	var rows []integration.Row
	course := el.ChildText("number")
	add := func(extra integration.Row) {
		r := integration.Row{"source": spec.Source, "course": course}
		for k, v := range extra {
			r[k] = v
		}
		rows = append(rows, r)
	}
	title := el.ChildText("title")
	switch spec.Case {
	case hetero.Synonyms:
		for _, in := range el.ChildrenNamed("lecturer") {
			if in.Text() == spec.Instructor {
				add(integration.Row{"instructor": in.Text()})
			}
		}
	case hetero.SimpleMapping:
		start, end, err := mapping.ParseClockRange(el.ChildText("time"))
		if err != nil {
			return nil, fmt.Errorf("scenario: mediator %s: %w", spec.Source, err)
		}
		add(integration.Row{"title": title, "time": start.String() + "-" + end.String()})
	case hetero.UnionTypes:
		add(integration.Row{"title": title})
	case hetero.ComplexMappings:
		u, err := mapping.ParseUmfang(el.ChildText("umfang"))
		if err != nil {
			return nil, fmt.Errorf("scenario: mediator %s: %w", spec.Source, err)
		}
		if u.CreditHours() > spec.Credits {
			add(integration.Row{"title": title, "credits": fmt.Sprintf("%d", u.CreditHours())})
		}
	case hetero.LanguageExpression:
		course = el.ChildText("Nummer")
		gt := el.ChildText("Titel")
		if germanLex.ValueContains(gt, spec.Subject) {
			add(integration.Row{"title": gt})
		}
	case hetero.Nulls:
		tb := mapping.Missing().Marker()
		if t := el.Child("textbook"); t != nil && strings.TrimSpace(t.Text()) != "" {
			tb = mapping.Present(t.Text()).Marker()
		}
		add(integration.Row{"title": title, "textbook": tb})
	case hetero.VirtualColumns:
		if mapping.InferEntryLevel("", el.ChildText("comment")) {
			add(integration.Row{"title": title})
		}
	case hetero.SemanticIncompatibility:
		add(integration.Row{"title": title, "restriction": mapping.Inapplicable().Marker()})
	case hetero.SameAttributeDifferentStructure:
		room := ""
		if sec := el.Child("section"); sec != nil {
			room = sec.ChildText("room")
		}
		add(integration.Row{"title": title, "room": room})
	case hetero.HandlingSets:
		for _, name := range strings.Split(el.ChildText("instructors"), "; ") {
			add(integration.Row{"title": title, "instructor": name})
		}
	case hetero.AttributeNameDoesNotDefineSemantics:
		for _, ch := range el.ChildElements() {
			m := termRE.FindStringSubmatch(ch.Name)
			if m == nil {
				continue
			}
			add(integration.Row{"title": title, "instructor": ch.Text(), "semester": m[1] + " " + m[2]})
		}
	case hetero.AttributeComposition:
		t, day, tm, err := decomposeListing(el.ChildText("listing"))
		if err != nil {
			return nil, fmt.Errorf("scenario: mediator %s: %w", spec.Source, err)
		}
		title = t
		add(integration.Row{"title": t, "day": day, "time": tm})
	}
	return rows, nil
}

// decomposeListing splits a composed listing value back into its parts:
// "Advanced Algorithms. MWF 13:30-14:50" → title, days, time.
func decomposeListing(v string) (title, day, tm string, err error) {
	i := strings.LastIndex(v, ". ")
	if i < 0 {
		return "", "", "", fmt.Errorf("scenario: listing %q has no schedule part", v)
	}
	title, rest := v[:i], v[i+2:]
	parts := strings.SplitN(rest, " ", 2)
	if len(parts) != 2 {
		return "", "", "", fmt.Errorf("scenario: listing %q has no time part", v)
	}
	return title, parts[0], parts[1], nil
}

// effortFor charges each family the integration effort its dialect costs
// the mediator, mirroring how the paper grades the canonical systems:
// renamings are free, single-function conversions are small, dialects
// needing inference or arithmetic over composed values are moderate.
func effortFor(c hetero.Case) (integration.Effort, []integration.FunctionUse) {
	switch c {
	case hetero.Synonyms:
		return integration.EffortNone, nil
	case hetero.SimpleMapping:
		return integration.EffortSmall, []integration.FunctionUse{{Name: "to24hourRange", Complexity: 1}}
	case hetero.UnionTypes:
		return integration.EffortSmall, []integration.FunctionUse{{Name: "derefTitle", Complexity: 1}}
	case hetero.ComplexMappings:
		return integration.EffortModerate, []integration.FunctionUse{{Name: "parseUmfang", Complexity: 2}}
	case hetero.LanguageExpression:
		return integration.EffortModerate, []integration.FunctionUse{{Name: "germanLexicon", Complexity: 2}}
	case hetero.Nulls:
		return integration.EffortSmall, []integration.FunctionUse{{Name: "nullMissing", Complexity: 1}}
	case hetero.VirtualColumns:
		return integration.EffortModerate, []integration.FunctionUse{{Name: "inferEntryLevel", Complexity: 2}}
	case hetero.SemanticIncompatibility:
		return integration.EffortModerate, []integration.FunctionUse{{Name: "nullInapplicable", Complexity: 2}}
	case hetero.SameAttributeDifferentStructure:
		return integration.EffortSmall, []integration.FunctionUse{{Name: "sectionRoom", Complexity: 1}}
	case hetero.HandlingSets:
		return integration.EffortSmall, []integration.FunctionUse{{Name: "splitInstructors", Complexity: 1}}
	case hetero.AttributeNameDoesNotDefineSemantics:
		return integration.EffortModerate, []integration.FunctionUse{{Name: "semesterColumn", Complexity: 2}}
	case hetero.AttributeComposition:
		return integration.EffortModerate, []integration.FunctionUse{{Name: "decomposeListing", Complexity: 2}}
	default:
		return integration.EffortLarge, nil
	}
}
