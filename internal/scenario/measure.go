package scenario

import (
	"fmt"
	"runtime"
	"time"

	"thalia/internal/benchmark"
)

// DefaultScalePoints are the workload sizes the committed BENCH_scale.json
// artifact pins: the paper's own 35, then two orders past it.
var DefaultScalePoints = []int{35, 500, 5000}

// scaleRuns picks how many full evaluations to sample at a given size —
// more passes at small sizes where a single pass is too quick to time
// stably, one pass at sizes that take seconds on their own.
func scaleRuns(n int) int {
	switch {
	case n <= 50:
		return 12
	case n <= 1000:
		return 4
	default:
		return 1
	}
}

// MeasureScale times the streaming evaluation of generated scenarios at
// each workload size and returns the "benchmark_scale" report: one timing
// row per point with the cells/second throughput that the scaling-curve
// gate compares. Every pass must score fully correct — a throughput number
// for a wrong evaluation would be meaningless — so a correctness miss is an
// error, not a data point.
func MeasureScale(points []int, mix Mix, seed int64, pool int) (*benchmark.Report, error) {
	if len(points) == 0 {
		points = DefaultScalePoints
	}
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	rep := &benchmark.Report{Suite: "benchmark_scale", GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, n := range points {
		sc, err := New(Params{Sources: n, Seed: seed, Mix: mix})
		if err != nil {
			return nil, err
		}
		med := sc.NewMediator()
		if len(rep.Systems) == 0 {
			rep.Systems = append(rep.Systems, med.Name())
		}
		r := benchmark.NewStreamingRunner(sc.Queries())
		r.Concurrency = pool
		check := func() error {
			cards, err := r.EvaluateAll(med)
			if err != nil {
				return fmt.Errorf("scenario: scale n=%d: %w", n, err)
			}
			if c := cards[0].CorrectCount(); c != n {
				return fmt.Errorf("scenario: scale n=%d: only %d/%d cells correct", n, c, n)
			}
			return nil
		}
		if err := check(); err != nil { // warm pass, not timed
			return nil, err
		}
		// Report the best pass, not the mean: on shared hardware the
		// minimum is the least noisy estimator of the workload's cost, and
		// the ±30% regression gate needs numbers that survive a rerun.
		runs := scaleRuns(n)
		var ns int64
		for k := 0; k < runs; k++ {
			start := time.Now()
			if err := check(); err != nil {
				return nil, err
			}
			if d := time.Since(start).Nanoseconds(); ns == 0 || d < ns {
				ns = d
			}
		}
		t := benchmark.Timing{Name: fmt.Sprintf("scale/n%d", n), Runs: runs, NsPerOp: ns}
		if ns > 0 {
			t.CellsPerSec = float64(n) / (float64(ns) / 1e9)
		}
		rep.Timings = append(rep.Timings, t)
	}
	return rep, nil
}
