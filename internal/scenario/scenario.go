// Package scenario generates parameterized benchmark workloads: N
// synthetic course catalogs with a chosen heterogeneity mix, scaled
// document sizes, and one generated query per catalog drawn from a query
// family for that catalog's heterogeneity class — each with a computable
// expected answer, so correctness is checkable at any N without
// hand-written goldens.
//
// THALIA hard-codes one point in the benchmark space (35 catalogs × 12
// queries); a scenario is a tunable point: sources, mix, seed and size are
// free dimensions, turning the scorecard into a matrix over workload
// shape (the flexible-benchmark framing of Alaska, and TAQO-style query
// generation).
//
// Determinism contract: every per-source artifact — the assigned
// heterogeneity case, the ground-truth courses, both rendered documents,
// the query and its expected answer — is a pure function of (seed, source
// index) via a splitmix64 stream. Sources therefore regenerate on demand,
// in any order, from any goroutine: the foundation of both the streaming
// evaluation contract (documents are materialized per cell and released,
// holding O(pool) documents live instead of O(sources)) and byte-identical
// ranked scorecards at any worker-pool size.
package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"thalia/internal/catalog"
	"thalia/internal/hetero"
)

// MaxSources bounds a scenario's size; a guard against misparsed inputs,
// not a design limit.
const MaxSources = 1_000_000

// maxWeight bounds a single mix weight (the pick is by threshold scan, so
// large weights cost nothing, but bounded totals keep the arithmetic safe).
const maxWeight = 1_000_000

// Mix is a heterogeneity mix: relative weights per case. Sources are
// assigned cases by weighted draw; a zero or absent weight excludes the
// case.
type Mix map[hetero.Case]int

// Uniform returns the mix giving all twelve cases equal weight.
func Uniform() Mix {
	m := Mix{}
	for _, c := range hetero.AllCases() {
		m[c] = 1
	}
	return m
}

// mixSlugs names each case in the mix grammar, in case order.
var mixSlugs = [12]string{
	"synonyms", "simple-mapping", "union-types", "complex-mappings",
	"language", "nulls", "virtual-columns", "semantic",
	"structure", "sets", "column-names", "composition",
}

// slugFor returns the mix-grammar slug for a case.
func slugFor(c hetero.Case) string { return mixSlugs[int(c)-1] }

// caseForSlug resolves a mix-grammar term: a slug from mixSlugs or a case
// number 1-12.
func caseForSlug(s string) (hetero.Case, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	for i, slug := range mixSlugs {
		if s == slug {
			return hetero.Case(i + 1), nil
		}
	}
	if n, err := strconv.Atoi(s); err == nil && n >= 1 && n <= 12 {
		return hetero.Case(n), nil
	}
	return 0, fmt.Errorf("scenario: unknown heterogeneity %q (want a case number 1-12 or one of %s)",
		s, strings.Join(mixSlugs[:], ", "))
}

// ParseMix parses the mix grammar: "uniform" (or empty) for the uniform
// mix, or a comma-separated list of term[:weight] entries where term is a
// case slug ("synonyms", "nulls", ...) or case number and weight defaults
// to 1 — e.g. "synonyms:2,nulls,7:3".
func ParseMix(s string) (Mix, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "uniform") {
		return Uniform(), nil
	}
	m := Mix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		term, weight := part, 1
		if i := strings.LastIndexByte(part, ':'); i >= 0 {
			term = part[:i]
			w, err := strconv.Atoi(strings.TrimSpace(part[i+1:]))
			if err != nil {
				return nil, fmt.Errorf("scenario: bad mix weight in %q", part)
			}
			weight = w
		}
		c, err := caseForSlug(term)
		if err != nil {
			return nil, err
		}
		if weight < 0 || weight > maxWeight {
			return nil, fmt.Errorf("scenario: mix weight %d out of range [0,%d]", weight, maxWeight)
		}
		m[c] += weight
	}
	return m, nil
}

// String renders the mix in the grammar ParseMix accepts, in case order;
// the uniform mix renders as "uniform".
func (m Mix) String() string {
	uniform := len(m) == 12
	var parts []string
	for _, c := range hetero.AllCases() {
		w := m[c]
		if w <= 0 {
			uniform = false
			continue
		}
		if w != 1 {
			uniform = false
		}
		parts = append(parts, fmt.Sprintf("%s:%d", slugFor(c), w))
	}
	if uniform {
		return "uniform"
	}
	return strings.Join(parts, ",")
}

// validate checks the mix and returns the cases with positive weight, in
// case order, with the total weight.
func (m Mix) validate() (cases []hetero.Case, weights []int, total int, err error) {
	for c, w := range m {
		if c < hetero.Synonyms || c > hetero.AttributeComposition {
			return nil, nil, 0, fmt.Errorf("scenario: mix names invalid %v", c)
		}
		if w < 0 || w > maxWeight {
			return nil, nil, 0, fmt.Errorf("scenario: mix weight %d for %v out of range [0,%d]", w, c, maxWeight)
		}
	}
	for _, c := range hetero.AllCases() {
		if w := m[c]; w > 0 {
			cases = append(cases, c)
			weights = append(weights, w)
			total += w
		}
	}
	if total == 0 {
		return nil, nil, 0, fmt.Errorf("scenario: mix has no positive weight")
	}
	return cases, weights, total, nil
}

// Params describes one scenario workload point.
type Params struct {
	// Sources is the number of generated catalogs (1..MaxSources).
	Sources int
	// Seed fixes every random choice; same seed, same workload.
	Seed int64
	// Mix is the heterogeneity mix; nil means Uniform().
	Mix Mix
	// Size scales documents: each catalog holds Size..2*Size-1 courses.
	// Zero means DefaultSize; valid range is 2..MaxSize.
	Size int
}

// DefaultSize is the per-catalog course count scale when Params.Size is 0.
const DefaultSize = 12

// MaxSize bounds Params.Size.
const MaxSize = 500

// Scenario is a validated workload generator. It holds only the
// parameters and the normalized mix — O(1) state regardless of Sources —
// and is safe for concurrent use.
type Scenario struct {
	p          Params
	mixCases   []hetero.Case
	mixWeights []int
	mixTotal   int
}

// New validates the parameters and returns the generator.
func New(p Params) (*Scenario, error) {
	if p.Sources < 1 || p.Sources > MaxSources {
		return nil, fmt.Errorf("scenario: sources %d out of range [1,%d]", p.Sources, MaxSources)
	}
	if p.Size == 0 {
		p.Size = DefaultSize
	}
	if p.Size < 2 || p.Size > MaxSize {
		return nil, fmt.Errorf("scenario: size %d out of range [2,%d]", p.Size, MaxSize)
	}
	if p.Mix == nil {
		p.Mix = Uniform()
	}
	cases, weights, total, err := p.Mix.validate()
	if err != nil {
		return nil, err
	}
	return &Scenario{p: p, mixCases: cases, mixWeights: weights, mixTotal: total}, nil
}

// Params returns the validated parameters (with defaults filled in).
func (sc *Scenario) Params() Params { return sc.p }

// Sources returns the number of generated catalogs.
func (sc *Scenario) Sources() int { return sc.p.Sources }

// Name returns the i-th source's name, e.g. "s00042" — the Challenge
// field of the generated queries and the school attribute of the rendered
// documents; doc() URIs append ".xml".
func (sc *Scenario) Name(i int) string { return fmt.Sprintf("s%05d", i+1) }

// Index resolves a source name (or "name.xml" URI) back to its index.
func (sc *Scenario) Index(name string) (int, error) {
	name = strings.TrimSuffix(name, ".xml")
	if len(name) < 2 || name[0] != 's' {
		return 0, fmt.Errorf("scenario: not a scenario source: %q", name)
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n < 1 || n > sc.p.Sources {
		return 0, fmt.Errorf("scenario: no source %q in a %d-source scenario", name, sc.p.Sources)
	}
	return n - 1, nil
}

// Case returns the heterogeneity case assigned to source i.
func (sc *Scenario) Case(i int) hetero.Case {
	r := sc.sourceRNG(i)
	return sc.pickCase(r)
}

// sourceRNG returns source i's deterministic random stream.
func (sc *Scenario) sourceRNG(i int) *rng { return newRNG(sc.p.Seed, uint64(i)) }

// pickCase draws the source's case from the weighted mix. It must be the
// stream's FIRST draw so Case(i) and gen(i) agree.
func (sc *Scenario) pickCase(r *rng) hetero.Case {
	n := r.intn(sc.mixTotal)
	for k, w := range sc.mixWeights {
		if n < w {
			return sc.mixCases[k]
		}
		n -= w
	}
	return sc.mixCases[len(sc.mixCases)-1]
}

// Courses returns source i's ground-truth course data. The slice is
// freshly generated on every call (regeneration is the streaming model's
// memory bound) and safe to retain or mutate.
func (sc *Scenario) Courses(i int) []catalog.Course {
	cs, _ := sc.gen(i)
	return cs
}

// rng is a splitmix64 stream: tiny, allocation-free, and a pure function
// of its seed — the property every generated artifact's determinism rests
// on. (math/rand is deliberately avoided: its global state and Seed
// deprecation both fight reproducibility.)
type rng struct{ state uint64 }

// newRNG derives the stream for one (seed, source) pair.
func newRNG(seed int64, stream uint64) *rng {
	return &rng{state: uint64(seed)*0x9e3779b97f4a7c15 + stream*0xbf58476d1ce4e5b9 + 1}
}

// next advances the splitmix64 state and returns 64 mixed bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0,n); n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Vocabulary pools. Subjects pair each English topic with the German
// rendering the mapping lexicon knows, so language-expression sources stay
// resolvable by the same dictionary the canonical testbed uses.
var subjects = []struct{ en, de string }{
	{"Database Systems", "Datenbanksysteme"},
	{"Data Structures", "Datenstrukturen"},
	{"Operating Systems", "Betriebssysteme"},
	{"Computer Networks", "Rechnernetze"},
	{"Algorithms", "Algorithmen"},
	{"Compilers", "Übersetzerbau"},
	{"Verification", "Verifikation"},
	{"Programming", "Programmierung"},
	{"Computer Science", "Informatik"},
}

var titlePrefixes = []struct{ en, de string }{
	{"Introduction to ", "Einführung in "},
	{"Advanced ", "Fortgeschrittene "},
	{"", ""},
	{"Topics in ", "Ausgewählte Kapitel: "},
	{"Applied ", "Angewandte "},
}

var firstNames = []string{"Mark", "Rita", "Hana", "Joachim", "Ling", "Sara", "Victor", "Amina"}

var lastNames = []string{"Hall", "Wong", "Schmidt", "Okafor", "Iyer", "Novak", "Baker", "Lindqvist"}

var buildings = []string{"Hall", "Weil", "Benton", "CSE"}

var dayPool = []string{"MWF", "TTh", "MW", "F", "TTh"}

var semesters = []string{"Fall 2003", "Winter 2004", "Spring 2004"}

// gen generates source i: its ground-truth courses and the query spec for
// its family. Everything derives from the source's splitmix64 stream, so
// repeated calls are identical.
func (sc *Scenario) gen(i int) ([]catalog.Course, QuerySpec) {
	r := sc.sourceRNG(i)
	cse := sc.pickCase(r)
	n := sc.p.Size + r.intn(sc.p.Size)
	cs := make([]catalog.Course, n)
	var plantedSubject string
	for j := range cs {
		cs[j] = genCourse(r, cse, j)
		if j == 0 {
			plantedSubject = subjects[courseSubject(&cs[0])].en
		}
	}
	spec := sc.buildSpec(i, cse, plantedSubject, cs)
	return cs, spec
}

// subjectIdx recovers which subject a generated title used; genCourse
// stamps it in the description so no side table is needed.
func courseSubject(c *catalog.Course) int {
	for idx := range subjects {
		if strings.Contains(c.Title, subjects[idx].en) {
			return idx
		}
	}
	return 0
}

// genCourse draws one course from the stream. The planted course (j==0)
// anchors the source's query parameters, so a few case-specific guarantees
// are forced there: a set-valued instructor list for case 10, a present
// textbook for case 6 (with j==1 forced empty so both null flavors exist).
func genCourse(r *rng, cse hetero.Case, j int) catalog.Course {
	si := r.intn(len(subjects))
	pi := r.intn(len(titlePrefixes))
	num := fmt.Sprintf("CS%d", 100+j)

	nInstr := 1 + r.intn(2)
	if cse == hetero.AttributeNameDoesNotDefineSemantics {
		nInstr = 1 // the semester-named column holds exactly one name
	}
	if cse == hetero.HandlingSets && j == 0 {
		nInstr = 2 // the planted course must exercise the set
	}
	instructors := make([]catalog.Instructor, nInstr)
	for k := range instructors {
		instructors[k] = catalog.Instructor{
			Name: firstNames[r.intn(len(firstNames))] + " " + lastNames[r.intn(len(lastNames))],
		}
	}

	start := 8*60 + 30*r.intn(18) // 08:00 .. 16:30
	dur := 50
	if r.intn(2) == 1 {
		dur = 80
	}

	credits := 1 + r.intn(4)
	prereq := "None"
	comment := "No prerequisite required."
	if r.intn(2) == 1 && j > 0 {
		prereq = fmt.Sprintf("CS%d", 100+r.intn(j))
		comment = fmt.Sprintf("Prerequisite: %s required.", prereq)
	}

	textbook := ""
	if r.intn(3) > 0 {
		textbook = "Foundations of " + subjects[si].en
	}
	if cse == hetero.Nulls {
		// Both null flavors must exist for the heterogeneity to be
		// observable: the planted course has a textbook, its neighbor
		// provably lacks one.
		if j == 0 {
			textbook = "Foundations of " + subjects[si].en
		}
		if j == 1 {
			textbook = ""
		}
	}

	restricts := []string{"JR or SR", "SR", "FR, SO", "GR", "JR"}

	return catalog.Course{
		Number:      num,
		Title:       titlePrefixes[pi].en + subjects[si].en,
		TitleURL:    "http://courses.example.edu/" + num,
		GermanTitle: titlePrefixes[pi].de + subjects[si].de,
		Instructors: instructors,
		Days:        dayPool[r.intn(len(dayPool))],
		Start:       start,
		End:         start + dur,
		Room:        fmt.Sprintf("%s %d", buildings[r.intn(len(buildings))], 100+r.intn(300)),
		Credits:     credits,
		Prereq:      prereq,
		Textbook:    textbook,
		Restrict:    restricts[r.intn(len(restricts))],
		Semester:    semesters[r.intn(len(semesters))],
		Comment:     comment,
	}
}

// ClassTotals counts sources per assigned heterogeneity case — the
// workload's realized mix, rendered by `thalia bench --scenario`.
func (sc *Scenario) ClassTotals() map[hetero.Case]int {
	totals := map[hetero.Case]int{}
	for i := 0; i < sc.p.Sources; i++ {
		totals[sc.Case(i)]++
	}
	return totals
}

// sortedCases returns the cases present in totals, in case order.
func sortedCases(totals map[hetero.Case]int) []hetero.Case {
	cases := make([]hetero.Case, 0, len(totals))
	for c := range totals {
		cases = append(cases, c)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i] < cases[j] })
	return cases
}
