package scenario

import (
	"fmt"
	"strings"

	"thalia/internal/benchmark"
	"thalia/internal/catalog"
	"thalia/internal/hetero"
	"thalia/internal/integration"
	"thalia/internal/mapping"
	"thalia/internal/xmldom"
	"thalia/internal/xquery"
	"thalia/internal/xquery/plan"
)

// QuerySpec is the generated query for one source: the benchmark question
// in both dialects plus the parameters the truth computation needs. Like
// everything else it is a pure function of (seed, source index).
type QuerySpec struct {
	// Source is the source name ("s00042"); doc() URIs append ".xml".
	Source string
	// Case is the source's heterogeneity class; it selects the query family.
	Case hetero.Case
	// Name describes the question, e.g. `courses taught by "Rita Wong"`.
	Name string
	// XQuery asks the question against the reference schema — the text a
	// benchmark Request carries, and what the conformance suite evaluates
	// against the reference document.
	XQuery string
	// ChallengeXQuery asks the same question against the challenge dialect;
	// the scenario mediator compiles and runs this one.
	ChallengeXQuery string
	// Fields is the canonical result-row vocabulary for this family.
	Fields []string

	// Subject, Instructor, Start and Credits are the family parameters,
	// anchored on the source's planted course (index 0) so every query has
	// at least one answer row.
	Subject    string
	Instructor string
	Start      int
	Credits    int // exclusive lower bound for the case-4 credit filter
}

// Spec returns source i's generated query spec.
func (sc *Scenario) Spec(i int) QuerySpec {
	_, spec := sc.gen(i)
	return spec
}

// buildSpec derives source i's query family instance from its planted
// course. Reference queries stay inside the engine subset the canonical
// twelve use: FLWOR over one doc(), '=' with %like% patterns, starts-with,
// numeric comparison.
func (sc *Scenario) buildSpec(i int, cse hetero.Case, subject string, cs []catalog.Course) QuerySpec {
	s := QuerySpec{
		Source:     sc.Name(i),
		Case:       cse,
		Subject:    subject,
		Instructor: cs[0].Instructors[0].Name,
		Start:      cs[0].Start,
		Credits:    cs[0].Credits - 1,
	}
	uri := s.Source + ".xml"
	refFor := fmt.Sprintf("FOR $c in doc(%q)/catalog/course\n", uri)
	chalFor := refFor
	if cse == hetero.LanguageExpression {
		chalFor = fmt.Sprintf("FOR $c in doc(%q)/catalog/Vorlesung\n", uri)
	}
	titleLike := fmt.Sprintf("WHERE $c/title = '%%%s%%'\n", subject)
	const ret = "RETURN $c"

	switch cse {
	case hetero.Synonyms:
		s.Name = fmt.Sprintf("courses taught by %q", s.Instructor)
		s.Fields = []string{"source", "course", "instructor"}
		s.XQuery = refFor + fmt.Sprintf("WHERE $c/instructor = '%s'\n", s.Instructor) + ret
		s.ChallengeXQuery = chalFor + fmt.Sprintf("WHERE $c/lecturer = '%s'\n", s.Instructor) + ret
	case hetero.SimpleMapping:
		s.Name = fmt.Sprintf("courses starting at %s", catalog.Clock24(s.Start))
		s.Fields = []string{"source", "course", "title", "time"}
		s.XQuery = refFor + fmt.Sprintf("WHERE starts-with($c/time, '%s')\n", catalog.Clock24(s.Start)) + ret
		s.ChallengeXQuery = chalFor + fmt.Sprintf("WHERE starts-with($c/time, '%s')\n", catalog.Clock12(s.Start)) + ret
	case hetero.UnionTypes:
		s.Name = fmt.Sprintf("%s courses (hyperlinked titles)", subject)
		s.Fields = []string{"source", "course", "title"}
		s.XQuery = refFor + titleLike + ret
		s.ChallengeXQuery = chalFor + titleLike + ret
	case hetero.ComplexMappings:
		s.Name = fmt.Sprintf("%s courses worth more than %d credits", subject, s.Credits)
		s.Fields = []string{"source", "course", "title", "credits"}
		s.XQuery = refFor + fmt.Sprintf("WHERE $c/credits > %d and $c/title = '%%%s%%'\n", s.Credits, subject) + ret
		s.ChallengeXQuery = chalFor + titleLike + ret // umfang arithmetic happens in the mediator
	case hetero.LanguageExpression:
		s.Name = fmt.Sprintf("%s courses (German source)", subject)
		s.Fields = []string{"source", "course", "title"}
		s.XQuery = refFor + titleLike + ret
		s.ChallengeXQuery = chalFor + ret // lexicon matching happens in the mediator
	case hetero.Nulls:
		s.Name = fmt.Sprintf("textbooks for %s courses", subject)
		s.Fields = []string{"source", "course", "title", "textbook"}
		s.XQuery = refFor + titleLike + ret
		s.ChallengeXQuery = chalFor + titleLike + ret
	case hetero.VirtualColumns:
		s.Name = fmt.Sprintf("entry-level %s courses", subject)
		s.Fields = []string{"source", "course", "title"}
		s.XQuery = refFor + fmt.Sprintf("WHERE $c/prerequisite = 'None' and $c/title = '%%%s%%'\n", subject) + ret
		s.ChallengeXQuery = chalFor + titleLike + ret // comment inference happens in the mediator
	case hetero.SemanticIncompatibility:
		s.Name = fmt.Sprintf("%s courses open to juniors", subject)
		s.Fields = []string{"source", "course", "title", "restriction"}
		s.XQuery = refFor + fmt.Sprintf("WHERE $c/title = '%%%s%%' and $c/restriction = '%%JR%%'\n", subject) + ret
		s.ChallengeXQuery = chalFor + titleLike + ret
	case hetero.SameAttributeDifferentStructure:
		s.Name = fmt.Sprintf("rooms for %s courses", subject)
		s.Fields = []string{"source", "course", "title", "room"}
		s.XQuery = refFor + titleLike + ret
		s.ChallengeXQuery = chalFor + titleLike + ret
	case hetero.HandlingSets:
		s.Name = fmt.Sprintf("instructors of %s courses", subject)
		s.Fields = []string{"source", "course", "title", "instructor"}
		s.XQuery = refFor + titleLike + ret
		s.ChallengeXQuery = chalFor + titleLike + ret
	case hetero.AttributeNameDoesNotDefineSemantics:
		s.Name = fmt.Sprintf("who teaches %s, and when", subject)
		s.Fields = []string{"source", "course", "title", "instructor", "semester"}
		s.XQuery = refFor + titleLike + ret
		s.ChallengeXQuery = chalFor + titleLike + ret
	case hetero.AttributeComposition:
		s.Name = fmt.Sprintf("meeting times of %s courses", subject)
		s.Fields = []string{"source", "course", "title", "day", "time"}
		s.XQuery = refFor + titleLike + ret
		s.ChallengeXQuery = chalFor + fmt.Sprintf("WHERE $c/listing = '%%%s%%'\n", subject) + ret
	}
	return s
}

// germanLex is the shared (read-only) schema lexicon; truth and mediator
// resolve case-5 values through the same dictionary the canonical testbed
// uses.
var germanLex = mapping.NewGermanLexicon()

// Truth computes source i's expected answer from the ground-truth courses —
// no documents, no XQuery, so the conformance suite can check generator,
// engine and mediator against it independently.
func (sc *Scenario) Truth(i int) []integration.Row {
	cs, spec := sc.gen(i)
	return truthFor(spec, cs)
}

func truthFor(spec QuerySpec, cs []catalog.Course) []integration.Row {
	var rows []integration.Row
	add := func(c *catalog.Course, extra integration.Row) {
		r := integration.Row{"source": spec.Source, "course": c.Number}
		for k, v := range extra {
			r[k] = v
		}
		rows = append(rows, r)
	}
	titleMatch := func(c *catalog.Course) bool { return strings.Contains(c.Title, spec.Subject) }
	for k := range cs {
		c := &cs[k]
		switch spec.Case {
		case hetero.Synonyms:
			for _, in := range c.Instructors {
				if in.Name == spec.Instructor {
					add(c, integration.Row{"instructor": in.Name})
				}
			}
		case hetero.SimpleMapping:
			if c.Start == spec.Start {
				add(c, integration.Row{"title": c.Title, "time": timeRange24(c)})
			}
		case hetero.UnionTypes:
			if titleMatch(c) {
				add(c, integration.Row{"title": c.Title})
			}
		case hetero.ComplexMappings:
			if c.Credits > spec.Credits && titleMatch(c) {
				add(c, integration.Row{"title": c.Title, "credits": fmt.Sprintf("%d", c.Credits)})
			}
		case hetero.LanguageExpression:
			if germanLex.ValueContains(c.GermanTitle, spec.Subject) {
				add(c, integration.Row{"title": c.GermanTitle})
			}
		case hetero.Nulls:
			if titleMatch(c) {
				tb := mapping.Missing().Marker()
				if strings.TrimSpace(c.Textbook) != "" {
					tb = mapping.Present(c.Textbook).Marker()
				}
				add(c, integration.Row{"title": c.Title, "textbook": tb})
			}
		case hetero.VirtualColumns:
			if titleMatch(c) && mapping.InferEntryLevel("", c.Comment) {
				add(c, integration.Row{"title": c.Title})
			}
		case hetero.SemanticIncompatibility:
			if titleMatch(c) {
				add(c, integration.Row{"title": c.Title, "restriction": mapping.Inapplicable().Marker()})
			}
		case hetero.SameAttributeDifferentStructure:
			if titleMatch(c) {
				add(c, integration.Row{"title": c.Title, "room": c.Room})
			}
		case hetero.HandlingSets:
			if titleMatch(c) {
				for _, in := range c.Instructors {
					add(c, integration.Row{"title": c.Title, "instructor": in.Name})
				}
			}
		case hetero.AttributeNameDoesNotDefineSemantics:
			if titleMatch(c) {
				add(c, integration.Row{"title": c.Title, "instructor": c.Instructors[0].Name, "semester": c.Semester})
			}
		case hetero.AttributeComposition:
			if titleMatch(c) {
				add(c, integration.Row{"title": c.Title, "day": c.Days, "time": timeRange24(c)})
			}
		}
	}
	return rows
}

// Queries materializes the workload as benchmark queries: query i+1 asks
// source i's question, with Truth(i) as its expected answer. The slice is
// O(sources) metadata (strings); documents are NOT built here — a streaming
// runner materializes them per cell through the mediator's DocSource.
func (sc *Scenario) Queries() []*benchmark.Query {
	qs := make([]*benchmark.Query, sc.p.Sources)
	for i := range qs {
		i := i
		spec := sc.Spec(i)
		qs[i] = benchmark.NewQuery(i+1, spec.Case, spec.Name, spec.XQuery,
			spec.Source+"-ref", spec.Source, spec.Fields,
			func() ([]integration.Row, error) { return sc.Truth(i), nil })
	}
	return qs
}

// RefRows evaluates source i's reference-shaped query against its
// reference document with the compiled-plan engine and extracts canonical
// rows — the differential leg proving that generated query text, rendered
// document and computed truth all agree. checkable is false for the two
// families whose truth bakes in mediation knowledge the reference document
// cannot express (case 5: German values; case 8: inapplicable nulls).
func (sc *Scenario) RefRows(i int) (rows []integration.Row, checkable bool, err error) {
	_, spec := sc.gen(i)
	if spec.Case == hetero.LanguageExpression || spec.Case == hetero.SemanticIncompatibility {
		return nil, false, nil
	}
	doc := sc.ReferenceDocument(i)
	els, err := evalToElements(spec.XQuery, spec.Source, doc)
	if err != nil {
		return nil, true, err
	}
	for _, el := range els {
		rows = append(rows, refExtract(spec, el)...)
	}
	return rows, true, nil
}

// evalToElements compiles and runs a one-document query, returning the
// element items.
func evalToElements(query, source string, doc *xmldom.Document) ([]*xmldom.Element, error) {
	p, err := plan.CompileQuery(query)
	if err != nil {
		return nil, fmt.Errorf("scenario: compile %s: %w", source, err)
	}
	uri := source + ".xml"
	ctx := xquery.NewContext(func(u string) (*xmldom.Document, error) {
		if u == uri {
			return doc, nil
		}
		return nil, fmt.Errorf("scenario: no document %q (source %s)", u, source)
	})
	seq, err := p.Eval(ctx)
	if err != nil {
		return nil, fmt.Errorf("scenario: eval %s: %w", source, err)
	}
	var els []*xmldom.Element
	for _, item := range seq {
		if el, ok := item.(*xmldom.Element); ok {
			els = append(els, el)
		}
	}
	return els, nil
}

// refExtract shapes one reference-dialect course element into canonical
// rows for the spec's family.
func refExtract(spec QuerySpec, el *xmldom.Element) []integration.Row {
	var rows []integration.Row
	add := func(extra integration.Row) {
		r := integration.Row{"source": spec.Source, "course": el.ChildText("number")}
		for k, v := range extra {
			r[k] = v
		}
		rows = append(rows, r)
	}
	title := el.ChildText("title")
	switch spec.Case {
	case hetero.Synonyms:
		for _, in := range el.ChildrenNamed("instructor") {
			if in.Text() == spec.Instructor {
				add(integration.Row{"instructor": in.Text()})
			}
		}
	case hetero.SimpleMapping:
		add(integration.Row{"title": title, "time": el.ChildText("time")})
	case hetero.UnionTypes:
		add(integration.Row{"title": title})
	case hetero.ComplexMappings:
		add(integration.Row{"title": title, "credits": el.ChildText("credits")})
	case hetero.Nulls:
		add(integration.Row{"title": title, "textbook": el.ChildText("textbook")})
	case hetero.VirtualColumns:
		add(integration.Row{"title": title})
	case hetero.SameAttributeDifferentStructure:
		add(integration.Row{"title": title, "room": el.ChildText("room")})
	case hetero.HandlingSets:
		for _, in := range el.ChildrenNamed("instructor") {
			add(integration.Row{"title": title, "instructor": in.Text()})
		}
	case hetero.AttributeNameDoesNotDefineSemantics:
		add(integration.Row{"title": title, "instructor": el.ChildText("instructor"), "semester": el.ChildText("semester")})
	case hetero.AttributeComposition:
		add(integration.Row{"title": title, "day": el.ChildText("days"), "time": el.ChildText("time")})
	}
	return rows
}
