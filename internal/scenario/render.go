package scenario

import (
	"fmt"
	"strings"

	"thalia/internal/catalog"
	"thalia/internal/hetero"
	"thalia/internal/xmldom"
)

// ReferenceDocument renders source i in the benchmark's reference shape:
// <catalog school="sNNNNN"> of <course> records with number, title, one
// <instructor> per instructor, days, 24-hour time range, room, credits,
// prerequisite, textbook (element always present, possibly empty),
// restriction, semester and comment.
func (sc *Scenario) ReferenceDocument(i int) *xmldom.Document {
	cs, _ := sc.gen(i)
	root := xmldom.NewElement("catalog").SetAttr("school", sc.Name(i))
	for k := range cs {
		root.Append(refCourse(&cs[k]))
	}
	return xmldom.NewDocument(root)
}

// ChallengeDocument renders source i in its heterogeneity dialect: the
// reference shape transformed by the source's assigned case. The switch
// below is the generator's per-class dispatch — every hetero.Case must
// have an arm here (enforced by the scenariocoverage vet analyzer).
func (sc *Scenario) ChallengeDocument(i int) *xmldom.Document {
	cs, spec := sc.gen(i)
	root := xmldom.NewElement("catalog").SetAttr("school", sc.Name(i))
	for k := range cs {
		root.Append(challengeCourse(&cs[k], spec.Case))
	}
	return xmldom.NewDocument(root)
}

// ChallengeXML renders source i's challenge document as an XML string —
// the fuzz targets parse this back to prove generated catalogs are
// well-formed.
func (sc *Scenario) ChallengeXML(i int) string {
	var b strings.Builder
	_ = sc.ChallengeDocument(i).WriteTo(&b, xmldom.WriteOptions{Indent: "  "})
	return b.String()
}

// timeRange24 renders a course's meeting time in the reference spelling.
func timeRange24(c *catalog.Course) string {
	return catalog.Clock24(c.Start) + "-" + catalog.Clock24(c.End)
}

// refCourse builds one reference-shaped course element.
func refCourse(c *catalog.Course) *xmldom.Element {
	e := xmldom.NewElement("course")
	appendField(e, "number", c.Number)
	appendField(e, "title", c.Title)
	for _, in := range c.Instructors {
		appendField(e, "instructor", in.Name)
	}
	appendField(e, "days", c.Days)
	appendField(e, "time", timeRange24(c))
	appendField(e, "room", c.Room)
	appendField(e, "credits", fmt.Sprintf("%d", c.Credits))
	appendField(e, "prerequisite", c.Prereq)
	appendField(e, "textbook", c.Textbook)
	appendField(e, "restriction", c.Restrict)
	appendField(e, "semester", c.Semester)
	appendField(e, "comment", c.Comment)
	return e
}

func appendField(e *xmldom.Element, name, value string) {
	f := xmldom.NewElement(name)
	if value != "" {
		f.AppendText(value)
	}
	e.Append(f)
}

// challengeCourse transforms a reference-shaped course into the dialect of
// the given heterogeneity case. Each arm realizes exactly one of the
// paper's twelve cases, phrased so internal/hetero.DetectDocs diagnoses
// that case (and only that case) from the rendered pair.
func challengeCourse(c *catalog.Course, cse hetero.Case) *xmldom.Element {
	e := refCourse(c)
	switch cse {
	case hetero.Synonyms:
		// Case 1: same attribute, different name.
		renameChildren(e, "instructor", "lecturer")
	case hetero.SimpleMapping:
		// Case 2: same attribute, 12-hour clock spelling.
		setChildText(e, "time", catalog.Clock12(c.Start)+"-"+catalog.Clock12(c.End))
	case hetero.UnionTypes:
		// Case 3: the title gains an attribute (hyperlink), a union type.
		e.Child("title").SetAttr("url", c.TitleURL)
	case hetero.ComplexMappings:
		// Case 4: credits spelled as an ETH-style workload ("2V1U").
		lecture := c.Credits - 1
		if lecture < 1 {
			lecture = 1
		}
		removeChildren(e, "credits")
		appendField(e, "umfang", fmt.Sprintf("%dV%dU", lecture, c.Credits-lecture))
	case hetero.LanguageExpression:
		// Case 5: German schema and German title value.
		e.Name = "Vorlesung"
		renameChildren(e, "number", "Nummer")
		renameChildren(e, "instructor", "Dozent")
		renameChildren(e, "time", "Zeit")
		renameChildren(e, "room", "Raum")
		renameChildren(e, "semester", "Semester")
		t := e.Child("title")
		t.Name = "Titel"
		setText(t, c.GermanTitle)
	case hetero.Nulls:
		// Case 6: a missing textbook drops the element entirely.
		if strings.TrimSpace(c.Textbook) == "" {
			removeChildren(e, "textbook")
		}
	case hetero.VirtualColumns:
		// Case 7: no prerequisite column; the comment carries the info.
		removeChildren(e, "prerequisite")
	case hetero.SemanticIncompatibility:
		// Case 8: student classification does not exist in this world.
		removeChildren(e, "restriction")
	case hetero.SameAttributeDifferentStructure:
		// Case 9: the room moves under a section element.
		removeChildren(e, "room")
		sec := xmldom.NewElement("section")
		appendField(sec, "room", c.Room)
		e.Append(sec)
	case hetero.HandlingSets:
		// Case 10: the instructor set joins into one set-valued attribute.
		removeChildren(e, "instructor")
		names := make([]string, len(c.Instructors))
		for k, in := range c.Instructors {
			names[k] = in.Name
		}
		appendField(e, "instructors", strings.Join(names, "; "))
	case hetero.AttributeNameDoesNotDefineSemantics:
		// Case 11: the semester becomes the column NAME holding the
		// instructor — the value lives in the schema.
		removeChildren(e, "instructor")
		removeChildren(e, "semester")
		appendField(e, strings.ReplaceAll(c.Semester, " ", ""), c.Instructors[0].Name)
	case hetero.AttributeComposition:
		// Case 12: title, days and time compose into one listing value.
		removeChildren(e, "title")
		removeChildren(e, "days")
		removeChildren(e, "time")
		appendField(e, "listing", fmt.Sprintf("%s. %s %s", c.Title, c.Days, timeRange24(c)))
	}
	return e
}

// renameChildren renames every direct child called from to to.
func renameChildren(e *xmldom.Element, from, to string) {
	for _, ch := range e.ChildrenNamed(from) {
		ch.Name = to
	}
}

// removeChildren drops every direct child element called name.
func removeChildren(e *xmldom.Element, name string) {
	out := e.Children[:0]
	for _, n := range e.Children {
		if el, ok := n.(*xmldom.Element); ok && el.Name == name {
			continue
		}
		out = append(out, n)
	}
	e.Children = out
}

// setText replaces an element's content with one text node.
func setText(e *xmldom.Element, s string) {
	e.Children = nil
	if s != "" {
		e.AppendText(s)
	}
}

// setChildText replaces the first child name's content.
func setChildText(e *xmldom.Element, name, s string) {
	if ch := e.Child(name); ch != nil {
		setText(ch, s)
	}
}
