package analysis

import (
	"go/ast"
	"go/types"
)

// GoAnalyzer is one check over type-checked Go packages — the Go head's
// analogue of a go vet analyzer, scoped to this repository's invariants.
// Exactly one of Run and RunFacts is set: syntactic analyzers take the raw
// packages, dataflow analyzers take the shared FactBase (call graph plus
// per-function facts) so the program is indexed once per run, not once per
// analyzer.
type GoAnalyzer struct {
	// Name is the check name findings carry.
	Name string
	// Doc is a one-line description for thalia-vet's -list output.
	Doc string
	// Run analyzes the packages together (some checks, like call-graph
	// reachability, are whole-program) and returns findings.
	Run func(pkgs []*GoPackage) []Finding
	// RunFacts analyzes via the shared fact base.
	RunFacts func(fb *FactBase) []Finding
}

// DefaultGoAnalyzers returns the Go head's standard analyzer set: the
// syntactic v1 analyzers plus the v2 dataflow set.
func DefaultGoAnalyzers() []*GoAnalyzer {
	return []*GoAnalyzer{
		Determinism(), PanicPath(), ErrCheck(), ExplainKinds(), FaultKinds(),
		PlanCoverage(), ScenarioCoverage(), CtxFlow(), LockDiscipline(),
		GoLeak(), MapFlow(), TelemetryContract(),
	}
}

// RunGoAnalyzers runs every analyzer over the packages and merges findings.
// The fact base is built lazily, once, when the first RunFacts analyzer
// needs it; afterwards every finding inside a declared function gets its
// Symbol attributed so stable IDs can be computed.
func RunGoAnalyzers(pkgs []*GoPackage, analyzers []*GoAnalyzer) []Finding {
	var fb *FactBase
	var out []Finding
	for _, a := range analyzers {
		if a.RunFacts != nil {
			if fb == nil {
				fb = NewFactBase(pkgs)
			}
			out = append(out, a.RunFacts(fb)...)
			continue
		}
		out = append(out, a.Run(pkgs)...)
	}
	AssignSymbols(pkgs, out)
	return out
}

// inScope reports whether a package is one of the listed import paths.
func inScope(p *GoPackage, scope []string) bool {
	for _, s := range scope {
		if p.ImportPath == s {
			return true
		}
	}
	return false
}

// calleeOf resolves the function object a call expression invokes, when it
// is statically known: a plain function, a method called on a concrete
// receiver, or a builtin. Calls through interfaces or function values
// resolve to nil.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// funcFor resolves the *types.Func a declaration defines.
func funcFor(info *types.Info, decl *ast.FuncDecl) *types.Func {
	if obj, ok := info.Defs[decl.Name].(*types.Func); ok {
		return obj
	}
	return nil
}
