package analysis

import (
	"go/ast"
	"go/types"
)

// GoAnalyzer is one check over type-checked Go packages — the Go head's
// analogue of a go vet analyzer, scoped to this repository's invariants.
type GoAnalyzer struct {
	// Name is the check name findings carry.
	Name string
	// Doc is a one-line description for thalia-vet's -list output.
	Doc string
	// Run analyzes the packages together (some checks, like call-graph
	// reachability, are whole-program) and returns findings.
	Run func(pkgs []*GoPackage) []Finding
}

// DefaultGoAnalyzers returns the Go head's standard analyzer set.
func DefaultGoAnalyzers() []*GoAnalyzer {
	return []*GoAnalyzer{Determinism(), PanicPath(), ErrCheck(), ExplainKinds(), FaultKinds()}
}

// RunGoAnalyzers runs every analyzer over the packages and merges findings.
func RunGoAnalyzers(pkgs []*GoPackage, analyzers []*GoAnalyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		out = append(out, a.Run(pkgs)...)
	}
	return out
}

// inScope reports whether a package is one of the listed import paths.
func inScope(p *GoPackage, scope []string) bool {
	for _, s := range scope {
		if p.ImportPath == s {
			return true
		}
	}
	return false
}

// calleeOf resolves the function object a call expression invokes, when it
// is statically known: a plain function, a method called on a concrete
// receiver, or a builtin. Calls through interfaces or function values
// resolve to nil.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// funcFor resolves the *types.Func a declaration defines.
func funcFor(info *types.Info, decl *ast.FuncDecl) *types.Func {
	if obj, ok := info.Defs[decl.Name].(*types.Func); ok {
		return obj
	}
	return nil
}
