package analysis

// CheckDoc names one check and its one-line contract; the CLI's -list
// output and the SARIF rule table are both rendered from these.
type CheckDoc struct {
	Name string
	Doc  string
}

// QueryCheckDocs lists the query/schema head's checks. The Go head's list
// comes from the analyzers themselves (GoAnalyzer.Name/Doc).
func QueryCheckDocs() []CheckDoc {
	return []CheckDoc{
		{"parse", "every benchmark query text parses"},
		{"dead-path", "every path step resolves against the catalog schemas"},
		{"unbound-var", "every $variable is bound by an enclosing for/let"},
		{"unknown-func", "every called function is a builtin or declared external"},
		{"type-unify", "comparison operands unify under the schema's types"},
		{"complexity", "hand-assigned complexities match the automatic estimate (or are waived)"},
		{"mapping", "mediation tables resolve against source schemas; global queries are fully mapped"},
		{"catalog", "every source materializes, validates, and round-trips its schema"},
	}
}

// AllCheckDocs returns every check thalia-vet can report, query head first,
// then the given Go analyzers in order.
func AllCheckDocs(analyzers []*GoAnalyzer) []CheckDoc {
	out := QueryCheckDocs()
	for _, a := range analyzers {
		out = append(out, CheckDoc{a.Name, a.Doc})
	}
	return out
}
