package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FactBase is the shared substrate of the dataflow analyzers: every loaded
// function indexed by its qualified name, the static call graph between
// them, and per-function facts the individual analyzers would otherwise
// each re-derive (which parameter is the context, where the body's calls
// are). It is built once per thalia-vet run and handed to every analyzer
// that declares RunFacts.
//
// The call graph is the same approximation the panicpath analyzer uses:
// edges exist for statically resolvable calls (plain functions, methods on
// concrete receivers); interface dispatch and function values contribute no
// edges. Analyzers that need soundness against dynamic dispatch must say so
// in their contract instead of assuming it.
type FactBase struct {
	Pkgs []*GoPackage
	// Funcs indexes every declared function and method with a body,
	// keyed by types.Func.FullName (stable across packages).
	Funcs map[string]*FuncFact
	// order holds the keys sorted, so iteration over the fact base is
	// deterministic regardless of map order.
	order []string
}

// FuncFact is the per-function slice of the fact base.
type FuncFact struct {
	Key  string // types.Func.FullName()
	Pkg  *GoPackage
	Decl *ast.FuncDecl
	Obj  *types.Func
	// CtxIndex is the position of the first context.Context parameter in
	// the signature (receiver excluded), -1 when the function takes none.
	CtxIndex int
	// Callees are the statically resolved callee keys, in source order,
	// possibly with duplicates (one per call site).
	Callees []string
}

// NewFactBase indexes the packages. Cost is one AST pass per function, so
// building it once and sharing it across analyzers is the point.
func NewFactBase(pkgs []*GoPackage) *FactBase {
	fb := &FactBase{Pkgs: pkgs, Funcs: map[string]*FuncFact{}}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				obj := funcFor(p.Info, decl)
				if obj == nil {
					continue
				}
				ff := &FuncFact{
					Key:      obj.FullName(),
					Pkg:      p,
					Decl:     decl,
					Obj:      obj,
					CtxIndex: ctxParamIndex(obj.Type().(*types.Signature)),
				}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee, ok := calleeOf(p.Info, call).(*types.Func); ok {
						ff.Callees = append(ff.Callees, callee.FullName())
					}
					return true
				})
				fb.Funcs[ff.Key] = ff
				fb.order = append(fb.order, ff.Key)
			}
		}
	}
	sort.Strings(fb.order)
	return fb
}

// All calls fn for every function fact in deterministic (sorted-key) order.
func (fb *FactBase) All(fn func(*FuncFact)) {
	for _, key := range fb.order {
		fn(fb.Funcs[key])
	}
}

// LookupInterface resolves a qualified interface name like
// "thalia/internal/integration.System" against the loaded packages and
// their imports. Returns nil when the type is not in the analyzed program —
// callers must treat that as "rule disabled", not "rule passed".
func (fb *FactBase) LookupInterface(qualified string) *types.Interface {
	dot := strings.LastIndex(qualified, ".")
	if dot < 0 {
		return nil
	}
	path, name := qualified[:dot], qualified[dot+1:]
	lookup := func(tp *types.Package) *types.Interface {
		if tp == nil || tp.Path() != path {
			return nil
		}
		obj, ok := tp.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			return nil
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			return nil
		}
		return iface
	}
	for _, p := range fb.Pkgs {
		if iface := lookup(p.Types); iface != nil {
			return iface
		}
		for _, imp := range p.Types.Imports() {
			if iface := lookup(imp); iface != nil {
				return iface
			}
		}
	}
	return nil
}

// ctxParamIndex returns the index of the first context.Context parameter of
// sig, -1 when there is none.
func ctxParamIndex(sig *types.Signature) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isPkgFunc reports whether obj is the named function of the named package
// (e.g. isPkgFunc(obj, "time", "Sleep")).
func isPkgFunc(obj types.Object, pkg, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}

// declSpan is one entry of the symbol index: the line range a declaration
// covers in its file.
type declSpan struct {
	start, end int
	symbol     string
}

// AssignSymbols fills in the Symbol of every finding that falls inside a
// declared function or method of the analyzed packages, by mapping the
// finding's file and line back to the declaration covering it. Findings
// outside any declaration (package clauses, imports, var blocks) keep an
// empty Symbol; their identity rests on file + message alone.
func AssignSymbols(pkgs []*GoPackage, findings []Finding) {
	index := map[string][]declSpan{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj := funcFor(p.Info, decl)
				if obj == nil {
					continue
				}
				file, start, _ := p.Position(decl.Pos())
				end := position(p.Fset, decl.End()).Line
				index[file] = append(index[file], declSpan{start: start, end: end, symbol: obj.FullName()})
			}
		}
	}
	for file := range index {
		spans := index[file]
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	}
	for i := range findings {
		f := &findings[i]
		if f.Symbol != "" || f.File == "" || f.Line == 0 {
			continue
		}
		for _, span := range index[f.File] {
			if span.start <= f.Line && f.Line <= span.end {
				f.Symbol = span.symbol
				break
			}
		}
	}
}

func position(fset *token.FileSet, pos token.Pos) token.Position { return fset.Position(pos) }
