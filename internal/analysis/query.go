package analysis

import (
	"fmt"
	"strconv"
	"strings"

	"thalia/internal/benchmark"
	"thalia/internal/catalog"
	"thalia/internal/xquery"
	"thalia/internal/xsd"
)

// This file is the query/schema head of thalia-vet: a static abstract
// interpretation of each benchmark query against the XML Schemas the
// testbed's catalogs actually publish. Instead of node sequences, every
// expression evaluates to a set of schema declarations (plus literal
// values), so the checker can prove that each path step lands on a declared
// element, every $variable is bound, every function exists, and comparison
// operands can unify under the schema's types — all before a single
// document is materialized.

// QueryCheckConfig configures CheckQueries.
type QueryCheckConfig struct {
	// SchemaFor resolves a doc() URI (e.g. "brown.xml" or "brown") to the
	// schema of the document it denotes. Nil means the testbed's catalogs.
	SchemaFor func(uri string) (*xsd.Schema, error)
	// IsExternal reports whether a non-builtin function name is a declared
	// external integration function (the paper's escape hatch). Nil means no
	// external functions are allowed in query text.
	IsExternal func(name string) bool
	// Locator maps findings back to file:line positions in the Go source
	// that embeds the query text. Nil leaves findings without positions.
	Locator *Locator
}

// CatalogSchemaFor resolves doc() URIs against the testbed: "brown.xml"
// (or "brown") yields the brown source's inferred schema. It is the
// default SchemaFor of CheckQueries.
func CatalogSchemaFor(uri string) (*xsd.Schema, error) {
	name := strings.TrimSuffix(uri, ".xml")
	s, err := catalog.Get(name)
	if err != nil {
		return nil, err
	}
	return s.Schema()
}

// CheckQueries statically checks the runnable XQuery text of every query
// against the schemas its doc() calls resolve to.
func CheckQueries(queries []*benchmark.Query, cfg QueryCheckConfig) []Finding {
	if cfg.SchemaFor == nil {
		cfg.SchemaFor = CatalogSchemaFor
	}
	var out []Finding
	for _, q := range queries {
		c := &queryChecker{cfg: cfg, q: q}
		c.run()
		out = append(out, c.finds...)
	}
	return out
}

// valKind classifies the abstract value of an expression.
type valKind int

const (
	kindUnknown valKind = iota
	kindDoc             // a document node with a known schema
	kindNodes           // element/attribute nodes with known declarations
	kindString
	kindNumber
	kindBool
)

// sval is the abstract value: the set of schema declarations an expression
// can evaluate to, or a scalar kind, with literals tracked exactly.
type sval struct {
	kind   valKind
	schema *xsd.Schema        // kindDoc and kindNodes: owning schema
	decls  []*xsd.ElementDecl // kindNodes: element declarations
	attrs  []*xsd.AttrDecl    // kindNodes: attribute declarations
	lit    string             // kindString: literal value when litOK
	litOK  bool
}

func unknown() sval { return sval{kind: kindUnknown} }

// nonEmpty reports whether a node-valued sval resolved to any declaration.
func (v sval) nonEmpty() bool { return len(v.decls) > 0 || len(v.attrs) > 0 }

type queryChecker struct {
	cfg   QueryCheckConfig
	q     *benchmark.Query
	finds []Finding
}

// addf records a finding, positioned at the first occurrence of needle
// inside the query text when a locator is configured.
func (c *queryChecker) addf(check, needle, format string, args ...interface{}) {
	f := Finding{Check: check, QueryID: c.q.ID, Message: fmt.Sprintf(format, args...)}
	if c.cfg.Locator != nil {
		f.File = c.cfg.Locator.Path()
		f.Line, f.Column = c.cfg.Locator.Position(c.q.XQuery, needle)
	}
	c.finds = append(c.finds, f)
}

func (c *queryChecker) run() {
	expr, err := xquery.Parse(c.q.XQuery)
	if err != nil {
		f := Finding{Check: "parse", QueryID: c.q.ID, Message: err.Error()}
		if pe, ok := err.(*xquery.ParseError); ok && c.cfg.Locator != nil {
			f.File = c.cfg.Locator.Path()
			f.Line, f.Column = c.cfg.Locator.PositionInQuery(c.q.XQuery, pe.Line, pe.Column)
		}
		c.finds = append(c.finds, f)
		return
	}
	c.eval(expr, map[string]sval{})
}

// eval abstractly evaluates an expression under an environment mapping
// variable names to abstract values, recording findings along the way.
func (c *queryChecker) eval(e xquery.Expr, env map[string]sval) sval {
	switch n := e.(type) {
	case *xquery.StringLit:
		return sval{kind: kindString, lit: n.Val, litOK: true}
	case *xquery.NumberLit:
		return sval{kind: kindNumber}
	case *xquery.VarRef:
		v, ok := env[n.Name]
		if !ok {
			c.addf("unbound-var", "$"+n.Name, "unbound variable $%s", n.Name)
			return unknown()
		}
		return v
	case *xquery.FLWOR:
		inner := extend(env)
		for _, fb := range n.Fors {
			inner[fb.Var] = c.eval(fb.In, inner)
		}
		for _, lb := range n.Lets {
			inner[lb.Var] = c.eval(lb.Val, inner)
		}
		if n.Where != nil {
			c.eval(n.Where, inner)
		}
		if n.OrderBy != nil {
			c.eval(n.OrderBy.Key, inner)
		}
		return c.eval(n.Return, inner)
	case *xquery.PathExpr:
		return c.evalPath(n, env)
	case *xquery.Binary:
		return c.evalBinary(n, env)
	case *xquery.Unary:
		c.eval(n.X, env)
		return sval{kind: kindNumber}
	case *xquery.Call:
		return c.evalCall(n, env)
	case *xquery.SeqExpr:
		for _, item := range n.Items {
			c.eval(item, env)
		}
		return unknown()
	case *xquery.ElemCtor:
		for _, a := range n.Attrs {
			for _, part := range a.Parts {
				c.eval(part, env)
			}
		}
		for _, cn := range n.Content {
			c.eval(cn, env)
		}
		return unknown()
	case *xquery.Quantified:
		inner := extend(env)
		inner[n.Var] = c.eval(n.In, env)
		c.eval(n.Sat, inner)
		return sval{kind: kindBool}
	case *xquery.IfExpr:
		c.eval(n.Cond, env)
		c.eval(n.Then, env)
		c.eval(n.Else, env)
		return unknown()
	}
	return unknown()
}

func extend(env map[string]sval) map[string]sval {
	inner := make(map[string]sval, len(env)+2)
	for k, v := range env {
		inner[k] = v
	}
	return inner
}

func (c *queryChecker) evalPath(p *xquery.PathExpr, env map[string]sval) sval {
	var cur sval
	if p.Root != nil {
		cur = c.eval(p.Root, env)
	} else if v, ok := env["."]; ok {
		cur = v
	} else {
		cur = unknown()
	}
	for _, st := range p.Steps {
		next := stepDecls(cur, st)
		// Only report when the context was fully known: a dead step under a
		// resolved context is a real defect, not analysis imprecision.
		if (cur.kind == kindDoc || (cur.kind == kindNodes && cur.nonEmpty())) && !next.nonEmpty() {
			c.reportDeadStep(cur, st)
			next = unknown() // don't cascade one dead step into many findings
		}
		for _, pred := range st.Predicates {
			inner := extend(env)
			inner["."] = next
			c.eval(pred, inner)
		}
		cur = next
	}
	return cur
}

// stepDecls resolves one navigation step over an abstract value, mirroring
// the evaluator's step semantics on the schema instead of the instance.
func stepDecls(cur sval, st xquery.Step) sval {
	out := sval{kind: kindNodes, schema: cur.schema}
	switch cur.kind {
	case kindDoc:
		root := cur.schema.Root
		switch st.Axis {
		case xquery.AxisChild:
			if st.Name == "*" || root.Name == st.Name {
				out.decls = append(out.decls, root)
			}
		case xquery.AxisDescendant:
			if st.Name == "*" || root.Name == st.Name {
				out.decls = append(out.decls, root)
			}
			out.decls = append(out.decls, root.Descendants(st.Name)...)
		}
	case kindNodes:
		for _, d := range cur.decls {
			switch st.Axis {
			case xquery.AxisChild:
				if st.Name == "*" {
					out.decls = append(out.decls, d.Children...)
				} else if cd := d.Child(st.Name); cd != nil {
					out.decls = append(out.decls, cd)
				}
			case xquery.AxisDescendant:
				out.decls = append(out.decls, d.Descendants(st.Name)...)
			case xquery.AxisAttribute:
				if st.Name == "*" {
					out.attrs = append(out.attrs, d.Attributes...)
				} else if ad := d.Attribute(st.Name); ad != nil {
					out.attrs = append(out.attrs, ad)
				}
			}
		}
	default:
		return unknown()
	}
	if !out.nonEmpty() {
		out.kind = kindNodes // empty but typed; caller decides whether to report
	}
	return out
}

// reportDeadStep explains a step that matches nothing, with a "did you
// mean" hint drawn from the context's children first and the schema's whole
// vocabulary second.
func (c *queryChecker) reportDeadStep(cur sval, st xquery.Step) {
	name := st.Name
	if st.Axis == xquery.AxisAttribute {
		name = "@" + name
	}
	context := "document root"
	var local []string
	if cur.kind == kindDoc {
		context = fmt.Sprintf("document root (root element is %s)", cur.schema.Root.Name)
		local = []string{cur.schema.Root.Name}
	} else {
		names := map[string]bool{}
		var parents []string
		for _, d := range cur.decls {
			if !names[d.Name] {
				names[d.Name] = true
				parents = append(parents, d.Name)
			}
			for _, ch := range d.Children {
				local = append(local, ch.Name)
			}
			for _, a := range d.Attributes {
				local = append(local, "@"+a.Name)
			}
		}
		context = "element " + strings.Join(parents, ", ")
	}
	hint := suggest(name, local)
	if hint == "" && cur.schema != nil {
		hint = suggest(name, cur.schema.Vocabulary())
	}
	msg := fmt.Sprintf("dead path: step %q matches nothing under %s", name, context)
	if hint != "" && hint != name {
		msg += fmt.Sprintf(" (did you mean %q?)", hint)
	}
	c.addf("dead-path", st.Name, "%s", msg)
}

func (c *queryChecker) evalCall(n *xquery.Call, env map[string]sval) sval {
	if strings.EqualFold(n.Name, "doc") {
		return c.evalDoc(n, env)
	}
	for _, a := range n.Args {
		c.eval(a, env)
	}
	lower := strings.ToLower(n.Name)
	if !xquery.IsBuiltin(lower) {
		if c.cfg.IsExternal == nil || !c.cfg.IsExternal(n.Name) {
			msg := fmt.Sprintf("unknown function %s()", n.Name)
			if hint := suggest(lower, xquery.BuiltinNames()); hint != "" {
				msg += fmt.Sprintf(" (did you mean %q?)", hint)
			}
			c.addf("unknown-func", n.Name, "%s", msg)
		}
		return unknown()
	}
	switch lower {
	case "contains", "starts-with", "ends-with", "not", "true", "false", "exists", "empty":
		return sval{kind: kindBool}
	case "string-length", "number", "count", "sum", "avg", "min", "max":
		return sval{kind: kindNumber}
	case "substring", "substring-before", "substring-after", "upper-case",
		"lower-case", "normalize-space", "translate", "concat", "string-join",
		"string", "name", "local-name", "data", "distinct-values":
		return sval{kind: kindString}
	}
	return unknown()
}

func (c *queryChecker) evalDoc(n *xquery.Call, env map[string]sval) sval {
	if len(n.Args) != 1 {
		c.addf("unknown-func", n.Name, "doc() takes exactly one argument, got %d", len(n.Args))
		return unknown()
	}
	lit, ok := n.Args[0].(*xquery.StringLit)
	if !ok {
		c.eval(n.Args[0], env)
		return unknown() // dynamic URI: nothing to resolve statically
	}
	sch, err := c.cfg.SchemaFor(lit.Val)
	if err != nil {
		c.addf("dead-path", lit.Val, "doc(%q): %v", lit.Val, err)
		return unknown()
	}
	return sval{kind: kindDoc, schema: sch}
}

func (c *queryChecker) evalBinary(n *xquery.Binary, env map[string]sval) sval {
	l := c.eval(n.L, env)
	r := c.eval(n.R, env)
	switch n.Op {
	case "and", "or":
		return sval{kind: kindBool}
	case "=", "!=", "<", "<=", ">", ">=":
		c.checkUnify(n, l, r)
		return sval{kind: kindBool}
	case "+", "-", "*", "div", "mod", "to":
		for _, side := range []struct {
			v sval
			e xquery.Expr
		}{{l, n.L}, {r, n.R}} {
			if defType(side.v) == "xs:string" {
				c.addf("type-unify", needleFor(side.e),
					"arithmetic %q on non-numeric operand %s", n.Op, describe(side.e, side.v))
			}
		}
		return sval{kind: kindNumber}
	}
	return unknown()
}

// checkUnify flags comparisons whose operands provably cannot unify: one
// side is definitely numeric and the other definitely string-typed under
// the schema. Ambiguous operands (unknown kinds, empty-typed elements,
// numeric-looking literals) are given the benefit of the doubt.
func (c *queryChecker) checkUnify(n *xquery.Binary, l, r sval) {
	lt, rt := defType(l), defType(r)
	if lt == "" || rt == "" || lt == rt {
		return
	}
	c.addf("type-unify", needleForCmp(n),
		"comparison %q cannot unify: %s but %s",
		n.Op, describe(n.L, l), describe(n.R, r))
}

// defType reduces an abstract value to a definite atomic type: "xs:string",
// "xs:decimal", or "" when the analysis cannot be sure.
func defType(v sval) string {
	switch v.kind {
	case kindString:
		if v.litOK {
			if _, err := strconv.ParseFloat(strings.TrimSpace(v.lit), 64); err == nil {
				return "" // numeric-looking literal compares fine either way
			}
		}
		return "xs:string"
	case kindNumber:
		return "xs:decimal"
	case kindNodes:
		t := xsd.TypeEmpty
		sure := false
		for _, d := range v.decls {
			t = widenLeaf(t, d.LeafType())
			sure = true
		}
		for _, a := range v.attrs {
			t = widenLeaf(t, a.Type)
			sure = true
		}
		if !sure {
			return ""
		}
		switch t {
		case xsd.TypeInteger, xsd.TypeDecimal:
			return "xs:decimal"
		case xsd.TypeString, xsd.TypeAnyURI:
			return "xs:string"
		}
	}
	return ""
}

// widenLeaf is the analyzer's type join: like xsd's widening but any
// string/number conflict collapses to string (what atomization yields).
func widenLeaf(a, b xsd.Type) xsd.Type {
	if a == xsd.TypeEmpty {
		return b
	}
	if b == xsd.TypeEmpty || a == b {
		return a
	}
	if (a == xsd.TypeInteger || a == xsd.TypeDecimal) && (b == xsd.TypeInteger || b == xsd.TypeDecimal) {
		return xsd.TypeDecimal
	}
	return xsd.TypeString
}

// describe renders an operand with its inferred type for a finding message.
func describe(e xquery.Expr, v sval) string {
	t := defType(v)
	if t == "" {
		t = "unknown type"
	}
	return fmt.Sprintf("%s is %s", exprText(e), t)
}

// exprText renders an expression compactly for messages; it does not need
// to round-trip, only to let a reader find the operand in the query.
func exprText(e xquery.Expr) string {
	switch n := e.(type) {
	case *xquery.StringLit:
		return fmt.Sprintf("%q", n.Val)
	case *xquery.NumberLit:
		return strconv.FormatFloat(n.Val, 'g', -1, 64)
	case *xquery.VarRef:
		return "$" + n.Name
	case *xquery.Call:
		return n.Name + "(...)"
	case *xquery.PathExpr:
		var b strings.Builder
		if n.Root != nil {
			b.WriteString(exprText(n.Root))
		}
		for _, st := range n.Steps {
			switch st.Axis {
			case xquery.AxisDescendant:
				b.WriteString("//")
			case xquery.AxisAttribute:
				b.WriteString("/@")
			default:
				b.WriteString("/")
			}
			b.WriteString(st.Name)
		}
		return b.String()
	}
	return "expression"
}

// needleFor picks the query-text substring to anchor a finding at.
func needleFor(e xquery.Expr) string {
	switch n := e.(type) {
	case *xquery.StringLit:
		return n.Val
	case *xquery.VarRef:
		return "$" + n.Name
	case *xquery.Call:
		return n.Name
	case *xquery.PathExpr:
		if len(n.Steps) > 0 {
			return n.Steps[len(n.Steps)-1].Name
		}
		return needleFor(n.Root)
	}
	return ""
}

// needleForCmp anchors a comparison finding at its most distinctive
// operand: the literal if present, else the left operand.
func needleForCmp(n *xquery.Binary) string {
	if s, ok := n.R.(*xquery.StringLit); ok {
		return s.Val
	}
	if s, ok := n.L.(*xquery.StringLit); ok {
		return s.Val
	}
	return needleFor(n.L)
}
