package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// locator fixtures: a file embedding two query texts as the benchmark
// source does, with the illustrative copy of q1 before the runnable one so
// the last-occurrence rule is exercised.
const locatorSrc = `package queries

// Illustrative form, as the paper prints it:
//
//	for $c in Course where $c/Time > 10 return $c
var doc = ` + "`for $c in Course where $c/Time > 10 return $c`" + `

var q1 = ` + "`for $c in Course where $c/Time > 10 return $c`" + `

var q2 = ` + "`for $s in Section\nwhere $s/CourseTime = \"early\"\nreturn $s`" + `
`

func newTestLocator() *Locator { return NewLocator("internal/benchmark/queries.go", locatorSrc) }

func TestLocatorPositionLastOccurrence(t *testing.T) {
	l := newTestLocator()
	q := "for $c in Course where $c/Time > 10 return $c"
	// The illustrative copy appears earlier (in the comment and in doc);
	// Position must anchor to the final, runnable occurrence.
	line, col := l.Position(q, "")
	if line != 8 {
		t.Errorf("query start line = %d, want 8 (the last occurrence)", line)
	}
	if col == 0 {
		t.Errorf("query start column = 0, want a real column")
	}
}

func TestLocatorPositionNeedle(t *testing.T) {
	l := newTestLocator()
	q := "for $c in Course where $c/Time > 10 return $c"
	line, col := l.Position(q, "Time")
	if line != 8 {
		t.Errorf("needle line = %d, want 8", line)
	}
	wantCol := len("var q1 = `for $c in Course where $c/") + 1
	if col != wantCol {
		t.Errorf("needle column = %d, want %d", col, wantCol)
	}
}

func TestLocatorWordBoundary(t *testing.T) {
	l := newTestLocator()
	// "Time" also occurs embedded in "CourseTime"; Find must prefer the
	// word-delimited occurrence in q1 over the embedded one.
	line, _ := l.Find("Time")
	if line != 5 {
		t.Errorf("Find(Time) line = %d, want 5 (first word-delimited occurrence)", line)
	}
	// A needle with no word-delimited occurrence falls back to plain Index.
	line, _ = l.Find("ourseTim")
	if line == 0 {
		t.Error("Find fallback missed an embedded occurrence")
	}
}

func TestLocatorPositionInQuery(t *testing.T) {
	l := newTestLocator()
	q := "for $s in Section\nwhere $s/CourseTime = \"early\"\nreturn $s"
	// Line 1 of the query is on the file line that starts the literal, with
	// the query's column offset added to the literal's start column.
	line, col := l.PositionInQuery(q, 1, 5)
	if line != 10 {
		t.Errorf("qline 1 maps to file line %d, want 10", line)
	}
	startLine, startCol := l.Position(q, "")
	if startLine != 10 || col != startCol+4 {
		t.Errorf("qline 1 col = %d, want start %d + 4", col, startCol)
	}
	// Later query lines map 1:1 onto following file lines, columns verbatim.
	line, col = l.PositionInQuery(q, 3, 8)
	if line != 12 || col != 8 {
		t.Errorf("qline 3 maps to %d:%d, want 12:8", line, col)
	}
}

func TestLocatorAbsent(t *testing.T) {
	l := newTestLocator()
	if line, _ := l.Position("no such query text", "x"); line != 0 {
		t.Errorf("absent query located at line %d, want 0", line)
	}
	if line, _ := l.Find("nosuchword"); line != 0 {
		t.Errorf("absent needle located at line %d, want 0", line)
	}
	if line, _ := l.Find(""); line != 0 {
		t.Errorf("empty needle located at line %d, want 0", line)
	}
}

func TestLoadLocator(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.go")
	if err := os.WriteFile(path, []byte(locatorSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := LoadLocator(path, "display/queries.go")
	if err != nil {
		t.Fatal(err)
	}
	if l.Path() != "display/queries.go" {
		t.Errorf("Path = %q, want the display path", l.Path())
	}
	if _, err := LoadLocator(filepath.Join(t.TempDir(), "absent.go"), "x"); err == nil {
		t.Error("loading a missing file did not error")
	}
}
