package analysis

import (
	"fmt"
	"sort"
	"strings"

	"thalia/internal/catalog"
	"thalia/internal/rewrite"
	"thalia/internal/xsd"
)

// This file checks the declarative mediation layer and the testbed itself.
// The rewrite mediator is configured entirely by data — per-source mapping
// tables and global query definitions — which means a misspelled path or a
// renamed transform fails only at answer time, on the query that happens to
// touch it. CheckMappings resolves every table entry against the source's
// published schema statically. CheckCatalogs exercises the testbed's own
// invariants: every source materializes, validates against its inferred
// schema, and that schema survives a serialization round trip.

// CheckMappings validates every mapping table of the mediator against the
// schemas of the sources it mediates: the record element exists under the
// source root, every field path resolves, every named transform is
// registered, and every global query's fields are mapped (or declared
// inapplicable) for every source it targets. loc, when non-nil, anchors
// findings in the file holding the mapping tables.
func CheckMappings(med *rewrite.Mediator, schemaFor func(string) (*xsd.Schema, error), loc *Locator) []Finding {
	if schemaFor == nil {
		schemaFor = CatalogSchemaFor
	}
	var out []Finding
	add := func(needle, format string, args ...interface{}) {
		f := Finding{Check: "mapping", Message: fmt.Sprintf(format, args...)}
		if loc != nil {
			f.File = loc.Path()
			f.Line, f.Column = loc.Find(needle)
		}
		out = append(out, f)
	}

	for _, sm := range med.Mappings() {
		sch, err := schemaFor(sm.Source)
		if err != nil {
			add(sm.Source, "mapping table for source %q: %v", sm.Source, err)
			continue
		}
		record := sch.Root.Child(sm.Record)
		if record == nil {
			msg := fmt.Sprintf("source %s: record element %q is not a child of root %s",
				sm.Source, sm.Record, sch.Root.Name)
			if hint := suggest(sm.Record, childNames(sch.Root)); hint != "" && hint != sm.Record {
				msg += fmt.Sprintf(" (did you mean %q?)", hint)
			}
			add(sm.Record, "%s", msg)
			continue
		}
		for _, fm := range sm.Fields {
			if fm.Path != "" && !pathResolves(record, fm.Path) {
				msg := fmt.Sprintf("source %s, field %q: path %q does not resolve under %s/%s",
					sm.Source, fm.Field, fm.Path, sch.Root.Name, sm.Record)
				if hint := suggest(lastStep(fm.Path), sch.Vocabulary()); hint != "" && hint != lastStep(fm.Path) {
					msg += fmt.Sprintf(" (did you mean %q?)", hint)
				}
				add(fm.Path, "%s", msg)
			}
			if fm.Transform != "" && !med.HasTransform(fm.Transform) {
				add(fm.Transform, "source %s, field %q: unknown transform %q",
					sm.Source, fm.Field, fm.Transform)
			}
		}
	}

	out = append(out, checkGlobalQueries(med, loc)...)
	return out
}

// checkGlobalQueries verifies that every global benchmark query only asks
// its target sources for fields they map or declare inapplicable.
func checkGlobalQueries(med *rewrite.Mediator, loc *Locator) []Finding {
	var out []Finding
	gqs := rewrite.GlobalQueries()
	ids := make([]int, 0, len(gqs))
	for id := range gqs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		gq := gqs[id]
		fields := map[string]bool{"source": true}
		for _, f := range gq.Select {
			fields[f] = true
		}
		for _, p := range gq.Where {
			fields[p.Field] = true
		}
		for _, source := range gq.Sources {
			sm, ok := med.Mapping(source)
			if !ok {
				f := Finding{Check: "mapping", QueryID: id,
					Message: fmt.Sprintf("global query targets source %q, which has no mapping table", source)}
				if loc != nil {
					f.File = loc.Path()
					f.Line, f.Column = loc.Find(source)
				}
				out = append(out, f)
				continue
			}
			mapped := map[string]bool{"source": true}
			for _, fm := range sm.Fields {
				mapped[fm.Field] = true
			}
			for _, inap := range sm.Inapplicable {
				mapped[inap] = true
			}
			var missing []string
			for field := range fields {
				if !mapped[field] {
					missing = append(missing, field)
				}
			}
			sort.Strings(missing)
			for _, field := range missing {
				f := Finding{Check: "mapping", QueryID: id,
					Message: fmt.Sprintf("global query needs field %q from source %s, which neither maps it nor declares it inapplicable",
						field, source)}
				if loc != nil {
					f.File = loc.Path()
					f.Line, f.Column = loc.Find(field)
				}
				out = append(out, f)
			}
		}
	}
	return out
}

func childNames(d *xsd.ElementDecl) []string {
	names := make([]string, len(d.Children))
	for i, c := range d.Children {
		names[i] = c.Name
	}
	return names
}

func lastStep(path string) string {
	parts := strings.Split(path, "/")
	return parts[len(parts)-1]
}

// pathResolves walks a slash path of child element names below a
// declaration, mirroring rewrite's resolvePath over the schema.
func pathResolves(d *xsd.ElementDecl, path string) bool {
	cur := d
	for _, step := range strings.Split(path, "/") {
		cur = cur.Child(step)
		if cur == nil {
			return false
		}
	}
	return true
}

// CheckCatalogs verifies the testbed's own invariants for every registered
// source: the render→extract→infer pipeline succeeds, the extracted
// document validates against the source's own inferred schema, and the
// schema survives an xs: serialization round trip.
func CheckCatalogs() []Finding {
	var out []Finding
	for _, s := range catalog.All() {
		doc, err := s.Document()
		if err != nil {
			out = append(out, Finding{Check: "catalog",
				Message: fmt.Sprintf("source %s does not materialize: %v", s.Name, err)})
			continue
		}
		sch, err := s.Schema()
		if err != nil {
			out = append(out, Finding{Check: "catalog",
				Message: fmt.Sprintf("source %s has no schema: %v", s.Name, err)})
			continue
		}
		for _, verr := range sch.Validate(doc) {
			out = append(out, Finding{Check: "catalog",
				Message: fmt.Sprintf("source %s: document does not validate against its own schema: %v", s.Name, verr)})
		}
		back, err := xsd.FromXML(sch.ToXML())
		if err != nil {
			out = append(out, Finding{Check: "catalog",
				Message: fmt.Sprintf("source %s: schema does not survive serialization round trip: %v", s.Name, err)})
			continue
		}
		if got, want := back.Encode(), sch.Encode(); got != want {
			out = append(out, Finding{Check: "catalog",
				Message: fmt.Sprintf("source %s: schema changes across serialization round trip", s.Name)})
		}
	}
	return out
}
