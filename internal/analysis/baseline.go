package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline ratchet
//
// The baseline file (vet.baseline.json at the module root) is the list of
// findings the repository has consciously accepted. Its semantics are a
// ratchet, enforced in both directions:
//
//   - a finding NOT in the baseline fails the run — new debt needs a
//     deliberate `-update-baseline`, reviewed like any other diff;
//   - a baseline entry whose finding no longer fires is STALE and also
//     fails the run — fixed debt must be struck from the ledger, so the
//     baseline only ever shrinks by becoming honest, never by rotting.
//
// Matching is by stable finding ID (see findingid.go), so line drift
// neither orphans entries nor lets a finding masquerade as baselined.
// `-update-baseline` rewrites the file deterministically from the current
// findings; running it twice in a row is byte-for-byte a no-op.

// BaselineEntry is one accepted finding. It carries the human-readable
// coordinates alongside the ID so the file reviews well, but the ID alone
// is the identity.
type BaselineEntry struct {
	ID      string `json:"id"`
	Check   string `json:"check"`
	File    string `json:"file,omitempty"`
	Symbol  string `json:"symbol,omitempty"`
	Message string `json:"message"`
}

// Baseline is the decoded baseline file.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// baselineVersion is the current file format version.
const baselineVersion = 1

// NewBaseline builds a baseline accepting exactly the given findings.
// Call AssignIDs (or Report.Finalize) first.
func NewBaseline(findings []Finding) *Baseline {
	b := &Baseline{Version: baselineVersion, Findings: make([]BaselineEntry, 0, len(findings))}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			ID: f.ID, Check: f.Check, File: f.File, Symbol: f.Symbol, Message: f.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		if a.Message != c.Message {
			return a.Message < c.Message
		}
		return a.ID < c.ID
	})
	return b
}

// LoadBaseline reads and decodes a baseline file. A missing file is not an
// error: it decodes as the empty baseline, so a repo without one simply
// accepts no findings.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: baselineVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: version %d, this thalia-vet speaks %d (regenerate with -update-baseline)",
			path, b.Version, baselineVersion)
	}
	return &b, nil
}

// Marshal renders the baseline in its canonical byte form: sorted entries,
// two-space indent, trailing newline. WriteBaseline and the update-is-a-
// no-op guarantee both rest on this being deterministic.
func (b *Baseline) Marshal() ([]byte, error) {
	if b.Findings == nil {
		b.Findings = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteBaseline writes the canonical form to path.
func WriteBaseline(path string, b *Baseline) error {
	data, err := b.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Apply splits the report's findings against the baseline: fresh findings
// (not baselined — these fail the run), suppressed findings (baselined,
// reported only on request), and stale entries (baselined but no longer
// firing — these fail the run too).
func (b *Baseline) Apply(findings []Finding) (fresh, suppressed []Finding, stale []BaselineEntry) {
	accepted := make(map[string]bool, len(b.Findings))
	for _, e := range b.Findings {
		accepted[e.ID] = true
	}
	fired := map[string]bool{}
	for _, f := range findings {
		fired[f.ID] = true
		if accepted[f.ID] {
			suppressed = append(suppressed, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	for _, e := range b.Findings {
		if !fired[e.ID] {
			stale = append(stale, e)
		}
	}
	return fresh, suppressed, stale
}

// BaselinedIDs returns the set of accepted finding IDs, for SARIF
// suppression marking.
func (b *Baseline) BaselinedIDs() map[string]bool {
	out := make(map[string]bool, len(b.Findings))
	for _, e := range b.Findings {
		out[e.ID] = true
	}
	return out
}

// ExitCode computes thalia-vet's exit status from a baseline-applied run:
// 0 clean, 1 findings. Severity-aware: fresh error-severity findings and
// stale baseline entries always fail; fresh warnings fail only under
// strict (CI runs strict, interactive runs need not).
func ExitCode(fresh []Finding, stale []BaselineEntry, strict bool) int {
	if len(stale) > 0 {
		return 1
	}
	for _, f := range fresh {
		if f.EffectiveSeverity() == SeverityError || strict {
			return 1
		}
	}
	return 0
}
