package analysis

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The dataflow analyzers are tested against the on-disk fixture module in
// testdata/vetmod: one package per analyzer, each seeding the defect
// classes the analyzer exists to catch next to the correct forms it must
// stay silent about. The module is loaded once and shared.

var (
	vetmodOnce sync.Once
	vetmodPkgs []*GoPackage
	vetmodErr  error
)

func loadVetmod(t *testing.T) []*GoPackage {
	t.Helper()
	vetmodOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("testdata", "vetmod"))
		if err != nil {
			vetmodErr = err
			return
		}
		vetmodPkgs, vetmodErr = LoadGoPackages(root, "./...")
	})
	if vetmodErr != nil {
		t.Fatal(vetmodErr)
	}
	return vetmodPkgs
}

// checkFindings asserts that the findings carry the given check name and a
// position, that every want substring matches exactly one finding, and that
// no finding mentions a quiet name (the fixture's correct forms).
func checkFindings(t *testing.T, findings []Finding, check string, want []string, quiet []string) {
	t.Helper()
	rep := &Report{Findings: findings}
	rep.Finalize()
	if len(rep.Findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(rep.Findings), len(want), rep.Text())
	}
	for _, f := range rep.Findings {
		if f.Check != check {
			t.Errorf("finding has check %q, want %q: %s", f.Check, check, f)
		}
		if f.File == "" || f.Line == 0 {
			t.Errorf("finding lacks a position: %s", f)
		}
		if f.ID == "" || !strings.HasPrefix(f.ID, "ftv1-") {
			t.Errorf("finding lacks a stable ID: %s", f)
		}
		for _, q := range quiet {
			if strings.Contains(f.Message, q) {
				t.Errorf("unexpected finding about %s: %s", q, f)
			}
		}
	}
	for _, w := range want {
		n := 0
		for _, f := range rep.Findings {
			if strings.Contains(f.Message, w) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("substring %q matches %d findings, want 1:\n%s", w, n, rep.Text())
		}
	}
}

func TestCtxFlowFixture(t *testing.T) {
	pkgs := loadVetmod(t)
	findings := RunGoAnalyzers(pkgs, []*GoAnalyzer{ctxFlowFor([]string{"vetmod/ctxflow"})})
	checkFindings(t, findings, "ctxflow",
		[]string{
			"time.Sleep in SleepyPoll ignores ctx cancellation",
			"Detached accepts a ctx but passes context.Background() to lookup",
			"Todoed accepts a ctx but passes context.TODO() to lookup",
		},
		[]string{"Chained", "Derived", "NoCtx"})
}

func TestLockDisciplineFixture(t *testing.T) {
	pkgs := loadVetmod(t)
	findings := RunGoAnalyzers(pkgs, []*GoAnalyzer{lockDisciplineFor("vetmod/sys.System", []string{"vetmod/lockdisc"})})
	checkFindings(t, findings, "lockdiscipline",
		[]string{
			"method Snapshot has a value receiver of lock-bearing type vetmod/lockdisc.Guarded",
			"parameter g of Consume passes lock-bearing type vetmod/lockdisc.Guarded by value",
			"assignment copies a value of lock-bearing type vetmod/lockdisc.Guarded",
			"call into integration.System method Answer while holding g.mu in AnswerUnderLock",
			"channel send while holding g.mu in Publish ",
		},
		[]string{"AnswerOutsideLock", "PublishAfter", "Borrow"})
}

func TestGoLeakFixture(t *testing.T) {
	pkgs := loadVetmod(t)
	findings := RunGoAnalyzers(pkgs, []*GoAnalyzer{goLeakFor([]string{"vetmod/goleak"})})
	checkFindings(t, findings, "goleak",
		[]string{
			"goroutine spawned in SpinForever never terminates",
			"goroutine spawned in HalfFixed never terminates",
			"goroutine spawned in SpawnNamed never terminates",
		},
		[]string{"CtxBound", "Labeled", "Drain", "Bounded"})
	// goleak proves the absence of an exit statement, not of every exit in
	// execution: its findings are warnings and gate CI only under -strict.
	for _, f := range findings {
		if f.EffectiveSeverity() != SeverityWarning {
			t.Errorf("goleak finding has severity %q, want warning: %s", f.EffectiveSeverity(), f)
		}
	}
}

func TestMapFlowFixture(t *testing.T) {
	pkgs := loadVetmod(t)
	findings := RunGoAnalyzers(pkgs, []*GoAnalyzer{mapFlowFor([]string{"vetmod/mapflow"})})
	checkFindings(t, findings, "mapflow",
		[]string{
			"result of Keys flows into serialized output in RenderDirect without a sort",
			"result of Passthrough flows into serialized output in RenderVar without a sort",
			"result of Keys flows into serialized output in RenderLoop without a sort",
		},
		[]string{"RenderSorted", "Count", "SortedKeys"})
}

func TestTelemetryContractFixture(t *testing.T) {
	pkgs := loadVetmod(t)
	findings := RunGoAnalyzers(pkgs, []*GoAnalyzer{telemetryContractFor("vetmod/telem", []string{"vetmod/labels"})})
	checkFindings(t, findings, "telemetrycontract",
		[]string{
			`label "reason" registered in RecordErr takes its value from err.Error()`,
			`label "reason" registered in RecordErrFmt takes its value from a value of type error`,
			`label "path" registered in RecordPath takes its value from the per-request field r.URL.Path`,
			`label "path" registered in RecordVar takes its value from the per-request field r.URL.Path`,
		},
		[]string{"RecordHit", "RecordRoute", "RecordSystem"})
}

func TestErrCheckV2Fixture(t *testing.T) {
	pkgs := loadVetmod(t)
	findings := RunGoAnalyzers(pkgs, []*GoAnalyzer{ErrCheckFor([]string{"vetmod/errdefer"})})
	checkFindings(t, findings, "errcheck",
		[]string{
			"result of cleanup() contains an error that is silently discarded inside a deferred cleanup",
			"deferred Close on writable file f discards the write-back error",
			"deferred Close on writable file lf discards the write-back error",
		},
		[]string{"DeferredChecked", "WriteOutChecked", "ReadIn"})
}
