package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Import paths of the heterogeneity taxonomy and the scenario generator
// whose coverage the analyzer audits.
const (
	heteroPath        = "thalia/internal/hetero"
	scenarioGenerator = "thalia/internal/scenario"
)

// ScenarioCoverage returns the analyzer that keeps the scenario generator
// total over the THALIA taxonomy: every exported hetero.Case constant must
// have a transform dispatch site — a switch case in the scenario package's
// non-test files — and a test in the scenario package that exercises it by
// name. A class the generator cannot dispatch silently vanishes from every
// generated workload whose mix names it; a class no test mentions can rot
// without failing anything.
func ScenarioCoverage() *GoAnalyzer { return scenarioCoverageFor(heteroPath, scenarioGenerator) }

// scenarioCoverageFor audits the Case vocabulary of casePath against the
// generator at genPath — the seam the analyzer's own tests use to point it
// at a fixture module.
func scenarioCoverageFor(casePath, genPath string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "scenariocoverage",
		Doc:  "every hetero.Case has a transform dispatch site in the scenario generator and a test exercising it",
		Run:  func(pkgs []*GoPackage) []Finding { return runScenarioCoverage(pkgs, casePath, genPath) },
	}
}

func runScenarioCoverage(pkgs []*GoPackage, casePath, genPath string) []Finding {
	var casePkg, genPkg *GoPackage
	for _, p := range pkgs {
		switch p.ImportPath {
		case casePath:
			casePkg = p
		case genPath:
			genPkg = p
		}
	}
	if casePkg == nil || genPkg == nil {
		return nil // one side is outside the analysis scope
	}

	// The exported constants of the named type hetero.Case.
	kinds := map[string]*types.Const{}
	scope := casePkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if ok && named.Obj().Name() == "Case" && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == casePath {
			kinds[c.Name()] = c
		}
	}
	if len(kinds) == 0 {
		return nil
	}

	// A dispatch site is a switch case label in the generator's non-test
	// files resolving to one of the Case constants.
	dispatched := map[string]bool{}
	for _, f := range genPkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, expr := range cc.List {
					var id *ast.Ident
					switch x := ast.Unparen(expr).(type) {
					case *ast.Ident:
						id = x
					case *ast.SelectorExpr:
						id = x.Sel
					default:
						continue
					}
					c, ok := genPkg.Info.Uses[id].(*types.Const)
					if !ok {
						continue
					}
					if _, declared := kinds[c.Name()]; declared && c.Pkg() != nil && c.Pkg().Path() == casePath {
						dispatched[c.Name()] = true
					}
				}
			}
			return true
		})
	}

	// A test exercises a class when its constant name appears in a _test.go
	// file of the generator package. The loader only parses non-test files,
	// so this is a textual scan of the package directory.
	tested := map[string]bool{}
	entries, err := os.ReadDir(genPkg.Dir)
	if err == nil {
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(genPkg.Dir, e.Name()))
			if err != nil {
				continue
			}
			for k := range kinds {
				if strings.Contains(string(src), k) {
					tested[k] = true
				}
			}
		}
	}

	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	var out []Finding
	for _, k := range names {
		file, line, col := casePkg.Position(kinds[k].Pos())
		if !dispatched[k] {
			out = append(out, Finding{Check: "scenariocoverage", File: file, Line: line, Column: col,
				Message: fmt.Sprintf("hetero.%s has no transform dispatch site in the scenario generator (the class cannot be generated)", k)})
		}
		if !tested[k] {
			out = append(out, Finding{Check: "scenariocoverage", File: file, Line: line, Column: col,
				Message: fmt.Sprintf("hetero.%s is exercised by no test in the scenario package", k)})
		}
	}
	return out
}
