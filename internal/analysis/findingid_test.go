package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestAssignIDsStableAcrossLines is the contract the baseline ratchet rests
// on: a finding's ID hashes the defect's content (check, file, symbol,
// message, occurrence), never its line or column, so edits that only shift
// code keep the identity.
func TestAssignIDsStableAcrossLines(t *testing.T) {
	a := []Finding{{Check: "ctxflow", File: "a/a.go", Symbol: "a.F", Line: 10, Column: 3, Message: "m"}}
	b := []Finding{{Check: "ctxflow", File: "a/a.go", Symbol: "a.F", Line: 99, Column: 7, Message: "m"}}
	AssignIDs(a)
	AssignIDs(b)
	if a[0].ID == "" || a[0].ID != b[0].ID {
		t.Errorf("line shift changed the ID: %q vs %q", a[0].ID, b[0].ID)
	}
}

// TestAssignIDsOccurrenceOrdinals: identical findings in one symbol must
// still get distinct, deterministically ordered IDs.
func TestAssignIDsOccurrenceOrdinals(t *testing.T) {
	f := Finding{Check: "panicpath", File: "a/a.go", Symbol: "a.F", Message: "m"}
	twice := []Finding{f, f}
	AssignIDs(twice)
	if twice[0].ID == twice[1].ID {
		t.Errorf("identical findings share ID %q", twice[0].ID)
	}
	again := []Finding{f, f}
	AssignIDs(again)
	if twice[0].ID != again[0].ID || twice[1].ID != again[1].ID {
		t.Errorf("occurrence ordinals are not deterministic: %v vs %v",
			[]string{twice[0].ID, twice[1].ID}, []string{again[0].ID, again[1].ID})
	}
}

// TestAssignIDsDistinguishContent: any hashed field changing must change
// the ID — otherwise distinct defects could collide into one baseline entry.
func TestAssignIDsDistinguishContent(t *testing.T) {
	base := Finding{Check: "ctxflow", File: "a/a.go", Symbol: "a.F", Message: "m", QueryID: 1}
	variants := []Finding{
		{Check: "mapflow", File: "a/a.go", Symbol: "a.F", Message: "m", QueryID: 1},
		{Check: "ctxflow", File: "b/b.go", Symbol: "a.F", Message: "m", QueryID: 1},
		{Check: "ctxflow", File: "a/a.go", Symbol: "a.G", Message: "m", QueryID: 1},
		{Check: "ctxflow", File: "a/a.go", Symbol: "a.F", Message: "n", QueryID: 1},
		{Check: "ctxflow", File: "a/a.go", Symbol: "a.F", Message: "m", QueryID: 2},
	}
	all := append([]Finding{base}, variants...)
	AssignIDs(all)
	for i := 1; i < len(all); i++ {
		if all[i].ID == all[0].ID {
			t.Errorf("variant %d collides with base ID %q", i, all[0].ID)
		}
	}
}

// TestFindingIDsSurviveLineShift is the end-to-end golden test: run a real
// analyzer over a fixture, prepend comment lines so every position moves,
// run again, and demand the IDs come out identical while the lines differ.
func TestFindingIDsSurviveLineShift(t *testing.T) {
	const src = `package gen

import "time"

// Stamp is nondeterministic.
func Stamp() string { return time.Now().String() }
`
	write := func(dir, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.24\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Join(dir, "gen"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "gen", "gen.go"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	analyze := func(dir string) []Finding {
		t.Helper()
		pkgs, err := LoadGoPackages(dir, "./...")
		if err != nil {
			t.Fatal(err)
		}
		rep := &Report{Findings: RunGoAnalyzers(pkgs, []*GoAnalyzer{DeterminismFor([]string{"fixture/gen"})})}
		rep.Finalize()
		if len(rep.Findings) == 0 {
			t.Fatal("fixture produced no findings")
		}
		return rep.Findings
	}

	d1 := t.TempDir()
	write(d1, src)
	before := analyze(d1)

	d2 := t.TempDir()
	write(d2, "// shifted\n// by\n// three lines\n"+src)
	after := analyze(d2)

	if len(before) != len(after) {
		t.Fatalf("finding count changed: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].ID != after[i].ID {
			t.Errorf("finding %d ID drifted across a line shift: %q vs %q", i, before[i].ID, after[i].ID)
		}
		if before[i].Symbol == "" {
			t.Errorf("finding %d has no symbol attribution: %s", i, before[i])
		}
		if before[i].Line == after[i].Line {
			t.Errorf("finding %d line did not shift (test is vacuous): line %d", i, before[i].Line)
		}
	}
}
