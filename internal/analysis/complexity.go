package analysis

import (
	"fmt"
	"sort"
	"strings"

	"thalia/internal/benchmark"
	"thalia/internal/mapping"
	"thalia/internal/xquery"
	"thalia/internal/xsd"
)

// This file implements thalia-vet's complexity cross-check. The benchmark
// hand-assigns each query a complexity level (the weight of the hardest
// external function the reference mediator needs, per the paper's Section 3
// convention). That table is ground truth the scoring depends on, so the
// analyzer recomputes an estimate from the query text and the
// reference/challenge schema gap and fails on unexplained divergence.
// Divergences with a documented explanation are waived — waivers are
// first-class so the exceptions stay visible and go stale loudly.

// ComplexityEstimate is the automatic complexity estimate for one query.
type ComplexityEstimate struct {
	QueryID int                       `json:"query"`
	Level   benchmark.ComplexityLevel `json:"level"`
	Score   int                       `json:"score"`
	// ExtFuncs counts non-builtin function calls in the query text.
	ExtFuncs int `json:"extFuncs"`
	// FLWORDepth is the maximum FLWOR nesting depth.
	FLWORDepth int `json:"flworDepth"`
	// CtorCount counts constructed elements in the return clause.
	CtorCount int `json:"ctorCount"`
	// Translation reports that the challenge schema's vocabulary is in
	// another language (its tags translate to different English tags).
	Translation bool `json:"translation"`
	// MissingNames are the query's field steps with no case-insensitive
	// counterpart in the challenge schema's vocabulary.
	MissingNames []string `json:"missingNames,omitempty"`
}

// Explain renders the estimate's derivation for finding messages.
func (e ComplexityEstimate) Explain() string {
	var parts []string
	if e.ExtFuncs > 0 {
		parts = append(parts, fmt.Sprintf("%d external function call(s)", e.ExtFuncs))
	}
	if e.FLWORDepth > 1 {
		parts = append(parts, fmt.Sprintf("FLWOR nesting depth %d", e.FLWORDepth))
	}
	if e.CtorCount >= 3 {
		parts = append(parts, fmt.Sprintf("%d constructed elements", e.CtorCount))
	}
	if e.Translation {
		parts = append(parts, "challenge schema requires language translation")
	}
	if len(e.MissingNames) > 0 {
		parts = append(parts, fmt.Sprintf("field name(s) %s absent from challenge schema",
			strings.Join(e.MissingNames, ", ")))
	}
	if len(parts) == 0 {
		parts = append(parts, "challenge schema covers every referenced field")
	}
	return strings.Join(parts, "; ")
}

// EstimateComplexity derives a complexity estimate for a query against the
// challenge schema it must be answered over. The score model:
//
//	score = extFuncs                         // explicit escape hatches
//	      + (flworDepth - 1)                 // nested restructuring
//	      + ctorBonus                        // heavy result reshaping (≥3 ctors)
//	      + gap                              // reference/challenge schema gap
//
// where gap is 3 when the challenge vocabulary is in another language
// (every tag must be translated before any mapping is even possible), else
// the number of query field names with no case-insensitive counterpart in
// the challenge schema, capped at 2. The level is min(score, 3).
func EstimateComplexity(q *benchmark.Query, challenge *xsd.Schema) (ComplexityEstimate, error) {
	est := ComplexityEstimate{QueryID: q.ID}
	expr, err := xquery.Parse(q.XQuery)
	if err != nil {
		return est, fmt.Errorf("query %d does not parse: %w", q.ID, err)
	}
	est.ExtFuncs = countExternalCalls(expr)
	est.FLWORDepth = flworDepth(expr)
	est.CtorCount = ctorCount(expr)
	est.Translation = schemaNeedsTranslation(challenge)

	gap := 0
	if est.Translation {
		gap = 3
	} else {
		est.MissingNames = missingFieldNames(expr, challenge)
		gap = len(est.MissingNames)
		if gap > 2 {
			gap = 2
		}
	}
	est.Score = est.ExtFuncs + gap
	if est.FLWORDepth > 1 {
		est.Score += est.FLWORDepth - 1
	}
	if est.CtorCount >= 3 {
		est.Score++
	}
	level := est.Score
	if level > 3 {
		level = 3
	}
	est.Level = benchmark.ComplexityLevel(level)
	return est, nil
}

// countExternalCalls counts calls to functions outside the XQuery subset's
// builtins — the textual footprint of the paper's external functions.
func countExternalCalls(e xquery.Expr) int {
	n := 0
	xquery.Walk(e, func(x xquery.Expr) bool {
		if c, ok := x.(*xquery.Call); ok && !xquery.IsBuiltin(c.Name) {
			n++
		}
		return true
	})
	return n
}

// flworDepth computes the maximum FLWOR nesting depth.
func flworDepth(e xquery.Expr) int {
	max := 0
	var walk func(x xquery.Expr, depth int)
	walk = func(x xquery.Expr, depth int) {
		if _, ok := x.(*xquery.FLWOR); ok {
			depth++
			if depth > max {
				max = depth
			}
		}
		d := depth
		xquery.Walk(x, func(y xquery.Expr) bool {
			if y == x {
				return true
			}
			walk(y, d)
			return false
		})
	}
	walk(e, 0)
	return max
}

// ctorCount counts constructed elements.
func ctorCount(e xquery.Expr) int {
	n := 0
	xquery.Walk(e, func(x xquery.Expr) bool {
		if _, ok := x.(*xquery.ElemCtor); ok {
			n++
		}
		return true
	})
	return n
}

// schemaNeedsTranslation reports whether a schema's element vocabulary is
// in a language the testbed's lexicons cover: some tag translates to a
// different English tag, so answering any reference-schema query over it
// needs a high-complexity translation function first.
func schemaNeedsTranslation(s *xsd.Schema) bool {
	if s == nil {
		return false
	}
	lexicons := []*mapping.Lexicon{mapping.NewGermanLexicon(), mapping.NewFrenchLexicon()}
	for _, name := range s.Vocabulary() {
		name = strings.TrimPrefix(name, "@")
		for _, lex := range lexicons {
			if en := lex.TranslateTag(name); !strings.EqualFold(en, name) {
				return true
			}
		}
	}
	return false
}

// missingFieldNames collects the query's field steps — path steps taken
// from a bound variable, i.e. everything except the doc()-rooted navigation
// that selects the row set — that have no case-insensitive counterpart in
// the challenge schema's vocabulary. Each missing name is a concept the
// integrator must discover somewhere else in the challenge schema.
func missingFieldNames(e xquery.Expr, challenge *xsd.Schema) []string {
	if challenge == nil {
		return nil
	}
	vocab := challenge.Vocabulary()
	inVocab := func(name string) bool {
		for _, v := range vocab {
			if strings.EqualFold(strings.TrimPrefix(v, "@"), name) {
				return true
			}
		}
		return false
	}
	seen := map[string]bool{}
	var missing []string
	xquery.Walk(e, func(x xquery.Expr) bool {
		p, ok := x.(*xquery.PathExpr)
		if !ok {
			return true
		}
		if _, fromDoc := docRoot(p); fromDoc {
			return true // row-set navigation, not a field reference
		}
		for _, st := range p.Steps {
			if st.Name == "*" || seen[st.Name] {
				continue
			}
			seen[st.Name] = true
			if !inVocab(st.Name) {
				missing = append(missing, st.Name)
			}
		}
		return true
	})
	sort.Strings(missing)
	return missing
}

// docRoot reports whether a path is rooted at a doc() call.
func docRoot(p *xquery.PathExpr) (*xquery.Call, bool) {
	c, ok := p.Root.(*xquery.Call)
	if ok && strings.EqualFold(c.Name, "doc") {
		return c, true
	}
	return nil, false
}

// ComplexityWaiver documents an accepted divergence between the estimator
// and the hand-assigned table for one query.
type ComplexityWaiver struct {
	// Estimated is the level the estimator is expected to produce; a waiver
	// only applies while the estimate still matches it.
	Estimated benchmark.ComplexityLevel
	// Reason explains, for a human, why the hand-assigned level is right
	// and the estimate is off.
	Reason string
}

// DefaultComplexityWaivers documents the two places the textual estimator
// is known to diverge from the reference mediator's accounting.
var DefaultComplexityWaivers = map[int]ComplexityWaiver{
	1: {
		Estimated: benchmark.ComplexityLow,
		Reason: "query 1's Instructor→Lecturer gap is a pure synonym: the mediator " +
			"resolves it by declarative renaming with no external function, so the " +
			"hand-assigned level is none although the estimator counts one missing field name",
	},
	3: {
		Estimated: benchmark.ComplexityLow,
		Reason: "query 3's union-type heterogeneity hides inside brown's mixed Title " +
			"content (string vs. embedded hyperlink), which the vocabulary diff cannot " +
			"see; decomposing it takes a medium-complexity external function",
	},
}

// CheckComplexity diffs the hand-assigned complexity table against the
// automatic estimates and reports unexplained divergence, unknown or stale
// waivers, and estimator failures. schemaFor defaults to the testbed's
// catalogs; waivers defaults to DefaultComplexityWaivers.
func CheckComplexity(queries []*benchmark.Query, schemaFor func(string) (*xsd.Schema, error), waivers map[int]ComplexityWaiver) []Finding {
	if schemaFor == nil {
		schemaFor = CatalogSchemaFor
	}
	if waivers == nil {
		waivers = DefaultComplexityWaivers
	}
	hand := benchmark.HandAssignedComplexity()
	var out []Finding
	for _, q := range queries {
		challenge, err := schemaFor(q.ChallengeSource)
		if err != nil {
			out = append(out, Finding{Check: "complexity", QueryID: q.ID,
				Message: fmt.Sprintf("cannot load challenge schema %q: %v", q.ChallengeSource, err)})
			continue
		}
		est, err := EstimateComplexity(q, challenge)
		if err != nil {
			out = append(out, Finding{Check: "complexity", QueryID: q.ID, Message: err.Error()})
			continue
		}
		assigned, ok := hand[q.ID]
		if !ok {
			out = append(out, Finding{Check: "complexity", QueryID: q.ID,
				Message: "no hand-assigned complexity level"})
			continue
		}
		w, waived := waivers[q.ID]
		switch {
		case est.Level == assigned && !waived:
			// Agreement, nothing to report.
		case est.Level == assigned && waived:
			out = append(out, Finding{Check: "complexity", QueryID: q.ID,
				Message: fmt.Sprintf("stale waiver: estimate now agrees with hand-assigned level %s — delete the waiver", assigned)})
		case waived && est.Level == w.Estimated:
			// Documented divergence, still accurate.
		case waived:
			out = append(out, Finding{Check: "complexity", QueryID: q.ID,
				Message: fmt.Sprintf("waiver out of date: waiver expects estimate %s but estimator now says %s (hand-assigned %s; %s)",
					w.Estimated, est.Level, assigned, est.Explain())})
		default:
			out = append(out, Finding{Check: "complexity", QueryID: q.ID,
				Message: fmt.Sprintf("complexity divergence: estimated %s but hand-assigned %s (%s) — fix the table or add a documented waiver",
					est.Level, assigned, est.Explain())})
		}
	}
	return out
}
