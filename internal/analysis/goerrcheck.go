package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrCheckScope lists the packages where a silently discarded error is a
// correctness bug: the benchmark runner (a swallowed error turns a failing
// query into a silently wrong score) and the integration layer it reports
// through.
var ErrCheckScope = []string{
	"thalia/internal/benchmark",
	"thalia/internal/integration",
}

// ErrCheck returns the analyzer that flags call statements whose error
// result is dropped on the floor. Only bare expression statements are
// flagged: an explicit `_ =` assignment is a visible, reviewable decision,
// and strings.Builder/bytes.Buffer writers (whose Write methods are
// documented never to fail) are exempt. Discards inside deferred closures
// get their own message — a swallowed cleanup failure hides exactly the
// write-back errors defer exists to handle.
//
// A second, repository-wide rule flags `defer f.Close()` on writable files:
// Close is where buffered writes surface their errors, so deferring it on a
// file opened with os.Create or a writable os.OpenFile silently loses data
// corruption. Read-only files are exempt — their Close has nothing to
// report.
func ErrCheck() *GoAnalyzer { return ErrCheckFor(ErrCheckScope) }

// ErrCheckFor scopes the expression-statement rule to the given import
// paths; the deferred-Close-on-writable-file rule always runs over every
// loaded package.
func ErrCheckFor(scope []string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "errcheck",
		Doc:  "error returns must not be silently discarded; no deferred Close on writable files",
		Run: func(pkgs []*GoPackage) []Finding {
			var out []Finding
			for _, p := range pkgs {
				out = append(out, runDeferClose(p)...)
				if inScope(p, scope) {
					out = append(out, runErrCheck(p)...)
				}
			}
			return out
		},
	}
}

func runErrCheck(p *GoPackage) []Finding {
	var out []Finding
	for _, f := range p.Files {
		deferBodies := deferredClosureBodies(f)
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[call]
			if !ok || !returnsError(tv.Type) || infallibleWriter(p, call) {
				return true
			}
			msg := fmt.Sprintf("result of %s contains an error that is silently discarded", callName(p, call))
			for _, body := range deferBodies {
				if body.Pos() <= stmt.Pos() && stmt.Pos() < body.End() {
					msg = fmt.Sprintf("result of %s contains an error that is silently discarded inside a deferred cleanup (cleanup failures must be reported)", callName(p, call))
					break
				}
			}
			file, line, col := p.Position(call.Pos())
			out = append(out, Finding{Check: "errcheck", File: file, Line: line, Column: col,
				Message: msg})
			return true
		})
	}
	return out
}

// deferredClosureBodies collects the bodies of function literals invoked
// directly by a defer statement.
func deferredClosureBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// runDeferClose flags `defer f.Close()` on files the enclosing function
// opened for writing.
func runDeferClose(p *GoPackage) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			writable := writableFiles(p, decl.Body)
			if len(writable) == 0 {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				ds, ok := n.(*ast.DeferStmt)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(ds.Call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Close" {
					return true
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || !writable[id.Name] {
					return true
				}
				file, line, col := p.Position(ds.Pos())
				out = append(out, Finding{Check: "errcheck", File: file, Line: line, Column: col,
					Message: fmt.Sprintf("deferred Close on writable file %s discards the write-back error (close explicitly and check the error)", id.Name)})
				return true
			})
		}
	}
	return out
}

// writableFiles maps local identifiers to whether the function opened them
// for writing: os.Create always, os.OpenFile when its flag argument has
// O_WRONLY or O_RDWR set (resolved from the type checker's constant value
// where possible, falling back to the flag expression's text).
func writableFiles(p *GoPackage, body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) == 0 || len(assign.Rhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeOf(p.Info, call)
		switch {
		case isPkgFunc(obj, "os", "Create"):
		case isPkgFunc(obj, "os", "OpenFile") && len(call.Args) >= 2 && writableFlags(p, call.Args[1]):
		default:
			return true
		}
		if id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// writableFlags decides whether an os.OpenFile flag argument requests write
// access. os.O_WRONLY and os.O_RDWR are 1 and 2 on every platform.
func writableFlags(p *GoPackage, flagArg ast.Expr) bool {
	if tv, ok := p.Info.Types[flagArg]; ok && tv.Value != nil {
		if v, ok := constant.Int64Val(tv.Value); ok {
			return v&3 != 0
		}
	}
	text := exprFlagText(flagArg)
	return strings.Contains(text, "O_WRONLY") || strings.Contains(text, "O_RDWR") ||
		strings.Contains(text, "O_APPEND")
}

// exprFlagText renders a flag expression's identifier names for the
// non-constant fallback.
func exprFlagText(e ast.Expr) string {
	var b strings.Builder
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			b.WriteString(id.Name)
			b.WriteByte('|')
		}
		return true
	})
	return b.String()
}

// returnsError reports whether a call result type carries an error (the
// sole result, or the last element of a tuple).
func returnsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface)
}

// infallibleWriter exempts methods on strings.Builder and bytes.Buffer and
// fmt.Fprint* calls writing to them: their error results are documented to
// always be nil.
func infallibleWriter(p *GoPackage, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := p.Info.Selections[sel]; ok {
		return isBuilderType(s.Recv())
	}
	// fmt.Fprint/Fprintf/Fprintln with a builder/buffer writer.
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || len(call.Args) == 0 {
		return false
	}
	if tv, ok := p.Info.Types[call.Args[0]]; ok {
		return isBuilderType(tv.Type)
	}
	return false
}

func isBuilderType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// callName renders the called function for a finding message.
func callName(p *GoPackage, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name + "()"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name + "()"
		}
		return fun.Sel.Name + "()"
	}
	return "call"
}
