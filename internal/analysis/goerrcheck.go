package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrCheckScope lists the packages where a silently discarded error is a
// correctness bug: the benchmark runner (a swallowed error turns a failing
// query into a silently wrong score) and the integration layer it reports
// through.
var ErrCheckScope = []string{
	"thalia/internal/benchmark",
	"thalia/internal/integration",
}

// ErrCheck returns the analyzer that flags call statements whose error
// result is dropped on the floor. Only bare expression statements are
// flagged: an explicit `_ =` assignment is a visible, reviewable decision,
// and strings.Builder/bytes.Buffer writers (whose Write methods are
// documented never to fail) are exempt.
func ErrCheck() *GoAnalyzer { return ErrCheckFor(ErrCheckScope) }

// ErrCheckFor scopes the errcheck analyzer to the given import paths.
func ErrCheckFor(scope []string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "errcheck",
		Doc:  "error returns must not be silently discarded in benchmark and integration code",
		Run: func(pkgs []*GoPackage) []Finding {
			var out []Finding
			for _, p := range pkgs {
				if !inScope(p, scope) {
					continue
				}
				out = append(out, runErrCheck(p)...)
			}
			return out
		},
	}
}

func runErrCheck(p *GoPackage) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[call]
			if !ok || !returnsError(tv.Type) || infallibleWriter(p, call) {
				return true
			}
			file, line, col := p.Position(call.Pos())
			out = append(out, Finding{Check: "errcheck", File: file, Line: line, Column: col,
				Message: fmt.Sprintf("result of %s contains an error that is silently discarded", callName(p, call))})
			return true
		})
	}
	return out
}

// returnsError reports whether a call result type carries an error (the
// sole result, or the last element of a tuple).
func returnsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface)
}

// infallibleWriter exempts methods on strings.Builder and bytes.Buffer and
// fmt.Fprint* calls writing to them: their error results are documented to
// always be nil.
func infallibleWriter(p *GoPackage, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := p.Info.Selections[sel]; ok {
		return isBuilderType(s.Recv())
	}
	// fmt.Fprint/Fprintf/Fprintln with a builder/buffer writer.
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || len(call.Args) == 0 {
		return false
	}
	if tv, ok := p.Info.Types[call.Args[0]]; ok {
		return isBuilderType(tv.Type)
	}
	return false
}

func isBuilderType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// callName renders the called function for a finding message.
func callName(p *GoPackage, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name + "()"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name + "()"
		}
		return fun.Sel.Name + "()"
	}
	return "call"
}
