package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func findingsWithIDs(t *testing.T, fs ...Finding) []Finding {
	t.Helper()
	rep := &Report{Findings: fs}
	rep.Finalize()
	return rep.Findings
}

// TestBaselineApply covers the ratchet's three buckets: fresh findings not
// in the baseline, suppressed findings the baseline accepts, and stale
// entries whose finding no longer fires.
func TestBaselineApply(t *testing.T) {
	old := findingsWithIDs(t,
		Finding{Check: "ctxflow", File: "a/a.go", Symbol: "a.F", Message: "fixed since"},
		Finding{Check: "mapflow", File: "b/b.go", Symbol: "b.G", Message: "still firing"},
	)
	base := NewBaseline(old)

	now := findingsWithIDs(t,
		Finding{Check: "mapflow", File: "b/b.go", Symbol: "b.G", Message: "still firing"},
		Finding{Check: "goleak", File: "c/c.go", Symbol: "c.H", Message: "brand new"},
	)
	fresh, suppressed, stale := base.Apply(now)
	if len(fresh) != 1 || fresh[0].Message != "brand new" {
		t.Errorf("fresh = %v, want the new goleak finding", fresh)
	}
	if len(suppressed) != 1 || suppressed[0].Message != "still firing" {
		t.Errorf("suppressed = %v, want the surviving mapflow finding", suppressed)
	}
	if len(stale) != 1 || stale[0].Message != "fixed since" {
		t.Errorf("stale = %v, want the fixed ctxflow entry", stale)
	}
}

// TestBaselineRoundTrip: write, load, re-marshal — byte-identical, which is
// what makes `-update-baseline` twice in a row a no-op.
func TestBaselineRoundTrip(t *testing.T) {
	fs := findingsWithIDs(t,
		Finding{Check: "ctxflow", File: "b/b.go", Symbol: "b.G", Message: "second by file order"},
		Finding{Check: "ctxflow", File: "a/a.go", Symbol: "a.F", Message: "first by file order"},
	)
	base := NewBaseline(fs)
	first, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(first, []byte("\n")) {
		t.Error("marshalled baseline lacks a trailing newline")
	}

	path := filepath.Join(t.TempDir(), "vet.baseline.json")
	if err := WriteBaseline(path, base); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	second, err := loaded.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("round trip is not byte-identical:\n%s\nvs\n%s", first, second)
	}
	if loaded.Findings[0].Message != "first by file order" {
		t.Errorf("entries not sorted by file: %+v", loaded.Findings)
	}
}

// TestLoadBaselineMissing: a repo without a baseline accepts no findings.
func TestLoadBaselineMissing(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("missing baseline decodes to %d entries, want 0", len(b.Findings))
	}
}

// TestLoadBaselineVersionMismatch: a future-format baseline must fail
// loudly, not silently accept or reject everything.
func TestLoadBaselineVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vet.baseline.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("version 99 baseline loaded without error")
	}
}

// TestExitCode pins the severity-aware exit policy: stale entries and fresh
// errors always fail, fresh warnings fail only under -strict.
func TestExitCode(t *testing.T) {
	warn := Finding{Check: "goleak", Severity: SeverityWarning, Message: "w"}
	errf := Finding{Check: "ctxflow", Message: "e"}
	stale := BaselineEntry{ID: "ftv1-dead", Check: "ctxflow", Message: "gone"}
	cases := []struct {
		name   string
		fresh  []Finding
		stale  []BaselineEntry
		strict bool
		want   int
	}{
		{"clean", nil, nil, false, 0},
		{"clean strict", nil, nil, true, 0},
		{"fresh error", []Finding{errf}, nil, false, 1},
		{"fresh warning lax", []Finding{warn}, nil, false, 0},
		{"fresh warning strict", []Finding{warn}, nil, true, 1},
		{"stale only", nil, []BaselineEntry{stale}, false, 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.fresh, c.stale, c.strict); got != c.want {
			t.Errorf("%s: ExitCode = %d, want %d", c.name, got, c.want)
		}
	}
}
