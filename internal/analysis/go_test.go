package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixtureModule lays out a throwaway module seeded with the defects
// the Go head must catch, and returns its root directory.
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module fixture\n\ngo 1.24\n",
		"gen/gen.go": `package gen

import (
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Stamp is nondeterministic: wall clock in generator code.
func Stamp() string { return time.Now().String() }

// Pick is nondeterministic: map order leaks into the returned slice.
func Pick(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Sorted is fine: the function sorts what it collected.
func Sorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Tally is fine: the map range only feeds another map.
func Tally(m map[string]int) map[string]bool {
	out := map[string]bool{}
	for k := range m {
		out[k] = true
	}
	return out
}

// Render is nondeterministic: map order leaks into a builder.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}

// Seed uses math/rand (already flagged at the import).
func Seed() int { return rand.Int() }
`,
		"lib/lib.go": `package lib

import "errors"

// Parse panics via a helper: reachable from an exported entry point.
func Parse(s string) string { return inner(s) }

func inner(s string) string {
	if s == "" {
		panic("empty input")
	}
	return s
}

// MustGet panics by contract; the Must prefix exempts it as a root.
func MustGet() string { panic("must") }

// orphan panics but nothing exported reaches it.
func orphan() { panic("unreachable") }

func fail() error { return errors.New("boom") }

// Drop discards fail's error: an errcheck finding.
func Drop() { fail() }

// Keep handles the error properly.
func Keep() error { return fail() }

var _ = orphan
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestGoAnalyzersOnFixture pins what each Go analyzer reports on a module
// seeded with exactly the defect classes thalia-vet exists to catch — and
// what it stays silent about.
func TestGoAnalyzersOnFixture(t *testing.T) {
	dir := writeFixtureModule(t)
	pkgs, err := LoadGoPackages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}

	analyzers := []*GoAnalyzer{
		DeterminismFor([]string{"fixture/gen"}),
		PanicPath(),
		ErrCheckFor([]string{"fixture/lib"}),
	}
	rep := &Report{Findings: RunGoAnalyzers(pkgs, analyzers)}
	rep.Sort()

	wantSubstrings := []string{
		`gen/gen.go:4:2: [determinism] import of math/rand in deterministic generator code`,
		`gen/gen.go:11:30: [determinism] time.Now in deterministic generator code`,
		`gen/gen.go:16:2: [determinism] map iteration order leaks into ordered output in Pick (sort the keys first)`,
		`gen/gen.go:44:2: [determinism] map iteration order leaks into ordered output in Render (sort the keys first)`,
		`lib/lib.go:10:3: [panicpath] panic reachable from exported API: lib.Parse → lib.inner`,
		`lib/lib.go:24:15: [errcheck] result of fail() contains an error that is silently discarded`,
	}
	got := strings.TrimSpace(rep.Text())
	gotLines := strings.Split(got, "\n")
	if len(gotLines) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d:\n%s", len(gotLines), len(wantSubstrings), got)
	}
	for i, want := range wantSubstrings {
		if gotLines[i] != want {
			t.Errorf("finding %d = %q, want %q", i, gotLines[i], want)
		}
	}
}

// TestGoAnalyzersFixtureSilence spells out the negative space of the
// fixture test: no findings for sorted or map-to-map iterations, for the
// Must-prefixed panic, for the unreachable panic, or for handled errors.
func TestGoAnalyzersFixtureSilence(t *testing.T) {
	dir := writeFixtureModule(t)
	pkgs, err := LoadGoPackages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*GoAnalyzer{
		DeterminismFor([]string{"fixture/gen"}),
		PanicPath(),
		ErrCheckFor([]string{"fixture/lib"}),
	}
	for _, f := range RunGoAnalyzers(pkgs, analyzers) {
		for _, quiet := range []string{"Sorted", "Tally", "MustGet", "orphan", "Keep"} {
			if strings.Contains(f.Message, quiet) {
				t.Errorf("unexpected finding about %s: %s", quiet, f)
			}
		}
	}
}

// TestGoAnalyzersRepoClean is the acceptance gate for the Go head: the
// whole repository analyzes clean with the default analyzer set, i.e.
// thalia-vet passing on this codebase is a checked invariant, not luck.
func TestGoAnalyzersRepoClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadGoPackages(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages from the repo", len(pkgs))
	}
	for _, f := range RunGoAnalyzers(pkgs, DefaultGoAnalyzers()) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestExplainKindsDetectsDeadVocabulary proves the analyzer can actually
// fail: with only the explain package in scope there are no instrumentation
// sites, so every Kind constant must be reported as unemitted. The count
// also pins the size of the trace vocabulary — adding a Kind without an
// emitter breaks TestGoAnalyzersRepoClean, adding one with an emitter
// updates this number.
func TestExplainKindsDetectsDeadVocabulary(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadGoPackages(root, "./internal/explain")
	if err != nil {
		t.Fatal(err)
	}
	findings := ExplainKinds().Run(pkgs)
	const wantKinds = 19
	if len(findings) != wantKinds {
		t.Errorf("got %d findings, want %d (one per Kind constant)", len(findings), wantKinds)
	}
	for _, f := range findings {
		if f.Check != "explainkinds" || !strings.Contains(f.Message, "no instrumentation site emits it") {
			t.Errorf("malformed finding: %s", f)
		}
		if !strings.HasPrefix(f.File, "internal/explain/") || f.Line == 0 {
			t.Errorf("finding lacks a declaration position: %s", f)
		}
	}
}

// TestFaultKindsDetectsUnwiredKinds proves the faultkinds analyzer can
// fail: a fixture Kind vocabulary where one constant is fully wired (a
// switch case dispatches on it, a test names it), one has no dispatch site,
// and one appears in no test.
func TestFaultKindsDetectsUnwiredKinds(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module fixture\n\ngo 1.24\n",
		"chaos/chaos.go": `package chaos

// Kind names one injectable fault.
type Kind string

const (
	KindWired    Kind = "wired"    // dispatched and tested
	KindNoSwitch Kind = "noswitch" // tested but never dispatched
	KindNoTest   Kind = "notest"   // dispatched but never tested
)

// Apply dispatches two of the three kinds.
func Apply(k Kind) string {
	switch k {
	case KindWired:
		return "wired"
	case KindNoTest:
		return "untested"
	}
	return ""
}
`,
		"chaos/chaos_test.go": `package chaos

import "testing"

func TestApply(t *testing.T) {
	if Apply(KindWired) != "wired" {
		t.Fail()
	}
	_ = KindNoSwitch
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := LoadGoPackages(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings := faultKindsFor("fixture/chaos").Run(pkgs)
	want := []string{
		"faultline.KindNoSwitch has no injection dispatch site",
		"faultline.KindNoTest is exercised by no test",
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for i, w := range want {
		if findings[i].Check != "faultkinds" || !strings.Contains(findings[i].Message, w) {
			t.Errorf("finding %d = %s, want %q", i, findings[i], w)
		}
		if !strings.HasPrefix(findings[i].File, "chaos/") || findings[i].Line == 0 {
			t.Errorf("finding lacks a declaration position: %s", findings[i])
		}
	}
	// Nothing to report about the fully wired kind.
	for _, f := range findings {
		if strings.Contains(f.Message, "KindWired") {
			t.Errorf("unexpected finding about KindWired: %s", f)
		}
	}
}

// TestPlanCoverageDetectsUnloweredKinds proves the plancoverage analyzer
// can fail, against the vetmod fixture: LitExpr is fully wired (compile
// case plus test mention) and stays quiet, AddExpr compiles but no fixture
// test names it, DropExpr has no compile case at all.
func TestPlanCoverageDetectsUnloweredKinds(t *testing.T) {
	pkgs := loadVetmod(t)
	findings := planCoverageFor("vetmod/qast", "vetmod/qplan").Run(pkgs)
	checkFindings(t, findings, "plancoverage", []string{
		"xquery.AddExpr is exercised by no test in the plan package",
		"xquery.DropExpr has no compile case in the plan package",
	}, []string{"LitExpr", "Helper"})
	for _, f := range findings {
		if !strings.HasPrefix(f.File, "qast/") || f.Line == 0 {
			t.Errorf("finding lacks a declaration position: %s", f)
		}
	}
}

// TestScenarioCoverageDetectsUndispatchedClasses proves the
// scenariocoverage analyzer can fail, against the vetmod fixture: CaseWired
// is fully wired (dispatch switch case plus test mention) and stays quiet,
// CaseNoSwitch has no dispatch site in the generator, CaseNoTest is
// dispatched but no fixture test names it.
func TestScenarioCoverageDetectsUndispatchedClasses(t *testing.T) {
	pkgs := loadVetmod(t)
	findings := scenarioCoverageFor("vetmod/hcase", "vetmod/sgen").Run(pkgs)
	checkFindings(t, findings, "scenariocoverage", []string{
		"hetero.CaseNoSwitch has no transform dispatch site in the scenario generator",
		"hetero.CaseNoTest is exercised by no test in the scenario package",
	}, []string{"CaseWired", "hidden", "Budget"})
	for _, f := range findings {
		if !strings.HasPrefix(f.File, "hcase/") || f.Line == 0 {
			t.Errorf("finding lacks a declaration position: %s", f)
		}
	}
}

// TestLoadGoPackagesPositions: findings must be reported with repo-relative
// paths, which requires the loader to record the module root.
func TestLoadGoPackagesPositions(t *testing.T) {
	dir := writeFixtureModule(t)
	pkgs, err := LoadGoPackages(dir, "./gen")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	file, line, _ := p.Position(p.Files[0].Package)
	if file != "gen/gen.go" || line != 1 {
		t.Errorf("Position = %s:%d, want gen/gen.go:1", file, line)
	}
}
