package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Import paths of the XQuery AST package and the plan compiler whose
// coverage the analyzer audits.
const (
	xqueryPath     = "thalia/internal/xquery"
	xqueryPlanPath = "thalia/internal/xquery/plan"
)

// PlanCoverage returns the analyzer that keeps the compiled-plan engine
// total: every AST node kind — every exported type in internal/xquery whose
// pointer implements Expr — must have a compile case (a type-switch case in
// the plan package's non-test files) and a test in the plan package that
// exercises it by name. A kind the compiler cannot lower would silently
// diverge from the interpreter the first time a query used it; a kind no
// test mentions can rot without failing anything.
func PlanCoverage() *GoAnalyzer { return planCoverageFor(xqueryPath, xqueryPlanPath) }

// planCoverageFor audits the Expr vocabulary of astPath against the
// compiler at planPath — the seam the analyzer's own tests use to point it
// at a fixture module.
func planCoverageFor(astPath, planPath string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "plancoverage",
		Doc:  "every xquery Expr node kind has a compile case in the plan package and a test exercising it",
		Run:  func(pkgs []*GoPackage) []Finding { return runPlanCoverage(pkgs, astPath, planPath) },
	}
}

func runPlanCoverage(pkgs []*GoPackage, astPath, planPath string) []Finding {
	var astPkg, planPkg *GoPackage
	for _, p := range pkgs {
		switch p.ImportPath {
		case astPath:
			astPkg = p
		case planPath:
			planPkg = p
		}
	}
	if astPkg == nil || planPkg == nil {
		return nil // one side is outside the analysis scope
	}

	// The Expr interface and the exported node kinds implementing it.
	scope := astPkg.Types.Scope()
	exprObj, ok := scope.Lookup("Expr").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := exprObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	kinds := map[string]*types.TypeName{}
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() || tn == exprObj {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(types.NewPointer(tn.Type()), iface) {
			kinds[tn.Name()] = tn
		}
	}
	if len(kinds) == 0 {
		return nil
	}

	// A compile case is a type-switch case in the plan package's non-test
	// files whose type resolves to one of the node kinds.
	compiled := map[string]bool{}
	for _, f := range planPkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, expr := range cc.List {
					tv, ok := planPkg.Info.Types[expr]
					if !ok {
						continue
					}
					t := tv.Type
					if p, ok := t.(*types.Pointer); ok {
						t = p.Elem()
					}
					named, ok := t.(*types.Named)
					if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != astPath {
						continue
					}
					if _, ok := kinds[named.Obj().Name()]; ok {
						compiled[named.Obj().Name()] = true
					}
				}
			}
			return true
		})
	}

	// A test exercises a kind when its type name appears in a _test.go file
	// of the plan package. The loader only parses non-test files, so this is
	// a textual scan of the package directory.
	tested := map[string]bool{}
	entries, err := os.ReadDir(planPkg.Dir)
	if err == nil {
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(planPkg.Dir, e.Name()))
			if err != nil {
				continue
			}
			for k := range kinds {
				if strings.Contains(string(src), k) {
					tested[k] = true
				}
			}
		}
	}

	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	var out []Finding
	for _, k := range names {
		file, line, col := astPkg.Position(kinds[k].Pos())
		if !compiled[k] {
			out = append(out, Finding{Check: "plancoverage", File: file, Line: line, Column: col,
				Message: fmt.Sprintf("xquery.%s has no compile case in the plan package (the compiler cannot lower it)", k)})
		}
		if !tested[k] {
			out = append(out, Finding{Check: "plancoverage", File: file, Line: line, Column: col,
				Message: fmt.Sprintf("xquery.%s is exercised by no test in the plan package", k)})
		}
	}
	return out
}
