package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// TelemetryPath is the import path of the repository's metrics registry.
const TelemetryPath = "thalia/internal/telemetry"

// TelemetryContract returns the analyzer that bounds metric label
// cardinality. The telemetry registry creates one series per distinct
// (name, labels) tuple and keeps it for the registry's lifetime, so a
// label drawn from an unbounded domain — an error string, a raw URL path,
// anything a caller can vary per request — is a memory leak and a scrape
// explosion wearing a metrics API.
//
// The analyzer inspects every label that reaches a Registry method
// (Counter, Gauge, Histogram, HistogramBuckets), whether built inline with
// telemetry.L or bound to a local variable first, and flags label values
// derived from unbounded sources:
//
//   - err.Error() or any expression of type error;
//   - fields of net/http.Request or net/url.URL (Path, RawQuery, Host...),
//     which callers control per request — route them through a finite
//     normalizer (like website.routeLabel) first;
//   - fmt.Sprint*/Sprintf whose arguments include either of the above.
//
// Finite sources — literals, constants, Name() methods, strconv of small
// ints — pass. This is a blacklist, not a whitelist: a plain string
// parameter is accepted, because the finite set it is drawn from (system
// names, query labels) is the caller's contract, checked at the caller's
// own label sites.
func TelemetryContract() *GoAnalyzer { return telemetryContractFor(TelemetryPath, nil) }

// telemetryContractFor parameterizes the registry's import path and the
// package scope (nil means every loaded package), for fixture tests.
func telemetryContractFor(telemetryPath string, scope []string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "telemetrycontract",
		Doc:  "metric labels must have bounded cardinality (no errors or URLs as values)",
		RunFacts: func(fb *FactBase) []Finding {
			var out []Finding
			fb.All(func(ff *FuncFact) {
				if scope != nil && !inScope(ff.Pkg, scope) {
					return
				}
				out = append(out, checkTelemetryLabels(ff, telemetryPath)...)
			})
			return out
		},
	}
}

// registryMethods are the Registry entry points whose label arguments are
// series keys.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "HistogramBuckets": true,
}

// checkTelemetryLabels inspects one function's metric registration sites.
func checkTelemetryLabels(ff *FuncFact, telemetryPath string) []Finding {
	p := ff.Pkg
	// labelVars maps local variables to the telemetry.L call that built
	// them, so `sys := telemetry.L(...); reg.Counter(n, sys)` is checked at
	// the registration site like an inline label.
	labelVars := map[string]*ast.CallExpr{}
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isLabelCtor(p, call, telemetryPath) || i >= len(assign.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				labelVars[id.Name] = call
			}
		}
		return true
	})

	var out []Finding
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isRegistryCall(p, call, telemetryPath) {
			return true
		}
		for _, arg := range call.Args {
			ctor := labelCtorOf(p, arg, telemetryPath, labelVars)
			if ctor == nil || len(ctor.Args) < 2 {
				continue
			}
			key := labelKeyText(ctor.Args[0])
			if reason := unboundedSource(p, ctor.Args[1]); reason != "" {
				file, line, col := p.Position(ctor.Args[1].Pos())
				out = append(out, Finding{Check: "telemetrycontract", File: file, Line: line, Column: col,
					Message: fmt.Sprintf("metric label %s registered in %s takes its value from %s; label cardinality must be bounded (draw values from a finite set like system or query names)",
						key, ff.Decl.Name.Name, reason)})
			}
		}
		return true
	})
	return out
}

// isRegistryCall reports whether a call is a Registry metric method of the
// telemetry package.
func isRegistryCall(p *GoPackage, call *ast.CallExpr, telemetryPath string) bool {
	fn, ok := calleeOf(p.Info, call).(*types.Func)
	if !ok || !registryMethods[fn.Name()] {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == telemetryPath
}

// isLabelCtor reports whether a call is telemetry.L (or the Label-building
// function of the configured package).
func isLabelCtor(p *GoPackage, call *ast.CallExpr, telemetryPath string) bool {
	fn, ok := calleeOf(p.Info, call).(*types.Func)
	if !ok || fn.Name() != "L" {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == telemetryPath
}

// labelCtorOf resolves a registry-call argument to the telemetry.L call
// that built it: inline, or through a local variable recorded earlier.
func labelCtorOf(p *GoPackage, arg ast.Expr, telemetryPath string, labelVars map[string]*ast.CallExpr) *ast.CallExpr {
	switch e := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		if isLabelCtor(p, e, telemetryPath) {
			return e
		}
	case *ast.Ident:
		return labelVars[e.Name]
	}
	return nil
}

// labelKeyText renders a label key argument for the finding message.
func labelKeyText(e ast.Expr) string {
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		return lit.Value
	}
	return "value"
}

// unboundedSource names the unbounded source a label-value expression is
// derived from, "" when none is found. The recursion is deliberate about
// call boundaries: fmt formatters and type conversions pass taint through
// from their arguments, but any other named function call is treated as a
// sanitizing boundary — a normalizer like website.routeLabel exists exactly
// to map an unbounded input onto a finite label set, and the analyzer must
// not see through it.
func unboundedSource(p *GoPackage, e ast.Expr) string {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		fn, ok := calleeOf(p.Info, e).(*types.Func)
		if ok && fn.Name() == "Error" && implementsError(recvType(fn)) {
			return "err.Error()"
		}
		// string(x) and other conversions are transparent.
		if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() {
			for _, arg := range e.Args {
				if r := unboundedSource(p, arg); r != "" {
					return r
				}
			}
			return ""
		}
		// fmt formatters concatenate their arguments into the label.
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			for _, arg := range e.Args {
				if r := unboundedSource(p, arg); r != "" {
					return r
				}
			}
		}
		// Any other call is a boundary: its contract, not its input,
		// decides the label domain.
		return ""
	case *ast.SelectorExpr:
		if tv, ok := p.Info.Types[e.X]; ok && fromRequestOrURL(tv.Type) {
			return fmt.Sprintf("the per-request field %s", lockExprText(e))
		}
		if tv, ok := p.Info.Types[e]; ok && isErrorType(tv.Type) {
			return "a value of type error"
		}
		return unboundedSource(p, e.X)
	case *ast.Ident:
		if tv, ok := p.Info.Types[e]; ok && isErrorType(tv.Type) {
			return "a value of type error"
		}
	case *ast.BinaryExpr:
		if r := unboundedSource(p, e.X); r != "" {
			return r
		}
		return unboundedSource(p, e.Y)
	case *ast.IndexExpr:
		return unboundedSource(p, e.X)
	case *ast.StarExpr:
		return unboundedSource(p, e.X)
	}
	return ""
}

// recvType returns a method's receiver type, nil for plain functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface)
}

// isErrorType reports whether t is exactly the error interface (values of
// concrete error types are caught through their Error() call instead).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	return t.String() == "error"
}

// fromRequestOrURL reports whether a selector base is an http.Request or
// url.URL (or pointer to one): their string fields are caller-controlled.
func fromRequestOrURL(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "net/http.Request" || full == "net/url.URL"
}
