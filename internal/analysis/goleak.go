package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GoLeak returns the analyzer that demands a termination path for every
// spawned goroutine. The leak class it targets is the endless worker: a
// `go` statement whose body spins in an unconditional `for { ... }` that
// contains no way out — no return, and no break that actually exits the
// loop (a break inside a nested select or switch exits only that select or
// switch, the classic half-fixed version of this bug). Such a goroutine
// outlives its run and accumulates across runs; tying its loop to
// ctx.Done() or a done channel via a `return` is the fix.
//
// Loops with a condition, and `for range ch` over a channel (which ends
// when the channel closes), count as terminating. Named functions launched
// with `go f()` are resolved through the fact base and their bodies held to
// the same rule; dynamic launches (`go fn()` on a function value) are out
// of the static contract.
//
// Findings are warnings: the analyzer proves the absence of an exit
// statement, not the absence of an exit in every execution, so it gates CI
// only under -strict.
func GoLeak() *GoAnalyzer { return goLeakFor(nil) }

// goLeakFor scopes the goleak analyzer to the given import paths; nil
// means every loaded package.
func goLeakFor(scope []string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "goleak",
		Doc:  "every spawned goroutine needs a reachable termination path",
		RunFacts: func(fb *FactBase) []Finding {
			var out []Finding
			fb.All(func(ff *FuncFact) {
				if scope != nil && !inScope(ff.Pkg, scope) {
					return
				}
				ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
					gostmt, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					body := goroutineBody(fb, ff.Pkg, gostmt)
					if body == nil {
						return true
					}
					for _, loop := range endlessLoops(body) {
						file, line, col := ff.Pkg.Position(gostmt.Pos())
						out = append(out, Finding{
							Check: "goleak", Severity: SeverityWarning,
							File: file, Line: line, Column: col,
							Message: fmt.Sprintf("goroutine spawned in %s never terminates: infinite loop at line %d has no return or loop-exiting break (tie it to ctx.Done() or a done channel)",
								ff.Decl.Name.Name, ff.Pkg.Fset.Position(loop.Pos()).Line),
						})
					}
					return true
				})
			})
			return out
		},
	}
}

// goroutineBody resolves the statement body a go statement runs: a func
// literal's body directly, a statically-known named function's body through
// the fact base, nil when the target is dynamic or external.
func goroutineBody(fb *FactBase, p *GoPackage, g *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn, ok := calleeOf(p.Info, g.Call).(*types.Func); ok {
		if ff, ok := fb.Funcs[fn.FullName()]; ok {
			return ff.Decl.Body
		}
	}
	return nil
}

// endlessLoops returns the unconditional for-loops in body that have no
// exit: no return statement, and no break whose innermost breakable
// enclosure is the loop itself.
func endlessLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !loopHasExit(loop) {
			out = append(out, loop)
		}
		return true
	})
	return out
}

// loopHasExit reports whether an unconditional loop contains a return, a
// goto, or a break that exits it (unlabeled breaks nested inside an inner
// for/range/switch/select do not count — they exit the inner construct).
func loopHasExit(loop *ast.ForStmt) bool {
	return stmtsExitLoop(loop.Body.List, true)
}

// stmtsExitLoop scans statements; breakable tracks whether an unlabeled
// break here would exit the loop under test.
func stmtsExitLoop(list []ast.Stmt, breakable bool) bool {
	for _, s := range list {
		if stmtExitsLoop(s, breakable) {
			return true
		}
	}
	return false
}

func stmtExitsLoop(s ast.Stmt, breakable bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		// A goto is taken to leave the loop. A labeled break exits some
		// enclosing loop — possibly this one; count it. An unlabeled break
		// counts only where the loop under test is still the innermost
		// breakable construct.
		switch s.Tok.String() {
		case "goto":
			return true
		case "break":
			return breakable || s.Label != nil
		}
		return false
	case *ast.BlockStmt:
		return stmtsExitLoop(s.List, breakable)
	case *ast.IfStmt:
		if stmtExitsLoop(s.Body, breakable) {
			return true
		}
		if s.Else != nil {
			return stmtExitsLoop(s.Else, breakable)
		}
	case *ast.ForStmt:
		return stmtsExitLoop(s.Body.List, false)
	case *ast.RangeStmt:
		return stmtsExitLoop(s.Body.List, false)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && stmtsExitLoop(cc.Body, false) {
				return true
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && stmtsExitLoop(cc.Body, false) {
				return true
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && stmtsExitLoop(cc.Body, false) {
				return true
			}
		}
	case *ast.LabeledStmt:
		return stmtExitsLoop(s.Stmt, breakable)
	}
	return false
}
