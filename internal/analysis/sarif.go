package analysis

import (
	"encoding/json"
	"sort"
)

// SARIF 2.1.0 output
//
// thalia-vet's findings have always been text and JSON for humans and
// scripts; SARIF is the third head, for machines that already speak it —
// code-scanning UIs, IDE gutters, CI annotation layers. The subset emitted
// here is deliberately small: one run, one driver, the rule table, and one
// result per finding with a physical location and the finding's stable ID
// as a partial fingerprint (the same identity the baseline ratchet keys
// on, so a SARIF consumer's dedup agrees with thalia-vet's own).

// sarifLog is the document root.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string             `json:"ruleId"`
	Level               string             `json:"level"`
	Message             sarifMessage       `json:"message"`
	Locations           []sarifLocation    `json:"locations,omitempty"`
	PartialFingerprints map[string]string  `json:"partialFingerprints,omitempty"`
	Suppressions        []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	LogicalLocations []sarifLogicalLoc     `json:"logicalLocations,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifLogicalLoc struct {
	FullyQualifiedName string `json:"fullyQualifiedName"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// SARIF renders the report as a SARIF 2.1.0 log. docs supplies the rule
// table (AllCheckDocs of the analyzer set that ran); baselined marks
// finding IDs that are suppressed by the committed baseline, so consumers
// show them as such instead of as new results. Output is deterministic:
// results follow the report's sorted order and the rule table is sorted by
// rule ID.
func (r *Report) SARIF(docs []CheckDoc, baselined map[string]bool) ([]byte, error) {
	rules := make([]sarifRule, 0, len(docs))
	seen := map[string]bool{}
	for _, d := range docs {
		if seen[d.Name] {
			continue
		}
		seen[d.Name] = true
		rules = append(rules, sarifRule{ID: d.Name, ShortDescription: sarifMessage{Text: d.Doc}})
	}
	// Findings can carry checks the doc table missed; emit a rule for them
	// anyway so every result's ruleId resolves.
	for _, f := range r.Findings {
		if !seen[f.Check] {
			seen[f.Check] = true
			rules = append(rules, sarifRule{ID: f.Check, ShortDescription: sarifMessage{Text: f.Check}})
		}
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(r.Findings))
	for _, f := range r.Findings {
		res := sarifResult{
			RuleID:  f.Check,
			Level:   f.EffectiveSeverity(),
			Message: sarifMessage{Text: f.String()},
		}
		if f.ID != "" {
			res.PartialFingerprints = map[string]string{"thaliaVetFindingId/v1": f.ID}
		}
		if f.File != "" {
			loc := sarifLocation{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: f.File, URIBaseID: "SRCROOT"},
			}}
			if f.Line > 0 {
				loc.PhysicalLocation.Region = &sarifRegion{StartLine: f.Line, StartColumn: f.Column}
			}
			if f.Symbol != "" {
				loc.LogicalLocations = []sarifLogicalLoc{{FullyQualifiedName: f.Symbol}}
			}
			res.Locations = []sarifLocation{loc}
		}
		if baselined[f.ID] {
			res.Suppressions = []sarifSuppression{{
				Kind:          "external",
				Justification: "accepted by vet.baseline.json; remove the baseline entry to re-arm",
			}}
		}
		results = append(results, res)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "thalia-vet", Rules: rules}},
			Results: results,
		}},
	}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
