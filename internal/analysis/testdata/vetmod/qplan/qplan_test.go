package qplan

import (
	"testing"

	"vetmod/qast"
)

// TestCompileLit names LitExpr (and DropExpr, which is still reported for
// its missing compile case) but never the addition kind.
func TestCompileLit(t *testing.T) {
	if Compile(&qast.LitExpr{Val: "x"}) != "lit x" {
		t.Fail()
	}
	if Compile(&qast.DropExpr{}) != "unsupported" {
		t.Fail()
	}
}
