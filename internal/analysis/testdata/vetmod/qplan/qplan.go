// Package qplan is the fixture compiler plancoverage audits: its type
// switch lowers LitExpr and AddExpr but has no case for DropExpr.
package qplan

import "vetmod/qast"

// Compile lowers a fixture expression to a string program.
func Compile(e qast.Expr) string {
	switch x := e.(type) {
	case *qast.LitExpr:
		return "lit " + x.Val
	case *qast.AddExpr:
		return "add(" + Compile(x.L) + "," + Compile(x.R) + ")"
	}
	return "unsupported"
}
