// Package ctxflow seeds the ctxflow analyzer's defect classes: a blocking
// sleep inside a context-carrying function, and a detached context handed
// to a context-taking callee — next to the correct forms it must accept.
package ctxflow

import (
	"context"
	"time"
)

func lookup(ctx context.Context, key string) string {
	if ctx.Err() != nil {
		return ""
	}
	return key
}

// SleepyPoll is a defect: time.Sleep ignores cancellation for the pause.
func SleepyPoll(ctx context.Context) string {
	time.Sleep(10 * time.Millisecond)
	return lookup(ctx, "a")
}

// Detached is a defect: a fresh Background context severs cancellation.
func Detached(ctx context.Context) string {
	return lookup(context.Background(), "b")
}

// Todoed is a defect: context.TODO() mid-chain is the same severing.
func Todoed(ctx context.Context) string {
	return lookup(context.TODO(), "b2")
}

// Chained is fine: the caller's ctx flows through.
func Chained(ctx context.Context) string { return lookup(ctx, "c") }

// Derived is fine: a context derived from the caller's keeps cancellation.
func Derived(ctx context.Context) string {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return lookup(sub, "d")
}

// NoCtx is fine: without a ctx parameter there is nothing to ignore.
func NoCtx() { time.Sleep(time.Millisecond) }
