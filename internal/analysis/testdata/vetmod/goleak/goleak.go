// Package goleak seeds the goleak analyzer's defect classes: goroutines
// spinning in unconditional loops with no way out, including the classic
// half-fix where a break exits only the inner select — next to loops with
// genuine termination paths.
package goleak

import "context"

func work() {}

// SpinForever is a defect: the worker loop has no exit at all.
func SpinForever() {
	go func() {
		for {
			work()
		}
	}()
}

// HalfFixed is a defect: the break exits the select, not the loop.
func HalfFixed(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				break
			default:
				work()
			}
		}
	}()
}

// SpawnNamed is a defect: the named worker it launches never terminates.
func SpawnNamed() { go namedWorker() }

func namedWorker() {
	for {
		work()
	}
}

// CtxBound is fine: the return on ctx.Done() ends the goroutine.
func CtxBound(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// Labeled is fine: the labeled break exits the loop itself.
func Labeled(ch chan int) {
	go func() {
	loop:
		for {
			select {
			case <-ch:
				break loop
			default:
				work()
			}
		}
	}()
}

// Drain is fine: ranging over a channel ends when it closes.
func Drain(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// Bounded is fine: a conditional loop is outside the endless-worker class.
func Bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			work()
		}
	}()
}
