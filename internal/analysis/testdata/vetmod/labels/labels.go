// Package labels seeds the telemetrycontract analyzer's defect classes:
// metric labels whose values come from unbounded domains (errors, raw URL
// paths) — next to the bounded forms it must accept.
package labels

import (
	"fmt"
	"net/http"

	"vetmod/telem"
)

// RecordErr is a defect: err.Error() has unbounded cardinality.
func RecordErr(reg *telem.Registry, err error) {
	reg.Counter("requests_failed", telem.L("reason", err.Error()))
}

// RecordErrFmt is a defect: the error rides into the label through Sprintf.
func RecordErrFmt(reg *telem.Registry, err error) {
	reg.Counter("requests_failed", telem.L("reason", fmt.Sprintf("err=%v", err)))
}

// RecordPath is a defect: a raw URL path is caller-controlled.
func RecordPath(reg *telem.Registry, r *http.Request) {
	reg.Counter("requests", telem.L("path", r.URL.Path))
}

// RecordVar is a defect: binding the label to a local first changes nothing.
func RecordVar(reg *telem.Registry, r *http.Request) {
	l := telem.L("path", r.URL.Path)
	reg.Gauge("inflight", l)
}

// RecordHit is fine: a literal value is a one-element domain.
func RecordHit(reg *telem.Registry) {
	reg.Counter("hits", telem.L("source", "cache"))
}

// RecordRoute is fine: the normalizer maps the path onto a finite set.
func RecordRoute(reg *telem.Registry, r *http.Request) {
	reg.Counter("requests", telem.L("route", routeOf(r.URL.Path)))
}

func routeOf(p string) string {
	if p == "/" {
		return "root"
	}
	return "other"
}

// RecordSystem is fine: a plain string parameter is the caller's contract.
func RecordSystem(reg *telem.Registry, system string) {
	reg.Counter("answers", telem.L("system", system))
}
