// Package errdefer seeds the errcheck v2 defect classes: errors discarded
// inside deferred cleanup closures, and deferred Close on writable files —
// next to the forms the analyzer must accept.
package errdefer

import (
	"errors"
	"os"
)

func cleanup() error { return errors.New("cleanup failed") }

// DeferredDiscard is a defect: the closure swallows cleanup's error.
func DeferredDiscard() error {
	defer func() {
		cleanup()
	}()
	return nil
}

// DeferredChecked is fine: the closure handles the error explicitly.
func DeferredChecked() (err error) {
	defer func() {
		if cerr := cleanup(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return nil
}

// WriteOut is a defect: deferring Close on a created file loses the
// write-back error.
func WriteOut(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString("data")
	return err
}

// AppendLog is a defect: O_APPEND|O_WRONLY opens for writing too.
func AppendLog(path string) error {
	lf, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer lf.Close()
	_, err = lf.WriteString("line\n")
	return err
}

// WriteOutChecked is fine: Close is called explicitly and checked.
func WriteOutChecked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("data"); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// ReadIn is fine: a read-only file's Close has nothing to report.
func ReadIn(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 4)
	n, err := f.Read(buf)
	return buf[:n], err
}
