// Package sgen is the fixture generator scenariocoverage audits: its
// transform switch dispatches CaseWired and CaseNoTest but has no case for
// CaseNoSwitch.
package sgen

import "vetmod/hcase"

// Transform applies the fixture class to a value.
func Transform(c hcase.Case, v string) string {
	switch c {
	case hcase.CaseWired:
		return "wired:" + v
	case hcase.CaseNoTest:
		return "untested:" + v
	}
	return v
}
