package sgen

import (
	"testing"

	"vetmod/hcase"
)

// TestTransform names CaseWired (and CaseNoSwitch, which is still reported
// for its missing dispatch site) but never the untested class.
func TestTransform(t *testing.T) {
	if Transform(hcase.CaseWired, "x") != "wired:x" {
		t.Fail()
	}
	if Transform(hcase.CaseNoSwitch, "x") != "x" {
		t.Fail()
	}
}
