// Package telem mirrors the repository's telemetry registry surface so the
// telemetrycontract fixtures can exercise the label-cardinality rule
// without importing the real module.
package telem

// Label is one metric label key/value pair.
type Label struct{ Key, Value string }

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry mimics the metric entry points whose labels key series.
type Registry struct{}

// Counter registers a counter series.
func (r *Registry) Counter(name string, labels ...Label) int { return len(labels) }

// Gauge registers a gauge series.
func (r *Registry) Gauge(name string, labels ...Label) int { return len(labels) }

// Histogram registers a histogram series.
func (r *Registry) Histogram(name string, labels ...Label) int { return len(labels) }
