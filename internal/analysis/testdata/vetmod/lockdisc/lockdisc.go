// Package lockdisc seeds the lockdiscipline analyzer's defect classes:
// locks copied by value, System calls made under a lock, and channel sends
// made under a lock — next to the disciplined forms it must accept.
package lockdisc

import (
	"sync"

	"vetmod/sys"
)

// Guarded carries a mutex by value, so copying it copies the lock.
type Guarded struct {
	mu    sync.Mutex
	cache map[string]int
}

// Snapshot is a defect: a value receiver copies the mutex on every call.
func (g Guarded) Snapshot() int { return len(g.cache) }

// Consume is a defect: a by-value parameter copies the caller's lock.
func Consume(g Guarded) int { return len(g.cache) }

// Clone is a defect: the assignment copies a live lock.
func Clone(g *Guarded) int {
	c := *g
	return len(c.cache)
}

// AnswerUnderLock is a defect: the deferred unlock keeps mu held across the
// System call in the return statement.
func (g *Guarded) AnswerUnderLock(s sys.System, req sys.Request) (*sys.Answer, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return s.Answer(req)
}

// Publish is a defect: the send blocks while mu is held.
func (g *Guarded) Publish(ch chan int) {
	g.mu.Lock()
	ch <- len(g.cache)
	g.mu.Unlock()
}

// AnswerOutsideLock is fine: the lock is released before the System call.
func (g *Guarded) AnswerOutsideLock(s sys.System, req sys.Request) (*sys.Answer, error) {
	g.mu.Lock()
	n := len(g.cache)
	g.mu.Unlock()
	_ = n
	return s.Answer(req)
}

// PublishAfter is fine: the send happens after the unlock.
func (g *Guarded) PublishAfter(ch chan int) {
	g.mu.Lock()
	n := len(g.cache)
	g.mu.Unlock()
	ch <- n
}

// Borrow is fine: pointers to lock-bearing values share, not copy.
func Borrow(g *Guarded) *Guarded { return g }
