// Package hcase seeds the scenariocoverage vocabulary: a tiny
// heterogeneity taxonomy with one fully dispatched-and-tested class, one
// class the fixture generator has no dispatch site for, and one class no
// fixture test mentions.
package hcase

// Case is the fixture heterogeneity class.
type Case int

const (
	// CaseWired is fully wired: dispatched in sgen and named in its test.
	CaseWired Case = iota + 1
	// CaseNoSwitch has no dispatch site in sgen (it cannot be generated).
	CaseNoSwitch
	// CaseNoTest is dispatched but appears in no sgen test.
	CaseNoTest
	// hidden is unexported and must not be reported.
	hidden //nolint:unused
)

// Budget is not a Case constant and must not be reported.
const Budget = 7
