// Package qast seeds the plancoverage vocabulary: a tiny expression AST
// with one fully compiled-and-tested kind, one kind the fixture compiler
// has no case for, and one kind no fixture test mentions.
package qast

// Expr is the fixture AST interface.
type Expr interface {
	exprNode()
}

// LitExpr is fully wired: compiled in qplan and named in its test.
type LitExpr struct{ Val string }

// AddExpr has a compile case but appears in no qplan test.
type AddExpr struct{ L, R Expr }

// DropExpr has no compile case in qplan (it would diverge at runtime).
type DropExpr struct{ X Expr }

func (*LitExpr) exprNode()  {}
func (*AddExpr) exprNode()  {}
func (*DropExpr) exprNode() {}

// Helper is not an Expr kind and must not be reported.
type Helper struct{}
