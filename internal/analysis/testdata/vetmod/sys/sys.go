// Package sys mirrors the repository's integration.System contract so the
// lockdiscipline fixtures can exercise the call-under-lock rule without
// importing the real module.
package sys

// Request is a query request.
type Request struct{ Query string }

// Answer is a query result.
type Answer struct{ Rows int }

// System is the fixture's stand-in for integration.System.
type System interface {
	Name() string
	Answer(req Request) (*Answer, error)
}

// Stub is a trivial System.
type Stub struct{ name string }

// New builds a Stub.
func New(name string) *Stub { return &Stub{name: name} }

// Name implements System.
func (s *Stub) Name() string { return s.name }

// Answer implements System.
func (s *Stub) Answer(req Request) (*Answer, error) { return &Answer{Rows: 1}, nil }
