// Package mapflow seeds the interprocedural map-order defect: producer
// helpers that return map-iteration-ordered slices, and consumers that
// serialize those results with and without sorting.
package mapflow

import (
	"fmt"
	"sort"
	"strings"
)

// Keys is a map-ordered producer; its callers decide whether that is a bug.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Passthrough is a producer by propagation: it forwards Keys' result unsorted.
func Passthrough(m map[string]int) []string { return Keys(m) }

// SortedKeys is not a producer: it sorts before returning.
func SortedKeys(m map[string]int) []string {
	keys := Keys(m)
	sort.Strings(keys)
	return keys
}

// RenderDirect is a defect: the producer result feeds strings.Join directly.
func RenderDirect(m map[string]int) string {
	return strings.Join(Keys(m), ",")
}

// RenderVar is a defect: the tainted local reaches fmt.Sprint.
func RenderVar(m map[string]int) string {
	ks := Passthrough(m)
	return fmt.Sprint(ks)
}

// RenderLoop is a defect: ranging over the tainted slice emits per element.
func RenderLoop(m map[string]int) string {
	var b strings.Builder
	ks := Keys(m)
	for _, k := range ks {
		b.WriteString(k)
	}
	return b.String()
}

// RenderSorted is fine: the consumer sorts before serializing.
func RenderSorted(m map[string]int) string {
	ks := Keys(m)
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

// Count is fine: len is order-insensitive.
func Count(m map[string]int) int { return len(Keys(m)) }
