package analysis

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSARIFRendering decodes the emitted log and pins the fields downstream
// consumers key on: schema and version, the rule table, result levels, the
// stable-ID fingerprint, and the baseline suppression marking.
func TestSARIFRendering(t *testing.T) {
	rep := &Report{Findings: []Finding{
		{Check: "ctxflow", File: "a/a.go", Line: 10, Column: 3, Symbol: "a.F", Message: "detached ctx"},
		{Check: "goleak", Severity: SeverityWarning, File: "b/b.go", Line: 5, Column: 1, Symbol: "b.G", Message: "endless worker"},
	}}
	rep.Finalize()
	docs := []CheckDoc{{"goleak", "goroutines terminate"}, {"ctxflow", "ctx flows"}}
	baselined := map[string]bool{rep.Findings[1].ID: true}

	out, err := rep.SARIF(docs, baselined)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID              string            `json:"ruleId"`
				Level               string            `json:"level"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
				Suppressions        []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
					LogicalLocations []struct {
						FullyQualifiedName string `json:"fullyQualifiedName"`
					} `json:"logicalLocations"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("emitted SARIF does not decode: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version = %q, schema = %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "thalia-vet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Rule table is sorted by ID regardless of docs order.
	for i := 1; i < len(run.Tool.Driver.Rules); i++ {
		if run.Tool.Driver.Rules[i-1].ID >= run.Tool.Driver.Rules[i].ID {
			t.Errorf("rule table not sorted: %q before %q", run.Tool.Driver.Rules[i-1].ID, run.Tool.Driver.Rules[i].ID)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	first, second := run.Results[0], run.Results[1]
	if first.RuleID != "ctxflow" || first.Level != "error" {
		t.Errorf("result 0 = %s/%s, want ctxflow/error", first.RuleID, first.Level)
	}
	if second.RuleID != "goleak" || second.Level != "warning" {
		t.Errorf("result 1 = %s/%s, want goleak/warning", second.RuleID, second.Level)
	}
	if first.PartialFingerprints["thaliaVetFindingId/v1"] != rep.Findings[0].ID {
		t.Errorf("fingerprint = %v, want the finding's stable ID", first.PartialFingerprints)
	}
	if len(first.Suppressions) != 0 {
		t.Errorf("fresh finding carries suppressions: %v", first.Suppressions)
	}
	if len(second.Suppressions) != 1 || second.Suppressions[0].Kind != "external" {
		t.Errorf("baselined finding suppressions = %v, want one external", second.Suppressions)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "a/a.go" || loc.ArtifactLocation.URIBaseID != "SRCROOT" || loc.Region.StartLine != 10 {
		t.Errorf("physical location = %+v", loc)
	}
	if first.Locations[0].LogicalLocations[0].FullyQualifiedName != "a.F" {
		t.Errorf("logical location = %+v", first.Locations[0].LogicalLocations)
	}
}

// TestSARIFDeterministic: identical reports must serialize identically, so
// CI artifact diffs mean something.
func TestSARIFDeterministic(t *testing.T) {
	rep := &Report{Findings: []Finding{
		{Check: "mapflow", File: "a/a.go", Line: 1, Symbol: "a.F", Message: "m"},
	}}
	rep.Finalize()
	docs := AllCheckDocs(DefaultGoAnalyzers())
	a, err := rep.SARIF(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.SARIF(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("SARIF output differs across identical renders")
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Error("SARIF output lacks a trailing newline")
	}
}
