package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
)

// Finding identity
//
// The baseline ratchet and SARIF fingerprints both need every finding to
// carry an identity that survives the edits code review actually produces:
// inserting a function above the finding, reformatting, adding a comment.
// Line numbers fail that test immediately, so the ID hashes only content
// that describes the defect itself:
//
//	check \x00 file \x00 symbol \x00 query \x00 message \x00 occurrence
//
// The symbol (enclosing declaration) pins the finding to the function it
// lives in rather than where that function happens to sit in the file; the
// occurrence ordinal disambiguates several identical findings inside one
// symbol (two identical panic sites in one function get ordinals 0 and 1),
// counted in the report's sorted order so assignment is deterministic.
//
// The "ftv1-" prefix versions the scheme: if the hashed fields ever change,
// the prefix changes with them and every old baseline entry goes loudly
// stale instead of silently mismatching.

// idVersion prefixes every finding ID; bump it when the hashed content
// changes shape.
const idVersion = "ftv1-"

// idKey renders the content-addressed part of a finding's identity,
// excluding the occurrence ordinal.
func idKey(f Finding) string {
	return strings.Join([]string{
		f.Check,
		f.File,
		f.Symbol,
		strconv.Itoa(f.QueryID),
		f.Message,
	}, "\x00")
}

// AssignIDs computes and stores the stable ID of every finding in place.
// Call it on sorted findings (Report.Finalize does): occurrence ordinals of
// identical findings follow slice order.
func AssignIDs(findings []Finding) {
	seen := map[string]int{}
	for i := range findings {
		key := idKey(findings[i])
		n := seen[key]
		seen[key] = n + 1
		sum := sha256.Sum256([]byte(key + "\x00" + strconv.Itoa(n)))
		findings[i].ID = idVersion + hex.EncodeToString(sum[:8])
	}
}
