package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// This file loads Go packages for the Go head of thalia-vet using only the
// standard library: the go command supplies the file lists and compiled
// export data (`go list -export -deps -json`), go/parser parses the
// sources, and go/types type-checks them with an importer that reads the
// export data of dependencies. This is the same division of labour as
// golang.org/x/tools/go/packages, without the dependency.

// GoPackage is one parsed, type-checked package under analysis.
type GoPackage struct {
	// ImportPath is the package's import path (e.g. "thalia/internal/xsd").
	ImportPath string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Root is the module root; finding positions are reported relative to it.
	Root string
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Position converts a token position to a root-relative file, line, column.
func (p *GoPackage) Position(pos token.Pos) (file string, line, col int) {
	ps := p.Fset.Position(pos)
	file = ps.Filename
	if rel, err := filepath.Rel(p.Root, ps.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return file, ps.Line, ps.Column
}

// goListPkg is the subset of go list's JSON we consume.
type goListPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
}

func goListJSON(dir string, extra ...string) ([]goListPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Name,Dir,Export,Standard,GoFiles"}, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []goListPkg
	for {
		var p goListPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadGoPackages loads, parses and type-checks the packages matching the
// given go list patterns (e.g. "./..."), with dir as the module root.
// Dependencies are imported from compiled export data, so only the matched
// packages themselves are parsed.
func LoadGoPackages(dir string, patterns ...string) ([]*GoPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One walk with -deps -export collects export data for every
	// dependency; a second plain walk tells targets from dependencies.
	all, err := goListJSON(dir, append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targetList, err := goListJSON(dir, patterns...)
	if err != nil {
		return nil, err
	}
	targets := map[string]bool{}
	for _, p := range targetList {
		targets[p.ImportPath] = true
	}
	exports := map[string]string{}
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}

	var out []*GoPackage
	for _, p := range all {
		if p.Standard || !targets[p.ImportPath] {
			continue
		}
		fset := token.NewFileSet()
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		out = append(out, &GoPackage{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Root:       dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}
