package analysis

import (
	"strings"
	"testing"

	"thalia/internal/benchmark"
	"thalia/internal/rewrite"
	"thalia/internal/xsd"
)

// TestComplexityCrossCheckClean is the acceptance gate for the complexity
// cross-check: with the default waivers, every estimate either matches the
// hand-assigned table or carries a documented waiver, so the check reports
// nothing on the real repository.
func TestComplexityCrossCheckClean(t *testing.T) {
	fs := CheckComplexity(benchmark.Queries(), nil, nil)
	for _, f := range fs {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestComplexityEstimates pins the estimator's level for every benchmark
// query, so recalibrations are deliberate.
func TestComplexityEstimates(t *testing.T) {
	want := map[int]benchmark.ComplexityLevel{
		1:  benchmark.ComplexityLow, // waived: hand-assigned none
		2:  benchmark.ComplexityLow,
		3:  benchmark.ComplexityLow, // waived: hand-assigned medium
		4:  benchmark.ComplexityHigh,
		5:  benchmark.ComplexityHigh,
		6:  benchmark.ComplexityMedium,
		7:  benchmark.ComplexityMedium,
		8:  benchmark.ComplexityHigh,
		9:  benchmark.ComplexityMedium,
		10: benchmark.ComplexityMedium,
		11: benchmark.ComplexityMedium,
		12: benchmark.ComplexityMedium,
	}
	for _, q := range benchmark.Queries() {
		sch, err := CatalogSchemaFor(q.ChallengeSource)
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		est, err := EstimateComplexity(q, sch)
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		if est.Level != want[q.ID] {
			t.Errorf("query %d: estimated %v (%s), want %v", q.ID, est.Level, est.Explain(), want[q.ID])
		}
	}
}

// TestComplexityTranslationDetected: the German-language challenge schemas
// must be recognized as needing translation (the high-complexity gap).
func TestComplexityTranslationDetected(t *testing.T) {
	eth, err := CatalogSchemaFor("eth")
	if err != nil {
		t.Fatal(err)
	}
	if !schemaNeedsTranslation(eth) {
		t.Error("eth schema not detected as needing translation")
	}
	cmu, err := CatalogSchemaFor("cmu")
	if err != nil {
		t.Fatal(err)
	}
	if schemaNeedsTranslation(cmu) {
		t.Error("cmu schema spuriously detected as needing translation")
	}
}

// TestComplexityDivergenceWithoutWaiver: removing the waivers must surface
// the two known divergences (queries 1 and 3) and nothing else.
func TestComplexityDivergenceWithoutWaiver(t *testing.T) {
	fs := CheckComplexity(benchmark.Queries(), nil, map[int]ComplexityWaiver{})
	if len(fs) != 2 {
		t.Fatalf("findings = %v, want exactly 2 (queries 1 and 3)", fs)
	}
	for i, wantQ := range []int{1, 3} {
		if fs[i].QueryID != wantQ || fs[i].Check != "complexity" {
			t.Errorf("finding %d = %+v, want complexity divergence for query %d", i, fs[i], wantQ)
		}
		if !strings.Contains(fs[i].Message, "complexity divergence") {
			t.Errorf("finding %d message = %q, want divergence wording", i, fs[i].Message)
		}
	}
}

// TestComplexityStaleWaiver: a waiver on a query whose estimate agrees with
// the table must itself be reported, so waivers cannot quietly outlive
// their reason.
func TestComplexityStaleWaiver(t *testing.T) {
	waivers := map[int]ComplexityWaiver{
		1: DefaultComplexityWaivers[1],
		3: DefaultComplexityWaivers[3],
		2: {Estimated: benchmark.ComplexityHigh, Reason: "obsolete"},
	}
	fs := CheckComplexity(benchmark.Queries(), nil, waivers)
	if len(fs) != 1 || fs[0].QueryID != 2 || !strings.Contains(fs[0].Message, "stale waiver") {
		t.Fatalf("findings = %v, want one stale-waiver finding for query 2", fs)
	}
}

// TestMappingsCheckClean: the declarative mediation tables resolve fully
// against the real catalog schemas.
func TestMappingsCheckClean(t *testing.T) {
	fs := CheckMappings(rewrite.NewMediator(), nil, nil)
	for _, f := range fs {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestMappingsCheckSeededDefects verifies the mapping checks actually
// fire: pointing every source at a foreign schema must produce mapping
// findings (dead record elements, unresolved field paths), each naming the
// offending source.
func TestMappingsCheckSeededDefects(t *testing.T) {
	sch := testSchema()
	fs := CheckMappings(rewrite.NewMediator(),
		func(string) (*xsd.Schema, error) { return sch, nil }, nil)
	if len(fs) == 0 {
		t.Fatal("expected findings when every source resolves to a foreign schema")
	}
	for _, f := range fs {
		if f.Check != "mapping" {
			t.Errorf("finding %s has check %q, want mapping", f, f.Check)
		}
	}
}

// TestCatalogsCheckClean: every testbed source materializes, validates
// against its own schema, and round-trips its schema serialization.
func TestCatalogsCheckClean(t *testing.T) {
	fs := CheckCatalogs()
	for _, f := range fs {
		t.Errorf("unexpected finding: %s", f)
	}
}
