package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path"
	"sort"
	"strings"
)

// PanicPath returns the analyzer that proves no panic is reachable from the
// exported API. It builds a static call graph over every loaded package
// (calls resolved through go/types; interface and function-value dispatch
// is out of scope and documented as such), takes every exported function
// and exported-receiver method as a root — except Must* functions, whose
// name is the contract that they panic — and walks the graph. A reachable
// panic call is reported at the panic site together with a witness chain
// from the root, so the report doubles as the repair plan: thread an error
// up that chain.
//
// init functions are not roots: a panic guarding package initialization
// (e.g. a duplicate registration) fires at program start deterministically,
// not in response to library input.
func PanicPath() *GoAnalyzer {
	return &GoAnalyzer{
		Name: "panicpath",
		Doc:  "no panic may be reachable from exported non-Must entry points",
		Run:  runPanicPath,
	}
}

// panicNode is one declared function in the call graph.
type panicNode struct {
	key     string // types.Func.FullName, stable across packages
	display string // short human name, e.g. "xquery.Parse"
	pkg     *GoPackage
	root    bool
	panics  []*ast.CallExpr
	callees []string
}

func runPanicPath(pkgs []*GoPackage) []Finding {
	nodes := map[string]*panicNode{}
	var order []string
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				obj := funcFor(p.Info, decl)
				if obj == nil {
					continue
				}
				n := &panicNode{
					key:     obj.FullName(),
					display: path.Base(p.ImportPath) + "." + declName(decl),
					pkg:     p,
					root:    isPanicRoot(p, decl, obj),
				}
				ast.Inspect(decl.Body, func(x ast.Node) bool {
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch callee := calleeOf(p.Info, call).(type) {
					case *types.Builtin:
						if callee.Name() == "panic" {
							n.panics = append(n.panics, call)
						}
					case *types.Func:
						n.callees = append(n.callees, callee.FullName())
					}
					return true
				})
				nodes[n.key] = n
				order = append(order, n.key)
			}
		}
	}

	// Breadth-first reachability from all roots at once, keeping one witness
	// parent per node so findings can print a chain.
	parent := map[string]string{}
	var queue []string
	sort.Strings(order)
	for _, key := range order {
		if nodes[key].root {
			parent[key] = ""
			queue = append(queue, key)
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, callee := range nodes[key].callees {
			if _, seen := parent[callee]; seen {
				continue
			}
			if _, ours := nodes[callee]; !ours {
				continue
			}
			parent[callee] = key
			queue = append(queue, callee)
		}
	}

	var out []Finding
	for _, key := range order {
		n := nodes[key]
		if _, reachable := parent[key]; !reachable || len(n.panics) == 0 {
			continue
		}
		chain := witnessChain(nodes, parent, key)
		for _, call := range n.panics {
			file, line, col := n.pkg.Position(call.Pos())
			out = append(out, Finding{Check: "panicpath", File: file, Line: line, Column: col,
				Message: fmt.Sprintf("panic reachable from exported API: %s", chain)})
		}
	}
	return out
}

// isPanicRoot decides whether a declaration is an exported entry point:
// exported name, exported receiver type (for methods), not a Must*
// function, and not in a main package (commands expose nothing).
func isPanicRoot(p *GoPackage, decl *ast.FuncDecl, obj *types.Func) bool {
	if p.Types.Name() == "main" || !obj.Exported() || strings.HasPrefix(obj.Name(), "Must") {
		return false
	}
	if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || !named.Obj().Exported() {
			return false
		}
	}
	return true
}

// witnessChain renders root → … → panicking function.
func witnessChain(nodes map[string]*panicNode, parent map[string]string, key string) string {
	var names []string
	for key != "" {
		if n, ok := nodes[key]; ok {
			names = append(names, n.display)
		}
		key = parent[key]
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// declName renders a declaration's name with its receiver type.
func declName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + decl.Name.Name
	}
	return decl.Name.Name
}
