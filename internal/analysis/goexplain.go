package analysis

import (
	"fmt"
	"go/types"
	"sort"
)

// explainPath is the import path of the explain package whose Kind
// vocabulary the analyzer audits.
const explainPath = "thalia/internal/explain"

// ExplainKinds returns the analyzer that keeps the explain vocabulary
// honest: every exported explain.Kind constant must be referenced by at
// least one instrumentation site outside the explain package itself. A
// kind nobody emits is a dead word in the trace language — readers grep
// for it, dashboards filter on it, and nothing ever produces it — so the
// analyzer reports it at its declaration.
func ExplainKinds() *GoAnalyzer {
	return &GoAnalyzer{
		Name: "explainkinds",
		Doc:  "every explain.Kind constant is emitted by at least one instrumentation site",
		Run:  runExplainKinds,
	}
}

func runExplainKinds(pkgs []*GoPackage) []Finding {
	var decl *GoPackage
	for _, p := range pkgs {
		if p.ImportPath == explainPath {
			decl = p
			break
		}
	}
	if decl == nil {
		// The explain package is outside the analysis scope; there is
		// nothing to audit.
		return nil
	}

	// Collect the exported constants of the named type explain.Kind.
	kinds := map[*types.Const]bool{}
	scope := decl.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if ok && named.Obj().Name() == "Kind" && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == explainPath {
			kinds[c] = false
		}
	}

	// A use anywhere outside the declaring package marks the kind live.
	for _, p := range pkgs {
		if p.ImportPath == explainPath {
			continue
		}
		for _, obj := range p.Info.Uses {
			c, ok := obj.(*types.Const)
			if !ok {
				continue
			}
			// The importer materializes its own *types.Const for each
			// dependency constant, so match by package path and name
			// rather than object identity.
			if c.Pkg() != nil && c.Pkg().Path() == explainPath {
				for k := range kinds {
					if k.Name() == c.Name() {
						kinds[k] = true
					}
				}
			}
		}
	}

	var dead []*types.Const
	for k, used := range kinds {
		if !used {
			dead = append(dead, k)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].Name() < dead[j].Name() })
	var out []Finding
	for _, k := range dead {
		file, line, col := decl.Position(k.Pos())
		out = append(out, Finding{Check: "explainkinds", File: file, Line: line, Column: col,
			Message: fmt.Sprintf("explain.%s is declared but no instrumentation site emits it", k.Name())})
	}
	return out
}
