package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxFlowScope lists the packages where context propagation is a
// correctness contract: the engine's cancellation and per-cell deadlines
// (benchmark), the website's request-scoped handlers, and the fault
// injector whose latency faults must not outlive a cancelled run.
var CtxFlowScope = []string{
	"thalia/internal/benchmark",
	"thalia/internal/website",
	"thalia/internal/faultline",
	"thalia/internal/integration",
}

// CtxFlow returns the analyzer that enforces context propagation: a
// function that accepts a context.Context must hand that context (or one
// derived from it) to every callee that takes one — reaching for
// context.Background() or context.TODO() mid-chain silently detaches the
// callee from cancellation and deadlines. It also forbids bare time.Sleep
// in any function that has a context available: a sleeping worker ignores
// cancellation for the whole pause (the repo's ctx-aware sleep helper is
// the remedy).
func CtxFlow() *GoAnalyzer { return ctxFlowFor(CtxFlowScope) }

// ctxFlowFor scopes the ctxflow analyzer to the given import paths; nil
// means every loaded package.
func ctxFlowFor(scope []string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "ctxflow",
		Doc:  "a function holding a ctx must pass it on, and must not block in time.Sleep",
		RunFacts: func(fb *FactBase) []Finding {
			var out []Finding
			fb.All(func(ff *FuncFact) {
				if scope != nil && !inScope(ff.Pkg, scope) {
					return
				}
				if ff.CtxIndex < 0 {
					return
				}
				out = append(out, runCtxFlow(ff)...)
			})
			return out
		},
	}
}

// runCtxFlow checks one context-carrying function's call sites.
func runCtxFlow(ff *FuncFact) []Finding {
	p := ff.Pkg
	var out []Finding
	add := func(pos ast.Node, format string, args ...interface{}) {
		file, line, col := p.Position(pos.Pos())
		out = append(out, Finding{Check: "ctxflow", File: file, Line: line, Column: col,
			Message: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(p.Info, call)
		fn, ok := callee.(*types.Func)
		if !ok {
			return true
		}
		if isPkgFunc(fn, "time", "Sleep") {
			add(call, "time.Sleep in %s ignores ctx cancellation for the whole pause (select on ctx.Done() and a timer instead)", ff.Decl.Name.Name)
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		idx := ctxParamIndex(sig)
		if idx < 0 || idx >= len(call.Args) {
			return true
		}
		if freshCtx(p.Info, call.Args[idx]) {
			add(call.Args[idx], "%s accepts a ctx but passes %s to %s, detaching it from cancellation (pass the caller's ctx or one derived from it)",
				ff.Decl.Name.Name, freshCtxName(p.Info, call.Args[idx]), fn.Name())
		}
		return true
	})
	return out
}

// freshCtx reports whether an argument expression manufactures a detached
// context: a direct context.Background() or context.TODO() call.
func freshCtx(info *types.Info, arg ast.Expr) bool {
	return freshCtxName(info, arg) != ""
}

// freshCtxName names the detached-context constructor an argument calls,
// "" if it is not one.
func freshCtxName(info *types.Info, arg ast.Expr) string {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return ""
	}
	obj := calleeOf(info, call)
	if isPkgFunc(obj, "context", "Background") {
		return "context.Background()"
	}
	if isPkgFunc(obj, "context", "TODO") {
		return "context.TODO()"
	}
	return ""
}
