package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SystemInterface is the qualified name of the integration-system contract
// the lock analyzer guards call boundaries against.
const SystemInterface = "thalia/internal/integration.System"

// LockDiscipline returns the analyzer that enforces the repository's lock
// hygiene, in three parts:
//
//   - no sync.Mutex/RWMutex (or any type containing one, like sync.Once)
//     may be copied by value: value receivers, by-value parameters, and
//     plain assignments that copy an existing lock are flagged;
//   - no lock may be held across a call into an integration.System method
//     (Answer can block on catalog materialization and, under chaos, on
//     injected latency — holding a lock across it serializes the engine
//     and invites lock-ordering deadlocks);
//   - no lock may be held across a channel send (an unbuffered or full
//     channel blocks forever if the receiver needs the same lock).
//
// The held-lock tracking is a statement-ordered walk with a lock-set
// lattice, not a full CFG: a lock taken inside a nested block is tracked
// within that block and discarded at its end, so conditionally-taken locks
// never poison the surrounding code. defer'd unlocks keep the lock held to
// the end of the function — which is exactly when defer releases it.
func LockDiscipline() *GoAnalyzer { return lockDisciplineFor(SystemInterface, nil) }

// lockDisciplineFor parameterizes the guarded interface and package scope
// (nil scope means every loaded package), for fixture tests.
func lockDisciplineFor(iface string, scope []string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "lockdiscipline",
		Doc:  "no lock copied by value or held across a System call or channel send",
		RunFacts: func(fb *FactBase) []Finding {
			sysIface := fb.LookupInterface(iface)
			var out []Finding
			fb.All(func(ff *FuncFact) {
				if scope != nil && !inScope(ff.Pkg, scope) {
					return
				}
				out = append(out, checkLockCopies(ff)...)
				out = append(out, checkHeldLocks(ff, sysIface)...)
			})
			return out
		},
	}
}

// checkLockCopies flags value receivers, by-value parameters and copying
// assignments whose type contains a lock.
func checkLockCopies(ff *FuncFact) []Finding {
	p := ff.Pkg
	var out []Finding
	add := func(pos ast.Node, format string, args ...interface{}) {
		file, line, col := p.Position(pos.Pos())
		out = append(out, Finding{Check: "lockdiscipline", File: file, Line: line, Column: col,
			Message: fmt.Sprintf(format, args...)})
	}
	sig := ff.Obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if _, isPtr := recv.Type().(*types.Pointer); !isPtr && containsLock(recv.Type()) {
			add(ff.Decl.Name, "method %s has a value receiver of lock-bearing type %s (use a pointer receiver)",
				ff.Decl.Name.Name, recv.Type())
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		prm := sig.Params().At(i)
		if _, isPtr := prm.Type().(*types.Pointer); !isPtr && containsLock(prm.Type()) {
			add(ff.Decl.Name, "parameter %s of %s passes lock-bearing type %s by value",
				prm.Name(), ff.Decl.Name.Name, prm.Type())
		}
	}
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range assign.Rhs {
			if !copiesExistingValue(rhs) {
				continue
			}
			if tv, ok := p.Info.Types[rhs]; ok && containsLock(tv.Type) {
				add(rhs, "assignment copies a value of lock-bearing type %s (copy a pointer instead)", tv.Type)
			}
		}
		return true
	})
	return out
}

// copiesExistingValue reports whether an expression reads an existing value
// (so assigning it copies a live lock), as opposed to constructing a fresh
// one (composite literal, function call) whose lock has never been used.
func copiesExistingValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.UnaryExpr:
		return false // &x takes a pointer, no copy
	default:
		_ = e
		return false
	}
}

// containsLock reports whether t embeds a sync.Mutex or sync.RWMutex by
// value, directly or through struct fields and arrays.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, map[types.Type]bool{})
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return containsLockSeen(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLockSeen(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(t.Elem(), seen)
	}
	return false
}

// checkHeldLocks walks the function's statements in order, tracking which
// locks are held, and flags System-method calls and channel sends made
// under a lock.
func checkHeldLocks(ff *FuncFact, sysIface *types.Interface) []Finding {
	w := &lockWalker{ff: ff, iface: sysIface}
	w.stmts(ff.Decl.Body.List, map[string]bool{})
	return w.out
}

type lockWalker struct {
	ff    *FuncFact
	iface *types.Interface
	out   []Finding
}

func (w *lockWalker) add(pos ast.Node, format string, args ...interface{}) {
	file, line, col := w.ff.Pkg.Position(pos.Pos())
	w.out = append(w.out, Finding{Check: "lockdiscipline", File: file, Line: line, Column: col,
		Message: fmt.Sprintf(format, args...)})
}

// stmts processes a statement list with the current held-lock set. Nested
// blocks get a copy of the set: what they lock or unlock internally stays
// internal, which keeps the tracking conservative for the enclosing code.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := lockOp(w.ff.Pkg, s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			return
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps mu held until the function returns, so
		// the held set is unchanged; other defers are checked against the
		// current set (they run later, but flagging a System call captured
		// under a still-held lock is the conservative reading).
		if _, op, ok := lockOp(w.ff.Pkg, s.Call); ok && strings.HasSuffix(op, "Unlock") {
			return
		}
		w.checkExpr(s.Call, held)
	case *ast.SendStmt:
		w.flagSendUnder(s, held)
		w.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.BlockStmt:
		w.stmts(s.List, copyHeld(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					w.flagSendUnder(send, held)
				}
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently and does not inherit the
		// caller's held locks.
	}
}

func (w *lockWalker) flagSendUnder(s *ast.SendStmt, held map[string]bool) {
	for _, lock := range sortedKeys(held) {
		w.add(s, "channel send while holding %s in %s (a blocked receiver deadlocks the lock)", lock, w.ff.Decl.Name.Name)
	}
}

// checkExpr flags System-interface method calls made while any lock is
// held; it recurses into call arguments but not into function literals
// (those run later, with their own lock state).
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := w.systemCall(call); ok {
			for _, lock := range sortedKeys(held) {
				w.add(call, "call into integration.System method %s while holding %s in %s (move the call outside the critical section)",
					name, lock, w.ff.Decl.Name.Name)
			}
		}
		return true
	})
}

// systemCall reports whether a call dispatches to a method of the guarded
// System interface — either through the interface itself or on a concrete
// type implementing it.
func (w *lockWalker) systemCall(call *ast.CallExpr) (string, bool) {
	if w.iface == nil {
		return "", false
	}
	fn, ok := calleeOf(w.ff.Pkg.Info, call).(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if !ifaceHasMethod(w.iface, fn.Name()) {
		return "", false
	}
	recv := sig.Recv().Type()
	if types.Implements(recv, w.iface) || types.Implements(types.NewPointer(recv), w.iface) {
		return fn.Name(), true
	}
	if named, ok := recv.(*types.Named); ok {
		if iface, ok := named.Underlying().(*types.Interface); ok && types.Implements(iface, w.iface) {
			return fn.Name(), true
		}
	}
	return "", false
}

func ifaceHasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// lockOp recognizes mu.Lock()/RLock()/Unlock()/RUnlock() expression
// statements on a sync.Mutex or RWMutex and returns the receiver's source
// text as the lock's identity.
func lockOp(p *GoPackage, e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okT := p.Info.Types[sel.X]
	if !okT {
		return "", "", false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", "", false
	}
	return lockExprText(sel.X), sel.Sel.Name, true
}

// lockExprText renders a lock receiver expression for messages and identity.
func lockExprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return lockExprText(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return lockExprText(e.X)
	case *ast.IndexExpr:
		return lockExprText(e.X) + "[...]"
	case *ast.CallExpr:
		return lockExprText(e.Fun) + "()"
	default:
		return "lock"
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Insertion sort: held-lock sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
