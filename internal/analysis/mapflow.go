package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapFlowScope lists the packages whose serialized output must not inherit
// map iteration order from a helper: the determinism scope of the v1
// analyzer plus the benchmark (scorecard rows), explain (traces) and
// website (rendered pages) layers the ROADMAP's byte-identical contracts
// cover.
var MapFlowScope = []string{
	"thalia/internal/catalog",
	"thalia/internal/tess",
	"thalia/internal/integration",
	"thalia/internal/benchmark",
	"thalia/internal/explain",
	"thalia/internal/website",
}

// MapFlow is determinism v2: the interprocedural companion to the v1
// map-order analyzer. v1 flags a map range whose own function emits ordered
// output; it is blind to the helper split — a producer function that
// returns map-iteration-ordered data, and a consumer in another function
// that serializes it. MapFlow closes that hole:
//
//  1. It computes the set of map-ordered producers: functions that return a
//     slice populated by ranging over a map without sorting, plus (to a
//     fixed point over the call graph) functions that pass such a result
//     through unsorted.
//  2. In the scoped packages, it flags any call to a producer whose result
//     reaches an ordered sink — a Write*/Fprint*/Sprint* call,
//     strings.Join, a JSON/XML encoder, an append — inside a function that
//     never sorts.
//
// Sorting anywhere in the consuming function clears it, the same
// collect-then-sort convention the v1 analyzer accepts.
func MapFlow() *GoAnalyzer { return mapFlowFor(MapFlowScope) }

// mapFlowFor scopes the consumer check to the given import paths; nil
// means every loaded package. Producer detection is always whole-program.
func mapFlowFor(scope []string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "mapflow",
		Doc:  "map-iteration-ordered values must be sorted before serialized output",
		RunFacts: func(fb *FactBase) []Finding {
			producers := mapOrderedProducers(fb)
			var out []Finding
			fb.All(func(ff *FuncFact) {
				if scope != nil && !inScope(ff.Pkg, scope) {
					return
				}
				if producers[ff.Key] {
					// The producer itself is not the defect; consuming its
					// output unsorted is.
					return
				}
				out = append(out, checkMapFlowConsumer(ff, producers)...)
			})
			return out
		},
	}
}

// mapOrderedProducers computes, to a fixed point, the functions whose
// return value carries map iteration order.
func mapOrderedProducers(fb *FactBase) map[string]bool {
	producers := map[string]bool{}
	fb.All(func(ff *FuncFact) {
		if directMapOrderedProducer(ff) {
			producers[ff.Key] = true
		}
	})
	// Propagate through return-a-producer's-result-unsorted wrappers.
	for changed := true; changed; {
		changed = false
		fb.All(func(ff *FuncFact) {
			if producers[ff.Key] || functionSorts(ff.Pkg, ff.Decl) {
				return
			}
			for _, callee := range returnedCallees(ff) {
				if producers[callee] {
					producers[ff.Key] = true
					changed = true
					return
				}
			}
		})
	}
	return producers
}

// directMapOrderedProducer reports whether a function builds its returned
// slice by appending inside a range over a map, without sorting anywhere.
func directMapOrderedProducer(ff *FuncFact) bool {
	sig := ff.Obj.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return false
	}
	returnsSlice := false
	for i := 0; i < sig.Results().Len(); i++ {
		if _, ok := sig.Results().At(i).Type().Underlying().(*types.Slice); ok {
			returnsSlice = true
		}
	}
	if !returnsSlice || functionSorts(ff.Pkg, ff.Decl) {
		return false
	}
	// Idents appended to inside a map range...
	appended := map[string]bool{}
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := ff.Pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			assign, ok := m.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			if b, ok := calleeOf(ff.Pkg.Info, call).(*types.Builtin); !ok || b.Name() != "append" {
				return true
			}
			if id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident); ok {
				appended[id.Name] = true
			}
			return true
		})
		return true
	})
	if len(appended) == 0 {
		return false
	}
	// ...that reach a return statement.
	leaks := false
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && appended[id.Name] {
					leaks = true
				}
				return !leaks
			})
		}
		return !leaks
	})
	return leaks
}

// returnedCallees lists the statically-resolved callees whose result can
// reach one of ff's return statements: calls returned directly, and calls
// assigned to an identifier that some return mentions.
func returnedCallees(ff *FuncFact) []string {
	assigned := map[string][]string{} // ident -> callee keys assigned to it
	var direct []string
	returnedIdents := map[string]bool{}
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				fn, ok := calleeOf(ff.Pkg.Info, call).(*types.Func)
				if !ok {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						assigned[id.Name] = append(assigned[id.Name], fn.FullName())
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
					if fn, ok := calleeOf(ff.Pkg.Info, call).(*types.Func); ok {
						direct = append(direct, fn.FullName())
					}
					continue
				}
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						returnedIdents[id.Name] = true
					}
					return true
				})
			}
		}
		return true
	})
	out := direct
	for id, callees := range assigned {
		if returnedIdents[id] {
			out = append(out, callees...)
		}
	}
	return out
}

// checkMapFlowConsumer flags producer calls in ff whose result reaches an
// ordered sink, directly or through one local variable.
func checkMapFlowConsumer(ff *FuncFact, producers map[string]bool) []Finding {
	if functionSorts(ff.Pkg, ff.Decl) {
		return nil
	}
	p := ff.Pkg
	// tainted maps a local identifier to the producer call position that
	// filled it.
	type source struct {
		node ast.Node
		name string
	}
	tainted := map[string]source{}
	var out []Finding
	reported := map[ast.Node]bool{}
	report := func(src source) {
		if reported[src.node] {
			return
		}
		reported[src.node] = true
		file, line, col := p.Position(src.node.Pos())
		out = append(out, Finding{Check: "mapflow", File: file, Line: line, Column: col,
			Message: fmt.Sprintf("map-iteration-ordered result of %s flows into serialized output in %s without a sort", src.name, ff.Decl.Name.Name)})
	}
	producerCall := func(e ast.Expr) (source, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return source{}, false
		}
		fn, ok := calleeOf(p.Info, call).(*types.Func)
		if !ok || !producers[fn.FullName()] {
			return source{}, false
		}
		return source{node: call, name: fn.Name()}, true
	}
	// Pass 1: record local variables assigned from producer calls.
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			src, ok := producerCall(rhs)
			if !ok || i >= len(assign.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				tainted[id.Name] = src
			}
		}
		return true
	})
	// Pass 2: find sinks fed by producer calls or tainted variables.
	ast.Inspect(ff.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !orderedSink(p, n) {
				return true
			}
			for _, arg := range n.Args {
				if src, ok := producerCall(arg); ok {
					report(src)
					continue
				}
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if src, ok := tainted[id.Name]; ok {
							report(src)
						}
					}
					return true
				})
			}
		case *ast.RangeStmt:
			// Ranging over a tainted slice and emitting per-element output
			// serializes the tainted order too.
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok {
				return true
			}
			src, ok := tainted[id.Name]
			if !ok {
				return true
			}
			if emitsOrderedOutput(p, n.Body) {
				report(src)
			}
		}
		return true
	})
	return out
}

// orderedSink recognizes calls that serialize their arguments in order:
// Write*/String-building methods, fmt print/format functions, strings.Join,
// JSON/XML marshalling and the append builtin.
func orderedSink(p *GoPackage, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
			return true
		}
	case *ast.SelectorExpr:
		if strings.HasPrefix(fun.Sel.Name, "Write") {
			return true
		}
		obj := calleeOf(p.Info, call)
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() {
		case "fmt":
			return strings.HasPrefix(obj.Name(), "Fprint") || strings.HasPrefix(obj.Name(), "Sprint") || strings.HasPrefix(obj.Name(), "Print")
		case "strings":
			return obj.Name() == "Join"
		case "encoding/json", "encoding/xml":
			return strings.HasPrefix(obj.Name(), "Marshal") || obj.Name() == "Encode"
		}
	}
	return false
}
