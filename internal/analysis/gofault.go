package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// faultlinePath is the import path of the fault-injection package whose
// Kind vocabulary the analyzer audits.
const faultlinePath = "thalia/internal/faultline"

// FaultKinds returns the analyzer that keeps the chaos vocabulary honest:
// every exported faultline.Kind constant must have an injection site — a
// switch case in the faultline package that dispatches on it — and a test
// that exercises it by name. A kind that validates but never injects is a
// silent no-op in every fault plan that names it; a kind no test exercises
// can rot without failing anything. (Validation deliberately goes through a
// map literal, not a switch, so a case label is unambiguously a dispatch
// site.)
func FaultKinds() *GoAnalyzer { return faultKindsFor(faultlinePath) }

// faultKindsFor audits the Kind vocabulary of the package at the given
// import path — the seam the analyzer's own tests use to point it at a
// fixture module.
func faultKindsFor(path string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "faultkinds",
		Doc:  "every faultline.Kind has an injection dispatch site and a test exercising it",
		Run:  func(pkgs []*GoPackage) []Finding { return runFaultKinds(pkgs, path) },
	}
}

func runFaultKinds(pkgs []*GoPackage, faultPath string) []Finding {
	var decl *GoPackage
	for _, p := range pkgs {
		if p.ImportPath == faultPath {
			decl = p
			break
		}
	}
	if decl == nil {
		return nil // the faultline package is outside the analysis scope
	}

	// The exported constants of the named type faultline.Kind.
	kinds := map[*types.Const]bool{}
	scope := decl.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if ok && named.Obj().Name() == "Kind" && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == faultPath {
			kinds[c] = false
		}
	}
	if len(kinds) == 0 {
		return nil
	}

	// An injection site is a switch case label resolving to the constant,
	// in the faultline package's own (non-test) files.
	injected := map[string]bool{}
	for _, f := range decl.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, expr := range cc.List {
					id, ok := ast.Unparen(expr).(*ast.Ident)
					if !ok {
						continue
					}
					if c, ok := decl.Info.Uses[id].(*types.Const); ok {
						for k := range kinds {
							if k.Name() == c.Name() {
								injected[k.Name()] = true
							}
						}
					}
				}
			}
			return true
		})
	}

	// A test exercises a kind when its constant name appears in a _test.go
	// file of the declaring package. The loader only parses non-test files,
	// so this is a textual scan of the package directory.
	tested := map[string]bool{}
	entries, err := os.ReadDir(decl.Dir)
	if err == nil {
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(decl.Dir, e.Name()))
			if err != nil {
				continue
			}
			for k := range kinds {
				if strings.Contains(string(src), k.Name()) {
					tested[k.Name()] = true
				}
			}
		}
	}

	var names []*types.Const
	for k := range kinds {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Name() < names[j].Name() })
	var out []Finding
	for _, k := range names {
		file, line, col := decl.Position(k.Pos())
		if !injected[k.Name()] {
			out = append(out, Finding{Check: "faultkinds", File: file, Line: line, Column: col,
				Message: fmt.Sprintf("faultline.%s has no injection dispatch site (no switch case consumes it)", k.Name())})
		}
		if !tested[k.Name()] {
			out = append(out, Finding{Check: "faultkinds", File: file, Line: line, Column: col,
				Message: fmt.Sprintf("faultline.%s is exercised by no test in its package", k.Name())})
		}
	}
	return out
}
