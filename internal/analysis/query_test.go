package analysis

import (
	"reflect"
	"testing"

	"thalia/internal/benchmark"
	"thalia/internal/xsd"
)

// testSchema is a small schema standing in for a catalog source:
//
//	uni
//	└── Course (unbounded, @id)
//	    ├── Title    xs:string
//	    ├── Units    xs:integer
//	    └── Room     xs:string
func testSchema() *xsd.Schema {
	return &xsd.Schema{Source: "test", Root: &xsd.ElementDecl{
		Name: "uni", Type: xsd.TypeComplex, MinOccurs: 1, MaxOccurs: 1,
		Children: []*xsd.ElementDecl{{
			Name: "Course", Type: xsd.TypeComplex, MinOccurs: 1, MaxOccurs: xsd.Unbounded,
			Attributes: []*xsd.AttrDecl{{Name: "id", Type: xsd.TypeString, Required: true}},
			Children: []*xsd.ElementDecl{
				{Name: "Title", Type: xsd.TypeString, MinOccurs: 1, MaxOccurs: 1},
				{Name: "Units", Type: xsd.TypeInteger, MinOccurs: 1, MaxOccurs: 1},
				{Name: "Room", Type: xsd.TypeString, MinOccurs: 1, MaxOccurs: 1},
			},
		}},
	}}
}

func checkOne(t *testing.T, query string) []Finding {
	t.Helper()
	sch := testSchema()
	qs := []*benchmark.Query{{ID: 99, XQuery: query}}
	return CheckQueries(qs, QueryCheckConfig{
		SchemaFor: func(uri string) (*xsd.Schema, error) { return sch, nil },
	})
}

// TestCheckQueriesClean pins the absence of findings on well-formed queries:
// child steps, descendant steps, attributes, predicates, order by, and
// type-consistent comparisons.
func TestCheckQueriesClean(t *testing.T) {
	for _, query := range []string{
		`FOR $b in doc("test.xml")/uni/Course WHERE $b/Title = '%Databases%' RETURN $b`,
		`FOR $b in doc("test.xml")/uni/Course WHERE $b/Units > 10 ORDER BY $b/Title RETURN $b/Room`,
		`FOR $b in doc("test.xml")//Course[Units > 3] RETURN $b/@id`,
		`FOR $b in doc("test.xml")/uni/Course LET $t := $b/Title WHERE starts-with($t, 'Intro') RETURN $t`,
		`FOR $b in doc("test.xml")/uni/Course WHERE $b/Units = '12' RETURN $b`,
	} {
		if fs := checkOne(t, query); len(fs) != 0 {
			t.Errorf("query %q: unexpected findings %v", query, fs)
		}
	}
}

// TestCheckQueriesFindings pins the exact findings for seeded defects.
func TestCheckQueriesFindings(t *testing.T) {
	cases := []struct {
		name  string
		query string
		want  []Finding
	}{
		{
			name:  "misspelled step gets a case-fold suggestion",
			query: `FOR $b in doc("test.xml")/uni/Course WHERE $b/title = '%DB%' RETURN $b`,
			want: []Finding{{Check: "dead-path", QueryID: 99,
				Message: `dead path: step "title" matches nothing under element Course (did you mean "Title"?)`}},
		},
		{
			name:  "misspelled step gets an edit-distance suggestion",
			query: `FOR $b in doc("test.xml")/uni/Course RETURN $b/Romo`,
			want: []Finding{{Check: "dead-path", QueryID: 99,
				Message: `dead path: step "Romo" matches nothing under element Course (did you mean "Room"?)`}},
		},
		{
			name:  "misspelled attribute",
			query: `FOR $b in doc("test.xml")/uni/Course RETURN $b/@idd`,
			want: []Finding{{Check: "dead-path", QueryID: 99,
				Message: `dead path: step "@idd" matches nothing under element Course (did you mean "@id"?)`}},
		},
		{
			name:  "wrong root element",
			query: `FOR $b in doc("test.xml")/unni/Course RETURN $b`,
			want: []Finding{{Check: "dead-path", QueryID: 99,
				Message: `dead path: step "unni" matches nothing under document root (root element is uni) (did you mean "uni"?)`}},
		},
		{
			name:  "dead step inside a predicate",
			query: `FOR $b in doc("test.xml")//Course[Titel = 'DB'] RETURN $b`,
			want: []Finding{{Check: "dead-path", QueryID: 99,
				Message: `dead path: step "Titel" matches nothing under element Course (did you mean "Title"?)`}},
		},
		{
			name:  "unknown doc source",
			query: `FOR $b in doc("nosuch.xml")/uni/Course RETURN $b`,
			want: []Finding{{Check: "dead-path", QueryID: 99,
				Message: `doc("nosuch.xml"): catalog: no schema for "nosuch.xml"`}},
		},
		{
			name:  "unbound variable",
			query: `FOR $b in doc("test.xml")/uni/Course WHERE $c/Title = 'DB' RETURN $b`,
			want: []Finding{{Check: "unbound-var", QueryID: 99,
				Message: `unbound variable $c`}},
		},
		{
			name:  "unknown function with suggestion",
			query: `FOR $b in doc("test.xml")/uni/Course WHERE strts-with($b/Title, 'A') RETURN $b`,
			want: []Finding{{Check: "unknown-func", QueryID: 99,
				Message: `unknown function strts-with() (did you mean "starts-with"?)`}},
		},
		{
			name:  "LIKE pattern against a numeric element",
			query: `FOR $b in doc("test.xml")/uni/Course WHERE $b/Units = '%ten%' RETURN $b`,
			want: []Finding{{Check: "type-unify", QueryID: 99,
				Message: `comparison "=" cannot unify: $b/Units is xs:decimal but "%ten%" is xs:string`}},
		},
		{
			name:  "ordered comparison of string element and number",
			query: `FOR $b in doc("test.xml")/uni/Course WHERE $b/Room > 10 RETURN $b`,
			want: []Finding{{Check: "type-unify", QueryID: 99,
				Message: `comparison ">" cannot unify: $b/Room is xs:string but 10 is xs:decimal`}},
		},
	}
	sch := testSchema()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qs := []*benchmark.Query{{ID: 99, XQuery: tc.query}}
			got := CheckQueries(qs, QueryCheckConfig{
				SchemaFor: func(uri string) (*xsd.Schema, error) {
					if uri != "test.xml" {
						return nil, errNoSchema(uri)
					}
					return sch, nil
				},
			})
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("findings = %v, want %v", got, tc.want)
			}
		})
	}
}

type errNoSchema string

func (e errNoSchema) Error() string { return `catalog: no schema for "` + string(e) + `"` }

// TestCheckQueriesDeadStepDoesNotCascade: one dead step must produce one
// finding, not a second complaint about each step after it.
func TestCheckQueriesDeadStepDoesNotCascade(t *testing.T) {
	fs := checkOne(t, `FOR $b in doc("test.xml")/uni/Corse/Title RETURN $b`)
	if len(fs) != 1 {
		t.Fatalf("got %d findings %v, want exactly 1", len(fs), fs)
	}
}

// TestCheckQueriesParseFinding: a query that fails to parse becomes a parse
// finding instead of aborting the whole check.
func TestCheckQueriesParseFinding(t *testing.T) {
	fs := checkOne(t, "FOR $b in doc(\"test.xml\")/uni/Course\nWHERE $b/Title = !! RETURN $b")
	if len(fs) != 1 || fs[0].Check != "parse" {
		t.Fatalf("findings = %v, want one parse finding", fs)
	}
}

// TestLocatorPositions pins the file:line:column mapping from finding to
// embedded query text.
func TestLocatorPositions(t *testing.T) {
	src := "package q\n\nvar query = `FOR $b in doc(\"test.xml\")/uni/Course\nWHERE $b/Titel = 'DB'\nRETURN $b`\n"
	queryText := "FOR $b in doc(\"test.xml\")/uni/Course\nWHERE $b/Titel = 'DB'\nRETURN $b"
	loc := NewLocator("q.go", src)

	line, col := loc.Position(queryText, "Titel")
	if line != 4 || col != 10 {
		t.Errorf("Position(Titel) = %d:%d, want 4:10", line, col)
	}
	// Needle on the literal's first line: column offset by the declaration.
	line, col = loc.Position(queryText, "Course")
	if line != 3 || col != 44 {
		t.Errorf("Position(Course) = %d:%d, want 3:44", line, col)
	}
	// ParseError-style query-relative coordinates.
	line, col = loc.PositionInQuery(queryText, 2, 7)
	if line != 4 || col != 7 {
		t.Errorf("PositionInQuery(2,7) = %d:%d, want 4:7", line, col)
	}
	if l, _ := loc.Position("not present", "x"); l != 0 {
		t.Errorf("Position on absent query = %d, want 0", l)
	}
}

// TestLocatorWordBoundaries: locating "Time" must not land inside
// "CourseTime".
func TestLocatorWordBoundaries(t *testing.T) {
	src := "var q = `RETURN $b/CourseTime $b/Time`"
	loc := NewLocator("q.go", src)
	_, col := loc.Position("RETURN $b/CourseTime $b/Time", "Time")
	if want := len("var q = `RETURN $b/CourseTime $b/") + 1; col != want {
		t.Errorf("Position(Time) col = %d, want %d", col, want)
	}
}

// TestBenchmarkQueriesAnalyzeClean is the acceptance gate for the query
// head on the real repository: every benchmark query resolves against the
// real catalog schemas with zero findings.
func TestBenchmarkQueriesAnalyzeClean(t *testing.T) {
	loc, err := LoadLocator("../benchmark/queries.go", "internal/benchmark/queries.go")
	if err != nil {
		t.Fatal(err)
	}
	fs := CheckQueries(benchmark.Queries(), QueryCheckConfig{Locator: loc})
	for _, f := range fs {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestSeededTypoIsFoundWithPosition seeds a misspelling into a real query
// and requires a dead-path finding that points into queries.go at the line
// holding the typo — the acceptance criterion for the vet harness.
func TestSeededTypoIsFoundWithPosition(t *testing.T) {
	loc, err := LoadLocator("../benchmark/queries.go", "internal/benchmark/queries.go")
	if err != nil {
		t.Fatal(err)
	}
	qs := benchmark.Queries()
	q1 := qs[0]
	// Simulate the typo in the file as well, so positions stay real: locate
	// the pristine text, then check the typo'd query against real schemas.
	q1.XQuery = "FOR $b in doc(\"gatech.xml\")/gatech/Course\nWHERE $b/Instrutor = \"Mark\"\nRETURN $b"
	fs := CheckQueries([]*benchmark.Query{q1}, QueryCheckConfig{Locator: loc})
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	f := fs[0]
	if f.Check != "dead-path" || f.QueryID != 1 {
		t.Errorf("finding = %+v, want dead-path for query 1", f)
	}
	if f.File != "internal/benchmark/queries.go" {
		t.Errorf("finding file = %q, want internal/benchmark/queries.go", f.File)
	}
	if want := `dead path: step "Instrutor" matches nothing under element Course (did you mean "Instructor"?)`; f.Message != want {
		t.Errorf("message = %q, want %q", f.Message, want)
	}
}
