// Package analysis is THALIA's static-analysis subsystem, fronted by the
// thalia-vet command. It has two heads:
//
// The query/schema head checks the benchmark's ground truth before anything
// runs: every benchmark query parses, every path step resolves against the
// XML Schemas the testbed's catalogs actually emit, variables are bound,
// functions exist, comparison operands unify under the schema, the
// declarative mediation tables point at real schema locations, and the
// hand-assigned per-query complexity levels agree with an automatic
// estimate derived from the query text and the reference/challenge schema
// gap (divergences must carry a documented waiver).
//
// The Go head is a small analyzer framework over go/ast and go/types (no
// external dependencies, mirroring the structure of the go vet driver) with
// repo-specific checks: catalog generators must be deterministic, no panic
// may be reachable from the exported API, and error returns must not be
// silently discarded in the benchmark and integration packages.
//
// Both heads report Findings with file:line positions; any finding is a
// reason to fail CI.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity grades how a finding affects thalia-vet's exit status: an error
// fails the run outright, a warning is advisory (it fails only under
// -strict, which CI uses). The empty string means SeverityError.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Finding is one defect located by an analyzer.
type Finding struct {
	// ID is the finding's stable content-addressed identity: a hash of
	// check, file, symbol, query and normalized message — deliberately not
	// the line/column, so an unrelated refactor that shifts code down a
	// file does not orphan baseline entries. Assigned by Finalize.
	ID string `json:"id,omitempty"`
	// Check names the analyzer that produced the finding.
	Check string `json:"check"`
	// Severity is SeverityError or SeverityWarning ("" means error).
	Severity string `json:"severity,omitempty"`
	// File is the repo-relative file the finding points at ("" when the
	// analysis could not map the finding back to a source file).
	File string `json:"file,omitempty"`
	// Line and Column are 1-based; zero means unknown.
	Line   int `json:"line,omitempty"`
	Column int `json:"column,omitempty"`
	// Symbol is the declaration the finding sits in (a function's
	// qualified name, e.g. "thalia/internal/benchmark.(*Runner).Explain"),
	// "" when the finding is not inside a Go declaration. Part of the
	// stable ID, so findings survive line drift but not moving to another
	// function.
	Symbol string `json:"symbol,omitempty"`
	// QueryID is the benchmark query the finding concerns, 0 if none.
	QueryID int `json:"query,omitempty"`
	// Message describes the defect.
	Message string `json:"message"`
}

// EffectiveSeverity normalizes the empty severity to SeverityError.
func (f Finding) EffectiveSeverity() string {
	if f.Severity == SeverityWarning {
		return SeverityWarning
	}
	return SeverityError
}

// String renders the finding in the file:line: [check] message shape the
// CLI prints.
func (f Finding) String() string {
	var b strings.Builder
	if f.File != "" {
		b.WriteString(f.File)
		if f.Line > 0 {
			fmt.Fprintf(&b, ":%d", f.Line)
			if f.Column > 0 {
				fmt.Fprintf(&b, ":%d", f.Column)
			}
		}
		b.WriteString(": ")
	}
	fmt.Fprintf(&b, "[%s] ", f.Check)
	if f.QueryID > 0 {
		fmt.Fprintf(&b, "query %d: ", f.QueryID)
	}
	b.WriteString(f.Message)
	return b.String()
}

// Report aggregates findings across analyzers.
type Report struct {
	Findings []Finding `json:"findings"`
}

// Add appends findings.
func (r *Report) Add(fs ...Finding) { r.Findings = append(r.Findings, fs...) }

// Sort orders findings by file, line, column, check and message, so output
// is deterministic regardless of analyzer scheduling.
func (r *Report) Sort() {
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.QueryID != b.QueryID {
			return a.QueryID < b.QueryID
		}
		return a.Message < b.Message
	})
}

// Finalize orders the findings and assigns every one its stable ID; the
// CLI calls it once after all heads have reported.
func (r *Report) Finalize() {
	r.Sort()
	AssignIDs(r.Findings)
}

// Text renders one finding per line.
func (r *Report) Text() string {
	var b strings.Builder
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}

// JSON renders the report as indented JSON, the -json format of thalia-vet.
func (r *Report) JSON() ([]byte, error) {
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	return json.MarshalIndent(r, "", "  ")
}

// levenshtein computes the edit distance between two strings; the analyzers
// use it to turn a dead path step into a "did you mean" hint.
func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// suggest returns the best "did you mean" candidate for name among
// candidates: a case-insensitive match wins outright; otherwise the nearest
// candidate within an edit distance of 2. Empty means no good suggestion.
func suggest(name string, candidates []string) string {
	best, bestDist := "", 3
	for _, c := range candidates {
		if strings.EqualFold(c, name) {
			return c
		}
		if d := levenshtein(strings.ToLower(name), strings.ToLower(c)); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}
