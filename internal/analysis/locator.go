package analysis

import (
	"os"
	"strings"
)

// Locator maps query-level findings back to positions in the Go source file
// that embeds the benchmark query texts (internal/benchmark/queries.go).
// The XQuery AST carries no positions, so the locator works textually: it
// finds the query's raw-string literal in the file, then the finding's
// anchor substring inside that literal, and converts the resulting byte
// offset to a 1-based line and column.
type Locator struct {
	path string // display path, as findings should print it
	src  string
}

// NewLocator builds a locator over source text; path is the repo-relative
// name findings will carry.
func NewLocator(path, src string) *Locator { return &Locator{path: path, src: src} }

// LoadLocator reads the file at osPath and labels findings with displayPath.
func LoadLocator(osPath, displayPath string) (*Locator, error) {
	b, err := os.ReadFile(osPath)
	if err != nil {
		return nil, err
	}
	return NewLocator(displayPath, string(b)), nil
}

// Path returns the display path findings should carry.
func (l *Locator) Path() string { return l.path }

// queryStart returns the byte offset of the query text's final occurrence
// in the file. The runnable XQuery normalization is declared after the
// paper's illustrative text, so when both are identical the last occurrence
// is the runnable one.
func (l *Locator) queryStart(queryText string) (int, bool) {
	off := strings.LastIndex(l.src, queryText)
	return off, off >= 0
}

// lineCol converts a byte offset in the file to a 1-based line and column.
func (l *Locator) lineCol(off int) (line, col int) {
	line = 1 + strings.Count(l.src[:off], "\n")
	col = off - strings.LastIndex(l.src[:off], "\n")
	return line, col
}

// Position locates the first word-delimited occurrence of needle within
// queryText and returns its file position. A zero line means the query (or
// the needle) could not be located.
func (l *Locator) Position(queryText, needle string) (line, col int) {
	start, ok := l.queryStart(queryText)
	if !ok {
		return 0, 0
	}
	if needle == "" {
		return l.lineCol(start)
	}
	rel := indexWord(queryText, needle)
	if rel < 0 {
		return l.lineCol(start)
	}
	return l.lineCol(start + rel)
}

// Find locates the first word-delimited occurrence of needle anywhere in
// the file. A zero line means absence.
func (l *Locator) Find(needle string) (line, col int) {
	if needle == "" {
		return 0, 0
	}
	i := indexWord(l.src, needle)
	if i < 0 {
		return 0, 0
	}
	return l.lineCol(i)
}

// PositionInQuery converts a (line, column) pair relative to the query text
// (as a ParseError reports it) into a file position.
func (l *Locator) PositionInQuery(queryText string, qline, qcol int) (line, col int) {
	start, ok := l.queryStart(queryText)
	if !ok {
		return 0, 0
	}
	sline, scol := l.lineCol(start)
	if qline <= 1 {
		return sline, scol + qcol - 1
	}
	return sline + qline - 1, qcol
}

// indexWord finds the first occurrence of needle in s that is not embedded
// in a longer identifier, so that locating "Time" does not stop inside
// "CourseTime". Falls back to plain Index when no delimited occurrence
// exists.
func indexWord(s, needle string) int {
	for from := 0; from < len(s); {
		i := strings.Index(s[from:], needle)
		if i < 0 {
			break
		}
		i += from
		before := i == 0 || !isWordByte(s[i-1])
		end := i + len(needle)
		after := end >= len(s) || !isWordByte(s[end])
		if before && after {
			return i
		}
		from = i + 1
	}
	return strings.Index(s, needle)
}

func isWordByte(b byte) bool {
	return b == '_' || ('0' <= b && b <= '9') || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z')
}
