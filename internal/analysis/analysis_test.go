package analysis

import (
	"encoding/json"
	"testing"
)

func TestFindingString(t *testing.T) {
	cases := []struct {
		f    Finding
		want string
	}{
		{Finding{Check: "dead-path", File: "a.go", Line: 3, Column: 7, QueryID: 2, Message: "boom"},
			"a.go:3:7: [dead-path] query 2: boom"},
		{Finding{Check: "catalog", Message: "boom"}, "[catalog] boom"},
		{Finding{Check: "parse", File: "a.go", Message: "boom"}, "a.go: [parse] boom"},
		{Finding{Check: "mapping", File: "a.go", Line: 9, Message: "boom"}, "a.go:9: [mapping] boom"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestReportSortIsTotal(t *testing.T) {
	r := &Report{Findings: []Finding{
		{Check: "b", File: "z.go", Line: 1, Message: "m"},
		{Check: "a", File: "a.go", Line: 9, Message: "m"},
		{Check: "a", File: "a.go", Line: 2, Column: 5, Message: "m"},
		{Check: "a", File: "a.go", Line: 2, Column: 1, Message: "m"},
	}}
	r.Sort()
	want := []string{
		"a.go:2:1: [a] m",
		"a.go:2:5: [a] m",
		"a.go:9: [a] m",
		"z.go:1: [b] m",
	}
	for i, f := range r.Findings {
		if f.String() != want[i] {
			t.Errorf("finding %d = %q, want %q", i, f.String(), want[i])
		}
	}
}

func TestReportJSON(t *testing.T) {
	r := &Report{}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Findings []Finding `json:"findings"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Findings == nil {
		t.Error("empty report must encode findings as [], not null")
	}

	r.Add(Finding{Check: "errcheck", File: "x.go", Line: 4, Message: "m"})
	b, err = r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Findings) != 1 || decoded.Findings[0] != r.Findings[0] {
		t.Errorf("JSON round trip = %+v, want %+v", decoded.Findings, r.Findings)
	}
}

func TestSuggest(t *testing.T) {
	candidates := []string{"Title", "Units", "Room", "@id"}
	cases := map[string]string{
		"title":     "Title", // case fold wins
		"Titel":     "Title", // transposition
		"Unis":      "Units",
		"Professor": "", // nothing close
		"@idd":      "@id",
	}
	for name, want := range cases {
		if got := suggest(name, candidates); got != want {
			t.Errorf("suggest(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "abc", 3},
		{"kitten", "sitting", 3}, {"Title", "Titel", 2}, {"same", "same", 0},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
