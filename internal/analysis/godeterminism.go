package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismScope lists the packages whose output must be bit-for-bit
// reproducible: the catalog generators (the testbed's published artifacts
// must never change between runs), the TESS extraction pipeline they feed,
// and the integration-layer comparison code whose diagnostics the benchmark
// reports verbatim.
var DeterminismScope = []string{
	"thalia/internal/catalog",
	"thalia/internal/tess",
	"thalia/internal/integration",
}

// Determinism returns the analyzer that bans nondeterminism sources from
// generator code: wall-clock reads (time.Now), random numbers (math/rand,
// math/rand/v2), and map iteration whose order leaks into ordered output
// (a range over a map that appends to a slice or writes to a builder, in a
// function that never sorts).
func Determinism() *GoAnalyzer { return DeterminismFor(DeterminismScope) }

// DeterminismFor scopes the determinism analyzer to the given import paths.
func DeterminismFor(scope []string) *GoAnalyzer {
	return &GoAnalyzer{
		Name: "determinism",
		Doc:  "catalog generator output must not depend on time, randomness, or map order",
		Run: func(pkgs []*GoPackage) []Finding {
			var out []Finding
			for _, p := range pkgs {
				if !inScope(p, scope) {
					continue
				}
				out = append(out, runDeterminism(p)...)
			}
			return out
		},
	}
}

func runDeterminism(p *GoPackage) []Finding {
	var out []Finding
	add := func(pos ast.Node, format string, args ...interface{}) {
		file, line, col := p.Position(pos.Pos())
		out = append(out, Finding{Check: "determinism", File: file, Line: line, Column: col,
			Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				add(imp, "import of %s in deterministic generator code", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if obj := p.Info.Uses[n.Sel]; obj != nil && obj.Pkg() != nil &&
					obj.Pkg().Path() == "time" && obj.Name() == "Now" {
					add(n, "time.Now in deterministic generator code")
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, checkMapOrder(p, n)...)
				}
				return true
			}
			return true
		})
	}
	return out
}

// checkMapOrder flags range-over-map loops inside fn whose bodies emit
// ordered output (append to a slice, write to a builder or buffer, build up
// a string) while fn never calls anything sort-like. Sorting anywhere in
// the function is accepted as the fix: collect-then-sort is the idiomatic
// remedy and proving it covers the loop would need dataflow the analyzer
// deliberately avoids.
func checkMapOrder(p *GoPackage, fn *ast.FuncDecl) []Finding {
	if functionSorts(p, fn) {
		return nil
	}
	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if !emitsOrderedOutput(p, rng.Body) {
			return true
		}
		file, line, col := p.Position(rng.Pos())
		out = append(out, Finding{Check: "determinism", File: file, Line: line, Column: col,
			Message: fmt.Sprintf("map iteration order leaks into ordered output in %s (sort the keys first)", fn.Name.Name)})
		return true
	})
	return out
}

// functionSorts reports whether the function calls into package sort (or
// any function whose name starts with "Sort" or contains "sorted").
func functionSorts(p *GoPackage, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeOf(p.Info, call)
		if obj == nil {
			return true
		}
		if obj.Pkg() != nil && (obj.Pkg().Path() == "sort" || obj.Pkg().Path() == "slices") {
			found = true
		}
		if strings.HasPrefix(obj.Name(), "Sort") || strings.Contains(strings.ToLower(obj.Name()), "sorted") {
			found = true
		}
		return !found
	})
	return found
}

// emitsOrderedOutput reports whether a loop body feeds an ordered sink:
// append(), Write*/String-building method calls, or string concatenation.
func emitsOrderedOutput(p *GoPackage, body *ast.BlockStmt) bool {
	emits := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if obj, ok := p.Info.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" {
					emits = true
				}
			case *ast.SelectorExpr:
				if strings.HasPrefix(fun.Sel.Name, "Write") {
					emits = true
				}
			}
		case *ast.AssignStmt:
			// s += ... on a string accumulates in iteration order.
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 {
				if tv, ok := p.Info.Types[n.Lhs[0]]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						emits = true
					}
				}
			}
		}
		return !emits
	})
	return emits
}
