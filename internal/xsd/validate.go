package xsd

import (
	"fmt"
	"strconv"
	"strings"

	"thalia/internal/xmldom"
)

// ValidationError describes one violation of a schema by an instance.
type ValidationError struct {
	// Path locates the offending node, e.g. "umd/Course/Section".
	Path string
	// Msg describes the violation.
	Msg string
}

// Error implements error.
func (e *ValidationError) Error() string { return e.Path + ": " + e.Msg }

// Validate checks doc against the schema and returns every violation found.
// A nil slice means the document is valid.
func (s *Schema) Validate(doc *xmldom.Document) []*ValidationError {
	if s.Root == nil {
		return []*ValidationError{{Path: "", Msg: "schema has no root declaration"}}
	}
	if doc == nil || doc.Root == nil {
		return []*ValidationError{{Path: "", Msg: "document has no root element"}}
	}
	var errs []*ValidationError
	if doc.Root.Name != s.Root.Name {
		errs = append(errs, &ValidationError{
			Path: doc.Root.Name,
			Msg:  fmt.Sprintf("root element is %q, schema declares %q", doc.Root.Name, s.Root.Name),
		})
		return errs
	}
	validateElement(s.Root, doc.Root, &errs)
	return errs
}

// Valid reports whether doc conforms to the schema.
func (s *Schema) Valid(doc *xmldom.Document) bool { return len(s.Validate(doc)) == 0 }

func validateElement(d *ElementDecl, el *xmldom.Element, errs *[]*ValidationError) {
	path := el.Path()

	// Attributes.
	for _, ad := range d.Attributes {
		v, ok := el.Attr(ad.Name)
		if !ok {
			if ad.Required {
				*errs = append(*errs, &ValidationError{Path: path, Msg: fmt.Sprintf("missing required attribute %q", ad.Name)})
			}
			continue
		}
		if msg := checkSimple(ad.Type, v); msg != "" {
			*errs = append(*errs, &ValidationError{Path: path, Msg: fmt.Sprintf("attribute %q: %s", ad.Name, msg)})
		}
	}
	for _, a := range el.Attrs {
		if strings.HasPrefix(a.Name, "xmlns") {
			continue
		}
		if d.Attribute(a.Name) == nil {
			*errs = append(*errs, &ValidationError{Path: path, Msg: fmt.Sprintf("undeclared attribute %q", a.Name)})
		}
	}

	if d.Type != TypeComplex {
		if len(el.ChildElements()) > 0 {
			*errs = append(*errs, &ValidationError{Path: path, Msg: "child elements not allowed in simple content"})
			return
		}
		if msg := checkSimple(d.Type, el.Text()); msg != "" {
			*errs = append(*errs, &ValidationError{Path: path, Msg: msg})
		}
		return
	}

	if !d.Mixed && el.Text() != "" && len(d.Children) > 0 {
		*errs = append(*errs, &ValidationError{Path: path, Msg: "character data not allowed in element-only content"})
	}

	counts := map[string]int{}
	for _, c := range el.ChildElements() {
		counts[c.Name]++
		cd := d.Child(c.Name)
		if cd == nil {
			*errs = append(*errs, &ValidationError{Path: path, Msg: fmt.Sprintf("undeclared element %q", c.Name)})
			continue
		}
		validateElement(cd, c, errs)
	}
	for _, cd := range d.Children {
		n := counts[cd.Name]
		if n < cd.MinOccurs {
			*errs = append(*errs, &ValidationError{Path: path, Msg: fmt.Sprintf("element %q occurs %d time(s), minimum is %d", cd.Name, n, cd.MinOccurs)})
		}
		if cd.MaxOccurs != Unbounded && n > cd.MaxOccurs {
			*errs = append(*errs, &ValidationError{Path: path, Msg: fmt.Sprintf("element %q occurs %d time(s), maximum is %d", cd.Name, n, cd.MaxOccurs)})
		}
	}
}

// checkSimple validates a text value against a simple type, returning a
// description of the problem or "".
func checkSimple(t Type, v string) string {
	v = strings.TrimSpace(v)
	switch t {
	case TypeInteger:
		if v == "" {
			return ""
		}
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			return fmt.Sprintf("value %q is not an integer", v)
		}
	case TypeDecimal:
		if v == "" {
			return ""
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return fmt.Sprintf("value %q is not a decimal", v)
		}
	case TypeAnyURI:
		if v == "" {
			return ""
		}
		if !strings.Contains(v, "://") {
			return fmt.Sprintf("value %q is not a URI", v)
		}
	}
	return ""
}
