package xsd

import (
	"reflect"
	"testing"

	"thalia/internal/xmldom"
)

func introspectSchema(t *testing.T) *Schema {
	t.Helper()
	doc := xmldom.MustParse(`<umd>
		<Course id="1"><Title>DB</Title><Section><Time room="K1">10</Time></Section></Course>
		<Course id="2"><Title>OS</Title><Section><Time room="K2">11</Time></Section></Course>
	</umd>`)
	s, err := Infer("umd", doc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWalkDeclsPaths(t *testing.T) {
	s := introspectSchema(t)
	var paths []string
	s.WalkDecls(func(path string, d *ElementDecl) bool {
		paths = append(paths, path)
		return true
	})
	want := []string{"umd", "umd/Course", "umd/Course/Title", "umd/Course/Section", "umd/Course/Section/Time"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("paths = %v, want %v", paths, want)
	}
}

func TestFindAndFindFold(t *testing.T) {
	s := introspectSchema(t)
	if got := s.Find("Time"); len(got) != 1 || got[0].Name != "Time" {
		t.Errorf("Find(Time) = %v", got)
	}
	if got := s.Find("time"); len(got) != 0 {
		t.Errorf("Find is case-sensitive; got %v", got)
	}
	if got := s.FindFold("TIME"); len(got) != 1 {
		t.Errorf("FindFold(TIME) = %v", got)
	}
}

func TestDescendants(t *testing.T) {
	s := introspectSchema(t)
	if got := s.Root.Descendants("Time"); len(got) != 1 {
		t.Errorf("Descendants(Time) = %d decls", len(got))
	}
	if got := s.Root.Descendants("*"); len(got) != 4 {
		t.Errorf("Descendants(*) = %d decls, want 4", len(got))
	}
}

func TestVocabulary(t *testing.T) {
	s := introspectSchema(t)
	want := []string{"@id", "@room", "Course", "Section", "Time", "Title", "umd"}
	if got := s.Vocabulary(); !reflect.DeepEqual(got, want) {
		t.Errorf("Vocabulary = %v, want %v", got, want)
	}
}

func TestLeafType(t *testing.T) {
	s, err := Infer("r", xmldom.MustParse(`<r><n>5</n></r>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Root.Child("n").LeafType(); got != TypeInteger {
		t.Errorf("LeafType(n) = %v", got)
	}
	if got := s.Root.LeafType(); got != TypeInteger {
		t.Errorf("LeafType(root) = %v", got)
	}
}
