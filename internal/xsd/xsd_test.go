package xsd

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"thalia/internal/xmldom"
)

const brownSample = `<brown>
  <Course>
    <CrsNum>CS016</CrsNum>
    <Title>Intro to Algorithms</Title>
    <Instructor>Doeppner</Instructor>
    <Room>CIT 165</Room>
  </Course>
  <Course>
    <CrsNum>CS127</CrsNum>
    <Title>Databases</Title>
    <Instructor>Cetintemel</Instructor>
  </Course>
</brown>`

func TestInferBasic(t *testing.T) {
	doc := xmldom.MustParse(brownSample)
	s, err := Infer("brown", doc)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if s.Root.Name != "brown" || s.Root.Type != TypeComplex {
		t.Fatalf("root decl wrong: %+v", s.Root)
	}
	course := s.Root.Child("Course")
	if course == nil {
		t.Fatal("no Course decl")
	}
	if course.MaxOccurs != Unbounded {
		t.Error("Course should be unbounded (occurs twice)")
	}
	room := course.Child("Room")
	if room == nil {
		t.Fatal("no Room decl")
	}
	if room.MinOccurs != 0 {
		t.Error("Room should be optional (absent in second course) — the Nulls heterogeneity")
	}
	title := course.Child("Title")
	if title == nil || title.MinOccurs != 1 {
		t.Errorf("Title should be required: %+v", title)
	}
	if title.Type != TypeString {
		t.Errorf("Title type = %v, want string", title.Type)
	}
}

func TestInferTypes(t *testing.T) {
	doc := xmldom.MustParse(`<cmu><Course><Units>12</Units><Fee>10.5</Fee><Home>http://cs.cmu.edu</Home><Note></Note></Course></cmu>`)
	s, err := Infer("cmu", doc)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Root.Child("Course")
	for name, want := range map[string]Type{
		"Units": TypeInteger, "Fee": TypeDecimal, "Home": TypeAnyURI, "Note": TypeEmpty,
	} {
		d := c.Child(name)
		if d == nil {
			t.Fatalf("missing decl %s", name)
		}
		if d.Type != want {
			t.Errorf("%s type = %v, want %v", name, d.Type, want)
		}
	}
}

func TestInferWidening(t *testing.T) {
	doc := xmldom.MustParse(`<r><v>1</v><v>2.5</v><v>3</v></r>`)
	s, err := Infer("r", doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Root.Child("v").Type; got != TypeDecimal {
		t.Errorf("widened type = %v, want decimal", got)
	}
	doc2 := xmldom.MustParse(`<r><v>1</v><v>abc</v></r>`)
	s2, _ := Infer("r", doc2)
	if got := s2.Root.Child("v").Type; got != TypeString {
		t.Errorf("widened type = %v, want string", got)
	}
}

func TestInferMixedContent(t *testing.T) {
	// Brown's Title/Time column embeds a hyperlink inside the title string
	// (the union-type heterogeneity, case 3).
	doc := xmldom.MustParse(`<brown><Course><Title><a href="http://x">Intro to Algorithms</a>D hr. MWF 11-12</Title></Course></brown>`)
	s, err := Infer("brown", doc)
	if err != nil {
		t.Fatal(err)
	}
	title := s.Root.Child("Course").Child("Title")
	if title.Type != TypeComplex || !title.Mixed {
		t.Errorf("Title should be mixed complex, got %+v", title)
	}
	a := title.Child("a")
	if a == nil || a.Attribute("href") == nil {
		t.Error("missing nested link declaration")
	}
}

func TestInferAttributeOptional(t *testing.T) {
	doc := xmldom.MustParse(`<r><c id="1" extra="x"/><c id="2"/></r>`)
	s, err := Infer("r", doc)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Root.Child("c")
	if id := c.Attribute("id"); id == nil || !id.Required {
		t.Errorf("id should be required: %+v", id)
	}
	if ex := c.Attribute("extra"); ex == nil || ex.Required {
		t.Errorf("extra should be optional: %+v", ex)
	}
}

func TestInferAcrossDocuments(t *testing.T) {
	d1 := xmldom.MustParse(`<r><a>1</a></r>`)
	d2 := xmldom.MustParse(`<r><a>2</a><b>x</b></r>`)
	s, err := Infer("r", d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Root.Child("b")
	if b == nil || b.MinOccurs != 0 {
		t.Errorf("b should be optional (absent in first doc): %+v", b)
	}
	if _, err := Infer("r", d1, xmldom.MustParse(`<q/>`)); err == nil {
		t.Error("expected error for inconsistent roots")
	}
}

func TestInferNoDocs(t *testing.T) {
	if _, err := Infer("x"); err == nil {
		t.Error("expected error for no documents")
	}
}

func TestSerializeParseSchema(t *testing.T) {
	doc := xmldom.MustParse(brownSample)
	s, err := Infer("brown", doc)
	if err != nil {
		t.Fatal(err)
	}
	enc := s.Encode()
	if !strings.Contains(enc, "xs:schema") || !strings.Contains(enc, `name="Course"`) {
		t.Fatalf("unexpected encoding:\n%s", enc)
	}
	parsed, err := xmldom.ParseString(enc)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	s2, err := FromXML(parsed)
	if err != nil {
		t.Fatalf("FromXML: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Errorf("schema round trip mismatch:\n%+v\nvs\n%+v", s.Root, s2.Root)
	}
}

func TestValidateAcceptsSource(t *testing.T) {
	doc := xmldom.MustParse(brownSample)
	s, err := Infer("brown", doc)
	if err != nil {
		t.Fatal(err)
	}
	if errs := s.Validate(doc); len(errs) != 0 {
		t.Errorf("source document should validate against inferred schema; got %v", errs)
	}
}

func TestValidateRejects(t *testing.T) {
	s, err := Infer("brown", xmldom.MustParse(brownSample))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, doc, wantSubstr string
	}{
		{"wrong root", `<cmu/>`, "root element"},
		{"undeclared element", `<brown><Course><CrsNum>1</CrsNum><Title>t</Title><Instructor>i</Instructor><Weird>x</Weird></Course></brown>`, "undeclared element"},
		{"missing required", `<brown><Course><CrsNum>1</CrsNum><Instructor>i</Instructor></Course></brown>`, `element "Title"`},
		{"undeclared attribute", `<brown><Course lang="en"><CrsNum>1</CrsNum><Title>t</Title><Instructor>i</Instructor></Course></brown>`, "undeclared attribute"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := s.Validate(xmldom.MustParse(c.doc))
			if len(errs) == 0 {
				t.Fatal("expected validation errors")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), c.wantSubstr) {
					found = true
				}
			}
			if !found {
				t.Errorf("no error containing %q in %v", c.wantSubstr, errs)
			}
		})
	}
}

func TestValidateSimpleTypes(t *testing.T) {
	s, err := Infer("r", xmldom.MustParse(`<r><n>5</n></r>`))
	if err != nil {
		t.Fatal(err)
	}
	if errs := s.Validate(xmldom.MustParse(`<r><n>abc</n></r>`)); len(errs) == 0 {
		t.Error("string where integer declared should fail")
	}
	if errs := s.Validate(xmldom.MustParse(`<r><n>7</n></r>`)); len(errs) != 0 {
		t.Errorf("valid integer rejected: %v", errs)
	}
}

func TestLookup(t *testing.T) {
	s, err := Infer("umd", xmldom.MustParse(`<umd><Course><Section><Time>10</Time></Section></Course></umd>`))
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Lookup("umd/Course/Section/Time"); d == nil || d.Name != "Time" {
		t.Errorf("Lookup failed: %+v", d)
	}
	if d := s.Lookup("umd/Course/Room"); d != nil {
		t.Error("Lookup should miss for absent path")
	}
	if d := s.Lookup("other/Course"); d != nil {
		t.Error("Lookup should miss for wrong root")
	}
}

func TestElementNames(t *testing.T) {
	s, err := Infer("x", xmldom.MustParse(`<x><a><b>1</b></a><c>2</c></x>`))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(s.ElementNames(), ",")
	if got != "x,a,b,c" {
		t.Errorf("ElementNames = %q", got)
	}
}

func TestInferValueType(t *testing.T) {
	cases := map[string]Type{
		"":                      TypeEmpty,
		"  ":                    TypeEmpty,
		"42":                    TypeInteger,
		"-7":                    TypeInteger,
		"3.14":                  TypeDecimal,
		"http://cs.brown.edu":   TypeAnyURI,
		"https://example.com/x": TypeAnyURI,
		"CS016":                 TypeString,
		"1:30 - 2:50":           TypeString,
	}
	for v, want := range cases {
		if got := InferValueType(v); got != want {
			t.Errorf("InferValueType(%q) = %v, want %v", v, got, want)
		}
	}
}

// Property: a schema inferred from any random document validates that
// document — inference is sound by construction.
func TestQuickInferredSchemaValidatesSource(t *testing.T) {
	f := func(rd randomDoc) bool {
		s, err := Infer("t", rd.Doc)
		if err != nil {
			return false
		}
		errs := s.Validate(rd.Doc)
		if len(errs) != 0 {
			t.Logf("doc: %s\nschema: %s\nerrs: %v", rd.Doc.Root, s.Encode(), errs)
		}
		return len(errs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: schema serialization round-trips through XML.
func TestQuickSchemaRoundTrip(t *testing.T) {
	f := func(rd randomDoc) bool {
		s, err := Infer("t", rd.Doc)
		if err != nil {
			return false
		}
		doc, err := xmldom.ParseString(s.Encode())
		if err != nil {
			return false
		}
		s2, err := FromXML(doc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(s, s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// randomDoc mirrors the xmldom test generator but stays local to avoid
// exporting test helpers across packages.
type randomDoc struct{ Doc *xmldom.Document }

// Generate implements quick.Generator.
func (randomDoc) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomDoc{Doc: xmldom.NewDocument(randElem(r, 3))})
}

func randElem(r *rand.Rand, depth int) *xmldom.Element {
	names := []string{"Course", "Title", "Section", "Time", "Instructor"}
	e := xmldom.NewElement(names[r.Intn(len(names))])
	for i := 0; i < r.Intn(2); i++ {
		e.SetAttr("a"+string(rune('0'+i)), randVal(r))
	}
	if depth > 0 && r.Intn(2) == 0 {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			e.Append(randElem(r, depth-1))
		}
	} else {
		e.AppendText(randVal(r))
	}
	return e
}

func randVal(r *rand.Rand) string {
	switch r.Intn(4) {
	case 0:
		return "42"
	case 1:
		return "3.5"
	case 2:
		return "http://example.edu/x"
	default:
		return "Databases"
	}
}
