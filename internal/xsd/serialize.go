package xsd

import (
	"fmt"
	"strconv"

	"thalia/internal/xmldom"
)

// ToXML renders the schema in xs: syntax, in the nested style the THALIA
// web site publishes alongside each extracted catalog (Figure 3).
func (s *Schema) ToXML() *xmldom.Document {
	root := xmldom.NewElement("xs:schema")
	root.SetAttr("xmlns:xs", "http://www.w3.org/2001/XMLSchema")
	if s.Source != "" {
		root.SetAttr("source", s.Source)
	}
	if s.Root != nil {
		root.Append(declToXML(s.Root, true))
	}
	return xmldom.NewDocument(root)
}

// Encode returns the schema serialized as an indented xs: document.
func (s *Schema) Encode() string { return s.ToXML().Encode() }

func declToXML(d *ElementDecl, isRoot bool) *xmldom.Element {
	el := xmldom.NewElement("xs:element").SetAttr("name", d.Name)
	if !isRoot {
		if d.MinOccurs == 0 {
			el.SetAttr("minOccurs", "0")
		}
		if d.MaxOccurs == Unbounded {
			el.SetAttr("maxOccurs", "unbounded")
		}
	}
	if d.Type != TypeComplex && len(d.Attributes) == 0 {
		el.SetAttr("type", d.Type.String())
		return el
	}
	ct := xmldom.NewElement("xs:complexType")
	if d.Mixed {
		ct.SetAttr("mixed", "true")
	}
	if len(d.Children) > 0 {
		seq := xmldom.NewElement("xs:sequence")
		for _, c := range d.Children {
			seq.Append(declToXML(c, false))
		}
		ct.Append(seq)
	}
	for _, a := range d.Attributes {
		at := xmldom.NewElement("xs:attribute").
			SetAttr("name", a.Name).
			SetAttr("type", a.Type.String())
		if a.Required {
			at.SetAttr("use", "required")
		}
		ct.Append(at)
	}
	el.Append(ct)
	return el
}

// FromXML parses a schema previously produced by ToXML.
func FromXML(doc *xmldom.Document) (*Schema, error) {
	if doc == nil || doc.Root == nil || doc.Root.Name != "xs:schema" {
		return nil, fmt.Errorf("xsd: not a schema document")
	}
	s := &Schema{Source: doc.Root.AttrValue("source")}
	rootEl := doc.Root.Child("xs:element")
	if rootEl == nil {
		return nil, fmt.Errorf("xsd: schema has no root xs:element")
	}
	d, err := declFromXML(rootEl)
	if err != nil {
		return nil, err
	}
	s.Root = d
	return s, nil
}

func declFromXML(el *xmldom.Element) (*ElementDecl, error) {
	name, ok := el.Attr("name")
	if !ok {
		return nil, fmt.Errorf("xsd: xs:element missing name")
	}
	d := &ElementDecl{Name: name, MinOccurs: 1, MaxOccurs: 1}
	if v := el.AttrValue("minOccurs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("xsd: element %s: bad minOccurs %q", name, v)
		}
		d.MinOccurs = n
	}
	if v := el.AttrValue("maxOccurs"); v == "unbounded" {
		d.MaxOccurs = Unbounded
	}
	ct := el.Child("xs:complexType")
	if ct == nil {
		d.Type = ParseType(el.AttrValue("type"))
		return d, nil
	}
	d.Type = TypeComplex
	d.Mixed = ct.AttrValue("mixed") == "true"
	if seq := ct.Child("xs:sequence"); seq != nil {
		for _, c := range seq.ChildrenNamed("xs:element") {
			cd, err := declFromXML(c)
			if err != nil {
				return nil, err
			}
			d.Children = append(d.Children, cd)
		}
	}
	for _, a := range ct.ChildrenNamed("xs:attribute") {
		an, ok := a.Attr("name")
		if !ok {
			return nil, fmt.Errorf("xsd: element %s: xs:attribute missing name", name)
		}
		d.Attributes = append(d.Attributes, &AttrDecl{
			Name:     an,
			Type:     ParseType(a.AttrValue("type")),
			Required: a.AttrValue("use") == "required",
		})
	}
	return d, nil
}
