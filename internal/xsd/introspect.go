package xsd

import (
	"sort"
	"strings"
)

// This file holds the introspection helpers the static analysis layer
// (internal/analysis) uses to resolve query path steps against a schema:
// walking every declaration with its slash path, finding declarations by
// name anywhere in the tree, and collecting the schema's name vocabulary
// for misspelling suggestions.

// WalkDecls visits every element declaration in the schema depth-first,
// passing the slash path from the root (e.g. "umd/Course/Section/Time").
// Returning false from f skips the declaration's children.
func (s *Schema) WalkDecls(f func(path string, d *ElementDecl) bool) {
	if s.Root == nil {
		return
	}
	var walk func(path string, d *ElementDecl)
	walk = func(path string, d *ElementDecl) {
		if !f(path, d) {
			return
		}
		for _, c := range d.Children {
			walk(path+"/"+c.Name, c)
		}
	}
	walk(s.Root.Name, s.Root)
}

// Find returns every declaration in the schema with the given element name,
// anywhere in the tree — the declaration set a descendant ("//name") step
// resolves to.
func (s *Schema) Find(name string) []*ElementDecl {
	var out []*ElementDecl
	s.WalkDecls(func(path string, d *ElementDecl) bool {
		if d.Name == name {
			out = append(out, d)
		}
		return true
	})
	return out
}

// FindFold is Find under case-insensitive matching. It backs the analyzer's
// "did you mean" hints: a dead path whose step matches an existing element
// name up to case is almost certainly a misspelling, not a schema gap.
func (s *Schema) FindFold(name string) []*ElementDecl {
	var out []*ElementDecl
	s.WalkDecls(func(path string, d *ElementDecl) bool {
		if strings.EqualFold(d.Name, name) {
			out = append(out, d)
		}
		return true
	})
	return out
}

// Descendants returns the declarations with the given name in the subtree
// rooted at e (excluding e itself); "*" matches every declaration.
func (e *ElementDecl) Descendants(name string) []*ElementDecl {
	var out []*ElementDecl
	var walk func(d *ElementDecl)
	walk = func(d *ElementDecl) {
		for _, c := range d.Children {
			if name == "*" || c.Name == name {
				out = append(out, c)
			}
			walk(c)
		}
	}
	walk(e)
	return out
}

// Vocabulary returns the sorted, de-duplicated set of every element and
// attribute name declared in the schema. Attribute names are prefixed with
// "@". The analyzer diffs dead path steps against this set to distinguish
// misspellings from genuinely absent concepts.
func (s *Schema) Vocabulary() []string {
	seen := map[string]bool{}
	s.WalkDecls(func(path string, d *ElementDecl) bool {
		seen[d.Name] = true
		for _, a := range d.Attributes {
			seen["@"+a.Name] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LeafType reports the simple content type of a declaration: for a complex
// declaration it is the widened type of its simple-typed descendants when
// they agree, else TypeString. The analyzer uses it to decide whether two
// comparison operands can unify under the schema.
func (e *ElementDecl) LeafType() Type {
	if e.Type != TypeComplex {
		return e.Type
	}
	t := TypeEmpty
	for _, c := range e.Children {
		t = widen(t, c.LeafType())
	}
	return t
}
