// Package xsd implements the subset of XML Schema that THALIA uses to
// describe extracted course catalogs. The paper's testbed publishes, for each
// source, both the extracted XML document and "the corresponding schema file"
// (Figure 3); the schema is derived from the instance and kept as close to
// the original catalog structure as possible, deliberately preserving
// semantic heterogeneities in element names.
//
// The package provides a schema model, inference of a schema from one or
// more instance documents, serialization to xs:... syntax, parsing of that
// syntax back, and validation of instances against a schema.
package xsd

import (
	"fmt"
	"strconv"
	"strings"

	"thalia/internal/xmldom"
)

// Type is the value type of an element's or attribute's content.
type Type int

// Supported simple and complex types.
const (
	// TypeString is xs:string, the default for character content.
	TypeString Type = iota
	// TypeInteger is xs:integer.
	TypeInteger
	// TypeDecimal is xs:decimal.
	TypeDecimal
	// TypeAnyURI is xs:anyURI; inferred for http(s) links, which the TESS
	// wrapper stores in place of deep-extracted pages.
	TypeAnyURI
	// TypeComplex marks an element with child elements or attributes.
	TypeComplex
	// TypeEmpty marks an element observed only with no content at all; it
	// models the "value does not exist" flavour of missing data (case 6).
	TypeEmpty
)

// String returns the xs: name of the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "xs:string"
	case TypeInteger:
		return "xs:integer"
	case TypeDecimal:
		return "xs:decimal"
	case TypeAnyURI:
		return "xs:anyURI"
	case TypeComplex:
		return "complexType"
	case TypeEmpty:
		return "xs:string"
	default:
		return "xs:string"
	}
}

// ParseType maps an xs: type name to a Type. Unknown names map to TypeString.
func ParseType(name string) Type {
	switch name {
	case "xs:integer", "xs:int", "xs:long":
		return TypeInteger
	case "xs:decimal", "xs:double", "xs:float":
		return TypeDecimal
	case "xs:anyURI":
		return TypeAnyURI
	default:
		return TypeString
	}
}

// Unbounded is the MaxOccurs value meaning "unbounded".
const Unbounded = -1

// AttrDecl declares an attribute of an element.
type AttrDecl struct {
	Name     string
	Type     Type
	Required bool
}

// ElementDecl declares an element: its content type, children (for complex
// content), attributes, and occurrence constraints within its parent.
type ElementDecl struct {
	Name       string
	Type       Type
	Children   []*ElementDecl
	Attributes []*AttrDecl
	MinOccurs  int // 0 or 1
	MaxOccurs  int // 1 or Unbounded
	// Mixed reports whether complex content may also contain character data,
	// as in Brown's Title column where a hyperlink is embedded in the title
	// string (the union-type heterogeneity, case 3).
	Mixed bool
}

// Schema describes one source's extracted XML document.
type Schema struct {
	// Source is the short name of the catalog source (e.g. "brown").
	Source string
	// Root is the declaration of the document element.
	Root *ElementDecl
}

// Child returns the child declaration with the given name, or nil.
func (e *ElementDecl) Child(name string) *ElementDecl {
	for _, c := range e.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Attribute returns the attribute declaration with the given name, or nil.
func (e *ElementDecl) Attribute(name string) *AttrDecl {
	for _, a := range e.Attributes {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ElementNames returns the names of all element declarations in the schema,
// in a stable depth-first order. Useful for schema matching.
func (s *Schema) ElementNames() []string {
	var names []string
	var walk func(*ElementDecl)
	walk = func(d *ElementDecl) {
		names = append(names, d.Name)
		for _, c := range d.Children {
			walk(c)
		}
	}
	if s.Root != nil {
		walk(s.Root)
	}
	return names
}

// Lookup finds the declaration at a slash-separated path from the root,
// e.g. "umd/Course/Section/Time". Returns nil if absent.
func (s *Schema) Lookup(path string) *ElementDecl {
	parts := strings.Split(path, "/")
	if s.Root == nil || len(parts) == 0 || parts[0] != s.Root.Name {
		return nil
	}
	cur := s.Root
	for _, p := range parts[1:] {
		cur = cur.Child(p)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// InferValueType guesses the simple type of a text value the way the
// testbed's schema extractor does: integers, decimals, URLs, else string.
func InferValueType(v string) Type {
	v = strings.TrimSpace(v)
	if v == "" {
		return TypeEmpty
	}
	if strings.HasPrefix(v, "http://") || strings.HasPrefix(v, "https://") {
		return TypeAnyURI
	}
	if _, err := strconv.ParseInt(v, 10, 64); err == nil {
		return TypeInteger
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		return TypeDecimal
	}
	return TypeString
}

// widen returns the least general type covering both a and b.
func widen(a, b Type) Type {
	if a == b {
		return a
	}
	if a == TypeEmpty {
		return b
	}
	if b == TypeEmpty {
		return a
	}
	if (a == TypeInteger && b == TypeDecimal) || (a == TypeDecimal && b == TypeInteger) {
		return TypeDecimal
	}
	if a == TypeComplex || b == TypeComplex {
		return TypeComplex
	}
	return TypeString
}

// Infer derives a schema from one or more instance documents of the same
// source. Occurrence constraints reflect what was observed: an element seen
// more than once under a single parent becomes maxOccurs="unbounded"; an
// element missing under some parent instance becomes minOccurs="0" — the
// schema-level footprint of the Nulls heterogeneity (case 6).
func Infer(source string, docs ...*xmldom.Document) (*Schema, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("xsd: infer: no documents")
	}
	root := docs[0].Root.Name
	b := &inferrer{seen: make(map[*ElementDecl]int), sawText: make(map[*ElementDecl]bool)}
	decl := &ElementDecl{Name: root, MinOccurs: 1, MaxOccurs: 1, Type: TypeEmpty}
	for _, d := range docs {
		if d.Root.Name != root {
			return nil, fmt.Errorf("xsd: infer: inconsistent roots %q and %q", root, d.Root.Name)
		}
		b.merge(decl, d.Root)
	}
	return &Schema{Source: source, Root: decl}, nil
}

// inferrer accumulates observations across instances. seen counts how many
// instances each declaration has been merged from, so that a child first
// appearing in a later instance can be marked optional; sawText records
// declarations observed with non-empty character data, so that a
// declaration promoted to complex content by a later instance is marked
// mixed.
type inferrer struct {
	seen    map[*ElementDecl]int
	sawText map[*ElementDecl]bool
}

// merge folds one observed element instance into the declaration.
func (b *inferrer) merge(decl *ElementDecl, el *xmldom.Element) {
	prior := b.seen[decl]
	b.seen[decl] = prior + 1

	// Attributes: required iff present in every observed instance.
	present := map[string]bool{}
	for _, a := range el.Attrs {
		present[a.Name] = true
		ad := decl.Attribute(a.Name)
		if ad == nil {
			ad = &AttrDecl{Name: a.Name, Type: InferValueType(a.Value), Required: prior == 0}
			decl.Attributes = append(decl.Attributes, ad)
		} else {
			ad.Type = widen(ad.Type, InferValueType(a.Value))
		}
	}
	for _, ad := range decl.Attributes {
		if !present[ad.Name] {
			ad.Required = false
		}
	}

	children := el.ChildElements()
	hasText := el.Text() != ""
	if hasText {
		b.sawText[decl] = true
	}
	if len(children) == 0 && len(el.Attrs) == 0 && decl.Type != TypeComplex {
		decl.Type = widen(decl.Type, InferValueType(el.Text()))
		return
	}
	// Complex content. If any instance (this or an earlier one) carried
	// character data, the content model is mixed.
	wasSimpleWithText := decl.Type != TypeComplex && decl.Type != TypeEmpty
	decl.Type = TypeComplex
	if b.sawText[decl] || wasSimpleWithText {
		decl.Mixed = true
	}
	if len(children) == 0 {
		// This instance contributes no children; any previously declared
		// children are therefore optional.
		for _, cd := range decl.Children {
			cd.MinOccurs = 0
		}
		return
	}
	counts := map[string]int{}
	for _, c := range children {
		counts[c.Name]++
	}
	for _, c := range children {
		cd := decl.Child(c.Name)
		if cd == nil {
			cd = &ElementDecl{Name: c.Name, MinOccurs: 1, MaxOccurs: 1, Type: TypeEmpty}
			if prior > 0 {
				// Earlier instances of this parent lacked the child.
				cd.MinOccurs = 0
			}
			decl.Children = append(decl.Children, cd)
		}
		if counts[c.Name] > 1 {
			cd.MaxOccurs = Unbounded
		}
		b.merge(cd, c)
	}
	// Children declared earlier but absent from this instance are optional.
	for _, cd := range decl.Children {
		if counts[cd.Name] == 0 {
			cd.MinOccurs = 0
		}
	}
}
