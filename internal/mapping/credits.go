package mapping

import (
	"fmt"
	"regexp"
	"strconv"
)

// Workload conversions for the complex-mapping heterogeneity (case 4): CMU
// counts workload in "units" (a typical course is 12), US state schools in
// semester credit hours (a typical course is 3-4), and ETH in the Swiss
// "Umfang" notation "2V1U" — two Vorlesung (lecture) plus one Übung
// (exercise) weekly hours. The paper stresses that such mappings are "not
// always computable from first principles"; THALIA's sample solutions fix
// the conventions below, which systems must adopt to score the point.

// Umfang is ETH's parsed workload notation.
type Umfang struct {
	Lecture  int // V: weekly lecture hours
	Exercise int // U: weekly exercise hours
}

var umfangRE = regexp.MustCompile(`^\s*(\d+)V(\d+)U\s*$`)

// ParseUmfang parses notation like "2V1U".
func ParseUmfang(s string) (Umfang, error) {
	m := umfangRE.FindStringSubmatch(s)
	if m == nil {
		return Umfang{}, fmt.Errorf("mapping: unparseable Umfang %q", s)
	}
	v, _ := strconv.Atoi(m[1])
	u, _ := strconv.Atoi(m[2])
	return Umfang{Lecture: v, Exercise: u}, nil
}

// Units converts the workload to CMU-style units. THALIA's convention: each
// weekly contact hour is worth four units (a 2V1U course ≈ a 12-unit CMU
// course).
func (u Umfang) Units() int { return (u.Lecture + u.Exercise) * 4 }

// CreditHours converts the workload to US semester credit hours: one credit
// hour per weekly contact hour.
func (u Umfang) CreditHours() int { return u.Lecture + u.Exercise }

// UnitsFromCreditHours converts US semester credit hours to CMU-style
// units (three units per credit hour).
func UnitsFromCreditHours(credits int) int { return credits * 3 }

// CreditHoursFromUnits converts CMU units to US semester credit hours,
// rounding down.
func CreditHoursFromUnits(units int) int { return units / 3 }

// UnitsFromSWS converts German Semesterwochenstunden to CMU-style units,
// using the same four-units-per-contact-hour convention as Umfang.
func UnitsFromSWS(sws int) int { return sws * 4 }
