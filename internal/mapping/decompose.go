package mapping

import (
	"fmt"
	"regexp"
	"strings"
)

// Decompositions for the structural heterogeneities: Brown's composite
// Title/Time column (cases 3 and 12), Maryland's section titles and
// time-with-room values (cases 9 and 10), and Michigan/CMU prerequisite
// inference (case 7).

// BrownTitle is the decomposition of Brown's Title/Time column, e.g.
// "Intro. to Software EngineeringK hr. T,Th 2:30-4".
type BrownTitle struct {
	Title      string
	HourLetter string // Brown's scheduling-block letter, e.g. "K"
	Days       string // source spelling, e.g. "T,Th"
	Time       string // source spelling, e.g. "2:30-4"
}

var brownTitleRE = regexp.MustCompile(`^(.*?)([A-Z]) hr\. ([A-Za-z,]+) (\d[\d:.\-]*)$`)

// DecomposeBrownTitle splits Brown's composite title column. Titles with no
// schedule part ("hrs. arranged" courses) return only the title.
func DecomposeBrownTitle(s string) BrownTitle {
	s = strings.TrimSpace(s)
	if i := strings.Index(s, "hrs. arranged"); i >= 0 {
		return BrownTitle{Title: strings.TrimSpace(s[:i])}
	}
	m := brownTitleRE.FindStringSubmatch(s)
	if m == nil {
		return BrownTitle{Title: s}
	}
	return BrownTitle{
		Title:      strings.TrimSpace(m[1]),
		HourLetter: m[2],
		Days:       m[3],
		Time:       m[4],
	}
}

// CanonicalDays normalizes day spellings ("T,Th", "Mo/Mi/Fr", "Di/Do") to
// the canonical compact form ("TTh", "MWF", "TTh").
func CanonicalDays(s string) string {
	s = strings.TrimSpace(s)
	german := map[string]string{"Mo": "M", "Di": "T", "Mi": "W", "Do": "Th", "Fr": "F"}
	if strings.ContainsAny(s, "/") || looksGermanDays(s) {
		var b strings.Builder
		for _, part := range strings.Split(s, "/") {
			if en, ok := german[strings.TrimSpace(part)]; ok {
				b.WriteString(en)
			} else {
				b.WriteString(strings.TrimSpace(part))
			}
		}
		return b.String()
	}
	return strings.ReplaceAll(s, ",", "")
}

func looksGermanDays(s string) bool {
	switch s {
	case "Mo", "Di", "Mi", "Do", "Fr", "Sa", "So":
		return true
	}
	return false
}

// UMDSection is the decomposition of Maryland's section-title values, e.g.
// "0201(13796) Memon, A. (Seats=40, Open=2, Waitlist=0)".
type UMDSection struct {
	Num      string // "0201"
	ID       string // "13796"
	Teacher  string // "Memon, A."
	Seats    int
	Open     int
	Waitlist int
	HasSeats bool
}

var umdSectionRE = regexp.MustCompile(`^(\d+)\((\d+)\)\s*([^(]*?)\s*(?:\(Seats=(\d+), Open=(\d+), Waitlist=(\d+)\))?$`)

// ParseUMDSection parses a Maryland section title. This is the "extract the
// name part from all of the section titles" work that query 10's challenge
// calls out.
func ParseUMDSection(s string) (UMDSection, error) {
	m := umdSectionRE.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return UMDSection{}, fmt.Errorf("mapping: unparseable UMD section %q", s)
	}
	sec := UMDSection{Num: m[1], ID: m[2], Teacher: strings.TrimSpace(m[3])}
	if m[4] != "" {
		sec.HasSeats = true
		fmt.Sscanf(m[4], "%d", &sec.Seats)
		fmt.Sscanf(m[5], "%d", &sec.Open)
		fmt.Sscanf(m[6], "%d", &sec.Waitlist)
	}
	return sec, nil
}

// UMDTime is the decomposition of Maryland's Time values, which carry days,
// meeting time and room in one string: "MWF 10:00am KEY0106" (case 9).
type UMDTime struct {
	Days string
	Time string
	Room string
}

var umdTimeRE = regexp.MustCompile(`^([A-Za-z]+)\s+([\d:apm]+)\s+(\S+)$`)

// ParseUMDTime splits a Maryland Time value into days, time and room.
func ParseUMDTime(s string) (UMDTime, error) {
	m := umdTimeRE.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return UMDTime{}, fmt.Errorf("mapping: unparseable UMD time %q", s)
	}
	return UMDTime{Days: m[1], Time: m[2], Room: m[3]}, nil
}

// entryLevelMarkers are comment phrasings that imply a course has no
// prerequisite — the virtual-column inference of case 7.
var entryLevelMarkers = []string{
	"first course in sequence",
	"no prerequisite",
	"no prior experience",
	"open to all students",
	"entry-level",
	"introductory course",
}

// InferEntryLevel decides whether a course is entry-level from explicit
// prerequisite information and/or a free-text comment. An explicit
// prerequisite value wins; otherwise the comment is scanned for the
// conventional phrasings.
func InferEntryLevel(prereq, comment string) bool {
	switch strings.ToLower(strings.TrimSpace(prereq)) {
	case "none", "keine":
		return true
	case "":
		// fall through to the comment
	default:
		return false
	}
	lc := strings.ToLower(comment)
	for _, marker := range entryLevelMarkers {
		if strings.Contains(lc, marker) {
			return true
		}
	}
	return false
}

// classRE matches US student-classification codes in restriction values.
var classRE = regexp.MustCompile(`\b(FR|SO|JR|SR|GR)\b`)

// Classifications extracts the US student-classification codes from a
// restrictions value like "JR or SR". The concept does not exist at
// European universities (case 8) — callers must distinguish an empty result
// on a US source (no restriction) from the attribute being inapplicable.
func Classifications(restrictions string) []string {
	return classRE.FindAllString(restrictions, -1)
}

// OpenTo reports whether a restrictions value admits the given
// classification code; an unrestricted course admits everyone.
func OpenTo(restrictions, code string) bool {
	classes := Classifications(restrictions)
	if len(classes) == 0 {
		return true
	}
	for _, c := range classes {
		if c == code {
			return true
		}
	}
	return false
}
