// Package mapping is the local-to-global transformation library that
// integration systems built on THALIA use to resolve the twelve
// heterogeneities: clock conversions (case 2), union-type flattening
// (case 3), workload/credit conversions (case 4), a German-English lexicon
// (case 5), dual NULL semantics (cases 6 and 8), virtual-column inference
// (case 7), structural relocation and set flattening (cases 9 and 10), and
// composite-attribute decomposition (cases 11 and 12).
//
// Each transformation carries a declared complexity (low/medium/high) so
// that the benchmark's scoring function can charge systems for the external
// functions they invoke.
package mapping

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Minutes is a time of day in minutes since midnight.
type Minutes int

// String renders the canonical 24-hour form, e.g. "13:30".
func (m Minutes) String() string {
	return fmt.Sprintf("%02d:%02d", int(m)/60, int(m)%60)
}

var clockRE = regexp.MustCompile(`^\s*(\d{1,2})(?::(\d{2}))?\s*(am|pm|AM|PM)?\s*$`)

// ParseClock parses one clock value in any of the testbed's spellings:
// "16:00" (24-hour), "1:30pm" (12-hour), "1:30" or "4" (bare 12-hour).
// Bare values with no am/pm marker are disambiguated with the academic-day
// heuristic: hours 8-11 are morning, hours 1-7 and 12 are afternoon —
// courses do not meet before 08:00 or after 19:59.
func ParseClock(s string) (Minutes, error) {
	m := clockRE.FindStringSubmatch(s)
	if m == nil {
		return 0, fmt.Errorf("mapping: unparseable clock value %q", s)
	}
	h, err := strconv.Atoi(m[1])
	if err != nil || h > 23 {
		return 0, fmt.Errorf("mapping: bad hour in %q", s)
	}
	minute := 0
	if m[2] != "" {
		minute, err = strconv.Atoi(m[2])
		if err != nil || minute > 59 {
			return 0, fmt.Errorf("mapping: bad minute in %q", s)
		}
	}
	switch strings.ToLower(m[3]) {
	case "am":
		if h == 12 {
			h = 0
		}
	case "pm":
		if h != 12 {
			h += 12
		}
	default:
		// Bare value: 24-hour if the hour is unambiguous (0 or 13-23),
		// otherwise the academic-day heuristic.
		if h <= 12 && h != 0 {
			if h < 8 {
				h += 12 // 1-7 means afternoon
			} else if h == 12 {
				// noon stays 12
			}
		}
	}
	return Minutes(h*60 + minute), nil
}

// To24Hour converts any testbed clock spelling to canonical "HH:MM".
// This is the simple-mapping transformation of benchmark query 2.
func To24Hour(s string) (string, error) {
	m, err := ParseClock(s)
	if err != nil {
		return "", err
	}
	return m.String(), nil
}

// To12Hour converts any testbed clock spelling to "h:mmam"/"h:mmpm".
func To12Hour(s string) (string, error) {
	m, err := ParseClock(s)
	if err != nil {
		return "", err
	}
	h, mm := int(m)/60, int(m)%60
	suffix := "am"
	if h >= 12 {
		suffix = "pm"
	}
	h12 := h % 12
	if h12 == 0 {
		h12 = 12
	}
	return fmt.Sprintf("%d:%02d%s", h12, mm, suffix), nil
}

var rangeSepRE = regexp.MustCompile(`\s*(?:-|–|—|to)\s*`)

// ParseClockRange parses a meeting-time range like "1:30 - 2:50",
// "16:00-17:15" or "3-5:30" into start and end minutes. When the end's
// bare hour reads as earlier than the start (Brown's "3-5:30"), it is
// shifted into the same afternoon.
func ParseClockRange(s string) (start, end Minutes, err error) {
	parts := rangeSepRE.Split(strings.TrimSpace(s), 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("mapping: not a time range: %q", s)
	}
	start, err = ParseClock(parts[0])
	if err != nil {
		return 0, 0, err
	}
	end, err = ParseClock(parts[1])
	if err != nil {
		return 0, 0, err
	}
	if end < start {
		end += 12 * 60
		if end >= 24*60 {
			return 0, 0, fmt.Errorf("mapping: inverted time range %q", s)
		}
	}
	return start, end, nil
}

// RangeTo24 converts any testbed range spelling to "HH:MM-HH:MM".
func RangeTo24(s string) (string, error) {
	start, end, err := ParseClockRange(s)
	if err != nil {
		return "", err
	}
	return start.String() + "-" + end.String(), nil
}
