package mapping

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseClock(t *testing.T) {
	cases := map[string]string{
		"16:00":   "16:00",
		"1:30pm":  "13:30",
		"1:30PM":  "13:30",
		"9:00am":  "09:00",
		"12:00pm": "12:00",
		"12:00am": "00:00",
		"1:30":    "13:30", // bare afternoon heuristic
		"10:30":   "10:30", // bare morning
		"4":       "16:00", // Brown's bare hour
		"11":      "11:00",
		"12":      "12:00",
		"8:00":    "08:00",
		"7:15":    "19:15",
		"13:45":   "13:45",
		"00:30":   "00:30",
	}
	for in, want := range cases {
		got, err := To24Hour(in)
		if err != nil {
			t.Errorf("To24Hour(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("To24Hour(%q) = %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "25:00", "12:61", "1:3x"} {
		if _, err := To24Hour(bad); err == nil {
			t.Errorf("To24Hour(%q): expected error", bad)
		}
	}
}

func TestTo12Hour(t *testing.T) {
	cases := map[string]string{
		"13:30": "1:30pm",
		"09:05": "9:05am",
		"00:00": "12:00am",
		"12:00": "12:00pm",
	}
	for in, want := range cases {
		got, err := To12Hour(in)
		if err != nil || got != want {
			t.Errorf("To12Hour(%q) = %q,%v want %q", in, got, err, want)
		}
	}
}

func TestParseClockRange(t *testing.T) {
	cases := map[string]string{
		"1:30 - 2:50":   "13:30-14:50",
		"16:00-17:15":   "16:00-17:15",
		"3-5:30":        "15:00-17:30",
		"11-12":         "11:00-12:00",
		"2:30-4":        "14:30-16:00",
		"10:30 - 11:50": "10:30-11:50",
	}
	for in, want := range cases {
		got, err := RangeTo24(in)
		if err != nil {
			t.Errorf("RangeTo24(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("RangeTo24(%q) = %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"1:30", "", "x-y"} {
		if _, err := RangeTo24(bad); err == nil {
			t.Errorf("RangeTo24(%q): expected error", bad)
		}
	}
}

// Property: To24Hour∘To12Hour is the identity on canonical 24-hour values
// within the academic day (the clock bijection of case 2).
func TestQuickClockBijection(t *testing.T) {
	f := func(h8, m8 uint8) bool {
		h := 8 + int(h8)%12 // 08:00..19:59, the academic day
		m := int(m8) % 60
		canonical := Minutes(h*60 + m).String()
		twelve, err := To12Hour(canonical)
		if err != nil {
			return false
		}
		back, err := To24Hour(twelve)
		if err != nil {
			return false
		}
		return back == canonical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLexicon(t *testing.T) {
	lex := NewGermanLexicon()
	if en, ok := lex.ToEnglish("Datenbank"); !ok || en != "database" {
		t.Errorf("ToEnglish(Datenbank) = %q,%v", en, ok)
	}
	if en, ok := lex.ToEnglish("datenbank"); !ok || en != "database" {
		t.Errorf("case-insensitive lookup failed: %q", en)
	}
	if _, ok := lex.ToEnglish("Quatsch"); ok {
		t.Error("unknown word should not translate")
	}
	// The paper's query 5: 'Database' must expand to 'Datenbank' and
	// 'Datenbanksystem'.
	des := lex.ToGerman("database")
	want := map[string]bool{"Datenbank": false, "Datenbanksystem": false}
	for _, de := range des {
		if _, ok := want[de]; ok {
			want[de] = true
		}
	}
	for de, found := range want {
		if !found {
			t.Errorf("ToGerman(database) missing %q (got %v)", de, des)
		}
	}
}

func TestLexiconValueContains(t *testing.T) {
	lex := NewGermanLexicon()
	cases := []struct {
		value, term string
		want        bool
	}{
		{"XML und Datenbanken", "database", true},
		{"Datenbanksysteme", "database", true},
		{"Vernetzte Systeme (3. Semester)", "database", false},
		{"Rechnernetze", "computer networks", true},
		{"Information Retrieval", "information retrieval", true}, // loanword
		{"Künstliche Intelligenz", "database", false},
	}
	for _, c := range cases {
		if got := lex.ValueContains(c.value, c.term); got != c.want {
			t.Errorf("ValueContains(%q, %q) = %v, want %v", c.value, c.term, got, c.want)
		}
	}
}

func TestLexiconTags(t *testing.T) {
	lex := NewGermanLexicon()
	for tag, want := range map[string]string{
		"Titel": "Title", "Dozent": "Lecturer", "Umfang": "Units", "Unknown": "Unknown",
	} {
		if got := lex.TranslateTag(tag); got != want {
			t.Errorf("TranslateTag(%q) = %q, want %q", tag, got, want)
		}
	}
}

func TestUmfang(t *testing.T) {
	u, err := ParseUmfang("2V1U")
	if err != nil {
		t.Fatal(err)
	}
	if u.Lecture != 2 || u.Exercise != 1 {
		t.Errorf("ParseUmfang = %+v", u)
	}
	if u.Units() != 12 {
		t.Errorf("Units = %d, want 12", u.Units())
	}
	if u.CreditHours() != 3 {
		t.Errorf("CreditHours = %d, want 3", u.CreditHours())
	}
	if _, err := ParseUmfang("abc"); err == nil {
		t.Error("expected error")
	}
	if UnitsFromCreditHours(4) != 12 || CreditHoursFromUnits(12) != 4 {
		t.Error("credit-hour conversions inconsistent")
	}
	if UnitsFromSWS(3) != 12 {
		t.Error("SWS conversion wrong")
	}
}

func TestDecomposeBrownTitle(t *testing.T) {
	cases := []struct {
		in   string
		want BrownTitle
	}{
		{
			"Intro. to Software EngineeringK hr. T,Th 2:30-4",
			BrownTitle{Title: "Intro. to Software Engineering", HourLetter: "K", Days: "T,Th", Time: "2:30-4"},
		},
		{
			"Computer NetworksM hr. M 3-5:30",
			BrownTitle{Title: "Computer Networks", HourLetter: "M", Days: "M", Time: "3-5:30"},
		},
		{
			"Intro to Algorithms & Data StructuresD hr. MWF 11-12",
			BrownTitle{Title: "Intro to Algorithms & Data Structures", HourLetter: "D", Days: "MWF", Time: "11-12"},
		},
		{
			"Topics in Computing hrs. arranged",
			BrownTitle{Title: "Topics in Computing"},
		},
		{
			"Just a Title",
			BrownTitle{Title: "Just a Title"},
		},
	}
	for _, c := range cases {
		if got := DecomposeBrownTitle(c.in); got != c.want {
			t.Errorf("DecomposeBrownTitle(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestCanonicalDays(t *testing.T) {
	for in, want := range map[string]string{
		"T,Th": "TTh", "MWF": "MWF", "Mo/Mi/Fr": "MWF", "Di/Do": "TTh", "M": "M", "Mo": "M",
	} {
		if got := CanonicalDays(in); got != want {
			t.Errorf("CanonicalDays(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseUMDSection(t *testing.T) {
	sec, err := ParseUMDSection("0201(13796) Memon, A. (Seats=40, Open=2, Waitlist=0)")
	if err != nil {
		t.Fatal(err)
	}
	if sec.Num != "0201" || sec.ID != "13796" || sec.Teacher != "Memon, A." {
		t.Errorf("section = %+v", sec)
	}
	if !sec.HasSeats || sec.Seats != 40 || sec.Open != 2 || sec.Waitlist != 0 {
		t.Errorf("seats = %+v", sec)
	}
	sec2, err := ParseUMDSection("0101(13795) Singh, H.")
	if err != nil {
		t.Fatal(err)
	}
	if sec2.Teacher != "Singh, H." || sec2.HasSeats {
		t.Errorf("section2 = %+v", sec2)
	}
	if _, err := ParseUMDSection("garbage"); err == nil {
		t.Error("expected error")
	}
}

func TestParseUMDTime(t *testing.T) {
	tm, err := ParseUMDTime("MWF 10:00am KEY0106")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Days != "MWF" || tm.Time != "10:00am" || tm.Room != "KEY0106" {
		t.Errorf("time = %+v", tm)
	}
	if _, err := ParseUMDTime("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestInferEntryLevel(t *testing.T) {
	cases := []struct {
		prereq, comment string
		want            bool
	}{
		{"None", "", true},
		{"none", "", true},
		{"EECS484", "", false},
		{"", "First course in sequence", true},
		{"", "first COURSE in sequence", true},
		{"", "Requires graduate standing", false},
		{"", "", false},
		{"CMSC420", "First course in sequence", false}, // explicit prereq wins
	}
	for _, c := range cases {
		if got := InferEntryLevel(c.prereq, c.comment); got != c.want {
			t.Errorf("InferEntryLevel(%q, %q) = %v, want %v", c.prereq, c.comment, got, c.want)
		}
	}
}

func TestClassifications(t *testing.T) {
	if got := Classifications("JR or SR"); len(got) != 2 || got[0] != "JR" || got[1] != "SR" {
		t.Errorf("Classifications = %v", got)
	}
	if got := Classifications(""); len(got) != 0 {
		t.Errorf("Classifications(empty) = %v", got)
	}
	if !OpenTo("JR or SR", "JR") || OpenTo("SR", "JR") || !OpenTo("", "JR") {
		t.Error("OpenTo logic wrong")
	}
}

func TestNullKinds(t *testing.T) {
	if Present("x").Marker() != "x" {
		t.Error("present marker")
	}
	if Missing().Marker() != "" {
		t.Error("missing marker should be empty")
	}
	if Inapplicable().Marker() != "(not applicable)" {
		t.Error("inapplicable marker")
	}
	if NullMissing.String() != "missing" || NullInapplicable.String() != "inapplicable" {
		t.Error("kind names")
	}
	// The whole point of case 8: the two NULLs must be distinguishable.
	if Missing().Marker() == Inapplicable().Marker() {
		t.Error("dual nulls must render differently")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		fn, in, want string
	}{
		{"to24h", "1:30pm", "13:30"},
		{"range_to_24h", "1:30 - 2:50", "13:30-14:50"},
		{"umfang_to_units", "2V1U", "12"},
		{"translate_de_en", "Datenbank", "database"},
		{"null_marker", "  ", ""},
		{"infer_prereq", "First course in sequence", "None"},
		{"dual_null", "anything", "(not applicable)"},
		{"umd_time_room", "MWF 10:00am KEY0106", "KEY0106"},
		{"umd_section_teacher", "0101(13795) Singh, H.", "Singh, H."},
		{"decompose_brown_title", "Computer NetworksM hr. M 3-5:30", "Computer Networks"},
	}
	for _, c := range cases {
		tr, err := r.Get(c.fn)
		if err != nil {
			t.Fatalf("Get(%s): %v", c.fn, err)
		}
		if tr.Complexity < 1 || tr.Complexity > 3 {
			t.Errorf("%s: complexity %d out of range", c.fn, tr.Complexity)
		}
		got, err := tr.Fn(c.in)
		if err != nil {
			t.Errorf("%s(%q): %v", c.fn, c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s(%q) = %q, want %q", c.fn, c.in, got, c.want)
		}
	}
	if _, err := r.Get("nope"); err == nil {
		t.Error("expected error for unknown transform")
	}
	if len(r.Names()) < 10 {
		t.Errorf("registry too small: %v", r.Names())
	}
}

// Property: ParseUMDSection round-trips the components it parsed.
func TestQuickUMDSectionParse(t *testing.T) {
	f := func(num, id uint16, hasSeats bool) bool {
		teacher := "Lastname, X."
		s := ""
		if hasSeats {
			s = " (Seats=40, Open=2, Waitlist=1)"
		}
		in := itoa(int(num)) + "(" + itoa(int(id)) + ") " + teacher + s
		sec, err := ParseUMDSection(in)
		if err != nil {
			return false
		}
		return sec.Teacher == teacher && sec.HasSeats == hasSeats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b strings.Builder
	var digits []byte
	for n > 0 {
		digits = append(digits, byte('0'+n%10))
		n /= 10
	}
	for i := len(digits) - 1; i >= 0; i-- {
		b.WriteByte(digits[i])
	}
	return b.String()
}

func TestFrenchLexicon(t *testing.T) {
	lex := NewFrenchLexicon()
	if en, ok := lex.ToEnglish("Enseignant"); !ok || en != "Lecturer" {
		t.Errorf("ToEnglish(Enseignant) = %q,%v", en, ok)
	}
	if !lex.ValueContains("Bases de données avancées", "database") {
		t.Error("French database title should match")
	}
	if lex.ValueContains("Génie logiciel", "database") {
		t.Error("software engineering should not match database")
	}
	if got := lex.TranslateTag("Intitulé"); got != "Title" {
		t.Errorf("TranslateTag = %q", got)
	}
	// The two lexicons are independent.
	de := NewGermanLexicon()
	if _, ok := de.ToEnglish("Enseignant"); ok {
		t.Error("German lexicon should not know French terms")
	}
}
