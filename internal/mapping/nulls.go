package mapping

// Dual NULL semantics. The paper's query 8 challenge: "one must support
// more than one kind of NULL. Specifically, one must distinguish 'data
// missing but could be present' (case 6) from 'data missing and cannot be
// present' (case 8)." Systems with a single NULL (Postgres, and hence
// Cohera) cannot answer query 8 intelligently.

// NullKind distinguishes the two flavors of missing data.
type NullKind int

// The flavors of NULL, plus NotNull for present values.
const (
	// NotNull marks a present value.
	NotNull NullKind = iota
	// NullMissing: the value could exist but was not provided (case 6 —
	// a course that simply lists no textbook).
	NullMissing
	// NullInapplicable: the concept does not exist in this schema's world
	// (case 8 — student classification at a European university).
	NullInapplicable
)

// String renders the kind for result rows and debugging.
func (k NullKind) String() string {
	switch k {
	case NotNull:
		return "present"
	case NullMissing:
		return "missing"
	case NullInapplicable:
		return "inapplicable"
	default:
		return "unknown"
	}
}

// Marker is the canonical textual representation of each NULL flavor in
// THALIA's sample solutions: missing data is an empty value; inapplicable
// data is the explicit marker below, so that a result consumer can tell the
// two apart (the paper: returning a plain NULL for ETH "is quite
// misleading").
func (k NullKind) Marker() string {
	switch k {
	case NullMissing:
		return ""
	case NullInapplicable:
		return "(not applicable)"
	default:
		return ""
	}
}

// Value is a string value annotated with its NULL flavor.
type Value struct {
	Kind NullKind
	Str  string
}

// Present wraps a present value.
func Present(s string) Value { return Value{Kind: NotNull, Str: s} }

// Missing is the case-6 NULL.
func Missing() Value { return Value{Kind: NullMissing} }

// Inapplicable is the case-8 NULL.
func Inapplicable() Value { return Value{Kind: NullInapplicable} }

// Marker renders the value for a canonical result row.
func (v Value) Marker() string {
	if v.Kind == NotNull {
		return v.Str
	}
	return v.Kind.Marker()
}
