package mapping

import (
	"fmt"
	"strings"
)

// Transform is a named value transformation with a declared complexity,
// matching the paper's scoring function: every external function an
// integration system needs is scored low (1), medium (2) or high (3).
type Transform struct {
	Name string
	// Complexity: 1 low, 2 medium, 3 high.
	Complexity int
	// Doc explains what the transformation resolves.
	Doc string
	// Fn maps a source value to a global-schema value.
	Fn func(string) (string, error)
}

// Registry holds the transformation catalog keyed by name.
type Registry struct {
	byName map[string]*Transform
}

// NewRegistry returns a registry preloaded with THALIA's standard
// transformation catalog.
func NewRegistry() *Registry {
	r := &Registry{byName: map[string]*Transform{}}
	lex := NewGermanLexicon()
	for _, t := range []*Transform{
		{
			Name: "to24h", Complexity: 1,
			Doc: "convert any clock spelling to the canonical 24-hour form (case 2)",
			Fn:  To24Hour,
		},
		{
			Name: "range_to_24h", Complexity: 1,
			Doc: "convert a meeting-time range to canonical 24-hour form (case 2)",
			Fn:  RangeTo24,
		},
		{
			Name: "flatten_union", Complexity: 2,
			Doc: "flatten a string-plus-link union value to its visible text (case 3)",
			Fn: func(s string) (string, error) {
				// Union flattening happens at the node level in practice;
				// string level it is the identity on the visible text.
				return strings.TrimSpace(s), nil
			},
		},
		{
			Name: "umfang_to_units", Complexity: 3,
			Doc: "convert ETH Umfang notation to CMU-style units (case 4)",
			Fn: func(s string) (string, error) {
				u, err := ParseUmfang(s)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%d", u.Units()), nil
			},
		},
		{
			Name: "translate_de_en", Complexity: 3,
			Doc: "translate a German schema term or value word to English (case 5)",
			Fn: func(s string) (string, error) {
				if en, ok := lex.ToEnglish(s); ok {
					return en, nil
				}
				return s, nil
			},
		},
		{
			Name: "null_marker", Complexity: 2,
			Doc: "render missing data explicitly in the integrated result (case 6)",
			Fn: func(s string) (string, error) {
				if strings.TrimSpace(s) == "" {
					return NullMissing.Marker(), nil
				}
				return s, nil
			},
		},
		{
			Name: "infer_prereq", Complexity: 2,
			Doc: "infer entry-level status from a free-text comment (case 7)",
			Fn: func(s string) (string, error) {
				if InferEntryLevel("", s) {
					return "None", nil
				}
				return s, nil
			},
		},
		{
			Name: "dual_null", Complexity: 3,
			Doc: "distinguish missing from inapplicable data (case 8)",
			Fn: func(s string) (string, error) {
				return Inapplicable().Marker(), nil
			},
		},
		{
			Name: "umd_time_room", Complexity: 1,
			Doc: "extract the room from Maryland's composite Time value (case 9)",
			Fn: func(s string) (string, error) {
				t, err := ParseUMDTime(s)
				if err != nil {
					return "", err
				}
				return t.Room, nil
			},
		},
		{
			Name: "umd_section_teacher", Complexity: 2,
			Doc: "extract the instructor name from a Maryland section title (case 10)",
			Fn: func(s string) (string, error) {
				sec, err := ParseUMDSection(s)
				if err != nil {
					return "", err
				}
				return sec.Teacher, nil
			},
		},
		{
			Name: "decompose_brown_title", Complexity: 2,
			Doc: "split Brown's composite Title/Time column into its title part (case 12)",
			Fn: func(s string) (string, error) {
				return DecomposeBrownTitle(s).Title, nil
			},
		},
	} {
		r.byName[t.Name] = t
	}
	return r
}

// Get returns the named transformation.
func (r *Registry) Get(name string) (*Transform, error) {
	t, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("mapping: no transform %q", name)
	}
	return t, nil
}

// Names returns the registered transform names (unsorted).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	return out
}
