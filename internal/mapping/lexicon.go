package mapping

import (
	"sort"
	"strings"
)

// Lexicon is a bidirectional German↔English dictionary for the
// language-expression heterogeneity (case 5). It covers both schema terms
// (element names like "Titel") and domain vocabulary appearing in values
// (like "Datenbank"). Real systems would plug in a full dictionary; the
// paper notes that without one this heterogeneity needs "large amounts of
// custom code".
type Lexicon struct {
	deToEn map[string]string
	enToDe map[string][]string
}

// NewGermanLexicon returns the lexicon covering the testbed's German
// sources (ETH Zürich, TU München, Universität Karlsruhe).
func NewGermanLexicon() *Lexicon {
	l := &Lexicon{deToEn: map[string]string{}, enToDe: map[string][]string{}}
	// Schema terms.
	for de, en := range map[string]string{
		"Vorlesung":     "Course",
		"Veranstaltung": "Course",
		"Titel":         "Title",
		"Dozent":        "Lecturer",
		"Nummer":        "Number",
		"Umfang":        "Units",
		"SWS":           "CreditHours",
		"Zeit":          "Time",
		"Ort":           "Room",
		"Raum":          "Room",
		"Semester":      "Semester",
	} {
		l.add(de, en)
	}
	// Domain vocabulary seen in the testbed's course titles.
	for de, en := range map[string]string{
		"Datenbank":        "database",
		"Datenbanken":      "databases",
		"Datenbanksystem":  "database system",
		"Datenbanksysteme": "database systems",
		"Datenstrukturen":  "data structures",
		"Algorithmen":      "algorithms",
		"Betriebssysteme":  "operating systems",
		"Rechnernetze":     "computer networks",
		"Vernetzte":        "networked",
		"Systeme":          "systems",
		"Programmierung":   "programming",
		"Einführung":       "introduction",
		"Übersetzerbau":    "compilers",
		"Verifikation":     "verification",
		"Informatik":       "computer science",
	} {
		l.add(de, en)
	}
	return l
}

func (l *Lexicon) add(de, en string) {
	l.deToEn[strings.ToLower(de)] = en
	key := strings.ToLower(en)
	l.enToDe[key] = append(l.enToDe[key], de)
	sort.Strings(l.enToDe[key])
}

// ToEnglish translates a German term; ok is false for unknown terms.
func (l *Lexicon) ToEnglish(de string) (string, bool) {
	en, ok := l.deToEn[strings.ToLower(de)]
	return en, ok
}

// ToGerman returns all German renderings of an English term. The paper's
// query 5 needs exactly this: 'Database' expands to 'Datenbank' and
// 'Datenbanksystem' before matching against ETH's catalog.
func (l *Lexicon) ToGerman(en string) []string {
	seen := map[string]bool{}
	var out []string
	for _, de := range l.enToDe[strings.ToLower(en)] {
		if !seen[de] {
			seen[de] = true
			out = append(out, de)
		}
	}
	// An English stem also expands through compounds: "database" matches
	// the stem of "databases", "database system", ...
	for key, des := range l.enToDe {
		if key == strings.ToLower(en) {
			continue
		}
		if strings.HasPrefix(key, strings.ToLower(en)) {
			for _, de := range des {
				if !seen[de] {
					seen[de] = true
					out = append(out, de)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// ValueContains reports whether a German value contains (a German rendering
// of) the English term, case-insensitively.
func (l *Lexicon) ValueContains(germanValue, englishTerm string) bool {
	lv := strings.ToLower(germanValue)
	if strings.Contains(lv, strings.ToLower(englishTerm)) {
		// Loanwords ("Information Retrieval") appear untranslated.
		return true
	}
	for _, de := range l.ToGerman(englishTerm) {
		if strings.Contains(lv, strings.ToLower(de)) {
			return true
		}
	}
	return false
}

// TranslateTag maps a German element name to its English counterpart,
// returning the input unchanged when unknown.
func (l *Lexicon) TranslateTag(tag string) string {
	if en, ok := l.ToEnglish(tag); ok {
		return en
	}
	return tag
}

// NewFrenchLexicon returns the lexicon covering the testbed's French
// source (EPFL): schema terms and the domain vocabulary appearing in
// course titles. Together with the German lexicon it demonstrates that the
// language-expression heterogeneity (case 5) is a per-language dictionary
// problem, not a one-off.
func NewFrenchLexicon() *Lexicon {
	l := &Lexicon{deToEn: map[string]string{}, enToDe: map[string][]string{}}
	// Schema terms.
	for fr, en := range map[string]string{
		"Matière":    "Course",
		"Cours":      "Course",
		"Intitulé":   "Title",
		"Titre":      "Title",
		"Enseignant": "Lecturer",
		"Professeur": "Lecturer",
		"Horaire":    "Time",
		"Salle":      "Room",
		"Crédits":    "Credits",
		"Numéro":     "Number",
	} {
		l.add(fr, en)
	}
	// Domain vocabulary.
	for fr, en := range map[string]string{
		"Bases de données":          "databases",
		"Base de données":           "database",
		"Structures de données":     "data structures",
		"Algorithmique":             "algorithms",
		"Systèmes d'exploitation":   "operating systems",
		"Réseaux informatiques":     "computer networks",
		"Génie logiciel":            "software engineering",
		"Compilation":               "compilers",
		"Intelligence artificielle": "artificial intelligence",
		"Apprentissage automatique": "machine learning",
		"Sécurité informatique":     "computer security",
		"Calcul parallèle":          "parallel computing",
		"Vérification":              "verification",
		"Informatique":              "computer science",
		"Programmation":             "programming",
	} {
		l.add(fr, en)
	}
	return l
}
