package cohera

import (
	"errors"
	"fmt"
	"testing"

	"thalia/internal/integration"
	"thalia/internal/minidb"
)

// A transient shredding failure must be all-or-nothing: the failing call
// reports the error, no partially-shredded database is ever published, and
// the next call rebuilds and succeeds. The old sync.Once build cached the
// error (and a half-shredded DB) forever — this pins the fix.
func TestBuildHealsAfterTransientFailure(t *testing.T) {
	s := New()
	calls := 0
	s.shred = func(db *minidb.DB) error {
		calls++
		if calls == 1 {
			return fmt.Errorf("transient source outage")
		}
		return shredAll(db)
	}

	if db, err := s.DB(); err == nil {
		t.Fatal("first build succeeded, want transient failure")
	} else if db != nil {
		t.Fatal("failing build published a partial database")
	}

	db, err := s.DB()
	if err != nil {
		t.Fatalf("second build still failing: %v (error was cached)", err)
	}
	if db == nil {
		t.Fatal("second build returned no database")
	}
	if _, err := db.Table("gatech"); err != nil {
		t.Fatalf("healed database is missing relations: %v", err)
	}
	if calls != 2 {
		t.Fatalf("shred ran %d times, want 2 (fail, then heal)", calls)
	}

	// The healed database is cached: a third call must not rebuild.
	if _, err := s.DB(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("shred ran %d times after a successful build, want 2 (success cached)", calls)
	}
}

// A failing build must also fail Answer without caching the error.
func TestAnswerHealsAfterTransientFailure(t *testing.T) {
	s := New()
	calls := 0
	wantErr := errors.New("transient source outage")
	s.shred = func(db *minidb.DB) error {
		calls++
		if calls == 1 {
			return wantErr
		}
		return shredAll(db)
	}
	if _, err := s.Answer(integration.Request{QueryID: 1}); !errors.Is(err, wantErr) {
		t.Fatalf("first Answer error = %v, want the injected outage", err)
	}
	ans, err := s.Answer(integration.Request{QueryID: 1})
	if err != nil {
		t.Fatalf("second Answer still failing: %v", err)
	}
	if len(ans.Rows) == 0 {
		t.Fatal("healed Answer returned no rows")
	}
}
