// Package cohera models the Cohera Content Integration System (the
// commercial descendant of Mariposa) as the paper describes it in Section
// 4.2: a federated DBMS with a flexible "web site wrapper" that constructs
// records from web pages, local and global schemas connected by mapping
// views "with the power of Postgres", and user-defined functions for value
// transformations.
//
// Cohera was bought in 2001 and could not be run; the paper *projects* its
// per-query behaviour, which this package implements faithfully on top of
// the minidb relational engine:
//
//	Q1, Q6, Q9, Q10 — answered with no custom code (schema mapping and
//	                  Postgres NULL support alone);
//	Q2              — a small user-defined function (clock conversion);
//	Q3, Q7, Q11, Q12 — moderate user-defined functions;
//	Q4, Q5, Q8      — declined ("no easy way to deal with this, without
//	                  large amounts of custom code").
//
// Query 8 fails for a structural reason the paper highlights: Postgres (and
// hence Cohera) has exactly one NULL, so it cannot distinguish "missing"
// from "inapplicable".
package cohera

import (
	"fmt"
	"strings"
	"sync"

	"thalia/internal/catalog"
	"thalia/internal/explain"
	"thalia/internal/integration"
	"thalia/internal/mapping"
	"thalia/internal/minidb"
	"thalia/internal/xmldom"
)

// System is the Cohera model. It is safe for concurrent use: the testbed is
// shredded into relations exactly once behind the build mutex, queries only
// read the shredded tables, and minidb's UDF-invocation tally is
// mutex-protected inside the engine.
//
// The build is all-or-nothing: s.db is published only after shredding and
// view creation fully succeed, and a build error is returned but never
// cached — so a transient source failure (a fault-injected catalog, say)
// fails that call alone instead of leaving a partially-shredded database
// or a permanently poisoned system behind.
type System struct {
	mu sync.Mutex
	db *minidb.DB
	// shred is a test seam for the regression suite's fail-once builds;
	// nil means shredAll.
	shred func(*minidb.DB) error
	// cache memoizes successful answers by request identity; recorded
	// (explain) calls and errors bypass it.
	cache integration.AnswerCache
}

// New returns a Cohera instance over the built-in testbed.
func New() *System { return &System{} }

// Name implements integration.System.
func (s *System) Name() string { return "Cohera" }

// Description implements integration.System.
func (s *System) Description() string {
	return "federated DBMS: web-site wrapper shreds sources into relations; local-to-global mapping views with Postgres-style UDFs"
}

// DB exposes the underlying engine (for the ablation benchmarks).
func (s *System) DB() (*minidb.DB, error) {
	return s.build()
}

// build shreds the testbed sources Cohera federates into relations and
// registers the mapping views and UDFs. Only a fully built database is
// cached; on error nothing is published and the next call rebuilds.
func (s *System) build() (*minidb.DB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.db != nil {
		return s.db, nil
	}
	shred := s.shred
	if shred == nil {
		shred = shredAll
	}
	db := minidb.NewDB()
	if err := shred(db); err != nil {
		return nil, err
	}
	registerUDFs(db)
	if err := createViews(db); err != nil {
		return nil, err
	}
	s.db = db
	return db, nil
}

// text wraps a trimmed string value, mapping "" to SQL NULL — the wrapper's
// convention for absent fields, which gives Cohera its (single-flavor)
// NULL story for query 6.
func text(v string) minidb.Value {
	v = strings.TrimSpace(v)
	if v == "" {
		return minidb.Null
	}
	return minidb.Text(v)
}

// shredAll builds one or more relations per federated source from the
// extracted catalog documents. The "very flexible" record construction the
// paper credits to Cohera's web wrapper shows up here: Maryland's nested
// sections become a child relation with teacher and room split out, and
// CMU's set-valued Lecturer field becomes a one-row-per-instructor
// relation.
func shredAll(db *minidb.DB) error {
	docs := map[string]*xmldom.Document{}
	for _, name := range []string{"gatech", "cmu", "umd", "brown", "toronto", "umich", "ucsd", "umass"} {
		src, err := catalog.Get(name)
		if err != nil {
			return err
		}
		doc, err := src.Document()
		if err != nil {
			return err
		}
		docs[name] = doc
	}

	gatech := minidb.NewTable("gatech", "crn", "num", "title", "instructor", "meets", "room", "restrictions")
	for _, c := range docs["gatech"].Root.ChildrenNamed("Course") {
		if err := gatech.Insert(
			text(c.ChildText("CRN")), text(c.ChildText("CourseNum")), text(c.ChildText("Title")),
			text(c.ChildText("Instructor")), text(c.ChildText("Time")), text(c.ChildText("Room")),
			text(c.ChildText("Restrictions")),
		); err != nil {
			return err
		}
	}
	db.CreateTable(gatech)

	cmu := minidb.NewTable("cmu", "num", "title", "comment", "units", "lecturer", "day", "meets", "room", "textbook")
	cmuLect := minidb.NewTable("cmu_lecturers", "num", "name")
	for _, c := range docs["cmu"].Root.ChildrenNamed("Course") {
		titleEl := c.Child("CourseTitle")
		num := c.ChildText("CourseNumber")
		if err := cmu.Insert(
			text(num), text(titleEl.Text()), text(titleEl.ChildText("Comment")),
			text(c.ChildText("Units")), text(c.ChildText("Lecturer")), text(c.ChildText("Day")),
			text(c.ChildText("Time")), text(c.ChildText("Room")), text(c.ChildText("Textbook")),
		); err != nil {
			return err
		}
		for _, name := range strings.Split(c.ChildText("Lecturer"), "/") {
			if name = strings.TrimSpace(name); name != "" {
				if err := cmuLect.Insert(text(num), text(name)); err != nil {
					return err
				}
			}
		}
	}
	db.CreateTable(cmu)
	db.CreateTable(cmuLect)

	umd := minidb.NewTable("umd", "num", "name", "notes")
	umdSec := minidb.NewTable("umd_sections", "num", "section", "teacher", "days", "meets", "room")
	for _, c := range docs["umd"].Root.ChildrenNamed("Course") {
		num := c.ChildText("CourseNum")
		if err := umd.Insert(text(num), text(c.ChildText("CourseName")), text(c.ChildText("Notes"))); err != nil {
			return err
		}
		for _, sec := range c.ChildrenNamed("Section") {
			st, err := mapping.ParseUMDSection(sec.ChildText("SectionTitle"))
			if err != nil {
				return fmt.Errorf("cohera: wrap umd: %w", err)
			}
			tm, err := mapping.ParseUMDTime(sec.ChildText("Time"))
			if err != nil {
				return fmt.Errorf("cohera: wrap umd: %w", err)
			}
			if err := umdSec.Insert(
				text(num), text(st.Num), text(st.Teacher), text(tm.Days), text(tm.Time), text(tm.Room),
			); err != nil {
				return err
			}
		}
	}
	db.CreateTable(umd)
	db.CreateTable(umdSec)

	brown := minidb.NewTable("brown", "num", "instructor", "title", "room")
	for _, c := range docs["brown"].Root.ChildrenNamed("Course") {
		title := c.Child("Title")
		// The wrapper flattens the union-typed Title column to its visible
		// text; resolving it further is what the Q3/Q12 UDFs are for.
		if err := brown.Insert(
			text(c.ChildText("CrsNum")), text(c.Child("Instructor").DeepText()),
			text(title.DeepText()), text(c.ChildText("Room")),
		); err != nil {
			return err
		}
	}
	db.CreateTable(brown)

	toronto := minidb.NewTable("toronto", "code", "title", "instructor", "book")
	for _, c := range docs["toronto"].Root.ChildrenNamed("course") {
		if err := toronto.Insert(
			text(c.ChildText("code")), text(c.ChildText("title")),
			text(c.ChildText("instructor")), text(c.ChildText("text")),
		); err != nil {
			return err
		}
	}
	db.CreateTable(toronto)

	umich := minidb.NewTable("umich", "num", "title", "prerequisite", "instructor")
	for _, c := range docs["umich"].Root.ChildrenNamed("Course") {
		if err := umich.Insert(
			text(c.ChildText("number")), text(c.ChildText("title")),
			text(c.ChildText("prerequisite")), text(c.ChildText("instructor")),
		); err != nil {
			return err
		}
	}
	db.CreateTable(umich)

	ucsd := minidb.NewTable("ucsd", "num", "title", "fall2003", "winter2004")
	for _, c := range docs["ucsd"].Root.ChildrenNamed("Course") {
		if err := ucsd.Insert(
			text(c.ChildText("Number")), text(c.ChildText("Title")),
			text(c.ChildText("Fall2003")), text(c.ChildText("Winter2004")),
		); err != nil {
			return err
		}
	}
	db.CreateTable(ucsd)

	umass := minidb.NewTable("umass", "num", "name", "instructor", "days", "meets", "room")
	for _, c := range docs["umass"].Root.ChildrenNamed("Course") {
		if err := umass.Insert(
			text(c.ChildText("Number")), text(c.ChildText("Name")), text(c.ChildText("Instructor")),
			text(c.ChildText("Days")), text(c.ChildText("Time")), text(c.ChildText("Room")),
		); err != nil {
			return err
		}
	}
	db.CreateTable(umass)
	return nil
}

// registerUDFs installs the user-defined functions Cohera's answer plan
// needs — the C-language UDFs of the paper, written against minidb.
func registerUDFs(db *minidb.DB) {
	str1 := func(fn func(string) (string, error)) func([]minidb.Value) (minidb.Value, error) {
		return func(args []minidb.Value) (minidb.Value, error) {
			if len(args) != 1 {
				return minidb.Null, fmt.Errorf("cohera: UDF expects 1 argument")
			}
			if args[0].IsNull() {
				return minidb.Null, nil
			}
			out, err := fn(args[0].String())
			if err != nil {
				return minidb.Null, err
			}
			return minidb.Text(out), nil
		}
	}
	db.Register(&minidb.Func{
		Name: "to24h_start", Complexity: 1,
		Fn: str1(func(s string) (string, error) {
			start, _, err := mapping.ParseClockRange(s)
			if err != nil {
				return "", err
			}
			return start.String(), nil
		}),
	})
	db.Register(&minidb.Func{
		Name: "range24", Complexity: 1,
		Fn: str1(mapping.RangeTo24),
	})
	db.Register(&minidb.Func{
		Name: "brown_title", Complexity: 2,
		Fn: str1(func(s string) (string, error) {
			return mapping.DecomposeBrownTitle(s).Title, nil
		}),
	})
	db.Register(&minidb.Func{
		Name: "brown_day", Complexity: 2,
		Fn: str1(func(s string) (string, error) {
			return mapping.CanonicalDays(mapping.DecomposeBrownTitle(s).Days), nil
		}),
	})
	db.Register(&minidb.Func{
		Name: "brown_time", Complexity: 2,
		Fn: str1(func(s string) (string, error) {
			return mapping.RangeTo24(mapping.DecomposeBrownTitle(s).Time)
		}),
	})
	db.Register(&minidb.Func{
		Name: "infer_entry", Complexity: 2,
		Fn: str1(func(s string) (string, error) {
			if mapping.InferEntryLevel("", s) {
				return "None", nil
			}
			return "", nil
		}),
	})
	db.Register(&minidb.Func{
		Name: "is_instructor", Complexity: 2,
		Fn: func(args []minidb.Value) (minidb.Value, error) {
			if len(args) != 1 {
				return minidb.Null, fmt.Errorf("cohera: is_instructor expects 1 argument")
			}
			if args[0].IsNull() {
				return minidb.Bool(false), nil
			}
			v := args[0].String()
			return minidb.Bool(v != "" && v != "(not offered)"), nil
		},
	})
}

// createViews installs the local-to-global mapping views.
func createViews(db *minidb.DB) error {
	views := map[string]string{
		// Query 1: renaming columns is pure mapping.
		"g_gatech_courses": `SELECT num AS course, title, instructor FROM gatech`,
		"g_cmu_courses":    `SELECT num AS course, title AS title, lecturer AS instructor, comment, units, day, meets, textbook FROM cmu`,
		// Queries 9/10: the attribute relocation and set flattening happen
		// in the wrapper-produced relations, so these too are pure mapping.
		"g_umd_sections": `SELECT s.num AS course, u.name AS title, s.teacher AS instructor, s.room AS room FROM umd_sections s, umd u WHERE s.num = u.num`,
		"g_brown_rooms":  `SELECT num AS course, title, room FROM brown`,
	}
	for name, sql := range views {
		if err := db.CreateView(name, sql); err != nil {
			return err
		}
	}
	return nil
}

// rows converts a minidb result to canonical integration rows, attaching
// the source and mapping result columns to canonical field names in order.
func rows(res *minidb.Result, source string, fields ...string) []integration.Row {
	var out []integration.Row
	for _, r := range res.Rows {
		row := integration.Row{"source": source}
		for i, f := range fields {
			if i < len(r) {
				if r[i].IsNull() {
					row[f] = ""
				} else {
					row[f] = r[i].String()
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// Answer implements integration.System. Repeat un-recorded requests are
// served from the system's answer cache; see integration.AnswerCache for the
// invariants (errors and recorded traces always re-evaluate).
func (s *System) Answer(req integration.Request) (*integration.Answer, error) {
	return s.cache.Do(req, s.answer)
}

// answer computes the paper's projected per-query behaviour.
func (s *System) answer(req integration.Request) (*integration.Answer, error) {
	// The answer span opens before build() so a cold first call attributes
	// the one-time testbed shredding to this cell's trace.
	rec := explain.FromContext(req.Context())
	if rec != nil {
		sp := rec.Begin(explain.KindAnswer, "Cohera.Answer")
		defer sp.End()
	}
	db, err := s.build()
	if err != nil {
		return nil, err
	}
	q := func(sql string) (*minidb.Result, error) { return db.Query(sql) }
	if rec != nil {
		inner := q
		q = func(sql string) (*minidb.Result, error) {
			ssp := rec.Begin(explain.KindSQL, sql)
			for _, view := range mappingViews(sql) {
				rec.Event(explain.KindMapping, "view "+view)
			}
			res, err := inner(sql)
			if err == nil {
				ssp.SetRows(-1, len(res.Rows))
			}
			ssp.End()
			return res, err
		}
	}

	switch req.QueryID {
	case 1: // renaming columns: supportable by the local-to-global mapping.
		g, err := q(`SELECT course, instructor FROM g_gatech_courses WHERE instructor = 'Mark'`)
		if err != nil {
			return nil, err
		}
		c, err := q(`SELECT l.num, l.name FROM cmu_lecturers l WHERE l.name = 'Mark'`)
		if err != nil {
			return nil, err
		}
		out := append(rows(g, "gatech", "course", "instructor"), rows(c, "cmu", "course", "instructor")...)
		return &integration.Answer{Rows: out, Effort: integration.EffortNone}, nil

	case 2: // 24-hour clock: a small user-defined function.
		c, err := q(`SELECT course, title, range24(meets) FROM g_cmu_courses WHERE to24h_start(meets) = '13:30' AND lower(title) LIKE '%database%'`)
		if err != nil {
			return nil, err
		}
		u, err := q(`SELECT num, name, range24(meets) FROM umass WHERE to24h_start(meets) = '13:30' AND lower(name) LIKE '%database%'`)
		if err != nil {
			return nil, err
		}
		out := append(rows(c, "cmu", "course", "title", "time"), rows(u, "umass", "course", "title", "time")...)
		return &integration.Answer{
			Rows: out, Effort: integration.EffortSmall,
			Functions: []integration.FunctionUse{{Name: "to24h", Complexity: 1}},
		}, nil

	case 3: // union data types: a user-defined union conversion routine.
		u, err := q(`SELECT num, name FROM umd WHERE name LIKE '%Data Structures%'`)
		if err != nil {
			return nil, err
		}
		b, err := q(`SELECT num, brown_title(title) FROM brown WHERE brown_title(title) LIKE '%Data Structures%'`)
		if err != nil {
			return nil, err
		}
		out := append(rows(u, "umd", "course", "title"), rows(b, "brown", "course", "title")...)
		return &integration.Answer{
			Rows: out, Effort: integration.EffortModerate,
			Functions: []integration.FunctionUse{{Name: "union_conversion", Complexity: 2}},
		}, nil

	case 4, 5, 8:
		// "No easy way to deal with this, without large amounts of custom
		// code." For query 8 specifically: Postgres has exactly one NULL,
		// so missing-vs-inapplicable cannot be expressed.
		if rec != nil {
			rec.Event(explain.KindDecline, "no easy way without large amounts of custom code")
		}
		return nil, integration.ErrUnsupported

	case 6: // nulls: Postgres had direct support for nulls.
		t, err := q(`SELECT code, coalesce(book, '') FROM toronto WHERE title LIKE '%Verification%'`)
		if err != nil {
			return nil, err
		}
		c, err := q(`SELECT course, coalesce(textbook, '') FROM g_cmu_courses WHERE title LIKE '%Verification%'`)
		if err != nil {
			return nil, err
		}
		out := append(rows(t, "toronto", "course", "textbook"), rows(c, "cmu", "course", "textbook")...)
		return &integration.Answer{Rows: out, Effort: integration.EffortNone}, nil

	case 7: // virtual attributes: same answer as query 3.
		u, err := q(`SELECT num, title FROM umich WHERE prerequisite = 'None' AND title LIKE '%Database%'`)
		if err != nil {
			return nil, err
		}
		c, err := q(`SELECT course, title FROM g_cmu_courses WHERE infer_entry(comment) = 'None' AND title LIKE '%Database%'`)
		if err != nil {
			return nil, err
		}
		out := append(rows(u, "umich", "course", "title"), rows(c, "cmu", "course", "title")...)
		return &integration.Answer{
			Rows: out, Effort: integration.EffortModerate,
			Functions: []integration.FunctionUse{{Name: "infer_entry", Complexity: 2}},
		}, nil

	case 9: // attribute in different places: pure mapping (the wrapper
		// already hoisted the room out of Maryland's Time values).
		// Matching against Brown's composite title needs no conversion:
		// LIKE on the flattened text already finds the substring.
		b, err := q(`SELECT course, room FROM g_brown_rooms WHERE title LIKE '%Software Engineering%'`)
		if err != nil {
			return nil, err
		}
		u, err := q(`SELECT course, room FROM g_umd_sections WHERE title LIKE '%Software Engineering%'`)
		if err != nil {
			return nil, err
		}
		out := append(rows(b, "brown", "course", "room"), rows(u, "umd", "course", "room")...)
		return &integration.Answer{Rows: out, Effort: integration.EffortNone}, nil

	case 10: // sets: pure mapping over the wrapper-flattened relations.
		c, err := q(`SELECT l.num, l.name FROM cmu_lecturers l, cmu c WHERE l.num = c.num AND c.title LIKE '%Software%'`)
		if err != nil {
			return nil, err
		}
		u, err := q(`SELECT course, instructor FROM g_umd_sections WHERE title LIKE '%Software%'`)
		if err != nil {
			return nil, err
		}
		out := append(rows(c, "cmu", "course", "instructor"), rows(u, "umd", "course", "instructor")...)
		return &integration.Answer{Rows: out, Effort: integration.EffortNone}, nil

	case 11: // name does not define semantics: same answer as 3 and 7.
		c, err := q(`SELECT l.num, l.name FROM cmu_lecturers l, cmu c WHERE l.num = c.num AND c.title LIKE '%Database%'`)
		if err != nil {
			return nil, err
		}
		f, err := q(`SELECT num, fall2003 FROM ucsd WHERE title LIKE '%Database%' AND is_instructor(fall2003)`)
		if err != nil {
			return nil, err
		}
		w, err := q(`SELECT num, winter2004 FROM ucsd WHERE title LIKE '%Database%' AND is_instructor(winter2004)`)
		if err != nil {
			return nil, err
		}
		out := append(rows(c, "cmu", "course", "instructor"),
			append(rows(f, "ucsd", "course", "instructor"), rows(w, "ucsd", "course", "instructor")...)...)
		return &integration.Answer{
			Rows: out, Effort: integration.EffortModerate,
			Functions: []integration.FunctionUse{{Name: "term_columns", Complexity: 2}},
		}, nil

	case 12: // run-on columns: same answer as 3, 7 and 11.
		c, err := q(`SELECT course, title, day, range24(meets) FROM g_cmu_courses WHERE title LIKE '%Computer Networks%'`)
		if err != nil {
			return nil, err
		}
		b, err := q(`SELECT num, brown_title(title), brown_day(title), brown_time(title) FROM brown WHERE brown_title(title) LIKE '%Computer Networks%'`)
		if err != nil {
			return nil, err
		}
		out := append(rows(c, "cmu", "course", "title", "day", "time"),
			rows(b, "brown", "course", "title", "day", "time")...)
		return &integration.Answer{
			Rows: out, Effort: integration.EffortModerate,
			Functions: []integration.FunctionUse{{Name: "brown_decompose", Complexity: 2}},
		}, nil
	}
	return nil, fmt.Errorf("cohera: unknown benchmark query %d", req.QueryID)
}

// mappingViews extracts the local-to-global mapping views (g_* identifiers)
// referenced by a federated SQL statement, for explain provenance. Only
// called when an explain recorder is attached.
func mappingViews(sql string) []string {
	var views []string
	seen := map[string]bool{}
	for _, f := range strings.FieldsFunc(sql, func(r rune) bool {
		return !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
	}) {
		if strings.HasPrefix(f, "g_") && !seen[f] {
			seen[f] = true
			views = append(views, f)
		}
	}
	return views
}
