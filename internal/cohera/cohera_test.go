package cohera

import (
	"errors"
	"testing"

	"thalia/internal/integration"
)

func TestIdentity(t *testing.T) {
	s := New()
	if s.Name() != "Cohera" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Description() == "" {
		t.Error("empty description")
	}
}

func TestShreddedRelations(t *testing.T) {
	s := New()
	db, err := s.DB()
	if err != nil {
		t.Fatal(err)
	}
	// Base relations for every federated source plus the wrapper-derived
	// child relations.
	for _, name := range []string{"gatech", "cmu", "cmu_lecturers", "umd", "umd_sections",
		"brown", "toronto", "umich", "ucsd", "umass"} {
		tbl, err := db.Table(name)
		if err != nil {
			t.Errorf("missing relation %s: %v", name, err)
			continue
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("relation %s is empty", name)
		}
	}
	// The set-valued Lecturer field was flattened: Song/Wing became two rows.
	res, err := db.Query(`SELECT name FROM cmu_lecturers WHERE num = '15-712' ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "Song" || res.Rows[1][0].String() != "Wing" {
		t.Errorf("lecturer flattening: %v", res.Rows)
	}
	// The wrapper hoisted Maryland's rooms out of the Time strings.
	res, err = db.Query(`SELECT room FROM umd_sections WHERE num = 'CMSC435' ORDER BY room`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].String() != "EGR2154" {
		t.Errorf("room hoisting: %v", res.Rows)
	}
	// Postgres-style NULL for the missing textbook.
	res, err = db.Query(`SELECT num FROM cmu WHERE textbook IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rows {
		if r[0].String() == "15-817" {
			found = true
		}
	}
	if !found {
		t.Error("15-817 should have NULL textbook")
	}
}

func TestMappingViews(t *testing.T) {
	s := New()
	db, err := s.DB()
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT instructor FROM g_gatech_courses WHERE course = 'CS4251'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "Mark" {
		t.Errorf("view row: %v", res.Rows)
	}
}

func TestDeclinesHardQueries(t *testing.T) {
	s := New()
	for _, id := range []int{4, 5, 8} {
		_, err := s.Answer(integration.Request{QueryID: id})
		if !errors.Is(err, integration.ErrUnsupported) {
			t.Errorf("query %d: err = %v, want ErrUnsupported", id, err)
		}
	}
	if _, err := s.Answer(integration.Request{QueryID: 99}); err == nil {
		t.Error("expected error for unknown query")
	}
}

func TestNoCodeQueriesUseNoFunctions(t *testing.T) {
	s := New()
	for _, id := range []int{1, 6, 9, 10} {
		ans, err := s.Answer(integration.Request{QueryID: id})
		if err != nil {
			t.Fatalf("query %d: %v", id, err)
		}
		if ans.Effort != integration.EffortNone || len(ans.Functions) != 0 {
			t.Errorf("query %d should be pure mapping; effort=%v functions=%v", id, ans.Effort, ans.Functions)
		}
	}
}

func TestUDFQueriesChargeComplexity(t *testing.T) {
	s := New()
	want := map[int]int{2: 1, 3: 2, 7: 2, 11: 2, 12: 2}
	for id, cx := range want {
		ans, err := s.Answer(integration.Request{QueryID: id})
		if err != nil {
			t.Fatalf("query %d: %v", id, err)
		}
		total := 0
		for _, f := range ans.Functions {
			total += f.Complexity
		}
		if total != cx {
			t.Errorf("query %d complexity = %d, want %d", id, total, cx)
		}
	}
}

func TestQuery6ReportsMissingTextbook(t *testing.T) {
	s := New()
	ans, err := s.Answer(integration.Request{QueryID: 6})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ans.Rows {
		if r["source"] == "cmu" && r["course"] == "15-817" {
			found = true
			if r["textbook"] != "" {
				t.Errorf("missing textbook should be empty marker, got %q", r["textbook"])
			}
		}
	}
	if !found {
		t.Error("the CMU course with no textbook must appear in the result")
	}
}
