package xquery

import (
	"strings"
)

// parseCtor handles a direct element constructor. The lexer has consumed the
// '<'; the constructor is scanned from the raw source in markup mode, after
// which the lexer resumes past it.
func (p *parser) parseCtor() (Expr, error) {
	ctor, end, err := scanCtor(p.lex.src, p.tok.pos)
	if err != nil {
		return nil, err
	}
	p.lex.setPos(end)
	if err := p.advance(); err != nil {
		return nil, err
	}
	return ctor, nil
}

// scanCtor scans a direct element constructor beginning with '<' at src[i].
// It returns the constructor and the offset just past it.
func scanCtor(src string, i int) (*ElemCtor, int, error) {
	if i >= len(src) || src[i] != '<' {
		return nil, i, &SyntaxError{Pos: i, Msg: "expected '<'"}
	}
	j := i + 1
	name, j := scanCtorName(src, j)
	if name == "" {
		return nil, i, &SyntaxError{Pos: j, Msg: "expected element name in constructor"}
	}
	ctor := &ElemCtor{Name: name}

	// Attributes.
	for {
		j = skipWS(src, j)
		if j >= len(src) {
			return nil, j, &SyntaxError{Pos: j, Msg: "unterminated start tag"}
		}
		if src[j] == '>' {
			j++
			break
		}
		if strings.HasPrefix(src[j:], "/>") {
			return ctor, j + 2, nil
		}
		aname, nj := scanCtorName(src, j)
		if aname == "" {
			return nil, j, &SyntaxError{Pos: j, Msg: "expected attribute name in constructor"}
		}
		j = skipWS(src, nj)
		if j >= len(src) || src[j] != '=' {
			return nil, j, &SyntaxError{Pos: j, Msg: "expected '=' after attribute name"}
		}
		j = skipWS(src, j+1)
		if j >= len(src) || (src[j] != '"' && src[j] != '\'') {
			return nil, j, &SyntaxError{Pos: j, Msg: "expected quoted attribute value"}
		}
		quote := src[j]
		j++
		attr := CtorAttr{Name: aname}
		var lit strings.Builder
		flush := func() {
			if lit.Len() > 0 {
				attr.Parts = append(attr.Parts, &StringLit{Val: lit.String()})
				lit.Reset()
			}
		}
		for {
			if j >= len(src) {
				return nil, j, &SyntaxError{Pos: j, Msg: "unterminated attribute value"}
			}
			c := src[j]
			if c == quote {
				j++
				break
			}
			if c == '{' {
				if strings.HasPrefix(src[j:], "{{") {
					lit.WriteByte('{')
					j += 2
					continue
				}
				flush()
				expr, nj, err := scanEmbedded(src, j)
				if err != nil {
					return nil, j, err
				}
				attr.Parts = append(attr.Parts, expr)
				j = nj
				continue
			}
			if strings.HasPrefix(src[j:], "}}") {
				lit.WriteByte('}')
				j += 2
				continue
			}
			lit.WriteString(decodeXMLEntity(src, &j))
		}
		flush()
		ctor.Attrs = append(ctor.Attrs, attr)
	}

	// Content until the matching close tag.
	var text strings.Builder
	flushText := func() {
		if s := text.String(); strings.TrimSpace(s) != "" {
			ctor.Content = append(ctor.Content, &StringLit{Val: s})
		}
		text.Reset()
	}
	for {
		if j >= len(src) {
			return nil, j, &SyntaxError{Pos: j, Msg: "unterminated element constructor <" + name + ">"}
		}
		if strings.HasPrefix(src[j:], "</") {
			flushText()
			k := j + 2
			cname, k := scanCtorName(src, k)
			k = skipWS(src, k)
			if cname != name {
				return nil, j, &SyntaxError{Pos: j, Msg: "mismatched close tag </" + cname + "> for <" + name + ">"}
			}
			if k >= len(src) || src[k] != '>' {
				return nil, k, &SyntaxError{Pos: k, Msg: "expected '>' in close tag"}
			}
			return ctor, k + 1, nil
		}
		switch src[j] {
		case '<':
			flushText()
			child, nj, err := scanCtor(src, j)
			if err != nil {
				return nil, j, err
			}
			ctor.Content = append(ctor.Content, child)
			j = nj
		case '{':
			if strings.HasPrefix(src[j:], "{{") {
				text.WriteByte('{')
				j += 2
				continue
			}
			flushText()
			expr, nj, err := scanEmbedded(src, j)
			if err != nil {
				return nil, j, err
			}
			ctor.Content = append(ctor.Content, expr)
			j = nj
		case '}':
			if strings.HasPrefix(src[j:], "}}") {
				text.WriteByte('}')
				j += 2
				continue
			}
			return nil, j, &SyntaxError{Pos: j, Msg: "unexpected '}' in constructor content"}
		default:
			text.WriteString(decodeXMLEntity(src, &j))
		}
	}
}

// scanEmbedded parses a {expr} block starting at the '{' and returns the
// compiled expression and the offset just past the '}'.
func scanEmbedded(src string, i int) (Expr, int, error) {
	depth := 0
	j := i
	for j < len(src) {
		switch src[j] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				inner := src[i+1 : j]
				e, err := Parse(inner)
				if err != nil {
					return nil, j, err
				}
				return e, j + 1, nil
			}
		case '\'', '"':
			q := src[j]
			j++
			for j < len(src) && src[j] != q {
				j++
			}
		}
		j++
	}
	return nil, j, &SyntaxError{Pos: i, Msg: "unterminated embedded expression"}
}

func scanCtorName(src string, i int) (string, int) {
	start := i
	for i < len(src) && (isNameChar(src[i]) || src[i] == '-') {
		i++
	}
	return src[start:i], i
}

func skipWS(src string, i int) int {
	for i < len(src) && (src[i] == ' ' || src[i] == '\t' || src[i] == '\n' || src[i] == '\r') {
		i++
	}
	return i
}

// decodeXMLEntity consumes one character (or entity) at *j and returns its
// decoded text, advancing *j.
func decodeXMLEntity(src string, j *int) string {
	if src[*j] != '&' {
		s := string(src[*j])
		*j++
		return s
	}
	for name, repl := range map[string]string{
		"&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": `"`, "&apos;": "'",
	} {
		if strings.HasPrefix(src[*j:], name) {
			*j += len(name)
			return repl
		}
	}
	*j++
	return "&"
}
