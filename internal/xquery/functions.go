package xquery

import (
	"strconv"
	"strings"

	"thalia/internal/explain"
	"thalia/internal/xmldom"
)

// evalCall dispatches builtin functions, then context-registered external
// functions. External calls are tallied in ctx.Called so the benchmark can
// account for the integration effort they represent.
func (ev *evaluator) evalCall(c *Call, en *env) (Sequence, error) {
	var sp *explain.Span
	if ev.rec != nil {
		sp = ev.rec.Begin(explain.KindCall, c.Name+"()")
	}
	out, err := ev.dispatchCall(c, en)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		sp.SetRows(-1, len(out))
		sp.End()
	}
	return out, nil
}

func (ev *evaluator) dispatchCall(c *Call, en *env) (Sequence, error) {
	args := make([]Sequence, len(c.Args))
	for i, a := range c.Args {
		s, err := ev.eval(a, en)
		if err != nil {
			return nil, err
		}
		args[i] = s
	}
	if fn, ok := builtins[c.Name]; ok {
		return fn.Invoke(c.Name, ev.ctx, ev.rec, args)
	}
	return CallExternal(ev.ctx, ev.rec, c.Name, args)
}

// BuiltinFunc is the invocable form of a builtin: pure over its evaluated
// arguments except for doc(), which consults the context's resolver and
// records provenance. Both the interpreter and the compiled-plan engine
// dispatch through the same BuiltinFunc values, so builtin semantics cannot
// drift between engines.
type BuiltinFunc func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error)

// Builtin is one builtin function with its arity bounds.
type Builtin struct {
	MinArgs, MaxArgs int // MaxArgs -1 means variadic
	Fn               BuiltinFunc
}

// Invoke applies the interpreter's arity rule — checked only after the
// arguments were evaluated, so argument errors surface first — then calls
// the builtin.
func (b Builtin) Invoke(name string, ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
	if len(args) < b.MinArgs || (b.MaxArgs >= 0 && len(args) > b.MaxArgs) {
		return nil, dynErrf("%s: wrong number of arguments (%d)", name, len(args))
	}
	return b.Fn(ctx, rec, args)
}

// LookupBuiltin returns the builtin registered under name (already
// lower-cased by the parser). The compiled-plan engine uses it to resolve
// builtins once at compile time instead of per call.
func LookupBuiltin(name string) (Builtin, bool) {
	b, ok := builtins[name]
	return b, ok
}

// CallExternal invokes a context-registered external function with
// already-evaluated arguments, tallying the call for integration-effort
// accounting and recording the transform event; an unregistered name is the
// interpreter's "unknown function" error. Shared by both engines.
func CallExternal(ctx *Context, rec *explain.Recorder, name string, args []Sequence) (Sequence, error) {
	if ext, ok := ctx.external[name]; ok {
		ctx.Called[ext.Name]++
		if rec != nil {
			rec.Event(explain.KindTransform, ext.Name,
				explain.A("complexity", strconv.Itoa(ext.Complexity)))
		}
		return ext.Fn(args)
	}
	return nil, dynErrf("unknown function %s()", name)
}

func arg0String(args []Sequence) string {
	if len(args) == 0 || len(args[0]) == 0 {
		return ""
	}
	return ItemString(args[0][0])
}

func argString(args []Sequence, i int) string {
	if i >= len(args) || len(args[i]) == 0 {
		return ""
	}
	return ItemString(args[i][0])
}

var builtins map[string]Builtin

func init() {
	builtins = map[string]Builtin{
		"doc": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			uri := arg0String(args)
			if ctx.Resolve == nil {
				return nil, dynErrf("doc(%q): no document resolver configured", uri)
			}
			d, err := ctx.Resolve(uri)
			if err != nil {
				return nil, dynErrf("doc(%q): %v", uri, err)
			}
			if rec != nil {
				rec.Event(explain.KindDoc, uri)
			}
			return Sequence{d}, nil
		}},
		"contains": {2, 2, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{strings.Contains(argString(args, 0), argString(args, 1))}, nil
		}},
		"starts-with": {2, 2, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{strings.HasPrefix(argString(args, 0), argString(args, 1))}, nil
		}},
		"ends-with": {2, 2, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{strings.HasSuffix(argString(args, 0), argString(args, 1))}, nil
		}},
		"substring": {2, 3, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			s := argString(args, 0)
			start, ok := itemNumber(argString(args, 1))
			if !ok {
				return nil, dynErrf("substring: non-numeric start")
			}
			from := int(start) - 1
			if from < 0 {
				from = 0
			}
			if from > len(s) {
				return Sequence{""}, nil
			}
			if len(args) == 3 {
				n, ok := itemNumber(argString(args, 2))
				if !ok {
					return nil, dynErrf("substring: non-numeric length")
				}
				to := from + int(n)
				if to > len(s) {
					to = len(s)
				}
				if to < from {
					to = from
				}
				return Sequence{s[from:to]}, nil
			}
			return Sequence{s[from:]}, nil
		}},
		"substring-before": {2, 2, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			s, sep := argString(args, 0), argString(args, 1)
			if i := strings.Index(s, sep); i >= 0 {
				return Sequence{s[:i]}, nil
			}
			return Sequence{""}, nil
		}},
		"substring-after": {2, 2, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			s, sep := argString(args, 0), argString(args, 1)
			if i := strings.Index(s, sep); i >= 0 {
				return Sequence{s[i+len(sep):]}, nil
			}
			return Sequence{""}, nil
		}},
		"string-length": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{float64(len(arg0String(args)))}, nil
		}},
		"upper-case": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{strings.ToUpper(arg0String(args))}, nil
		}},
		"lower-case": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{strings.ToLower(arg0String(args))}, nil
		}},
		"normalize-space": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{strings.Join(strings.Fields(arg0String(args)), " ")}, nil
		}},
		"translate": {3, 3, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			s, from, to := argString(args, 0), argString(args, 1), argString(args, 2)
			fr, tr := []rune(from), []rune(to)
			var b strings.Builder
			for _, r := range s {
				idx := -1
				for i, f := range fr {
					if f == r {
						idx = i
						break
					}
				}
				if idx < 0 {
					b.WriteRune(r)
				} else if idx < len(tr) {
					b.WriteRune(tr[idx])
				}
			}
			return Sequence{b.String()}, nil
		}},
		"concat": {2, -1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			var b strings.Builder
			for i := range args {
				b.WriteString(argString(args, i))
			}
			return Sequence{b.String()}, nil
		}},
		"string-join": {2, 2, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			sep := argString(args, 1)
			parts := make([]string, len(args[0]))
			for i, item := range args[0] {
				parts[i] = ItemString(item)
			}
			return Sequence{strings.Join(parts, sep)}, nil
		}},
		"string": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{arg0String(args)}, nil
		}},
		"number": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			if len(args[0]) == 0 {
				return nil, nil
			}
			n, ok := itemNumber(args[0][0])
			if !ok {
				return nil, dynErrf("number(%q): not numeric", ItemString(args[0][0]))
			}
			return Sequence{n}, nil
		}},
		"count": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{float64(len(args[0]))}, nil
		}},
		"sum": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			total := 0.0
			for _, item := range args[0] {
				n, ok := itemNumber(item)
				if !ok {
					return nil, dynErrf("sum: non-numeric item %q", ItemString(item))
				}
				total += n
			}
			return Sequence{total}, nil
		}},
		"avg": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			if len(args[0]) == 0 {
				return nil, nil
			}
			total := 0.0
			for _, item := range args[0] {
				n, ok := itemNumber(item)
				if !ok {
					return nil, dynErrf("avg: non-numeric item %q", ItemString(item))
				}
				total += n
			}
			return Sequence{total / float64(len(args[0]))}, nil
		}},
		"min": {1, 1, extremum(func(a, b float64) bool { return a < b })},
		"max": {1, 1, extremum(func(a, b float64) bool { return a > b })},
		"distinct-values": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			seen := map[string]bool{}
			var out Sequence
			for _, item := range args[0] {
				s := ItemString(item)
				if !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
			}
			return out, nil
		}},
		"not": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{!EffectiveBool(args[0])}, nil
		}},
		"true": {0, 0, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{true}, nil
		}},
		"false": {0, 0, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{false}, nil
		}},
		"exists": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{len(args[0]) > 0}, nil
		}},
		"empty": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			return Sequence{len(args[0]) == 0}, nil
		}},
		"name": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			if len(args[0]) == 0 {
				return Sequence{""}, nil
			}
			switch v := args[0][0].(type) {
			case *xmldom.Element:
				return Sequence{v.Name}, nil
			case AttrRef:
				return Sequence{v.Name}, nil
			default:
				return Sequence{""}, nil
			}
		}},
		"local-name": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			if len(args[0]) == 0 {
				return Sequence{""}, nil
			}
			if el, ok := args[0][0].(*xmldom.Element); ok {
				return Sequence{el.LocalName()}, nil
			}
			return Sequence{""}, nil
		}},
		"data": {1, 1, func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
			out := make(Sequence, len(args[0]))
			for i, item := range args[0] {
				out[i] = ItemString(item)
			}
			return out, nil
		}},
	}
}

func extremum(better func(a, b float64) bool) BuiltinFunc {
	return func(ctx *Context, rec *explain.Recorder, args []Sequence) (Sequence, error) {
		if len(args[0]) == 0 {
			return nil, nil
		}
		best, ok := itemNumber(args[0][0])
		if !ok {
			return nil, dynErrf("min/max: non-numeric item")
		}
		for _, item := range args[0][1:] {
			n, ok := itemNumber(item)
			if !ok {
				return nil, dynErrf("min/max: non-numeric item")
			}
			if better(n, best) {
				best = n
			}
		}
		return Sequence{best}, nil
	}
}
