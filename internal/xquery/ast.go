package xquery

// Expr is a parsed XQuery expression.
type Expr interface {
	exprNode()
}

// FLWOR is a for/let/where/order by/return expression.
type FLWOR struct {
	Fors    []ForBinding
	Lets    []LetBinding
	Where   Expr // nil if absent
	OrderBy *OrderSpec
	Return  Expr
}

// ForBinding binds a variable to each item of a sequence in turn.
type ForBinding struct {
	Var string
	In  Expr
}

// LetBinding binds a variable to a whole sequence.
type LetBinding struct {
	Var string
	Val Expr
}

// OrderSpec sorts the tuple stream by a key expression.
type OrderSpec struct {
	Key        Expr
	Descending bool
}

// PathExpr applies a series of steps to an initial expression (the root).
// Root may be nil for paths that begin with a step relative to the context
// item (not used by the benchmark queries but supported in predicates).
type PathExpr struct {
	Root  Expr
	Steps []Step
}

// StepAxis selects how a step navigates from a context node.
type StepAxis int

// Axes supported by the subset.
const (
	AxisChild StepAxis = iota
	AxisDescendant
	AxisAttribute
)

// Step is one navigation step with optional predicates.
type Step struct {
	Axis StepAxis
	// Name is the element or attribute name to match; "*" matches any.
	Name       string
	Predicates []Expr
}

// VarRef references a bound variable.
type VarRef struct{ Name string }

// StringLit is a string literal.
type StringLit struct{ Val string }

// NumberLit is a numeric literal.
type NumberLit struct{ Val float64 }

// Binary is a binary operation: comparison, boolean, or arithmetic.
type Binary struct {
	Op   string // "=", "!=", "<", "<=", ">", ">=", "and", "or", "+", "-", "*", "div", "mod", "to"
	L, R Expr
}

// Unary is numeric negation.
type Unary struct {
	Op string // "-"
	X  Expr
}

// Call is a function call.
type Call struct {
	Name string
	Args []Expr
}

// SeqExpr is a comma sequence (a, b, c).
type SeqExpr struct{ Items []Expr }

// ElemCtor is a direct element constructor with literal and computed content.
type ElemCtor struct {
	Name  string
	Attrs []CtorAttr
	// Content items are StringLit (literal text), embedded Exprs from {...},
	// or nested *ElemCtor values.
	Content []Expr
}

// CtorAttr is an attribute in a direct constructor; its value parts are
// literal strings and embedded expressions.
type CtorAttr struct {
	Name  string
	Parts []Expr
}

// Quantified is a some/every expression (used by integration mappings).
type Quantified struct {
	Every bool // false = some
	Var   string
	In    Expr
	Sat   Expr
}

// IfExpr is if (cond) then a else b.
type IfExpr struct {
	Cond, Then, Else Expr
}

func (*FLWOR) exprNode()      {}
func (*PathExpr) exprNode()   {}
func (*VarRef) exprNode()     {}
func (*StringLit) exprNode()  {}
func (*NumberLit) exprNode()  {}
func (*Binary) exprNode()     {}
func (*Unary) exprNode()      {}
func (*Call) exprNode()       {}
func (*SeqExpr) exprNode()    {}
func (*ElemCtor) exprNode()   {}
func (*Quantified) exprNode() {}
func (*IfExpr) exprNode()     {}
