package xquery

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"thalia/internal/explain"
	"thalia/internal/xmldom"
)

// Item is one member of a sequence: *xmldom.Element, AttrRef, string,
// float64, or bool.
type Item interface{}

// AttrRef is an attribute node produced by the attribute axis.
type AttrRef struct {
	Owner *xmldom.Element
	Name  string
	Value string
}

// Sequence is the XQuery value: an ordered sequence of items.
type Sequence []Item

// DocResolver maps a doc() URI to a document. THALIA binds this to the
// testbed, so that doc("cmu.xml") yields the extracted CMU catalog.
type DocResolver func(uri string) (*xmldom.Document, error)

// ExternalFunc is a user-defined function made available to queries. The
// benchmark's scoring function charges an integration system for every
// external function it needs, at a declared complexity of low (1), medium
// (2), or high (3); Complexity records that declaration.
type ExternalFunc struct {
	Name string
	// Complexity is the scoring weight: 1 low, 2 medium, 3 high.
	Complexity int
	Fn         func(args []Sequence) (Sequence, error)
}

// Context supplies everything a query evaluation needs beyond the query.
type Context struct {
	// Resolve implements the doc() function; nil makes doc() an error.
	Resolve DocResolver

	// Explain, when non-nil, receives operator-level spans (FLWOR clauses,
	// path steps, function calls, constructors — with rows in/out) and
	// document/transform provenance events. Every instrumentation site is
	// guarded by a nil check, so the nil default adds no allocations to
	// evaluation — the explain package's zero-overhead contract.
	Explain *explain.Recorder

	// vars holds the global bindings as ordered slots rather than a map:
	// Bind appends, lookup scans from the end. Repeated Bind calls of the
	// same name therefore shadow deterministically (latest wins) — the same
	// slot discipline the compiled-plan engine uses for its lexical scopes,
	// so both engines resolve shadowed bindings identically.
	vars     []slotBinding
	external map[string]*ExternalFunc
	// Called tallies external-function invocations by name, feeding the
	// benchmark's integration-effort accounting.
	Called map[string]int
}

// slotBinding is one ordered global binding slot.
type slotBinding struct {
	name string
	val  Sequence
}

// NewContext returns a context resolving documents through resolve.
func NewContext(resolve DocResolver) *Context {
	return &Context{
		Resolve:  resolve,
		external: make(map[string]*ExternalFunc),
		Called:   make(map[string]int),
	}
}

// Bind sets a global variable visible to the query. Binding an already-bound
// name appends a new slot that shadows the old one.
func (c *Context) Bind(name string, val Sequence) {
	c.vars = append(c.vars, slotBinding{name: name, val: val})
}

// Var returns the value of a global bound with Bind, honoring shadowing:
// the latest binding of a name wins. Both engines resolve free variables
// through it.
func (c *Context) Var(name string) (Sequence, bool) {
	for i := len(c.vars) - 1; i >= 0; i-- {
		if c.vars[i].name == name {
			return c.vars[i].val, true
		}
	}
	return nil, false
}

// Register makes an external function callable from queries. Names are
// case-insensitive like builtins.
func (c *Context) Register(f *ExternalFunc) {
	c.external[strings.ToLower(f.Name)] = f
}

// DynamicError is a runtime evaluation failure.
type DynamicError struct{ Msg string }

// Error implements error.
func (e *DynamicError) Error() string { return "xquery: " + e.Msg }

func dynErrf(format string, args ...any) error {
	return &DynamicError{Msg: fmt.Sprintf(format, args...)}
}

// env is a chain of variable bindings layered over the context's globals.
type env struct {
	parent *env
	name   string
	val    Sequence
}

func (e *env) bind(name string, val Sequence) *env {
	return &env{parent: e, name: name, val: val}
}

func (e *env) lookup(name string) (Sequence, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur.val, true
		}
	}
	return nil, false
}

// Eval evaluates a parsed expression in the given context.
func Eval(expr Expr, ctx *Context) (Sequence, error) {
	ev := &evaluator{ctx: ctx, rec: ctx.Explain}
	return ev.eval(expr, nil)
}

// EvalQuery parses and evaluates src in one step.
func EvalQuery(src string, ctx *Context) (Sequence, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(e, ctx)
}

type evaluator struct {
	ctx *Context
	// rec mirrors ctx.Explain; nil on the hot zero-overhead path.
	rec *explain.Recorder
}

func (ev *evaluator) lookupVar(name string, en *env) (Sequence, error) {
	if v, ok := en.lookup(name); ok {
		return v, nil
	}
	if v, ok := ev.ctx.Var(name); ok {
		return v, nil
	}
	return nil, dynErrf("unbound variable $%s", name)
}

func (ev *evaluator) eval(expr Expr, en *env) (Sequence, error) {
	switch e := expr.(type) {
	case *StringLit:
		return Sequence{e.Val}, nil
	case *NumberLit:
		return Sequence{e.Val}, nil
	case *VarRef:
		return ev.lookupVar(e.Name, en)
	case *SeqExpr:
		var out Sequence
		for _, item := range e.Items {
			s, err := ev.eval(item, en)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	case *Unary:
		return ev.evalUnary(e, en)
	case *Binary:
		return ev.evalBinary(e, en)
	case *PathExpr:
		return ev.evalPath(e, en)
	case *FLWOR:
		return ev.evalFLWOR(e, en)
	case *Call:
		return ev.evalCall(e, en)
	case *ElemCtor:
		el, err := ev.construct(e, en)
		if err != nil {
			return nil, err
		}
		return Sequence{el}, nil
	case *Quantified:
		return ev.evalQuantified(e, en)
	case *IfExpr:
		c, err := ev.eval(e.Cond, en)
		if err != nil {
			return nil, err
		}
		if EffectiveBool(c) {
			return ev.eval(e.Then, en)
		}
		return ev.eval(e.Else, en)
	default:
		return nil, dynErrf("unhandled expression %T", expr)
	}
}

func (ev *evaluator) evalUnary(e *Unary, en *env) (Sequence, error) {
	s, err := ev.eval(e.X, en)
	if err != nil {
		return nil, err
	}
	if len(s) == 0 {
		return nil, nil
	}
	n, ok := itemNumber(s[0])
	if !ok {
		return nil, dynErrf("cannot negate %v", s[0])
	}
	return Sequence{-n}, nil
}

func (ev *evaluator) evalBinary(e *Binary, en *env) (Sequence, error) {
	switch e.Op {
	case "and":
		l, err := ev.eval(e.L, en)
		if err != nil {
			return nil, err
		}
		if !EffectiveBool(l) {
			return Sequence{false}, nil
		}
		r, err := ev.eval(e.R, en)
		if err != nil {
			return nil, err
		}
		return Sequence{EffectiveBool(r)}, nil
	case "or":
		l, err := ev.eval(e.L, en)
		if err != nil {
			return nil, err
		}
		if EffectiveBool(l) {
			return Sequence{true}, nil
		}
		r, err := ev.eval(e.R, en)
		if err != nil {
			return nil, err
		}
		return Sequence{EffectiveBool(r)}, nil
	}
	l, err := ev.eval(e.L, en)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(e.R, en)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		return Sequence{generalCompare(e.Op, l, r)}, nil
	case "+", "-", "*", "div", "mod":
		return arith(e.Op, l, r)
	default:
		return nil, dynErrf("unknown operator %q", e.Op)
	}
}

// generalCompare implements XQuery general comparison: existential over the
// two sequences with untyped atomization. As an extension for the paper's
// benchmark queries, an equality whose literal side contains '%' is treated
// as a SQL LIKE match ('%Database%' means "contains Database").
func generalCompare(op string, l, r Sequence) bool {
	for _, li := range l {
		for _, ri := range r {
			if atomicCompare(op, li, ri) {
				return true
			}
		}
	}
	return false
}

func atomicCompare(op string, a, b Item) bool {
	as, bs := ItemString(a), ItemString(b)
	if op == "=" || op == "!=" {
		if isLikePattern(bs) {
			m := likeMatch(bs, as)
			if op == "!=" {
				return !m
			}
			return m
		}
		if isLikePattern(as) {
			m := likeMatch(as, bs)
			if op == "!=" {
				return !m
			}
			return m
		}
	}
	an, aok := itemNumber(a)
	bn, bok := itemNumber(b)
	if aok && bok {
		switch op {
		case "=":
			return an == bn
		case "!=":
			return an != bn
		case "<":
			return an < bn
		case "<=":
			return an <= bn
		case ">":
			return an > bn
		case ">=":
			return an >= bn
		}
	}
	switch op {
	case "=":
		return as == bs
	case "!=":
		return as != bs
	case "<":
		return as < bs
	case "<=":
		return as <= bs
	case ">":
		return as > bs
	case ">=":
		return as >= bs
	}
	return false
}

// isLikePattern reports whether s is a SQL-LIKE pattern as used by the
// benchmark queries ('%Database%', '%JR%', ...).
func isLikePattern(s string) bool { return strings.Contains(s, "%") }

// likeMatch evaluates a SQL LIKE pattern (with % wildcards only, which is
// all the benchmark uses) against a value, case-sensitively.
func likeMatch(pattern, value string) bool {
	parts := strings.Split(pattern, "%")
	pos := 0
	for i, part := range parts {
		if part == "" {
			continue
		}
		idx := strings.Index(value[pos:], part)
		if idx < 0 {
			return false
		}
		if i == 0 && idx != 0 {
			return false // no leading % means anchored prefix
		}
		pos += idx + len(part)
	}
	if last := parts[len(parts)-1]; last != "" && !strings.HasSuffix(value, last) {
		return false
	}
	return true
}

func arith(op string, l, r Sequence) (Sequence, error) {
	if len(l) == 0 || len(r) == 0 {
		return nil, nil
	}
	a, aok := itemNumber(l[0])
	b, bok := itemNumber(r[0])
	if !aok || !bok {
		return nil, dynErrf("arithmetic on non-numeric values %q %s %q", ItemString(l[0]), op, ItemString(r[0]))
	}
	switch op {
	case "+":
		return Sequence{a + b}, nil
	case "-":
		return Sequence{a - b}, nil
	case "*":
		return Sequence{a * b}, nil
	case "div":
		if b == 0 {
			return nil, dynErrf("division by zero")
		}
		return Sequence{a / b}, nil
	case "mod":
		if b == 0 {
			return nil, dynErrf("modulo by zero")
		}
		return Sequence{math.Mod(a, b)}, nil
	}
	return nil, dynErrf("unknown arithmetic operator %q", op)
}

func (ev *evaluator) evalPath(e *PathExpr, en *env) (Sequence, error) {
	var sp *explain.Span
	if ev.rec != nil {
		sp = ev.rec.Begin(explain.KindPath, pathName(e))
	}
	var cur Sequence
	if e.Root != nil {
		s, err := ev.eval(e.Root, en)
		if err != nil {
			return nil, err
		}
		cur = s
	} else {
		// Relative path: the context item is bound as $. by predicates.
		if v, ok := en.lookup("."); ok {
			cur = v
		} else {
			return nil, dynErrf("relative path with no context item")
		}
	}
	for _, st := range e.Steps {
		var ssp *explain.Span
		if ev.rec != nil {
			ssp = ev.rec.Begin(explain.KindStep, stepName(st))
		}
		next, err := ev.step(cur, st, en)
		if err != nil {
			return nil, err
		}
		if ssp != nil {
			ssp.SetRows(len(cur), len(next))
			ssp.End()
		}
		cur = next
	}
	if sp != nil {
		sp.SetRows(-1, len(cur))
		sp.End()
	}
	return cur, nil
}

func (ev *evaluator) step(in Sequence, st Step, en *env) (Sequence, error) {
	var out Sequence
	for _, item := range in {
		// A document node's only child is its root element.
		if doc, ok := item.(*xmldom.Document); ok {
			switch st.Axis {
			case AxisChild:
				if st.Name == "*" || doc.Root.Name == st.Name {
					out = append(out, doc.Root)
				}
			case AxisDescendant:
				if st.Name == "*" || doc.Root.Name == st.Name {
					out = append(out, doc.Root)
				}
				for _, c := range doc.Root.Descendants(st.Name) {
					out = append(out, c)
				}
			}
			continue
		}
		el, ok := item.(*xmldom.Element)
		if !ok {
			continue
		}
		switch st.Axis {
		case AxisChild:
			for _, c := range el.ChildElements() {
				if st.Name == "*" || c.Name == st.Name {
					out = append(out, c)
				}
			}
		case AxisDescendant:
			for _, c := range el.Descendants(st.Name) {
				out = append(out, c)
			}
		case AxisAttribute:
			if st.Name == "*" {
				for _, a := range el.Attrs {
					out = append(out, AttrRef{Owner: el, Name: a.Name, Value: a.Value})
				}
			} else if v, ok := el.Attr(st.Name); ok {
				out = append(out, AttrRef{Owner: el, Name: st.Name, Value: v})
			}
		}
	}
	for _, pred := range st.Predicates {
		filtered, err := ev.filter(out, pred, en)
		if err != nil {
			return nil, err
		}
		out = filtered
	}
	return out, nil
}

// filter applies one predicate to a sequence: numeric predicates select by
// position (1-based); anything else is an effective-boolean filter with the
// context item bound to "$.".
func (ev *evaluator) filter(in Sequence, pred Expr, en *env) (Sequence, error) {
	if n, ok := pred.(*NumberLit); ok {
		idx := int(n.Val)
		if idx >= 1 && idx <= len(in) {
			return Sequence{in[idx-1]}, nil
		}
		return nil, nil
	}
	var out Sequence
	for _, item := range in {
		s, err := ev.eval(pred, en.bind(".", Sequence{item}))
		if err != nil {
			return nil, err
		}
		// A predicate evaluating to a number is positional even when
		// computed; unsupported in this subset, so treat as boolean.
		if EffectiveBool(s) {
			out = append(out, item)
		}
	}
	return out, nil
}

func (ev *evaluator) evalFLWOR(f *FLWOR, en *env) (Sequence, error) {
	type tuple struct {
		en  *env
		key Sequence
	}
	var sp *explain.Span
	if ev.rec != nil {
		sp = ev.rec.Begin(explain.KindFLWOR, "flwor")
		defer sp.End()
	}
	tuples := []*env{en}
	for _, fb := range f.Fors {
		var csp *explain.Span
		if ev.rec != nil {
			csp = ev.rec.Begin(explain.KindClause, "for $"+fb.Var)
		}
		var next []*env
		for _, t := range tuples {
			seq, err := ev.eval(fb.In, t)
			if err != nil {
				return nil, err
			}
			for _, item := range seq {
				next = append(next, t.bind(fb.Var, Sequence{item}))
			}
		}
		if csp != nil {
			csp.SetRows(len(tuples), len(next))
			csp.End()
		}
		tuples = next
	}
	for _, lb := range f.Lets {
		var csp *explain.Span
		if ev.rec != nil {
			csp = ev.rec.Begin(explain.KindClause, "let $"+lb.Var)
		}
		var next []*env
		for _, t := range tuples {
			val, err := ev.eval(lb.Val, t)
			if err != nil {
				return nil, err
			}
			next = append(next, t.bind(lb.Var, val))
		}
		if csp != nil {
			csp.SetRows(len(tuples), len(next))
			csp.End()
		}
		tuples = next
	}
	if f.Where != nil {
		var csp *explain.Span
		if ev.rec != nil {
			csp = ev.rec.Begin(explain.KindClause, "where")
		}
		var kept []*env
		for _, t := range tuples {
			cond, err := ev.eval(f.Where, t)
			if err != nil {
				return nil, err
			}
			if EffectiveBool(cond) {
				kept = append(kept, t)
			}
		}
		if csp != nil {
			csp.SetRows(len(tuples), len(kept))
			csp.End()
		}
		tuples = kept
	}
	if f.OrderBy != nil {
		var csp *explain.Span
		if ev.rec != nil {
			csp = ev.rec.Begin(explain.KindClause, "order by")
		}
		keyed := make([]tuple, len(tuples))
		for i, t := range tuples {
			k, err := ev.eval(f.OrderBy.Key, t)
			if err != nil {
				return nil, err
			}
			keyed[i] = tuple{en: t, key: k}
		}
		sort.SliceStable(keyed, func(i, j int) bool {
			less := sequenceLess(keyed[i].key, keyed[j].key)
			if f.OrderBy.Descending {
				return sequenceLess(keyed[j].key, keyed[i].key)
			}
			return less
		})
		for i := range keyed {
			tuples[i] = keyed[i].en
		}
		if csp != nil {
			csp.SetRows(len(tuples), len(tuples))
			csp.End()
		}
	}
	var rsp *explain.Span
	if ev.rec != nil {
		rsp = ev.rec.Begin(explain.KindClause, "return")
	}
	var out Sequence
	for _, t := range tuples {
		s, err := ev.eval(f.Return, t)
		if err != nil {
			return nil, err
		}
		out = append(out, s...)
	}
	if rsp != nil {
		rsp.SetRows(len(tuples), len(out))
		rsp.End()
	}
	return out, nil
}

func sequenceLess(a, b Sequence) bool {
	as, bs := "", ""
	if len(a) > 0 {
		as = ItemString(a[0])
	}
	if len(b) > 0 {
		bs = ItemString(b[0])
	}
	an, aok := strconv.ParseFloat(as, 64)
	bn, bok := strconv.ParseFloat(bs, 64)
	if aok == nil && bok == nil {
		return an < bn
	}
	return as < bs
}

func (ev *evaluator) evalQuantified(q *Quantified, en *env) (Sequence, error) {
	seq, err := ev.eval(q.In, en)
	if err != nil {
		return nil, err
	}
	for _, item := range seq {
		s, err := ev.eval(q.Sat, en.bind(q.Var, Sequence{item}))
		if err != nil {
			return nil, err
		}
		ok := EffectiveBool(s)
		if q.Every && !ok {
			return Sequence{false}, nil
		}
		if !q.Every && ok {
			return Sequence{true}, nil
		}
	}
	return Sequence{q.Every}, nil
}

// construct builds a new element from a direct constructor. Node content is
// deep-copied, per XQuery's copy semantics.
func (ev *evaluator) construct(c *ElemCtor, en *env) (*xmldom.Element, error) {
	if ev.rec != nil {
		sp := ev.rec.Begin(explain.KindConstruct, "<"+c.Name+">")
		defer sp.End()
	}
	el := xmldom.NewElement(c.Name)
	for _, a := range c.Attrs {
		var b strings.Builder
		for _, part := range a.Parts {
			s, err := ev.eval(part, en)
			if err != nil {
				return nil, err
			}
			b.WriteString(sequenceString(s))
		}
		el.SetAttr(a.Name, b.String())
	}
	for _, content := range c.Content {
		switch cc := content.(type) {
		case *StringLit:
			el.AppendText(cc.Val)
		case *ElemCtor:
			child, err := ev.construct(cc, en)
			if err != nil {
				return nil, err
			}
			el.Append(child)
		default:
			s, err := ev.eval(content, en)
			if err != nil {
				return nil, err
			}
			appendSequence(el, s)
		}
	}
	return el, nil
}

// appendSequence adds evaluated content to an element under construction:
// nodes are copied, adjacent atomic values are joined with spaces into text.
func appendSequence(el *xmldom.Element, s Sequence) {
	var atoms []string
	flush := func() {
		if len(atoms) > 0 {
			el.AppendText(strings.Join(atoms, " "))
			atoms = nil
		}
	}
	for _, item := range s {
		switch v := item.(type) {
		case *xmldom.Element:
			flush()
			el.Append(v.Clone())
		case AttrRef:
			el.SetAttr(v.Name, v.Value)
		default:
			atoms = append(atoms, ItemString(item))
		}
	}
	flush()
}

// EffectiveBool computes the effective boolean value of a sequence.
func EffectiveBool(s Sequence) bool {
	if len(s) == 0 {
		return false
	}
	if _, ok := s[0].(*xmldom.Element); ok {
		return true
	}
	if _, ok := s[0].(*xmldom.Document); ok {
		return true
	}
	if _, ok := s[0].(AttrRef); ok {
		return true
	}
	if len(s) > 1 {
		return true
	}
	switch v := s[0].(type) {
	case bool:
		return v
	case string:
		return v != ""
	case float64:
		return v != 0 && !math.IsNaN(v)
	default:
		return true
	}
}

// ItemString atomizes one item to its string value.
func ItemString(item Item) string {
	switch v := item.(type) {
	case *xmldom.Document:
		return v.Root.DeepText()
	case *xmldom.Element:
		return v.DeepText()
	case AttrRef:
		return v.Value
	case string:
		return v
	case float64:
		return formatNumber(v)
	case bool:
		if v {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// sequenceString atomizes a whole sequence, space-joined. Empty and
// single-item sequences — the common comparison operands — skip the
// parts-slice-and-join allocation entirely.
func sequenceString(s Sequence) string {
	switch len(s) {
	case 0:
		return ""
	case 1:
		return ItemString(s[0])
	}
	parts := make([]string, len(s))
	for i, item := range s {
		parts[i] = ItemString(item)
	}
	return strings.Join(parts, " ")
}

func itemNumber(item Item) (float64, bool) {
	switch v := item.(type) {
	case float64:
		return v, true
	case bool:
		if v {
			return 1, true
		}
		return 0, true
	default:
		s := strings.TrimSpace(ItemString(item))
		n, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, false
		}
		return n, true
	}
}

// formatNumber renders a float like XQuery renders xs:decimal: integers
// without a decimal point.
func formatNumber(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
