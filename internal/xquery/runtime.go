package xquery

import (
	"thalia/internal/xmldom"
)

// This file exports the interpreter's value-level semantics for the
// compiled-plan engine in internal/xquery/plan. The two engines must agree
// item-for-item — the differential conformance suite and FuzzCompileEval
// enforce it — so everything below delegates to the single implementation
// the interpreter itself runs on, rather than duplicating it.

// DynErrorf builds a *DynamicError, the runtime failure class both engines
// report. The plan engine uses it so interpreter and compiled evaluations of
// the same bad input fail with the same error class and message.
func DynErrorf(format string, args ...any) error {
	return dynErrf(format, args...)
}

// GeneralCompare implements XQuery general comparison (existential over both
// sequences, with the benchmark's SQL-LIKE '%' extension on equality).
func GeneralCompare(op string, l, r Sequence) bool {
	return generalCompare(op, l, r)
}

// Arith applies a binary arithmetic operator with the interpreter's empty-
// sequence and division-by-zero semantics.
func Arith(op string, l, r Sequence) (Sequence, error) {
	return arith(op, l, r)
}

// SequenceLess is the order-by comparison: first items compared numerically
// when both parse as numbers, as strings otherwise.
func SequenceLess(a, b Sequence) bool {
	return sequenceLess(a, b)
}

// SequenceString atomizes a whole sequence, space-joined — the constructor
// attribute-value semantics.
func SequenceString(s Sequence) string {
	return sequenceString(s)
}

// ItemNumber atomizes one item to a number when possible.
func ItemNumber(item Item) (float64, bool) {
	return itemNumber(item)
}

// AppendContent adds evaluated content to an element under construction:
// nodes are deep-copied, attribute nodes become attributes, and adjacent
// atomic values are joined with spaces into one text node.
func AppendContent(el *xmldom.Element, s Sequence) {
	appendSequence(el, s)
}
