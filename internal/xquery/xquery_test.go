package xquery

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"thalia/internal/xmldom"
)

// testDocs is a tiny two-source corpus in the shape of the paper's examples.
var testDocs = map[string]string{
	"cmu.xml": `<cmu>
		<Course>
			<CourseNumber>15-415</CourseNumber>
			<CourseTitle>Database System Design and Implementation</CourseTitle>
			<Lecturer>Ailamaki</Lecturer>
			<Units>12</Units>
			<Time>1:30 - 2:50</Time>
			<Day>F</Day>
		</Course>
		<Course>
			<CourseNumber>15-567</CourseNumber>
			<CourseTitle>Secure Software Systems</CourseTitle>
			<Lecturer>Song/Wing</Lecturer>
			<Units>9</Units>
			<Time>3:00 - 4:20</Time>
			<Day>MW</Day>
		</Course>
		<Course>
			<CourseNumber>15-744</CourseNumber>
			<CourseTitle>Computer Networks</CourseTitle>
			<Lecturer>Zhang</Lecturer>
			<Units>12</Units>
			<Time>10:30 - 11:50</Time>
			<Day>TTh</Day>
		</Course>
	</cmu>`,
	"gatech.xml": `<gatech>
		<Course>
			<CRN>20381</CRN>
			<Instructor>Mark</Instructor>
			<Title>Intro-Network Management</Title>
			<Restrictions>JR or SR</Restrictions>
		</Course>
		<Course>
			<CRN>20432</CRN>
			<Instructor>Leo</Instructor>
			<Title>Database Systems</Title>
			<Restrictions></Restrictions>
		</Course>
	</gatech>`,
	"umd.xml": `<umd>
		<Course>
			<CourseNum>CMSC420</CourseNum>
			<CourseName>Data Structures</CourseName>
			<Section>
				<SectionNum>0101</SectionNum>
				<Teacher>Mount, D.</Teacher>
				<Time room="KEY0106">MWF 10</Time>
			</Section>
			<Section>
				<SectionNum>0201</SectionNum>
				<Teacher>Smith, A.</Teacher>
				<Time room="EGR2154">TTh 2</Time>
			</Section>
		</Course>
	</umd>`,
}

func testContext(t testing.TB) *Context {
	parsed := make(map[string]*xmldom.Document, len(testDocs))
	for name, src := range testDocs {
		parsed[name] = xmldom.MustParse(src)
	}
	return NewContext(func(uri string) (*xmldom.Document, error) {
		d, ok := parsed[uri]
		if !ok {
			return nil, fmt.Errorf("no such document %q", uri)
		}
		return d, nil
	})
}

func evalStrings(t *testing.T, query string) []string {
	t.Helper()
	seq, err := EvalQuery(query, testContext(t))
	if err != nil {
		t.Fatalf("EvalQuery(%q): %v", query, err)
	}
	out := make([]string, len(seq))
	for i, item := range seq {
		out[i] = ItemString(item)
	}
	return out
}

func TestPaperQueryShape(t *testing.T) {
	// The exact shape of the paper's Query 1.
	got := evalStrings(t, `FOR $b in doc("gatech.xml")/gatech/Course
		WHERE $b/Instructor = "Mark"
		RETURN $b`)
	if len(got) != 1 || !strings.Contains(got[0], "Intro-Network Management") {
		t.Errorf("query 1 shape: got %v", got)
	}
}

func TestLikePatternEquality(t *testing.T) {
	// The paper writes WHERE $b/CourseName='%Data Structures%'.
	got := evalStrings(t, `FOR $b in doc("cmu.xml")/cmu/Course
		WHERE $b/CourseTitle = '%Database%'
		RETURN $b/CourseNumber`)
	if len(got) != 1 || got[0] != "15-415" {
		t.Errorf("LIKE equality: got %v", got)
	}
	// Anchored patterns.
	got = evalStrings(t, `FOR $b in doc("cmu.xml")/cmu/Course
		WHERE $b/CourseTitle = 'Computer%'
		RETURN $b/CourseNumber`)
	if len(got) != 1 || got[0] != "15-744" {
		t.Errorf("prefix LIKE: got %v", got)
	}
	// Negated LIKE.
	got = evalStrings(t, `FOR $b in doc("cmu.xml")/cmu/Course
		WHERE $b/CourseTitle != '%Database%'
		RETURN $b/CourseNumber`)
	if len(got) != 2 {
		t.Errorf("negated LIKE: got %v", got)
	}
}

func TestNumericComparison(t *testing.T) {
	got := evalStrings(t, `FOR $b in doc("cmu.xml")/cmu/Course
		WHERE $b/Units > 10
		RETURN $b/CourseNumber`)
	if len(got) != 2 || got[0] != "15-415" || got[1] != "15-744" {
		t.Errorf("numeric >: got %v", got)
	}
	got = evalStrings(t, `FOR $b in doc("cmu.xml")/cmu/Course
		WHERE $b/Units >= 9 and $b/Units <= 9
		RETURN $b/Lecturer`)
	if len(got) != 1 || got[0] != "Song/Wing" {
		t.Errorf("and-combined: got %v", got)
	}
}

func TestDescendantAxisAndAttributes(t *testing.T) {
	got := evalStrings(t, `FOR $s in doc("umd.xml")//Section RETURN $s/Teacher`)
	if len(got) != 2 {
		t.Fatalf("descendants: got %v", got)
	}
	got = evalStrings(t, `FOR $x in doc("umd.xml")//Time RETURN $x/@room`)
	if len(got) != 2 || got[0] != "KEY0106" || got[1] != "EGR2154" {
		t.Errorf("attributes: got %v", got)
	}
}

func TestPredicates(t *testing.T) {
	got := evalStrings(t, `doc("cmu.xml")/cmu/Course[Units > 10]/CourseTitle`)
	if len(got) != 2 {
		t.Errorf("boolean predicate: got %v", got)
	}
	got = evalStrings(t, `doc("cmu.xml")/cmu/Course[2]/Lecturer`)
	if len(got) != 1 || got[0] != "Song/Wing" {
		t.Errorf("positional predicate: got %v", got)
	}
	got = evalStrings(t, `doc("umd.xml")//Time[@room = 'EGR2154']`)
	if len(got) != 1 || got[0] != "TTh 2" {
		t.Errorf("attribute predicate: got %v", got)
	}
}

func TestLetAndOrderBy(t *testing.T) {
	got := evalStrings(t, `FOR $c in doc("cmu.xml")/cmu/Course
		LET $u := $c/Units
		ORDER BY $c/CourseTitle
		RETURN $u`)
	if len(got) != 3 || got[0] != "12" {
		t.Errorf("let+order: got %v", got)
	}
	got = evalStrings(t, `FOR $c in doc("cmu.xml")/cmu/Course
		ORDER BY $c/Units descending
		RETURN $c/CourseNumber`)
	if got[len(got)-1] != "15-567" {
		t.Errorf("descending: got %v", got)
	}
}

func TestReturnJuxtaposition(t *testing.T) {
	// The paper's Query 12: RETURN $b/Title $b/Day (juxtaposed paths).
	got := evalStrings(t, `FOR $b in doc("cmu.xml")/cmu/Course
		WHERE $b/CourseTitle = '%Computer Networks%'
		RETURN $b/CourseTitle $b/Day`)
	if len(got) != 2 || got[0] != "Computer Networks" || got[1] != "TTh" {
		t.Errorf("juxtaposed return: got %v", got)
	}
}

func TestElementConstructor(t *testing.T) {
	seq, err := EvalQuery(`FOR $b in doc("cmu.xml")/cmu/Course
		WHERE $b/Units > 10
		RETURN <result units="{$b/Units}"><title>{$b/CourseTitle}</title></result>`, testContext(t))
	if err != nil {
		t.Fatalf("EvalQuery: %v", err)
	}
	if len(seq) != 2 {
		t.Fatalf("results = %d, want 2", len(seq))
	}
	el, ok := seq[0].(*xmldom.Element)
	if !ok {
		t.Fatalf("result not an element: %T", seq[0])
	}
	if el.Name != "result" || el.AttrValue("units") != "12" {
		t.Errorf("constructor attrs wrong: %s", el)
	}
	// {$b/CourseTitle} inserts the CourseTitle node itself (copy semantics),
	// so the text sits one level deeper.
	if got := el.Child("title").DeepText(); got != "Database System Design and Implementation" {
		t.Errorf("constructor content = %q", got)
	}
	if el.Child("title").Child("CourseTitle") == nil {
		t.Error("embedded node expression should insert the node, not its text")
	}
}

func TestConstructorLiteralAndNested(t *testing.T) {
	seq, err := EvalQuery(`<a x="1"><b>hi</b><c>{1 + 2}</c></a>`, testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	el := seq[0].(*xmldom.Element)
	if el.ChildText("b") != "hi" || el.ChildText("c") != "3" {
		t.Errorf("constructor: %s", el)
	}
}

func TestConstructorCopiesNodes(t *testing.T) {
	ctx := testContext(t)
	seq, err := EvalQuery(`FOR $b in doc("gatech.xml")/gatech/Course[1] RETURN <wrap>{$b/Title}</wrap>`, ctx)
	if err != nil {
		t.Fatal(err)
	}
	wrap := seq[0].(*xmldom.Element)
	title := wrap.Child("Title")
	if title == nil {
		t.Fatal("no copied Title")
	}
	title.Children = nil // mutate the copy
	// Source must be unchanged.
	again, err := EvalQuery(`doc("gatech.xml")/gatech/Course[1]/Title`, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := ItemString(again[0]); got != "Intro-Network Management" {
		t.Errorf("source mutated through constructor copy: %q", got)
	}
}

func TestStringFunctions(t *testing.T) {
	cases := []struct {
		q    string
		want string
	}{
		{`contains("Database Systems", "base")`, "true"},
		{`contains("Database Systems", "xyz")`, "false"},
		{`starts-with("CS016", "CS")`, "true"},
		{`ends-with("CS016", "16")`, "true"},
		{`substring("Datenbank", 1, 5)`, "Daten"},
		{`substring("Datenbank", 6)`, "bank"},
		{`substring-before("1:30 - 2:50", " - ")`, "1:30"},
		{`substring-after("1:30 - 2:50", " - ")`, "2:50"},
		{`string-length("abc")`, "3"},
		{`upper-case("jr")`, "JR"},
		{`lower-case("Datenbank")`, "datenbank"},
		{`normalize-space("  a   b  ")`, "a b"},
		{`translate("1:30", ":", ".")`, "1.30"},
		{`translate("abc", "abc", "xy")`, "xy"},
		{`concat("a", "b", "c")`, "abc"},
		{`string-join(("a","b","c"), "-")`, "a-b-c"},
		{`string(42)`, "42"},
		{`number("12") + 1`, "13"},
		{`count((1,2,3))`, "3"},
		{`sum((1,2,3))`, "6"},
		{`avg((2,4))`, "3"},
		{`min((5,2,9))`, "2"},
		{`max((5,2,9))`, "9"},
		{`not(false())`, "true"},
		{`exists(())`, "false"},
		{`empty(())`, "true"},
		{`string-join(distinct-values(("a","b","a")), ",")`, "a,b"},
		{`if (1 > 2) then "a" else "b"`, "b"},
		{`3 div 2`, "1.5"},
		{`7 mod 2`, "1"},
		{`-(3)`, "-3"},
		{`2 + 3 * 4`, "14"},
	}
	for _, c := range cases {
		got := evalStrings(t, c.q)
		if len(got) != 1 || got[0] != c.want {
			t.Errorf("%s = %v, want %s", c.q, got, c.want)
		}
	}
}

func TestQuantified(t *testing.T) {
	got := evalStrings(t, `some $u in doc("cmu.xml")/cmu/Course/Units satisfies $u > 11`)
	if got[0] != "true" {
		t.Errorf("some: %v", got)
	}
	got = evalStrings(t, `every $u in doc("cmu.xml")/cmu/Course/Units satisfies $u > 11`)
	if got[0] != "false" {
		t.Errorf("every: %v", got)
	}
}

func TestNameFunctions(t *testing.T) {
	got := evalStrings(t, `FOR $c in doc("umd.xml")/umd/Course/Section[1]/Time RETURN name($c)`)
	if len(got) != 1 || got[0] != "Time" {
		t.Errorf("name: %v", got)
	}
}

func TestExternalFunctions(t *testing.T) {
	ctx := testContext(t)
	ctx.Register(&ExternalFunc{
		Name:       "to24h",
		Complexity: 1,
		Fn: func(args []Sequence) (Sequence, error) {
			s := ItemString(args[0][0])
			if strings.HasPrefix(s, "1:") {
				return Sequence{"13" + s[1:]}, nil
			}
			return Sequence{s}, nil
		},
	})
	seq, err := EvalQuery(`FOR $b in doc("cmu.xml")/cmu/Course
		WHERE starts-with(to24h(substring-before($b/Time, " - ")), "13:")
		RETURN $b/CourseNumber`, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 || ItemString(seq[0]) != "15-415" {
		t.Errorf("external fn query: %v", seq)
	}
	if ctx.Called["to24h"] != 3 {
		t.Errorf("Called[to24h] = %d, want 3", ctx.Called["to24h"])
	}
}

func TestErrors(t *testing.T) {
	parseErrs := []string{
		``,
		`FOR $b in`,
		`FOR b in doc("x")`,
		`FOR $b in doc("x") RETURN`,
		`LET $x = 3 RETURN $x`, // needs :=
		`$a[`,
		`doc("x")/`,
		`"unterminated`,
		`<a>{$x}`,               // unterminated constructor
		`<a></b>`,               // mismatched tags
		`fn(1,`,                 // unterminated args
		`1 +`,                   // missing operand
		`some $x in (1) sat $x`, // bad keyword
	}
	for _, q := range parseErrs {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}

	ctx := testContext(t)
	dynErrs := []string{
		`$undefined`,
		`doc("missing.xml")`,
		`nosuchfn(1)`,
		`1 div 0`,
		`"abc" + 1`,
		`contains("a")`, // arity
		`sum(("a","b"))`,
	}
	for _, q := range dynErrs {
		if _, err := EvalQuery(q, ctx); err == nil {
			t.Errorf("EvalQuery(%q): expected error", q)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse(`FOR $b in doc("x") WHERE ^ RETURN $b`)
	se, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos <= 0 {
		t.Errorf("position = %d", se.Pos)
	}
	if se.Line != 1 || se.Column != 26 {
		t.Errorf("line:column = %d:%d, want 1:26", se.Line, se.Column)
	}
	if !strings.Contains(se.Error(), "line 1, column 26") {
		t.Errorf("message = %q", se.Error())
	}
}

func TestParseErrorMultilinePosition(t *testing.T) {
	_, err := Parse("FOR $b in doc(\"x\")/r/c\nWHERE $b/Title = ^\nRETURN $b")
	se, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 {
		t.Errorf("line = %d, want 2", se.Line)
	}
	if se.Column != 18 {
		t.Errorf("column = %d, want 18", se.Column)
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	e, err := Parse(`FOR $b in doc("x.xml")/r/Course
		WHERE $b/Title = '%DB%' and starts-with($b/Time, '1:30')
		ORDER BY $b/CRN
		RETURN <row id="{$b/CRN}">{$b/Title}</row>`)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	Walk(e, func(x Expr) bool {
		counts[fmt.Sprintf("%T", x)]++
		return true
	})
	for _, typ := range []string{"*xquery.FLWOR", "*xquery.Call", "*xquery.Binary", "*xquery.ElemCtor", "*xquery.PathExpr", "*xquery.StringLit"} {
		if counts[typ] == 0 {
			t.Errorf("Walk never visited %s (got %v)", typ, counts)
		}
	}
	// Predicates are visited too.
	e2, err := Parse(`FOR $b in doc("x.xml")/r/Course[Position = 1] RETURN $b`)
	if err != nil {
		t.Fatal(err)
	}
	sawPred := false
	Walk(e2, func(x Expr) bool {
		if b, ok := x.(*Binary); ok && b.Op == "=" {
			sawPred = true
		}
		return true
	})
	if !sawPred {
		t.Error("Walk did not visit step predicates")
	}
}

func TestIsBuiltin(t *testing.T) {
	if !IsBuiltin("starts-with") || !IsBuiltin("CONTAINS") {
		t.Error("IsBuiltin misses known builtins")
	}
	if IsBuiltin("frobnicate") {
		t.Error("IsBuiltin accepts unknown name")
	}
	if n := len(BuiltinNames()); n < 20 {
		t.Errorf("BuiltinNames returned %d names", n)
	}
}

func TestComments(t *testing.T) {
	got := evalStrings(t, `(: find the dbs course :) FOR $b in doc("gatech.xml")/gatech/Course
		WHERE contains($b/Title, "Database") RETURN $b/Instructor`)
	if len(got) != 1 || got[0] != "Leo" {
		t.Errorf("comments: %v", got)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	for _, q := range []string{
		`for $b in doc("gatech.xml")/gatech/Course where $b/Instructor = "Mark" return $b/CRN`,
		`FOR $b IN doc("gatech.xml")/gatech/Course WHERE $b/Instructor = "Mark" RETURN $b/CRN`,
	} {
		seq, err := EvalQuery(q, testContext(t))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(seq) != 1 || ItemString(seq[0]) != "20381" {
			t.Errorf("%s: %v", q, seq)
		}
	}
}

func TestEmptySequenceSemantics(t *testing.T) {
	// Comparison against a missing element is false, not an error — the
	// paper's case 6 (Nulls) relies on this.
	got := evalStrings(t, `FOR $b in doc("gatech.xml")/gatech/Course
		WHERE $b/NoSuchField = "x" RETURN $b`)
	if len(got) != 0 {
		t.Errorf("missing-field comparison should be empty, got %v", got)
	}
}

func TestWildcardStep(t *testing.T) {
	got := evalStrings(t, `count(doc("gatech.xml")/gatech/Course[1]/*)`)
	if got[0] != "4" {
		t.Errorf("wildcard count = %v", got)
	}
}

func TestMultipleForClauses(t *testing.T) {
	got := evalStrings(t, `FOR $a in (1,2), $b in (10,20) RETURN $a + $b`)
	want := []string{"11", "21", "12", "22"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("cartesian: %v", got)
	}
}

// Property: likeMatch("%"+s+"%", x) is equivalent to strings.Contains when s
// itself has no wildcard.
func TestQuickLikeContains(t *testing.T) {
	f := func(s, x string) bool {
		if strings.Contains(s, "%") || strings.Contains(x, "%") {
			return true
		}
		return likeMatch("%"+s+"%", x) == strings.Contains(x, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every value matches the universal pattern and itself.
func TestQuickLikeIdentity(t *testing.T) {
	f := func(x string) bool {
		if strings.Contains(x, "%") {
			return true
		}
		return likeMatch("%", x) && likeMatch("%"+x, x) && likeMatch(x+"%", x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: parsing is deterministic and never panics on fuzz-ish inputs.
func TestQuickParseNoPanic(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestConstructorAttributeEmbeddedExpr(t *testing.T) {
	seq, err := EvalQuery(`FOR $b in doc("cmu.xml")/cmu/Course
		WHERE $b/CourseNumber = "15-415"
		RETURN <c id="{$b/CourseNumber}-x" fixed="y"/>`, testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	el := seq[0].(*xmldom.Element)
	if el.AttrValue("id") != "15-415-x" || el.AttrValue("fixed") != "y" {
		t.Errorf("attrs: %s", el)
	}
}

func TestConstructorBraceEscapes(t *testing.T) {
	seq, err := EvalQuery(`<a b="{{x}}">lit {{text}} here</a>`, testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	el := seq[0].(*xmldom.Element)
	if el.AttrValue("b") != "{x}" {
		t.Errorf("attr escape: %q", el.AttrValue("b"))
	}
	if got := el.Text(); !strings.Contains(got, "{text}") {
		t.Errorf("text escape: %q", got)
	}
}

func TestConstructorEntityDecoding(t *testing.T) {
	seq, err := EvalQuery(`<a>x &amp; y &lt;z&gt;</a>`, testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := seq[0].(*xmldom.Element).Text(); got != "x & y <z>" {
		t.Errorf("entities: %q", got)
	}
}

func TestConstructorSelfClosing(t *testing.T) {
	seq, err := EvalQuery(`<empty k="v"/>`, testContext(t))
	if err != nil {
		t.Fatal(err)
	}
	el := seq[0].(*xmldom.Element)
	if el.Name != "empty" || el.AttrValue("k") != "v" || len(el.Children) != 0 {
		t.Errorf("self-closing: %s", el)
	}
}

func TestConstructorErrors(t *testing.T) {
	for _, q := range []string{
		`<a b=>x</a>`,          // missing value
		`<a b="unterminated>x`, // unterminated attribute
		`<a>{1 + }</a>`,        // bad embedded expression
		`<a>{unclosed</a>`,     // unterminated brace
		`<a>}</a>`,             // stray close brace
		`<a><b></a></b>`,       // crossed nesting
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestOrderByNumericVsString(t *testing.T) {
	got := evalStrings(t, `FOR $x in (10, 9, 2) ORDER BY $x RETURN $x`)
	if strings.Join(got, ",") != "2,9,10" {
		t.Errorf("numeric order: %v", got)
	}
	got = evalStrings(t, `FOR $x in ("b", "a", "c") ORDER BY $x RETURN $x`)
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("string order: %v", got)
	}
	got = evalStrings(t, `FOR $x in (1, 2, 3) ORDER BY $x descending RETURN $x`)
	if strings.Join(got, ",") != "3,2,1" {
		t.Errorf("descending order: %v", got)
	}
}

func TestLetSequenceBinding(t *testing.T) {
	got := evalStrings(t, `LET $xs := (1, 2, 3) RETURN count($xs)`)
	if len(got) != 1 || got[0] != "3" {
		t.Errorf("let binds whole sequence: %v", got)
	}
	got = evalStrings(t, `LET $a := 1, $b := 2 RETURN $a + $b`)
	if got[0] != "3" {
		t.Errorf("multi-let: %v", got)
	}
}

func TestNestedFLWOR(t *testing.T) {
	got := evalStrings(t, `FOR $c in doc("umd.xml")/umd/Course
		RETURN (FOR $s in $c/Section RETURN $s/Teacher)`)
	if len(got) != 2 {
		t.Errorf("nested flwor: %v", got)
	}
}

func TestAttributeWildcard(t *testing.T) {
	got := evalStrings(t, `count(doc("umd.xml")//Time[1]/@*)`)
	if got[0] != "1" {
		t.Errorf("@*: %v", got)
	}
}

func TestIfInsideWhere(t *testing.T) {
	got := evalStrings(t, `FOR $b in doc("cmu.xml")/cmu/Course
		WHERE if ($b/Units > 10) then true() else false()
		RETURN $b/CourseNumber`)
	if len(got) != 2 {
		t.Errorf("if-in-where: %v", got)
	}
}

func TestDoubledQuoteEscape(t *testing.T) {
	got := evalStrings(t, `'it''s'`)
	if got[0] != "it's" {
		t.Errorf("doubled quote: %v", got)
	}
	got = evalStrings(t, `"say ""hi"""`)
	if got[0] != `say "hi"` {
		t.Errorf("doubled double quote: %v", got)
	}
}

func TestUnterminatedComment(t *testing.T) {
	// An unterminated comment consumes the rest of the input, leaving an
	// incomplete expression.
	if _, err := Parse(`1 + (: never closed`); err == nil {
		t.Error("expected error")
	}
}

func TestEffectiveBoolMultiItem(t *testing.T) {
	got := evalStrings(t, `if ((0, 0)) then "t" else "f"`)
	if got[0] != "t" {
		t.Errorf("multi-item sequences are true: %v", got)
	}
	got = evalStrings(t, `if (0) then "t" else "f"`)
	if got[0] != "f" {
		t.Errorf("zero is false: %v", got)
	}
}

func TestQuantifiedOverEmpty(t *testing.T) {
	got := evalStrings(t, `every $x in () satisfies $x > 5`)
	if got[0] != "true" {
		t.Errorf("every over empty: %v", got)
	}
	got = evalStrings(t, `some $x in () satisfies $x > 5`)
	if got[0] != "false" {
		t.Errorf("some over empty: %v", got)
	}
}
