package xquery

import (
	"errors"
	"testing"
)

// FuzzParse drives the query parser with arbitrary input. The contract
// under test: Parse never panics — malformed queries come back as a
// *ParseError carrying a sane source location — and any accepted tree is
// walkable without nil nodes panicking the visitor.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`FOR $b in doc("gatech.xml")/gatech/Course
WHERE $b/Instructor = "Mark"
RETURN $b`,
		`FOR $b in doc("cmu.xml")/cmu/Course WHERE $b/Units >= 9 RETURN $b/Title`,
		`FOR $a in doc("a.xml")/r/c, $b in doc("b.xml")/r/c WHERE $a/x = $b/x RETURN ($a, $b)`,
		`FOR $b in doc("x.xml")/r/c WHERE contains($b/Title, "Data") RETURN $b`,
		`FOR $b in doc("x.xml")/r/c WHERE $b/T = "a" and not($b/U = "b") or $b/V != "c" RETURN $b`,
		`"just a literal"`,
		``,
		`FOR`,
		`FOR $b in doc("x")/r/c RETURN`,
		`FOR $b in doc("x")/r/c WHERE $b/T = !! RETURN $b`,
		"FOR $b in doc(\"x\")/r/c where $b/@attr = 'single' return <r>{$b}</r>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q) returned an untyped error: %v", src, err)
			}
			if pe.Line < 1 || pe.Column < 1 || pe.Pos < 0 || pe.Pos > len(src) {
				t.Fatalf("Parse(%q): error location out of range: %+v", src, pe)
			}
			return
		}
		if expr == nil {
			t.Fatalf("Parse(%q) returned nil expr and nil error", src)
		}
		// Every node the walker visits must be non-nil.
		Walk(expr, func(e Expr) bool {
			if e == nil {
				t.Fatalf("Parse(%q): walk visited a nil node", src)
			}
			return true
		})
	})
}
