package xquery

import (
	"sort"
	"strings"
)

// Walk traverses an expression tree in depth-first, source order, calling f
// for every expression node (including expressions nested in step
// predicates, constructor attributes and constructor content). If f returns
// false for a node, its children are not visited.
//
// Walk is the foundation of the static query analysis in internal/analysis;
// it deliberately visits every Expr the evaluator could reach so that a
// checker seeing no finding has genuinely seen the whole query.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch n := e.(type) {
	case *FLWOR:
		for _, fb := range n.Fors {
			Walk(fb.In, f)
		}
		for _, lb := range n.Lets {
			Walk(lb.Val, f)
		}
		if n.Where != nil {
			Walk(n.Where, f)
		}
		if n.OrderBy != nil {
			Walk(n.OrderBy.Key, f)
		}
		Walk(n.Return, f)
	case *PathExpr:
		if n.Root != nil {
			Walk(n.Root, f)
		}
		for _, st := range n.Steps {
			for _, pred := range st.Predicates {
				Walk(pred, f)
			}
		}
	case *Binary:
		Walk(n.L, f)
		Walk(n.R, f)
	case *Unary:
		Walk(n.X, f)
	case *Call:
		for _, a := range n.Args {
			Walk(a, f)
		}
	case *SeqExpr:
		for _, item := range n.Items {
			Walk(item, f)
		}
	case *ElemCtor:
		for _, a := range n.Attrs {
			for _, part := range a.Parts {
				Walk(part, f)
			}
		}
		for _, c := range n.Content {
			Walk(c, f)
		}
	case *Quantified:
		Walk(n.In, f)
		Walk(n.Sat, f)
	case *IfExpr:
		Walk(n.Cond, f)
		Walk(n.Then, f)
		Walk(n.Else, f)
	}
}

// IsBuiltin reports whether name (case-insensitively) is a builtin function
// of the XQuery subset.
func IsBuiltin(name string) bool {
	_, ok := builtins[strings.ToLower(name)]
	return ok
}

// BuiltinNames returns the sorted names of all builtin functions.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
