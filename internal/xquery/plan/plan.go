// Package plan compiles parsed XQuery expressions into reusable executable
// plans: closure trees with variables resolved to integer slots at compile
// time, builtins pre-resolved, and descendant path steps over documents
// served from memoized name indexes instead of full tree walks.
//
// The tree-walking evaluator in internal/xquery remains the reference
// implementation. A plan must produce exactly the interpreter's result — the
// same Sequence on success and the same *xquery.DynamicError class and
// message on failure — for every input xquery.Parse accepts. That contract
// is enforced three ways: the differential conformance suite in
// internal/benchmark (q1–q12 × all systems × all 35 catalogs), the
// FuzzCompileEval fuzz target in this package, and the plancoverage
// thalia-vet analyzer, which fails the build when an AST node kind has no
// compile case here.
package plan

import (
	"strconv"
	"sync"
	"sync/atomic"

	"thalia/internal/explain"
	"thalia/internal/xquery"
)

// Plan is a compiled, reusable, goroutine-safe query: all per-evaluation
// state lives in slots allocated by Eval, so one Plan may be evaluated
// concurrently against many contexts.
type Plan struct {
	src    string // source text, "" when compiled from a bare AST
	root   compiled
	nSlots int
	dump   string
	// evals counts evaluations; surfaced as the "evals" attr of the
	// explain plan span so traces show plan reuse.
	evals atomic.Int64
	// rts recycles per-evaluation runtimes (and their slot arrays, sized
	// for this plan) across Eval calls — the hot loop's dominant allocation
	// before pooling, per bench --profile heap output.
	rts sync.Pool
}

// CompileQuery parses src and compiles it in one step. Parse failures are
// returned unchanged (*xquery.ParseError), so callers see exactly the
// interpreter's syntax errors.
func CompileQuery(src string) (*Plan, error) {
	e, err := xquery.Parse(src)
	if err != nil {
		return nil, err
	}
	p, err := Compile(e)
	if err != nil {
		return nil, err
	}
	p.src = src
	return p, nil
}

// Compile compiles a parsed expression into a plan.
func Compile(e xquery.Expr) (*Plan, error) {
	c := &compiler{}
	root, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	return &Plan{root: root, nSlots: c.nSlots, dump: c.render()}, nil
}

// Eval runs the plan against ctx. When ctx.Explain is set, the evaluation
// is wrapped in a "plan" span whose evals attr reports how many times this
// plan has been used — cache reuse made visible in traces.
//
// Per-evaluation runtimes are drawn from a pool and returned with their
// slots cleared; results never alias the slot array (compiled closures copy
// items out of slots into fresh output sequences), so recycling is
// invisible to callers and safe under concurrent Eval.
func (p *Plan) Eval(ctx *xquery.Context) (xquery.Sequence, error) {
	rt, _ := p.rts.Get().(*runtime)
	if rt == nil {
		rt = &runtime{}
		if p.nSlots > 0 {
			rt.slots = make([]xquery.Sequence, p.nSlots)
		}
	}
	rt.ctx, rt.rec = ctx, ctx.Explain
	n := p.evals.Add(1)
	if rt.rec != nil {
		sp := rt.rec.Begin(explain.KindPlan, "plan",
			explain.A("evals", strconv.FormatInt(n, 10)),
			explain.A("slots", strconv.Itoa(p.nSlots)))
		defer sp.End()
	}
	out, err := p.root(rt)
	rt.ctx, rt.rec = nil, nil
	for i := range rt.slots {
		rt.slots[i] = nil
	}
	p.rts.Put(rt)
	return out, err
}

// Source returns the query text the plan was compiled from, if any.
func (p *Plan) Source() string { return p.src }

// Dump renders the compiled plan as an indented textual tree — the format
// committed as golden files under testdata/plan/ so plan-shape regressions
// show up as readable diffs.
func (p *Plan) Dump() string { return p.dump }

// runtime is the per-evaluation state threaded through compiled closures.
type runtime struct {
	ctx   *xquery.Context
	rec   *explain.Recorder
	slots []xquery.Sequence
}

// compiled is one compiled expression: a closure from runtime to a value.
type compiled func(rt *runtime) (xquery.Sequence, error)

// Cache is a concurrency-safe plan cache keyed by query source text: each
// distinct query is parsed and compiled once per cache lifetime.
// Compilation failures are returned but never cached, matching the
// errors-never-cached convention used throughout the repo.
type Cache struct {
	mu     sync.RWMutex
	m      map[string]*Plan
	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]*Plan)}
}

// Get returns the cached plan for src, compiling and caching it on first
// use. Concurrent first uses may compile twice; one result wins, which is
// harmless because plans are immutable and equivalent.
func (c *Cache) Get(src string) (*Plan, error) {
	c.mu.RLock()
	p := c.m[src]
	c.mu.RUnlock()
	if p != nil {
		c.hits.Add(1)
		return p, nil
	}
	p, err := CompileQuery(src)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if prev, ok := c.m[src]; ok {
		p = prev
	} else {
		c.m[src] = p
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return p, nil
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats returns how many Get calls hit and missed the cache.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
