package plan

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"thalia/internal/explain"
	"thalia/internal/xmldom"
	"thalia/internal/xquery"
)

// compiler turns AST nodes into compiled closures. Variables are resolved
// to integer slots at compile time: every for/let/quantified binding and
// every predicate context item ("."), gets a fresh slot, and references
// resolve lexically by scanning the scope from the end — exactly the
// ordered-slot shadowing discipline Context.Bind uses for globals, so both
// engines agree on what a shadowed name means. Names not in lexical scope
// fall back to Context.Var at runtime (free variables), or, for ".", to the
// interpreter's "relative path with no context item" error.
//
// Alongside the closures the compiler renders the plan as an indented
// textual tree (Plan.Dump) used by the golden plan tests.
type compiler struct {
	nSlots int
	scope  []scopeEntry
	lines  []string
	depth  int
}

type scopeEntry struct {
	name string
	slot int
}

// alloc reserves a new variable slot.
func (c *compiler) alloc() int {
	s := c.nSlots
	c.nSlots++
	return s
}

// declare brings a slot into lexical scope under name.
func (c *compiler) declare(name string, slot int) {
	c.scope = append(c.scope, scopeEntry{name: name, slot: slot})
}

// resolve finds the innermost binding of name, scanning from the end so the
// latest (shadowing) binding wins.
func (c *compiler) resolve(name string) (int, bool) {
	for i := len(c.scope) - 1; i >= 0; i-- {
		if c.scope[i].name == name {
			return c.scope[i].slot, true
		}
	}
	return 0, false
}

// emit appends one dump line at the current nesting depth.
func (c *compiler) emit(format string, args ...any) {
	c.lines = append(c.lines, strings.Repeat("  ", c.depth)+fmt.Sprintf(format, args...))
}

// render joins the dump lines collected during compilation.
func (c *compiler) render() string {
	return strings.Join(c.lines, "\n") + "\n"
}

// compile dispatches on the AST node kind. The thalia-vet plancoverage
// analyzer enforces that every xquery.Expr implementation has a case here.
func (c *compiler) compile(e xquery.Expr) (compiled, error) {
	switch n := e.(type) {
	case *xquery.StringLit:
		c.emit("string %q", n.Val)
		val := xquery.Sequence{n.Val}
		return func(rt *runtime) (xquery.Sequence, error) { return val, nil }, nil

	case *xquery.NumberLit:
		c.emit("number %s", xquery.ItemString(n.Val))
		val := xquery.Sequence{n.Val}
		return func(rt *runtime) (xquery.Sequence, error) { return val, nil }, nil

	case *xquery.VarRef:
		name := n.Name
		if slot, ok := c.resolve(name); ok {
			c.emit("var $%s slot=%d", name, slot)
			return func(rt *runtime) (xquery.Sequence, error) { return rt.slots[slot], nil }, nil
		}
		c.emit("var $%s global", name)
		return func(rt *runtime) (xquery.Sequence, error) {
			if v, ok := rt.ctx.Var(name); ok {
				return v, nil
			}
			return nil, xquery.DynErrorf("unbound variable $%s", name)
		}, nil

	case *xquery.SeqExpr:
		c.emit("seq n=%d", len(n.Items))
		c.depth++
		items := make([]compiled, len(n.Items))
		for i, item := range n.Items {
			f, err := c.compile(item)
			if err != nil {
				return nil, err
			}
			items[i] = f
		}
		c.depth--
		return func(rt *runtime) (xquery.Sequence, error) {
			var out xquery.Sequence
			for _, f := range items {
				s, err := f(rt)
				if err != nil {
					return nil, err
				}
				out = append(out, s...)
			}
			return out, nil
		}, nil

	case *xquery.Unary:
		c.emit("unary %s", n.Op)
		c.depth++
		x, err := c.compile(n.X)
		c.depth--
		if err != nil {
			return nil, err
		}
		return func(rt *runtime) (xquery.Sequence, error) {
			s, err := x(rt)
			if err != nil {
				return nil, err
			}
			if len(s) == 0 {
				return nil, nil
			}
			v, ok := xquery.ItemNumber(s[0])
			if !ok {
				return nil, xquery.DynErrorf("cannot negate %v", s[0])
			}
			return xquery.Sequence{-v}, nil
		}, nil

	case *xquery.Binary:
		return c.compileBinary(n)

	case *xquery.PathExpr:
		return c.compilePath(n)

	case *xquery.FLWOR:
		return c.compileFLWOR(n)

	case *xquery.Call:
		return c.compileCall(n)

	case *xquery.ElemCtor:
		ctor, err := c.compileCtor(n)
		if err != nil {
			return nil, err
		}
		return func(rt *runtime) (xquery.Sequence, error) {
			el, err := ctor(rt)
			if err != nil {
				return nil, err
			}
			return xquery.Sequence{el}, nil
		}, nil

	case *xquery.Quantified:
		return c.compileQuantified(n)

	case *xquery.IfExpr:
		c.emit("if")
		c.depth++
		cond, err := c.compile(n.Cond)
		if err != nil {
			return nil, err
		}
		c.emit("then")
		c.depth++
		then, err := c.compile(n.Then)
		c.depth--
		if err != nil {
			return nil, err
		}
		c.emit("else")
		c.depth++
		els, err := c.compile(n.Else)
		c.depth--
		c.depth--
		if err != nil {
			return nil, err
		}
		return func(rt *runtime) (xquery.Sequence, error) {
			s, err := cond(rt)
			if err != nil {
				return nil, err
			}
			if xquery.EffectiveBool(s) {
				return then(rt)
			}
			return els(rt)
		}, nil

	default:
		return nil, fmt.Errorf("plan: cannot compile expression %T", e)
	}
}

func (c *compiler) compileBinary(n *xquery.Binary) (compiled, error) {
	op := n.Op
	c.emit("binary %q", op)
	c.depth++
	l, err := c.compile(n.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compile(n.R)
	c.depth--
	if err != nil {
		return nil, err
	}
	switch op {
	case "and":
		return func(rt *runtime) (xquery.Sequence, error) {
			ls, err := l(rt)
			if err != nil {
				return nil, err
			}
			if !xquery.EffectiveBool(ls) {
				return xquery.Sequence{false}, nil
			}
			rs, err := r(rt)
			if err != nil {
				return nil, err
			}
			return xquery.Sequence{xquery.EffectiveBool(rs)}, nil
		}, nil
	case "or":
		return func(rt *runtime) (xquery.Sequence, error) {
			ls, err := l(rt)
			if err != nil {
				return nil, err
			}
			if xquery.EffectiveBool(ls) {
				return xquery.Sequence{true}, nil
			}
			rs, err := r(rt)
			if err != nil {
				return nil, err
			}
			return xquery.Sequence{xquery.EffectiveBool(rs)}, nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		return func(rt *runtime) (xquery.Sequence, error) {
			ls, err := l(rt)
			if err != nil {
				return nil, err
			}
			rs, err := r(rt)
			if err != nil {
				return nil, err
			}
			return xquery.Sequence{xquery.GeneralCompare(op, ls, rs)}, nil
		}, nil
	case "+", "-", "*", "div", "mod":
		return func(rt *runtime) (xquery.Sequence, error) {
			ls, err := l(rt)
			if err != nil {
				return nil, err
			}
			rs, err := r(rt)
			if err != nil {
				return nil, err
			}
			return xquery.Arith(op, ls, rs)
		}, nil
	default:
		// The interpreter evaluates both operands before rejecting the
		// operator; mirror that so error ordering matches.
		return func(rt *runtime) (xquery.Sequence, error) {
			if _, err := l(rt); err != nil {
				return nil, err
			}
			if _, err := r(rt); err != nil {
				return nil, err
			}
			return nil, xquery.DynErrorf("unknown operator %q", op)
		}, nil
	}
}

// compiledStep is one compiled path step.
type compiledStep struct {
	axis  xquery.StepAxis
	name  string
	preds []compiledPred
}

// compiledPred is one compiled step predicate: positional when isPos
// (a literal number in the source), an effective-boolean filter otherwise,
// with the context item bound to slot.
type compiledPred struct {
	isPos bool
	pos   int
	slot  int
	fn    compiled
}

func axisName(a xquery.StepAxis) string {
	switch a {
	case xquery.AxisChild:
		return "child"
	case xquery.AxisDescendant:
		return "descendant"
	case xquery.AxisAttribute:
		return "attribute"
	}
	return "?"
}

func (c *compiler) compilePath(n *xquery.PathExpr) (compiled, error) {
	c.emit("path")
	c.depth++
	var root compiled
	if n.Root != nil {
		c.emit("root")
		c.depth++
		f, err := c.compile(n.Root)
		c.depth--
		if err != nil {
			return nil, err
		}
		root = f
	} else if slot, ok := c.resolve("."); ok {
		c.emit("context . slot=%d", slot)
		root = func(rt *runtime) (xquery.Sequence, error) { return rt.slots[slot], nil }
	} else {
		// Lexical scoping makes "no context item" decidable at compile
		// time, but the interpreter reports it at evaluation time, so the
		// plan does too.
		c.emit("context . (unbound)")
		root = func(rt *runtime) (xquery.Sequence, error) {
			return nil, xquery.DynErrorf("relative path with no context item")
		}
	}
	steps := make([]compiledStep, len(n.Steps))
	for i, st := range n.Steps {
		cs := compiledStep{axis: st.Axis, name: st.Name}
		c.emit("step %s %s", axisName(st.Axis), st.Name)
		c.depth++
		for _, pred := range st.Predicates {
			if num, ok := pred.(*xquery.NumberLit); ok {
				c.emit("predicate position=%d", int(num.Val))
				cs.preds = append(cs.preds, compiledPred{isPos: true, pos: int(num.Val)})
				continue
			}
			slot := c.alloc()
			c.emit("predicate slot=%d", slot)
			c.depth++
			mark := len(c.scope)
			c.declare(".", slot)
			fn, err := c.compile(pred)
			c.scope = c.scope[:mark]
			c.depth--
			if err != nil {
				return nil, err
			}
			cs.preds = append(cs.preds, compiledPred{slot: slot, fn: fn})
		}
		c.depth--
		steps[i] = cs
	}
	c.depth--
	return func(rt *runtime) (xquery.Sequence, error) {
		cur, err := root(rt)
		if err != nil {
			return nil, err
		}
		for i := range steps {
			cur, err = execStep(rt, cur, &steps[i])
			if err != nil {
				return nil, err
			}
		}
		return cur, nil
	}, nil
}

// execStep runs one compiled step: axis navigation, then predicates in
// order — the interpreter's step semantics, with one difference in
// mechanism: the descendant axis from a document node is served from the
// document's memoized name index instead of walking the tree, which is
// result-identical because the index stores root-plus-descendants in
// document order.
func execStep(rt *runtime, in xquery.Sequence, st *compiledStep) (xquery.Sequence, error) {
	var out xquery.Sequence
	if len(in) > 0 {
		// Most steps are roughly size-preserving (child/attribute fan-out of
		// ~1 per input); pre-size to the input length so the append loop
		// grows the output once instead of doubling through several sizes.
		out = make(xquery.Sequence, 0, len(in))
	}
	for _, item := range in {
		// A document node's only child is its root element.
		if doc, ok := item.(*xmldom.Document); ok {
			switch st.axis {
			case xquery.AxisChild:
				if st.name == "*" || doc.Root.Name == st.name {
					out = append(out, doc.Root)
				}
			case xquery.AxisDescendant:
				els := doc.NameIndex().Elements(st.name)
				for _, el := range els {
					out = append(out, el)
				}
				if rt.rec != nil {
					rt.rec.Event(explain.KindIndex, "//"+st.name,
						explain.A("hits", strconv.Itoa(len(els))))
				}
			}
			continue
		}
		el, ok := item.(*xmldom.Element)
		if !ok {
			continue
		}
		switch st.axis {
		case xquery.AxisChild:
			// Iterate Children directly: ChildElements would allocate a
			// fresh slice per input element on the hottest loop in the
			// engine.
			for _, c := range el.Children {
				if ch, ok := c.(*xmldom.Element); ok && (st.name == "*" || ch.Name == st.name) {
					out = append(out, ch)
				}
			}
		case xquery.AxisDescendant:
			for _, ch := range el.Descendants(st.name) {
				out = append(out, ch)
			}
		case xquery.AxisAttribute:
			if st.name == "*" {
				for _, a := range el.Attrs {
					out = append(out, xquery.AttrRef{Owner: el, Name: a.Name, Value: a.Value})
				}
			} else if v, ok := el.Attr(st.name); ok {
				out = append(out, xquery.AttrRef{Owner: el, Name: st.name, Value: v})
			}
		}
	}
	for i := range st.preds {
		filtered, err := execPred(rt, out, &st.preds[i])
		if err != nil {
			return nil, err
		}
		out = filtered
	}
	return out, nil
}

func execPred(rt *runtime, in xquery.Sequence, pred *compiledPred) (xquery.Sequence, error) {
	if pred.isPos {
		if pred.pos >= 1 && pred.pos <= len(in) {
			return xquery.Sequence{in[pred.pos-1]}, nil
		}
		return nil, nil
	}
	var out xquery.Sequence
	if len(in) > 0 {
		out = make(xquery.Sequence, 0, len(in))
	}
	for _, item := range in {
		rt.slots[pred.slot] = xquery.Sequence{item}
		s, err := pred.fn(rt)
		if err != nil {
			return nil, err
		}
		if xquery.EffectiveBool(s) {
			out = append(out, item)
		}
	}
	return out, nil
}

func (c *compiler) compileFLWOR(n *xquery.FLWOR) (compiled, error) {
	mark := len(c.scope)
	defer func() { c.scope = c.scope[:mark] }()
	c.emit("flwor")
	c.depth++

	type forPlan struct {
		slot int
		in   compiled
	}
	type letPlan struct {
		slot int
		val  compiled
	}
	// binderSlots lists every for/let slot in clause order; runtime tuples
	// are value snapshots of a prefix of these slots.
	var binderSlots []int
	fors := make([]forPlan, len(n.Fors))
	for i, fb := range n.Fors {
		slot := c.alloc()
		c.emit("for $%s slot=%d", fb.Var, slot)
		c.depth++
		in, err := c.compile(fb.In)
		c.depth--
		if err != nil {
			return nil, err
		}
		c.declare(fb.Var, slot)
		binderSlots = append(binderSlots, slot)
		fors[i] = forPlan{slot: slot, in: in}
	}
	lets := make([]letPlan, len(n.Lets))
	for i, lb := range n.Lets {
		slot := c.alloc()
		c.emit("let $%s slot=%d", lb.Var, slot)
		c.depth++
		val, err := c.compile(lb.Val)
		c.depth--
		if err != nil {
			return nil, err
		}
		c.declare(lb.Var, slot)
		binderSlots = append(binderSlots, slot)
		lets[i] = letPlan{slot: slot, val: val}
	}
	var where compiled
	if n.Where != nil {
		c.emit("where")
		c.depth++
		f, err := c.compile(n.Where)
		c.depth--
		if err != nil {
			return nil, err
		}
		where = f
	}
	var orderKey compiled
	descending := false
	if n.OrderBy != nil {
		descending = n.OrderBy.Descending
		if descending {
			c.emit("order by descending")
		} else {
			c.emit("order by")
		}
		c.depth++
		f, err := c.compile(n.OrderBy.Key)
		c.depth--
		if err != nil {
			return nil, err
		}
		orderKey = f
	}
	c.emit("return")
	c.depth++
	ret, err := c.compile(n.Return)
	c.depth--
	c.depth--
	if err != nil {
		return nil, err
	}

	restore := func(rt *runtime, t []xquery.Sequence) {
		for i, v := range t {
			rt.slots[binderSlots[i]] = v
		}
	}
	return func(rt *runtime) (xquery.Sequence, error) {
		tuples := [][]xquery.Sequence{nil}
		for _, fp := range fors {
			var next [][]xquery.Sequence
			for _, t := range tuples {
				restore(rt, t)
				seq, err := fp.in(rt)
				if err != nil {
					return nil, err
				}
				if len(seq) == 0 {
					continue
				}
				// One arena allocation backs every extended tuple this input
				// sequence produces, instead of one allocation per item.
				width := len(t) + 1
				arena := make([]xquery.Sequence, len(seq)*width)
				for i, item := range seq {
					nt := arena[i*width : (i+1)*width : (i+1)*width]
					copy(nt, t)
					nt[len(t)] = xquery.Sequence{item}
					next = append(next, nt)
				}
			}
			tuples = next
		}
		for _, lp := range lets {
			width := 0
			var arena []xquery.Sequence
			next := make([][]xquery.Sequence, 0, len(tuples))
			for _, t := range tuples {
				restore(rt, t)
				val, err := lp.val(rt)
				if err != nil {
					return nil, err
				}
				if arena == nil {
					width = len(t) + 1
					arena = make([]xquery.Sequence, len(tuples)*width)
				}
				nt := arena[:width:width]
				arena = arena[width:]
				copy(nt, t)
				nt[len(t)] = val
				next = append(next, nt)
			}
			tuples = next
		}
		if where != nil {
			kept := tuples[:0]
			for _, t := range tuples {
				restore(rt, t)
				cond, err := where(rt)
				if err != nil {
					return nil, err
				}
				if xquery.EffectiveBool(cond) {
					kept = append(kept, t)
				}
			}
			tuples = kept
		}
		if orderKey != nil {
			type keyedTuple struct {
				t   []xquery.Sequence
				key xquery.Sequence
			}
			keyed := make([]keyedTuple, len(tuples))
			for i, t := range tuples {
				restore(rt, t)
				k, err := orderKey(rt)
				if err != nil {
					return nil, err
				}
				keyed[i] = keyedTuple{t: t, key: k}
			}
			sort.SliceStable(keyed, func(i, j int) bool {
				less := xquery.SequenceLess(keyed[i].key, keyed[j].key)
				if descending {
					return xquery.SequenceLess(keyed[j].key, keyed[i].key)
				}
				return less
			})
			for i := range keyed {
				tuples[i] = keyed[i].t
			}
		}
		var out xquery.Sequence
		for _, t := range tuples {
			restore(rt, t)
			s, err := ret(rt)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	}, nil
}

func (c *compiler) compileCall(n *xquery.Call) (compiled, error) {
	name := n.Name
	b, isBuiltin := xquery.LookupBuiltin(name)
	if isBuiltin {
		c.emit("call %s() builtin", name)
	} else {
		c.emit("call %s() external", name)
	}
	c.depth++
	args := make([]compiled, len(n.Args))
	for i, a := range n.Args {
		f, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	c.depth--
	evalArgs := func(rt *runtime) ([]xquery.Sequence, error) {
		vals := make([]xquery.Sequence, len(args))
		for i, f := range args {
			s, err := f(rt)
			if err != nil {
				return nil, err
			}
			vals[i] = s
		}
		return vals, nil
	}
	if isBuiltin {
		// Pre-resolved: the map lookup happens once, here. Arity is still
		// checked per call, after argument evaluation, so argument errors
		// surface first exactly as in the interpreter.
		return func(rt *runtime) (xquery.Sequence, error) {
			vals, err := evalArgs(rt)
			if err != nil {
				return nil, err
			}
			return b.Invoke(name, rt.ctx, rt.rec, vals)
		}, nil
	}
	return func(rt *runtime) (xquery.Sequence, error) {
		vals, err := evalArgs(rt)
		if err != nil {
			return nil, err
		}
		return xquery.CallExternal(rt.ctx, rt.rec, name, vals)
	}, nil
}

func (c *compiler) compileCtor(n *xquery.ElemCtor) (func(*runtime) (*xmldom.Element, error), error) {
	name := n.Name
	c.emit("element <%s>", name)
	c.depth++
	type attrPlan struct {
		name  string
		parts []compiled
	}
	attrs := make([]attrPlan, len(n.Attrs))
	for i, a := range n.Attrs {
		c.emit("attribute %s", a.Name)
		c.depth++
		parts := make([]compiled, len(a.Parts))
		for j, part := range a.Parts {
			f, err := c.compile(part)
			if err != nil {
				return nil, err
			}
			parts[j] = f
		}
		c.depth--
		attrs[i] = attrPlan{name: a.Name, parts: parts}
	}
	content := make([]func(*runtime, *xmldom.Element) error, len(n.Content))
	for i, cc := range n.Content {
		switch v := cc.(type) {
		case *xquery.StringLit:
			c.emit("text %q", v.Val)
			lit := v.Val
			content[i] = func(rt *runtime, el *xmldom.Element) error {
				el.AppendText(lit)
				return nil
			}
		case *xquery.ElemCtor:
			sub, err := c.compileCtor(v)
			if err != nil {
				return nil, err
			}
			content[i] = func(rt *runtime, el *xmldom.Element) error {
				child, err := sub(rt)
				if err != nil {
					return err
				}
				el.Append(child)
				return nil
			}
		default:
			f, err := c.compile(cc)
			if err != nil {
				return nil, err
			}
			content[i] = func(rt *runtime, el *xmldom.Element) error {
				s, err := f(rt)
				if err != nil {
					return err
				}
				xquery.AppendContent(el, s)
				return nil
			}
		}
	}
	c.depth--
	return func(rt *runtime) (*xmldom.Element, error) {
		el := xmldom.NewElement(name)
		for _, a := range attrs {
			var b strings.Builder
			for _, part := range a.parts {
				s, err := part(rt)
				if err != nil {
					return nil, err
				}
				b.WriteString(xquery.SequenceString(s))
			}
			el.SetAttr(a.name, b.String())
		}
		for _, app := range content {
			if err := app(rt, el); err != nil {
				return nil, err
			}
		}
		return el, nil
	}, nil
}

func (c *compiler) compileQuantified(n *xquery.Quantified) (compiled, error) {
	every := n.Every
	if every {
		c.emit("every $%s", n.Var)
	} else {
		c.emit("some $%s", n.Var)
	}
	c.depth++
	in, err := c.compile(n.In)
	if err != nil {
		return nil, err
	}
	slot := c.alloc()
	c.emit("satisfies slot=%d", slot)
	c.depth++
	mark := len(c.scope)
	c.declare(n.Var, slot)
	sat, err := c.compile(n.Sat)
	c.scope = c.scope[:mark]
	c.depth--
	c.depth--
	if err != nil {
		return nil, err
	}
	return func(rt *runtime) (xquery.Sequence, error) {
		seq, err := in(rt)
		if err != nil {
			return nil, err
		}
		for _, item := range seq {
			rt.slots[slot] = xquery.Sequence{item}
			s, err := sat(rt)
			if err != nil {
				return nil, err
			}
			ok := xquery.EffectiveBool(s)
			if every && !ok {
				return xquery.Sequence{false}, nil
			}
			if !every && ok {
				return xquery.Sequence{true}, nil
			}
		}
		return xquery.Sequence{every}, nil
	}, nil
}
