package plan

import (
	"fmt"

	"thalia/internal/xquery"
)

// This file is the engine-selection surface for everything that evaluates
// XQuery text. Compiled plans are the default execution path; the
// tree-walking interpreter in internal/xquery stays alive solely as the
// differential reference, reachable through the -engine=interp escape hatch
// every CLI exposes (EngineByName maps the flag value to an Evaluator).

// Evaluator evaluates XQuery source against a context — the one signature
// both engines share, so call sites can flip engines without restructuring.
type Evaluator func(src string, ctx *xquery.Context) (xquery.Sequence, error)

// Engine names accepted by EngineByName (and the CLIs' -engine flags).
const (
	// EnginePlan is the default: compile to a reusable closure plan through
	// the process-wide cache, then evaluate.
	EnginePlan = "plan"
	// EngineInterp is the escape hatch: the reference tree-walking
	// interpreter, kept for differential testing and triage.
	EngineInterp = "interp"
)

// defaultCache is the process-wide plan cache behind EvalQuery: each
// distinct query text is parsed and compiled once per process, which is the
// reuse pattern repeated facade and CLI evaluations exhibit.
var defaultCache = NewCache()

// EvalQuery evaluates src with the compiled-plan engine, the default
// execution path. Plans are compiled through the process-wide cache, so
// repeated evaluations of the same query text skip the parser and compiler.
// Parse and compile failures are returned unchanged and never cached.
func EvalQuery(src string, ctx *xquery.Context) (xquery.Sequence, error) {
	p, err := defaultCache.Get(src)
	if err != nil {
		return nil, err
	}
	return p.Eval(ctx)
}

// DefaultCacheStats reports the process-wide plan cache's hit/miss counts —
// observability for the flipped default path.
func DefaultCacheStats() (hits, misses int64) {
	return defaultCache.Stats()
}

// EngineByName maps an -engine flag value to its evaluator: "plan" (or "")
// selects the compiled default, "interp" the differential-reference
// interpreter. Unknown names are an error listing the valid values.
func EngineByName(name string) (Evaluator, error) {
	switch name {
	case "", EnginePlan:
		return EvalQuery, nil
	case EngineInterp:
		return xquery.EvalQuery, nil
	default:
		return nil, fmt.Errorf("plan: unknown engine %q (want %q or %q)", name, EnginePlan, EngineInterp)
	}
}
