package plan_test

import (
	"errors"
	"testing"

	"thalia/internal/xquery"
	"thalia/internal/xquery/plan"
)

// FuzzCompileEval is the plan ≡ interpreter differential fuzzer: any input
// xquery.Parse accepts must compile, and evaluating the plan must produce
// exactly the interpreter's outcome — the same rendered Sequence on
// success, or an error of the same class (*xquery.DynamicError vs not) with
// the same message on failure. Neither engine may panic.
func FuzzCompileEval(f *testing.F) {
	seeds := []string{
		`FOR $c in doc("a.xml")/catalog/course WHERE $c/instructor = "Mark" RETURN $c/title`,
		`FOR $t in doc("a.xml")//title ORDER BY $t DESCENDING RETURN <r k="{$t}">{$t}</r>`,
		`FOR $c in doc("a.xml")/catalog/course[2] LET $t := $c/title RETURN concat($t, "!")`,
		`FOR $c in doc("a.xml")/catalog/course WHERE $c/@credits + 1 > 4 RETURN $c/@id`,
		`FOR $x in (1, 2) FOR $x in ($x, 10) RETURN $x`,
		`some $t in doc("a.xml")//title satisfies contains($t, "Lab")`,
		`every $t in doc("a.xml")//title satisfies $t != ""`,
		`if ($g = "second") then $n else -$n`,
		`(1, "two", 7 div 2, 7 mod 2, tag("x"))`,
		`count(doc("a.xml")//course[title = "Datenbanken"])`,
		`substring("abcdef", 2, 3)`,
		`$missing`,
		`1 div 0`,
		`doc("nope.xml")`,
		`substring()`,
		`string-join(doc("a.xml")//instructor, "; ")`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := xquery.Parse(src)
		if err != nil {
			return // not this fuzzer's concern; FuzzParse covers the parser
		}
		p, err := plan.Compile(expr)
		if err != nil {
			t.Fatalf("parse-accepted input failed to compile: %q: %v", src, err)
		}
		want, werr := xquery.Eval(expr, newTestContext(t))
		got, gerr := p.Eval(newTestContext(t))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error divergence on %q:\ninterpreter: %v\nplan:        %v", src, werr, gerr)
		}
		if werr != nil {
			var wd, gd *xquery.DynamicError
			if errors.As(werr, &wd) != errors.As(gerr, &gd) {
				t.Fatalf("error class divergence on %q:\ninterpreter: %T %v\nplan:        %T %v",
					src, werr, werr, gerr, gerr)
			}
			if werr.Error() != gerr.Error() {
				t.Fatalf("error message divergence on %q:\ninterpreter: %v\nplan:        %v", src, werr, gerr)
			}
			return
		}
		w, g := renderSequence(want), renderSequence(got)
		if w != g {
			t.Fatalf("result divergence on %q:\ninterpreter:\n%s\nplan:\n%s", src, w, g)
		}
	})
}
