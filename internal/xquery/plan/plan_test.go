package plan_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"thalia/internal/explain"
	"thalia/internal/xmldom"
	"thalia/internal/xquery"
	"thalia/internal/xquery/plan"
)

// testDoc is a small heterogeneous document exercising child, descendant
// and attribute axes, predicates, and mixed text.
const testDoc = `<catalog>
  <course id="c1" credits="3">
    <title>Database Systems</title>
    <instructor>Mark</instructor>
    <room>CSE 101</room>
  </course>
  <course id="c2" credits="4">
    <title>Operating Systems</title>
    <instructor>Helen</instructor>
    <nested><title>Lab</title></nested>
  </course>
  <course id="c3">
    <title>Datenbanken</title>
    <instructor>Jana</instructor>
  </course>
</catalog>`

func testResolver(t testing.TB) xquery.DocResolver {
	doc, err := xmldom.ParseString(testDoc)
	if err != nil {
		t.Fatalf("parse test doc: %v", err)
	}
	return func(uri string) (*xmldom.Document, error) {
		if uri == "a.xml" || uri == "a" {
			return doc, nil
		}
		return nil, fmt.Errorf("no such document %q", uri)
	}
}

// newTestContext builds a context with a resolver, globals (including a
// shadowed one) and an external function — the full runtime surface both
// engines must treat identically.
func newTestContext(t testing.TB) *xquery.Context {
	ctx := xquery.NewContext(testResolver(t))
	ctx.Bind("g", xquery.Sequence{"first"})
	ctx.Bind("g", xquery.Sequence{"second"}) // shadows the first binding
	ctx.Bind("n", xquery.Sequence{2.0})
	ctx.Register(&xquery.ExternalFunc{
		Name:       "Tag",
		Complexity: 1,
		Fn: func(args []xquery.Sequence) (xquery.Sequence, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = xquery.SequenceString(a)
			}
			return xquery.Sequence{"tag(" + strings.Join(parts, ",") + ")"}, nil
		},
	})
	return ctx
}

// renderSequence serializes a result sequence with explicit item types, so
// "true" the string and true the boolean cannot be confused when comparing
// the two engines.
func renderSequence(s xquery.Sequence) string {
	var b strings.Builder
	for i, item := range s {
		fmt.Fprintf(&b, "[%d] ", i)
		switch v := item.(type) {
		case *xmldom.Document:
			b.WriteString("document " + v.Root.String())
		case *xmldom.Element:
			b.WriteString("element " + v.String())
		case xquery.AttrRef:
			fmt.Fprintf(&b, "attribute %s=%q", v.Name, v.Value)
		case string:
			fmt.Fprintf(&b, "string %q", v)
		case float64:
			fmt.Fprintf(&b, "number %v", v)
		case bool:
			fmt.Fprintf(&b, "boolean %v", v)
		default:
			fmt.Fprintf(&b, "%T %v", v, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// equivalenceQueries covers every AST node kind (the plancoverage analyzer
// checks this file mentions each kind's exercising query) and the runtime
// semantics both engines share.
var equivalenceQueries = []string{
	// PathExpr + FLWOR + StringLit + Binary comparison.
	`FOR $c in doc("a.xml")/catalog/course WHERE $c/instructor = "Mark" RETURN $c/title`,
	// Descendant axis from the document (index-served in the plan engine).
	`FOR $t in doc("a.xml")//title RETURN $t`,
	`FOR $t in doc("a.xml")//nested/title RETURN $t`,
	// AxisAttribute + VarRef + predicates.
	`FOR $c in doc("a.xml")/catalog/course WHERE $c/@credits >= 4 RETURN $c/@id`,
	`FOR $c in doc("a.xml")/catalog/course[2] RETURN $c/title`,
	`FOR $c in doc("a.xml")/catalog/course[instructor = "Jana"] RETURN $c/title`,
	// NumberLit + Unary + arithmetic Binary.
	`FOR $c in doc("a.xml")/catalog/course WHERE $c/@credits + 1 > 4 RETURN $c/@id`,
	`(-3) + 10 * 2`,
	`7 div 2`,
	`7 mod 2`,
	// SeqExpr.
	`(1, "two", doc("a.xml")//title)`,
	// Call: builtins (pre-resolved) and an external function.
	`FOR $c in doc("a.xml")/catalog/course WHERE contains($c/title, "Data") RETURN upper-case($c/instructor)`,
	`count(doc("a.xml")//course)`,
	`string-join(doc("a.xml")//instructor, "; ")`,
	`tag("a", 1)`,
	// ElemCtor with attributes, literal text, nested ctor, and computed
	// content.
	`FOR $c in doc("a.xml")/catalog/course
	 RETURN <row id="{$c/@id}">title: {$c/title} <inner>{$c/instructor}</inner></row>`,
	// Quantified, both flavors.
	`some $t in doc("a.xml")//title satisfies contains($t, "Lab")`,
	`every $t in doc("a.xml")//title satisfies $t != ""`,
	// IfExpr.
	`if (doc("a.xml")//course[3]) then "three" else "fewer"`,
	// FLWOR order by, both directions, and let bindings.
	`FOR $c in doc("a.xml")/catalog/course ORDER BY $c/title RETURN $c/title`,
	`FOR $c in doc("a.xml")/catalog/course ORDER BY $c/title DESCENDING RETURN $c/title`,
	`FOR $c in doc("a.xml")/catalog/course LET $t := $c/title WHERE $t != "" RETURN concat($t, "!")`,
	// Globals, including the shadowed one, and error cases.
	`concat($g, "/", $n)`,
	`$missing`,
	`doc("nope.xml")`,
	`1 div 0`,
	`substring("abc")`,
	// Shadowing: for-over-for, let-over-for, nested predicate context items.
	`FOR $x in (1, 2) FOR $x in ($x, 10) RETURN $x`,
	`FOR $x in ("a", "b") LET $x := concat($x, "!") RETURN $x`,
	`FOR $c in doc("a.xml")/catalog/course[nested[title = "Lab"]] RETURN $c/@id`,
}

// evalBoth runs src through the interpreter and the compiled plan against
// independent but identically configured contexts, and returns both
// outcomes.
func evalBoth(t *testing.T, src string) (want, got xquery.Sequence, werr, gerr error) {
	t.Helper()
	expr, err := xquery.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	want, werr = xquery.Eval(expr, newTestContext(t))
	p, err := plan.Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	got, gerr = p.Eval(newTestContext(t))
	return want, got, werr, gerr
}

func TestPlanMatchesInterpreter(t *testing.T) {
	for _, src := range equivalenceQueries {
		t.Run(src, func(t *testing.T) {
			want, got, werr, gerr := evalBoth(t, src)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("error divergence:\ninterpreter: %v\nplan:        %v", werr, gerr)
			}
			if werr != nil {
				if werr.Error() != gerr.Error() {
					t.Fatalf("error message divergence:\ninterpreter: %v\nplan:        %v", werr, gerr)
				}
				return
			}
			w, g := renderSequence(want), renderSequence(got)
			if w != g {
				t.Fatalf("result divergence:\ninterpreter:\n%s\nplan:\n%s", w, g)
			}
		})
	}
}

// TestShadowedBindings is the regression test for ordered-slot variable
// binding: repeated Context.Bind calls shadow deterministically, and
// shadowed for/let bindings resolve to the innermost binding in both
// engines.
func TestShadowedBindings(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`$g`, `[0] string "second"` + "\n"},
		{`FOR $x in (1, 2) FOR $x in ($x, 10) RETURN $x`,
			"[0] number 1\n[1] number 10\n[2] number 2\n[3] number 10\n"},
		{`FOR $x in ("a", "b") LET $x := concat($x, "!") RETURN $x`,
			`[0] string "a!"` + "\n" + `[1] string "b!"` + "\n"},
		{`FOR $g in ("inner") RETURN concat($g, "-", $n)`,
			`[0] string "inner-2"` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.src, func(t *testing.T) {
			want, got, werr, gerr := evalBoth(t, tc.src)
			if werr != nil || gerr != nil {
				t.Fatalf("unexpected errors: interpreter=%v plan=%v", werr, gerr)
			}
			if w := renderSequence(want); w != tc.want {
				t.Fatalf("interpreter: got\n%s\nwant\n%s", w, tc.want)
			}
			if g := renderSequence(got); g != tc.want {
				t.Fatalf("plan: got\n%s\nwant\n%s", g, tc.want)
			}
		})
	}
}

func TestCacheCompilesOnce(t *testing.T) {
	cache := plan.NewCache()
	const src = `count(doc("a.xml")//course)`
	p1, err := cache.Get(src)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	p2, err := cache.Get(src)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if p1 != p2 {
		t.Fatalf("cache returned distinct plans for the same source")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("Stats() = %d hits, %d misses; want 1, 1", hits, misses)
	}
	if cache.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", cache.Len())
	}
	if _, err := cache.Get(`FOR`); err == nil {
		t.Fatalf("Get of a syntax error compiled")
	}
	if cache.Len() != 1 {
		t.Fatalf("syntax errors must not be cached; Len() = %d", cache.Len())
	}
}

func TestPlanExplainShowsReuseAndIndexHits(t *testing.T) {
	p, err := plan.CompileQuery(`count(doc("a.xml")//title)`)
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	var outline string
	for i := 0; i < 2; i++ {
		ctx := newTestContext(t)
		ctx.Explain = explain.NewRecorder()
		if _, err := p.Eval(ctx); err != nil {
			t.Fatalf("Eval: %v", err)
		}
		outline = ctx.Explain.Trace().Outline()
	}
	if !strings.Contains(outline, "plan: plan") || !strings.Contains(outline, "evals=2") {
		t.Fatalf("second evaluation's trace should carry evals=2:\n%s", outline)
	}
	if !strings.Contains(outline, "index: //title") || !strings.Contains(outline, "hits=4") {
		t.Fatalf("trace should carry the index hit for //title (4 titles):\n%s", outline)
	}
}

func TestPlanDumpShape(t *testing.T) {
	p, err := plan.CompileQuery(
		`FOR $c in doc("a.xml")/catalog/course WHERE $c/title = "Lab" ORDER BY $c/@id RETURN <r>{$c/title}</r>`)
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	dump := p.Dump()
	for _, want := range []string{
		"flwor",
		"for $c slot=0",
		"call doc() builtin",
		"step child catalog",
		"step child course",
		"var $c slot=0",
		"order by",
		"element <r>",
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("Dump() missing %q:\n%s", want, dump)
		}
	}
	if p.Source() == "" {
		t.Fatalf("CompileQuery should retain the source text")
	}
}

func TestCompileQueryReturnsParseErrors(t *testing.T) {
	_, err := plan.CompileQuery(`FOR $x`)
	var pe *xquery.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("CompileQuery of bad input returned %T (%v), want *xquery.ParseError", err, err)
	}
}
