package xquery

import "strings"

// pathName renders a compact label for a path expression's root, used as the
// explain span name: doc("uri") for a document call, $x for a variable, "."
// for a relative path. Only called when an explain recorder is attached, so
// the string work stays off the zero-overhead path.
func pathName(e *PathExpr) string {
	var b strings.Builder
	switch root := e.Root.(type) {
	case nil:
		b.WriteString(".")
	case *Call:
		if root.Name == "doc" && len(root.Args) == 1 {
			if lit, ok := root.Args[0].(*StringLit); ok {
				b.WriteString(`doc("` + lit.Val + `")`)
				break
			}
		}
		b.WriteString(root.Name + "()")
	case *VarRef:
		b.WriteString("$" + root.Name)
	default:
		b.WriteString("(...)")
	}
	for _, st := range e.Steps {
		b.WriteString(stepName(st))
	}
	return b.String()
}

// stepName renders one step as its path syntax: /Name, //Name or /@Name,
// with [..] marking predicates.
func stepName(st Step) string {
	var prefix string
	switch st.Axis {
	case AxisDescendant:
		prefix = "//"
	case AxisAttribute:
		prefix = "/@"
	default:
		prefix = "/"
	}
	name := prefix + st.Name
	if len(st.Predicates) > 0 {
		name += "[..]"
	}
	return name
}
