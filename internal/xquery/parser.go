package xquery

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles query text into an expression tree. A failure is reported
// as a *ParseError carrying the byte offset and the 1-based line and column
// of the offending token.
func Parse(src string) (Expr, error) {
	e, err := parse(src)
	if err != nil {
		var pe *ParseError
		if errors.As(err, &pe) {
			pe.locate(src)
		}
		return nil, err
	}
	return e, nil
}

func parse(src string) (Expr, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExprSeq()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %q after end of query", p.tok.text)
	}
	return e, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

// isKeyword reports whether the current token is the given keyword,
// case-insensitively (the paper writes FOR/WHERE/RETURN in caps).
func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokName && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %q, found %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) isOp(op string) bool {
	return p.tok.kind == tokOp && p.tok.text == op
}

func (p *parser) expectOp(op string) error {
	if !p.isOp(op) {
		return p.errorf("expected %q, found %q", op, p.tok.text)
	}
	return p.advance()
}

// parseExprSeq parses a comma-separated sequence.
func (p *parser) parseExprSeq() (Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if !p.isOp(",") {
		return first, nil
	}
	items := []Expr{first}
	for p.isOp(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	return &SeqExpr{Items: items}, nil
}

func (p *parser) parseExprSingle() (Expr, error) {
	switch {
	case p.isKeyword("for") || p.isKeyword("let"):
		return p.parseFLWOR()
	case p.isKeyword("some") || p.isKeyword("every"):
		return p.parseQuantified()
	case p.isKeyword("if"):
		return p.parseIf()
	default:
		return p.parseOr()
	}
}

func (p *parser) parseFLWOR() (*FLWOR, error) {
	f := &FLWOR{}
	for {
		switch {
		case p.isKeyword("for"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				if p.tok.kind != tokVar {
					return nil, p.errorf("expected $variable in for clause, found %q", p.tok.text)
				}
				name := p.tok.text
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectKeyword("in"); err != nil {
					return nil, err
				}
				in, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				f.Fors = append(f.Fors, ForBinding{Var: name, In: in})
				if !p.isOp(",") {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		case p.isKeyword("let"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				if p.tok.kind != tokVar {
					return nil, p.errorf("expected $variable in let clause, found %q", p.tok.text)
				}
				name := p.tok.text
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectOp(":="); err != nil {
					return nil, err
				}
				val, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				f.Lets = append(f.Lets, LetBinding{Var: name, Val: val})
				if !p.isOp(",") {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		default:
			goto clauses
		}
	}
clauses:
	if len(f.Fors) == 0 && len(f.Lets) == 0 {
		return nil, p.errorf("FLWOR expression has no for or let clause")
	}
	if p.isKeyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		f.Where = w
	}
	if p.isKeyword("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		key, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		spec := &OrderSpec{Key: key}
		if p.isKeyword("descending") {
			spec.Descending = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.isKeyword("ascending") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		f.OrderBy = spec
	}
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	ret, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	// The paper's queries juxtapose return expressions ("RETURN $b/Title
	// $b/Day"); accept that as an implicit sequence.
	var extra []Expr
	for p.tok.kind == tokVar || p.tok.kind == tokTagOpen {
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		extra = append(extra, e)
	}
	if len(extra) > 0 {
		f.Return = &SeqExpr{Items: append([]Expr{ret}, extra...)}
	} else {
		f.Return = ret
	}
	return f, nil
}

func (p *parser) parseQuantified() (Expr, error) {
	every := p.isKeyword("every")
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokVar {
		return nil, p.errorf("expected $variable, found %q", p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	in, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &Quantified{Every: every, Var: name, In: in, Sat: sat}, nil
}

func (p *parser) parseIf() (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExprSeq()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &IfExpr{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.isOp(op) {
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isKeyword("div") || p.isKeyword("mod") {
		op := p.tok.text
		if p.isOp("*") {
			op = "*"
		} else {
			op = strings.ToLower(op)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.isOp("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePath()
}

// parsePath parses a primary expression followed by /step or //step chains.
func (p *parser) parsePath() (Expr, error) {
	root, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	var steps []Step
	for p.isOp("/") || p.isOp("//") {
		axis := AxisChild
		if p.isOp("//") {
			axis = AxisDescendant
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		st, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		steps = append(steps, st)
	}
	if len(steps) == 0 {
		return root, nil
	}
	return &PathExpr{Root: root, Steps: steps}, nil
}

func (p *parser) parseStep(axis StepAxis) (Step, error) {
	st := Step{Axis: axis}
	if p.isOp("@") {
		if axis == AxisDescendant {
			st.Axis = AxisAttribute // //@x means descendant-or-self attr; treat as attribute on descendants
		} else {
			st.Axis = AxisAttribute
		}
		if err := p.advance(); err != nil {
			return st, err
		}
	}
	switch {
	case p.tok.kind == tokName:
		st.Name = p.tok.text
	case p.isOp("*"):
		st.Name = "*"
	default:
		return st, p.errorf("expected step name, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return st, err
	}
	for p.isOp("[") {
		if err := p.advance(); err != nil {
			return st, err
		}
		pred, err := p.parseExprSeq()
		if err != nil {
			return st, err
		}
		if err := p.expectOp("]"); err != nil {
			return st, err
		}
		st.Predicates = append(st.Predicates, pred)
	}
	return st, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokVar:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &VarRef{Name: name}, nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &StringLit{Val: s}, nil
	case tokNumber:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumberLit{Val: v}, nil
	case tokTagOpen:
		return p.parseCtor()
	case tokName:
		name := p.tok.text
		namePos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isOp("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &Call{Name: strings.ToLower(name)}
			if !p.isOp(")") {
				for {
					arg, err := p.parseExprSingle()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.isOp(",") {
						break
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// A bare name is a child step relative to the context item.
		_ = namePos
		st := Step{Axis: AxisChild, Name: name}
		for p.isOp("[") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			pred, err := p.parseExprSeq()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			st.Predicates = append(st.Predicates, pred)
		}
		return &PathExpr{Root: nil, Steps: []Step{st}}, nil
	case tokOp:
		switch p.tok.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isOp(")") { // empty sequence ()
				if err := p.advance(); err != nil {
					return nil, err
				}
				return &SeqExpr{}, nil
			}
			e, err := p.parseExprSeq()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "@":
			// Attribute step relative to context item (inside predicates).
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokName && !p.isOp("*") {
				return nil, p.errorf("expected attribute name after @")
			}
			name := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &PathExpr{Root: nil, Steps: []Step{{Axis: AxisAttribute, Name: name}}}, nil
		}
	}
	return nil, p.errorf("unexpected token %q", p.tok.text)
}
