// Package xquery implements the subset of XQuery 1.0 that THALIA's twelve
// benchmark queries are written in: FLWOR expressions (for/let/where/order
// by/return), path expressions with child, descendant and attribute steps
// and predicates, general comparisons, arithmetic, the core function
// library, and direct element constructors for shaping integrated results.
//
// One deliberate extension matches the paper's usage: the benchmark queries
// compare with SQL-LIKE patterns, e.g. WHERE $b/CourseName = '%Database%'.
// When one side of an equality is a string literal containing '%', the
// comparison is performed as a LIKE match (see eval.go).
package xquery

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF     tokenKind = iota
	tokName              // identifiers and keywords (case-insensitive keywords)
	tokVar               // $name
	tokString            // 'x' or "x"
	tokNumber            // 123 or 1.5
	tokOp                // operators and punctuation
	tokTagOpen           // "<" immediately followed by a name: element constructor
)

// token is one lexical token with its source offset for error reporting.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// ParseError reports a lexing or parsing failure. Pos is the byte offset
// into the query text; Line and Column (both 1-based) are filled in by
// Parse before the error is returned, so that tools such as thalia-vet can
// point at the offending spot in a query.
type ParseError struct {
	Pos    int
	Line   int
	Column int
	Msg    string
}

// SyntaxError is the historical name of ParseError.
type SyntaxError = ParseError

// Error implements error.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("xquery: syntax error at line %d, column %d: %s", e.Line, e.Column, e.Msg)
	}
	return fmt.Sprintf("xquery: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// locate fills Line and Column from the query source, if not already set.
func (e *ParseError) locate(src string) {
	if e.Line > 0 {
		return
	}
	pos := e.Pos
	if pos > len(src) {
		pos = len(src)
	}
	e.Line, e.Column = 1, 1
	for _, r := range src[:pos] {
		if r == '\n' {
			e.Line++
			e.Column = 1
		} else {
			e.Column++
		}
	}
}

// lexer produces tokens on demand. The parser can reposition it (setPos)
// after scanning a direct element constructor, which uses markup rules the
// token grammar does not cover.
type lexer struct {
	src string
	pos int
}

// setPos repositions the lexer; used after raw markup scans.
func (l *lexer) setPos(p int) { l.pos = p }

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '$':
		l.pos++
		name := l.scanName()
		if name == "" {
			return token{}, &SyntaxError{Pos: start, Msg: "expected variable name after $"}
		}
		return token{kind: tokVar, text: name, pos: start}, nil
	case c == '\'' || c == '"':
		s, err := l.scanString(c)
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: s, pos: start}, nil
	case unicode.IsDigit(rune(c)):
		return token{kind: tokNumber, text: l.scanNumber(), pos: start}, nil
	case isNameStart(c):
		return token{kind: tokName, text: l.scanName(), pos: start}, nil
	case c == '<':
		// "<name" begins a direct element constructor; anything else is the
		// less-than operator (possibly "<=").
		if l.pos+1 < len(l.src) && isNameStart(l.src[l.pos+1]) {
			l.pos++
			return token{kind: tokTagOpen, text: "<", pos: start}, nil
		}
		if strings.HasPrefix(l.src[l.pos:], "<=") {
			l.pos += 2
			return token{kind: tokOp, text: "<=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: "<", pos: start}, nil
	default:
		op := l.scanOp()
		if op == "" {
			return token{}, &SyntaxError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
		return token{kind: tokOp, text: op, pos: start}, nil
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// (: comment :)
		if strings.HasPrefix(l.src[l.pos:], "(:") {
			end := strings.Index(l.src[l.pos+2:], ":)")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
			continue
		}
		return
	}
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || (c >= '0' && c <= '9') || c == '.' || c == ':'
}

// scanName reads an XML-style name. A '-' is included only when followed by
// a letter, so "starts-with" lexes as one name but "$a -1" does not.
func (l *lexer) scanName() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isNameChar(c) {
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(l.src) && isNameStart(l.src[l.pos+1]) && l.pos > start {
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) scanString(quote byte) (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// Doubled quote is an escaped quote, per XQuery.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", &SyntaxError{Pos: start, Msg: "unterminated string literal"}
}

func (l *lexer) scanNumber() string {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
		l.pos++
	}
	return l.src[start:l.pos]
}

// scanOp reads a single operator token.
func (l *lexer) scanOp() string {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", ">=", "<=", ":=", "//":
		l.pos += 2
		return two
	}
	switch c := l.src[l.pos]; c {
	case '=', '>', '<', '/', '(', ')', ',', '+', '-', '*', '[', ']', '@', '{', '}':
		l.pos++
		return string(c)
	}
	return ""
}
