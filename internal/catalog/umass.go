package catalog

import (
	"fmt"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/tess"
)

// University of Massachusetts: the challenge schema for the simple-mapping
// query — its meeting times are printed on a 24-hour clock ("16:00-17:15"),
// where CMU uses a bare 12-hour clock ("1:30 - 2:50"). Resolving the two
// requires a mathematical transformation of the values (case 2).
func init() {
	courses := []Course{
		{
			Number:      "CS430",
			Title:       "Database Systems",
			Instructors: []Instructor{{Name: "Immerman"}},
			Days:        "TTh",
			Start:       16 * 60,
			End:         17*60 + 15,
			Room:        "LGRC A301",
			Credits:     3,
		},
		{
			Number:      "CS445",
			Title:       "Database Design and Implementation",
			Instructors: []Instructor{{Name: "Diao"}},
			Days:        "MW",
			Start:       13*60 + 30,
			End:         14*60 + 45,
			Room:        "CMPS 140",
			Credits:     3,
		},
		{
			Number:      "CS377",
			Title:       "Operating Systems",
			Instructors: []Instructor{{Name: "Shenoy"}},
			Days:        "TTh",
			Start:       13 * 60,
			End:         14*60 + 15,
			Room:        "ELAB 323",
			Credits:     4,
		},
	}
	for i, p := range poolSlice("umass", 10) {
		courses = append(courses, Course{
			Number:      fmt.Sprintf("CS%d", 500+p.Num/2),
			Title:       p.Title,
			Instructors: []Instructor{{Name: p.Surname}},
			Days:        p.Days,
			Start:       p.Start,
			End:         p.End,
			Room:        "LGRT " + itoa(200+i*13),
			Credits:     p.Credits,
		})
	}

	register(&Source{
		Name:       "umass",
		University: "University of Massachusetts Amherst",
		Country:    "USA",
		Style:      "24-hour clock for meeting times",
		Exhibits:   []hetero.Case{hetero.SimpleMapping},
		Courses:    courses,
		RenderHTML: renderUMass,
		Wrapper:    umassWrapper,
	})
}

func renderUMass(s *Source) string {
	var b strings.Builder
	b.WriteString(`<html><head><title>UMass CS Course Schedule</title></head><body>
<h2>University of Massachusetts Amherst &mdash; Computer Science</h2>
<table>
<tr><th>Number</th><th>Name</th><th>Instructor</th><th>Days</th><th>Time</th><th>Room</th></tr>
`)
	for i := range s.Courses {
		c := &s.Courses[i]
		fmt.Fprintf(&b, `<tr class="course"><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s-%s</td><td>%s</td></tr>
`, c.Number, xmlEscape(c.Title), xmlEscape(c.Instructors[0].Name), c.Days,
			Clock24(c.Start), Clock24(c.End), xmlEscape(c.Room))
	}
	b.WriteString("</table></body></html>\n")
	return b.String()
}

func umassWrapper() *tess.Config {
	return &tess.Config{
		Source: "umass",
		Rules: []*tess.Rule{{
			Name:   "Course",
			Begin:  `<tr class="course">`,
			End:    `</tr>`,
			Repeat: true,
			Rules: []*tess.Rule{
				{Name: "Number", Begin: `<td>`, End: `</td>`},
				{Name: "Name", Begin: `<td>`, End: `</td>`},
				{Name: "Instructor", Begin: `<td>`, End: `</td>`},
				{Name: "Days", Begin: `<td>`, End: `</td>`},
				{Name: "Time", Begin: `<td>`, End: `</td>`},
				{Name: "Room", Begin: `<td>`, End: `</td>`},
			},
		}},
	}
}
