package catalog

import (
	"fmt"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/tess"
)

// University of California, San Diego: the challenge schema for case 11.
// Its catalog lays instructors out under *term* columns — "Fall 2003",
// "Winter 2004" — so the attribute names say nothing about the values
// stored in them (they hold instructor names).
func init() {
	courses := []Course{
		{
			Number:      "CSE232",
			Title:       "Database System Implementation",
			Instructors: []Instructor{{Name: "Yannis"}, {Name: "Deutsch"}},
			Days:        "TTh",
			Start:       14 * 60,
			End:         15*60 + 20,
			Room:        "EBU3B 2154",
			Credits:     4,
		},
		{
			Number:      "CSE132A",
			Title:       "Database System Principles",
			Instructors: []Instructor{{Name: "Vianu"}, {Name: "Staff"}},
			Days:        "MWF",
			Start:       11 * 60,
			End:         11*60 + 50,
			Room:        "CENTR 119",
			Credits:     4,
		},
	}
	for i, p := range poolSlice("ucsd", 11) {
		second := "Staff"
		if i%2 == 0 {
			second = "(not offered)"
		}
		courses = append(courses, Course{
			Number:      fmt.Sprintf("CSE%d", p.Num),
			Title:       p.Title,
			Instructors: []Instructor{{Name: p.Surname}, {Name: second}},
			Days:        p.Days,
			Start:       p.Start,
			End:         p.End,
			Room:        "EBU3B " + itoa(1000+i*101),
			Credits:     p.Credits,
		})
	}

	register(&Source{
		Name:       "ucsd",
		University: "University of California, San Diego",
		Country:    "USA",
		Style:      `term columns ("Fall 2003", "Winter 2004") holding instructor names — attribute names do not define semantics`,
		Exhibits:   []hetero.Case{hetero.AttributeNameDoesNotDefineSemantics},
		Courses:    courses,
		RenderHTML: renderUCSD,
		Wrapper:    ucsdWrapper,
	})
}

// ucsdTerm returns the instructor listed under the i-th term column.
func ucsdTerm(c *Course, i int) string {
	if i < len(c.Instructors) {
		return c.Instructors[i].Name
	}
	return "Staff"
}

func renderUCSD(s *Source) string {
	var b strings.Builder
	b.WriteString(`<html><head><title>UCSD CSE Course Offerings</title></head><body>
<h2>UC San Diego &mdash; CSE Course Offerings by Term</h2>
<table>
<tr><th>Course</th><th>Title</th><th>Fall 2003</th><th>Winter 2004</th><th>Time</th><th>Room</th></tr>
`)
	for i := range s.Courses {
		c := &s.Courses[i]
		fmt.Fprintf(&b, `<tr class="course"><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s %s-%s</td><td>%s</td></tr>
`, c.Number, xmlEscape(c.Title), xmlEscape(ucsdTerm(c, 0)), xmlEscape(ucsdTerm(c, 1)),
			c.Days, Clock12(c.Start), Clock12(c.End), xmlEscape(c.Room))
	}
	b.WriteString("</table></body></html>\n")
	return b.String()
}

func ucsdWrapper() *tess.Config {
	return &tess.Config{
		Source: "ucsd",
		Rules: []*tess.Rule{{
			Name:   "Course",
			Begin:  `<tr class="course">`,
			End:    `</tr>`,
			Repeat: true,
			Rules: []*tess.Rule{
				{Name: "Number", Begin: `<td>`, End: `</td>`},
				{Name: "Title", Begin: `<td>`, End: `</td>`},
				// The column titles become the element names, as the
				// testbed's wrappers always do — hence "Fall2003" holding an
				// instructor name (case 11).
				{Name: "Fall2003", Begin: `<td>`, End: `</td>`},
				{Name: "Winter2004", Begin: `<td>`, End: `</td>`},
				{Name: "Time", Begin: `<td>`, End: `</td>`},
				{Name: "Room", Begin: `<td>`, End: `</td>`},
			},
		}},
	}
}
