package catalog

import (
	"strings"
	"testing"

	"thalia/internal/hetero"
	"thalia/internal/tess"
	"thalia/internal/xquery"
)

func TestTestbedSize(t *testing.T) {
	all := All()
	if len(all) < 25 {
		t.Fatalf("testbed has %d sources, the paper promises 25+", len(all))
	}
	names := map[string]bool{}
	for _, s := range all {
		if names[s.Name] {
			t.Errorf("duplicate source %s", s.Name)
		}
		names[s.Name] = true
	}
	for _, key := range []string{"brown", "cmu", "umd", "gatech", "eth", "toronto", "umich", "ucsd", "umass"} {
		if !names[key] {
			t.Errorf("missing paper-named source %s", key)
		}
	}
}

// Every source must complete the full THALIA pipeline: render HTML, extract
// with its TESS wrapper, infer a schema, and have the extracted document
// validate against that schema.
func TestEverySourceExtractsAndValidates(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			page := s.Page()
			if !strings.Contains(page, "<html>") {
				t.Error("page does not look like HTML")
			}
			doc, err := s.Document()
			if err != nil {
				t.Fatalf("Document: %v", err)
			}
			if doc.Root.Name != s.Name {
				t.Errorf("root = %q, want %q", doc.Root.Name, s.Name)
			}
			if len(doc.Root.ChildElements()) == 0 {
				t.Fatal("no courses extracted")
			}
			if len(doc.Root.ChildElements()) < 3 {
				t.Errorf("only %d courses extracted", len(doc.Root.ChildElements()))
			}
			sch, err := s.Schema()
			if err != nil {
				t.Fatalf("Schema: %v", err)
			}
			if errs := sch.Validate(doc); len(errs) != 0 {
				t.Errorf("extracted document does not validate: %v", errs[0])
			}
			if len(s.Exhibits) == 0 {
				t.Error("source declares no heterogeneity exhibits")
			}
		})
	}
}

func TestCoursesPerSource(t *testing.T) {
	total := 0
	for _, s := range All() {
		if len(s.Courses) < 5 {
			t.Errorf("%s has only %d courses", s.Name, len(s.Courses))
		}
		total += len(s.Courses)
	}
	if total < 250 {
		t.Errorf("testbed has only %d courses total", total)
	}
}

// The paper's sample elements must be present verbatim in the extraction.
func TestPaperSampleElements(t *testing.T) {
	xml := func(name string) string {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.XML()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := []struct {
		source string
		wants  []string
	}{
		{"gatech", []string{"<Instructor>Mark</Instructor>", "Intro-Network Management", "JR or SR", "20381"}},
		{"cmu", []string{"<Lecturer>Mark</Lecturer>", "Database System Design and Implementation",
			"<Units>12</Units>", "1:30 - 2:50", "First course in sequence", "Song/Wing",
			"Specification and Verification", "Computer Networks", "<Day>F</Day>"}},
		{"umd", []string{"Data Structures", "CMSC420", "Software Engineering",
			"Singh, H.", "Memon, A.", "(Seats=40, Open=2, Waitlist=0)"}},
		{"brown", []string{"CS016", "Intro to Algorithms &amp; Data Structures",
			"http://www.cs.brown.edu/courses/cs016/", "Labs in Sunlab", "Computer Networks"}},
		{"eth", []string{"XML und Datenbanken", "<Umfang>2V1U</Umfang>", "Vernetzte Systeme (3. Semester)"}},
		{"toronto", []string{"Automated Verification", "Model Checking", "Clarke, Grumberg, Peled"}},
		{"umich", []string{"Database Management Systems", "<prerequisite>None</prerequisite>"}},
		{"ucsd", []string{"Database System Implementation", "<Fall2003>Yannis</Fall2003>", "<Winter2004>Deutsch</Winter2004>"}},
		{"umass", []string{"CS430", "16:00-17:15"}},
	}
	for _, c := range cases {
		t.Run(c.source, func(t *testing.T) {
			out := xml(c.source)
			for _, want := range c.wants {
				if !strings.Contains(out, want) {
					t.Errorf("%s.xml missing %q", c.source, want)
				}
			}
		})
	}
}

// All twelve heterogeneity cases must be exhibited by at least one source.
func TestAllHeterogeneitiesCovered(t *testing.T) {
	covered := map[hetero.Case]bool{}
	for _, s := range All() {
		for _, c := range s.Exhibits {
			covered[c] = true
		}
	}
	for _, c := range hetero.AllCases() {
		if !covered[c] {
			t.Errorf("no source exhibits %v", c)
		}
	}
}

func TestBrownTitleComposition(t *testing.T) {
	s, err := Get("brown")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.Document()
	if err != nil {
		t.Fatal(err)
	}
	// CS016's Title is mixed: a hyperlink plus the hour/day/time tail.
	var found bool
	for _, c := range doc.Root.ChildrenNamed("Course") {
		if c.ChildText("CrsNum") != "CS016" {
			continue
		}
		found = true
		title := c.Child("Title")
		if title == nil {
			t.Fatal("no Title")
		}
		a := title.Child("a")
		if a == nil {
			t.Fatalf("Title not a union type: %s", title)
		}
		if got := a.Text(); got != "Intro to Algorithms & Data Structures" {
			t.Errorf("anchor text = %q", got)
		}
		if !strings.Contains(title.DeepText(), "D hr. MWF 11-12") {
			t.Errorf("composite tail missing: %q", title.DeepText())
		}
	}
	if !found {
		t.Error("CS016 not extracted")
	}
}

func TestCMUCommentAttachedToTitle(t *testing.T) {
	s, _ := Get("cmu")
	doc, err := s.Document()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range doc.Root.ChildrenNamed("Course") {
		if c.ChildText("CourseNumber") != "15-415" {
			continue
		}
		title := c.Child("CourseTitle")
		if got := title.Text(); got != "Database System Design and Implementation" {
			t.Errorf("title text = %q", got)
		}
		if got := title.ChildText("Comment"); got != "First course in sequence" {
			t.Errorf("comment = %q", got)
		}
		return
	}
	t.Fatal("15-415 not extracted")
}

func TestTorontoMissingTextbook(t *testing.T) {
	s, _ := Get("toronto")
	doc, err := s.Document()
	if err != nil {
		t.Fatal(err)
	}
	withBook, withoutBook := 0, 0
	for _, c := range doc.Root.ChildrenNamed("course") {
		if c.HasChild("text") {
			withBook++
		} else {
			withoutBook++
		}
	}
	if withBook == 0 || withoutBook == 0 {
		t.Errorf("want both flavors of textbook presence, got %d with / %d without", withBook, withoutBook)
	}
}

func TestResolver(t *testing.T) {
	r := Resolver()
	for _, uri := range []string{"cmu.xml", "cmu"} {
		d, err := r(uri)
		if err != nil {
			t.Fatalf("resolve %s: %v", uri, err)
		}
		if d.Root.Name != "cmu" {
			t.Errorf("resolve %s: root %q", uri, d.Root.Name)
		}
	}
	if _, err := r("nowhere.xml"); err == nil {
		t.Error("expected error for unknown source")
	}
}

// The testbed is queryable end to end with the paper's own query shape.
func TestEndToEndQuery(t *testing.T) {
	ctx := xquery.NewContext(Resolver())
	seq, err := xquery.EvalQuery(`FOR $b in doc("gatech.xml")/gatech/Course
		WHERE $b/Instructor = "Mark"
		RETURN $b/Title`, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 || xquery.ItemString(seq[0]) != "Intro-Network Management" {
		t.Errorf("end-to-end query: %v", seq)
	}
}

func TestClockFormats(t *testing.T) {
	cases := []struct {
		min               int
		c12, c12bare, c24 string
	}{
		{13*60 + 30, "1:30pm", "1:30", "13:30"},
		{9 * 60, "9:00am", "9:00", "09:00"},
		{0, "12:00am", "12:00", "00:00"},
		{12 * 60, "12:00pm", "12:00", "12:00"},
		{16*60 + 5, "4:05pm", "4:05", "16:05"},
	}
	for _, c := range cases {
		if got := Clock12(c.min); got != c.c12 {
			t.Errorf("Clock12(%d) = %q, want %q", c.min, got, c.c12)
		}
		if got := Clock12Bare(c.min); got != c.c12bare {
			t.Errorf("Clock12Bare(%d) = %q, want %q", c.min, got, c.c12bare)
		}
		if got := Clock24(c.min); got != c.c24 {
			t.Errorf("Clock24(%d) = %q, want %q", c.min, got, c.c24)
		}
	}
}

func TestDeterministicExtraction(t *testing.T) {
	// Materialization is cached, so compare two fresh renders instead.
	s, _ := Get("umd")
	if s.RenderHTML(s) != s.RenderHTML(s) {
		t.Error("rendering is not deterministic")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("unknown-u"); err == nil {
		t.Error("expected error")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

// Deep extraction (the paper's future-work feature, implemented as an
// extension): Brown's Instructor column follows the home-page link and
// extracts first name and specialty — the paper's own examples of
// information living on the continuation page.
func TestDeepExtractionBrown(t *testing.T) {
	s, err := Get("brown")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := tess.ExtractPages(BrownDeepWrapper(), s.Page(), s.Fetch)
	if err != nil {
		t.Fatalf("deep extract: %v", err)
	}
	for _, c := range doc.Root.ChildrenNamed("Course") {
		if c.ChildText("CrsNum") != "CS016" {
			continue
		}
		in := c.Child("Instructor")
		if in == nil {
			t.Fatal("no Instructor")
		}
		if got := in.AttrValue("href"); got != "http://www.cs.brown.edu/~twd" {
			t.Errorf("href = %q", got)
		}
		if got := in.ChildText("FirstName"); got != "Thomas" {
			t.Errorf("FirstName = %q", got)
		}
		if got := in.ChildText("Specialty"); got != "Operating Systems" {
			t.Errorf("Specialty = %q", got)
		}
		if got := in.ChildText("Name"); got != "Thomas Doeppner" {
			t.Errorf("Name = %q", got)
		}
		return
	}
	t.Fatal("CS016 not found")
}

// Without a fetcher the deep wrapper degrades to the paper's documented
// behaviour: the URL of the link is returned as the extracted value.
func TestDeepExtractionFallsBackToURL(t *testing.T) {
	s, err := Get("brown")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := tess.Extract(BrownDeepWrapper(), s.Page())
	if err != nil {
		t.Fatal(err)
	}
	first := doc.Root.ChildrenNamed("Course")[0]
	if got := first.ChildText("Instructor"); got != "http://www.cs.brown.edu/~twd" {
		t.Errorf("fallback value = %q, want the URL", got)
	}
}

func TestFetchUnknownURL(t *testing.T) {
	s, err := Get("brown")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch("http://nowhere.invalid/x"); err == nil {
		t.Error("expected error for unknown linked page")
	}
	page, err := s.Fetch("http://www.cs.brown.edu/~ugur")
	if err != nil || !strings.Contains(page, "Database Systems") {
		t.Errorf("Fetch home page: %v", err)
	}
}

// The French source carries French element names and French titles — the
// second language dimension of case 5.
func TestFrenchSource(t *testing.T) {
	s, err := Get("epfl")
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.XML()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<Matière>", "<Intitulé>", "<Enseignant>", "<Horaire>", "<Salle>"} {
		if !strings.Contains(out, want) {
			t.Errorf("epfl.xml missing %q", want)
		}
	}
	// At least one French title must appear (the pool maps titles through
	// frenchTitles).
	hasFrench := false
	for _, c := range s.Courses {
		if FrenchTitle(c.Title) != c.Title && strings.Contains(out, FrenchTitle(c.Title)) {
			hasFrench = true
		}
	}
	if !hasFrench {
		t.Error("no French course titles in epfl extraction")
	}
}

// MaterializeAll warms every source cache concurrently; afterwards every
// Document() call returns the same shared (read-only) materialized value,
// and racing warm-up against direct Document access is safe.
func TestMaterializeAll(t *testing.T) {
	if err := MaterializeAll(8); err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := s.Document()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d2, err := s.Document()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d1 != d2 {
			t.Errorf("%s: Document() rebuilt instead of reusing the cache", name)
		}
	}
	// Degenerate worker counts clamp rather than deadlock.
	if err := MaterializeAll(0); err != nil {
		t.Fatal(err)
	}
	if err := MaterializeAll(1000); err != nil {
		t.Fatal(err)
	}
}
