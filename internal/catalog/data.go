package catalog

// This file holds the deterministic course pool that fills each source's
// catalog beyond the paper's verbatim sample courses. Every university draws
// a different slice of the pool (offset by a stable per-school index), so
// catalogs overlap — as real course catalogs do — without being identical.

// poolCourse is a neutral course description that renderers project into a
// university's local conventions.
type poolCourse struct {
	Num      int // numeric stem; schools format their own course numbers
	Title    string
	German   string // German title for German-language sources
	Surname  string // instructor surname
	Days     string
	Start    int // minutes since midnight
	End      int
	Room     string
	Credits  int
	Prereq   string
	Textbook string
	Desc     string
}

// coursePool is the shared deterministic pool. Titles deliberately include
// several "Database", "Data Structures", "Software", "Networks" and
// "Verification" courses so that every benchmark query has plausible
// matches and near-misses in most catalogs.
var coursePool = []poolCourse{
	{101, "Introduction to Programming", "Einführung in die Programmierung", "Rivera", "MWF", 9 * 60, 9*60 + 50, "HALL 101", 3, "", "Programming Fundamentals, 2nd ed.", "Variables, control flow, functions, and basic data types."},
	{161, "Discrete Mathematics", "Diskrete Mathematik", "Okafor", "TTh", 10 * 60, 11*60 + 15, "MATH 220", 3, "None", "Discrete Mathematics and Its Applications", "Logic, sets, relations, combinatorics, and graphs."},
	{220, "Data Structures", "Datenstrukturen", "Mount", "MWF", 10 * 60, 10*60 + 50, "CSI 2117", 3, "Introduction to Programming", "Algorithms in C++", "Lists, trees, hashing, and balanced search structures."},
	{231, "Computer Organization", "Rechnerorganisation", "Petrov", "TTh", 13 * 60, 14*60 + 15, "ENG 143", 4, "Data Structures", "Computer Organization and Design", "Instruction sets, pipelining, memory hierarchy."},
	{240, "Algorithms", "Algorithmen", "Vazirani", "MWF", 11 * 60, 11*60 + 50, "HALL 210", 3, "Data Structures", "Introduction to Algorithms", "Design and analysis of efficient algorithms."},
	{301, "Operating Systems", "Betriebssysteme", "Hollingsworth", "MWF", 10 * 60, 10*60 + 50, "KEY 0106", 3, "Computer Organization", "Operating System Concepts", "Processes, scheduling, virtual memory, and file systems."},
	{310, "Database Design", "Datenbankentwurf", "Ramakrishnan", "TTh", 13*60 + 30, 14*60 + 45, "CSB 209", 3, "Data Structures", "Database Management Systems", "ER modeling, relational design, normalization, SQL."},
	{315, "Database Systems", "Datenbanksysteme", "DeWitt", "MW", 13*60 + 30, 14*60 + 50, "CS 1240", 4, "Data Structures", "Database System Concepts", "Storage, indexing, query processing, transactions."},
	{330, "Computer Networks", "Rechnernetze", "Zhang", "TTh", 10*60 + 30, 11*60 + 50, "WEH 5403", 4, "Operating Systems", "Computer Networking: A Top-Down Approach", "Protocol layering, routing, congestion control."},
	{336, "Software Engineering", "Software-Engineering", "Memon", "MW", 14 * 60, 15*60 + 15, "EGR 2154", 3, "Data Structures", "Software Engineering (Sommerville)", "Requirements, design, testing, and team projects."},
	{341, "Programming Languages", "Programmiersprachen", "Pierce", "MWF", 13 * 60, 13*60 + 50, "HALL 305", 3, "Algorithms", "Types and Programming Languages", "Semantics, type systems, functional programming."},
	{345, "Compilers", "Übersetzerbau", "Aho", "TTh", 9 * 60, 10*60 + 15, "ENG 021", 4, "Programming Languages", "Compilers: Principles, Techniques, and Tools", "Lexing, parsing, code generation, optimization."},
	{350, "Artificial Intelligence", "Künstliche Intelligenz", "Norvig", "MWF", 14 * 60, 14*60 + 50, "HALL 120", 3, "Algorithms", "Artificial Intelligence: A Modern Approach", "Search, knowledge representation, planning, learning."},
	{361, "Machine Learning", "Maschinelles Lernen", "Mitchell", "TTh", 15 * 60, 16*60 + 15, "GHC 4401", 4, "Artificial Intelligence", "Machine Learning (Mitchell)", "Supervised and unsupervised learning, neural networks."},
	{372, "Computer Graphics", "Computergraphik", "Foley", "MW", 11 * 60, 12*60 + 15, "ART 133", 3, "Algorithms", "Computer Graphics: Principles and Practice", "Rasterization, transformations, shading, modeling."},
	{381, "Theory of Computation", "Theoretische Informatik", "Sipser", "MWF", 9 * 60, 9*60 + 50, "MATH 410", 3, "Discrete Mathematics", "Introduction to the Theory of Computation", "Automata, computability, and complexity."},
	{410, "Automated Verification", "Automatische Verifikation", "Clarke", "TTh", 11 * 60, 12*60 + 15, "WEH 4623", 3, "Theory of Computation", "'Model Checking', by Clarke, Grumberg, Peled, 1999, MIT Press.", "Temporal logic, model checking, and verification tools."},
	{415, "Database System Implementation", "Implementierung von Datenbanksystemen", "Ailamaki", "MW", 13*60 + 30, 14*60 + 50, "WEH 5310", 4, "Database Design", "", "Buffer management, join algorithms, recovery, concurrency."},
	{420, "Distributed Systems", "Verteilte Systeme", "Lamport", "TTh", 14 * 60, 15*60 + 15, "GHC 4303", 4, "Operating Systems", "Distributed Systems: Principles and Paradigms", "Consistency, replication, consensus, fault tolerance."},
	{430, "Information Retrieval", "Information Retrieval", "Salton", "MWF", 10 * 60, 10*60 + 50, "LIB 204", 3, "Data Structures", "Introduction to Information Retrieval", "Indexing, ranking, evaluation of search systems."},
	{445, "Computer Security", "Computersicherheit", "Song", "MW", 15 * 60, 16*60 + 20, "PHY 333", 4, "Operating Systems", "Security Engineering", "Cryptography, protocols, systems security."},
	{460, "Human-Computer Interaction", "Mensch-Maschine-Interaktion", "Shneiderman", "TTh", 9*60 + 30, 10*60 + 45, "HCI 110", 3, "", "Designing the User Interface", "Interface design, evaluation, usability studies."},
	{472, "Computational Biology", "Bioinformatik", "Karp", "MWF", 12 * 60, 12*60 + 50, "BIO 140", 3, "Algorithms", "Biological Sequence Analysis", "Sequence alignment, phylogeny, genomics algorithms."},
	{481, "Parallel Computing", "Paralleles Rechnen", "Kuck", "TTh", 16 * 60, 17*60 + 15, "ENG 325", 4, "Computer Organization", "Introduction to Parallel Computing", "Shared memory, message passing, parallel algorithms."},
}

// frenchTitles maps the pool's English titles to their French renderings,
// used by the French-language source (EPFL).
var frenchTitles = map[string]string{
	"Introduction to Programming":    "Introduction à la programmation",
	"Discrete Mathematics":           "Mathématiques discrètes",
	"Data Structures":                "Structures de données",
	"Computer Organization":          "Architecture des ordinateurs",
	"Algorithms":                     "Algorithmique",
	"Operating Systems":              "Systèmes d'exploitation",
	"Database Design":                "Conception de bases de données",
	"Database Systems":               "Systèmes de bases de données",
	"Computer Networks":              "Réseaux informatiques",
	"Software Engineering":           "Génie logiciel",
	"Programming Languages":          "Langages de programmation",
	"Compilers":                      "Compilation",
	"Artificial Intelligence":        "Intelligence artificielle",
	"Machine Learning":               "Apprentissage automatique",
	"Computer Graphics":              "Infographie",
	"Theory of Computation":          "Théorie du calcul",
	"Automated Verification":         "Vérification automatique",
	"Database System Implementation": "Implémentation de systèmes de bases de données",
	"Distributed Systems":            "Systèmes répartis",
	"Information Retrieval":          "Recherche d'information",
	"Computer Security":              "Sécurité informatique",
	"Human-Computer Interaction":     "Interaction homme-machine",
	"Computational Biology":          "Bioinformatique",
	"Parallel Computing":             "Calcul parallèle",
}

// FrenchTitle returns the French rendering of a pool course title, or the
// English title when no rendering exists.
func FrenchTitle(english string) string {
	if fr, ok := frenchTitles[english]; ok {
		return fr
	}
	return english
}

// poolSlice returns n pool courses starting at a stable offset derived from
// the school key, wrapping around the pool.
func poolSlice(key string, n int) []poolCourse {
	off := 0
	for _, r := range key {
		off = (off*31 + int(r)) % len(coursePool)
	}
	out := make([]poolCourse, 0, n)
	for i := 0; i < n && i < len(coursePool); i++ {
		out = append(out, coursePool[(off+i)%len(coursePool)])
	}
	return out
}

// fillerCourses converts a pool slice into Courses with school-specific
// numbering: prefix + pool number, e.g. "CS" → "CS310".
func fillerCourses(key, prefix string, n int) []Course {
	var out []Course
	for _, p := range poolSlice(key, n) {
		out = append(out, Course{
			Number:      numberFmt(prefix, p.Num),
			Title:       p.Title,
			GermanTitle: p.German,
			Instructors: []Instructor{{Name: p.Surname, Home: "http://www." + key + ".edu/~" + lower(p.Surname)}},
			Days:        p.Days,
			Start:       p.Start,
			End:         p.End,
			Room:        p.Room,
			Credits:     p.Credits,
			Prereq:      p.Prereq,
			Textbook:    p.Textbook,
			Description: p.Desc,
		})
	}
	return out
}

func numberFmt(prefix string, num int) string {
	return prefix + itoa(num)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
