package catalog

import (
	"fmt"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/tess"
)

// University of Michigan: the reference schema for the virtual-columns
// query. Its catalog carries an explicit "prerequisite" element whose value
// is "None" for entry-level courses — information CMU only hints at inside
// a free-text comment attached to the title (case 7).
func init() {
	courses := []Course{
		{
			Number:      "EECS484",
			Title:       "Database Management Systems",
			Instructors: []Instructor{{Name: "Jagadish"}},
			Days:        "MW",
			Start:       10*60 + 30,
			End:         12 * 60,
			Room:        "1013 DOW",
			Credits:     4,
			Prereq:      "None",
		},
		{
			Number:      "EECS584",
			Title:       "Advanced Database Systems",
			Instructors: []Instructor{{Name: "Mozafari"}},
			Days:        "TTh",
			Start:       13*60 + 30,
			End:         15 * 60,
			Room:        "3150 DOW",
			Credits:     4,
			Prereq:      "EECS484",
		},
		{
			Number:      "EECS381",
			Title:       "Object-Oriented and Advanced Programming",
			Instructors: []Instructor{{Name: "Kieras"}},
			Days:        "MWF",
			Start:       9 * 60,
			End:         10 * 60,
			Room:        "1500 EECS",
			Credits:     4,
			Prereq:      "EECS281",
		},
	}
	for i, p := range poolSlice("umich", 10) {
		pre := p.Prereq
		if pre == "" {
			pre = "None"
		}
		courses = append(courses, Course{
			Number:      fmt.Sprintf("EECS%d", 200+p.Num),
			Title:       p.Title,
			Instructors: []Instructor{{Name: p.Surname}},
			Days:        p.Days,
			Start:       p.Start,
			End:         p.End,
			Room:        fmt.Sprintf("%d EECS", 1000+i*111),
			Credits:     p.Credits,
			Prereq:      pre,
		})
	}

	register(&Source{
		Name:       "umich",
		University: "University of Michigan",
		Country:    "USA",
		Style:      `explicit "prerequisite" element ("None" for entry-level courses)`,
		Exhibits:   []hetero.Case{hetero.VirtualColumns},
		Courses:    courses,
		RenderHTML: renderUmich,
		Wrapper:    umichWrapper,
	})
}

func renderUmich(s *Source) string {
	var b strings.Builder
	b.WriteString(`<html><head><title>UM EECS Course Guide</title></head><body>
<h2>University of Michigan &mdash; EECS Course Guide</h2>
<dl>
`)
	for i := range s.Courses {
		c := &s.Courses[i]
		fmt.Fprintf(&b, `<dt class="course">%s %s</dt>
<dd>Prerequisite: <b>%s</b>. Instructor: %s. Meets %s %s-%s, %s. (%d credits)</dd>
`, c.Number, xmlEscape(c.Title), xmlEscape(c.Prereq), xmlEscape(c.Instructors[0].Name),
			c.Days, Clock12(c.Start), Clock12(c.End), xmlEscape(c.Room), c.Credits)
	}
	b.WriteString("</dl></body></html>\n")
	return b.String()
}

func umichWrapper() *tess.Config {
	return &tess.Config{
		Source: "umich",
		Rules: []*tess.Rule{{
			Name:   "Course",
			Begin:  `<dt class="course">`,
			End:    `</dd>`,
			Repeat: true,
			Rules: []*tess.Rule{
				{Name: "number", Begin: ``, End: ` `},
				{Name: "title", Begin: ``, End: `</dt>`},
				{Name: "prerequisite", Begin: `Prerequisite: <b>`, End: `</b>`},
				{Name: "instructor", Begin: `Instructor: `, End: `\.`},
				{Name: "meets", Begin: `Meets `, End: `\(`},
				{Name: "credits", Begin: ``, End: ` credits\)`},
			},
		}},
	}
}
