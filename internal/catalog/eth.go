package catalog

import (
	"fmt"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/tess"
)

// ETH Zürich (Swiss Federal Institute of Technology): the German-language
// source. Element names and values are German (case 5), workload is the
// Swiss "Umfang" notation like "2V1U" — two lecture and one exercise hours —
// rather than credit hours (case 4), and there is no concept of US student
// classification; the closest thing is a recommended semester embedded in
// the title (case 8).
func init() {
	courses := []Course{
		{
			Number:      "251-0317",
			Title:       "XML und Datenbanken",
			GermanTitle: "XML und Datenbanken",
			Instructors: []Instructor{{Name: "Gross"}},
			Days:        "Mi",
			Start:       10 * 60,
			End:         12 * 60,
			Room:        "IFW A36",
			UnitsNote:   "2V1U",
		},
		{
			Number:      "251-0062",
			Title:       "Vernetzte Systeme (3. Semester)",
			GermanTitle: "Vernetzte Systeme (3. Semester)",
			Instructors: []Instructor{{Name: "Plattner"}},
			Days:        "Do",
			Start:       13*60 + 15,
			End:         16 * 60,
			Room:        "ETF E1",
			UnitsNote:   "3V1U",
		},
		{
			Number:      "251-0316",
			Title:       "Datenbanksysteme",
			GermanTitle: "Datenbanksysteme",
			Instructors: []Instructor{{Name: "Norrie"}},
			Days:        "Di",
			Start:       8 * 60,
			End:         10 * 60,
			Room:        "HG F1",
			UnitsNote:   "4V2U",
		},
	}
	for i, p := range poolSlice("eth", 10) {
		courses = append(courses, Course{
			Number:      fmt.Sprintf("251-%04d", 100+p.Num),
			Title:       p.German,
			GermanTitle: p.German,
			Instructors: []Instructor{{Name: p.Surname}},
			Days:        []string{"Mo", "Di", "Mi", "Do", "Fr"}[i%5],
			Start:       p.Start,
			End:         p.End,
			Room:        "HG E" + itoa(3+i),
			UnitsNote:   fmt.Sprintf("%dV%dU", 1+p.Credits/2, p.Credits%2+1),
		})
	}

	register(&Source{
		Name:       "eth",
		University: "Swiss Federal Institute of Technology Zürich (ETH)",
		Country:    "Switzerland",
		Style:      `German element names and values (Vorlesung/Titel/Dozent); workload as "Umfang" notation (2V1U); recommended semester in the title instead of US classifications; 24-hour clock`,
		Exhibits: []hetero.Case{
			hetero.ComplexMappings, hetero.LanguageExpression, hetero.SemanticIncompatibility,
		},
		Courses:    courses,
		RenderHTML: renderETH,
		Wrapper:    ethWrapper,
	})
}

func renderETH(s *Source) string {
	var b strings.Builder
	b.WriteString(`<html><head><title>ETH Z&uuml;rich &mdash; Vorlesungsverzeichnis Informatik</title></head><body>
<h2>Vorlesungsverzeichnis Departement Informatik</h2>
<table>
<tr><th>Nummer</th><th>Titel</th><th>Dozent</th><th>Umfang</th><th>Zeit</th><th>Ort</th></tr>
`)
	for i := range s.Courses {
		c := &s.Courses[i]
		fmt.Fprintf(&b, `<tr class="vorlesung"><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s %s-%s</td><td>%s</td></tr>
`, c.Number, xmlEscape(c.GermanTitle), xmlEscape(c.Instructors[0].Name), c.UnitsNote,
			c.Days, Clock24(c.Start), Clock24(c.End), xmlEscape(c.Room))
	}
	b.WriteString("</table></body></html>\n")
	return b.String()
}

func ethWrapper() *tess.Config {
	return &tess.Config{
		Source: "eth",
		Rules: []*tess.Rule{{
			Name:   "Vorlesung",
			Begin:  `<tr class="vorlesung">`,
			End:    `</tr>`,
			Repeat: true,
			Rules: []*tess.Rule{
				{Name: "Nummer", Begin: `<td>`, End: `</td>`},
				{Name: "Titel", Begin: `<td>`, End: `</td>`},
				{Name: "Dozent", Begin: `<td>`, End: `</td>`},
				{Name: "Umfang", Begin: `<td>`, End: `</td>`},
				{Name: "Zeit", Begin: `<td>`, End: `</td>`},
				{Name: "Ort", Begin: `<td>`, End: `</td>`},
			},
		}},
	}
}
