package catalog

import (
	"fmt"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/tess"
)

// University of Maryland (Figure 2): a free-form page where each course
// embeds a *nested* table of sections. Extracting it required the paper's
// modification of TESS for nested structures. Room and meeting time live
// inside each Section's Time element (case 9), instructors are per-section
// rather than a single set-valued field (case 10), and section titles carry
// seat-count annotations.
func init() {
	courses := []Course{
		{
			Number:  "CMSC420",
			Title:   "Data Structures",
			Credits: 3,
			Prereq:  "CMSC214",
			Sections: []Section{
				{Num: "0101", ID: "13801", Teacher: "Mount, D.", Days: "MWF", Time: "11:00am", Room: "CSI2117"},
			},
		},
		{
			Number:  "CMSC424",
			Title:   "Database Design",
			Credits: 3,
			Prereq:  "CMSC420",
			Sections: []Section{
				{Num: "0101", ID: "13822", Teacher: "Roussopoulos, N.", Days: "TTh", Time: "2:00pm", Room: "CSB0109"},
			},
		},
		{
			Number:  "CMSC435",
			Title:   "Software Engineering",
			Credits: 3,
			Prereq:  "CMSC430",
			Sections: []Section{
				{Num: "0101", ID: "13795", Teacher: "Singh, H.", Days: "MWF", Time: "10:00am", Room: "KEY0106"},
				{Num: "0201", ID: "13796", Teacher: "Memon, A.", Days: "TTh", Time: "3:30pm", Room: "EGR2154", Seats: 40, Open: 2, Waitlist: 0},
			},
		},
	}
	for i, p := range poolSlice("umd", 9) {
		c := Course{
			Number:  fmt.Sprintf("CMSC%d", 100+p.Num),
			Title:   p.Title,
			Credits: p.Credits,
			Prereq:  p.Prereq,
			Sections: []Section{
				{Num: "0101", ID: fmt.Sprintf("%d", 14000+i*13), Teacher: p.Surname + ", " + string(p.Surname[0]) + ".", Days: p.Days, Time: Clock12(p.Start), Room: strings.ReplaceAll(p.Room, " ", "")},
			},
		}
		if i%3 == 0 {
			c.Sections = append(c.Sections, Section{
				Num: "0201", ID: fmt.Sprintf("%d", 14001+i*13), Teacher: "Staff", Days: "MW", Time: Clock12(p.Start + 120), Room: strings.ReplaceAll(p.Room, " ", ""), Seats: 30, Open: 5,
			})
		}
		courses = append(courses, c)
	}

	register(&Source{
		Name:       "umd",
		University: "University of Maryland",
		Country:    "USA",
		Style:      "free-form page with nested section tables; room and time inside Section/Time; per-section instructors; seat annotations in section titles",
		Exhibits: []hetero.Case{
			hetero.Synonyms, hetero.SameAttributeDifferentStructure, hetero.HandlingSets,
		},
		Courses:    courses,
		RenderHTML: renderUMD,
		Wrapper:    umdWrapper,
	})
}

func renderUMD(s *Source) string {
	var b strings.Builder
	b.WriteString(`<html><head><title>UMD CS Schedule of Classes</title></head><body>
<h2>University of Maryland &mdash; Computer Science</h2>
`)
	for i := range s.Courses {
		c := &s.Courses[i]
		fmt.Fprintf(&b, `<div class="course"><b>%s</b> %s; <i>(%d credits) Prereq: %s</i>
<table class="sections">
`, c.Number, xmlEscape(c.Title), c.Credits, xmlEscape(orNone(c.Prereq)))
		for _, sec := range c.Sections {
			secTitle := fmt.Sprintf("%s(%s) %s", sec.Num, sec.ID, sec.Teacher)
			if sec.Seats > 0 {
				secTitle += fmt.Sprintf(" (Seats=%d, Open=%d, Waitlist=%d)", sec.Seats, sec.Open, sec.Waitlist)
			}
			fmt.Fprintf(&b, `<tr class="sec"><td>%s</td><td>%s %s %s</td></tr>
`, xmlEscape(secTitle), sec.Days, sec.Time, sec.Room)
		}
		b.WriteString("</table></div>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func orNone(s string) string {
	if s == "" {
		return "None"
	}
	return s
}

func umdWrapper() *tess.Config {
	return &tess.Config{
		Source: "umd",
		Rules: []*tess.Rule{{
			Name:   "Course",
			Begin:  `<div class="course">`,
			End:    `</div>`,
			Repeat: true,
			Rules: []*tess.Rule{
				{Name: "CourseNum", Begin: `<b>`, End: `</b>`},
				{Name: "CourseName", Begin: ``, End: `;`},
				{Name: "Notes", Begin: `<i>`, End: `</i>`},
				{
					// The nested sections table: the TESS extension at work.
					Name:   "Section",
					Begin:  `<tr class="sec">`,
					End:    `</tr>`,
					Repeat: true,
					Rules: []*tess.Rule{
						{Name: "SectionTitle", Begin: `<td>`, End: `</td>`},
						// Day, time and room share one element, so the room
						// is only implicitly available (case 9).
						{Name: "Time", Begin: `<td>`, End: `</td>`},
					},
				},
			},
		}},
	}
}
