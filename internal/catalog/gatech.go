package catalog

import (
	"fmt"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/tess"
)

// Georgia Tech: the reference schema for the synonym query (its field is
// called "Instructor") and for semantic incompatibility (its "Restrictions"
// column carries US student classifications like "JR or SR", a concept that
// simply does not exist at European universities).
func init() {
	courses := []Course{
		{
			Number:      "CS4251",
			Title:       "Intro-Network Management",
			Instructors: []Instructor{{Name: "Mark"}},
			Days:        "MWF",
			Start:       9 * 60,
			End:         9*60 + 50,
			Room:        "CoC 101",
			Credits:     3,
			Restrict:    "JR or SR",
			Comment:     "CRN 20381",
		},
		{
			Number:      "CS4400",
			Title:       "Introduction to Database Systems",
			Instructors: []Instructor{{Name: "Navathe"}},
			Days:        "TTh",
			Start:       13*60 + 30,
			End:         14*60 + 45,
			Room:        "CoC 016",
			Credits:     3,
			Restrict:    "JR or SR",
			Comment:     "CRN 20432",
		},
		{
			Number:      "CS6422",
			Title:       "Database System Implementation",
			Instructors: []Instructor{{Name: "Omiecinski"}},
			Days:        "MW",
			Start:       16 * 60,
			End:         17*60 + 15,
			Room:        "CoC 053",
			Credits:     3,
			Restrict:    "GR",
			Comment:     "CRN 20433",
		},
	}
	for i, p := range poolSlice("gatech", 10) {
		restrict := ""
		switch i % 4 {
		case 0:
			restrict = "SO"
		case 1:
			restrict = "JR or SR"
		case 2:
			restrict = "SR"
		case 3:
			restrict = "GR"
		}
		courses = append(courses, Course{
			Number:      fmt.Sprintf("CS%d", 1000+p.Num*3),
			Title:       p.Title,
			Instructors: []Instructor{{Name: p.Surname}},
			Days:        p.Days,
			Start:       p.Start,
			End:         p.End,
			Room:        p.Room,
			Credits:     p.Credits,
			Restrict:    restrict,
			Comment:     fmt.Sprintf("CRN %d", 20500+i*17),
		})
	}

	register(&Source{
		Name:       "gatech",
		University: "Georgia Institute of Technology",
		Country:    "USA",
		Style:      `tabular with registrar CRNs; "Instructor" naming; US student-classification restrictions ("JR or SR")`,
		Exhibits:   []hetero.Case{hetero.Synonyms, hetero.SemanticIncompatibility},
		Courses:    courses,
		RenderHTML: renderGatech,
		Wrapper:    gatechWrapper,
	})
}

func gatechCRN(c *Course) string {
	return strings.TrimPrefix(c.Comment, "CRN ")
}

func renderGatech(s *Source) string {
	var b strings.Builder
	b.WriteString(`<html><head><title>Georgia Tech OSCAR</title></head><body>
<h2>Georgia Tech &mdash; College of Computing Schedule</h2>
<table>
<tr><th>CRN</th><th>Course</th><th>Title</th><th>Instructor</th><th>Time</th><th>Room</th><th>Restrictions</th></tr>
`)
	for i := range s.Courses {
		c := &s.Courses[i]
		fmt.Fprintf(&b, `<tr class="course"><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s %s-%s</td><td>%s</td><td>%s</td></tr>
`, gatechCRN(c), c.Number, xmlEscape(c.Title), xmlEscape(c.Instructors[0].Name),
			c.Days, Clock12(c.Start), Clock12(c.End), xmlEscape(c.Room), xmlEscape(c.Restrict))
	}
	b.WriteString("</table></body></html>\n")
	return b.String()
}

func gatechWrapper() *tess.Config {
	return &tess.Config{
		Source: "gatech",
		Rules: []*tess.Rule{{
			Name:   "Course",
			Begin:  `<tr class="course">`,
			End:    `</tr>`,
			Repeat: true,
			Rules: []*tess.Rule{
				{Name: "CRN", Begin: `<td>`, End: `</td>`},
				{Name: "CourseNum", Begin: `<td>`, End: `</td>`},
				{Name: "Title", Begin: `<td>`, End: `</td>`},
				{Name: "Instructor", Begin: `<td>`, End: `</td>`},
				{Name: "Time", Begin: `<td>`, End: `</td>`},
				{Name: "Room", Begin: `<td>`, End: `</td>`},
				{Name: "Restrictions", Begin: `<td>`, End: `</td>`},
			},
		}},
	}
}
