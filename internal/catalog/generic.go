package catalog

import (
	"fmt"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/tess"
)

// This file defines the remaining sources of the 25-school testbed through
// parameterized style families. Each school still gets its own element
// vocabulary (the synonym heterogeneity is pervasive in the real testbed),
// its own clock convention, and its own page layout; only the rendering
// machinery is shared.

// tableStyle renders a one-row-per-course table with school-specific column
// names; the wrapper turns the column titles into element names.
type tableStyle struct {
	rowClass string
	// fields maps column order to (header, element name, value function).
	fields []tableField
}

type tableField struct {
	header string
	elem   string
	value  func(c *Course) string
}

func makeTableSource(name, university, country, heading, prefix string, n int, clock func(int) string, vocab [5]string, exhibits ...hetero.Case) {
	// vocab: element names for number, title, instructor, time, room.
	style := &tableStyle{
		rowClass: "row",
		fields: []tableField{
			{vocab[0], vocab[0], func(c *Course) string { return c.Number }},
			{vocab[1], vocab[1], func(c *Course) string { return c.Title }},
			{vocab[2], vocab[2], func(c *Course) string { return c.Instructors[0].Name }},
			{vocab[3], vocab[3], func(c *Course) string { return c.Days + " " + clock(c.Start) + "-" + clock(c.End) }},
			{vocab[4], vocab[4], func(c *Course) string { return c.Room }},
		},
	}
	register(&Source{
		Name:       name,
		University: university,
		Country:    country,
		Style:      "tabular; vocabulary " + strings.Join(vocab[:], "/"),
		Exhibits:   append([]hetero.Case{hetero.Synonyms}, exhibits...),
		Courses:    fillerCourses(name, prefix, n),
		RenderHTML: func(s *Source) string { return renderTable(s, heading, style) },
		Wrapper:    func() *tess.Config { return tableWrapper(name, style) },
	})
}

func renderTable(s *Source, heading string, style *tableStyle) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<html><head><title>%s</title></head><body>
<h2>%s</h2>
<table>
<tr>`, heading, heading)
	for _, f := range style.fields {
		fmt.Fprintf(&b, "<th>%s</th>", f.header)
	}
	b.WriteString("</tr>\n")
	for i := range s.Courses {
		c := &s.Courses[i]
		fmt.Fprintf(&b, `<tr class="%s">`, style.rowClass)
		for _, f := range style.fields {
			fmt.Fprintf(&b, "<td>%s</td>", xmlEscape(f.value(c)))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table></body></html>\n")
	return b.String()
}

func tableWrapper(source string, style *tableStyle) *tess.Config {
	row := &tess.Rule{
		Name:   "Course",
		Begin:  fmt.Sprintf(`<tr class="%s">`, style.rowClass),
		End:    `</tr>`,
		Repeat: true,
	}
	for _, f := range style.fields {
		row.Rules = append(row.Rules, &tess.Rule{Name: f.elem, Begin: `<td>`, End: `</td>`})
	}
	return &tess.Config{Source: source, Rules: []*tess.Rule{row}}
}

// makeListSource renders a definition-list catalog (dt/dd pairs).
func makeListSource(name, university, country, heading, prefix string, n int, clock func(int) string, vocab [5]string) {
	register(&Source{
		Name:       name,
		University: university,
		Country:    country,
		Style:      "definition list; vocabulary " + strings.Join(vocab[:], "/"),
		Exhibits:   []hetero.Case{hetero.Synonyms},
		Courses:    fillerCourses(name, prefix, n),
		RenderHTML: func(s *Source) string {
			var b strings.Builder
			fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n<h2>%s</h2>\n<dl>\n", heading, heading)
			for i := range s.Courses {
				c := &s.Courses[i]
				fmt.Fprintf(&b, `<dt class="entry"><b>%s</b> &mdash; %s</dt>
<dd>Led by <i>%s</i>; meets <u>%s %s-%s</u>; location <tt>%s</tt>.</dd>
`, c.Number, xmlEscape(c.Title), xmlEscape(c.Instructors[0].Name),
					c.Days, clock(c.Start), clock(c.End), xmlEscape(c.Room))
			}
			b.WriteString("</dl></body></html>\n")
			return b.String()
		},
		Wrapper: func() *tess.Config {
			return &tess.Config{
				Source: name,
				Rules: []*tess.Rule{{
					Name:   "Course",
					Begin:  `<dt class="entry">`,
					End:    `</dd>`,
					Repeat: true,
					Rules: []*tess.Rule{
						{Name: vocab[0], Begin: `<b>`, End: `</b>`},
						{Name: vocab[1], Begin: `&mdash; `, End: `</dt>`},
						{Name: vocab[2], Begin: `<i>`, End: `</i>`},
						{Name: vocab[3], Begin: `<u>`, End: `</u>`},
						{Name: vocab[4], Begin: `<tt>`, End: `</tt>`},
					},
				}},
			}
		},
	})
}

// makeSectionedSource renders a UMD-like nested-sections catalog, adding
// more exhibits of the structural heterogeneities.
func makeSectionedSource(name, university, country, heading, prefix string, n int) {
	courses := fillerCourses(name, prefix, n)
	for i := range courses {
		c := &courses[i]
		c.Sections = []Section{{
			Num: "001", ID: itoa(9000 + i*7), Teacher: c.Instructors[0].Name,
			Days: c.Days, Time: Clock12(c.Start), Room: strings.ReplaceAll(c.Room, " ", ""),
		}}
		if i%2 == 0 {
			c.Sections = append(c.Sections, Section{
				Num: "002", ID: itoa(9001 + i*7), Teacher: "Staff",
				Days: "F", Time: Clock12(c.Start + 60), Room: strings.ReplaceAll(c.Room, " ", ""),
			})
		}
	}
	register(&Source{
		Name:       name,
		University: university,
		Country:    country,
		Style:      "nested section tables; per-section instructors, rooms and times",
		Exhibits:   []hetero.Case{hetero.SameAttributeDifferentStructure, hetero.HandlingSets},
		Courses:    courses,
		RenderHTML: func(s *Source) string {
			var b strings.Builder
			fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n<h2>%s</h2>\n", heading, heading)
			for i := range s.Courses {
				c := &s.Courses[i]
				fmt.Fprintf(&b, `<div class="offering"><h3>%s %s</h3>
<table class="meet">
`, c.Number, xmlEscape(c.Title))
				for _, sec := range c.Sections {
					fmt.Fprintf(&b, `<tr class="m"><td>%s</td><td>%s</td><td>%s %s</td><td>%s</td></tr>
`, sec.Num, xmlEscape(sec.Teacher), sec.Days, sec.Time, sec.Room)
				}
				b.WriteString("</table></div>\n")
			}
			b.WriteString("</body></html>\n")
			return b.String()
		},
		Wrapper: func() *tess.Config {
			return &tess.Config{
				Source: name,
				Rules: []*tess.Rule{{
					Name:   "Offering",
					Begin:  `<div class="offering">`,
					End:    `</div>`,
					Repeat: true,
					Rules: []*tess.Rule{
						{Name: "Code", Begin: `<h3>`, End: ` `},
						{Name: "Name", Begin: ``, End: `</h3>`},
						{
							Name: "Meeting", Begin: `<tr class="m">`, End: `</tr>`, Repeat: true,
							Rules: []*tess.Rule{
								{Name: "Sec", Begin: `<td>`, End: `</td>`},
								{Name: "Leader", Begin: `<td>`, End: `</td>`},
								{Name: "When", Begin: `<td>`, End: `</td>`},
								{Name: "Where", Begin: `<td>`, End: `</td>`},
							},
						},
					},
				}},
			}
		},
	})
}

// makeFrenchSource renders a French-language catalog: French element names
// and French course titles — a second instance of the language-expression
// heterogeneity (case 5) beyond the paper's German examples.
func makeFrenchSource(name, university, heading, prefix string, n int) {
	courses := fillerCourses(name, prefix, n)
	register(&Source{
		Name:       name,
		University: university,
		Country:    "Switzerland",
		Style:      "French element names and values (Matière/Intitulé/Enseignant); 24-hour clock",
		Exhibits:   []hetero.Case{hetero.LanguageExpression},
		Courses:    courses,
		RenderHTML: func(s *Source) string {
			var b strings.Builder
			fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n<h2>%s</h2>\n<dl>\n", heading, heading)
			for i := range s.Courses {
				c := &s.Courses[i]
				fmt.Fprintf(&b, `<dt class="matiere"><b>%s</b> &mdash; %s</dt>
<dd>Enseignant&nbsp;: <i>%s</i>. Horaire&nbsp;: <u>%s %s-%s</u>. Salle&nbsp;: <tt>%s</tt>.</dd>
`, c.Number, xmlEscape(FrenchTitle(c.Title)), xmlEscape("Prof. "+c.Instructors[0].Name),
					c.Days, Clock24(c.Start), Clock24(c.End), xmlEscape(c.Room))
			}
			b.WriteString("</dl></body></html>\n")
			return b.String()
		},
		Wrapper: func() *tess.Config {
			return &tess.Config{
				Source: name,
				Rules: []*tess.Rule{{
					Name:   "Matière",
					Begin:  `<dt class="matiere">`,
					End:    `</dd>`,
					Repeat: true,
					Rules: []*tess.Rule{
						{Name: "Numéro", Begin: `<b>`, End: `</b>`},
						{Name: "Intitulé", Begin: `&mdash; `, End: `</dt>`},
						{Name: "Enseignant", Begin: `<i>`, End: `</i>`},
						{Name: "Horaire", Begin: `<u>`, End: `</u>`},
						{Name: "Salle", Begin: `<tt>`, End: `</tt>`},
					},
				}},
			}
		},
	})
}

// makeGermanSource renders a German-language catalog (case 5), with German
// element names, values, day abbreviations, and a 24-hour clock.
func makeGermanSource(name, university, heading, prefix string, n int) {
	courses := fillerCourses(name, prefix, n)
	germanDays := map[string]string{"MWF": "Mo/Mi/Fr", "TTh": "Di/Do", "MW": "Mo/Mi", "M": "Mo", "F": "Fr"}
	register(&Source{
		Name:       name,
		University: university,
		Country:    "Germany",
		Style:      "German element names and values; 24-hour clock; workload in Semesterwochenstunden",
		Exhibits:   []hetero.Case{hetero.LanguageExpression, hetero.ComplexMappings},
		Courses:    courses,
		RenderHTML: func(s *Source) string {
			var b strings.Builder
			fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n<h2>%s</h2>\n<table>\n<tr><th>Nr.</th><th>Veranstaltung</th><th>Dozent</th><th>SWS</th><th>Zeit</th><th>Raum</th></tr>\n", heading, heading)
			for i := range s.Courses {
				c := &s.Courses[i]
				days := germanDays[c.Days]
				if days == "" {
					days = c.Days
				}
				fmt.Fprintf(&b, `<tr class="kurs"><td>%s</td><td>%s</td><td>Prof. %s</td><td>%d</td><td>%s %s-%s</td><td>%s</td></tr>
`, c.Number, xmlEscape(c.GermanTitle), xmlEscape(c.Instructors[0].Name), c.Credits,
					days, Clock24(c.Start), Clock24(c.End), xmlEscape(c.Room))
			}
			b.WriteString("</table></body></html>\n")
			return b.String()
		},
		Wrapper: func() *tess.Config {
			return &tess.Config{
				Source: name,
				Rules: []*tess.Rule{{
					Name:   "Veranstaltung",
					Begin:  `<tr class="kurs">`,
					End:    `</tr>`,
					Repeat: true,
					Rules: []*tess.Rule{
						{Name: "Nummer", Begin: `<td>`, End: `</td>`},
						{Name: "Titel", Begin: `<td>`, End: `</td>`},
						{Name: "Dozent", Begin: `<td>`, End: `</td>`},
						{Name: "SWS", Begin: `<td>`, End: `</td>`},
						{Name: "Zeit", Begin: `<td>`, End: `</td>`},
						{Name: "Raum", Begin: `<td>`, End: `</td>`},
					},
				}},
			}
		},
	})
}

// makeParagraphSource renders a prose catalog: one paragraph per course.
func makeParagraphSource(name, university, country, heading, prefix string, n int, clock func(int) string) {
	register(&Source{
		Name:       name,
		University: university,
		Country:    country,
		Style:      "prose paragraphs, one per course",
		Exhibits:   []hetero.Case{hetero.Synonyms, hetero.AttributeComposition},
		Courses:    fillerCourses(name, prefix, n),
		RenderHTML: func(s *Source) string {
			var b strings.Builder
			fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n<h2>%s</h2>\n", heading, heading)
			for i := range s.Courses {
				c := &s.Courses[i]
				fmt.Fprintf(&b, `<p class="c"><b>%s. %s.</b> %s Offered by %s, %s at %s in %s.</p>
`, c.Number, xmlEscape(c.Title), xmlEscape(c.Description), xmlEscape(c.Instructors[0].Name),
					c.Days, clock(c.Start), xmlEscape(c.Room))
			}
			b.WriteString("</body></html>\n")
			return b.String()
		},
		Wrapper: func() *tess.Config {
			return &tess.Config{
				Source: name,
				Rules: []*tess.Rule{{
					Name:   "Listing",
					Begin:  `<p class="c">`,
					End:    `</p>`,
					Repeat: true,
					Rules: []*tess.Rule{
						{Name: "Id", Begin: `<b>`, End: `\.`},
						{Name: "Heading", Begin: ``, End: `\.</b>`},
						{Name: "Blurb", Begin: ``, End: `Offered by`},
						// Instructor, schedule and room run together in one
						// sentence — attribute composition (case 12).
						{Name: "Details", Begin: ``, End: `\.`},
					},
				}},
			}
		},
	})
}

func init() {
	// Six tabular schools, each with its own vocabulary and clock.
	makeTableSource("mit", "Massachusetts Institute of Technology", "USA",
		"MIT EECS Subject Listing", "6.", 12, Clock12,
		[5]string{"Subject", "SubjectName", "Teacher", "Hours", "Location"})
	makeTableSource("stanford", "Stanford University", "USA",
		"Stanford CS Course Listings", "CS", 12, Clock12,
		[5]string{"CourseID", "CourseTitle", "Faculty", "Schedule", "Venue"})
	makeTableSource("cornell", "Cornell University", "USA",
		"Cornell CS Roster", "CS", 11, Clock12,
		[5]string{"Num", "Name", "Prof", "Meets", "Hall"})
	makeTableSource("princeton", "Princeton University", "USA",
		"Princeton COS Courses", "COS", 10, Clock12,
		[5]string{"Catalog", "Descr", "Lecturer", "Session", "Bldg"})
	makeTableSource("waterloo", "University of Waterloo", "Canada",
		"Waterloo CS Undergraduate Schedule", "CS", 11, Clock24,
		[5]string{"CourseCode", "CourseTitle", "Instr", "TimeSlot", "Room"},
		hetero.SimpleMapping)
	makeTableSource("melbourne", "University of Melbourne", "Australia",
		"Melbourne CIS Subjects", "COMP", 10, Clock24,
		[5]string{"SubjectCode", "SubjectTitle", "Coordinator", "Contact", "Theatre"},
		hetero.SimpleMapping)

	// Four definition-list schools.
	makeListSource("berkeley", "University of California, Berkeley", "USA",
		"UC Berkeley EECS Announcements", "CS", 12, Clock12,
		[5]string{"CCN", "CourseName", "Instructor", "MeetingTime", "Place"})
	makeListSource("washington", "University of Washington", "USA",
		"UW CSE Time Schedule", "CSE", 11, Clock12,
		[5]string{"SLN", "Title", "Staff", "Times", "Where"})
	makeListSource("oxford", "University of Oxford", "UK",
		"Oxford Computing Laboratory Lectures", "CL-", 9, Clock24,
		[5]string{"PaperCode", "PaperTitle", "Reader", "Slot", "LectureHall"})
	makeListSource("cambridge", "University of Cambridge", "UK",
		"Cambridge Computer Laboratory Courses", "CST-", 9, Clock24,
		[5]string{"Unit", "UnitTitle", "Supervisor", "Timetable", "Theatre"})

	// Two nested-section schools (structural heterogeneity beyond UMD).
	makeSectionedSource("wisconsin", "University of Wisconsin-Madison", "USA",
		"UW-Madison CS Timetable", "CS", 10)
	makeSectionedSource("utexas", "University of Texas at Austin", "USA",
		"UT Austin CS Course Schedule", "CS", 10)

	// Two German-language schools (more case-5 sources, as the paper's
	// growing testbed promised).
	makeGermanSource("tum", "Technische Universität München",
		"TU München &mdash; Vorlesungsverzeichnis Informatik", "IN", 10)
	makeGermanSource("karlsruhe", "Universität Karlsruhe (TH)",
		"Universität Karlsruhe &mdash; Lehrveranstaltungen Informatik", "24", 10)

	// Two prose-paragraph schools.
	makeParagraphSource("uiuc", "University of Illinois at Urbana-Champaign", "USA",
		"UIUC CS Course Descriptions", "CS", 11, Clock12)
	makeParagraphSource("purdue", "Purdue University", "USA",
		"Purdue CS Course Bulletin", "CS", 10, Clock12)

	// The paper's testbed was still growing ("expected to reach 45 sources");
	// ten further schools extend it the same way new sources joined the real
	// THALIA site — each with its own vocabulary and conventions.
	makeTableSource("nyu", "New York University", "USA",
		"NYU Courant CS Schedule", "CSCI-", 10, Clock12,
		[5]string{"ClassNbr", "ClassTitle", "Taught_By", "MeetingPattern", "Facility"})
	makeTableSource("columbia", "Columbia University", "USA",
		"Columbia CS Directory of Classes", "COMS W", 10, Clock12,
		[5]string{"CallNumber", "CourseTitle", "Instructor", "DayTime", "Location"})
	makeTableSource("ucla", "University of California, Los Angeles", "USA",
		"UCLA CS Schedule of Classes", "CS", 10, Clock12,
		[5]string{"SRS", "CourseName", "Instr", "Mtg", "Bldg"})
	makeTableSource("caltech", "California Institute of Technology", "USA",
		"Caltech CS Course Offerings", "CS ", 9, Clock12,
		[5]string{"Offering", "OfferingName", "Professor", "Given", "Auditorium"})
	makeTableSource("kth", "KTH Royal Institute of Technology", "Sweden",
		"KTH Datalogi Kurser", "DD", 9, Clock24,
		[5]string{"Kurskod", "Kursnamn", "Examinator", "Schema", "Sal"},
		hetero.SimpleMapping)
	makeTableSource("helsinki", "University of Helsinki", "Finland",
		"Helsinki CS Courses", "581", 9, Clock24,
		[5]string{"CourseKey", "CourseLabel", "Responsible", "Lectures", "Auditorium"},
		hetero.SimpleMapping)
	makeFrenchSource("epfl", "École Polytechnique Fédérale de Lausanne",
		"EPFL Informatique &mdash; Plan d'études", "CS-", 9)
	makeListSource("edinburgh", "University of Edinburgh", "UK",
		"Edinburgh Informatics Course Catalogue", "INFR", 9, Clock24,
		[5]string{"CourseRef", "CourseFullName", "Organiser", "Sessions", "Venue"})
	makeSectionedSource("ubc", "University of British Columbia", "Canada",
		"UBC CS Course Schedule", "CPSC", 9)
	makeParagraphSource("auckland", "University of Auckland", "New Zealand",
		"Auckland CS Course Prescriptions", "COMPSCI", 9, Clock12)
}
