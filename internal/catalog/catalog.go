// Package catalog is the THALIA testbed: a collection of 25 university
// course-catalog sources. The paper's testbed serves cached snapshots of
// real course-catalog web pages, each extracted to XML by a source-specific
// TESS wrapper; this package generates equivalent snapshots synthetically
// and deterministically, embedding exactly the syntactic and semantic
// heterogeneities the paper attributes to each source (its sample elements
// are reproduced verbatim).
//
// Every source provides three artifacts, mirroring the THALIA web site:
// the original HTML page (Figure 1/2), the extracted XML document
// (Figure 3, left), and the inferred XML Schema (Figure 3, right).
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"thalia/internal/hetero"
	"thalia/internal/tess"
	"thalia/internal/xmldom"
	"thalia/internal/xsd"
)

// Instructor is a course instructor, possibly with a home page. Without
// deep extraction TESS surfaces the home-page URL as the extracted value;
// with the deep-extraction extension the linked page's fields (first name,
// specialty — the paper's own examples) become available.
type Instructor struct {
	Name      string
	Home      string
	First     string // first name, shown on the instructor's home page
	Specialty string // research specialty, shown on the home page
}

// Section is one meeting section of a course, for sources (like Maryland)
// that model sections explicitly.
type Section struct {
	Num      string // e.g. "0101"
	ID       string // registrar id, e.g. "13795"
	Teacher  string // "Singh, H."
	Days     string // "MWF"
	Time     string // source-local spelling, e.g. "10:00am"
	Room     string
	Seats    int
	Open     int
	Waitlist int
}

// Course is the uniform internal representation behind every source. Each
// university's renderer projects it into that school's idiosyncratic HTML;
// heterogeneity lives in the renderers and wrapper configs, not here.
type Course struct {
	Number      string
	Title       string
	TitleURL    string // some catalogs hyperlink the title
	GermanTitle string // German-language sources use this instead (case 5)
	Instructors []Instructor
	Days        string // canonical day codes: "MWF", "TTh", "F", ...
	Start       int    // minutes since midnight, canonical 24h
	End         int
	Room        string
	LabRoom     string // Brown lists lab rooms inside the Room column
	Credits     int    // canonical credit hours
	UnitsNote   string // ETH's workload notation, e.g. "2V1U" (case 4)
	Description string
	Prereq      string // "" means no prerequisite information
	Textbook    string // "" models a missing textbook (case 6)
	Restrict    string // e.g. "JR or SR" (case 8); inapplicable outside the US
	Comment     string // free-text comment, e.g. "First course in sequence" (case 7)
	Semester    string // term the course runs in, e.g. "Fall 2003" (case 11)
	Sections    []Section
}

// Source is one university catalog in the testbed.
type Source struct {
	// Name is the short key used in doc() URIs, e.g. "brown" → "brown.xml".
	Name string
	// University is the full institution name.
	University string
	// Country locates the institution; German-language sources matter for
	// the language-expression heterogeneity (case 5).
	Country string
	// Style summarizes the source's schema idiosyncrasy for documentation
	// and the web site's browse page.
	Style string
	// Exhibits lists the heterogeneity cases this source showcases.
	Exhibits []hetero.Case

	// Courses is the course data behind the page.
	Courses []Course
	// RenderHTML produces the cached "original" catalog page.
	RenderHTML func(s *Source) string
	// Wrapper is the TESS configuration that extracts the page.
	Wrapper func() *tess.Config
	// Linked holds the cached pages hyperlinked from the catalog page
	// (instructor home pages), keyed by URL; used by deep extraction.
	Linked map[string]string

	mu    sync.Mutex
	ready bool
	page  string
	doc   *xmldom.Document
	sch   *xsd.Schema
}

// Fetch resolves a hyperlink against the source's cached linked pages; it
// is the tess.Fetcher for deep extraction over this source.
func (s *Source) Fetch(url string) (string, error) {
	page, ok := s.Linked[url]
	if !ok {
		return "", fmt.Errorf("catalog %s: no cached page for %q", s.Name, url)
	}
	return page, nil
}

// Page returns the source's cached HTML snapshot. Rendering cannot fail,
// so the page is available even when extraction or inference is not.
func (s *Source) Page() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pageLocked()
}

// pageLocked renders and caches the HTML snapshot. Caller holds s.mu.
func (s *Source) pageLocked() string {
	if s.page == "" {
		s.page = s.RenderHTML(s)
	}
	return s.page
}

// Document returns the extracted XML document (the TESS output). The
// document is shared; callers must not mutate it — Clone the root first.
func (s *Source) Document() (*xmldom.Document, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return s.doc, nil
}

// NameIndex returns the by-name element index over the materialized
// document. The document is memoized by materialize and the index by
// Document.NameIndex, so both are built at most once per source and shared
// by every evaluation — the path/value indexes the compiled-plan engine
// consults.
func (s *Source) NameIndex() (*xmldom.NameIndex, error) {
	doc, err := s.Document()
	if err != nil {
		return nil, err
	}
	return doc.NameIndex(), nil
}

// Schema returns the XML Schema inferred from the extracted document, as
// published alongside each catalog on the THALIA site.
func (s *Source) Schema() (*xsd.Schema, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return s.sch, nil
}

// XML returns the extracted document serialized with indentation.
func (s *Source) XML() (string, error) {
	d, err := s.Document()
	if err != nil {
		return "", err
	}
	return d.Encode(), nil
}

// materialize runs the render→extract→infer pipeline, caching the result
// only when the whole pipeline succeeded. Page, Document, Schema and XML
// are safe for concurrent use: the first caller (whichever goroutine wins
// the mutex) materializes, every later caller — including concurrent
// benchmark evaluations across systems — shares the cached page, parsed
// document and inferred schema instead of re-materializing. The shared
// document is read-only by contract.
//
// Errors are returned but never cached, and the document and schema are
// published together or not at all: a transiently failing wrapper (a
// fault-injected extraction, say) fails the calls that hit it and heals on
// the next one, instead of permanently poisoning the source or exposing a
// document without its schema.
func (s *Source) materialize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ready {
		return nil
	}
	page := s.pageLocked()
	cfg := s.Wrapper()
	doc, err := tess.Extract(cfg, page)
	if err != nil {
		return fmt.Errorf("catalog %s: extract: %w", s.Name, err)
	}
	sch, err := xsd.Infer(s.Name, doc)
	if err != nil {
		return fmt.Errorf("catalog %s: infer schema: %w", s.Name, err)
	}
	s.doc, s.sch = doc, sch
	s.ready = true
	return nil
}

// MaterializeAll warms the whole testbed concurrently: every source's
// render→extract→infer pipeline runs at most once (the sync.Once cache),
// fanned out over up to `workers` goroutines (≤0 means one per source).
// Useful before a concurrent benchmark run so the first wave of query cells
// doesn't serialize on cold sources. Returns the first materialization
// error encountered, if any; the remaining sources are still warmed.
func MaterializeAll(workers int) error {
	sources := All()
	if workers <= 0 || workers > len(sources) {
		workers = len(sources)
	}
	jobs := make(chan *Source)
	errs := make(chan error)
	for w := 0; w < workers; w++ {
		go func() {
			var first error
			for s := range jobs {
				if _, err := s.Document(); err != nil && first == nil {
					first = err
				}
			}
			errs <- first
		}()
	}
	for _, s := range sources {
		jobs <- s
	}
	close(jobs)
	var first error
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

var (
	registryMu sync.Mutex
	registry   = map[string]*Source{}
)

// register adds a source; called from each source file's init.
func register(s *Source) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic("catalog: duplicate source " + s.Name)
	}
	registry[s.Name] = s
}

// Get returns the named source, or an error listing what exists.
func Get(name string) (*Source, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no source %q (have %d sources)", name, len(registry))
	}
	return s, nil
}

// All returns every source, sorted by name.
func All() []*Source {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]*Source, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted short names of all sources.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// Resolver returns an xquery-compatible document resolver over the testbed:
// "brown.xml" (or "brown") resolves to the brown source's extracted XML.
func Resolver() func(uri string) (*xmldom.Document, error) {
	return func(uri string) (*xmldom.Document, error) {
		name := uri
		if len(name) > 4 && name[len(name)-4:] == ".xml" {
			name = name[:len(name)-4]
		}
		s, err := Get(name)
		if err != nil {
			return nil, err
		}
		return s.Document()
	}
}

// Clock12 formats minutes-since-midnight on a 12-hour clock ("1:30pm").
func Clock12(min int) string {
	h, m := min/60, min%60
	suffix := "am"
	if h >= 12 {
		suffix = "pm"
	}
	h12 := h % 12
	if h12 == 0 {
		h12 = 12
	}
	return fmt.Sprintf("%d:%02d%s", h12, m, suffix)
}

// Clock12Bare formats like Clock12 but without the am/pm marker, the way
// CMU's catalog prints "1:30 - 2:50".
func Clock12Bare(min int) string {
	h, m := min/60, min%60
	h12 := h % 12
	if h12 == 0 {
		h12 = 12
	}
	return fmt.Sprintf("%d:%02d", h12, m)
}

// Clock24 formats minutes-since-midnight on a 24-hour clock ("13:30").
func Clock24(min int) string {
	return fmt.Sprintf("%02d:%02d", min/60, min%60)
}
